// Command rocksalt verifies a flat x86 code image against the NaCl
// sandbox policy using the DFA-driven RockSalt checker.
//
// Usage:
//
//	rocksalt [-entries 0x10000,0x10020] [-tables tables.bin]
//	         [-policy spec.json] [-engine auto] [-j N] [-timeout 5s]
//	         [-cache 64] [-delta old.bin] [-stream] [-stats] [-json]
//	         [-q] [-v] [-metrics-addr :9090] [-linger 0s]
//	         [-trace-out t.json] [-postmortem-dir d] file.bin
//
// The exit status is 0 when the image is safe, 1 when it is rejected,
// 2 on usage or input errors (including an empty input file, a
// malformed or contradictory -policy spec, and combining -policy with
// -tables), and 3 when -timeout expired before verification finished —
// an interrupted run is never reported safe.
//
// -entries whitelists out-of-image entry points direct jumps may
// target; -tables loads a pre-generated DFA bundle (from dfagen -o)
// instead of compiling the grammars; -policy compiles a JSON policy
// spec (see DESIGN.md §6g for the schema) at runtime and verifies
// against that policy instead of the default NaCl one — mutually
// exclusive with -tables, which already fixes the policy; -j sets the
// stage-1 worker count (0 = all CPUs); -timeout aborts long runs; -q
// suppresses output in favour of the exit status.
//
// -engine pins the stage-1 stepper: auto (the default; the engine
// picks the fastest available stepper, currently the SWAR multi-byte
// walk with its density backoff), scalar (the canonical byte-at-a-time
// fused walk), lanes (the four-lane single-stride walk, auto with the
// stride upgrade disabled), strided (the forced two-stride pair walk),
// or swar (the forced SWAR stepper). Verdicts are engine-invariant
// byte for byte; the resolved stepper is recorded in the -stats/-json
// engine field. Anything else exits 2.
//
// -cache N attaches an N-MiB content-addressed verdict cache for the
// process lifetime and reports the image's content key. One-shot runs
// mostly pay for the hashing; the flag is the CLI surface of the same
// engine feature a long-lived embedder would use across many Verify
// calls, and -stats/-json expose its hit/miss counters.
//
// -delta old.bin verifies file.bin incrementally: it first verifies
// old.bin (the previous revision of the image) to build the retained
// delta state, byte-diffs the two revisions into changed ranges, and
// re-verifies file.bin through Checker.VerifyDelta — re-parsing only
// the 64 KiB chunks the edits touched. The verdict and exit status are
// those of file.bin, byte-identical to a full run; -stats/-json report
// the round's chunks reparsed/replayed, delta bytes and the chunk
// hit-ratio. -stream verifies file.bin through the bounded-window
// streaming path (Checker.VerifyReader) instead of mapping it whole —
// the CLI face of the multi-GiB service path; it is mutually exclusive
// with -delta.
//
// -stats prints the per-run engine record (bytes, bundles, instruction
// boundaries, shard parse modes, cache effectiveness with the chunk
// hit-ratio, delta reuse counters, per-stage wall times); -json
// switches the whole verdict to a machine-readable JSON object on
// stdout (including the cache_key under -cache and the chunk_hit_ratio
// under -cache/-delta).
// -metrics-addr serves Prometheus metrics on /metrics, expvar on
// /debug/vars and the pprof profiles on /debug/pprof/ for the life of
// the process (use -linger to keep serving after the verdict, e.g. to
// scrape a one-shot run); it also enables global telemetry and
// registers the rocksalt_build_info identity gauge. -v emits
// structured run logs on stderr, correlated by a random run_id.
//
// -trace-out installs the flight recorder for the run and writes its
// span timeline as Chrome trace-event JSON to the given path — load it
// in Perfetto (ui.perfetto.dev) or chrome://tracing to see the run →
// shard → reconcile → jump-check spans per worker. -postmortem-dir
// also installs the recorder and, when the verdict is a rejection or
// an interrupted run, writes a postmortem bundle there: a JSON
// snapshot of the recorded spans, the engine stats and census, the
// policy fingerprint and table-bundle version, and the violations.
// Both flags cost one atomic pointer load per Verify when idle; a safe,
// uninterrupted run writes no postmortem.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"rocksalt/internal/core"
	"rocksalt/internal/flight"
	"rocksalt/internal/policy"
	"rocksalt/internal/telemetry"
	"rocksalt/internal/vcache"
)

// usage is the one-line synopsis printed on argument errors. A test
// (cli_test.go) holds it and the package doc comment to the actual flag
// set, so neither can drift when a flag is added.
const usage = "usage: rocksalt [-entries addr,addr] [-tables f] [-policy spec.json] [-engine auto|scalar|lanes|strided|swar] [-j N] [-timeout d] [-cache MiB] [-delta old.bin] [-stream] [-stats] [-json] [-v] [-metrics-addr a] [-linger d] [-trace-out f] [-postmortem-dir d] [-q] file.bin"

// cliFlags is every rocksalt flag, registered on a caller-supplied
// FlagSet so tests can enumerate the registry without running main.
type cliFlags struct {
	entries     *string
	quiet       *bool
	tables      *string
	policySpec  *string
	engine      *string
	workers     *int
	timeout     *time.Duration
	cacheMiB    *int
	stats       *bool
	jsonOut     *bool
	verbose     *bool
	metricsAddr *string
	linger      *time.Duration
	traceOut    *string
	postmortem  *string
	delta       *string
	stream      *bool
}

func registerFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		entries:     fs.String("entries", "", "comma-separated out-of-image entry points (hex) direct jumps may target"),
		quiet:       fs.Bool("q", false, "suppress output; use the exit status"),
		tables:      fs.String("tables", "", "load pre-generated DFA tables (from dfagen -o) instead of compiling grammars"),
		policySpec:  fs.String("policy", "", "compile this JSON policy spec at runtime and verify against it (mutually exclusive with -tables)"),
		engine:      fs.String("engine", "auto", "stage-1 stepper: auto, scalar, lanes, strided or swar (verdicts are engine-invariant)"),
		workers:     fs.Int("j", 1, "stage-1 verification workers (0 = all CPUs)"),
		timeout:     fs.Duration("timeout", 0, "abort verification after this duration (exit 3); 0 = no limit"),
		cacheMiB:    fs.Int("cache", 0, "attach a content-addressed verdict cache of this many MiB (0 = no cache)"),
		stats:       fs.Bool("stats", false, "print the per-run engine stats after the verdict"),
		jsonOut:     fs.Bool("json", false, "print the verdict and stats as JSON on stdout"),
		verbose:     fs.Bool("v", false, "structured run logs on stderr"),
		metricsAddr: fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address; enables telemetry"),
		linger:      fs.Duration("linger", 0, "keep the metrics server up this long after the verdict (with -metrics-addr)"),
		traceOut:    fs.String("trace-out", "", "record the run's flight spans and write them as Chrome trace-event JSON to this file"),
		postmortem:  fs.String("postmortem-dir", "", "on rejection or interruption, write a postmortem bundle (spans, stats, policy identity) into this directory"),
		delta:       fs.String("delta", "", "re-verify incrementally against this previous revision of the image (VerifyDelta; re-parses only changed chunks)"),
		stream:      fs.Bool("stream", false, "verify through the bounded-window streaming path (VerifyReader) instead of mapping the image whole"),
	}
}

// jsonViolation is the machine-readable form of one violation.
type jsonViolation struct {
	Offset int    `json:"offset"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// jsonVerdict is the -json output: the full verdict plus the per-run
// engine stats.
type jsonVerdict struct {
	File       string          `json:"file"`
	Safe       bool            `json:"safe"`
	Outcome    string          `json:"outcome"`
	Size       int             `json:"size"`
	Shards     int             `json:"shards"`
	Workers    int             `json:"workers"`
	Total      int             `json:"total_violations"`
	Violations []jsonViolation `json:"violations,omitempty"`
	Stats      core.Stats      `json:"stats"`
	// ChunkHitRatio is chunk-grade reuse effectiveness: cache chunk
	// hits (under -cache) plus delta chunk replays (under -delta) over
	// all chunk-grade opportunities; 0 when neither layer ran.
	ChunkHitRatio float64 `json:"chunk_hit_ratio"`
	CacheKey      string  `json:"cache_key,omitempty"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	MBPerSec      float64 `json:"mb_per_s"`
}

func main() {
	f := registerFlags(flag.CommandLine)
	flag.Parse()
	entries, quiet, tables, workers := f.entries, f.quiet, f.tables, f.workers
	timeout, stats, jsonOut, verbose := f.timeout, f.stats, f.jsonOut, f.verbose
	metricsAddr, linger := f.metricsAddr, f.linger
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, usage)
		os.Exit(2)
	}

	level := slog.LevelError
	if *verbose || *metricsAddr != "" {
		level = slog.LevelInfo
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})).
		With("run_id", telemetry.NewRunID())

	code, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocksalt:", err)
		os.Exit(2)
	}
	if len(code) == 0 {
		fmt.Fprintf(os.Stderr, "rocksalt: %s: empty input image (nothing to verify)\n", flag.Arg(0))
		os.Exit(2)
	}

	if *metricsAddr != "" {
		telemetry.SetEnabled(true)
		telemetry.PublishExpvar(telemetry.Default())
		ln, lerr := net.Listen("tcp", *metricsAddr)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "rocksalt:", lerr)
			os.Exit(2)
		}
		log.Info("metrics serving", "addr", ln.Addr().String())
		go func() {
			srv := &http.Server{Handler: telemetry.Handler(telemetry.Default())}
			if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
				log.Error("metrics server", "err", serr)
			}
		}()
	}

	var checker *core.Checker
	switch {
	case *tables != "" && *f.policySpec != "":
		fmt.Fprintln(os.Stderr, "rocksalt: -tables and -policy are mutually exclusive (a table bundle already fixes the policy)")
		os.Exit(2)
	case *tables != "":
		f, ferr := os.Open(*tables)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "rocksalt:", ferr)
			os.Exit(2)
		}
		checker, err = core.NewCheckerFromTables(f)
		f.Close()
	case *f.policySpec != "":
		data, ferr := os.ReadFile(*f.policySpec)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "rocksalt:", ferr)
			os.Exit(2)
		}
		var spec policy.Spec
		if spec, err = policy.ParseSpec(data); err == nil {
			var com *policy.Compiled
			if com, err = policy.Compile(spec); err == nil {
				checker, err = core.NewCheckerFromPolicy(com)
			}
		}
	default:
		checker, err = core.NewChecker()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocksalt:", err)
		os.Exit(2)
	}
	if *metricsAddr != "" {
		core.PublishBuildInfo(checker)
	}
	var recorder *flight.Recorder
	if *f.traceOut != "" || *f.postmortem != "" {
		recorder = flight.NewRecorder(0)
		flight.SetGlobal(recorder)
	}
	if *entries != "" {
		checker.Entries = map[uint32]bool{}
		for _, e := range strings.Split(*entries, ",") {
			v, err := strconv.ParseUint(strings.TrimPrefix(strings.TrimSpace(e), "0x"), 16, 32)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rocksalt: bad entry %q: %v\n", e, err)
				os.Exit(2)
			}
			checker.Entries[uint32(v)] = true
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := core.VerifyOptions{Workers: *workers}
	switch *f.engine {
	case "auto", "":
		// The engine resolves the fastest available stepper itself.
	case "scalar":
		opts.Engine = core.EngineFusedScalar
	case "lanes":
		opts.StrideBudgetBytes = -1
	case "strided":
		opts.Engine = core.EngineStrided
	case "swar":
		opts.Engine = core.EngineSWAR
	default:
		fmt.Fprintf(os.Stderr, "rocksalt: unknown -engine %q (want auto, scalar, lanes, strided or swar)\n", *f.engine)
		os.Exit(2)
	}
	if *f.cacheMiB > 0 {
		opts.Cache = vcache.New(int64(*f.cacheMiB) << 20)
	}
	if *f.delta != "" && *f.stream {
		fmt.Fprintln(os.Stderr, "rocksalt: -delta and -stream are mutually exclusive")
		os.Exit(2)
	}
	log.Info("verify start", "file", flag.Arg(0), "bytes", len(code), "workers", *workers,
		"cache_mib", *f.cacheMiB, "delta", *f.delta, "stream", *f.stream)
	start := time.Now()
	var rep *core.Report
	switch {
	case *f.delta != "":
		old, derr := os.ReadFile(*f.delta)
		if derr != nil {
			fmt.Fprintln(os.Stderr, "rocksalt:", derr)
			os.Exit(2)
		}
		// Round 1 builds the retained state from the previous revision;
		// round 2 re-verifies the current one against it. Only round 2's
		// report (and stats) is the verdict.
		_, state, derr2 := checker.VerifyDeltaContext(ctx, old, nil, nil, opts)
		if derr2 != nil {
			fmt.Fprintln(os.Stderr, "rocksalt:", derr2)
			os.Exit(2)
		}
		rep, _, derr2 = checker.VerifyDeltaContext(ctx, code, diffRanges(old, code), state, opts)
		if derr2 != nil {
			fmt.Fprintln(os.Stderr, "rocksalt:", derr2)
			os.Exit(2)
		}
	case *f.stream:
		in, serr := os.Open(flag.Arg(0))
		if serr != nil {
			fmt.Fprintln(os.Stderr, "rocksalt:", serr)
			os.Exit(2)
		}
		sopts := opts
		sopts.StreamSize = int64(len(code))
		rep, err = checker.VerifyReaderContext(ctx, in, sopts)
		in.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rocksalt:", err)
			os.Exit(2)
		}
	default:
		rep = checker.VerifyContext(ctx, code, opts)
	}
	elapsed := time.Since(start)
	mbs := float64(len(code)) / (1 << 20) / elapsed.Seconds()
	log.Info("verify done", "outcome", rep.Outcome.String(), "elapsed", elapsed,
		"mb_per_s", fmt.Sprintf("%.1f", mbs), "violations", rep.Total)

	if recorder != nil {
		flushFlight(log, recorder, checker, rep, *f.traceOut, *f.postmortem, flag.Arg(0))
	}

	status := 0
	switch {
	case rep.Interrupted():
		status = 3
	case !rep.Safe:
		status = 1
	}

	if *jsonOut {
		jv := jsonVerdict{
			File:          flag.Arg(0),
			Safe:          rep.Safe,
			Outcome:       rep.Outcome.String(),
			Size:          rep.Size,
			Shards:        rep.Shards,
			Workers:       rep.Workers,
			Total:         rep.Total,
			Stats:         rep.Stats,
			ChunkHitRatio: rep.Stats.ChunkHitRatio(),
			CacheKey:      rep.CacheKey,
			ElapsedNS:     int64(elapsed),
			MBPerSec:      mbs,
		}
		for i := range rep.Violations {
			v := &rep.Violations[i]
			jv.Violations = append(jv.Violations, jsonViolation{
				Offset: v.Offset, Kind: v.Kind.String(), Detail: v.Detail,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jv); err != nil {
			fmt.Fprintln(os.Stderr, "rocksalt:", err)
			os.Exit(2)
		}
		lingerExit(log, *metricsAddr, *linger, status)
	}

	if rep.Interrupted() {
		if !*quiet {
			fmt.Printf("%s: INTERRUPTED (%s after %v; no verdict)\n", flag.Arg(0), rep.Outcome, elapsed)
		}
		lingerExit(log, *metricsAddr, *linger, 3)
	}
	if !*quiet {
		if rep.Safe {
			fmt.Printf("%s: SAFE (%d bytes, %d shards, %d workers, checked in %v, %.1f MB/s)\n",
				flag.Arg(0), rep.Size, rep.Shards, rep.Workers, elapsed, mbs)
		} else {
			v := rep.First()
			fmt.Printf("%s: REJECTED: %s at offset %#x\n", flag.Arg(0), v.Kind, v.Offset)
			if v.Detail != "" {
				fmt.Printf("  detail: %s\n", v.Detail)
			}
			if len(v.Window) > 0 {
				fmt.Printf("  bytes at %#x: % x\n", v.Offset, v.Window)
			}
			if v.Stack != "" {
				fmt.Printf("  recovered stack:\n%s\n", v.Stack)
			}
			if rep.Total > 1 {
				fmt.Printf("  (%d violations in total; lowest offset shown)\n", rep.Total)
			}
		}
		if *stats {
			fmt.Println(rep.Stats.String())
			if rep.CacheKey != "" {
				fmt.Printf("content key %s\n", rep.CacheKey)
			}
		}
	}
	lingerExit(log, *metricsAddr, *linger, status)
}

// diffRanges byte-compares two revisions of an image into the changed
// ranges VerifyDelta consumes, coalescing runs of differing bytes less
// than a chunk apart (finer ranges cannot dirty fewer chunks, and a
// shorter list walks faster). A length difference needs no explicit
// range: VerifyDelta re-parses everything the size change can affect.
func diffRanges(old, new []byte) []core.Range {
	n := len(old)
	if len(new) < n {
		n = len(new)
	}
	var ranges []core.Range
	const gap = 64 << 10
	for i := 0; i < n; {
		if old[i] == new[i] {
			i++
			continue
		}
		start := i
		last := i
		for i++; i < n && i-last < gap; i++ {
			if old[i] != new[i] {
				last = i
			}
		}
		ranges = append(ranges, core.Range{Off: start, Len: last + 1 - start})
		i = last + 1
	}
	return ranges
}

// flushFlight drains the flight recorder after the verdict: the span
// timeline goes to -trace-out as Chrome trace-event JSON, and a
// rejected or interrupted run additionally drops a postmortem bundle
// into -postmortem-dir. A trace-write failure is a hard error (exit 2
// — the user asked for an artifact the run cannot produce); a
// postmortem-write failure only logs, because the verdict and exit
// status must survive a full disk.
func flushFlight(log *slog.Logger, recorder *flight.Recorder, checker *core.Checker,
	rep *core.Report, traceOut, postmortemDir, file string) {
	events := recorder.Snapshot()
	if traceOut != "" {
		if err := flight.WriteChromeTraceFile(traceOut, events); err != nil {
			fmt.Fprintln(os.Stderr, "rocksalt:", err)
			os.Exit(2)
		}
		log.Info("trace written", "path", traceOut, "events", len(events))
	}
	if postmortemDir == "" || (rep.Safe && !rep.Interrupted()) {
		return
	}
	var violations []jsonViolation
	for i := range rep.Violations {
		v := &rep.Violations[i]
		violations = append(violations, jsonViolation{
			Offset: v.Offset, Kind: v.Kind.String(), Detail: v.Detail,
		})
	}
	pm := &flight.Postmortem{
		Reason:            rep.Outcome.String(),
		File:              file,
		TableBundle:       checker.TableBundle(),
		PolicyFingerprint: checker.Fingerprint(),
		CacheKey:          rep.CacheKey,
		Stats:             rep.Stats,
		Violations:        violations,
		Spans:             events,
	}
	path, err := flight.WritePostmortem(postmortemDir, pm)
	if err != nil {
		log.Error("postmortem write failed", "err", err)
		return
	}
	log.Info("postmortem written", "path", path, "spans", len(events))
}

// lingerExit optionally keeps the metrics server reachable after the
// verdict (so a scraper or test can read the final counters of a
// one-shot run), then exits with the verdict status.
func lingerExit(log *slog.Logger, metricsAddr string, linger time.Duration, status int) {
	if metricsAddr != "" && linger > 0 {
		log.Info("lingering", "for", linger)
		time.Sleep(linger)
	}
	os.Exit(status)
}

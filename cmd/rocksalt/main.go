// Command rocksalt verifies a flat x86 code image against the NaCl
// sandbox policy using the DFA-driven RockSalt checker.
//
// Usage:
//
//	rocksalt [-entries 0x10000,0x10020] [-j N] [-timeout 5s] file.bin
//
// The exit status is 0 when the image is safe, 1 when it is rejected,
// 2 on usage or input errors (including an empty input file), and 3
// when -timeout expired before verification finished — an interrupted
// run is never reported safe.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rocksalt/internal/core"
)

func main() {
	entries := flag.String("entries", "", "comma-separated out-of-image entry points (hex) direct jumps may target")
	quiet := flag.Bool("q", false, "suppress output; use the exit status")
	tables := flag.String("tables", "", "load pre-generated DFA tables (from dfagen -o) instead of compiling grammars")
	workers := flag.Int("j", 1, "stage-1 verification workers (0 = all CPUs)")
	timeout := flag.Duration("timeout", 0, "abort verification after this duration (exit 3); 0 = no limit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rocksalt [-entries addr,addr] [-j N] [-timeout d] [-q] file.bin")
		os.Exit(2)
	}
	code, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocksalt:", err)
		os.Exit(2)
	}
	if len(code) == 0 {
		fmt.Fprintf(os.Stderr, "rocksalt: %s: empty input image (nothing to verify)\n", flag.Arg(0))
		os.Exit(2)
	}

	var checker *core.Checker
	if *tables != "" {
		f, ferr := os.Open(*tables)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "rocksalt:", ferr)
			os.Exit(2)
		}
		checker, err = core.NewCheckerFromTables(f)
		f.Close()
	} else {
		checker, err = core.NewChecker()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocksalt:", err)
		os.Exit(2)
	}
	if *entries != "" {
		checker.Entries = map[uint32]bool{}
		for _, e := range strings.Split(*entries, ",") {
			v, err := strconv.ParseUint(strings.TrimPrefix(strings.TrimSpace(e), "0x"), 16, 32)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rocksalt: bad entry %q: %v\n", e, err)
				os.Exit(2)
			}
			checker.Entries[uint32(v)] = true
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	rep := checker.VerifyContext(ctx, code, core.VerifyOptions{Workers: *workers})
	elapsed := time.Since(start)
	if rep.Interrupted() {
		if !*quiet {
			fmt.Printf("%s: INTERRUPTED (%s after %v; no verdict)\n", flag.Arg(0), rep.Outcome, elapsed)
		}
		os.Exit(3)
	}
	if !*quiet {
		if rep.Safe {
			fmt.Printf("%s: SAFE (%d bytes, %d shards, %d workers, checked in %v)\n",
				flag.Arg(0), rep.Size, rep.Shards, rep.Workers, elapsed)
		} else {
			v := rep.First()
			fmt.Printf("%s: REJECTED: %s at offset %#x\n", flag.Arg(0), v.Kind, v.Offset)
			if v.Detail != "" {
				fmt.Printf("  detail: %s\n", v.Detail)
			}
			if len(v.Window) > 0 {
				fmt.Printf("  bytes at %#x: % x\n", v.Offset, v.Window)
			}
			if v.Stack != "" {
				fmt.Printf("  recovered stack:\n%s\n", v.Stack)
			}
			if rep.Total > 1 {
				fmt.Printf("  (%d violations in total; lowest offset shown)\n", rep.Total)
			}
		}
	}
	if !rep.Safe {
		os.Exit(1)
	}
}

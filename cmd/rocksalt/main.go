// Command rocksalt verifies a flat x86 code image against the NaCl
// sandbox policy using the DFA-driven RockSalt checker.
//
// Usage:
//
//	rocksalt [-entries 0x10000,0x10020] file.bin
//
// The exit status is 0 when the image is safe, 1 when it is rejected.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rocksalt/internal/core"
)

func main() {
	entries := flag.String("entries", "", "comma-separated out-of-image entry points (hex) direct jumps may target")
	quiet := flag.Bool("q", false, "suppress output; use the exit status")
	tables := flag.String("tables", "", "load pre-generated DFA tables (from dfagen -o) instead of compiling grammars")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rocksalt [-entries addr,addr] [-q] file.bin")
		os.Exit(2)
	}
	code, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocksalt:", err)
		os.Exit(2)
	}

	var checker *core.Checker
	if *tables != "" {
		f, ferr := os.Open(*tables)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "rocksalt:", ferr)
			os.Exit(2)
		}
		checker, err = core.NewCheckerFromTables(f)
		f.Close()
	} else {
		checker, err = core.NewChecker()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocksalt:", err)
		os.Exit(2)
	}
	if *entries != "" {
		checker.Entries = map[uint32]bool{}
		for _, e := range strings.Split(*entries, ",") {
			v, err := strconv.ParseUint(strings.TrimPrefix(strings.TrimSpace(e), "0x"), 16, 32)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rocksalt: bad entry %q: %v\n", e, err)
				os.Exit(2)
			}
			checker.Entries[uint32(v)] = true
		}
	}
	start := time.Now()
	ok, verr := checker.VerifyReport(code)
	elapsed := time.Since(start)
	if !*quiet {
		if ok {
			fmt.Printf("%s: SAFE (%d bytes checked in %v)\n", flag.Arg(0), len(code), elapsed)
		} else {
			fmt.Printf("%s: REJECTED: %v\n", flag.Arg(0), verr)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"rocksalt/internal/core"
)

// chromeTrace mirrors the Chrome trace-event JSON document shape for
// validation (the real schema is what Perfetto/chrome://tracing load).
type chromeTrace struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceOutFlag runs the binary with -trace-out on a safe image and
// validates the emitted file is well-formed Chrome trace-event JSON
// covering the pipeline spans.
func TestTraceOutFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	img := filepath.Join(dir, "safe.bin")
	if err := os.WriteFile(img, bytes.Repeat([]byte{0x90}, 2*512*core.BundleSize), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "trace.json")
	out, err := exec.Command(bin, "-trace-out", trace, "-q", img).CombinedOutput()
	if err != nil {
		t.Fatalf("rocksalt -trace-out: %v\n%s", err, out)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name]++
		if ev.Ph != "X" && ev.Ph != "i" {
			t.Errorf("event %q has phase %q, want X or i", ev.Name, ev.Ph)
		}
		if ev.Ph == "X" && ev.Dur < 0 {
			t.Errorf("span %q has negative dur %v", ev.Name, ev.Dur)
		}
	}
	for _, want := range []string{"run", "shard", "reconcile", "jumps"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q spans; have %v", want, names)
		}
	}
	if names["shard"] != 2 {
		t.Errorf("shard spans = %d, want 2 for a 2-shard image", names["shard"])
	}
}

// TestPostmortemDirFlag checks both halves of the postmortem contract:
// a rejected image drops a bundle carrying spans, stats and the policy
// identity; a safe run drops nothing.
func TestPostmortemDirFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	// A leading RET is rejected under the NaCl policy.
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, append([]byte{0xc3}, bytes.Repeat([]byte{0x90}, 31)...), 0o644); err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.bin")
	if err := os.WriteFile(good, bytes.Repeat([]byte{0x90}, 32), 0o644); err != nil {
		t.Fatal(err)
	}
	pmDir := filepath.Join(dir, "postmortems")

	cmd := exec.Command(bin, "-postmortem-dir", pmDir, "-q", bad)
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("rejected image exit = %v, want status 1", err)
	}
	entries, err := os.ReadDir(pmDir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("postmortem dir entries = %v (err %v), want exactly 1", entries, err)
	}
	name := entries[0].Name()
	if !strings.HasPrefix(name, "postmortem-") || !strings.HasSuffix(name, ".json") {
		t.Errorf("postmortem filename %q, want postmortem-*.json", name)
	}
	data, err := os.ReadFile(filepath.Join(pmDir, name))
	if err != nil {
		t.Fatal(err)
	}
	var pm struct {
		Reason            string           `json:"reason"`
		File              string           `json:"file"`
		TableBundle       string           `json:"table_bundle"`
		PolicyFingerprint string           `json:"policy_fingerprint"`
		EngineCensus      map[string]int64 `json:"engine_census"`
		Stats             *core.Stats      `json:"stats"`
		Violations        []struct {
			Offset int    `json:"offset"`
			Kind   string `json:"kind"`
		} `json:"violations"`
		Spans []struct {
			Kind string `json:"kind"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(data, &pm); err != nil {
		t.Fatalf("postmortem is not valid JSON: %v\n%s", err, data)
	}
	if pm.Reason != "rejected" {
		t.Errorf("reason = %q, want rejected", pm.Reason)
	}
	if pm.File != bad {
		t.Errorf("file = %q, want %q", pm.File, bad)
	}
	if pm.TableBundle == "" {
		t.Error("table_bundle empty")
	}
	if pm.PolicyFingerprint == "" {
		t.Error("policy_fingerprint empty")
	}
	if pm.Stats == nil || pm.Stats.BytesScanned != 32 {
		t.Errorf("stats missing or wrong: %+v", pm.Stats)
	}
	if len(pm.Violations) == 0 || pm.Violations[0].Offset != 0 {
		t.Errorf("violations = %+v, want the offset-0 RET", pm.Violations)
	}
	if len(pm.Spans) == 0 {
		t.Error("postmortem carries no spans")
	}
	if len(pm.EngineCensus) == 0 {
		t.Error("postmortem carries no engine census")
	}

	// Safe run: exit 0, no new bundle.
	if out, err := exec.Command(bin, "-postmortem-dir", pmDir, "-q", good).CombinedOutput(); err != nil {
		t.Fatalf("safe run failed: %v\n%s", err, out)
	}
	entries, err = os.ReadDir(pmDir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("safe run wrote a postmortem: %v (err %v)", entries, err)
	}
}

package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// TestUsageMentionsEveryFlag is the CLI doc-drift guard: every
// registered flag must appear in the usage synopsis and in the package
// doc comment, so adding a flag without documenting it fails here
// instead of shipping silently.
func TestUsageMentionsEveryFlag(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	// The package doc comment is everything before the package clause.
	doc, _, ok := strings.Cut(string(src), "\npackage main")
	if !ok {
		t.Fatal("cannot locate the package clause in main.go")
	}

	fs := flag.NewFlagSet("rocksalt", flag.ContinueOnError)
	registerFlags(fs)
	n := 0
	fs.VisitAll(func(fl *flag.Flag) {
		n++
		if !strings.Contains(usage, "-"+fl.Name) {
			t.Errorf("flag -%s missing from the usage string:\n%s", fl.Name, usage)
		}
		if !strings.Contains(doc, "-"+fl.Name) {
			t.Errorf("flag -%s missing from the package doc comment", fl.Name)
		}
		if fl.Usage == "" {
			t.Errorf("flag -%s has no help text", fl.Name)
		}
	})
	if n < 17 {
		t.Fatalf("only %d flags registered (want at least 17, including -delta and -stream); the registry and main drifted apart", n)
	}
}

package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildCLI compiles the rocksalt binary once into a temp dir.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rocksalt")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building rocksalt: %v\n%s", err, out)
	}
	return bin
}

// TestPolicyFlagExitCodes pins the documented exit statuses of the
// -policy flag: 2 for malformed or contradictory specs and for
// combining -policy with -tables, 0/1 for verdicts under a compiled
// policy.
func TestPolicyFlagExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()

	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// A 16-byte all-NOP image is compliant under nacl-16; a leading RET
	// is not.
	safe := write("safe.bin", bytes.Repeat([]byte{0x90}, 16))
	unsafe := write("unsafe.bin", append([]byte{0xc3}, bytes.Repeat([]byte{0x90}, 15)...))
	goodSpec := write("nacl16.json", []byte(`{"name":"nacl-16","bundle_size":16}`))
	badJSON := write("bad.json", []byte(`{"bundle_size":`))
	contradictory := write("contra.json", []byte(`{"bundle_size":16,"mask_regs":["ebx"],"scratch_regs":["ebx"]}`))

	run := func(args ...string) int {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = nil, nil
		err := cmd.Run()
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("running %v: %v", args, err)
		return -1
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"safe-under-policy", []string{"-q", "-policy", goodSpec, safe}, 0},
		{"rejected-under-policy", []string{"-q", "-policy", goodSpec, unsafe}, 1},
		{"malformed-spec", []string{"-q", "-policy", badJSON, safe}, 2},
		{"contradictory-spec", []string{"-q", "-policy", contradictory, safe}, 2},
		{"missing-spec-file", []string{"-q", "-policy", filepath.Join(dir, "nope.json"), safe}, 2},
		{"policy-plus-tables", []string{"-q", "-policy", goodSpec, "-tables", goodSpec, safe}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args...); got != tc.want {
				t.Fatalf("rocksalt %v exited %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

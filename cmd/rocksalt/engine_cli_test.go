package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestEngineFlag runs the built binary once per -engine value against
// the same image and pins the contract: every engine returns the same
// verdict (exit 0 here), the resolved stepper lands in the -json stats
// engine field, and an unknown engine is a usage error (exit 2).
func TestEngineFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()

	// A few KiB of NOPs: compliant, large enough to engage the lane
	// engines (whole-bundle regions of several bundles per shard).
	img := filepath.Join(dir, "nops.bin")
	nops := make([]byte, 8192)
	for i := range nops {
		nops[i] = 0x90
	}
	if err := os.WriteFile(img, nops, 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		engine string // -engine value
		want   string // stats engine census name
	}{
		{"auto", "swar"},
		{"scalar", "fused-scalar"},
		{"lanes", "lanes"},
		{"strided", "strided"},
		{"swar", "swar"},
	}
	for _, tc := range cases {
		t.Run(tc.engine, func(t *testing.T) {
			out, err := exec.Command(bin, "-engine", tc.engine, "-json", img).Output()
			if err != nil {
				t.Fatalf("rocksalt -engine %s: %v", tc.engine, err)
			}
			var v struct {
				Safe  bool `json:"safe"`
				Stats struct {
					Engine string `json:"engine"`
				} `json:"stats"`
			}
			if err := json.Unmarshal(out, &v); err != nil {
				t.Fatalf("bad -json output: %v\n%s", err, out)
			}
			if !v.Safe {
				t.Fatalf("-engine %s rejected a compliant image", tc.engine)
			}
			if v.Stats.Engine != tc.want {
				t.Errorf("-engine %s resolved to %q, want %q", tc.engine, v.Stats.Engine, tc.want)
			}
		})
	}

	t.Run("unknown", func(t *testing.T) {
		err := exec.Command(bin, "-engine", "turbo", "-q", img).Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Fatalf("unknown engine: got %v, want exit 2", err)
		}
	})
}

// Command dfagen performs the paper's offline table generation (§3.2):
// it compiles the three policy grammars to DFAs, fuses them into the
// product automaton the hot path walks, reports their sizes, and can
// emit the tables as a loadable bundle or as Go source — the analogue
// of generating the trusted C arrays from the verified Coq definitions.
//
// The repository's embedded bundle is regenerated with
//
//	go run ./cmd/dfagen -o internal/core/rocksalt_tables_v3.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"rocksalt/internal/core"
)

func main() {
	emit := flag.Bool("emit", false, "emit the DFA tables as Go source on stdout")
	out := flag.String("o", "", "write a binary table bundle (loadable by rocksalt -tables)")
	format := flag.Int("format", 3, "bundle format for -o: 3 = RSLT3 (fused + stride tables + component DFAs), 2 = RSLT2 (no stride section), 1 = legacy RSLT1")
	flag.Parse()

	start := time.Now()
	dfas, err := core.BuildDFAs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfagen:", err)
		os.Exit(1)
	}
	build := time.Since(start)

	stats, _ := core.DFAStats()
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("policy DFAs generated in %v\n", build)
	total := 0
	for _, n := range names {
		fmt.Printf("  %-14s %3d states (%5d table bytes)\n", n, stats[n], stats[n]*256*2)
		total += stats[n]
	}
	fmt.Printf("  %-14s %3d states total\n", "all", total)
	fmt.Println("  (paper: largest checker DFA has 61 states; no minimization needed)")

	start = time.Now()
	fusedStates, fusedBytes, err := core.FusedStats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfagen:", err)
		os.Exit(1)
	}
	fmt.Printf("fused product automaton: %d states (%d table bytes), built in %v\n",
		fusedStates, fusedBytes, time.Since(start))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfagen:", err)
			os.Exit(1)
		}
		switch *format {
		case 1:
			err = dfas.WriteTables(f)
		case 2:
			err = dfas.WriteTablesV2(f)
		case 3:
			err = dfas.WriteTablesV3(f)
		default:
			err = fmt.Errorf("unknown bundle format %d (want 1, 2 or 3)", *format)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfagen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dfagen:", err)
			os.Exit(1)
		}
		st, _ := os.Stat(*out)
		fmt.Printf("wrote %s (RSLT%d, %d bytes)\n", *out, *format, st.Size())
	}

	if *emit {
		fmt.Println()
		emitGo("maskedJump", dfas.MaskedJump.Table, dfas.MaskedJump.Accepts, dfas.MaskedJump.Rejects)
		emitGo("noControlFlow", dfas.NoControlFlow.Table, dfas.NoControlFlow.Accepts, dfas.NoControlFlow.Rejects)
		emitGo("directJump", dfas.DirectJump.Table, dfas.DirectJump.Accepts, dfas.DirectJump.Rejects)
	}
}

func emitGo(name string, table [][256]uint16, accepts, rejects []bool) {
	fmt.Printf("var %sAccepts = %#v\n", name, accepts)
	fmt.Printf("var %sRejects = %#v\n", name, rejects)
	fmt.Printf("var %sTable = [][256]uint16{\n", name)
	for _, row := range table {
		fmt.Print("\t{")
		for i, v := range row {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Print(v)
		}
		fmt.Println("},")
	}
	fmt.Println("}")
}

// Command dfagen performs the paper's offline table generation (§3.2):
// it runs the runtime policy compiler (internal/policy) on a policy
// spec — the default NaCl policy unless -spec names a JSON spec file —
// reports the DFA sizes, and can emit the tables as a loadable bundle
// or as Go source — the analogue of generating the trusted C arrays
// from the verified Coq definitions.
//
// The repository's embedded bundle is regenerated with
//
//	go run ./cmd/dfagen -o internal/core/rocksalt_tables_v3.bin
//
// Non-default specs serialize as RSLT4 bundles, which carry the
// policy's engine parameters (bundle size, mask length, guard cutoff)
// alongside the tables; formats 1–3 imply the default NaCl parameters
// and are refused for any other spec.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"rocksalt/internal/core"
	"rocksalt/internal/policy"
)

func main() {
	emit := flag.Bool("emit", false, "emit the DFA tables as Go source on stdout")
	out := flag.String("o", "", "write a binary table bundle (loadable by rocksalt -tables)")
	format := flag.Int("format", 0, "bundle format for -o: 0 = auto (3 for the default policy, 4 otherwise), 4 = RSLT4 (policy parameters + v3 body), 3 = RSLT3 (fused + stride tables + component DFAs), 2 = RSLT2 (no stride section), 1 = legacy RSLT1")
	specPath := flag.String("spec", "", "compile this JSON policy spec instead of the default NaCl policy")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dfagen:", err)
		os.Exit(1)
	}

	spec := policy.NaCl()
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fail(err)
		}
		if spec, err = policy.ParseSpec(data); err != nil {
			fail(err)
		}
	}
	start := time.Now()
	com, err := policy.Compile(spec)
	if err != nil {
		fail(err)
	}
	defNorm, err := policy.NaCl().Normalize()
	if err != nil {
		fail(err)
	}
	defaultPolicy := com.Fingerprint == defNorm.Fingerprint()
	build := time.Since(start)
	dfas := &core.DFASet{
		MaskedJump:    com.MaskedJump,
		NoControlFlow: com.NoControlFlow,
		DirectJump:    com.DirectJump,
	}

	stats := map[string]int{
		"MaskedJump":    com.MaskedJump.NumStates(),
		"NoControlFlow": com.NoControlFlow.NumStates(),
		"DirectJump":    com.DirectJump.NumStates(),
	}
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("policy %q DFAs generated in %v\n", com.Spec.Name, build)
	total := 0
	for _, n := range names {
		fmt.Printf("  %-14s %3d states (%5d table bytes)\n", n, stats[n], stats[n]*256*2)
		total += stats[n]
	}
	fmt.Printf("  %-14s %3d states total\n", "all", total)
	if defaultPolicy {
		fmt.Println("  (paper: largest checker DFA has 61 states; no minimization needed)")
	}

	start = time.Now()
	_, _, fusedTable, err := policy.FuseProduct(com.MaskedJump, com.NoControlFlow, com.DirectJump)
	if err != nil {
		fail(err)
	}
	n := len(fusedTable)
	fmt.Printf("fused product automaton: %d states (%d table bytes), built in %v\n",
		n, n*512+n, time.Since(start))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		fmtUsed := *format
		if fmtUsed == 0 {
			fmtUsed = 3
			if !defaultPolicy {
				fmtUsed = 4
			}
		}
		if fmtUsed >= 1 && fmtUsed <= 3 && !defaultPolicy {
			fail(fmt.Errorf("policy %q is not the default NaCl policy; formats 1-3 cannot carry its engine parameters, use -format 4 (or 0)", com.Spec.Name))
		}
		switch fmtUsed {
		case 1:
			err = dfas.WriteTables(f)
		case 2:
			err = dfas.WriteTablesV2(f)
		case 3:
			err = dfas.WriteTablesV3(f)
		case 4:
			info := core.PolicyInfo{
				Name:        com.Spec.Name,
				BundleSize:  com.Spec.BundleSize,
				MaskLen:     com.Spec.MaskLen(),
				GuardCutoff: com.Spec.GuardCutoff,
			}
			err = dfas.WriteTablesV4(f, info, com.Spec.AlignedCalls)
		default:
			err = fmt.Errorf("unknown bundle format %d (want 0, 1, 2, 3 or 4)", fmtUsed)
		}
		if err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		st, _ := os.Stat(*out)
		fmt.Printf("wrote %s (RSLT%d, %d bytes)\n", *out, fmtUsed, st.Size())
	}

	if *emit {
		fmt.Println()
		emitGo("maskedJump", dfas.MaskedJump.Table, dfas.MaskedJump.Accepts, dfas.MaskedJump.Rejects)
		emitGo("noControlFlow", dfas.NoControlFlow.Table, dfas.NoControlFlow.Accepts, dfas.NoControlFlow.Rejects)
		emitGo("directJump", dfas.DirectJump.Table, dfas.DirectJump.Accepts, dfas.DirectJump.Rejects)
	}
}

func emitGo(name string, table [][256]uint16, accepts, rejects []bool) {
	fmt.Printf("var %sAccepts = %#v\n", name, accepts)
	fmt.Printf("var %sRejects = %#v\n", name, rejects)
	fmt.Printf("var %sTable = [][256]uint16{\n", name)
	for _, row := range table {
		fmt.Print("\t{")
		for i, v := range row {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Print(v)
		}
		fmt.Println("},")
	}
	fmt.Println("}")
}

// Command naclgen produces test binaries for the checkers: random
// NaCl-compliant images (the stand-in for Csmith + NaCl-GCC output) and
// the hand-crafted unsafe corpus.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rocksalt/internal/nacl"
)

func main() {
	n := flag.Int("n", 200, "approximate instruction count for random images")
	seed := flag.Int64("seed", 1, "random seed")
	unsafeDir := flag.String("unsafe", "", "write the unsafe corpus into this directory")
	out := flag.String("o", "image.bin", "output file for the random image")
	flag.Parse()

	if *unsafeDir != "" {
		if err := os.MkdirAll(*unsafeDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "naclgen:", err)
			os.Exit(1)
		}
		for name, img := range nacl.UnsafeCorpus() {
			path := filepath.Join(*unsafeDir, name+".bin")
			if err := os.WriteFile(path, img, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "naclgen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, len(img))
		}
		return
	}

	gen := nacl.NewGenerator(*seed)
	img, err := gen.Random(*n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "naclgen:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, img, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "naclgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d bytes (~%d instructions), NaCl-compliant\n", *out, len(img), *n)
}

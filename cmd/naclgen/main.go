// Command naclgen produces test binaries for the checkers: random
// NaCl-compliant images (the stand-in for Csmith + NaCl-GCC output) and
// the hand-crafted unsafe corpus.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rocksalt/internal/nacl"
	"rocksalt/internal/seedflag"
)

func main() {
	n := flag.Int("n", 200, "approximate instruction count for random images")
	seed := seedflag.Register(flag.CommandLine)
	unsafeDir := flag.String("unsafe", "", "write the unsafe corpus into this directory")
	out := flag.String("o", "image.bin", "output file for the random image")
	flag.Parse()
	seedflag.Announce(os.Stdout, "naclgen", *seed)

	if *unsafeDir != "" {
		if err := os.MkdirAll(*unsafeDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "naclgen:", err)
			os.Exit(1)
		}
		for name, img := range nacl.UnsafeCorpus() {
			path := filepath.Join(*unsafeDir, name+".bin")
			if err := os.WriteFile(path, img, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "naclgen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, len(img))
		}
		return
	}

	gen := nacl.NewGenerator(*seed)
	img, err := gen.Random(*n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "naclgen:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, img, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "naclgen:", err)
		os.Exit(1)
	}
	// A raw .bin carries no provenance, so write a sidecar recording the
	// seed and size needed to regenerate it.
	meta, err := seedflag.MarshalMeta("naclgen", *seed, map[string]any{"n": *n})
	if err != nil {
		fmt.Fprintln(os.Stderr, "naclgen:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out+".meta.json", meta, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "naclgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d bytes (~%d instructions), NaCl-compliant (seed in %s.meta.json)\n", *out, len(img), *n, *out)
}

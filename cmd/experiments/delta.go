package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"time"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/vcache"
)

// deltaChunk mirrors the engine's retained-chunk granularity (64 KiB,
// four shards); the benchmark aligns its tiled image to it so the
// expected reparse counts are exact.
const deltaChunk = 64 << 10

// benchDelta measures incremental re-verification: the cost of a
// VerifyDelta round as a function of edit size on a large image,
// against the cold full verify it replaces. It cross-checks every
// delta verdict against a from-scratch run on the same bytes, times
// the bounded-window streaming verifier on the same image, exercises
// the vcache store-back satellite, writes host-stamped
// BENCH_delta.json with the headline delta_speedup (4 KiB edit vs
// cold full verify), and under -quick exits nonzero if any
// machine-invariant criterion fails.
func benchDelta() {
	header("delta", "incremental re-verification cost vs edit size (extension)",
		"beyond the paper: retained stage-1 state makes re-verify O(changed bytes), not O(image)")

	c, err := core.NewChecker()
	if err != nil {
		panic(err)
	}
	target := 64 << 20
	genInsns := 180000
	rounds := 12
	if *quick {
		target, genInsns, rounds = 4<<20, 30000, 5
	}

	// A large compliant image, built by tiling one generated tile padded
	// to a chunk multiple with single-byte nops. Tiling preserves
	// compliance: direct-jump displacements are relative, so every
	// target shifts with its copy and stays inside it; bundle phase is
	// preserved because the tile is a bundle multiple; nop bytes are
	// boundaries everywhere.
	tile, err := nacl.NewGenerator(11).Random(genInsns)
	if err != nil {
		panic(err)
	}
	if pad := (deltaChunk - len(tile)%deltaChunk) % deltaChunk; pad > 0 {
		tile = append(tile, bytes.Repeat([]byte{0x90}, pad)...)
	}
	copies := target / len(tile)
	if copies < 1 {
		copies = 1
	}
	pristine := bytes.Repeat(tile, copies)
	if !c.Verify(pristine) {
		panic("tiled benchmark image rejected")
	}
	mb := float64(len(pristine)) / 1e6
	fmt.Printf("   image: %d bytes (%d x %d-byte tile), %d chunks\n",
		len(pristine), copies, len(tile), len(pristine)/deltaChunk)

	bestOf := func(f func()) time.Duration {
		f() // warm tables, scratch pool, page cache
		best := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	sameReport := func(a, b *core.Report) bool {
		return a.Safe == b.Safe && a.Outcome == b.Outcome && a.Total == b.Total &&
			reflect.DeepEqual(a.Violations, b.Violations)
	}

	sopts := core.VerifyOptions{Workers: 1}
	cold := bestOf(func() { c.VerifyWith(pristine, sopts) })
	fmt.Printf("   %-26s %12.2f ms %9.1f MB/s\n", "cold full verify", float64(cold.Nanoseconds())/1e6, mb/cold.Seconds())

	// Streaming: the same image through the bounded two-chunk window.
	ropts := core.VerifyOptions{StreamSize: int64(len(pristine))}
	streamD := bestOf(func() {
		rep, rerr := c.VerifyReader(bytes.NewReader(pristine), ropts)
		if rerr != nil || !rep.Safe {
			panic("streaming verify disagreed on the pristine image")
		}
	})
	fmt.Printf("   %-26s %12.2f ms %9.1f MB/s\n", "streaming (128 KiB window)", float64(streamD.Nanoseconds())/1e6, mb/streamD.Seconds())

	// Build the initial delta state (a full parse that retains its
	// artifacts), then measure steady-state rounds per edit size.
	img := append([]byte(nil), pristine...)
	rep0, state, err := c.VerifyDeltaWith(img, nil, nil, sopts)
	if err != nil {
		panic(err)
	}
	if !rep0.Safe {
		panic("state-building delta round rejected the image")
	}

	type row struct {
		EditBytes      int     `json:"edit_bytes"`
		DeltaNs        float64 `json:"delta_ns"`
		Speedup        float64 `json:"speedup"`
		ChunksReparsed int64   `json:"chunks_reparsed"`
		BytesReparsed  int64   `json:"bytes_reparsed"`
		MatchesFull    bool    `json:"matches_full"`
	}
	var rows []row
	allEqual := true
	editSizes := []int{1, 64, 4096, 65536, 1 << 20}
	for _, e := range editSizes {
		if e > len(img)/2 {
			continue
		}
		off := (len(img) / 2) &^ 4095
		for i := 0; i < e; i++ {
			img[off+i] = 0x90
		}
		ranges := []core.Range{{Off: off, Len: e}}
		var rep *core.Report
		rep, state, err = c.VerifyDeltaWith(img, ranges, state, sopts)
		if err != nil {
			panic(err)
		}
		full := c.VerifyWith(img, sopts)
		equal := sameReport(rep, full)
		allEqual = allEqual && equal
		d := bestOf(func() {
			rep, state, err = c.VerifyDeltaWith(img, ranges, state, sopts)
			if err != nil {
				panic(err)
			}
		})
		r := row{
			EditBytes:      e,
			DeltaNs:        float64(d.Nanoseconds()),
			Speedup:        float64(cold.Nanoseconds()) / float64(d.Nanoseconds()),
			ChunksReparsed: rep.Stats.DeltaChunksReparsed,
			BytesReparsed:  rep.Stats.DeltaBytesReparsed,
			MatchesFull:    equal,
		}
		rows = append(rows, r)
		fmt.Printf("   edit %8d B: %10.0f ns  %7.1fx vs cold  (%d chunks, %d bytes reparsed, full-match %v)\n",
			r.EditBytes, r.DeltaNs, r.Speedup, r.ChunksReparsed, r.BytesReparsed, equal)
	}

	speedup := 0.0
	oneByteChunks := int64(0)
	for _, r := range rows {
		if r.EditBytes == 4096 {
			speedup = r.Speedup
		}
		if r.EditBytes == 1 {
			oneByteChunks = r.ChunksReparsed
		}
	}

	// Store-back satellite: a fresh delta round with a cache attached
	// must warm the ordinary chunked path completely.
	cache := vcache.New(256 << 20)
	if _, _, err := c.VerifyDeltaWith(pristine, nil, nil, core.VerifyOptions{Workers: 1, Cache: cache}); err != nil {
		panic(err)
	}
	warm := c.VerifyWith(pristine, core.VerifyOptions{Workers: 1, Cache: cache})
	wantHits := int64(len(pristine)/deltaChunk - 1) // the final chunk is never cached
	storeBackOK := warm.Safe && warm.Stats.CacheChunkHits == wantHits && warm.Stats.CacheChunkMisses == 0
	fmt.Printf("   store-back: warm run hit %d/%d chunks, %d misses (hit ratio %.0f%%)\n",
		warm.Stats.CacheChunkHits, wantHits, warm.Stats.CacheChunkMisses, 100*warm.Stats.ChunkHitRatio())

	out := struct {
		GeneratedBy  string   `json:"generated_by"`
		Quick        bool     `json:"quick"`
		Host         hostMeta `json:"host"`
		Bytes        int      `json:"bytes"`
		Rounds       int      `json:"rounds"`
		ColdNs       float64  `json:"cold_full_ns"`
		ColdMBPerS   float64  `json:"cold_full_mb_per_s"`
		StreamNs     float64  `json:"stream_ns"`
		StreamMBPerS float64  `json:"stream_mb_per_s"`
		Rows         []row    `json:"results"`
		DeltaSpeedup float64  `json:"delta_speedup"`
		StoreBackOK  bool     `json:"store_back_ok"`
	}{
		GeneratedBy:  "go run ./cmd/experiments -run delta",
		Quick:        *quick,
		Host:         hostInfo(),
		Bytes:        len(pristine),
		Rounds:       rounds,
		ColdNs:       float64(cold.Nanoseconds()),
		ColdMBPerS:   mb / cold.Seconds(),
		StreamNs:     float64(streamD.Nanoseconds()),
		StreamMBPerS: mb / streamD.Seconds(),
		Rows:         rows,
		DeltaSpeedup: speedup,
		StoreBackOK:  storeBackOK,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_delta.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("   wrote BENCH_delta.json (4 KiB edit on %d MiB image: %.0fx vs cold full verify)\n",
		len(pristine)>>20, speedup)

	// Machine-invariant criteria: every delta verdict byte-identical to
	// the full run, a 1-byte edit reparsing at most its chunk, a
	// possible overhang neighbor and the tail, and store-back complete.
	ok := allEqual && oneByteChunks > 0 && oneByteChunks <= 3 && storeBackOK
	if *quick {
		fmt.Printf("   verdict: %s (quick: delta == full on every edit, 1 B edit <= 3 chunks, store-back complete)\n", pass(ok))
		if !ok {
			os.Exit(1)
		}
		return
	}
	full := ok && speedup >= 50
	fmt.Printf("   verdict: %s (delta == full, 1 B edit <= 3 chunks, store-back complete, 4 KiB edit >= 50x cold)\n", pass(full))
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/vcache"
)

// benchStride is the bandwidth-bound scanning benchmark: the byte-class
// / two-stride / SWAR engine work and the content-addressed verdict
// cache, measured against the recorded fused baseline. It prints the
// table, writes BENCH_stride.json (host-stamped), and — the CI perf
// smoke — exits nonzero under -quick if the strided or SWAR engine is
// slower than the scalar-fused walk measured in the same run, or if
// the lean Verify path allocates.
func benchStride() {
	header("stride", "two-stride + SWAR engines + verdict cache (extension)",
		"beyond the paper: byte-class compaction, multi-byte SWAR stepping, and content-addressed re-verification")

	c, err := core.NewChecker()
	if err != nil {
		panic(err)
	}
	n := 400000
	rounds := 30
	if *quick {
		n, rounds = 40000, 8
	}
	img, err := nacl.NewGenerator(3).Random(n)
	if err != nil {
		panic(err)
	}
	if !c.Verify(img) {
		panic("benchmark image rejected")
	}
	mb := float64(len(img)) / 1e6

	// Best-of-N single-run timings: throughput is the metric, so the
	// minimum (the run least disturbed by the host) is the honest
	// estimate on shared machines; the JSON records how many rounds.
	bestOf := func(f func()) time.Duration {
		f() // warm tables, scratch pool, page cache
		best := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	type row struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
		MBPerS  float64 `json:"mb_per_s"`
	}
	var rows []row
	engineRow := func(name string, opts core.VerifyOptions) row {
		if !c.VerifyWith(img, opts).Safe {
			panic(name + " rejected the benchmark image")
		}
		d := bestOf(func() { c.VerifyWith(img, opts) })
		r := row{Name: name, NsPerOp: float64(d.Nanoseconds()), MBPerS: mb / d.Seconds()}
		rows = append(rows, r)
		fmt.Printf("   %-22s %12.0f ns/op %9.1f MB/s\n", r.Name, r.NsPerOp, r.MBPerS)
		return r
	}

	scalar := engineRow("fused-scalar", core.VerifyOptions{Workers: 1, Engine: core.EngineFusedScalar})
	lanes := engineRow("lanes (forced)", core.VerifyOptions{Workers: 1, StrideBudgetBytes: -1})
	strided := engineRow("strided (forced)", core.VerifyOptions{Workers: 1, Engine: core.EngineStrided})
	swar := engineRow("swar (forced)", core.VerifyOptions{Workers: 1, Engine: core.EngineSWAR})
	fused := engineRow("fused (default)", core.VerifyOptions{Workers: 1})

	// The lean boolean path must stay allocation-free with the cache off.
	leanAllocs := testing.AllocsPerRun(10, func() { c.Verify(img) })
	fmt.Printf("   %-22s %27.1f allocs/op\n", "Verify (lean, no cache)", leanAllocs)

	// Verdict cache: cold (hash + parse + store), warm with rehash (hash
	// + whole-image hit), warm keyed (lookup only — the caller holds the
	// key from a prior Report).
	cache := vcache.New(256 << 20)
	copts := core.VerifyOptions{Workers: 1, Cache: cache}
	rep := c.VerifyWith(img, copts)
	if !rep.Safe || rep.CacheKey == "" {
		panic("cached verification failed")
	}
	key, err := vcache.ParseKey(rep.CacheKey)
	if err != nil {
		panic(err)
	}
	warmRehash := bestOf(func() {
		if c.VerifyWith(img, copts).Stats.CacheWholeHits != 1 {
			panic("warm run missed the cache")
		}
	})
	kopts := copts
	kopts.CacheKey = &key
	warmKeyed := bestOf(func() {
		if c.VerifyWith(img, kopts).Stats.CacheWholeHits != 1 {
			panic("keyed run missed the cache")
		}
	})
	uncachedNs := fused.NsPerOp
	rehashSpeedup := uncachedNs / float64(warmRehash.Nanoseconds())
	keyedSpeedup := uncachedNs / float64(warmKeyed.Nanoseconds())
	fmt.Printf("   warm re-verify (rehash) %v  %.1fx vs uncached\n", warmRehash, rehashSpeedup)
	fmt.Printf("   warm re-verify (keyed)  %v  %.0fx vs uncached\n", warmKeyed, keyedSpeedup)

	// The recorded sequential fused baseline this work is judged against
	// (BENCH_fused.json's E2 number from the fusion PR's reference run);
	// re-read when present so a re-benched file carries through.
	recordedBaseline := 246.29
	if data, rerr := os.ReadFile("BENCH_fused.json"); rerr == nil {
		var prior struct {
			FusedMBs float64 `json:"fused_mb_per_s"`
		}
		if json.Unmarshal(data, &prior) == nil && prior.FusedMBs > 0 {
			recordedBaseline = prior.FusedMBs
		}
	}
	ratioVsRecorded := fused.MBPerS / recordedBaseline
	ratioVsScalar := strided.MBPerS / scalar.MBPerS
	swarVsRecorded := swar.MBPerS / recordedBaseline
	swarVsScalar := swar.MBPerS / scalar.MBPerS
	swarVsLanes := swar.MBPerS / lanes.MBPerS

	out := struct {
		GeneratedBy       string   `json:"generated_by"`
		Quick             bool     `json:"quick"`
		Host              hostMeta `json:"host"`
		Bytes             int      `json:"bytes"`
		Rounds            int      `json:"rounds"`
		Rows              []row    `json:"results"`
		RecordedFusedMBs  float64  `json:"recorded_fused_mb_per_s"`
		FusedVsRecorded   float64  `json:"fused_vs_recorded"`
		StridedVsScalar   float64  `json:"strided_vs_scalar"`
		SWARVsRecorded    float64  `json:"swar_vs_recorded"`
		SWARVsScalar      float64  `json:"swar_vs_scalar"`
		SWARVsLanes       float64  `json:"swar_vs_lanes"`
		LeanAllocsPerOp   float64  `json:"lean_allocs_per_op"`
		WarmRehashNs      float64  `json:"warm_rehash_ns"`
		WarmRehashSpeedup float64  `json:"warm_rehash_speedup"`
		WarmKeyedNs       float64  `json:"warm_keyed_ns"`
		WarmKeyedSpeedup  float64  `json:"warm_keyed_speedup"`
	}{
		GeneratedBy:       "go run ./cmd/experiments -run stride",
		Quick:             *quick,
		Host:              hostInfo(),
		Bytes:             len(img),
		Rounds:            rounds,
		Rows:              rows,
		RecordedFusedMBs:  recordedBaseline,
		FusedVsRecorded:   ratioVsRecorded,
		StridedVsScalar:   ratioVsScalar,
		SWARVsRecorded:    swarVsRecorded,
		SWARVsScalar:      swarVsScalar,
		SWARVsLanes:       swarVsLanes,
		LeanAllocsPerOp:   leanAllocs,
		WarmRehashNs:      float64(warmRehash.Nanoseconds()),
		WarmRehashSpeedup: rehashSpeedup,
		WarmKeyedNs:       float64(warmKeyed.Nanoseconds()),
		WarmKeyedSpeedup:  keyedSpeedup,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_stride.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("   wrote BENCH_stride.json (fused %.1f MB/s = %.2fx recorded %.1f; swar %.2fx recorded; strided/scalar %.2fx; keyed warm %.0fx)\n",
		fused.MBPerS, ratioVsRecorded, recordedBaseline, swarVsRecorded, ratioVsScalar, keyedSpeedup)

	ok := ratioVsScalar >= 1.0 && swarVsScalar >= 1.0 && leanAllocs == 0
	full := ok && ratioVsRecorded >= 1.25 && swarVsRecorded >= 1.25 && keyedSpeedup > 100
	if *quick {
		// CI perf smoke: the invariants that hold on any machine at any
		// load — strided and SWAR no slower than the scalar walk they
		// replace, and the lean path allocation-free. Throughput-vs-
		// recorded is a full-run criterion (the recorded number belongs
		// to a specific host, and quick images are too small for stable
		// MB/s).
		fmt.Printf("   verdict: %s (quick: strided and swar >= scalar same-run, lean Verify 0 allocs)\n", pass(ok))
		if !ok {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("   verdict: %s (fused and swar >= 1.25x recorded baseline, strided/swar >= scalar, keyed warm > 100x, 0 allocs)\n",
		pass(full))
}

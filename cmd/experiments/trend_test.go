package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

// strideDoc renders a minimal BENCH_stride.json with the given fused
// throughput and timestamp.
func strideDoc(stamp string, fusedMBs, swarMBs, warm float64) string {
	return fmt.Sprintf(`{
  "quick": false,
  "host": {"cpu_model": "TestCPU", "num_cpu": 1, "goos": "linux", "goarch": "amd64", "timestamp": %q},
  "results": [
    {"name": "fused (default)", "mb_per_s": %g},
    {"name": "swar (forced)", "mb_per_s": %g},
    {"name": "fused-scalar", "mb_per_s": 150}
  ],
  "warm_rehash_speedup": %g
}`, stamp, fusedMBs, swarMBs, warm)
}

// TestTrendDetectsInjectedRegression: two points on the same host where
// the newer one lost >10% fused throughput must flag exactly that
// series.
func TestTrendDetectsInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	// History lives beside the current file under distinct names — the
	// collector matches any BENCH_*.json.
	writeBench(t, dir, "BENCH_stride.json", strideDoc("2026-08-07T10:00:00Z", 250, 300, 3.0))
	old := filepath.Join(dir, "history")
	if err := os.Mkdir(old, 0o755); err != nil {
		t.Fatal(err)
	}
	writeBench(t, old, "BENCH_stride.json", strideDoc("2026-08-01T10:00:00Z", 360, 310, 3.9))

	points, err := collectBench(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("parsed %d points, want 2", len(points))
	}
	rows := judgeTrend(points, 0.10)
	got := map[string]bool{}
	for _, r := range rows {
		if !r.HasPrev {
			t.Errorf("%s: expected two points, got single", r.Metric)
		}
		got[r.Metric] = r.Regressed
	}
	// fused dropped 360 -> 250 (-31%): regression. swar 310 -> 300
	// (-3%): within threshold. warm 3.9 -> 3.0 (-23%): regression.
	for metric, want := range map[string]bool{
		"fused_mb_per_s":     true,
		"swar_mb_per_s":      false,
		"warm_cache_speedup": true,
	} {
		if got[metric] != want {
			t.Errorf("%s regressed = %v, want %v (rows %+v)", metric, got[metric], want, rows)
		}
	}
}

// TestTrendOverheadMetricAbsoluteMargin: overhead percentages are
// judged by absolute points, so a swing inside the margin around zero
// never trips the gate, and a real blowup does.
func TestTrendOverheadMetricAbsoluteMargin(t *testing.T) {
	obsvDoc := func(stamp string, overhead, recorder float64) string {
		return fmt.Sprintf(`{
  "quick": false,
  "host": {"cpu_model": "TestCPU", "num_cpu": 1, "goos": "linux", "goarch": "amd64", "timestamp": %q},
  "overhead_pct": %g,
  "recorder_overhead_pct": %g
}`, stamp, overhead, recorder)
	}
	dir := t.TempDir()
	writeBench(t, dir, "BENCH_obsv.json", obsvDoc("2026-08-07T10:00:00Z", 1.5, 9.0))
	sub := filepath.Join(dir, "history")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	writeBench(t, sub, "BENCH_obsv.json", obsvDoc("2026-08-01T10:00:00Z", -0.9, 2.1))

	points, err := collectBench(dir)
	if err != nil {
		t.Fatal(err)
	}
	rows := judgeTrend(points, 0.10)
	got := map[string]bool{}
	for _, r := range rows {
		got[r.Metric] = r.Regressed
	}
	// telemetry: -0.9 -> 1.5 is +2.4 pts, inside the 3-pt margin.
	// recorder: 2.1 -> 9.0 is +6.9 pts, a real regression.
	if got["telemetry_overhead_pct"] {
		t.Error("telemetry overhead swing inside the margin flagged as regression")
	}
	if !got["recorder_overhead_pct"] {
		t.Error("recorder overhead blowup not flagged")
	}
}

// TestTrendSkipsQuickAndForeignHosts: quick points are excluded from
// series, and points from different hosts never judge each other.
func TestTrendSkipsQuickAndForeignHosts(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, "BENCH_stride.json", strideDoc("2026-08-07T10:00:00Z", 250, 300, 3.0))
	sub := filepath.Join(dir, "a")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	// Quick point with a huge number: must not become the baseline.
	quick := `{
  "quick": true,
  "host": {"cpu_model": "TestCPU", "num_cpu": 1, "goos": "linux", "goarch": "amd64", "timestamp": "2026-08-01T10:00:00Z"},
  "results": [{"name": "fused (default)", "mb_per_s": 9000}],
  "warm_rehash_speedup": 99
}`
	writeBench(t, sub, "BENCH_stride.json", quick)
	// Same metrics from a different host: separate series.
	foreign := `{
  "quick": false,
  "host": {"cpu_model": "OtherCPU", "num_cpu": 64, "goos": "linux", "goarch": "arm64", "timestamp": "2026-08-02T10:00:00Z"},
  "results": [{"name": "fused (default)", "mb_per_s": 8000}],
  "warm_rehash_speedup": 50
}`
	sub2 := filepath.Join(dir, "b")
	if err := os.Mkdir(sub2, 0o755); err != nil {
		t.Fatal(err)
	}
	writeBench(t, sub2, "BENCH_stride.json", foreign)

	points, err := collectBench(dir)
	if err != nil {
		t.Fatal(err)
	}
	rows := judgeTrend(points, 0.10)
	for _, r := range rows {
		if r.Regressed {
			t.Errorf("%s on %s flagged: quick or foreign points leaked into the series", r.Metric, r.HostKey)
		}
		if r.HasPrev {
			t.Errorf("%s on %s has a previous point; each host should have exactly one", r.Metric, r.HostKey)
		}
	}
}

// TestTrendPassesOnRepoBenchSet is the self-check the CI gate relies
// on: the committed BENCH files must parse and pass.
func TestTrendPassesOnRepoBenchSet(t *testing.T) {
	root := findModuleRoot()
	if root == "" {
		t.Skip("module root not found")
	}
	points, err := collectBench(root)
	if err != nil {
		t.Fatalf("committed BENCH set does not parse: %v", err)
	}
	if len(points) == 0 {
		t.Fatal("no BENCH files found in the repository")
	}
	for _, r := range judgeTrend(points, 0.10) {
		if r.Regressed {
			t.Errorf("committed BENCH set carries a regression: %s", r.RegressMsg)
		}
	}
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The perf-trend observatory: -run trend walks the tree for
// BENCH_*.json files (the current set plus any archived copies, e.g. a
// bench-history/ directory of past runs), extracts the tracked
// headline metrics, groups them by host so a laptop run never judges a
// CI run, and fails when the newest point regresses against the best
// earlier point for the same (host, metric). With a single point per
// series — the normal state of a fresh checkout — there is nothing to
// compare and the gate passes; history accumulates wherever copies of
// the BENCH files are kept.

var trendThreshold = flag.Float64("trend-threshold", 0.10,
	"relative regression tolerance for throughput-style trend metrics (0.10 = 10%)")

// overheadMarginPts is the absolute tolerance, in percentage points,
// for overhead-style metrics (values near zero make relative
// thresholds meaningless).
const overheadMarginPts = 3.0

// trendMetric describes one tracked headline series.
type trendMetric struct {
	name string
	// higherBetter: regression = drop below best*(1-threshold).
	// !higherBetter (overhead percentages): regression = rise above
	// best + overheadMarginPts.
	higherBetter bool
}

// trackedMetrics is the observatory's contract: the headline numbers
// the repo promises not to silently lose.
var trackedMetrics = []trendMetric{
	{"fused_mb_per_s", true},
	{"swar_mb_per_s", true},
	{"warm_cache_speedup", true},
	{"telemetry_overhead_pct", false},
	{"recorder_overhead_pct", false},
	{"delta_speedup", true},
}

// benchPoint is one parsed BENCH file: where it came from, which host
// produced it, when, and the tracked metrics it contained.
type benchPoint struct {
	Path    string
	Bench   string // "stride", "obsv", ...
	HostKey string
	Stamp   string // RFC3339 from host.timestamp; file mtime fallback
	Quick   bool
	Metrics map[string]float64
}

// collectBench walks root for BENCH_*.json files (skipping .git and
// per-package testdata fixtures) and parses each into a benchPoint.
// Files with no tracked metrics are dropped; malformed JSON is an
// error — a corrupt bench artifact should fail the gate loudly, not
// vanish from the table.
func collectBench(root string) ([]benchPoint, error) {
	var points []benchPoint
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		p, perr := parseBench(path, name, data)
		if perr != nil {
			return fmt.Errorf("%s: %v", path, perr)
		}
		if len(p.Metrics) > 0 {
			points = append(points, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range points {
		if points[i].Stamp == "" {
			if fi, err := os.Stat(points[i].Path); err == nil {
				points[i].Stamp = fi.ModTime().UTC().Format("2006-01-02T15:04:05Z")
			}
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Stamp < points[j].Stamp })
	return points, nil
}

// parseBench extracts the tracked metrics from one BENCH file. The
// extraction is by bench kind (the filename suffix), mirroring each
// experiment's output schema.
func parseBench(path, name string, data []byte) (benchPoint, error) {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return benchPoint{}, err
	}
	p := benchPoint{
		Path:    path,
		Bench:   strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json"),
		Metrics: map[string]float64{},
	}
	p.Quick, _ = doc["quick"].(bool)
	if host, ok := doc["host"].(map[string]any); ok {
		str := func(k string) string { s, _ := host[k].(string); return s }
		p.HostKey = fmt.Sprintf("%s|%v|%s|%s", str("cpu_model"), host["num_cpu"], str("goos"), str("goarch"))
		p.Stamp = str("timestamp")
	} else {
		p.HostKey = "unknown"
	}
	num := func(k string) (float64, bool) { v, ok := doc[k].(float64); return v, ok }
	switch p.Bench {
	case "stride":
		if results, ok := doc["results"].([]any); ok {
			for _, r := range results {
				row, ok := r.(map[string]any)
				if !ok {
					continue
				}
				rname, _ := row["name"].(string)
				mbs, ok := row["mb_per_s"].(float64)
				if !ok {
					continue
				}
				switch rname {
				case "fused (default)":
					p.Metrics["fused_mb_per_s"] = mbs
				case "swar (forced)":
					p.Metrics["swar_mb_per_s"] = mbs
				}
			}
		}
		if v, ok := num("warm_rehash_speedup"); ok {
			p.Metrics["warm_cache_speedup"] = v
		}
	case "delta":
		if v, ok := num("delta_speedup"); ok {
			p.Metrics["delta_speedup"] = v
		}
	case "obsv":
		if v, ok := num("overhead_pct"); ok {
			p.Metrics["telemetry_overhead_pct"] = v
		}
		if v, ok := num("recorder_overhead_pct"); ok {
			p.Metrics["recorder_overhead_pct"] = v
		}
	}
	return p, nil
}

// trendRow is one (host, metric) series judged: its points in time
// order, the best previous value, the latest, and the verdict.
type trendRow struct {
	HostKey    string
	Metric     string
	Points     []float64
	Stamps     []string
	Latest     float64
	BestPrev   float64
	HasPrev    bool
	Regressed  bool
	RegressMsg string
}

// judgeTrend folds points into per-(host, metric) series and flags
// regressions of the latest point against the best earlier one. Quick
// points are excluded: CI smoke runs overwrite BENCH files with tiny
// workloads whose numbers measure nothing.
func judgeTrend(points []benchPoint, threshold float64) []trendRow {
	dir := map[string]bool{}
	order := map[string]int{}
	for i, m := range trackedMetrics {
		dir[m.name] = m.higherBetter
		order[m.name] = i
	}
	type key struct{ host, metric string }
	series := map[key]*trendRow{}
	var keys []key
	for _, p := range points { // already time-sorted
		if p.Quick {
			continue
		}
		for name, v := range p.Metrics {
			if _, tracked := dir[name]; !tracked {
				continue
			}
			k := key{p.HostKey, name}
			row, ok := series[k]
			if !ok {
				row = &trendRow{HostKey: p.HostKey, Metric: name}
				series[k] = row
				keys = append(keys, k)
			}
			row.Points = append(row.Points, v)
			row.Stamps = append(row.Stamps, p.Stamp)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].host != keys[j].host {
			return keys[i].host < keys[j].host
		}
		return order[keys[i].metric] < order[keys[j].metric]
	})
	rows := make([]trendRow, 0, len(keys))
	for _, k := range keys {
		row := series[k]
		n := len(row.Points)
		row.Latest = row.Points[n-1]
		if n > 1 {
			row.HasPrev = true
			higher := dir[row.Metric]
			best := row.Points[0]
			for _, v := range row.Points[1 : n-1] {
				if (higher && v > best) || (!higher && v < best) {
					best = v
				}
			}
			row.BestPrev = best
			if higher {
				floor := best * (1 - threshold)
				if row.Latest < floor {
					row.Regressed = true
					row.RegressMsg = fmt.Sprintf("%s: %.2f < %.2f (best %.2f - %.0f%%)",
						row.Metric, row.Latest, floor, best, threshold*100)
				}
			} else {
				ceil := best + overheadMarginPts
				if row.Latest > ceil {
					row.Regressed = true
					row.RegressMsg = fmt.Sprintf("%s: %.2f%% > %.2f%% (best %.2f%% + %.1f pts)",
						row.Metric, row.Latest, ceil, best, overheadMarginPts)
				}
			}
		}
		rows = append(rows, *row)
	}
	return rows
}

// trendGate is -run trend: print the host-keyed trajectory table and
// exit non-zero when any tracked headline metric regressed.
func trendGate() {
	header("trend", "perf-trend observatory (extension)",
		"beyond the paper: every BENCH artifact in the tree, folded into host-keyed trajectories with a regression gate")
	root := findModuleRoot()
	if root == "" {
		fmt.Println("   (module root not found; run from within the repository)")
		os.Exit(1)
	}
	points, err := collectBench(root)
	if err != nil {
		fmt.Printf("   collecting BENCH files: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("   %d BENCH files parsed under %s\n", len(points), root)
	rows := judgeTrend(points, *trendThreshold)
	if len(rows) == 0 {
		fmt.Println("   no tracked metrics found (nothing to gate)")
		fmt.Printf("   verdict: %s\n", pass(true))
		return
	}
	lastHost := ""
	regressions := 0
	for _, r := range rows {
		if r.HostKey != lastHost {
			fmt.Printf("   host: %s\n", r.HostKey)
			lastHost = r.HostKey
		}
		status := "single point"
		if r.HasPrev {
			status = fmt.Sprintf("best prev %.2f, ok", r.BestPrev)
			if r.Regressed {
				status = "REGRESSED"
				regressions++
			}
		}
		traj := make([]string, len(r.Points))
		for i, v := range r.Points {
			traj[i] = fmt.Sprintf("%.2f", v)
		}
		fmt.Printf("   %-26s %-28s latest %10.2f  (%s)\n",
			r.Metric, strings.Join(traj, " -> "), r.Latest, status)
		if r.Regressed {
			fmt.Printf("      %s\n", r.RegressMsg)
		}
	}
	fmt.Printf("   verdict: %s (%d tracked series, %d regressions, threshold %.0f%%/%.1f pts)\n",
		pass(regressions == 0), len(rows), regressions, *trendThreshold*100, overheadMarginPts)
	if regressions > 0 {
		os.Exit(1)
	}
}

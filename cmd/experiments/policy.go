package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/policy"
)

// benchPolicy measures the runtime policy compiler: cold compile time
// per spec (grammars → derivative DFAs → fuse → compact), memoized
// re-compile time, and verify throughput per compiled policy on a
// policy-compliant image. It prints the table, writes
// BENCH_policy.json (host-stamped), and — the CI smoke — exits nonzero
// under -quick if any policy fails to verify its own corpus, if the
// runtime-compiled default diverges from the embedded bundle, or if
// the lean Verify path on a compiled policy allocates.
func benchPolicy() {
	header("policy", "runtime policy compiler (extension)",
		"beyond the paper: the grammar→DFA pipeline as a library, driven by declarative policy specs")

	specs := []policy.Spec{policy.NaCl(), policy.NaCl16(), policy.REINS()}
	n := 400000
	rounds := 30
	if *quick {
		n, rounds = 40000, 8
	}

	bestOf := func(f func()) time.Duration {
		f()
		best := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	type row struct {
		Name          string  `json:"name"`
		CompileNs     float64 `json:"compile_ns"`
		WarmCompileNs float64 `json:"warm_compile_ns"`
		FusedStates   int     `json:"fused_states"`
		VerifyNs      float64 `json:"verify_ns"`
		MBPerS        float64 `json:"mb_per_s"`
		// ScalarMBPerS is the same-run forced byte-at-a-time walk — the
		// throughput non-32 bundles were stuck at before the lane/SWAR
		// region split was generalized to 16-byte bundles; VsScalar is
		// the speedup the generalization buys.
		ScalarMBPerS float64 `json:"scalar_mb_per_s"`
		VsScalar     float64 `json:"vs_scalar"`
	}
	var rows []row
	allVerified, nonDefaultFast := true, true
	var defaultMatchesEmbedded bool
	var leanAllocs float64

	for i, spec := range specs {
		start := time.Now()
		com, err := policy.Compile(spec)
		if err != nil {
			panic(err)
		}
		compile := time.Since(start)
		warm := bestOf(func() {
			if _, err := policy.Compile(spec); err != nil {
				panic(err)
			}
		})

		_, _, fusedTable, err := policy.FuseProduct(com.MaskedJump, com.NoControlFlow, com.DirectJump)
		if err != nil {
			panic(err)
		}

		checker, err := core.NewCheckerFromPolicy(com)
		if err != nil {
			panic(err)
		}
		prof, err := nacl.ProfileForSpec(com.Spec)
		if err != nil {
			panic(err)
		}
		img, err := nacl.NewGeneratorFor(int64(21+i), prof, com.SafeGrammar).Random(n)
		if err != nil {
			panic(err)
		}
		if !checker.Verify(img) {
			fmt.Printf("   %-10s REJECTED its own compliant image\n", com.Spec.Name)
			allVerified = false
			continue
		}
		mb := float64(len(img)) / 1e6
		d := bestOf(func() { checker.Verify(img) })
		sopts := core.VerifyOptions{Workers: 1, Engine: core.EngineFusedScalar}
		ds := bestOf(func() { checker.VerifyWith(img, sopts) })
		r := row{
			Name:          com.Spec.Name,
			CompileNs:     float64(compile.Nanoseconds()),
			WarmCompileNs: float64(warm.Nanoseconds()),
			FusedStates:   len(fusedTable),
			VerifyNs:      float64(d.Nanoseconds()),
			MBPerS:        mb / d.Seconds(),
			ScalarMBPerS:  mb / ds.Seconds(),
		}
		r.VsScalar = r.MBPerS / r.ScalarMBPerS
		rows = append(rows, r)
		fmt.Printf("   %-10s compile %8.1f ms (warm %6.0f ns), fused %3d states, verify %9.1f MB/s (%.2fx scalar %.1f)\n",
			r.Name, r.CompileNs/1e6, r.WarmCompileNs, r.FusedStates, r.MBPerS, r.VsScalar, r.ScalarMBPerS)
		if i > 0 && r.VsScalar < 1.5 {
			// The non-default (16-byte-bundle) policies must clear their
			// old scalar-fallback throughput by a wide margin now that
			// the lane/SWAR engines cover non-32 bundles.
			nonDefaultFast = false
		}

		if i == 0 {
			// Keystone: the runtime-compiled default must reproduce the
			// embedded bundle byte for byte.
			set := &core.DFASet{
				MaskedJump:    com.MaskedJump,
				NoControlFlow: com.NoControlFlow,
				DirectJump:    com.DirectJump,
			}
			var buf bytes.Buffer
			if err := set.WriteTablesV3(&buf); err != nil {
				panic(err)
			}
			defaultMatchesEmbedded = bytes.Equal(buf.Bytes(), core.EmbeddedTableBytes())
			fmt.Printf("   %-10s runtime-compiled tables == embedded bundle: %v\n", r.Name, defaultMatchesEmbedded)
		}
		if i == 1 {
			// The lean boolean path must stay allocation-free on compiled
			// (non-default-parameter) policies too.
			leanAllocs = testing.AllocsPerRun(10, func() { checker.Verify(img) })
			fmt.Printf("   %-10s lean Verify %.1f allocs/op\n", r.Name, leanAllocs)
		}
	}

	out := struct {
		GeneratedBy            string   `json:"generated_by"`
		Quick                  bool     `json:"quick"`
		Host                   hostMeta `json:"host"`
		Bytes                  int      `json:"bytes"`
		Rounds                 int      `json:"rounds"`
		Rows                   []row    `json:"results"`
		DefaultMatchesEmbedded bool     `json:"default_matches_embedded"`
		LeanAllocsPerOp        float64  `json:"lean_allocs_per_op"`
	}{
		GeneratedBy:            "go run ./cmd/experiments -run policy",
		Quick:                  *quick,
		Host:                   hostInfo(),
		Bytes:                  n,
		Rounds:                 rounds,
		Rows:                   rows,
		DefaultMatchesEmbedded: defaultMatchesEmbedded,
		LeanAllocsPerOp:        leanAllocs,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_policy.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}

	ok := allVerified && defaultMatchesEmbedded && leanAllocs == 0 && len(rows) == len(specs)
	fmt.Printf("   wrote BENCH_policy.json (%d policies)\n", len(rows))
	if *quick {
		// Quick images are too small for stable MB/s, so the 1.5x
		// non-default-bundle criterion is full-run only.
		fmt.Printf("   verdict: %s (every policy verifies its corpus, default == embedded bundle, lean Verify 0 allocs)\n",
			pass(ok))
		if !ok {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("   verdict: %s (corpus verified, default == embedded, 0 allocs, 16-byte policies >= 1.5x their scalar walk)\n",
		pass(ok && nonDefaultFast))
}

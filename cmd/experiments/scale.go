package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
)

// benchScale is the core-scaling sweep: stage-1 throughput as a
// function of the -j worker count, chasing the memory-bandwidth
// ceiling. The bundle invariant makes shards independent, so
// throughput should climb with workers until the shared L3/memory
// system saturates; the sweep records every point (MB/s, speedup vs
// sequential, parallel efficiency) plus the knee — the worker count
// past which adding cores stopped paying ≥10% — in BENCH_scale.json
// (host-stamped). The CI smoke — exit-coded under -quick — holds the
// worker-count invariants that are true on any machine: every point
// returns the same verdict, and no point collapses below half the
// sequential throughput.
func benchScale() {
	header("scale", "core-scaling sweep (extension)",
		"beyond the paper: sharded stage 1 scales across cores until memory bandwidth, not the checker, is the ceiling")

	c, err := core.NewChecker()
	if err != nil {
		panic(err)
	}
	n := 400000
	rounds := 10
	if *quick {
		n, rounds = 40000, 3
	}
	img, err := nacl.NewGenerator(3).Random(n)
	if err != nil {
		panic(err)
	}
	if !c.Verify(img) {
		panic("benchmark image rejected")
	}
	mb := float64(len(img)) / 1e6

	bestOf := func(f func()) time.Duration {
		f() // warm tables, scratch pool, page cache
		best := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	// Powers of two up to twice the core count (the oversubscribed point
	// shows scheduling overhead, not speedup), with the exact core count
	// always included.
	cores := runtime.NumCPU()
	var workerSet []int
	for w := 1; w <= 2*cores; w *= 2 {
		workerSet = append(workerSet, w)
	}
	if last := workerSet[len(workerSet)-1]; last != cores && last != 2*cores {
		workerSet = append(workerSet, cores)
	}

	type point struct {
		Workers    int     `json:"workers"`
		NsPerOp    float64 `json:"ns_per_op"`
		MBPerS     float64 `json:"mb_per_s"`
		Speedup    float64 `json:"speedup"`
		Efficiency float64 `json:"efficiency"`
	}
	var points []point
	var seqNs float64
	invariant := true
	knee := 1
	for _, w := range workerSet {
		opts := core.VerifyOptions{Workers: w}
		rep := c.VerifyWith(img, opts)
		if !rep.Safe || rep.Total != 0 {
			invariant = false
			fmt.Printf("   workers=%-3d VERDICT DIVERGED (safe=%v)\n", w, rep.Safe)
			continue
		}
		d := bestOf(func() { c.VerifyWith(img, opts) })
		p := point{Workers: w, NsPerOp: float64(d.Nanoseconds()), MBPerS: mb / d.Seconds()}
		if w == 1 {
			seqNs = p.NsPerOp
		}
		p.Speedup = seqNs / p.NsPerOp
		p.Efficiency = p.Speedup / float64(w)
		if len(points) > 0 && p.Speedup >= points[len(points)-1].Speedup*1.10 {
			knee = w
		}
		points = append(points, p)
		fmt.Printf("   workers=%-3d %12.0f ns/op %9.1f MB/s  speedup %5.2fx  efficiency %4.0f%%\n",
			p.Workers, p.NsPerOp, p.MBPerS, p.Speedup, p.Efficiency*100)
	}

	best := 0.0
	for _, p := range points {
		if p.Speedup > best {
			best = p.Speedup
		}
	}
	fmt.Printf("   knee: %d worker(s) on %d core(s) (last point that bought >= 10%%)\n", knee, cores)

	out := struct {
		GeneratedBy string   `json:"generated_by"`
		Quick       bool     `json:"quick"`
		Host        hostMeta `json:"host"`
		Bytes       int      `json:"bytes"`
		Rounds      int      `json:"rounds"`
		Points      []point  `json:"results"`
		KneeWorkers int      `json:"knee_workers"`
		BestSpeedup float64  `json:"best_speedup"`
	}{
		GeneratedBy: "go run ./cmd/experiments -run scale",
		Quick:       *quick,
		Host:        hostInfo(),
		Bytes:       len(img),
		Rounds:      rounds,
		Points:      points,
		KneeWorkers: knee,
		BestSpeedup: best,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_scale.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("   wrote BENCH_scale.json (%d points, best speedup %.2fx, knee at %d)\n",
		len(points), best, knee)

	// No point may collapse: oversubscription costs scheduling, never
	// half the sequential throughput.
	floor := true
	for _, p := range points {
		if p.Speedup < 0.5 {
			floor = false
		}
	}
	ok := invariant && floor && len(points) == len(workerSet)
	if *quick {
		fmt.Printf("   verdict: %s (quick: verdicts worker-invariant, no point below 0.5x sequential)\n", pass(ok))
		if !ok {
			os.Exit(1)
		}
		return
	}
	if cores >= 4 {
		fmt.Printf("   verdict: %s (>= 2x speedup expected with %d cores)\n", pass(ok && best >= 2), cores)
	} else {
		fmt.Printf("   verdict: %s (only %d core(s); sequential parity is the bar — the sweep records the ceiling for multi-core hosts)\n",
			pass(ok), cores)
	}
}

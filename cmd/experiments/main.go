// Command experiments regenerates every quantitative claim in the
// paper's evaluation (the E1–E8 index in DESIGN.md) and prints
// paper-vs-measured tables. EXPERIMENTS.md records a reference run.
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"time"

	"rocksalt/internal/armor"
	"rocksalt/internal/core"
	"rocksalt/internal/faultinject"
	"rocksalt/internal/grammar"
	"rocksalt/internal/nacl"
	"rocksalt/internal/ncval"
	"rocksalt/internal/sim"
	"rocksalt/internal/tso"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
	"rocksalt/internal/x86/machine"
	"rocksalt/internal/x86/semantics"
)

var quick = flag.Bool("quick", false, "smaller workloads for a fast pass")

func main() {
	run := flag.String("run", "", "comma-separated experiment ids (e1..e8, par, rtl, tso, fault, bench, obsv, stride, policy, scale, delta, campaign, trend); empty = all")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		if id != "" {
			want[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	type exp struct {
		id string
		fn func()
	}
	for _, e := range []exp{
		{"e1", e1Throughput},
		{"e2", e2CheckerComparison},
		{"e3", e3ArmorComparison},
		{"e4", e4DFASizes},
		{"e5", e5ModelValidation},
		{"e6", e6Agreement},
		{"e7", e7CheckerSize},
		{"e8", e8GrammarMetatheory},
		{"par", parScaling},
		{"rtl", rtlStats},
		{"tso", tsoLitmus},
		{"fault", faultCampaign},
		{"bench", benchFused},
		{"obsv", obsvOverhead},
		{"stride", benchStride},
		{"policy", benchPolicy},
		{"scale", benchScale},
		{"delta", benchDelta},
		{"campaign", runCampaign},
		{"trend", trendGate},
	} {
		// The campaign is a soak, not a benchmark, and the trend gate
		// judges artifacts rather than producing them: each only runs
		// when named explicitly, never as part of the default full pass.
		if (e.id == "campaign" || e.id == "trend") && !want[e.id] {
			continue
		}
		if sel(e.id) {
			e.fn()
			fmt.Println()
		}
	}
}

func header(id, title, paper string) {
	fmt.Printf("== %s: %s ==\n", strings.ToUpper(id), title)
	fmt.Printf("   paper: %s\n", paper)
}

// countInstructions uses the checker's own analysis to count matched
// units in an image.
func countInstructions(c *core.Checker, img []byte) int {
	valid, _, ok := c.Analyze(img)
	if !ok {
		return 0
	}
	n := 0
	for _, v := range valid {
		if v {
			n++
		}
	}
	return n
}

func e1Throughput() {
	header("e1", "RockSalt checking throughput",
		"RockSalt checks roughly 1M instructions per second (§1)")
	c, err := core.NewChecker()
	if err != nil {
		panic(err)
	}
	size := 400000
	if *quick {
		size = 40000
	}
	gen := nacl.NewGenerator(1)
	img, err := gen.Random(size)
	if err != nil {
		panic(err)
	}
	instrs := countInstructions(c, img)
	reps := 20
	start := time.Now()
	for i := 0; i < reps; i++ {
		if !c.Verify(img) {
			panic("image rejected")
		}
	}
	per := time.Since(start) / time.Duration(reps)
	rate := float64(instrs) / per.Seconds()
	fmt.Printf("   measured: %d instructions (%d bytes) checked in %v -> %.1fM instructions/second\n",
		instrs, len(img), per, rate/1e6)
	fmt.Printf("   verdict: %s (>= 1M/s expected on modern hardware)\n", pass(rate >= 1e6))
}

func e2CheckerComparison() {
	header("e2", "RockSalt vs Google-style checker speed",
		"no measurable difference on small benchmarks; 0.24s vs 0.90s (3.8x) on a ~200KLoC program (§3.3)")
	c, err := core.NewChecker()
	if err != nil {
		panic(err)
	}
	gen := nacl.NewGenerator(2)

	// Small benchmarks (the CompCert-suite stand-ins).
	small := make([][]byte, 21)
	for i := range small {
		small[i], err = gen.Random(2000)
		if err != nil {
			panic(err)
		}
	}
	rsSmall := benchmark(func() {
		for _, img := range small {
			c.Verify(img)
		}
	})
	ncSmall := benchmark(func() {
		for _, img := range small {
			ncval.Validate(img)
		}
	})
	fmt.Printf("   small suite (21 images): rocksalt %v, ncval %v\n", rsSmall, ncSmall)

	// The large program.
	size := 1200000
	if *quick {
		size = 120000
	}
	big, err := nacl.NewGenerator(3).Random(size)
	if err != nil {
		panic(err)
	}
	instrs := countInstructions(c, big)
	rsBig := benchmark(func() { c.Verify(big) })
	ncBig := benchmark(func() { ncval.Validate(big) })
	ratio := float64(ncBig) / float64(rsBig)
	fmt.Printf("   large image (%d instructions, %.1f MB): rocksalt %v, ncval %v (ncval/rocksalt = %.2fx)\n",
		instrs, float64(len(big))/1e6, rsBig, ncBig, ratio)
	fmt.Printf("   verdict: %s (paper says \"marginally faster\"; the 3.8x case compared against\n", pass(ratio >= 0.9))
	fmt.Println("   Google's full production validator, where our ncval is a lean reimplementation)")
}

func e3ArmorComparison() {
	header("e3", "table-driven vs theorem-prover-style verification",
		"Zhao et al. take ~2.5 hours for a 300-instruction program; RockSalt ~1M instr/s — 5+ orders of magnitude (§1)")
	c, err := core.NewChecker()
	if err != nil {
		panic(err)
	}
	img, err := nacl.NewGenerator(4).Random(300)
	if err != nil {
		panic(err)
	}
	instrs := countInstructions(c, img)
	start := time.Now()
	if !armor.Verify(img) {
		panic("armor rejected compliant image")
	}
	armorTime := time.Since(start)
	rsTime := benchmark(func() { c.Verify(img) })
	ratio := float64(armorTime) / float64(rsTime)
	fmt.Printf("   measured on %d instructions: armor-style %v, rocksalt %v -> %.0fx\n",
		instrs, armorTime, rsTime, ratio)
	fmt.Printf("   per instruction: armor-style %v, rocksalt %v\n",
		armorTime/time.Duration(instrs), rsTime/time.Duration(instrs))
	fmt.Printf("   verdict: %s (orders of magnitude, as in the paper)\n", pass(ratio > 1000))
}

func e4DFASizes() {
	header("e4", "checker DFA sizes",
		"the number of states is small enough (61 for the largest DFA) that no minimization is needed (§3.2)")
	start := time.Now()
	if _, err := core.BuildDFAs(); err != nil {
		panic(err)
	}
	build := time.Since(start)
	stats, _ := core.DFAStats()
	max := 0
	for name, n := range stats {
		fmt.Printf("   %-14s %3d states\n", name, n)
		if n > max {
			max = n
		}
	}
	fmt.Printf("   generated in %v\n", build)
	// Verify the "no minimization needed" observation: Hopcroft-minimize
	// the bit-level automata and compare.
	ctx := grammar.NewCtx()
	for name, g := range map[string]*grammar.Grammar{
		"MaskedJump":    core.MaskedJumpGrammar(),
		"NoControlFlow": core.NoControlFlowGrammar(),
		"DirectJump":    core.DirectJumpGrammar(),
	} {
		d, err := ctx.CompileBitDFA(ctx.Strip(g), 0)
		if err != nil {
			panic(err)
		}
		m := grammar.MinimizeBitDFA(d)
		fmt.Printf("   %-14s bit-level %4d states, minimal %4d (%.2fx)\n",
			name, d.NumStates(), m.NumStates(), float64(d.NumStates())/float64(m.NumStates()))
	}
	fmt.Printf("   verdict: %s (largest %d <= 61; derivatives near-minimal)\n", pass(max <= 61), max)
}

// parScaling measures the sharded engine beyond the paper: sequential
// vs N-worker throughput on the E2-sized image. The bundle invariant
// makes stage-1 shards independent, so throughput should scale with
// cores until memory bandwidth saturates.
func parScaling() {
	header("par", "sharded parallel verification scaling (extension)",
		"beyond the paper: stage-1 shard parsing scales across cores; verdicts and diagnostics are worker-count invariant")
	c, err := core.NewChecker()
	if err != nil {
		panic(err)
	}
	size := 1200000
	if *quick {
		size = 120000
	}
	img, err := nacl.NewGenerator(9).Random(size)
	if err != nil {
		panic(err)
	}
	instrs := countInstructions(c, img)
	mb := float64(len(img)) / 1e6
	fmt.Printf("   image: %d instructions, %.1f MB, %d shards of %d KiB\n",
		instrs, mb, (len(img)+core.ShardBytes-1)/core.ShardBytes, core.ShardBytes/1024)

	workerSet := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerSet = append(workerSet, n)
	}
	var seq time.Duration
	best := 1.0
	for _, w := range workerSet {
		opts := core.VerifyOptions{Workers: w}
		if !c.VerifyWith(img, opts).Safe {
			panic("image rejected")
		}
		d := benchmark(func() { c.VerifyWith(img, opts) })
		if w == 1 {
			seq = d
		}
		speedup := float64(seq) / float64(d)
		if speedup > best {
			best = speedup
		}
		fmt.Printf("   workers=%-2d  %10v  %7.1f MB/s  %5.1fM instr/s  speedup %.2fx\n",
			w, d, mb/d.Seconds(), float64(instrs)/d.Seconds()/1e6, speedup)
	}
	cores := runtime.NumCPU()
	if cores >= 4 {
		fmt.Printf("   verdict: %s (>= 2x expected with %d cores)\n", pass(best >= 2), cores)
	} else {
		fmt.Printf("   verdict: %s (only %d core(s) available; the 2x criterion needs >= 4 — sequential parity is the bar here)\n",
			pass(best >= 0.8), cores)
	}
}

// rtlStats is the DESIGN.md §6 ablation: the RTL staging claim — each
// instruction translates to a small, bounded RTL term, which is why
// reasoning over RTL scales where per-instruction case analysis did not.
func rtlStats() {
	header("rtl", "RTL ops per instruction",
		"compiling instructions to a small RISC-like core simplified our reasoning (§6.2)")
	rng := rand.New(rand.NewSource(12))
	sampler := grammar.NewSampler(rng)
	top := decode.TopGrammar()
	dec := decode.NewDecoder()
	n := 3000
	if *quick {
		n = 300
	}
	total, max, translated := 0, 0, 0
	hist := map[int]int{} // bucketed by tens
	for i := 0; i < n; i++ {
		bs, _, ok := sampler.SampleBytes(top, 4)
		if !ok {
			continue
		}
		inst, k, err := dec.Decode(bs)
		if err != nil {
			continue
		}
		prog, err := semantics.Translate(inst, 0x1000, k)
		if err != nil {
			continue
		}
		translated++
		total += len(prog)
		if len(prog) > max {
			max = len(prog)
		}
		hist[len(prog)/10*10]++
	}
	fmt.Printf("   %d sampled instructions translated; mean %.1f RTL ops, max %d\n",
		translated, float64(total)/float64(translated), max)
	for b := 0; b <= max; b += 10 {
		if hist[b] > 0 {
			fmt.Printf("   %3d-%3d ops: %5d\n", b, b+9, hist[b])
		}
	}
	fmt.Printf("   verdict: %s (terms stay small and bounded)\n", pass(max < 400))
}

func e5ModelValidation() {
	header("e5", "model validation by fuzzing and differential execution",
		"over 10M instruction instances validated against hardware via Pin; grammar fuzzing for rare encodings (§2.5)")
	n := 40000
	if *quick {
		n = 4000
	}
	rng := rand.New(rand.NewSource(5))
	sampler := grammar.NewSampler(rng)
	top := decode.TopGrammar()
	dec := decode.NewDecoder()

	// Decoder round-trip fuzzing.
	start := time.Now()
	bad := 0
	for i := 0; i < n; i++ {
		bs, v, ok := sampler.SampleBytes(top, 4)
		if !ok {
			continue
		}
		got, k, err := dec.Decode(bs)
		if err != nil || k != len(bs) || !reflect.DeepEqual(got, v.(x86.Inst)) {
			bad++
		}
	}
	fmt.Printf("   decoder fuzz: %d sampled encodings, %d mismatches (%v)\n", n, bad, time.Since(start))

	// Differential execution of the model against the reference.
	start = time.Now()
	executed, diverged := diffFuzz(rng, n/4)
	fmt.Printf("   differential execution: %d instances executed, %d divergences (%v)\n",
		executed, diverged, time.Since(start))
	fmt.Printf("   verdict: %s\n", pass(bad == 0 && diverged == 0))
}

func diffFuzz(rng *rand.Rand, n int) (executed, diverged int) {
	sampler := grammar.NewSampler(rng)
	top := decode.TopGrammar()
	dec := decode.NewDecoder()
	for i := 0; i < n; i++ {
		bs, _, ok := sampler.SampleBytes(top, 4)
		if !ok {
			continue
		}
		st := randomMachine(rng, bs)
		ref := st.Clone()
		s1 := sim.New(st)
		s1.Dec = dec
		err1 := s1.Step()
		err2 := sim.RefStep(&sim.Simulator{St: ref, Dec: dec})
		if errors.Is(err2, sim.ErrRefUnsupported) {
			continue
		}
		executed++
		if (err1 != nil) != (err2 != nil) ||
			(err1 == nil && (!st.EqualRegs(ref) || !st.Mem.Equal(ref.Mem))) {
			diverged++
		}
	}
	return executed, diverged
}

func randomMachine(rng *rand.Rand, code []byte) *machine.State {
	st := machine.New()
	const codeBase, dataBase = 0x10000, 0x100000
	for _, s := range []x86.SegReg{x86.ES, x86.SS, x86.DS, x86.FS, x86.GS} {
		st.SegBase[s] = dataBase
		st.SegLimit[s] = 0xffff
	}
	st.SegBase[x86.CS] = codeBase
	st.SegLimit[x86.CS] = uint32(len(code) - 1)
	st.Mem.WriteBytes(codeBase, code)
	for r := range st.Regs {
		st.Regs[r] = uint32(rng.Intn(0x7000))
	}
	st.Regs[x86.ESP] = 0x4000
	for f := range st.Flags {
		st.Flags[f] = rng.Intn(2) == 1
	}
	return st
}

func e6Agreement() {
	header("e6", "checker agreement",
		"RockSalt and Google's checker always agreed on >2000 generated programs plus hand-crafted unsafe ones (§3.3)")
	c, err := core.NewChecker()
	if err != nil {
		panic(err)
	}
	images := 2000
	if *quick {
		images = 200
	}
	gen := nacl.NewGenerator(6)
	rng := rand.New(rand.NewSource(7))
	disagreements, accepted, rejected := 0, 0, 0
	for i := 0; i < images; i++ {
		img, err := gen.Random(20)
		if err != nil {
			panic(err)
		}
		mut := append([]byte{}, img...)
		if i%2 == 1 { // half the corpus: mutated images
			for k := 0; k < 1+rng.Intn(4); k++ {
				mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
			}
		}
		a, b := c.Verify(mut), ncval.Validate(mut)
		if a != b {
			disagreements++
		}
		if a {
			accepted++
		} else {
			rejected++
		}
	}
	unsafeOK := true
	for _, img := range nacl.UnsafeCorpus() {
		if c.Verify(img) || ncval.Validate(img) {
			unsafeOK = false
		}
	}
	fmt.Printf("   %d images (%d accepted, %d rejected): %d disagreements\n",
		images, accepted, rejected, disagreements)
	fmt.Printf("   unsafe corpus rejected by both: %v\n", unsafeOK)
	fmt.Printf("   verdict: %s\n", pass(disagreements == 0 && unsafeOK))
}

func e7CheckerSize() {
	header("e7", "trusted checker size",
		"RockSalt's verifier is ~80 lines of Coq / <100 lines of C; Google's is ~600 statements (§3.1)")
	root := findModuleRoot()
	if root == "" {
		fmt.Println("   (source tree not found; run from within the repository)")
		return
	}
	rsLines := countCodeLines(filepath.Join(root, "internal/core/verifier.go"))
	ncLines := countCodeLines(filepath.Join(root, "internal/ncval/ncval.go"))
	fmt.Printf("   rocksalt trusted verifier loop: %d code lines (everything else is generated tables)\n", rsLines)
	fmt.Printf("   ncval hand-written validator:   %d code lines (decode intertwined with policy)\n", ncLines)
	fmt.Printf("   verdict: %s (verifier several times smaller)\n", pass(rsLines*2 < ncLines))
}

func e8GrammarMetatheory() {
	header("e8", "decoder grammar unambiguity",
		"the x86 grammar is proven unambiguous by reflection; a flipped bit in a MOV encoding was caught this way (§2.1, §4.1)")
	ctx := grammar.NewCtx()
	start := time.Now()
	err := grammar.CheckUnambiguous(ctx, decode.TopGrammar())
	fmt.Printf("   full-grammar ambiguity check: %v (%v)\n", errString(err), time.Since(start))

	start = time.Now()
	d, derr := ctx.CompileBitDFA(ctx.Strip(decode.TopGrammar()), 1<<21)
	if derr != nil {
		panic(derr)
	}
	fmt.Printf("   prefix-freedom via %d-state bit DFA: %v (%v)\n",
		d.NumStates(), d.PrefixFree(), time.Since(start))

	// Seed the paper's MOV bug and require detection.
	buggy := grammar.Alt(decode.InstructionsGrammar(false),
		grammar.Then(grammar.LitByte(0x8a), grammar.AnyByte()))
	seeded := grammar.CheckUnambiguous(grammar.NewCtx(), buggy)
	fmt.Printf("   seeded flipped-MOV-bit overlap detected: %v\n", seeded != nil)
	fmt.Printf("   verdict: %s\n", pass(err == nil && d.PrefixFree() && seeded != nil))
}

// tsoLitmus runs the store-buffering litmus test under the TSO extension
// (the paper's §6.1 future work) and under sequential consistency.
func tsoLitmus() {
	header("tso", "store-buffering litmus test (extension)",
		"§6.1: \"add a store buffer to the machine state for each processor\" to model TSO")
	const locX, locY = 0x10000, 0x20000
	movTo := func(addr, imm uint32) []byte {
		out := []byte{0xc7, 0x05, byte(addr), byte(addr >> 8), byte(addr >> 16), byte(addr >> 24)}
		return append(out, byte(imm), byte(imm>>8), byte(imm>>16), byte(imm>>24))
	}
	movFrom := func(r x86.Reg, addr uint32) []byte {
		return []byte{0x8b, byte(r)<<3 | 0x05, byte(addr), byte(addr >> 8), byte(addr >> 16), byte(addr >> 24)}
	}
	build := func() *tso.System {
		sys := tso.NewSystem(2)
		sys.LoadCode(0, 0x100, append(append(movTo(locX, 1), movFrom(x86.EAX, locY)...), 0xf4))
		sys.LoadCode(1, 0x800, append(append(movTo(locY, 1), movFrom(x86.EAX, locX)...), 0xf4))
		return sys
	}
	trials := 2000
	if *quick {
		trials = 300
	}
	rng := rand.New(rand.NewSource(13))
	count := func(sc bool) (zz, other int) {
		for i := 0; i < trials; i++ {
			sys := build()
			if sc {
				sys.RunSC(rng, 100)
			} else {
				sys.RunSchedule(tso.RandomSchedule(rng, 2, 8, 0.3))
			}
			if sys.CPUs[0].State.Regs[x86.EAX] == 0 && sys.CPUs[1].State.Regs[x86.EAX] == 0 {
				zz++
			} else {
				other++
			}
		}
		return
	}
	tsoZZ, _ := count(false)
	scZZ, _ := count(true)
	fmt.Printf("   r0=r1=0 under TSO: %d/%d schedules; under SC: %d/%d\n", tsoZZ, trials, scZZ, trials)
	fmt.Printf("   verdict: %s (the TSO-only outcome is reachable exactly when store buffers exist)\n",
		pass(tsoZZ > 0 && scZZ == 0))
}

// faultCampaign runs the adversarial fault-injection harness (the
// robustness extension): >= 10,000 deterministic mutants of compliant
// images, each either rejected by the checker or accepted and executed
// in the sandbox without escaping, plus a DFA-table corruption pass
// that must fail closed at the loader.
func faultCampaign() {
	header("fault", "adversarial fault injection (extension)",
		"beyond the paper: every mutant of a safe image is rejected, or accepted and contained — zero sandbox escapes")
	c, err := core.NewChecker()
	if err != nil {
		panic(err)
	}
	gen := nacl.NewGenerator(17)
	nBases, perKind := 5, 500 // 5 bases x 4 kinds x 500 = 10,000 mutants
	if *quick {
		nBases, perKind = 3, 100
	}
	bases := make([][]byte, nBases)
	for i := range bases {
		if bases[i], err = gen.Random(60); err != nil {
			panic(err)
		}
		if !c.Verify(bases[i]) {
			panic("base image rejected before mutation")
		}
	}
	// CrossCheck makes every mutant also a differential test of the
	// fused engine against the reference three-DFA loop.
	h := &faultinject.Harness{Checker: c, CrossCheck: true}
	start := time.Now()
	stats, err := h.Run(context.Background(), bases, perKind, 1)
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("   %d mutants over %d base images in %v (%.0f mutants/s)\n",
		stats.Mutants, len(bases), elapsed, float64(stats.Mutants)/elapsed.Seconds())
	fmt.Printf("   %-12s %8s %8s %10s %8s\n", "mutator", "mutants", "killed", "contained", "escapes")
	for k := 0; k < faultinject.NumImageKinds; k++ {
		ks := stats.PerKind[faultinject.Kind(k)]
		fmt.Printf("   %-12s %8d %8d %10d %8d\n",
			faultinject.Kind(k), ks.Mutants, ks.Rejected, ks.Contained, ks.Escapes)
	}
	fmt.Printf("   %-12s %8d %8d %10d %8d\n", "total",
		stats.Mutants, stats.Rejected, stats.Contained, len(stats.Escapes))
	for _, e := range stats.Escapes {
		fmt.Printf("   ESCAPE: %v\n", e)
	}

	// DFA-table corruption: the loader must fail closed, for both the
	// legacy v1 bundles and the fused v2 bundles NewChecker ships with.
	set, err := core.BuildDFAs()
	if err != nil {
		panic(err)
	}
	probes := append([][]byte{}, bases[0], bases[1])
	for _, img := range nacl.UnsafeCorpus() {
		probes = append(probes, img)
	}
	nTables := 1000
	if *quick {
		nTables = 200
	}
	var terr error
	for _, v := range []struct {
		name  string
		write func(*bytes.Buffer) error
	}{
		{"v1", func(b *bytes.Buffer) error { return set.WriteTables(b) }},
		{"v2", func(b *bytes.Buffer) error { return set.WriteTablesV2(b) }},
	} {
		var buf bytes.Buffer
		if err := v.write(&buf); err != nil {
			panic(err)
		}
		rejectedLoads, cleanLoads, verr := faultinject.CheckTables(buf.Bytes(), probes, c, nTables, 3)
		fmt.Printf("   table corruption (%s): %d corrupt bundles -> %d rejected by loader, %d loaded verdict-identical\n",
			v.name, nTables, rejectedLoads, cleanLoads)
		if verr != nil {
			fmt.Printf("   FAIL-OPEN: %v\n", verr)
			terr = verr
		}
	}
	fmt.Printf("   verdict: %s (zero escapes, engines agree, table loads fail closed)\n",
		pass(len(stats.Escapes) == 0 && terr == nil))
}

func errString(err error) string {
	if err == nil {
		return "unambiguous"
	}
	return err.Error()
}

func benchmark(f func()) time.Duration {
	// Warm up once, then average over enough runs to cross ~200ms.
	f()
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		elapsed := time.Since(start)
		if elapsed > 200*time.Millisecond || reps >= 1<<16 {
			return elapsed / time.Duration(reps)
		}
		reps *= 4
	}
}

func pass(ok bool) string {
	if ok {
		return "PASS"
	}
	return "CHECK"
}

func findModuleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

func countCodeLines(path string) int {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		n++
	}
	return n
}

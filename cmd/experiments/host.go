package main

import (
	"bufio"
	"os"
	"runtime"
	"strings"
	"time"
)

// hostMeta stamps every benchmark JSON with where and when the numbers
// were taken, so a recorded run can be judged against the machine that
// produced it instead of being mistaken for a universal constant.
type hostMeta struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUModel   string `json:"cpu_model,omitempty"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Timestamp  string `json:"timestamp"`
}

func hostInfo() hostMeta {
	return hostMeta{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUModel:   cpuModel(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
}

// cpuModel best-efforts the CPU model string ("" where unavailable —
// the field is informational, never load-bearing).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if name, val, ok := strings.Cut(line, ":"); ok {
			switch strings.TrimSpace(name) {
			case "model name", "Processor", "cpu model":
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

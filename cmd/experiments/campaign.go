package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rocksalt/internal/campaign"
	"rocksalt/internal/faultinject"
	"rocksalt/internal/seedflag"
	"rocksalt/internal/telemetry"
)

var (
	campaignDir = flag.String("campaign-dir", "campaign", "campaign state directory (plan, journal, checkpoint, repros)")
	resumeDir   = flag.String("resume", "", "resume the campaign in this directory (overrides -campaign-dir)")
	campPostDir = flag.String("postmortem-dir", "", "write a flight-recorder postmortem bundle for every watchdog-abandoned task into this directory")
	campSeed    = seedflag.Register(flag.CommandLine)
)

// runCampaign drives the crash-safe mass-agreement campaign: the
// deterministic work-plan of mutants per policy preset, each judged by
// rocksalt vs ncval vs armor and escape-checked in the simulator, with
// journal/checkpoint resume (-resume <dir>) and ddmin'd repros for any
// finding. It prints the per-policy kill/agree table, writes
// host-stamped BENCH_campaign.json, and — the CI smoke — exits nonzero
// under -quick on any disagreement, escape or reference fault.
func runCampaign() {
	header("campaign", "crash-safe mass-agreement campaign (extension)",
		"beyond the paper: the §3.3 agreement experiment as a resumable, fault-tolerant soak across policy presets")

	telemetry.SetEnabled(true)
	dir := *campaignDir
	if *resumeDir != "" {
		dir = *resumeDir
	}
	cfg := campaign.Config{
		Seed:          *campSeed,
		Workers:       runtime.GOMAXPROCS(0),
		PostmortemDir: *campPostDir,
	}
	if *quick {
		// A few thousand tasks across all three presets: enough to
		// exercise every mutator/policy cell and the armor stride.
		cfg.Bases, cfg.BaseInstrs, cfg.PerKind, cfg.ArmorStride = 2, 40, 130, 40
	} else {
		// 3 policies x 4 bases x 4 kinds x 2100 = 100,800 tasks.
		cfg.Bases, cfg.BaseInstrs, cfg.PerKind, cfg.ArmorStride = 4, 60, 2100, 16
	}
	seedflag.Announce(os.Stdout, "experiments -run campaign", *campSeed)

	c, err := campaign.Open(dir, cfg)
	if err != nil {
		panic(err)
	}
	defer c.Close()
	eff := c.Config()
	if c.Resumed() {
		fmt.Printf("   resuming %s: %d/%d tasks already journaled (plan seed %d)\n",
			dir, c.Done(), eff.NumTasks(), eff.Seed)
	} else {
		fmt.Printf("   new campaign in %s: %d tasks (%d policies x %d bases x %d kinds x %d mutants)\n",
			dir, eff.NumTasks(), len(eff.Policies), eff.Bases, faultinject.NumImageKinds, eff.PerKind)
	}

	start := time.Now()
	res, err := c.Run(context.Background())
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("   %d/%d tasks done in %v (%.0f tasks/s this run)\n",
		res.Done, res.Tasks, elapsed.Round(time.Millisecond),
		float64(res.Done)/elapsed.Seconds())
	fmt.Printf("   %-10s %8s %8s %8s %10s %8s %8s\n",
		"policy", "tasks", "kills", "agree", "disagree", "escape", "fault")
	bad := int64(0)
	for _, pt := range res.Policies {
		fmt.Printf("   %-10s %8d %8d %8d %10d %8d %8d\n",
			pt.Policy, pt.Tasks, pt.Kills, pt.Agreements, pt.Disagreements, pt.Escapes, pt.Faults)
		bad += pt.Disagreements + pt.Escapes + pt.Faults
	}
	for _, f := range res.Findings {
		fmt.Printf("   FINDING: task %d (%s/%s) %s: %s\n", f.Task, f.Policy, f.Kind, f.Verdict, f.Detail)
	}

	out := struct {
		Host      hostMeta         `json:"host"`
		Seed      int64            `json:"seed"`
		Dir       string           `json:"dir"`
		Resumed   bool             `json:"resumed"`
		Quick     bool             `json:"quick"`
		Elapsed   float64          `json:"elapsed_s"`
		TasksPerS float64          `json:"tasks_per_s"`
		Result    *campaign.Result `json:"result"`
	}{
		Host: hostInfo(), Seed: eff.Seed, Dir: dir, Resumed: c.Resumed(), Quick: *quick,
		Elapsed: elapsed.Seconds(), TasksPerS: float64(res.Done) / elapsed.Seconds(),
		Result: res,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_campaign.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("   wrote BENCH_campaign.json (seed %d embedded)\n", eff.Seed)
	fmt.Printf("   verdict: %s (0 disagreements, 0 escapes, 0 faults across %d policies)\n",
		pass(bad == 0), len(res.Policies))
	if *quick && bad != 0 {
		os.Exit(1)
	}
}

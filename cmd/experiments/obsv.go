package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"rocksalt/internal/core"
	"rocksalt/internal/flight"
	"rocksalt/internal/nacl"
	"rocksalt/internal/telemetry"
)

// obsvOverhead measures the cost of both observability layers on the
// hot path. Telemetry: the lean Verify loop with global telemetry
// disabled (the default: every record call is one atomic load and a
// branch) versus enabled (per-run Stats on the stack plus a dozen
// atomic adds at run end). Flight recorder: the same loop with a
// recorder installed, paying one span write into the seqlock ring per
// shard plus the run/reconcile/jumps spans. It writes BENCH_obsv.json
// so CI can hold the overhead to the acceptance bounds: telemetry
// within 5% of baseline, recorder within 3%, everything
// allocation-free.
func obsvOverhead() {
	header("obsv", "telemetry and flight-recorder overhead (extension)",
		"beyond the paper: observability must be free — a disabled counter is a branch, an enabled run is atomic adds, a recorded span is one seqlock ring write")

	c, err := core.NewChecker()
	if err != nil {
		panic(err)
	}
	n := 100000
	if *quick {
		n = 10000
	}
	img, err := nacl.NewGenerator(101).Random(n)
	if err != nil {
		panic(err)
	}
	if !c.Verify(img) {
		panic("benchmark image rejected")
	}
	mb := float64(len(img)) / 1e6

	prev := telemetry.Enabled()
	defer telemetry.SetEnabled(prev)

	measure := func(enabled bool) (time.Duration, float64) {
		telemetry.SetEnabled(enabled)
		d := benchmark(func() { c.Verify(img) })
		allocs := testing.AllocsPerRun(10, func() { c.Verify(img) })
		return d, allocs
	}
	measureRecorder := func() (time.Duration, float64) {
		telemetry.SetEnabled(false)
		flight.SetGlobal(flight.NewRecorder(0))
		defer flight.SetGlobal(nil)
		d := benchmark(func() { c.Verify(img) })
		allocs := testing.AllocsPerRun(10, func() { c.Verify(img) })
		return d, allocs
	}
	// Interleave the states A/B/C/A/B/C and keep the best of each, so a
	// frequency ramp or background noise hits all sides alike.
	offD, offAllocs := measure(false)
	onD, onAllocs := measure(true)
	frD, frAllocs := measureRecorder()
	if d, _ := measure(false); d < offD {
		offD = d
	}
	if d, _ := measure(true); d < onD {
		onD = d
	}
	if d, _ := measureRecorder(); d < frD {
		frD = d
	}

	offMBs := mb / offD.Seconds()
	onMBs := mb / onD.Seconds()
	frMBs := mb / frD.Seconds()
	overheadPct := (float64(onD) - float64(offD)) / float64(offD) * 100
	frOverheadPct := (float64(frD) - float64(offD)) / float64(offD) * 100

	fmt.Printf("   image: %d bytes; Verify with telemetry off:  %v (%.1f MB/s, %.1f allocs/op)\n",
		len(img), offD, offMBs, offAllocs)
	fmt.Printf("   image: %d bytes; Verify with telemetry on:   %v (%.1f MB/s, %.1f allocs/op)\n",
		len(img), onD, onMBs, onAllocs)
	fmt.Printf("   image: %d bytes; Verify with flight recorder: %v (%.1f MB/s, %.1f allocs/op)\n",
		len(img), frD, frMBs, frAllocs)
	fmt.Printf("   telemetry overhead: %+.2f%%; recorder overhead: %+.2f%%\n", overheadPct, frOverheadPct)

	// The fused-engine record this PR must stay within 2% of (disabled)
	// and 5% of (enabled); carried into the JSON so it is self-contained.
	fusedMBs := 0.0
	if data, err := os.ReadFile("BENCH_fused.json"); err == nil {
		var prior struct {
			FusedMBs float64 `json:"fused_mb_per_s"`
		}
		if json.Unmarshal(data, &prior) == nil {
			fusedMBs = prior.FusedMBs
		}
	}

	out := struct {
		GeneratedBy     string   `json:"generated_by"`
		Quick           bool     `json:"quick"`
		Host            hostMeta `json:"host"`
		Bytes           int      `json:"bytes"`
		DisabledNsPerOp float64  `json:"disabled_ns_per_op"`
		DisabledMBs     float64  `json:"disabled_mb_per_s"`
		DisabledAllocs  float64  `json:"disabled_allocs_per_op"`
		EnabledNsPerOp  float64  `json:"enabled_ns_per_op"`
		EnabledMBs      float64  `json:"enabled_mb_per_s"`
		EnabledAllocs   float64  `json:"enabled_allocs_per_op"`
		OverheadPct     float64  `json:"overhead_pct"`
		RecorderNsPerOp float64  `json:"recorder_ns_per_op"`
		RecorderMBs     float64  `json:"recorder_mb_per_s"`
		RecorderAllocs  float64  `json:"recorder_allocs_per_op"`
		RecorderOverPct float64  `json:"recorder_overhead_pct"`
		FusedRefMBs     float64  `json:"bench_fused_mb_per_s"`
	}{
		GeneratedBy:     "go run ./cmd/experiments -run obsv",
		Quick:           *quick,
		Host:            hostInfo(),
		Bytes:           len(img),
		DisabledNsPerOp: float64(offD.Nanoseconds()),
		DisabledMBs:     offMBs,
		DisabledAllocs:  offAllocs,
		EnabledNsPerOp:  float64(onD.Nanoseconds()),
		EnabledMBs:      onMBs,
		EnabledAllocs:   onAllocs,
		OverheadPct:     overheadPct,
		RecorderNsPerOp: float64(frD.Nanoseconds()),
		RecorderMBs:     frMBs,
		RecorderAllocs:  frAllocs,
		RecorderOverPct: frOverheadPct,
		FusedRefMBs:     fusedMBs,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_obsv.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("   wrote BENCH_obsv.json (off %.1f MB/s, on %.1f MB/s %+.2f%%, recorder %.1f MB/s %+.2f%%)\n",
		offMBs, onMBs, overheadPct, frMBs, frOverheadPct)
	fmt.Printf("   verdict: %s (telemetry within 5%%, recorder within 3%%; all allocation-free)\n",
		pass(overheadPct <= 5 && frOverheadPct <= 3 && offAllocs == 0 && onAllocs == 0 && frAllocs == 0))
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
)

// benchFused is the fused-engine benchmark suite: checker construction
// cost (grammar compile vs embedded-bundle parse), and fused-vs-
// reference verification throughput on the E1- and E2-sized images.
// Besides the printed table it writes BENCH_fused.json (format
// documented in EXPERIMENTS.md) so CI and the README perf table have a
// machine-readable record. The reference engine rows double as the
// pre-fusion baseline: they run exactly the seed's three-DFA loop.
func benchFused() {
	header("bench", "fused-engine benchmarks (extension)",
		"beyond the paper: one fused product-automaton walk per offset vs the three-DFA reference loop")

	type benchResult struct {
		Name        string  `json:"name"`
		Bytes       int     `json:"bytes,omitempty"`
		NsPerOp     float64 `json:"ns_per_op"`
		MBPerS      float64 `json:"mb_per_s,omitempty"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	}
	var results []benchResult
	record := func(name string, size int, d time.Duration, allocs float64) benchResult {
		r := benchResult{Name: name, Bytes: size, NsPerOp: float64(d.Nanoseconds()), AllocsPerOp: allocs}
		if size > 0 {
			r.MBPerS = float64(size) / 1e6 / d.Seconds()
		}
		results = append(results, r)
		return r
	}

	// Checker construction: grammar compilation (timed before anything
	// warms the memoized BuildDFAs) vs parsing the embedded v2 bundle.
	start := time.Now()
	if _, err := core.NewCheckerFromGrammars(); err != nil {
		panic(err)
	}
	compile := time.Since(start)
	record("NewCheckerFromGrammars/first", 0, compile, 0)
	fmt.Printf("   grammar compile + fuse (first call): %v\n", compile)

	emb := core.EmbeddedTableBytes()
	parse := benchmark(func() {
		if _, err := core.NewCheckerFromTables(bytes.NewReader(emb)); err != nil {
			panic(err)
		}
	})
	record("NewCheckerFromTables/embedded", len(emb), parse, 0)
	fmt.Printf("   embedded v2 bundle parse (%d bytes): %v\n", len(emb), parse)

	memo := benchmark(func() {
		if _, err := core.NewChecker(); err != nil {
			panic(err)
		}
	})
	record("NewChecker/memoized", 0, memo, 0)
	fmt.Printf("   NewChecker (memoized embedded bundle): %v\n", memo)

	c, err := core.NewChecker()
	if err != nil {
		panic(err)
	}

	sizes := []struct {
		name string
		seed int64
		n    int
	}{
		{"E1", 101, 100000},
		{"E2", 3, 400000},
	}
	if *quick {
		sizes[0].n, sizes[1].n = 10000, 40000
	}
	fmt.Printf("   %-26s %12s %9s %10s\n", "benchmark", "ns/op", "MB/s", "allocs/op")
	var refMBs, fusedMBs float64
	for _, sz := range sizes {
		img, err := nacl.NewGenerator(sz.seed).Random(sz.n)
		if err != nil {
			panic(err)
		}
		if !c.Verify(img) {
			panic("benchmark image rejected")
		}
		for _, eng := range []struct {
			name   string
			engine core.EngineKind
		}{
			{"fused", core.EngineFused},
			{"reference", core.EngineReference},
		} {
			opts := core.VerifyOptions{Workers: 1, Engine: eng.engine}
			d := benchmark(func() { c.VerifyWith(img, opts) })
			allocs := testing.AllocsPerRun(10, func() { c.VerifyWith(img, opts) })
			r := record(fmt.Sprintf("VerifyWith/%s/%s", sz.name, eng.name), len(img), d, allocs)
			fmt.Printf("   %-26s %12.0f %9.1f %10.1f\n", r.Name, r.NsPerOp, r.MBPerS, r.AllocsPerOp)
			if sz.name == "E2" {
				if eng.engine == core.EngineReference {
					refMBs = r.MBPerS
				} else {
					fusedMBs = r.MBPerS
				}
			}
		}
		// The lean boolean path (what Verify runs): fused engine, pooled
		// scratch, no Report — the allocs/op column must be zero.
		d := benchmark(func() { c.Verify(img) })
		allocs := testing.AllocsPerRun(10, func() { c.Verify(img) })
		r := record(fmt.Sprintf("Verify/%s", sz.name), len(img), d, allocs)
		fmt.Printf("   %-26s %12.0f %9.1f %10.1f\n", r.Name, r.NsPerOp, r.MBPerS, r.AllocsPerOp)
	}

	// The pre-fusion tree's BenchmarkRockSaltThroughput on this reference
	// machine (sequential Verify, E1 image) — the fixed yardstick the
	// acceptance criterion compares against, recorded here so the JSON is
	// self-contained. The reference-engine rows above re-measure the same
	// loop in-process for a noise-free same-run comparison.
	const prePRMBs, prePRAllocs = 116.36, 245

	out := struct {
		GeneratedBy    string        `json:"generated_by"`
		Quick          bool          `json:"quick"`
		Host           hostMeta      `json:"host"`
		PrePRMBs       float64       `json:"pre_pr_mb_per_s"`
		PrePRAllocs    float64       `json:"pre_pr_allocs_per_op"`
		BaselineMBs    float64       `json:"baseline_reference_mb_per_s"`
		FusedMBs       float64       `json:"fused_mb_per_s"`
		Speedup        float64       `json:"speedup"`
		SpeedupVsPrePR float64       `json:"speedup_vs_pre_pr"`
		Results        []benchResult `json:"results"`
	}{
		GeneratedBy:    "go run ./cmd/experiments -run bench",
		Quick:          *quick,
		Host:           hostInfo(),
		PrePRMBs:       prePRMBs,
		PrePRAllocs:    prePRAllocs,
		BaselineMBs:    refMBs,
		FusedMBs:       fusedMBs,
		Speedup:        fusedMBs / refMBs,
		SpeedupVsPrePR: fusedMBs / prePRMBs,
		Results:        results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_fused.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("   wrote BENCH_fused.json (E2: reference %.1f MB/s -> fused %.1f MB/s, %.2fx; %.2fx the pre-fusion %.1f MB/s)\n",
		refMBs, fusedMBs, out.Speedup, out.SpeedupVsPrePR, prePRMBs)
	fmt.Printf("   verdict: %s (fused >= 1.5x the pre-fusion baseline and the reference engine; Verify allocation-free)\n",
		pass(out.Speedup >= 1.5 && out.SpeedupVsPrePR >= 1.5))
}

// Command x86fuzz exercises the model with the paper's two validation
// loops (§2.5): grammar-generative fuzzing of the decoder, and
// differential execution of the RTL model against the independent
// reference interpreter.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"

	"rocksalt/internal/armor"
	"rocksalt/internal/core"
	"rocksalt/internal/grammar"
	"rocksalt/internal/nacl"
	"rocksalt/internal/ncval"
	"rocksalt/internal/seedflag"
	"rocksalt/internal/sim"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
	"rocksalt/internal/x86/machine"
)

func main() {
	n := flag.Int("n", 10000, "number of instruction instances")
	seed := seedflag.Register(flag.CommandLine)
	mode := flag.String("mode", "decode", "decode (grammar round-trip), diff (model vs reference), or checkers (three-way validator differential)")
	flag.Parse()
	seedflag.Announce(os.Stdout, "x86fuzz -mode "+*mode, *seed)

	rng := rand.New(rand.NewSource(*seed))
	sampler := grammar.NewSampler(rng)
	top := decode.TopGrammar()
	dec := decode.NewDecoder()

	switch *mode {
	case "decode":
		bad := 0
		for i := 0; i < *n; i++ {
			bs, v, ok := sampler.SampleBytes(top, 4)
			if !ok {
				fmt.Fprintln(os.Stderr, "sampler failed")
				os.Exit(1)
			}
			got, k, err := dec.Decode(bs)
			if err != nil || k != len(bs) || !reflect.DeepEqual(got, v.(x86.Inst)) {
				bad++
				fmt.Printf("MISMATCH % x: %v / %v (err %v)\n", bs, got, v, err)
			}
		}
		fmt.Printf("decode fuzz: %d instances, %d mismatches\n", *n, bad)
		if bad > 0 {
			os.Exit(1)
		}
	case "diff":
		executed, skipped, bad := 0, 0, 0
		for i := 0; i < *n; i++ {
			bs, _, ok := sampler.SampleBytes(top, 4)
			if !ok {
				continue
			}
			st := fuzzState(rng, bs)
			ref := st.Clone()
			s1 := sim.New(st)
			s1.Dec = dec
			err1 := s1.Step()
			err2 := sim.RefStep(&sim.Simulator{St: ref, Dec: dec})
			if errors.Is(err2, sim.ErrRefUnsupported) {
				skipped++
				continue
			}
			executed++
			if (err1 != nil) != (err2 != nil) ||
				(err1 == nil && (!st.EqualRegs(ref) || !st.Mem.Equal(ref.Mem))) {
				bad++
				fmt.Printf("DIVERGENCE % x: model=%v ref=%v diff=%s\n", bs, err1, err2, st.Diff(ref))
			}
		}
		fmt.Printf("diff fuzz: %d executed, %d skipped, %d divergences\n", executed, skipped, bad)
		if bad > 0 {
			os.Exit(1)
		}
	case "checkers":
		checker, err := core.NewChecker()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		gen := nacl.NewGenerator(*seed)
		bad := 0
		for i := 0; i < *n; i++ {
			img, err := gen.Random(15)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for k := 0; k < 1+rng.Intn(4); k++ {
				img[rng.Intn(len(img))] = byte(rng.Intn(256))
			}
			a := checker.Verify(img)
			b := ncval.Validate(img)
			c := armor.Verify(img)
			if a != b || a != c {
				bad++
				fmt.Printf("DISAGREEMENT rocksalt=%v ncval=%v armor=%v on % x\n", a, b, c, img)
			}
		}
		fmt.Printf("checker fuzz: %d mutated images, %d disagreements\n", *n, bad)
		if bad > 0 {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "unknown mode", *mode)
		os.Exit(2)
	}
}

func fuzzState(rng *rand.Rand, code []byte) *machine.State {
	st := machine.New()
	const codeBase, dataBase = 0x10000, 0x100000
	for _, s := range []x86.SegReg{x86.ES, x86.SS, x86.DS, x86.FS, x86.GS} {
		st.SegBase[s] = dataBase
		st.SegLimit[s] = 0xffff
	}
	st.SegBase[x86.CS] = codeBase
	st.SegLimit[x86.CS] = uint32(len(code) - 1)
	st.Mem.WriteBytes(codeBase, code)
	for r := range st.Regs {
		st.Regs[r] = uint32(rng.Intn(0x7000))
	}
	st.Regs[x86.ESP] = 0x4000
	for f := range st.Flags {
		st.Flags[f] = rng.Intn(2) == 1
	}
	return st
}

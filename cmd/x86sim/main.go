// Command x86sim runs a flat x86 binary in the executable model: the
// decode → RTL → interpret pipeline extracted from the grammar and
// semantics definitions. It is the Go analogue of the paper's extracted
// OCaml simulator.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"rocksalt/internal/sim"
	"rocksalt/internal/telemetry"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/machine"
)

func main() {
	steps := flag.Int("steps", 100000, "maximum instructions to execute")
	trace := flag.Bool("trace", false, "print each instruction as it executes")
	verbose := flag.Bool("v", false, "structured run logs on stderr")
	codeBase := flag.Uint64("code-base", 0x10000, "linear base of the code segment")
	dataBase := flag.Uint64("data-base", 0x100000, "linear base of the data segments")
	dataLimit := flag.Uint64("data-limit", 0xffff, "data segment limit (bytes-1)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: x86sim [flags] file.bin")
		os.Exit(2)
	}
	code, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "x86sim:", err)
		os.Exit(2)
	}
	if len(code) == 0 {
		// Without this, uint32(len(code)-1) wraps to 0xffffffff and the
		// empty file gets a 4 GiB code segment of zero bytes.
		fmt.Fprintf(os.Stderr, "x86sim: %s: empty input image (nothing to simulate)\n", flag.Arg(0))
		os.Exit(2)
	}

	level := slog.LevelError
	if *verbose {
		level = slog.LevelInfo
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})).
		With("run_id", telemetry.NewRunID())
	log.Info("sim start", "file", flag.Arg(0), "bytes", len(code), "max_steps", *steps)

	st := machine.New()
	for _, s := range []x86.SegReg{x86.ES, x86.SS, x86.DS, x86.FS, x86.GS} {
		st.SegBase[s] = uint32(*dataBase)
		st.SegLimit[s] = uint32(*dataLimit)
	}
	st.SegBase[x86.CS] = uint32(*codeBase)
	st.SegLimit[x86.CS] = uint32(len(code) - 1)
	st.Mem.WriteBytes(uint32(*codeBase), code)
	st.Regs[x86.ESP] = uint32(*dataLimit+1) / 2

	s := sim.New(st)
	if *trace {
		s.Trace = func(pc uint32, inst x86.Inst) {
			fmt.Printf("%08x  %s\n", pc, inst)
		}
	}
	begin := time.Now()
	n, err := s.Run(*steps)
	log.Info("sim done", "instructions", n, "elapsed", time.Since(begin), "err", err)
	fmt.Printf("executed %d instructions\n", n)
	if err != nil && !errors.Is(err, sim.ErrHalt) {
		fmt.Fprintln(os.Stderr, "x86sim:", err)
	} else if err != nil {
		fmt.Printf("halted: %v\n", err)
	}
	fmt.Println(st)
}

package rocksalt

// This file is the public API surface: a curated facade over the
// implementation packages (which live under internal/, mirroring the
// layered design in DESIGN.md). The aliases are real types — values
// returned here interoperate with everything documented in the package
// tree — but the supported entry points for downstream users are the
// ones below.

import (
	"io"

	"rocksalt/internal/core"
	"rocksalt/internal/mips"
	"rocksalt/internal/nacl"
	"rocksalt/internal/policy"
	"rocksalt/internal/rtl"
	"rocksalt/internal/sim"
	"rocksalt/internal/tso"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
	"rocksalt/internal/x86/encode"
	"rocksalt/internal/x86/machine"
)

// ---------- The checker (the paper's contribution) ----------

// Checker verifies flat x86 code images against the NaCl sandbox policy
// using the DFA-driven RockSalt verifier.
type Checker = core.Checker

// BundleSize is the NaCl alignment quantum (32 bytes).
const BundleSize = core.BundleSize

// NewChecker compiles the policy grammars to DFA tables (memoized
// process-wide) and returns a verifier.
func NewChecker() (*Checker, error) { return core.NewChecker() }

// NewCheckerFromTables builds a verifier from a pre-generated table
// bundle (see cmd/dfagen -o), avoiding grammar compilation entirely.
func NewCheckerFromTables(r io.Reader) (*Checker, error) {
	return core.NewCheckerFromTables(r)
}

// PolicySpec declaratively describes a sandbox policy for the runtime
// policy compiler: bundle size, mask width and registers, entry
// alignment, call discipline, guard-region cutoff and banned
// instruction classes. The zero value (after normalization) is the
// default NaCl policy; policy.NaCl, policy.NaCl16 and policy.REINS are
// ready-made presets. See DESIGN.md §6g for the JSON schema.
type PolicySpec = policy.Spec

// ParsePolicySpec decodes and validates a JSON policy spec (see
// DESIGN.md §6g for the schema; unknown fields are rejected).
func ParsePolicySpec(data []byte) (PolicySpec, error) {
	return policy.ParseSpec(data)
}

// CompilePolicy runs the full offline pipeline at runtime — grammars →
// derivative DFAs → minimize → fuse → compact — for the given spec and
// returns a verifier enforcing that policy. Compilation is memoized on
// the spec fingerprint; compiling the default NaCl spec reproduces the
// embedded table bundle byte-identically.
func CompilePolicy(spec PolicySpec) (*Checker, error) {
	com, err := policy.Compile(spec)
	if err != nil {
		return nil, err
	}
	return core.NewCheckerFromPolicy(com)
}

// VerifyOptions configures the staged verification engine behind
// Checker.VerifyWith and Checker.VerifyContext: Workers spreads stage-1
// shard parsing over a worker pool (0 = GOMAXPROCS, 1 = in-line; absurd
// values are clamped, see core.MaxWorkers). Sequential and parallel
// runs return identical reports.
//
// Checker.VerifyContext / AnalyzeContext accept a context.Context:
// workers poll cancellation between shards, and an interrupted run
// returns a report with Outcome Canceled or Deadline — never Safe and
// never a partial violation list. Shard-worker panics are contained and
// fail closed as InternalFault violations carrying the recovered stack.
type VerifyOptions = core.VerifyOptions

// Report is the structured verification outcome: the verdict plus every
// violation found, sorted so Report.First is the canonical lowest-offset
// diagnostic regardless of worker count. Report.Outcome distinguishes a
// completed verdict from a canceled or deadline-exceeded run
// (Report.Interrupted).
type Report = core.Report

// Outcome classifies how a run ended (core.OutcomeSafe,
// core.OutcomeRejected, core.OutcomeCanceled, core.OutcomeDeadline).
type Outcome = core.Outcome

// Violation is one structured policy violation (offset, kind, byte
// window, detail; InternalFault violations also carry the recovered
// stack). It implements error.
type Violation = core.Violation

// ViolationKind classifies violations (core.IllegalInstruction,
// core.TargetOutOfImage, core.MisalignedCall, core.TargetNotBoundary,
// core.BundleStraddle, core.InternalFault).
type ViolationKind = core.ViolationKind

// Range describes one edited byte span handed to Checker.VerifyDelta:
// the incremental re-verifier that re-parses only the 64 KiB chunks a
// set of edits touched and reconciles them against the retained state
// of the previous round, for verdicts byte-identical to a full
// VerifyWith at O(changed bytes) cost. See core.Range and
// (*core.Checker).VerifyDelta.
type Range = core.Range

// DeltaState is the retained whole-image stage-1 state a VerifyDelta
// round reconciles against; each round consumes the previous round's
// state and returns the next. See core.DeltaState.
//
// Checker.VerifyReader streams an image of a declared size
// (VerifyOptions.StreamSize) through a bounded two-chunk window on the
// same machinery, for images too large to hold in memory.
type DeltaState = core.DeltaState

// ---------- The x86 model ----------

// Inst is a decoded x86 instruction (abstract syntax).
type Inst = x86.Inst

// Decoder decodes IA-32 machine code via the grammar-derived parser.
type Decoder = decode.Decoder

// NewDecoder builds a decoder over the full instruction grammar.
func NewDecoder() *Decoder { return decode.NewDecoder() }

// Encode assembles one instruction (the decoder's right inverse on the
// covered subset).
func Encode(i Inst) ([]byte, error) { return encode.Encode(i) }

// Machine is the concrete x86 machine state (registers, flags, segments,
// paged memory).
type Machine = machine.State

// NewMachine returns a zeroed machine with flat 4 GiB segments.
func NewMachine() *Machine { return machine.New() }

// Simulator executes machine code through the decode → RTL → interpret
// pipeline.
type Simulator = sim.Simulator

// NewSimulator creates a simulator over a machine state.
func NewSimulator(st *Machine) *Simulator { return sim.New(st) }

// Oracle resolves the model's non-determinism (undefined flags, RDTSC).
type Oracle = rtl.Oracle

// ---------- The sandboxing toolchain ----------

// ImageBuilder assembles NaCl-compliant code images (bundle packing,
// masked jumps, label fixups).
type ImageBuilder = nacl.Builder

// NewImageBuilder returns an empty compliant-image builder.
func NewImageBuilder() *ImageBuilder { return nacl.NewBuilder() }

// ---------- Extensions ----------

// TSOSystem is the multiprocessor model with per-CPU store buffers
// (x86-TSO).
type TSOSystem = tso.System

// NewTSOSystem creates n processors over one shared memory.
func NewTSOSystem(n int) *TSOSystem { return tso.NewSystem(n) }

// MIPSState is the bonus MIPS model built from the same DSLs.
type MIPSState = mips.State

// NewMIPSState returns a zeroed MIPS machine.
func NewMIPSState() *MIPSState { return mips.NewState() }

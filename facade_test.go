package rocksalt_test

import (
	"context"
	"errors"
	"fmt"

	"rocksalt"
	"rocksalt/internal/core"
	"rocksalt/internal/sim"
	"rocksalt/internal/x86"
)

// ExampleChecker verifies a tiny compliant image and a tampered one.
func ExampleChecker() {
	b := rocksalt.NewImageBuilder()
	b.Inst(rocksalt.Inst{Op: x86.MOV, W: true,
		Args: []x86.Operand{x86.RegOp{Reg: x86.EAX}, x86.Imm{Val: 42}}})
	b.MaskedJump(x86.ECX)
	img, err := b.Finish()
	if err != nil {
		panic(err)
	}

	checker, err := rocksalt.NewChecker()
	if err != nil {
		panic(err)
	}
	fmt.Println("compliant:", checker.Verify(img))

	img[0] = 0xc3 // overwrite the first instruction with RET
	fmt.Println("tampered: ", checker.Verify(img))
	// Output:
	// compliant: true
	// tampered:  false
}

// ExampleChecker_VerifyWith runs the sharded verification engine and
// inspects the structured report. The verdict and the first-violation
// diagnostic are identical for any worker count.
func ExampleChecker_VerifyWith() {
	checker, err := rocksalt.NewChecker()
	if err != nil {
		panic(err)
	}
	// jmp +3 lands inside the following 5-byte mov.
	img := []byte{0xeb, 0x03, 0xb8, 0x00, 0x00, 0x00, 0x00}
	for len(img)%rocksalt.BundleSize != 0 {
		img = append(img, 0x90)
	}
	rep := checker.VerifyWith(img, rocksalt.VerifyOptions{Workers: 0}) // 0 = all CPUs
	fmt.Println("safe:", rep.Safe)
	v := rep.First()
	fmt.Printf("first violation: %v at offset %#x\n", v.Kind, v.Offset)
	// Output:
	// safe: false
	// first violation: jump into instruction interior at offset 0x5
}

// ExampleChecker_VerifyContext shows the fail-closed cancellation
// contract: a verification run whose context is already dead reaches no
// verdict — it is never reported safe, carries no partial violations,
// and surfaces the context error.
func ExampleChecker_VerifyContext() {
	checker, err := rocksalt.NewChecker()
	if err != nil {
		panic(err)
	}
	img := make([]byte, 4*rocksalt.BundleSize)
	for i := range img {
		img[i] = 0x90 // nop
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the run starts
	rep := checker.VerifyContext(ctx, img, rocksalt.VerifyOptions{Workers: 0})
	fmt.Println("safe:", rep.Safe)
	fmt.Println("outcome:", rep.Outcome)
	fmt.Println("interrupted:", rep.Interrupted())
	fmt.Println("err:", rep.Err())
	fmt.Println("completed run:", checker.VerifyContext(context.Background(), img,
		rocksalt.VerifyOptions{}).Outcome == core.OutcomeSafe)
	// Output:
	// safe: false
	// outcome: canceled
	// interrupted: true
	// err: context canceled
	// completed run: true
}

// ExampleSimulator runs three instructions through the executable model.
func ExampleSimulator() {
	st := rocksalt.NewMachine()
	code := []byte{
		0xb8, 0x02, 0x00, 0x00, 0x00, // mov eax, 2
		0xbb, 0x03, 0x00, 0x00, 0x00, // mov ebx, 3
		0x0f, 0xaf, 0xc3, // imul eax, ebx
		0xf4, // hlt
	}
	st.SegLimit[x86.CS] = uint32(len(code) - 1)
	st.Mem.WriteBytes(0, code)

	s := rocksalt.NewSimulator(st)
	if _, err := s.Run(100); !errors.Is(err, sim.ErrHalt) {
		panic(err)
	}
	fmt.Println("eax =", st.Regs[x86.EAX])
	// Output:
	// eax = 6
}

// ExampleDecoder uses the grammar-derived decoder as a disassembler.
func ExampleDecoder() {
	d := rocksalt.NewDecoder()
	inst, n, err := d.Decode([]byte{0x83, 0xe0, 0xe0})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d bytes: %v\n", n, inst)
	// Output:
	// 3 bytes: and eax, 0xffffffe0
}

// Package rocksalt is a from-scratch Go reproduction of "RockSalt:
// Better, Faster, Stronger SFI for the x86" (Morrisett, Tan, Tassarotti,
// Tristan, Gan; PLDI 2012): an executable model of 32-bit x86 built from
// a grammar DSL and an RTL core language, and a DFA-driven verifier for
// the Native Client sandbox policy, together with the baselines and
// harnesses that regenerate the paper's evaluation. The policy itself
// is data: CompilePolicy runs the grammar→DFA pipeline at runtime over
// a declarative PolicySpec (bundle size, mask discipline, guard region,
// banned instruction classes), and the default spec reproduces the
// embedded NaCl tables byte-identically.
//
// The root package holds only documentation and the benchmark suite; the
// implementation lives under internal/ (see DESIGN.md for the map) and
// the executables under cmd/ and examples/.
package rocksalt

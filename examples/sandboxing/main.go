// Sandboxing: the full NaCl story end to end. A guest program is built
// with the sandboxing toolchain, verified by RockSalt, loaded into a
// segment-isolated machine, and executed in the x86 model; the example
// then shows that the run never touched memory outside its data segment
// and that the attack variants are stopped — some statically by the
// checker, the rest dynamically by the segments the checker's invariants
// protect.
//
//	go run ./examples/sandboxing
package main

import (
	"fmt"
	"log"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/sim"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/machine"
)

const (
	codeBase = 0x10000
	dataBase = 0x100000
	dataLim  = 0xffff
)

func buildGuest() []byte {
	b := nacl.NewBuilder()
	// Bundle 0: compute into the data segment. The guest fills
	// data[0..63] with a counter pattern, then jumps to bundle 1 through
	// a masked register.
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{
		x86.RegOp{Reg: x86.EDI}, x86.Imm{Val: 0}}})
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{
		x86.RegOp{Reg: x86.ECX}, x86.Imm{Val: 64}}})
	b.Inst(x86.Inst{Op: x86.MOV, W: false, Args: []x86.Operand{
		x86.RegOp{Reg: x86.EAX}, x86.Imm{Val: 0xab}}})
	b.Inst(x86.Inst{Op: x86.CLD})
	b.Inst(x86.Inst{Op: x86.STOS, W: false, Prefix: x86.Prefix{Rep: true}})
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{
		x86.RegOp{Reg: x86.EDX}, x86.Imm{Val: 32}}})
	b.MaskedJump(x86.EDX)
	b.AlignBundle()
	// Bundle 1: write a summary word, then spin on a harmless loop so the
	// run ends by exhausting its step budget (NaCl guests run forever;
	// the host decides when to stop them).
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{
		x86.MemOp{Addr: x86.Addr{Disp: 0x100}}, x86.Imm{Val: 0xfeedface}}})
	b.Label("spin")
	b.Jmp("spin")
	img, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}
	return img
}

func loadGuest(img []byte) *machine.State {
	st := machine.New()
	for _, s := range []x86.SegReg{x86.ES, x86.SS, x86.DS, x86.FS, x86.GS} {
		st.SegBase[s] = dataBase
		st.SegLimit[s] = dataLim
	}
	st.SegBase[x86.CS] = codeBase
	st.SegLimit[x86.CS] = uint32(len(img) - 1)
	st.Mem.WriteBytes(codeBase, img)
	st.Regs[x86.ESP] = 0x8000
	return st
}

func main() {
	checker, err := core.NewChecker()
	if err != nil {
		log.Fatal(err)
	}

	img := buildGuest()
	fmt.Printf("guest image: %d bytes\n", len(img))
	if ok, verr := checker.VerifyReport(img); !ok {
		log.Fatalf("checker rejected the guest: %v", verr)
	}
	fmt.Println("checker: SAFE — loading into the sandbox")

	st := loadGuest(img)
	s := sim.New(st)
	steps, runErr := s.Run(500)
	fmt.Printf("executed %d instructions (stop reason: %v)\n", steps, runErr)

	fmt.Printf("data[0..7]  = % x\n", st.Mem.ReadBytes(dataBase, 8))
	fmt.Printf("data[0x100] = % x\n", st.Mem.ReadBytes(dataBase+0x100, 4))

	// Confinement evidence: nothing below/above the data segment or
	// around the code image changed.
	escaped := false
	for a := uint32(dataBase - 0x1000); a < dataBase; a++ {
		if st.Mem.Load(a) != 0 {
			escaped = true
		}
	}
	for a := uint32(dataBase + dataLim + 1); a < dataBase+dataLim+0x1000; a++ {
		if st.Mem.Load(a) != 0 {
			escaped = true
		}
	}
	fmt.Printf("writes escaped the data segment: %v\n", escaped)

	// Attack 1 (static): patch the spin jump into a far jump out of the
	// sandbox — caught by the checker before it can run.
	attack := append([]byte{}, img...)
	for i := 0; i+4 < len(attack); i++ {
		if attack[i] == 0xe9 { // the spin jmp rel32
			attack[i] = 0xea // far jmp ptr16:32
			break
		}
	}
	ok, verr := checker.VerifyReport(attack)
	fmt.Printf("attack (far jump):   verify = %v (%v)\n", ok, verr)

	// Attack 2 (dynamic): a compliant guest that *tries* to write outside
	// its segment — passes the checker (the write is a plain MOV) but the
	// segment limit faults it at run time. Both layers together are the
	// sandbox.
	b := nacl.NewBuilder()
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{
		x86.MemOp{Addr: x86.Addr{Disp: 0x20000}}, x86.Imm{Val: 0x41414141}}})
	evil, _ := b.Finish()
	if !checker.Verify(evil) {
		log.Fatal("out-of-segment store should be statically legal")
	}
	st2 := loadGuest(evil)
	_, err2 := sim.New(st2).Run(10)
	fmt.Printf("attack (wild store): checker = true, runtime = %v\n", err2)
	if st2.Mem.Load(dataBase+0x20000) != 0 {
		log.Fatal("the wild store landed!")
	}
	fmt.Println("attack (wild store): memory unchanged — trapped by the segment limit")
}

// Simulate: run a real algorithm (iterative Fibonacci, then a memory
// -reversal loop) through the executable x86 model with a full trace —
// the decode → RTL → interpret pipeline of §2.
//
//	go run ./examples/simulate
package main

import (
	"errors"
	"fmt"
	"log"

	"rocksalt/internal/sim"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/machine"
)

func main() {
	// fib(12) with a loop, then reverse 8 bytes at data[0x40] into
	// data[0x80] using a second loop, then hlt.
	code := []byte{
		// fib: eax,ebx = 0,1; ecx = 12
		0x31, 0xc0, // xor eax, eax
		0xbb, 0x01, 0x00, 0x00, 0x00, // mov ebx, 1
		0xb9, 0x0c, 0x00, 0x00, 0x00, // mov ecx, 12
		// L1: edx = eax+ebx; eax = ebx; ebx = edx; loop L1
		0x8d, 0x14, 0x18, // lea edx, [eax+ebx]
		0x89, 0xd8, // mov eax, ebx
		0x89, 0xd3, // mov ebx, edx
		0xe2, 0xf7, // loop L1
		// store fib result
		0xa3, 0x00, 0x01, 0x00, 0x00, // mov [0x100], eax
		// reverse: esi = 0x40, edi = 0x87, ecx = 8
		0xbe, 0x40, 0x00, 0x00, 0x00, // mov esi, 0x40
		0xbf, 0x87, 0x00, 0x00, 0x00, // mov edi, 0x87
		0xb9, 0x08, 0x00, 0x00, 0x00, // mov ecx, 8
		// L2: al = [esi]; [edi] = al; inc esi; dec edi; loop L2
		0x8a, 0x06, // mov al, [esi]
		0x88, 0x07, // mov [edi], al
		0x46,       // inc esi
		0x4f,       // dec edi
		0xe2, 0xf8, // loop L2
		0xf4, // hlt
	}

	st := machine.New()
	const codeBase, dataBase = 0x10000, 0x100000
	for _, s := range []x86.SegReg{x86.ES, x86.SS, x86.DS} {
		st.SegBase[s] = dataBase
		st.SegLimit[s] = 0xffff
	}
	st.SegBase[x86.CS] = codeBase
	st.SegLimit[x86.CS] = uint32(len(code) - 1)
	st.Mem.WriteBytes(codeBase, code)
	st.Mem.WriteBytes(dataBase+0x40, []byte("rocksalt"))
	st.Regs[x86.ESP] = 0x8000

	s := sim.New(st)
	step := 0
	s.Trace = func(pc uint32, inst x86.Inst) {
		if step < 12 || inst.Op == x86.HLT {
			fmt.Printf("  %08x  %v\n", pc, inst)
		} else if step == 12 {
			fmt.Println("  ... (loop iterations elided)")
		}
		step++
	}

	fmt.Println("trace:")
	n, err := s.Run(10000)
	if err != nil && !errors.Is(err, sim.ErrHalt) {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted %d instructions\n", n)
	fibBytes := st.Mem.ReadBytes(dataBase+0x100, 4)
	fib := uint32(fibBytes[0]) | uint32(fibBytes[1])<<8 | uint32(fibBytes[2])<<16 | uint32(fibBytes[3])<<24
	fmt.Printf("fib(12) = %d (stored at data[0x100]: % x)\n", fib, fibBytes)
	fmt.Printf("reversed %q -> %q\n",
		st.Mem.ReadBytes(dataBase+0x40, 8), st.Mem.ReadBytes(dataBase+0x80, 8))
}

// Disasm: use the grammar-generated decoder as a standalone linear
// disassembler. Bytes come from the command line (hex) or a built-in
// sample.
//
//	go run ./examples/disasm 31c0 b90a000000 01c8 e2fc c3
//	go run ./examples/disasm
package main

import (
	"encoding/hex"
	"fmt"
	"log"
	"os"
	"strings"

	"rocksalt/internal/x86/decode"
)

func main() {
	var code []byte
	if len(os.Args) > 1 {
		hexStr := strings.Join(os.Args[1:], "")
		hexStr = strings.NewReplacer(" ", "", "0x", "", ",", "").Replace(hexStr)
		var err error
		code, err = hex.DecodeString(hexStr)
		if err != nil {
			log.Fatalf("disasm: bad hex: %v", err)
		}
	} else {
		// A function prologue, some work, and an epilogue.
		code = []byte{
			0x55,       // push ebp
			0x89, 0xe5, // mov ebp, esp
			0x8b, 0x45, 0x08, // mov eax, [ebp+8]
			0x8b, 0x4d, 0x0c, // mov ecx, [ebp+12]
			0x0f, 0xaf, 0xc1, // imul eax, ecx
			0x83, 0xc0, 0x2a, // add eax, 42
			0x66, 0x01, 0xc8, // add ax, cx
			0xf3, 0xa4, // rep movsb
			0x0f, 0x94, 0xc2, // sete dl
			0x83, 0xe0, 0xe0, // and eax, -32 (the NaCl mask)
			0xff, 0xe0, // jmp eax
			0xc9, // leave
			0xc3, // ret
		}
	}

	dec := decode.NewDecoder()
	for _, e := range dec.DecodeAll(code) {
		bytes := fmt.Sprintf("% x", code[e.Off:e.Off+e.Len])
		if e.Err != nil {
			fmt.Printf("%04x: %-24s (undecodable byte)\n", e.Off, bytes)
			continue
		}
		fmt.Printf("%04x: %-24s %v\n", e.Off, bytes, e.Inst)
	}
}

// Quickstart: verify a NaCl-compliant code image with the RockSalt
// checker, then tamper with it and watch the checker reject it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/x86"
)

func main() {
	// Build a tiny sandboxed program with the NaCl toolchain substitute:
	// some arithmetic, a computed jump through a masked register, and
	// bundle padding — the shape NaCl's compiler emits.
	b := nacl.NewBuilder()
	b.Label("start")
	b.Inst(x86.Inst{Op: x86.MOV, W: true,
		Args: []x86.Operand{x86.RegOp{Reg: x86.EAX}, x86.Imm{Val: 7}}})
	b.Inst(x86.Inst{Op: x86.ADD, W: true,
		Args: []x86.Operand{x86.RegOp{Reg: x86.EAX}, x86.Imm{Val: 35}}})
	b.Inst(x86.Inst{Op: x86.MOV, W: true,
		Args: []x86.Operand{x86.RegOp{Reg: x86.ECX}, x86.Imm{Val: 32}}})
	b.MaskedJump(x86.ECX) // computed jump: AND ecx,-32; JMP ecx
	b.AlignBundle()
	b.Label("landing")
	b.Inst(x86.Inst{Op: x86.NOP, W: true})
	img, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}

	checker, err := core.NewChecker()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("image: %d bytes (%d bundles)\n", len(img), len(img)/core.BundleSize)
	ok, verr := checker.VerifyReport(img)
	fmt.Printf("verify(compliant image) = %v\n", ok)
	if !ok {
		log.Fatal(verr)
	}

	// Tamper 1: strip the masking AND, leaving a bare indirect jump.
	tampered := append([]byte{}, img...)
	for i := 0; i+4 < len(tampered); i++ {
		if tampered[i] == 0x83 && tampered[i+3] == 0xff {
			copy(tampered[i:], tampered[i+3:]) // overwrite the AND with the JMP
			tampered[i+2] = 0x90
			tampered[i+3] = 0x90
			tampered[i+4] = 0x90
			break
		}
	}
	ok, verr = checker.VerifyReport(tampered)
	fmt.Printf("verify(mask stripped)   = %v (%v)\n", ok, verr)

	// Tamper 2: hide a syscall in the padding.
	tampered = append([]byte{}, img...)
	tampered[len(tampered)-2] = 0xcd // int 0x80
	tampered[len(tampered)-1] = 0x80
	ok, verr = checker.VerifyReport(tampered)
	fmt.Printf("verify(hidden int 0x80) = %v (%v)\n", ok, verr)
}

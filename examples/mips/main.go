// MIPS: the architecture-independence demonstration — the same grammar
// and RTL DSLs that model the x86 drive a MIPS32 model (the paper: "one
// of the undergraduate co-authors constructed a model of the MIPS
// architecture using our DSLs in just a few days").
//
//	go run ./examples/mips
package main

import (
	"fmt"
	"log"

	"rocksalt/internal/mips"
)

func main() {
	// A small program: sum the words of an array, then store the result.
	//   $t0 ($8)  = array pointer
	//   $t1 ($9)  = count
	//   $t2 ($10) = accumulator
	prog := []mips.Inst{
		{Op: mips.ADDIU, RS: 0, RT: 8, Imm: 0x100}, // t0 = &array
		{Op: mips.ADDIU, RS: 0, RT: 9, Imm: 5},     // t1 = 5
		{Op: mips.ADDIU, RS: 0, RT: 10, Imm: 0},    // t2 = 0
		// loop:
		{Op: mips.LW, RS: 8, RT: 11, Imm: 0},        // t3 = *t0
		{Op: mips.ADDU, RS: 10, RT: 11, RD: 10},     // t2 += t3
		{Op: mips.ADDIU, RS: 8, RT: 8, Imm: 4},      // t0 += 4
		{Op: mips.ADDIU, RS: 9, RT: 9, Imm: 0xffff}, // t1 -= 1
		{Op: mips.BNE, RS: 9, RT: 0, Imm: 0xfffb},   // bne t1, $0, loop
		{Op: mips.SW, RS: 0, RT: 10, Imm: 0x200},    // result = t2
		{Op: mips.JR, RS: 0},                        // halt convention
	}

	st := mips.NewState()
	base := uint32(0x1000)
	fmt.Println("program (assembled and re-decoded through the grammar):")
	for i, in := range prog {
		word := mips.Assemble(in)
		st.StoreWord(base+uint32(i*4), word)
		back, err := mips.Decode([]byte{byte(word >> 24), byte(word >> 16), byte(word >> 8), byte(word)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %08x  %08x  %v\n", base+uint32(i*4), word, back)
	}

	// Array data (little-endian data memory, like the RTL byte ops).
	for i, v := range []uint32{10, 20, 30, 40, 2} {
		addr := uint32(0x100 + i*4)
		st.Mem[addr] = byte(v)
		st.Mem[addr+1] = byte(v >> 8)
		st.Mem[addr+2] = byte(v >> 16)
		st.Mem[addr+3] = byte(v >> 24)
	}

	st.PC = base
	steps, err := st.Run(1000)
	if err != nil {
		log.Fatal(err)
	}
	result := uint32(st.Mem[0x200]) | uint32(st.Mem[0x201])<<8 |
		uint32(st.Mem[0x202])<<16 | uint32(st.Mem[0x203])<<24
	fmt.Printf("\nexecuted %d instructions; sum = %d (want 102)\n", steps, result)
}

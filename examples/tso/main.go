// TSO: the multiprocessor extension (the paper's §6.1 future work) in
// action — the classic store-buffering litmus test, run under total
// store order and under sequential consistency, plus the LOCK'd fix.
//
//	go run ./examples/tso
package main

import (
	"fmt"
	"math/rand"

	"rocksalt/internal/tso"
	"rocksalt/internal/x86"
)

const (
	locX = 0x10000
	locY = 0x20000
)

func movToMem(addr, imm uint32) []byte {
	out := []byte{0xc7, 0x05, byte(addr), byte(addr >> 8), byte(addr >> 16), byte(addr >> 24)}
	return append(out, byte(imm), byte(imm>>8), byte(imm>>16), byte(imm>>24))
}

func movFromMem(r x86.Reg, addr uint32) []byte {
	return []byte{0x8b, byte(r)<<3 | 0x05, byte(addr), byte(addr >> 8), byte(addr >> 16), byte(addr >> 24)}
}

func sb() *tso.System {
	sys := tso.NewSystem(2)
	p0 := append(movToMem(locX, 1), movFromMem(x86.EAX, locY)...)
	p1 := append(movToMem(locY, 1), movFromMem(x86.EAX, locX)...)
	sys.LoadCode(0, 0x100, append(p0, 0xf4))
	sys.LoadCode(1, 0x800, append(p1, 0xf4))
	return sys
}

func main() {
	fmt.Println("store-buffering litmus test:")
	fmt.Println("  CPU0: [X]=1; eax=[Y]        CPU1: [Y]=1; eax=[X]")
	fmt.Println()

	// Count outcomes over many random TSO schedules.
	rng := rand.New(rand.NewSource(1))
	outcomes := map[string]int{}
	for trial := 0; trial < 2000; trial++ {
		sys := sb()
		sys.RunSchedule(tso.RandomSchedule(rng, 2, 8, 0.3))
		k := fmt.Sprintf("r0=%d r1=%d",
			sys.CPUs[0].State.Regs[x86.EAX], sys.CPUs[1].State.Regs[x86.EAX])
		outcomes[k]++
	}
	fmt.Println("under TSO (random schedules):")
	for _, k := range []string{"r0=0 r1=0", "r0=0 r1=1", "r0=1 r1=0", "r0=1 r1=1"} {
		fmt.Printf("  %s: %5d  %s\n", k, outcomes[k], note(k))
	}

	outcomes = map[string]int{}
	for trial := 0; trial < 2000; trial++ {
		sys := sb()
		sys.RunSC(rng, 100)
		k := fmt.Sprintf("r0=%d r1=%d",
			sys.CPUs[0].State.Regs[x86.EAX], sys.CPUs[1].State.Regs[x86.EAX])
		outcomes[k]++
	}
	fmt.Println("under sequential consistency:")
	for _, k := range []string{"r0=0 r1=0", "r0=0 r1=1", "r0=1 r1=0", "r0=1 r1=1"} {
		fmt.Printf("  %s: %5d  %s\n", k, outcomes[k], note(k))
	}

	// The lost-update demonstration and its LOCK'd fix.
	fmt.Println()
	inc := func(lock bool) []byte {
		out := []byte{}
		if lock {
			out = append(out, 0xf0)
		}
		x := uint32(locX)
		return append(out, 0xff, 0x05, byte(x), byte(x>>8), byte(x>>16), byte(x>>24), 0xf4)
	}
	sys := tso.NewSystem(2)
	sys.LoadCode(0, 0x100, inc(false))
	sys.LoadCode(1, 0x800, inc(false))
	sys.RunSchedule([]tso.Event{{CPU: 0}, {CPU: 1}})
	fmt.Printf("two plain INC [X] under adversarial schedule: X = %d (update lost)\n",
		sys.Shared.Load(locX))

	sys = tso.NewSystem(2)
	sys.LoadCode(0, 0x100, inc(true))
	sys.LoadCode(1, 0x800, inc(true))
	sys.RunSchedule([]tso.Event{{CPU: 0}, {CPU: 1}})
	fmt.Printf("two LOCK INC [X] under the same schedule:     X = %d (atomic)\n",
		sys.Shared.Load(locX))
}

func note(k string) string {
	if k == "r0=0 r1=0" {
		return "<- possible only with store buffers"
	}
	return ""
}

module rocksalt

go 1.22

// Package flight is the engine's flight recorder: a preallocated,
// lock-free ring of structured span/event records threaded through the
// verification pipeline (run → stage-1 shard → reconcile → jump check →
// cache store). It exists to answer two operational questions the
// aggregate counters in internal/telemetry cannot: "where did this
// run's time go?" (exported as a Chrome trace-event timeline, see
// chrome.go) and "what was the engine doing just before it rejected,
// faulted or was abandoned?" (snapshotted into a postmortem bundle, see
// postmortem.go).
//
// The design contract mirrors telemetry's: with no recorder installed
// the hot path pays one atomic pointer load per run (Active), and with
// one installed, recording an event is a clock read plus six atomic
// stores into a preallocated ring — no allocation, no lock, no channel —
// so Verify keeps its zero-allocs-per-op guarantee either way and the
// recorder-on overhead stays low-single-digit percent (measured by
// cmd/experiments -run obsv).
//
// Concurrency: writers are the stage-1 shard workers plus the
// orchestrating goroutine. Each event is published under a per-slot
// sequence word (a seqlock): the writer stores an odd sequence, the
// payload words, then the even sequence; Snapshot re-reads the sequence
// around the payload and discards torn or in-flight slots. Every word
// is an atomic.Uint64, so the scheme is race-detector-clean — there is
// no non-atomic shared memory at all. A reader never blocks a writer
// and vice versa; under extreme wraparound a slot can in principle be
// accepted with mixed payloads from two writers that raced through a
// full ring generation, which corrupts at most that one record's
// fields (they are plain integers — never memory-unsafe) and is
// rejected by the kind-range check when the kind byte is garbled.
package flight

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Kind classifies one recorded event. Span* kinds carry a duration
// (they render as slices on the trace timeline); Event* kinds are
// instants.
type Kind uint8

const (
	// KindInvalid is the zero value; Snapshot discards it (an unwritten
	// or torn slot).
	KindInvalid Kind = iota
	// SpanRun covers one whole verification run, entry to verdict.
	SpanRun
	// SpanShard covers one stage-1 shard parse; Shard is the shard
	// index and Engine the stepper that actually parsed it.
	SpanShard
	// SpanReconcile covers stage 2 (merge, jump validation, bundle
	// coverage, sort).
	SpanReconcile
	// SpanJumps covers the jump-target validation section inside
	// reconcile; Bytes carries the number of bad targets found.
	SpanJumps
	// SpanCacheStore covers banking parse artifacts into the verdict
	// cache (chunk entries after stage 1, or the whole-image Report).
	SpanCacheStore
	// SpanDelta covers one VerifyDelta reconciliation round, dirty-set
	// computation to verdict; Bytes carries the bytes re-parsed.
	SpanDelta
	// EventSWARBackoff marks a shard whose SWAR multi-byte parse hit
	// the density backoff and was re-parsed by the single-stride lanes.
	EventSWARBackoff
	// EventChunkHit / EventChunkMiss mark one cacheable 64 KiB chunk
	// restored from, respectively missing from, the chunk cache.
	EventChunkHit
	EventChunkMiss
	// EventCacheServe marks a Verify answered entirely from the
	// whole-image verdict cache (no byte was scanned).
	EventCacheServe
	// EventChunkReplay marks one chunk replayed from retained delta
	// state (its shards were skipped by a VerifyDelta round).
	EventChunkReplay

	numKinds
)

var kindNames = [numKinds]string{
	"invalid", "run", "shard", "reconcile", "jumps", "cache-store", "delta",
	"swar-backoff", "chunk-hit", "chunk-miss", "cache-serve", "chunk-replay",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Span reports whether the kind carries a meaningful duration.
func (k Kind) Span() bool { return k >= SpanRun && k <= SpanDelta }

// MarshalJSON renders the kind as its name, so postmortem bundles are
// readable without this package's enum table.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Engine is the stage-1 stepper (or cache layer) an event is attributed
// to — the flight-recorder face of the Stats.Engine census.
type Engine uint8

const (
	EngineNone Engine = iota
	EngineLanes
	EngineSWAR
	EngineStrided
	EngineScalar
	EngineReference
	EngineCache

	numEngines
)

var engineNames = [numEngines]string{
	"", "lanes", "swar", "strided", "fused-scalar", "reference", "cache",
}

func (e Engine) String() string {
	if int(e) < len(engineNames) {
		return engineNames[e]
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// MarshalJSON renders the engine as its census name (or omits content
// for EngineNone — an empty string, matching Stats.Engine's omitempty).
func (e Engine) MarshalJSON() ([]byte, error) {
	return []byte(`"` + e.String() + `"`), nil
}

// Event is one recorded span or instant. Start and Dur are nanoseconds
// on the recorder's monotonic clock (Now); Bytes is kind-specific
// payload (bytes covered for spans, counts for some instants). The
// struct is all plain integers on purpose: it packs into five 64-bit
// ring words, so recording never touches a pointer and a torn record
// can never be memory-unsafe.
type Event struct {
	Kind   Kind   `json:"kind"`
	Engine Engine `json:"engine,omitempty"`
	Worker uint16 `json:"worker"`
	Shard  uint32 `json:"shard,omitempty"`
	Run    uint32 `json:"run"`
	Start  int64  `json:"start_ns"`
	Dur    int64  `json:"dur_ns"`
	Bytes  int64  `json:"bytes,omitempty"`
}

// Ring geometry. Events are spread over numRings rings by worker ID, so
// concurrent shard workers contend on different pos words and slots;
// slotWords is one sequence word plus the five packed payload words.
const (
	numRings  = 8
	slotWords = 6
	// DefaultSlots is the per-ring capacity when NewRecorder is given
	// n <= 0: 8 rings × 2048 slots ≈ 16k events ≈ 770 KiB, enough for
	// ~100 runs of a 2 MB image (one span per 16 KiB shard plus a few
	// run-level records) before the oldest wrap away.
	DefaultSlots = 2048
)

// ring is one independently-positioned event ring. The pad keeps the
// hot pos words of adjacent rings on distinct cache lines.
type ring struct {
	pos atomic.Uint64
	_   [7]uint64
	w   []atomic.Uint64
}

// Recorder is a fixed-size flight recorder. All methods are safe for
// concurrent use; Record never allocates and never blocks.
type Recorder struct {
	rings [numRings]ring
	slots uint64
	runs  atomic.Uint32
	epoch time.Time
}

// NewRecorder returns a recorder with the given per-ring slot count
// (DefaultSlots when n <= 0). All memory is allocated here, up front.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultSlots
	}
	r := &Recorder{slots: uint64(n), epoch: time.Now()}
	for i := range r.rings {
		r.rings[i].w = make([]atomic.Uint64, n*slotWords)
	}
	return r
}

// Now returns nanoseconds since the recorder's epoch on the monotonic
// clock. It is the timebase of every Event.Start.
func (r *Recorder) Now() int64 { return int64(time.Since(r.epoch)) }

// BeginRun allocates the next run ID, correlating all of one
// verification run's events.
func (r *Recorder) BeginRun() uint32 { return r.runs.Add(1) }

// Record publishes one event into the ring selected by its worker ID,
// overwriting the oldest record there. Cost: one atomic add for the
// ticket plus six atomic stores; no allocation, no lock.
func (r *Recorder) Record(ev Event) {
	rg := &r.rings[uint64(ev.Worker)%numRings]
	i := rg.pos.Add(1) - 1
	w := rg.w[(i%r.slots)*slotWords:]
	w[0].Store(2*i + 1) // odd: write in flight
	w[1].Store(uint64(ev.Kind) | uint64(ev.Engine)<<8 | uint64(ev.Worker)<<16 | uint64(ev.Shard)<<32)
	w[2].Store(uint64(ev.Start))
	w[3].Store(uint64(ev.Dur))
	w[4].Store(uint64(ev.Bytes))
	w[5].Store(uint64(ev.Run))
	w[0].Store(2*i + 2) // even: published
}

// Snapshot copies every currently-published event out of the rings,
// discarding unwritten, in-flight and torn slots, and returns them
// sorted by start time. It is safe to call while writers are active —
// the postmortem path does exactly that — at the cost of possibly
// missing the records being written that instant.
func (r *Recorder) Snapshot() []Event {
	var out []Event
	for ri := range r.rings {
		rg := &r.rings[ri]
		for s := uint64(0); s < r.slots; s++ {
			w := rg.w[s*slotWords:]
			s1 := w[0].Load()
			if s1 == 0 || s1%2 == 1 {
				continue
			}
			p1, p2, p3, p4, p5 := w[1].Load(), w[2].Load(), w[3].Load(), w[4].Load(), w[5].Load()
			if w[0].Load() != s1 {
				continue // torn: a writer replaced the slot mid-read
			}
			ev := Event{
				Kind:   Kind(p1 & 0xff),
				Engine: Engine(p1 >> 8 & 0xff),
				Worker: uint16(p1 >> 16),
				Shard:  uint32(p1 >> 32),
				Run:    uint32(p5),
				Start:  int64(p2),
				Dur:    int64(p3),
				Bytes:  int64(p4),
			}
			if ev.Kind == KindInvalid || ev.Kind >= numKinds || ev.Engine >= numEngines {
				continue
			}
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// global is the process-wide recorder the engine consults (one atomic
// pointer load per run when unset — the whole cost of the feature being
// compiled in).
var global atomic.Pointer[Recorder]

// SetGlobal installs (or, with nil, removes) the process-wide recorder.
func SetGlobal(r *Recorder) { global.Store(r) }

// Active returns the process-wide recorder, or nil when none is
// installed.
func Active() *Recorder { return global.Load() }

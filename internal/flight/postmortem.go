package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// This file is the crash-dump half of the flight recorder: on a
// rejection, an internal fault, a deadline, or a campaign watchdog
// abandonment, the caller snapshots the ring and writes a
// self-contained JSON bundle — the event timeline plus everything
// needed to interpret it (per-run Stats, the engine census, the policy
// fingerprint and table-bundle version, the cache key) — into a
// postmortem directory. Each bundle is one file, written via temp +
// rename, so a reader never sees a torn document.

// Postmortem is one self-contained incident bundle.
type Postmortem struct {
	// Reason is the incident class: a Report outcome ("rejected",
	// "deadline", "canceled") or "watchdog-abandonment".
	Reason string `json:"reason"`
	// Detail is free-form context (first violation, watchdog message).
	Detail string `json:"detail,omitempty"`
	// File names the input image, when there is one.
	File string `json:"file,omitempty"`
	// Time is the wall-clock write time (RFC 3339; filled by
	// WritePostmortem when empty).
	Time string `json:"time"`
	// TableBundle is the checker's table-bundle version (RSLT1..RSLT4,
	// or "compiled" for runtime-compiled tables).
	TableBundle string `json:"table_bundle,omitempty"`
	// PolicyFingerprint is the checker's configuration content key —
	// the same hash the verdict cache is keyed on.
	PolicyFingerprint string `json:"policy_fingerprint,omitempty"`
	// CacheKey is the image's whole-content key, when a cache was
	// attached to the run.
	CacheKey string `json:"cache_key,omitempty"`
	// EngineCensus counts recorded shard spans by engine (filled from
	// Spans by WritePostmortem when nil).
	EngineCensus map[string]int64 `json:"engine_census"`
	// Stats is the per-run core.Stats record (typed any to keep this
	// package dependency-free; core owns the concrete type).
	Stats any `json:"stats,omitempty"`
	// Violations carries the run's violation list in whatever
	// serializable form the caller has.
	Violations any `json:"violations,omitempty"`
	// Spans is the ring snapshot, sorted by start time.
	Spans []Event `json:"spans"`
}

// Census folds a snapshot into the per-engine shard-span count, plus a
// "cache" row counting whole-image cache serves.
func Census(events []Event) map[string]int64 {
	out := map[string]int64{}
	for _, ev := range events {
		switch ev.Kind {
		case SpanShard:
			out[ev.Engine.String()]++
		case EventCacheServe:
			out[EngineCache.String()]++
		}
	}
	return out
}

// pmSeq disambiguates bundles written within one wall-clock second.
var pmSeq atomic.Uint64

// WritePostmortem writes the bundle as one JSON file under dir
// (created if needed) and returns the file's path. The name embeds the
// timestamp, a process-local sequence number and the reason, so
// concurrent writers never collide and a directory listing reads as an
// incident log.
func WritePostmortem(dir string, pm *Postmortem) (string, error) {
	if pm.Time == "" {
		pm.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	if pm.EngineCensus == nil {
		pm.EngineCensus = Census(pm.Spans)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("postmortem-%s-%d-%s.json",
		time.Now().UTC().Format("20060102T150405"), pmSeq.Add(1), slug(pm.Reason))
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(pm, "", "  ")
	if err != nil {
		return "", err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, nil
}

// slug reduces a reason to filename-safe characters.
func slug(s string) string {
	b := make([]byte, 0, len(s))
	for i := 0; i < len(s) && len(b) < 40; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-':
			b = append(b, c)
		case c >= 'A' && c <= 'Z':
			b = append(b, c+('a'-'A'))
		case c == ' ' || c == '_':
			b = append(b, '-')
		}
	}
	if len(b) == 0 {
		return "incident"
	}
	return string(b)
}

package flight

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRecordSnapshotRoundTrip(t *testing.T) {
	r := NewRecorder(64)
	run := r.BeginRun()
	events := []Event{
		{Kind: SpanRun, Engine: EngineSWAR, Run: run, Start: 100, Dur: 900, Bytes: 1 << 20},
		{Kind: SpanShard, Engine: EngineLanes, Worker: 3, Shard: 7, Run: run, Start: 150, Dur: 40, Bytes: 16384},
		{Kind: EventSWARBackoff, Engine: EngineSWAR, Worker: 1, Shard: 2, Run: run, Start: 120},
	}
	for _, ev := range events {
		r.Record(ev)
	}
	got := r.Snapshot()
	if len(got) != len(events) {
		t.Fatalf("Snapshot returned %d events, want %d", len(got), len(events))
	}
	// Snapshot sorts by Start; re-key by kind for comparison.
	byKind := map[Kind]Event{}
	for _, ev := range got {
		byKind[ev.Kind] = ev
	}
	for _, want := range events {
		if byKind[want.Kind] != want {
			t.Errorf("round trip mismatch for %v:\n got %+v\nwant %+v", want.Kind, byKind[want.Kind], want)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start < got[i-1].Start {
			t.Fatalf("snapshot not sorted by start: %d after %d", got[i].Start, got[i-1].Start)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRecorder(4)
	// 10 events from one worker land in one 4-slot ring: only the last
	// 4 survive.
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: SpanShard, Shard: uint32(i), Start: int64(i)})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("got %d events from a 4-slot ring, want 4", len(got))
	}
	for _, ev := range got {
		if ev.Shard < 6 {
			t.Errorf("event %d survived; the ring should keep only the newest 4", ev.Shard)
		}
	}
}

// TestConcurrentRecordSnapshot hammers the ring from several writers
// while snapshotting; under -race this is the proof the seqlock scheme
// has no data race, and in any build every surviving event must decode
// to values some writer actually stored.
func TestConcurrentRecordSnapshot(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Record(Event{Kind: SpanShard, Engine: EngineLanes, Worker: uint16(w),
					Shard: uint32(i & 0xffff), Start: int64(i), Dur: 7, Bytes: 16384})
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		for _, ev := range r.Snapshot() {
			if ev.Kind != SpanShard || ev.Engine != EngineLanes || ev.Dur != 7 || ev.Bytes != 16384 {
				t.Errorf("snapshot surfaced a corrupt event: %+v", ev)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(64)
	ev := Event{Kind: SpanShard, Engine: EngineSWAR, Worker: 2, Shard: 9, Start: 1, Dur: 2, Bytes: 3}
	allocs := testing.AllocsPerRun(200, func() {
		r.Record(ev)
	})
	if allocs != 0 {
		t.Errorf("Record allocated %.1f times per call, want 0", allocs)
	}
}

func TestChromeTraceShape(t *testing.T) {
	events := []Event{
		{Kind: SpanRun, Engine: EngineSWAR, Run: 1, Start: 1000, Dur: 5000, Bytes: 1 << 20},
		{Kind: SpanShard, Engine: EngineLanes, Worker: 2, Shard: 3, Run: 1, Start: 1200, Dur: 300},
		{Kind: EventChunkHit, Engine: EngineCache, Run: 1, Start: 1100, Bytes: 65536},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Args struct {
				Engine string `json:"engine"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
	phases := map[string]string{}
	for _, te := range doc.TraceEvents {
		phases[te.Name] = te.Ph
		if te.Pid != 1 {
			t.Errorf("event %s: pid %d, want 1", te.Name, te.Pid)
		}
	}
	if phases["run"] != "X" || phases["shard"] != "X" {
		t.Errorf("span kinds must be complete (X) events, got %v", phases)
	}
	if phases["chunk-hit"] != "i" {
		t.Errorf("instant kinds must be instant (i) events, got %v", phases)
	}
	for _, te := range doc.TraceEvents {
		if te.Name == "shard" {
			if te.Ts != 1.2 || te.Dur != 0.3 || te.Tid != 2 || te.Args.Engine != "lanes" {
				t.Errorf("shard event rendered wrong: %+v", te)
			}
		}
	}
}

func TestWritePostmortem(t *testing.T) {
	dir := t.TempDir()
	pm := &Postmortem{
		Reason:            "rejected",
		Detail:            "illegal instruction at 0x40",
		PolicyFingerprint: "deadbeef",
		TableBundle:       "RSLT3",
		Spans: []Event{
			{Kind: SpanShard, Engine: EngineSWAR, Shard: 0, Start: 10, Dur: 20},
			{Kind: SpanShard, Engine: EngineScalar, Shard: 1, Start: 30, Dur: 40},
			{Kind: EventCacheServe, Engine: EngineCache, Start: 50},
		},
	}
	path, err := WritePostmortem(dir, pm)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.Contains(filepath.Base(path), "rejected") {
		t.Fatalf("unexpected bundle path %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if got["reason"] != "rejected" || got["policy_fingerprint"] != "deadbeef" || got["table_bundle"] != "RSLT3" {
		t.Errorf("bundle identity fields wrong: %v", got)
	}
	census, _ := got["engine_census"].(map[string]any)
	if census["swar"] != 1.0 || census["fused-scalar"] != 1.0 || census["cache"] != 1.0 {
		t.Errorf("engine census wrong: %v", census)
	}
	if spans, _ := got["spans"].([]any); len(spans) != 3 {
		t.Errorf("bundle has %d spans, want 3", len(got["spans"].([]any)))
	}
	if got["time"] == "" {
		t.Error("bundle time not filled in")
	}
	// A second bundle in the same second must not collide.
	if _, err := WritePostmortem(dir, &Postmortem{Reason: "rejected"}); err != nil {
		t.Fatalf("second bundle: %v", err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 2 {
		t.Fatalf("postmortem dir has %d files, want 2", len(ents))
	}
}

func TestGlobalRecorder(t *testing.T) {
	if Active() != nil {
		t.Fatal("no recorder should be active at test start")
	}
	r := NewRecorder(8)
	SetGlobal(r)
	defer SetGlobal(nil)
	if Active() != r {
		t.Fatal("Active did not return the installed recorder")
	}
}

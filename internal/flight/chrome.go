package flight

import (
	"encoding/json"
	"io"
	"os"
)

// This file renders a recorder snapshot as Chrome trace-event JSON
// (the "JSON Array Format" with a traceEvents wrapper), loadable in
// Perfetto / chrome://tracing. Span kinds become complete ("X") events
// and instant kinds become thread-scoped instants ("i"); rows (tid) are
// the stage-1 worker IDs, so the timeline shows shard parses fanning
// out across the pool with reconcile and cache work on worker 0.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string    `json:"name"`
	Ph   string    `json:"ph"`
	Ts   float64   `json:"ts"` // microseconds
	Dur  float64   `json:"dur,omitempty"`
	Pid  int       `json:"pid"`
	Tid  int       `json:"tid"`
	S    string    `json:"s,omitempty"`
	Args traceArgs `json:"args"`
}

type traceArgs struct {
	Engine string `json:"engine,omitempty"`
	Shard  uint32 `json:"shard"`
	Run    uint32 `json:"run"`
	Bytes  int64  `json:"bytes,omitempty"`
}

// traceDoc is the document wrapper; displayTimeUnit is advisory.
type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the events as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, events []Event) error {
	doc := traceDoc{TraceEvents: make([]traceEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, ev := range events {
		te := traceEvent{
			Name: ev.Kind.String(),
			Ts:   float64(ev.Start) / 1e3,
			Pid:  1,
			Tid:  int(ev.Worker),
			Args: traceArgs{Engine: ev.Engine.String(), Shard: ev.Shard, Run: ev.Run, Bytes: ev.Bytes},
		}
		if ev.Kind.Span() {
			te.Ph = "X"
			te.Dur = float64(ev.Dur) / 1e3
		} else {
			te.Ph = "i"
			te.S = "t"
		}
		doc.TraceEvents = append(doc.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteChromeTraceFile is WriteChromeTrace to a file path, written via
// a temp file + rename so a crash never leaves a half-written trace.
func WriteChromeTraceFile(path string, events []Event) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, events); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

package ncval_test

import (
	"testing"

	"rocksalt/internal/nacl"
	"rocksalt/internal/ncval"
)

func pad(code ...byte) []byte {
	for len(code)%32 != 0 {
		code = append(code, 0x90)
	}
	return code
}

func TestValidateBasics(t *testing.T) {
	if !ncval.Validate(pad(0x90)) {
		t.Fatal("nops must validate")
	}
	if !ncval.Validate(nil) {
		t.Fatal("empty image is safe")
	}
	if !ncval.Validate(pad(0x83, 0xe0, 0xe0, 0xff, 0xe0)) {
		t.Fatal("masked jump must validate")
	}
	if ncval.Validate(pad(0xff, 0xe0)) {
		t.Fatal("bare indirect jump must fail")
	}
	if ncval.Validate(pad(0xc3)) {
		t.Fatal("ret must fail")
	}
	if ncval.Validate(pad(0xcd, 0x80)) {
		t.Fatal("int 0x80 must fail")
	}
}

func TestValidateDirectJumps(t *testing.T) {
	// jmp +0 to the following nop: fine.
	if !ncval.Validate(pad(0xeb, 0x00)) {
		t.Fatal("direct jump to next instruction must validate")
	}
	// jmp into the middle of an instruction: fail.
	if ncval.Validate(pad(0xeb, 0x03, 0xb8, 0, 0, 0, 0)) {
		t.Fatal("jump into instruction must fail")
	}
	// jmp out of image: fail.
	if ncval.Validate(pad(0xe9, 0x00, 0x10, 0x00, 0x00)) {
		t.Fatal("out-of-image jump must fail")
	}
}

func TestValidatePrefixRules(t *testing.T) {
	if !ncval.Validate(pad(0x66, 0x01, 0xd8)) {
		t.Fatal("operand-size prefix on add must validate")
	}
	if !ncval.Validate(pad(0xf3, 0xa4)) {
		t.Fatal("rep movsb must validate")
	}
	if ncval.Validate(pad(0xf3, 0x90)) {
		t.Fatal("rep on non-string op must fail")
	}
	if ncval.Validate(pad(0xf3, 0x66, 0xa5)) {
		t.Fatal("66 after rep must fail")
	}
	if ncval.Validate(pad(0x64, 0x8b, 0x00)) {
		t.Fatal("segment override must fail")
	}
	if ncval.Validate(pad(0xf0, 0x01, 0x08)) {
		t.Fatal("lock prefix must fail")
	}
	if ncval.Validate(pad(0x67, 0x90)) {
		t.Fatal("address-size prefix must fail")
	}
}

func TestValidateBoundaryRules(t *testing.T) {
	// 30 nops then a 5-byte mov straddling the bundle boundary.
	img := make([]byte, 0, 64)
	for i := 0; i < 30; i++ {
		img = append(img, 0x90)
	}
	img = append(img, 0xb8, 1, 2, 3, 4)
	if ncval.Validate(pad(img...)) {
		t.Fatal("straddling instruction must fail")
	}
}

func TestValidateMaskedPairRules(t *testing.T) {
	// Mask of wrong register.
	if ncval.Validate(pad(0x83, 0xe0, 0xe0, 0xff, 0xe1)) {
		t.Fatal("mask/jump register mismatch must fail")
	}
	// Mask and jump separated by a nop.
	if ncval.Validate(pad(0x83, 0xe0, 0xe0, 0x90, 0xff, 0xe0)) {
		t.Fatal("non-contiguous pair must fail")
	}
	// ESP pair.
	if ncval.Validate(pad(0x83, 0xe4, 0xe0, 0xff, 0xe4)) {
		t.Fatal("ESP pair must fail")
	}
	// Direct jump targeting the jump half of a pair.
	if ncval.Validate(pad(0xeb, 0x03, 0x83, 0xe0, 0xe0, 0xff, 0xe0)) {
		t.Fatal("jump over mask must fail")
	}
	// A lone mask is a perfectly good AND.
	if !ncval.Validate(pad(0x83, 0xe0, 0xe0)) {
		t.Fatal("lone mask must validate")
	}
}

func TestValidateUnsafeCorpus(t *testing.T) {
	for name, img := range nacl.UnsafeCorpus() {
		if ncval.Validate(img) {
			t.Errorf("unsafe image %q accepted", name)
		}
	}
}

func TestValidateGenerated(t *testing.T) {
	gen := nacl.NewGenerator(3)
	for i := 0; i < 50; i++ {
		img, err := gen.Random(40)
		if err != nil {
			t.Fatal(err)
		}
		if !ncval.Validate(img) {
			t.Fatalf("compliant image %d rejected", i)
		}
	}
}

func TestValidateTruncated(t *testing.T) {
	// An image ending mid-instruction must fail (but note images are
	// bundle multiples in practice; here we feed raw bytes).
	if ncval.Validate([]byte{0xb8, 0x01}) {
		t.Fatal("truncated instruction must fail")
	}
}

// Package ncval is the baseline the paper compares against: a validator
// in the style of Google's original hand-written NaCl checker (§3.1).
// It partially decodes instructions with opcode/length tables, and the
// policy checks are intertwined with the decoding — exactly the structure
// whose size and opacity motivated RockSalt. It exists to reproduce the
// speed and agreement experiments (E2, E6, E7) and as a differential
// testing partner for the DFA-based checker.
package ncval

// The accept language is intended to be identical to internal/core's:
// NaCl-safe instructions, direct jumps to instruction boundaries, and
// contiguous mask+jump pairs, under the 32-byte alignment discipline.

const bundleSize = 32

// immKind describes the immediate following the opcode/ModRM.
type immKind uint8

const (
	immNone immKind = iota
	imm8            // one byte
	immZ            // 2 or 4 bytes depending on operand size
	imm16           // always two bytes
	imm16p8         // imm16 followed by imm8 (ENTER)
)

// opFlags describes one opcode's shape and legality.
type opFlags struct {
	legal   bool
	modrm   bool
	imm     immKind
	memOnly bool // ModRM must not be a register (LEA)
	// extLegal restricts the ModRM reg field when non-zero: bit i set
	// means /i is allowed.
	extMask uint8
	// immByExt gives per-extension immediates for group opcodes (F6/F7).
	immByExt map[uint8]immKind
}

var oneByte [256]opFlags
var twoByte [256]opFlags

func init() {
	legal := func(b byte, f opFlags) {
		f.legal = true
		oneByte[b] = f
	}
	legal2 := func(b byte, f opFlags) {
		f.legal = true
		twoByte[b] = f
	}
	// The classic ALU family: 00+8n..05+8n for n = 0..7.
	for n := 0; n < 8; n++ {
		base := byte(n * 8)
		legal(base+0, opFlags{modrm: true})
		legal(base+1, opFlags{modrm: true})
		legal(base+2, opFlags{modrm: true})
		legal(base+3, opFlags{modrm: true})
		legal(base+4, opFlags{imm: imm8})
		legal(base+5, opFlags{imm: immZ})
	}
	// BCD adjusts.
	for _, b := range []byte{0x27, 0x2f, 0x37, 0x3f} {
		legal(b, opFlags{})
	}
	// INC/DEC/PUSH/POP reg.
	for b := 0x40; b <= 0x5f; b++ {
		legal(byte(b), opFlags{})
	}
	legal(0x60, opFlags{})
	legal(0x61, opFlags{})
	legal(0x68, opFlags{imm: immZ})
	legal(0x69, opFlags{modrm: true, imm: immZ})
	legal(0x6a, opFlags{imm: imm8})
	legal(0x6b, opFlags{modrm: true, imm: imm8})
	// Group 1 immediates: every extension is a legal ALU op.
	legal(0x80, opFlags{modrm: true, imm: imm8, extMask: 0xff})
	legal(0x81, opFlags{modrm: true, imm: immZ, extMask: 0xff})
	legal(0x83, opFlags{modrm: true, imm: imm8, extMask: 0xff})
	legal(0x84, opFlags{modrm: true})
	legal(0x85, opFlags{modrm: true})
	legal(0x86, opFlags{modrm: true})
	legal(0x87, opFlags{modrm: true})
	for b := 0x88; b <= 0x8b; b++ {
		legal(byte(b), opFlags{modrm: true})
	}
	legal(0x8d, opFlags{modrm: true, memOnly: true})
	legal(0x8f, opFlags{modrm: true, extMask: 1 << 0})
	for b := 0x90; b <= 0x97; b++ {
		legal(byte(b), opFlags{})
	}
	legal(0x98, opFlags{})
	legal(0x99, opFlags{})
	legal(0x9c, opFlags{})
	legal(0x9d, opFlags{})
	legal(0x9e, opFlags{})
	legal(0x9f, opFlags{})
	// moffs forms carry a 4-byte absolute address regardless of operand
	// size.
	for b := 0xa0; b <= 0xa3; b++ {
		oneByte[b] = opFlags{legal: true, imm: moffsMarker}
	}
	for _, b := range []byte{0xa4, 0xa5, 0xa6, 0xa7, 0xaa, 0xab, 0xac, 0xad, 0xae, 0xaf} {
		legal(b, opFlags{})
	}
	legal(0xa8, opFlags{imm: imm8})
	legal(0xa9, opFlags{imm: immZ})
	for b := 0xb0; b <= 0xb7; b++ {
		legal(byte(b), opFlags{imm: imm8})
	}
	for b := 0xb8; b <= 0xbf; b++ {
		legal(byte(b), opFlags{imm: immZ})
	}
	// Shift groups: /6 is undefined.
	legal(0xc0, opFlags{modrm: true, imm: imm8, extMask: 0xff &^ (1 << 6)})
	legal(0xc1, opFlags{modrm: true, imm: imm8, extMask: 0xff &^ (1 << 6)})
	legal(0xc6, opFlags{modrm: true, imm: imm8, extMask: 1 << 0})
	legal(0xc7, opFlags{modrm: true, imm: immZ, extMask: 1 << 0})
	legal(0xc8, opFlags{imm: imm16p8}) // ENTER
	legal(0xc9, opFlags{})
	for _, b := range []byte{0xd0, 0xd1, 0xd2, 0xd3} {
		legal(b, opFlags{modrm: true, extMask: 0xff &^ (1 << 6)})
	}
	legal(0xd4, opFlags{imm: imm8})
	legal(0xd5, opFlags{imm: imm8})
	legal(0xd7, opFlags{})
	for _, b := range []byte{0xf5, 0xf8, 0xf9, 0xfc, 0xfd} {
		legal(b, opFlags{})
	}
	// Group 3: /0 TEST has an immediate, /1 is undefined.
	legal(0xf6, opFlags{modrm: true, extMask: 0xff &^ (1 << 1),
		immByExt: map[uint8]immKind{0: imm8}})
	legal(0xf7, opFlags{modrm: true, extMask: 0xff &^ (1 << 1),
		immByExt: map[uint8]immKind{0: immZ}})
	// Group 4/5: only INC/DEC are data ops; FF/6 PUSH is also safe.
	legal(0xfe, opFlags{modrm: true, extMask: 1<<0 | 1<<1})
	legal(0xff, opFlags{modrm: true, extMask: 1<<0 | 1<<1 | 1<<6})

	// Two-byte opcodes.
	legal2(0x1f, opFlags{modrm: true, extMask: 1 << 0}) // long NOP
	for b := 0x40; b <= 0x4f; b++ {
		legal2(byte(b), opFlags{modrm: true}) // CMOVcc
	}
	for b := 0x90; b <= 0x9f; b++ {
		legal2(byte(b), opFlags{modrm: true}) // SETcc
	}
	legal2(0xa3, opFlags{modrm: true})
	legal2(0xa4, opFlags{modrm: true, imm: imm8})
	legal2(0xa5, opFlags{modrm: true})
	legal2(0xab, opFlags{modrm: true})
	legal2(0xac, opFlags{modrm: true, imm: imm8})
	legal2(0xad, opFlags{modrm: true})
	legal2(0xaf, opFlags{modrm: true})
	legal2(0xb0, opFlags{modrm: true})
	legal2(0xb1, opFlags{modrm: true})
	legal2(0xb3, opFlags{modrm: true})
	legal2(0xb6, opFlags{modrm: true})
	legal2(0xb7, opFlags{modrm: true})
	legal2(0xba, opFlags{modrm: true, imm: imm8, extMask: 1<<4 | 1<<5 | 1<<6 | 1<<7})
	legal2(0xbb, opFlags{modrm: true})
	legal2(0xbc, opFlags{modrm: true})
	legal2(0xbd, opFlags{modrm: true})
	legal2(0xbe, opFlags{modrm: true})
	legal2(0xbf, opFlags{modrm: true})
	legal2(0xc0, opFlags{modrm: true})
	legal2(0xc1, opFlags{modrm: true})
	legal2(0xc7, opFlags{modrm: true, memOnly: true, extMask: 1 << 1}) // CMPXCHG8B
	legal2(0x31, opFlags{})                                            // RDTSC
	legal2(0xa2, opFlags{})                                            // CPUID
	for b := 0xc8; b <= 0xcf; b++ {
		legal2(byte(b), opFlags{}) // BSWAP
	}
}

const moffsMarker = immKind(200)

// decoded summarizes a partially decoded instruction.
type decoded struct {
	length   int
	maskReg  int // >= 0 when the instruction is "AND reg, 0xe0" (83 /4)
	indirect int // register of an indirect FF/2|/4 jump/call, else -1
	direct   bool
	target   int64 // direct target (image-relative), valid when direct
}

// decode partially decodes the instruction at code[pos:], returning false
// when it is illegal or truncated. This is the "partial decoding
// intertwined with policy enforcement" the paper describes.
func decode(code []byte, pos int) (decoded, bool) {
	d := decoded{maskReg: -1, indirect: -1}
	p := pos
	n := len(code)
	opsize16 := false
	rep := false

	// Prefixes: only 0x66 and F2/F3 (string ops) are legal.
	for {
		if p >= n {
			return d, false
		}
		b := code[p]
		if b == 0x66 && !opsize16 && !rep {
			opsize16 = true
			p++
			continue
		}
		if (b == 0xf2 || b == 0xf3) && !rep && !opsize16 {
			rep = true
			p++
			continue
		}
		break
	}
	if p >= n {
		return d, false
	}
	op := code[p]
	p++

	// Direct jumps (no prefixes allowed on them).
	if !opsize16 && !rep {
		switch {
		case op == 0xeb || op>>4 == 0x7: // JMP rel8 / Jcc rel8
			if p >= n {
				return d, false
			}
			rel := int64(int8(code[p]))
			p++
			d.length = p - pos
			d.direct = true
			d.target = int64(p) + rel
			return d, true
		case op == 0xe8 || op == 0xe9:
			if p+4 > n {
				return d, false
			}
			rel := int64(int32(le32(code[p:])))
			p += 4
			d.length = p - pos
			d.direct = true
			d.target = int64(p) + rel
			return d, true
		case op == 0x0f && p < n && code[p]>>4 == 0x8: // Jcc rel32
			p++
			if p+4 > n {
				return d, false
			}
			rel := int64(int32(le32(code[p:])))
			p += 4
			d.length = p - pos
			d.direct = true
			d.target = int64(p) + rel
			return d, true
		}
	}

	// Indirect jump/call through a register: FF /2 or /4 with mod=11.
	// Only meaningful as the second half of a masked pair.
	if !opsize16 && !rep && op == 0xff && p < n {
		modrm := code[p]
		if modrm>>6 == 3 {
			ext := modrm >> 3 & 7
			if ext == 2 || ext == 4 {
				d.indirect = int(modrm & 7)
				d.length = p + 1 - pos
				return d, true
			}
		}
	}

	var f opFlags
	if op == 0x0f {
		if p >= n {
			return d, false
		}
		f = twoByte[code[p]]
		p++
	} else {
		f = oneByte[op]
	}
	if !f.legal {
		return d, false
	}
	if rep {
		// REP/REPNE only before the plain string ops.
		switch op {
		case 0xa4, 0xa5, 0xa6, 0xa7, 0xaa, 0xab, 0xac, 0xad, 0xae, 0xaf:
		default:
			return d, false
		}
	}

	if f.modrm {
		ml, ext, isReg, rm := modrmLen(code, p)
		if ml < 0 {
			return d, false
		}
		if f.memOnly && isReg {
			return d, false
		}
		if f.extMask != 0 && f.extMask&(1<<ext) == 0 {
			return d, false
		}
		// Mask detection: AND r/m32, imm8 is 83 /4; the NaCl mask is the
		// register form with immediate 0xe0.
		if op == 0x83 && ext == 4 && isReg && !opsize16 {
			immPos := p + ml
			if immPos < n && code[immPos] == 0xe0 {
				d.maskReg = int(rm)
			}
		}
		if f.immByExt != nil {
			if k, ok := f.immByExt[ext]; ok {
				f.imm = k
			} else {
				f.imm = immNone
			}
		}
		p += ml
	}
	switch f.imm {
	case imm8:
		p++
	case imm16:
		p += 2
	case imm16p8:
		p += 3
	case immZ:
		if opsize16 {
			p += 2
		} else {
			p += 4
		}
	case moffsMarker:
		p += 4
	}
	if p > n {
		return d, false
	}
	d.length = p - pos
	return d, true
}

// modrmLen returns the byte length of the ModRM/SIB/displacement cluster,
// the reg/extension field, whether the r/m is a register, and the rm
// bits. A negative length means truncated or malformed.
func modrmLen(code []byte, p int) (length int, ext uint8, isReg bool, rm uint8) {
	if p >= len(code) {
		return -1, 0, false, 0
	}
	modrm := code[p]
	mod := modrm >> 6
	ext = modrm >> 3 & 7
	rm = modrm & 7
	length = 1
	if mod == 3 {
		return length, ext, true, rm
	}
	disp := 0
	switch mod {
	case 0:
		if rm == 5 {
			disp = 4
		}
	case 1:
		disp = 1
	case 2:
		disp = 4
	}
	if rm == 4 { // SIB
		if p+1 >= len(code) {
			return -1, 0, false, 0
		}
		sib := code[p+1]
		length++
		if mod == 0 && sib&7 == 5 {
			disp = 4
		}
	}
	length += disp
	if p+length > len(code) {
		return -1, 0, false, 0
	}
	return length, ext, false, rm
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Validate checks the image against the sandbox policy, Google-checker
// style: one pass decoding instructions and recording instruction starts
// and jump targets, then the alignment and target checks.
func Validate(code []byte) bool {
	size := len(code)
	valid := make([]bool, size)
	target := make([]bool, size)

	pos := 0
	lastMaskReg := -1
	lastMaskEnd := -1
	for pos < size {
		d, ok := decode(code, pos)
		if !ok {
			return false
		}
		valid[pos] = true
		end := pos + d.length
		if d.indirect >= 0 {
			// Legal only as the contiguous second half of a masked pair
			// through the same (non-ESP) register.
			if d.indirect == 4 || lastMaskReg != d.indirect || lastMaskEnd != pos {
				return false
			}
			// The jump itself must not be reachable directly.
			valid[pos] = false
		}
		if d.direct {
			if d.target < 0 || d.target >= int64(size) {
				return false
			}
			target[d.target] = true
		}
		if d.maskReg >= 0 {
			lastMaskReg = d.maskReg
			lastMaskEnd = end
		} else {
			lastMaskReg, lastMaskEnd = -1, -1
		}
		pos = end
	}
	for i := 0; i < size; i++ {
		if target[i] && !valid[i] {
			return false
		}
		if i%bundleSize == 0 && !valid[i] {
			return false
		}
	}
	return true
}

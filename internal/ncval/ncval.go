// Package ncval is the baseline the paper compares against: a validator
// in the style of Google's original hand-written NaCl checker (§3.1).
// It partially decodes instructions with opcode/length tables, and the
// policy checks are intertwined with the decoding — exactly the structure
// whose size and opacity motivated RockSalt. It exists to reproduce the
// speed and agreement experiments (E2, E6, E7) and as a differential
// testing partner for the DFA-based checker.
//
// The checker is parameterized by a Config — bundle size, mask encoding,
// maskable registers, banned instruction classes, guard region — so the
// differential campaigns can hold it against RockSalt checkers compiled
// from any policy.Spec, not just the default NaCl-32 policy. The
// decoding tables and control structure stay deliberately independent of
// internal/core: agreement between the two implementations is evidence
// precisely because they share no code.
package ncval

import (
	"rocksalt/internal/policy"
)

// The accept language is intended to be identical to internal/core's
// under the same policy spec: policy-safe instructions, direct jumps to
// instruction boundaries, and contiguous mask+jump pairs, under the
// spec's alignment discipline.

// Config carries the policy parameters the validator enforces. The
// fields mirror what a normalized policy.Spec pins down, restated in
// this package's own terms (opcode bytes and register encodings rather
// than grammars) so the enforcement logic stays independent of the DFA
// pipeline it is compared against.
type Config struct {
	// Bundle is the alignment quantum in bytes.
	Bundle int
	// MaskOp is the masking AND's opcode: 0x83 (imm8 form) or 0x81
	// (imm32 form).
	MaskOp byte
	// MaskImm is the mask immediate: the raw byte for the imm8 form,
	// the full little-endian value for the imm32 form.
	MaskImm uint32
	// Maskable marks the register encodings allowed in masked jumps.
	Maskable [8]bool
	// BanString rejects the string operations (and, transitively, the
	// REP prefixes that are only legal before them).
	BanString bool
	// BanRep rejects the REP/REPNE prefixes while keeping bare string
	// operations legal.
	BanRep bool
	// BanOpsize16 rejects the 0x66 operand-size override.
	BanOpsize16 bool
	// AlignedCalls requires every call (direct or the call half of a
	// masked pair) to end exactly at a bundle boundary.
	AlignedCalls bool
	// Guard, when nonzero, rejects out-of-image direct-jump targets
	// below it even when whitelisted in Entries.
	Guard uint32
	// Entries whitelists out-of-image direct-jump targets (the NaCl
	// runtime's trampoline entry points).
	Entries map[uint32]bool
}

// NaClConfig is the default NaCl-32 policy: 32-byte bundles, AND r,0xe0
// masks through every register but ESP.
func NaClConfig() Config {
	cf := Config{Bundle: 32, MaskOp: 0x83, MaskImm: 0xe0}
	for r := 0; r < 8; r++ {
		cf.Maskable[r] = r != 4 // ESP
	}
	return cf
}

// ConfigForSpec translates a policy.Spec (normalized first) into this
// validator's enforcement parameters.
func ConfigForSpec(s policy.Spec) (Config, error) {
	norm, err := s.Normalize()
	if err != nil {
		return Config{}, err
	}
	cf := Config{
		Bundle:       norm.BundleSize,
		MaskOp:       0x83,
		MaskImm:      norm.MaskImm(),
		AlignedCalls: norm.AlignedCalls,
		Guard:        norm.GuardCutoff,
	}
	if norm.MaskWidth == 32 {
		cf.MaskOp = 0x81
	}
	for _, r := range norm.MaskRegisters() {
		cf.Maskable[int(r)&7] = true
	}
	for _, c := range norm.BannedClasses {
		switch c {
		case "string":
			cf.BanString = true
			cf.BanRep = true // REP is only legal before the (now banned) string ops
		case "rep-prefix":
			cf.BanRep = true
		case "opsize16":
			cf.BanOpsize16 = true
		}
	}
	return cf, nil
}

// immKind describes the immediate following the opcode/ModRM.
type immKind uint8

const (
	immNone immKind = iota
	imm8            // one byte
	immZ            // 2 or 4 bytes depending on operand size
	imm16           // always two bytes
	imm16p8         // imm16 followed by imm8 (ENTER)
)

// opFlags describes one opcode's shape and legality.
type opFlags struct {
	legal   bool
	modrm   bool
	imm     immKind
	memOnly bool // ModRM must not be a register (LEA)
	// extLegal restricts the ModRM reg field when non-zero: bit i set
	// means /i is allowed.
	extMask uint8
	// immByExt gives per-extension immediates for group opcodes (F6/F7).
	immByExt map[uint8]immKind
}

var oneByte [256]opFlags
var twoByte [256]opFlags

func init() {
	legal := func(b byte, f opFlags) {
		f.legal = true
		oneByte[b] = f
	}
	legal2 := func(b byte, f opFlags) {
		f.legal = true
		twoByte[b] = f
	}
	// The classic ALU family: 00+8n..05+8n for n = 0..7.
	for n := 0; n < 8; n++ {
		base := byte(n * 8)
		legal(base+0, opFlags{modrm: true})
		legal(base+1, opFlags{modrm: true})
		legal(base+2, opFlags{modrm: true})
		legal(base+3, opFlags{modrm: true})
		legal(base+4, opFlags{imm: imm8})
		legal(base+5, opFlags{imm: immZ})
	}
	// BCD adjusts.
	for _, b := range []byte{0x27, 0x2f, 0x37, 0x3f} {
		legal(b, opFlags{})
	}
	// INC/DEC/PUSH/POP reg.
	for b := 0x40; b <= 0x5f; b++ {
		legal(byte(b), opFlags{})
	}
	legal(0x60, opFlags{})
	legal(0x61, opFlags{})
	legal(0x68, opFlags{imm: immZ})
	legal(0x69, opFlags{modrm: true, imm: immZ})
	legal(0x6a, opFlags{imm: imm8})
	legal(0x6b, opFlags{modrm: true, imm: imm8})
	// Group 1 immediates: every extension is a legal ALU op.
	legal(0x80, opFlags{modrm: true, imm: imm8, extMask: 0xff})
	legal(0x81, opFlags{modrm: true, imm: immZ, extMask: 0xff})
	legal(0x83, opFlags{modrm: true, imm: imm8, extMask: 0xff})
	legal(0x84, opFlags{modrm: true})
	legal(0x85, opFlags{modrm: true})
	legal(0x86, opFlags{modrm: true})
	legal(0x87, opFlags{modrm: true})
	for b := 0x88; b <= 0x8b; b++ {
		legal(byte(b), opFlags{modrm: true})
	}
	legal(0x8d, opFlags{modrm: true, memOnly: true})
	legal(0x8f, opFlags{modrm: true, extMask: 1 << 0})
	for b := 0x90; b <= 0x97; b++ {
		legal(byte(b), opFlags{})
	}
	legal(0x98, opFlags{})
	legal(0x99, opFlags{})
	legal(0x9c, opFlags{})
	legal(0x9d, opFlags{})
	legal(0x9e, opFlags{})
	legal(0x9f, opFlags{})
	// moffs forms carry a 4-byte absolute address regardless of operand
	// size.
	for b := 0xa0; b <= 0xa3; b++ {
		oneByte[b] = opFlags{legal: true, imm: moffsMarker}
	}
	for _, b := range []byte{0xa4, 0xa5, 0xa6, 0xa7, 0xaa, 0xab, 0xac, 0xad, 0xae, 0xaf} {
		legal(b, opFlags{})
	}
	legal(0xa8, opFlags{imm: imm8})
	legal(0xa9, opFlags{imm: immZ})
	for b := 0xb0; b <= 0xb7; b++ {
		legal(byte(b), opFlags{imm: imm8})
	}
	for b := 0xb8; b <= 0xbf; b++ {
		legal(byte(b), opFlags{imm: immZ})
	}
	// Shift groups: /6 is undefined.
	legal(0xc0, opFlags{modrm: true, imm: imm8, extMask: 0xff &^ (1 << 6)})
	legal(0xc1, opFlags{modrm: true, imm: imm8, extMask: 0xff &^ (1 << 6)})
	legal(0xc6, opFlags{modrm: true, imm: imm8, extMask: 1 << 0})
	legal(0xc7, opFlags{modrm: true, imm: immZ, extMask: 1 << 0})
	legal(0xc8, opFlags{imm: imm16p8}) // ENTER
	legal(0xc9, opFlags{})
	for _, b := range []byte{0xd0, 0xd1, 0xd2, 0xd3} {
		legal(b, opFlags{modrm: true, extMask: 0xff &^ (1 << 6)})
	}
	legal(0xd4, opFlags{imm: imm8})
	legal(0xd5, opFlags{imm: imm8})
	legal(0xd7, opFlags{})
	for _, b := range []byte{0xf5, 0xf8, 0xf9, 0xfc, 0xfd} {
		legal(b, opFlags{})
	}
	// Group 3: /0 TEST has an immediate, /1 is undefined.
	legal(0xf6, opFlags{modrm: true, extMask: 0xff &^ (1 << 1),
		immByExt: map[uint8]immKind{0: imm8}})
	legal(0xf7, opFlags{modrm: true, extMask: 0xff &^ (1 << 1),
		immByExt: map[uint8]immKind{0: immZ}})
	// Group 4/5: only INC/DEC are data ops; FF/6 PUSH is also safe.
	legal(0xfe, opFlags{modrm: true, extMask: 1<<0 | 1<<1})
	legal(0xff, opFlags{modrm: true, extMask: 1<<0 | 1<<1 | 1<<6})

	// Two-byte opcodes.
	legal2(0x1f, opFlags{modrm: true, extMask: 1 << 0}) // long NOP
	for b := 0x40; b <= 0x4f; b++ {
		legal2(byte(b), opFlags{modrm: true}) // CMOVcc
	}
	for b := 0x90; b <= 0x9f; b++ {
		legal2(byte(b), opFlags{modrm: true}) // SETcc
	}
	legal2(0xa3, opFlags{modrm: true})
	legal2(0xa4, opFlags{modrm: true, imm: imm8})
	legal2(0xa5, opFlags{modrm: true})
	legal2(0xab, opFlags{modrm: true})
	legal2(0xac, opFlags{modrm: true, imm: imm8})
	legal2(0xad, opFlags{modrm: true})
	legal2(0xaf, opFlags{modrm: true})
	legal2(0xb0, opFlags{modrm: true})
	legal2(0xb1, opFlags{modrm: true})
	legal2(0xb3, opFlags{modrm: true})
	legal2(0xb6, opFlags{modrm: true})
	legal2(0xb7, opFlags{modrm: true})
	legal2(0xba, opFlags{modrm: true, imm: imm8, extMask: 1<<4 | 1<<5 | 1<<6 | 1<<7})
	legal2(0xbb, opFlags{modrm: true})
	legal2(0xbc, opFlags{modrm: true})
	legal2(0xbd, opFlags{modrm: true})
	legal2(0xbe, opFlags{modrm: true})
	legal2(0xbf, opFlags{modrm: true})
	legal2(0xc0, opFlags{modrm: true})
	legal2(0xc1, opFlags{modrm: true})
	legal2(0xc7, opFlags{modrm: true, memOnly: true, extMask: 1 << 1}) // CMPXCHG8B
	legal2(0x31, opFlags{})                                            // RDTSC
	legal2(0xa2, opFlags{})                                            // CPUID
	for b := 0xc8; b <= 0xcf; b++ {
		legal2(byte(b), opFlags{}) // BSWAP
	}
}

const moffsMarker = immKind(200)

// decoded summarizes a partially decoded instruction.
type decoded struct {
	length   int
	maskReg  int // >= 0 when the instruction is the policy's masking AND
	indirect int // register of an indirect FF/2|/4 jump/call, else -1
	direct   bool
	call     bool  // direct CALL or indirect FF/2
	target   int64 // direct target (image-relative), valid when direct
}

// decode partially decodes the instruction at code[pos:], returning false
// when it is illegal or truncated under the config. This is the "partial
// decoding intertwined with policy enforcement" the paper describes.
func (cf *Config) decode(code []byte, pos int) (decoded, bool) {
	d := decoded{maskReg: -1, indirect: -1}
	p := pos
	n := len(code)
	opsize16 := false
	rep := false

	// Prefixes: only 0x66 and F2/F3 (string ops) are legal, and only
	// when the policy has not banned their class.
	for {
		if p >= n {
			return d, false
		}
		b := code[p]
		if b == 0x66 && !opsize16 && !rep {
			if cf.BanOpsize16 {
				return d, false
			}
			opsize16 = true
			p++
			continue
		}
		if (b == 0xf2 || b == 0xf3) && !rep && !opsize16 {
			if cf.BanRep || cf.BanString {
				return d, false
			}
			rep = true
			p++
			continue
		}
		break
	}
	if p >= n {
		return d, false
	}
	op := code[p]
	p++

	// Direct jumps (no prefixes allowed on them).
	if !opsize16 && !rep {
		switch {
		case op == 0xeb || op>>4 == 0x7: // JMP rel8 / Jcc rel8
			if p >= n {
				return d, false
			}
			rel := int64(int8(code[p]))
			p++
			d.length = p - pos
			d.direct = true
			d.target = int64(p) + rel
			return d, true
		case op == 0xe8 || op == 0xe9:
			if p+4 > n {
				return d, false
			}
			rel := int64(int32(le32(code[p:])))
			p += 4
			d.length = p - pos
			d.direct = true
			d.call = op == 0xe8
			d.target = int64(p) + rel
			return d, true
		case op == 0x0f && p < n && code[p]>>4 == 0x8: // Jcc rel32
			p++
			if p+4 > n {
				return d, false
			}
			rel := int64(int32(le32(code[p:])))
			p += 4
			d.length = p - pos
			d.direct = true
			d.target = int64(p) + rel
			return d, true
		}
	}

	// Indirect jump/call through a register: FF /2 or /4 with mod=11.
	// Only meaningful as the second half of a masked pair.
	if !opsize16 && !rep && op == 0xff && p < n {
		modrm := code[p]
		if modrm>>6 == 3 {
			ext := modrm >> 3 & 7
			if ext == 2 || ext == 4 {
				d.indirect = int(modrm & 7)
				d.call = ext == 2
				d.length = p + 1 - pos
				return d, true
			}
		}
	}

	var f opFlags
	if op == 0x0f {
		if p >= n {
			return d, false
		}
		f = twoByte[code[p]]
		p++
	} else {
		f = oneByte[op]
	}
	if !f.legal {
		return d, false
	}
	if cf.BanString && op != 0x0f && isStringOpcode(op) {
		return d, false
	}
	if rep {
		// REP/REPNE only before the plain string ops.
		switch op {
		case 0xa4, 0xa5, 0xa6, 0xa7, 0xaa, 0xab, 0xac, 0xad, 0xae, 0xaf:
		default:
			return d, false
		}
	}

	if f.modrm {
		ml, ext, isReg, rm := modrmLen(code, p)
		if ml < 0 {
			return d, false
		}
		if f.memOnly && isReg {
			return d, false
		}
		if f.extMask != 0 && f.extMask&(1<<ext) == 0 {
			return d, false
		}
		// Mask detection: the policy's AND r/m32, imm is MaskOp /4; the
		// mask is the register form through a maskable register with
		// exactly the mask immediate.
		if op == cf.MaskOp && ext == 4 && isReg && !opsize16 && cf.Maskable[rm] {
			immPos := p + ml
			if cf.MaskOp == 0x81 {
				if immPos+4 <= n && le32(code[immPos:]) == cf.MaskImm {
					d.maskReg = int(rm)
				}
			} else if immPos < n && code[immPos] == byte(cf.MaskImm) {
				d.maskReg = int(rm)
			}
		}
		if f.immByExt != nil {
			if k, ok := f.immByExt[ext]; ok {
				f.imm = k
			} else {
				f.imm = immNone
			}
		}
		p += ml
	}
	switch f.imm {
	case imm8:
		p++
	case imm16:
		p += 2
	case imm16p8:
		p += 3
	case immZ:
		if opsize16 {
			p += 2
		} else {
			p += 4
		}
	case moffsMarker:
		p += 4
	}
	if p > n {
		return d, false
	}
	d.length = p - pos
	return d, true
}

// modrmLen returns the byte length of the ModRM/SIB/displacement cluster,
// the reg/extension field, whether the r/m is a register, and the rm
// bits. A negative length means truncated or malformed.
func modrmLen(code []byte, p int) (length int, ext uint8, isReg bool, rm uint8) {
	if p >= len(code) {
		return -1, 0, false, 0
	}
	modrm := code[p]
	mod := modrm >> 6
	ext = modrm >> 3 & 7
	rm = modrm & 7
	length = 1
	if mod == 3 {
		return length, ext, true, rm
	}
	disp := 0
	switch mod {
	case 0:
		if rm == 5 {
			disp = 4
		}
	case 1:
		disp = 1
	case 2:
		disp = 4
	}
	if rm == 4 { // SIB
		if p+1 >= len(code) {
			return -1, 0, false, 0
		}
		sib := code[p+1]
		length++
		if mod == 0 && sib&7 == 5 {
			disp = 4
		}
	}
	length += disp
	if p+length > len(code) {
		return -1, 0, false, 0
	}
	return length, ext, false, rm
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// isStringOpcode reports the one-byte string operations — the "string"
// banned class (their REP forms are rejected via the prefix).
func isStringOpcode(op byte) bool {
	switch op {
	case 0xa4, 0xa5, 0xa6, 0xa7, 0xaa, 0xab, 0xac, 0xad, 0xae, 0xaf:
		return true
	}
	return false
}

// Validate checks the image against the default NaCl-32 sandbox policy.
func Validate(code []byte) bool {
	cf := NaClConfig()
	return cf.Validate(code)
}

// Validate checks the image against cf's sandbox policy, Google-checker
// style: one pass decoding instructions and recording instruction starts
// and jump targets, then the alignment and target checks.
func (cf *Config) Validate(code []byte) bool {
	size := len(code)
	valid := make([]bool, size)
	target := make([]bool, size)

	pos := 0
	lastMaskReg := -1
	lastMaskEnd := -1
	for pos < size {
		d, ok := cf.decode(code, pos)
		if !ok {
			return false
		}
		valid[pos] = true
		end := pos + d.length
		if d.indirect >= 0 {
			// Legal only as the contiguous second half of a masked pair
			// through the same maskable register.
			if !cf.Maskable[d.indirect] || lastMaskReg != d.indirect || lastMaskEnd != pos {
				return false
			}
			// The jump itself must not be reachable directly.
			valid[pos] = false
		}
		if cf.AlignedCalls && d.call && end%cf.Bundle != 0 {
			return false
		}
		if d.direct {
			if d.target >= 0 && d.target < int64(size) {
				target[d.target] = true
			} else if !cf.allowedEntry(uint32(d.target)) {
				return false
			}
		}
		if d.maskReg >= 0 {
			lastMaskReg = d.maskReg
			lastMaskEnd = end
		} else {
			lastMaskReg, lastMaskEnd = -1, -1
		}
		pos = end
	}
	for i := 0; i < size; i++ {
		if target[i] && !valid[i] {
			return false
		}
		if i%cf.Bundle == 0 && !valid[i] {
			return false
		}
	}
	return true
}

// allowedEntry reports whether an out-of-image direct-jump target is
// permitted: whitelisted as an entry point and not inside the guard
// region.
func (cf *Config) allowedEntry(t uint32) bool {
	if cf.Guard != 0 && t < cf.Guard {
		return false
	}
	return cf.Entries[t]
}

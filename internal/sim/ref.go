package sim

import (
	"errors"
	"fmt"
	mathbits "math/bits"

	"rocksalt/internal/x86"
	"rocksalt/internal/x86/machine"
)

// This file is the model-validation substitute for the paper's Pin-based
// tracing of a real CPU: an independent, directly-coded interpreter for a
// large subset of the modeled instructions. It shares no code with the
// RTL pipeline (it works in plain uint32 arithmetic), so agreement between
// the two on random instances is meaningful evidence. Undefined flags
// follow the same convention as the RTL translation under a zero oracle:
// they read as 0.

// ErrRefUnsupported marks instructions outside the reference subset;
// differential tests skip them.
var ErrRefUnsupported = errors.New("sim: reference interpreter does not cover instruction")

// RefStep executes one instruction directly against the state, mirroring
// Simulator.Step.
func RefStep(s *Simulator) error {
	inst, n, err := s.FetchDecode()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHalt, err)
	}
	r := &refCtx{st: s.St, inst: inst, size: inst.OperandSize(), next: s.St.PC + uint32(n)}
	return r.exec()
}

type refCtx struct {
	st   *machine.State
	inst x86.Inst
	size int
	next uint32
}

func (r *refCtx) mask() uint32 {
	switch r.size {
	case 8:
		return 0xff
	case 16:
		return 0xffff
	default:
		return 0xffffffff
	}
}

func (r *refCtx) signBit() uint32 { return 1 << uint(r.size-1) }

func (r *refCtx) flag(f x86.Flag) bool       { return r.st.Flags[f] }
func (r *refCtx) setFlag(f x86.Flag, v bool) { r.st.Flags[f] = v }

func (r *refCtx) readReg(reg x86.Reg, size int) uint32 {
	switch size {
	case 32:
		return r.st.Regs[reg]
	case 16:
		return r.st.Regs[reg] & 0xffff
	case 8:
		if reg >= 4 {
			return r.st.Regs[reg-4] >> 8 & 0xff
		}
		return r.st.Regs[reg] & 0xff
	}
	panic("ref: bad size")
}

func (r *refCtx) writeReg(reg x86.Reg, size int, v uint32) {
	switch size {
	case 32:
		r.st.Regs[reg] = v
	case 16:
		r.st.Regs[reg] = r.st.Regs[reg]&0xffff0000 | v&0xffff
	case 8:
		if reg >= 4 {
			r.st.Regs[reg-4] = r.st.Regs[reg-4]&^uint32(0xff00) | (v&0xff)<<8
		} else {
			r.st.Regs[reg] = r.st.Regs[reg]&^uint32(0xff) | v&0xff
		}
	}
}

func (r *refCtx) defaultSeg(a x86.Addr) x86.SegReg {
	if r.inst.Prefix.Seg != nil {
		return *r.inst.Prefix.Seg
	}
	if a.Base != nil && (*a.Base == x86.EBP || *a.Base == x86.ESP) {
		return x86.SS
	}
	return x86.DS
}

func (r *refCtx) effAddr(a x86.Addr) uint32 {
	ea := a.Disp
	if a.Base != nil {
		ea += r.st.Regs[*a.Base]
	}
	if a.Index != nil {
		ea += r.st.Regs[*a.Index] * uint32(a.Scale)
	}
	return ea
}

func (r *refCtx) linear(seg x86.SegReg, ea uint32, size int) (uint32, error) {
	if uint64(ea)+uint64(size/8-1) > uint64(r.st.SegLimit[seg]) {
		return 0, fmt.Errorf("%w: #GP segment limit (%v)", ErrHalt, seg)
	}
	return r.st.SegBase[seg] + ea, nil
}

func (r *refCtx) loadMem(seg x86.SegReg, ea uint32, size int) (uint32, error) {
	lin, err := r.linear(seg, ea, size)
	if err != nil {
		return 0, err
	}
	var v uint32
	for i := size/8 - 1; i >= 0; i-- {
		v = v<<8 | uint32(r.st.Mem.Load(lin+uint32(i)))
	}
	return v, nil
}

func (r *refCtx) storeMem(seg x86.SegReg, ea uint32, size int, v uint32) error {
	lin, err := r.linear(seg, ea, size)
	if err != nil {
		return err
	}
	for i := 0; i < size/8; i++ {
		r.st.Mem.Store(lin+uint32(i), byte(v>>uint(8*i)))
	}
	return nil
}

func (r *refCtx) readOp(op x86.Operand, size int) (uint32, error) {
	switch o := op.(type) {
	case x86.Imm:
		return o.Val & (uint32(1)<<uint(size-1)<<1 - 1), nil
	case x86.RegOp:
		return r.readReg(o.Reg, size), nil
	case x86.MemOp:
		return r.loadMem(r.defaultSeg(o.Addr), r.effAddr(o.Addr), size)
	case x86.OffOp:
		seg := x86.DS
		if r.inst.Prefix.Seg != nil {
			seg = *r.inst.Prefix.Seg
		}
		return r.loadMem(seg, o.Off, size)
	}
	return 0, ErrRefUnsupported
}

func (r *refCtx) writeOp(op x86.Operand, size int, v uint32) error {
	switch o := op.(type) {
	case x86.RegOp:
		r.writeReg(o.Reg, size, v)
		return nil
	case x86.MemOp:
		return r.storeMem(r.defaultSeg(o.Addr), r.effAddr(o.Addr), size, v)
	case x86.OffOp:
		seg := x86.DS
		if r.inst.Prefix.Seg != nil {
			seg = *r.inst.Prefix.Seg
		}
		return r.storeMem(seg, o.Off, size, v)
	}
	return ErrRefUnsupported
}

func (r *refCtx) setSZP(v uint32) {
	r.setFlag(x86.SF, v&r.signBit() != 0)
	r.setFlag(x86.ZF, v&r.mask() == 0)
	r.setFlag(x86.PF, mathbits.OnesCount8(uint8(v))%2 == 0)
}

func (r *refCtx) setAddFlags(a, b, carry, res uint32) {
	wide := uint64(a) + uint64(b) + uint64(carry)
	r.setFlag(x86.CF, wide>>uint(r.size) != 0)
	sa, sb, sr := a&r.signBit() != 0, b&r.signBit() != 0, res&r.signBit() != 0
	r.setFlag(x86.OF, sa == sb && sa != sr)
	r.setFlag(x86.AF, (a^b^res)&0x10 != 0)
}

func (r *refCtx) setSubFlags(a, b, borrow, res uint32) {
	r.setFlag(x86.CF, uint64(a) < uint64(b)+uint64(borrow))
	sa, sb, sr := a&r.signBit() != 0, b&r.signBit() != 0, res&r.signBit() != 0
	r.setFlag(x86.OF, sa != sb && sa != sr)
	r.setFlag(x86.AF, (a^b^res)&0x10 != 0)
}

func (r *refCtx) setLogicFlags(res uint32) {
	r.setFlag(x86.CF, false)
	r.setFlag(x86.OF, false)
	r.setFlag(x86.AF, false) // undefined: zero-oracle convention
	r.setSZP(res)
}

func (r *refCtx) cond(c x86.Cond) bool {
	var v bool
	switch c &^ 1 {
	case x86.CondO:
		v = r.flag(x86.OF)
	case x86.CondB:
		v = r.flag(x86.CF)
	case x86.CondE:
		v = r.flag(x86.ZF)
	case x86.CondBE:
		v = r.flag(x86.CF) || r.flag(x86.ZF)
	case x86.CondS:
		v = r.flag(x86.SF)
	case x86.CondP:
		v = r.flag(x86.PF)
	case x86.CondL:
		v = r.flag(x86.SF) != r.flag(x86.OF)
	case x86.CondLE:
		v = r.flag(x86.ZF) || r.flag(x86.SF) != r.flag(x86.OF)
	}
	if c&1 == 1 {
		return !v
	}
	return v
}

func (r *refCtx) push(size int, v uint32) error {
	r.st.Regs[x86.ESP] -= uint32(size / 8)
	return r.storeMem(x86.SS, r.st.Regs[x86.ESP], size, v)
}

func (r *refCtx) pop(size int) (uint32, error) {
	v, err := r.loadMem(x86.SS, r.st.Regs[x86.ESP], size)
	if err != nil {
		return 0, err
	}
	r.st.Regs[x86.ESP] += uint32(size / 8)
	return v, nil
}

func sext(v uint32, size int) int64 {
	switch size {
	case 8:
		return int64(int8(v))
	case 16:
		return int64(int16(v))
	default:
		return int64(int32(v))
	}
}

func (r *refCtx) exec() error {
	if r.inst.Prefix.AddrSize {
		return ErrRefUnsupported
	}
	i := r.inst
	m := r.mask()
	switch i.Op {
	case x86.NOP:
		r.st.PC = r.next
		return nil
	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.CMP, x86.AND, x86.OR, x86.XOR, x86.TEST:
		a, err := r.readOp(i.Args[0], r.size)
		if err != nil {
			return err
		}
		b, err := r.readOp(i.Args[1], r.size)
		if err != nil {
			return err
		}
		var res uint32
		store := true
		switch i.Op {
		case x86.ADD:
			res = (a + b) & m
			r.setAddFlags(a, b, 0, res)
			r.setSZP(res)
		case x86.ADC:
			c := uint32(0)
			if r.flag(x86.CF) {
				c = 1
			}
			res = (a + b + c) & m
			r.setAddFlags(a, b, c, res)
			r.setSZP(res)
		case x86.SUB, x86.CMP:
			res = (a - b) & m
			r.setSubFlags(a, b, 0, res)
			r.setSZP(res)
			store = i.Op == x86.SUB
		case x86.SBB:
			c := uint32(0)
			if r.flag(x86.CF) {
				c = 1
			}
			res = (a - b - c) & m
			r.setSubFlags(a, b, c, res)
			r.setSZP(res)
		case x86.AND, x86.TEST:
			res = a & b
			r.setLogicFlags(res)
			store = i.Op == x86.AND
		case x86.OR:
			res = a | b
			r.setLogicFlags(res)
		case x86.XOR:
			res = a ^ b
			r.setLogicFlags(res)
		}
		if store {
			if err := r.writeOp(i.Args[0], r.size, res); err != nil {
				return err
			}
		}
	case x86.INC, x86.DEC:
		a, err := r.readOp(i.Args[0], r.size)
		if err != nil {
			return err
		}
		cf := r.flag(x86.CF)
		var res uint32
		if i.Op == x86.INC {
			res = (a + 1) & m
			r.setAddFlags(a, 1, 0, res)
		} else {
			res = (a - 1) & m
			r.setSubFlags(a, 1, 0, res)
		}
		r.setSZP(res)
		r.setFlag(x86.CF, cf)
		if err := r.writeOp(i.Args[0], r.size, res); err != nil {
			return err
		}
	case x86.NEG:
		a, err := r.readOp(i.Args[0], r.size)
		if err != nil {
			return err
		}
		res := (-a) & m
		r.setSubFlags(0, a, 0, res)
		r.setSZP(res)
		if err := r.writeOp(i.Args[0], r.size, res); err != nil {
			return err
		}
	case x86.NOT:
		a, err := r.readOp(i.Args[0], r.size)
		if err != nil {
			return err
		}
		if err := r.writeOp(i.Args[0], r.size, ^a&m); err != nil {
			return err
		}
	case x86.MOV:
		if _, isSeg := i.Args[0].(x86.SegOp); isSeg {
			return ErrRefUnsupported
		}
		if _, isSeg := i.Args[1].(x86.SegOp); isSeg {
			return ErrRefUnsupported
		}
		v, err := r.readOp(i.Args[1], r.size)
		if err != nil {
			return err
		}
		if err := r.writeOp(i.Args[0], r.size, v); err != nil {
			return err
		}
	case x86.MOVZX, x86.MOVSX:
		v, err := r.readOp(i.Args[1], int(i.SrcSize))
		if err != nil {
			return err
		}
		if i.Op == x86.MOVSX {
			v = uint32(sext(v, int(i.SrcSize))) & m
		}
		if err := r.writeOp(i.Args[0], r.size, v); err != nil {
			return err
		}
	case x86.LEA:
		mem := i.Args[1].(x86.MemOp)
		if err := r.writeOp(i.Args[0], r.size, r.effAddr(mem.Addr)); err != nil {
			return err
		}
	case x86.XCHG:
		a, err := r.readOp(i.Args[0], r.size)
		if err != nil {
			return err
		}
		b, err := r.readOp(i.Args[1], r.size)
		if err != nil {
			return err
		}
		if err := r.writeOp(i.Args[0], r.size, b); err != nil {
			return err
		}
		if err := r.writeOp(i.Args[1], r.size, a); err != nil {
			return err
		}
	case x86.CMOVcc:
		v, err := r.readOp(i.Args[1], r.size)
		if err != nil {
			return err
		}
		if r.cond(i.Cond) {
			if err := r.writeOp(i.Args[0], r.size, v); err != nil {
				return err
			}
		}
	case x86.SETcc:
		v := uint32(0)
		if r.cond(i.Cond) {
			v = 1
		}
		if err := r.writeOp(i.Args[0], 8, v); err != nil {
			return err
		}
	case x86.PUSH:
		if _, isSeg := i.Args[0].(x86.SegOp); isSeg {
			return ErrRefUnsupported
		}
		v, err := r.readOp(i.Args[0], r.size)
		if err != nil {
			return err
		}
		if err := r.push(r.size, v); err != nil {
			return err
		}
	case x86.POP:
		if _, isSeg := i.Args[0].(x86.SegOp); isSeg {
			return ErrRefUnsupported
		}
		v, err := r.pop(r.size)
		if err != nil {
			return err
		}
		if err := r.writeOp(i.Args[0], r.size, v); err != nil {
			return err
		}
	case x86.LEAVE:
		r.st.Regs[x86.ESP] = r.st.Regs[x86.EBP]
		v, err := r.pop(r.size)
		if err != nil {
			return err
		}
		r.writeReg(x86.EBP, r.size, v)
	case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
		return r.shift()
	case x86.MUL, x86.IMUL:
		return r.mul()
	case x86.DIV, x86.IDIV:
		return r.div()
	case x86.CWDE:
		if r.size == 16 {
			r.writeReg(x86.EAX, 16, uint32(int8(r.readReg(x86.EAX, 8)))&0xffff)
		} else {
			r.st.Regs[x86.EAX] = uint32(int16(r.readReg(x86.EAX, 16)))
		}
	case x86.CDQ:
		if r.size == 16 {
			if r.readReg(x86.EAX, 16)&0x8000 != 0 {
				r.writeReg(x86.EDX, 16, 0xffff)
			} else {
				r.writeReg(x86.EDX, 16, 0)
			}
		} else {
			if r.st.Regs[x86.EAX]&0x80000000 != 0 {
				r.st.Regs[x86.EDX] = 0xffffffff
			} else {
				r.st.Regs[x86.EDX] = 0
			}
		}
	case x86.CLC:
		r.setFlag(x86.CF, false)
	case x86.STC:
		r.setFlag(x86.CF, true)
	case x86.CMC:
		r.setFlag(x86.CF, !r.flag(x86.CF))
	case x86.CLD:
		r.setFlag(x86.DF, false)
	case x86.STD:
		r.setFlag(x86.DF, true)
	case x86.LAHF:
		var v uint32 = 1 << 1
		for _, fb := range []struct {
			f   x86.Flag
			bit uint
		}{{x86.CF, 0}, {x86.PF, 2}, {x86.AF, 4}, {x86.ZF, 6}, {x86.SF, 7}} {
			if r.flag(fb.f) {
				v |= 1 << fb.bit
			}
		}
		r.writeReg(x86.Reg(4), 8, v)
	case x86.SAHF:
		ah := r.readReg(x86.Reg(4), 8)
		r.setFlag(x86.CF, ah&1 != 0)
		r.setFlag(x86.PF, ah&4 != 0)
		r.setFlag(x86.AF, ah&16 != 0)
		r.setFlag(x86.ZF, ah&64 != 0)
		r.setFlag(x86.SF, ah&128 != 0)
	case x86.BSWAP:
		reg := i.Args[0].(x86.RegOp).Reg
		v := r.st.Regs[reg]
		r.st.Regs[reg] = v<<24 | v>>24 | v<<8&0xff0000 | v>>8&0xff00
	case x86.BT, x86.BTS, x86.BTR, x86.BTC:
		a, err := r.readOp(i.Args[0], r.size)
		if err != nil {
			return err
		}
		off, err := r.readOp(i.Args[1], r.size)
		if err != nil {
			return err
		}
		off &= uint32(r.size - 1)
		r.setFlag(x86.CF, a>>off&1 != 0)
		switch i.Op {
		case x86.BTS:
			a |= 1 << off
		case x86.BTR:
			a &^= 1 << off
		case x86.BTC:
			a ^= 1 << off
		}
		if i.Op != x86.BT {
			if err := r.writeOp(i.Args[0], r.size, a); err != nil {
				return err
			}
		}
		r.setFlag(x86.OF, false)
		r.setFlag(x86.SF, false)
		r.setFlag(x86.AF, false)
		r.setFlag(x86.PF, false)
	case x86.BSF, x86.BSR:
		v, err := r.readOp(i.Args[1], r.size)
		if err != nil {
			return err
		}
		v &= m
		r.setFlag(x86.ZF, v == 0)
		var idx uint32
		if v != 0 {
			if i.Op == x86.BSF {
				idx = uint32(mathbits.TrailingZeros32(v))
			} else {
				idx = uint32(31 - mathbits.LeadingZeros32(v))
			}
		}
		if err := r.writeOp(i.Args[0], r.size, idx); err != nil {
			return err
		}
		r.setFlag(x86.CF, false)
		r.setFlag(x86.OF, false)
		r.setFlag(x86.SF, false)
		r.setFlag(x86.AF, false)
		r.setFlag(x86.PF, false)
	case x86.JMP:
		if i.Far {
			return ErrRefUnsupported
		}
		t, err := r.target()
		if err != nil {
			return err
		}
		r.st.PC = t
		return nil
	case x86.Jcc:
		t, err := r.target()
		if err != nil {
			return err
		}
		if r.cond(i.Cond) {
			r.st.PC = t
		} else {
			r.st.PC = r.next
		}
		return nil
	case x86.JCXZ:
		t, err := r.target()
		if err != nil {
			return err
		}
		if r.st.Regs[x86.ECX] == 0 {
			r.st.PC = t
		} else {
			r.st.PC = r.next
		}
		return nil
	case x86.LOOP, x86.LOOPZ, x86.LOOPNZ:
		t, err := r.target()
		if err != nil {
			return err
		}
		r.st.Regs[x86.ECX]--
		take := r.st.Regs[x86.ECX] != 0
		if i.Op == x86.LOOPZ {
			take = take && r.flag(x86.ZF)
		}
		if i.Op == x86.LOOPNZ {
			take = take && !r.flag(x86.ZF)
		}
		if take {
			r.st.PC = t
		} else {
			r.st.PC = r.next
		}
		return nil
	case x86.CALL:
		if i.Far {
			return ErrRefUnsupported
		}
		t, err := r.target()
		if err != nil {
			return err
		}
		if err := r.push(32, r.next); err != nil {
			return err
		}
		r.st.PC = t
		return nil
	case x86.RET:
		if i.Far {
			return ErrRefUnsupported
		}
		t, err := r.pop(32)
		if err != nil {
			return err
		}
		if len(i.Args) == 1 {
			r.st.Regs[x86.ESP] += i.Args[0].(x86.Imm).Val
		}
		r.st.PC = t
		return nil
	case x86.STOS, x86.LODS, x86.MOVS, x86.SCAS, x86.CMPS:
		return r.strOp()
	default:
		return ErrRefUnsupported
	}
	r.st.PC = r.next
	return nil
}

func (r *refCtx) target() (uint32, error) {
	i := r.inst
	if i.Rel {
		return r.next + i.Args[0].(x86.Imm).Val, nil
	}
	switch i.Args[0].(type) {
	case x86.RegOp, x86.MemOp:
		return r.readOp(i.Args[0], 32)
	}
	return 0, ErrRefUnsupported
}

func (r *refCtx) shift() error {
	i := r.inst
	m := r.mask()
	a, err := r.readOp(i.Args[0], r.size)
	if err != nil {
		return err
	}
	cntRaw, err := r.readOp(i.Args[1], 8)
	if err != nil {
		return err
	}
	cnt := cntRaw & 0x1f
	if cnt == 0 {
		// Flags and destination untouched.
		if err := r.writeOp(i.Args[0], r.size, a); err != nil {
			return err
		}
		r.st.PC = r.next
		return nil
	}
	var res uint32
	var cf bool
	switch i.Op {
	case x86.SHL:
		switch {
		case cnt > uint32(r.size):
			res, cf = 0, false
		case cnt == uint32(r.size):
			res, cf = 0, a&1 != 0
		default:
			res = a << cnt & m
			cf = a>>(uint32(r.size)-cnt)&1 != 0
		}
	case x86.SHR:
		res = (a & m) >> cnt
		cf = a>>(cnt-1)&1 != 0
	case x86.SAR:
		sa := sext(a, r.size)
		res = uint32(sa>>cnt) & m
		cf = sa>>(cnt-1)&1 != 0
	case x86.ROL:
		c := cnt % uint32(r.size)
		if c == 0 {
			res = a & m
		} else {
			res = (a<<c | (a&m)>>(uint32(r.size)-c)) & m
		}
		cf = res&1 != 0
	case x86.ROR:
		c := cnt % uint32(r.size)
		if c == 0 {
			res = a & m
		} else {
			res = ((a&m)>>c | a<<(uint32(r.size)-c)) & m
		}
		cf = res&r.signBit() != 0
	}
	if err := r.writeOp(i.Args[0], r.size, res); err != nil {
		return err
	}
	r.setFlag(x86.CF, cf)
	var of bool
	if cnt == 1 {
		switch i.Op {
		case x86.SHL:
			of = (res&r.signBit() != 0) != cf
		case x86.SHR:
			of = a&r.signBit() != 0
		case x86.SAR:
			of = false
		case x86.ROL:
			of = (res&r.signBit() != 0) != cf
		case x86.ROR:
			of = (res&r.signBit() != 0) != (res&(r.signBit()>>1) != 0)
		}
	}
	r.setFlag(x86.OF, of)
	if i.Op == x86.SHL || i.Op == x86.SHR || i.Op == x86.SAR {
		r.setSZP(res)
		r.setFlag(x86.AF, false)
	}
	r.st.PC = r.next
	return nil
}

func (r *refCtx) mul() error {
	i := r.inst
	m := r.mask()
	signed := i.Op == x86.IMUL
	clearSZAP := func() {
		r.setFlag(x86.SF, false)
		r.setFlag(x86.ZF, false)
		r.setFlag(x86.AF, false)
		r.setFlag(x86.PF, false)
	}
	switch len(i.Args) {
	case 1:
		src, err := r.readOp(i.Args[0], r.size)
		if err != nil {
			return err
		}
		acc := r.readReg(x86.EAX, r.size)
		var lo, hi uint32
		if signed {
			p := sext(acc, r.size) * sext(src, r.size)
			lo = uint32(p) & m
			hi = uint32(p>>uint(r.size)) & m
		} else {
			p := uint64(acc) * uint64(src)
			lo = uint32(p) & m
			hi = uint32(p>>uint(r.size)) & m
		}
		if r.size == 8 {
			r.writeReg(x86.EAX, 8, lo)
			r.writeReg(x86.Reg(4), 8, hi)
		} else {
			r.writeReg(x86.EAX, r.size, lo)
			r.writeReg(x86.EDX, r.size, hi)
		}
		var ov bool
		if signed {
			fill := uint32(sext(lo, r.size)>>uint(r.size-1)) & m
			ov = hi != fill&m
		} else {
			ov = hi != 0
		}
		r.setFlag(x86.CF, ov)
		r.setFlag(x86.OF, ov)
		clearSZAP()
	case 2, 3:
		a, err := r.readOp(i.Args[1], r.size)
		if err != nil {
			return err
		}
		var b uint32
		if len(i.Args) == 3 {
			b, err = r.readOp(i.Args[2], r.size)
		} else {
			b, err = r.readOp(i.Args[0], r.size)
		}
		if err != nil {
			return err
		}
		p := sext(a, r.size) * sext(b, r.size)
		lo := uint32(p) & m
		hi := uint32(p>>uint(r.size)) & m
		if err := r.writeOp(i.Args[0], r.size, lo); err != nil {
			return err
		}
		fill := uint32(sext(lo, r.size)>>uint(r.size-1)) & m
		ov := hi != fill
		r.setFlag(x86.CF, ov)
		r.setFlag(x86.OF, ov)
		clearSZAP()
	}
	r.st.PC = r.next
	return nil
}

func (r *refCtx) div() error {
	i := r.inst
	src, err := r.readOp(i.Args[0], r.size)
	if err != nil {
		return err
	}
	if src&r.mask() == 0 {
		return fmt.Errorf("%w: #DE", ErrHalt)
	}
	var dividend uint64
	if r.size == 8 {
		dividend = uint64(r.readReg(x86.EAX, 16))
	} else {
		dividend = uint64(r.readReg(x86.EDX, r.size))<<uint(r.size) | uint64(r.readReg(x86.EAX, r.size))
	}
	var q, rem uint64
	if i.Op == x86.IDIV {
		var sd int64
		switch r.size {
		case 8:
			sd = int64(int16(dividend))
		case 16:
			sd = int64(int32(dividend))
		default:
			sd = int64(dividend)
		}
		ss := sext(src, r.size)
		sq := sd / ss
		sr := sd % ss
		lim := int64(1) << uint(r.size-1)
		if sq >= lim || sq < -lim {
			return fmt.Errorf("%w: #DE overflow", ErrHalt)
		}
		q, rem = uint64(sq), uint64(sr)
	} else {
		d := uint64(src & r.mask())
		q = dividend / d
		rem = dividend % d
		if q>>uint(r.size) != 0 {
			return fmt.Errorf("%w: #DE overflow", ErrHalt)
		}
	}
	if r.size == 8 {
		r.writeReg(x86.EAX, 8, uint32(q))
		r.writeReg(x86.Reg(4), 8, uint32(rem))
	} else {
		r.writeReg(x86.EAX, r.size, uint32(q))
		r.writeReg(x86.EDX, r.size, uint32(rem))
	}
	for _, f := range []x86.Flag{x86.CF, x86.OF, x86.SF, x86.ZF, x86.AF, x86.PF} {
		r.setFlag(f, false)
	}
	r.st.PC = r.next
	return nil
}

func (r *refCtx) strOp() error {
	i := r.inst
	rep := i.Prefix.Rep || i.Prefix.RepN
	n := uint32(r.size / 8)
	delta := n
	if r.flag(x86.DF) {
		delta = -n
	}
	srcSeg := x86.DS
	if i.Prefix.Seg != nil {
		srcSeg = *i.Prefix.Seg
	}
	if rep && r.st.Regs[x86.ECX] == 0 {
		r.st.PC = r.next
		return nil
	}
	esi, edi := r.st.Regs[x86.ESI], r.st.Regs[x86.EDI]
	switch i.Op {
	case x86.MOVS:
		v, err := r.loadMem(srcSeg, esi, r.size)
		if err != nil {
			return err
		}
		if err := r.storeMem(x86.ES, edi, r.size, v); err != nil {
			return err
		}
		r.st.Regs[x86.ESI] += delta
		r.st.Regs[x86.EDI] += delta
	case x86.STOS:
		if err := r.storeMem(x86.ES, edi, r.size, r.readReg(x86.EAX, r.size)); err != nil {
			return err
		}
		r.st.Regs[x86.EDI] += delta
	case x86.LODS:
		v, err := r.loadMem(srcSeg, esi, r.size)
		if err != nil {
			return err
		}
		r.writeReg(x86.EAX, r.size, v)
		r.st.Regs[x86.ESI] += delta
	case x86.SCAS:
		v, err := r.loadMem(x86.ES, edi, r.size)
		if err != nil {
			return err
		}
		acc := r.readReg(x86.EAX, r.size)
		res := (acc - v) & r.mask()
		r.setSubFlags(acc, v, 0, res)
		r.setSZP(res)
		r.st.Regs[x86.EDI] += delta
	case x86.CMPS:
		vs, err := r.loadMem(srcSeg, esi, r.size)
		if err != nil {
			return err
		}
		vd, err := r.loadMem(x86.ES, edi, r.size)
		if err != nil {
			return err
		}
		res := (vs - vd) & r.mask()
		r.setSubFlags(vs, vd, 0, res)
		r.setSZP(res)
		r.st.Regs[x86.ESI] += delta
		r.st.Regs[x86.EDI] += delta
	}
	if !rep {
		r.st.PC = r.next
		return nil
	}
	r.st.Regs[x86.ECX]--
	done := r.st.Regs[x86.ECX] == 0
	if i.Op == x86.CMPS || i.Op == x86.SCAS {
		if i.Prefix.Rep {
			done = done || !r.flag(x86.ZF)
		} else {
			done = done || r.flag(x86.ZF)
		}
	}
	if done {
		r.st.PC = r.next
	}
	// Otherwise PC stays on this instruction (the RTL model's behavior).
	return nil
}

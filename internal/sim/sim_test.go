package sim

import (
	"errors"
	"strings"
	"testing"

	"rocksalt/internal/x86"
	"rocksalt/internal/x86/machine"
)

// loadProgram builds a machine with the code at CS base 0x10000 and data
// and stack segments at 0x100000, sized 64 KiB.
func loadProgram(code []byte) *machine.State {
	st := machine.New()
	const codeBase, dataBase = 0x10000, 0x100000
	for _, s := range []x86.SegReg{x86.ES, x86.SS, x86.DS, x86.FS, x86.GS} {
		st.SegBase[s] = dataBase
		st.SegLimit[s] = 0xffff
		st.SegSel[s] = 0x2b
	}
	st.SegBase[x86.CS] = codeBase
	st.SegLimit[x86.CS] = uint32(len(code) - 1)
	st.SegSel[x86.CS] = 0x23
	st.Mem.WriteBytes(codeBase, code)
	st.PC = 0
	st.Regs[x86.ESP] = 0x8000
	return st
}

func TestSimulatorStraightLine(t *testing.T) {
	// mov eax, 5; mov ebx, 7; add eax, ebx; hlt
	code := []byte{
		0xb8, 0x05, 0x00, 0x00, 0x00,
		0xbb, 0x07, 0x00, 0x00, 0x00,
		0x01, 0xd8,
		0xf4,
	}
	st := loadProgram(code)
	s := New(st)
	steps, err := s.Run(100)
	if !errors.Is(err, ErrHalt) {
		t.Fatalf("expected halt, got steps=%d err=%v", steps, err)
	}
	if steps != 3 {
		t.Fatalf("executed %d steps, want 3", steps)
	}
	if st.Regs[x86.EAX] != 12 {
		t.Fatalf("eax = %d, want 12", st.Regs[x86.EAX])
	}
	if st.Flags[x86.ZF] || st.Flags[x86.SF] || st.Flags[x86.CF] || st.Flags[x86.OF] {
		t.Fatal("flags wrong after 5+7")
	}
}

func TestSimulatorLoopSum(t *testing.T) {
	// Sum 1..10 with a loop:
	//   xor eax, eax; mov ecx, 10
	// L: add eax, ecx; loop L
	//   hlt
	code := []byte{
		0x31, 0xc0,
		0xb9, 0x0a, 0x00, 0x00, 0x00,
		0x01, 0xc8,
		0xe2, 0xfc,
		0xf4,
	}
	st := loadProgram(code)
	s := New(st)
	_, err := s.Run(1000)
	if !errors.Is(err, ErrHalt) {
		t.Fatalf("expected halt, got %v", err)
	}
	if st.Regs[x86.EAX] != 55 {
		t.Fatalf("eax = %d, want 55", st.Regs[x86.EAX])
	}
}

func TestSimulatorMemoryAndStack(t *testing.T) {
	// mov dword [0x100], 0xdeadbeef; push dword [0x100]; pop eax; hlt
	code := []byte{
		0xc7, 0x05, 0x00, 0x01, 0x00, 0x00, 0xef, 0xbe, 0xad, 0xde,
		0xff, 0x35, 0x00, 0x01, 0x00, 0x00,
		0x58,
		0xf4,
	}
	st := loadProgram(code)
	s := New(st)
	if _, err := s.Run(100); !errors.Is(err, ErrHalt) {
		t.Fatalf("expected halt, got %v", err)
	}
	if st.Regs[x86.EAX] != 0xdeadbeef {
		t.Fatalf("eax = %#x, want 0xdeadbeef", st.Regs[x86.EAX])
	}
	// The write went to DS base + 0x100.
	got := st.Mem.ReadBytes(0x100000+0x100, 4)
	if got[0] != 0xef || got[3] != 0xde {
		t.Fatalf("memory = % x", got)
	}
}

func TestSimulatorCallRet(t *testing.T) {
	// call f; hlt; f: mov eax, 42; ret
	code := []byte{
		0xe8, 0x01, 0x00, 0x00, 0x00, // call +1
		0xf4,                         // hlt
		0xb8, 0x2a, 0x00, 0x00, 0x00, // f: mov eax, 42
		0xc3, // ret
	}
	st := loadProgram(code)
	s := New(st)
	if _, err := s.Run(100); !errors.Is(err, ErrHalt) {
		t.Fatalf("expected halt, got %v", err)
	}
	if st.Regs[x86.EAX] != 42 {
		t.Fatalf("eax = %d, want 42", st.Regs[x86.EAX])
	}
	if st.PC != 5 {
		t.Fatalf("pc = %#x, want 5 (the hlt)", st.PC)
	}
}

func TestSimulatorConditionals(t *testing.T) {
	// mov eax, 1; cmp eax, 2; jl +5 (skip mov eax 99); mov eax, 99; hlt
	code := []byte{
		0xb8, 0x01, 0x00, 0x00, 0x00,
		0x83, 0xf8, 0x02,
		0x7c, 0x05,
		0xb8, 0x63, 0x00, 0x00, 0x00,
		0xf4,
	}
	st := loadProgram(code)
	s := New(st)
	if _, err := s.Run(100); !errors.Is(err, ErrHalt) {
		t.Fatal("expected halt")
	}
	if st.Regs[x86.EAX] != 1 {
		t.Fatalf("eax = %d, want 1 (branch taken)", st.Regs[x86.EAX])
	}
}

func TestSimulatorRepMovs(t *testing.T) {
	// Copy 8 bytes with rep movsb.
	// mov esi, 0x200; mov edi, 0x300; mov ecx, 8; cld; rep movsb; hlt
	code := []byte{
		0xbe, 0x00, 0x02, 0x00, 0x00,
		0xbf, 0x00, 0x03, 0x00, 0x00,
		0xb9, 0x08, 0x00, 0x00, 0x00,
		0xfc,
		0xf3, 0xa4,
		0xf4,
	}
	st := loadProgram(code)
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	st.Mem.WriteBytes(0x100000+0x200, src)
	s := New(st)
	if _, err := s.Run(1000); !errors.Is(err, ErrHalt) {
		t.Fatal("expected halt")
	}
	got := st.Mem.ReadBytes(0x100000+0x300, 8)
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("copy wrong at %d: % x", i, got)
		}
	}
	if st.Regs[x86.ECX] != 0 {
		t.Fatalf("ecx = %d, want 0", st.Regs[x86.ECX])
	}
	if st.Regs[x86.ESI] != 0x208 || st.Regs[x86.EDI] != 0x308 {
		t.Fatalf("esi/edi = %#x/%#x", st.Regs[x86.ESI], st.Regs[x86.EDI])
	}
}

func TestSegmentLimitTrap(t *testing.T) {
	// A store beyond the DS limit must fault.
	// mov byte [0x1ffff+1], 0  — limit is 0xffff, so [0x10000] faults.
	code := []byte{
		0xc6, 0x05, 0x00, 0x00, 0x01, 0x00, 0x00, // mov byte [0x10000], 0
		0xf4,
	}
	st := loadProgram(code)
	s := New(st)
	steps, err := s.Run(10)
	if err == nil || steps != 0 {
		t.Fatalf("expected immediate #GP, got steps=%d err=%v", steps, err)
	}
	if !strings.Contains(err.Error(), "#GP") {
		t.Fatalf("expected #GP trap, got %v", err)
	}
}

func TestSegmentedAddressing(t *testing.T) {
	// The same offset through different segment bases hits different
	// physical bytes: write via DS, read via ES with a different base.
	code := []byte{
		0xc6, 0x05, 0x10, 0x00, 0x00, 0x00, 0xaa, // mov byte ds:[0x10], 0xaa
		0x26, 0x8a, 0x0d, 0x10, 0x00, 0x00, 0x00, // mov cl, es:[0x10]
		0xf4,
	}
	st := loadProgram(code)
	st.SegBase[x86.ES] = 0x200000
	st.Mem.Store(0x200000+0x10, 0xbb)
	s := New(st)
	if _, err := s.Run(10); !errors.Is(err, ErrHalt) {
		t.Fatal("expected halt")
	}
	if st.Mem.Load(0x100000+0x10) != 0xaa {
		t.Fatal("DS store went to the wrong place")
	}
	if got := st.Regs[x86.ECX] & 0xff; got != 0xbb {
		t.Fatalf("cl = %#x, want 0xbb (read through ES)", got)
	}
}

func TestIndirectJump(t *testing.T) {
	// mov eax, 8; jmp eax; (pad) target: mov ebx, 1; hlt
	code := []byte{
		0xb8, 0x08, 0x00, 0x00, 0x00, // 0: mov eax, 8
		0xff, 0xe0, // 5: jmp eax
		0x90,                         // 7: nop (skipped)
		0xbb, 0x01, 0x00, 0x00, 0x00, // 8: mov ebx, 1
		0xf4, // 13: hlt
	}
	st := loadProgram(code)
	s := New(st)
	if _, err := s.Run(10); !errors.Is(err, ErrHalt) {
		t.Fatal("expected halt")
	}
	if st.Regs[x86.EBX] != 1 {
		t.Fatal("indirect jump missed its target")
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	code := []byte{
		0x31, 0xd2, // xor edx, edx
		0xb8, 0x0a, 0x00, 0x00, 0x00, // mov eax, 10
		0x31, 0xc9, // xor ecx, ecx
		0xf7, 0xf1, // div ecx
		0xf4,
	}
	st := loadProgram(code)
	s := New(st)
	_, err := s.Run(10)
	if err == nil || !strings.Contains(err.Error(), "#DE") {
		t.Fatalf("expected #DE, got %v", err)
	}
}

func TestSelfModifyingCodeDefeatsNoCache(t *testing.T) {
	// The program overwrites its own next instruction; the translation
	// cache is keyed on (pc, bytes) so it must pick up the new bytes.
	//   mov byte [esp], 0x43      ; patch: we will write into code below
	// Instead, simpler: write into the code segment through DS mapped to
	// the same linear region.
	code := []byte{
		// mov byte [0x05], 0x43   (DS base == CS base here; patches the
		// `inc ebx` below into `inc ebx` -> 0x43 = inc ebx, start 0x40)
		0xc6, 0x05, 0x0a, 0x00, 0x00, 0x00, 0x40, // mov byte [0x0a], 0x40 (inc eax)
		0x90, 0x90, 0x90, // nops
		0x43, // inc ebx  <- patched to inc eax (0x40)
		0xf4, // hlt
	}
	st := machine.New()
	const base = 0x30000
	for _, s := range []x86.SegReg{x86.CS, x86.DS, x86.SS, x86.ES} {
		st.SegBase[s] = base
		st.SegLimit[s] = uint32(len(code) - 1)
	}
	st.Mem.WriteBytes(base, code)
	s := New(st)
	// Execute twice: once with the original bytes cached, once patched.
	if _, err := s.Run(100); !errors.Is(err, ErrHalt) {
		t.Fatal("expected halt")
	}
	if st.Regs[x86.EAX] != 1 || st.Regs[x86.EBX] != 0 {
		t.Fatalf("self-modified instruction not honored: eax=%d ebx=%d",
			st.Regs[x86.EAX], st.Regs[x86.EBX])
	}
}

func TestRunWithAndWithoutTranslationCacheAgree(t *testing.T) {
	code := []byte{
		0x31, 0xc0, // xor eax, eax
		0xb9, 0x20, 0x00, 0x00, 0x00, // mov ecx, 32
		0x01, 0xc8, // L: add eax, ecx
		0xe2, 0xfc, // loop L
		0xf4,
	}
	run := func(cache bool) uint32 {
		st := loadProgram(code)
		s := New(st)
		s.CacheTranslations = cache
		if _, err := s.Run(1000); !errors.Is(err, ErrHalt) {
			t.Fatal("expected halt")
		}
		return st.Regs[x86.EAX]
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("cache changes semantics: %d vs %d", a, b)
	}
}

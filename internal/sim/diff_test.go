package sim

import (
	"errors"
	"math/rand"
	"testing"

	"rocksalt/internal/grammar"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
	"rocksalt/internal/x86/machine"
)

// TestDifferentialValidation is the executable analogue of the paper's
// Pin-based model validation (§2.5): single instruction instances, drawn
// from the generative grammar, are executed both by the RTL model and by
// the independent reference interpreter, and the full machine states are
// compared. The paper validated >10M instances over 60 hours; we default
// to a seed-stable sample sized for CI and scale up via -count or the
// experiments harness.
func TestDifferentialValidation(t *testing.T) {
	trials := 6000
	if testing.Short() {
		trials = 600
	}
	mismatches := runDifferential(t, 99, trials)
	if mismatches > 0 {
		t.Fatalf("%d mismatches between RTL model and reference interpreter", mismatches)
	}
}

// runDifferential executes `trials` random instruction instances and
// returns the number of disagreements (reporting each via t.Errorf).
func runDifferential(t *testing.T, seed int64, trials int) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sampler := grammar.NewSampler(rng)
	top := decode.TopGrammar()
	dec := decode.NewDecoder()

	executed, skipped, mismatches := 0, 0, 0
	for i := 0; i < trials; i++ {
		code, v, ok := sampler.SampleBytes(top, 4)
		if !ok {
			t.Fatal("sampler failure")
		}
		inst := v.(x86.Inst)
		_ = inst

		st := randomState(rng, code)
		stRef := st.Clone()

		s1 := &Simulator{St: st, Dec: dec}
		s1.Oracle = nil
		simErr := func() error {
			s := New(st)
			s.Dec = dec
			return s.Step()
		}()
		refErr := RefStep(&Simulator{St: stRef, Dec: dec})

		if errors.Is(refErr, ErrRefUnsupported) ||
			(refErr != nil && errors.Is(refErr, ErrHalt) && errorsContains(refErr, "reference interpreter")) {
			skipped++
			continue
		}
		executed++
		if (simErr != nil) != (refErr != nil) {
			mismatches++
			t.Errorf("trap disagreement on % x (%v): model=%v ref=%v", code, inst, simErr, refErr)
			if mismatches > 10 {
				t.Fatal("too many mismatches")
			}
			continue
		}
		if simErr != nil {
			continue // both trapped; partial states are not compared
		}
		if !st.EqualRegs(stRef) || !st.Mem.Equal(stRef.Mem) {
			mismatches++
			t.Errorf("state disagreement on % x (%v): %s", code, inst, st.Diff(stRef))
			if mismatches > 10 {
				t.Fatal("too many mismatches")
			}
		}
	}
	t.Logf("differential validation: %d executed, %d skipped (outside reference subset), %d mismatches",
		executed, skipped, mismatches)
	if executed < trials/4 {
		t.Errorf("reference coverage too low: only %d/%d instances executed", executed, trials)
	}
	return mismatches
}

func errorsContains(err error, sub string) bool {
	return err != nil && len(err.Error()) >= len(sub) &&
		(func() bool {
			s := err.Error()
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		})()
}

// randomState builds a machine state with the sampled instruction at the
// code segment and randomized registers/flags. Registers are kept small
// so that most memory operands fall inside the 64 KiB data segment; the
// cases that do not must trap identically in both interpreters.
func randomState(rng *rand.Rand, code []byte) *machine.State {
	st := machine.New()
	const codeBase, dataBase = 0x10000, 0x100000
	for _, s := range []x86.SegReg{x86.ES, x86.SS, x86.DS, x86.FS, x86.GS} {
		st.SegBase[s] = dataBase
		st.SegLimit[s] = 0xffff
		st.SegSel[s] = 0x2b
	}
	st.SegBase[x86.CS] = codeBase
	st.SegLimit[x86.CS] = uint32(len(code) - 1)
	st.SegSel[x86.CS] = 0x23
	st.Mem.WriteBytes(codeBase, code)
	for r := range st.Regs {
		st.Regs[r] = uint32(rng.Intn(0x7000))
	}
	st.Regs[x86.ESP] = 0x4000 + uint32(rng.Intn(0x1000))&^3
	for f := range st.Flags {
		st.Flags[f] = rng.Intn(2) == 1
	}
	// Scatter some data into the data segment so loads see varied bytes.
	var buf [256]byte
	rng.Read(buf[:])
	st.Mem.WriteBytes(dataBase+uint32(rng.Intn(0xff00)), buf[:])
	st.PC = 0
	return st
}

package sim

import (
	"errors"
	"strings"
	"testing"

	"rocksalt/internal/x86"
	"rocksalt/internal/x86/machine"
)

// TestStepContainsPanics: a panic anywhere in the decode → RTL →
// interpret pipeline is converted to an ErrHalt+ErrInternalFault error
// instead of unwinding into the caller. A nil decoder is the simplest
// genuine panic source (nil-map/nil-pointer class), the same class a
// latent bug in the pipeline would produce on hostile input.
func TestStepContainsPanics(t *testing.T) {
	st := machine.New()
	st.SegLimit[x86.CS] = 0xff
	st.Mem.WriteBytes(0, []byte{0x90})
	s := New(st)
	s.Dec = nil
	s.CacheTranslations = false // force the FetchDecode path
	err := s.Step()
	if err == nil {
		t.Fatal("Step with a broken pipeline returned nil")
	}
	if !errors.Is(err, ErrHalt) || !errors.Is(err, ErrInternalFault) {
		t.Fatalf("err = %v, want ErrHalt and ErrInternalFault", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Errorf("recovered stack missing from error: %v", err)
	}
}

// TestFetchDecodeContainsPanics: the exported decode-only entry fails
// closed the same way.
func TestFetchDecodeContainsPanics(t *testing.T) {
	st := machine.New()
	st.SegLimit[x86.CS] = 0xff
	s := New(st)
	s.Dec = nil
	_, _, err := s.FetchDecode()
	if !errors.Is(err, ErrInternalFault) {
		t.Fatalf("err = %v, want ErrInternalFault", err)
	}
}

// TestRunSurvivesInternalFault: Run treats a contained fault as a halt
// (counted steps, non-nil error), not a crash.
func TestRunSurvivesInternalFault(t *testing.T) {
	st := machine.New()
	st.SegLimit[x86.CS] = 0xff
	st.Mem.WriteBytes(0, []byte{0x90, 0x90})
	s := New(st)
	n, err := s.Run(2) // two nops execute fine
	if n != 2 || err != nil {
		t.Fatalf("warmup run: n=%d err=%v", n, err)
	}
	s.Dec = nil
	s.CacheTranslations = false
	st.PC = 0
	n, err = s.Run(5)
	if n != 0 || !errors.Is(err, ErrInternalFault) {
		t.Fatalf("faulting run: n=%d err=%v", n, err)
	}
}

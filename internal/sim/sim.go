// Package sim is the executable x86 model: the decode → translate →
// interpret loop that the paper extracts to OCaml, plus an independent
// reference interpreter used for differential validation (the substitute
// for tracing a real CPU with Pin, §2.5).
package sim

import (
	"errors"
	"fmt"
	"runtime/debug"

	"rocksalt/internal/rtl"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
	"rocksalt/internal/x86/machine"
	"rocksalt/internal/x86/semantics"
)

// Simulator executes machine code against a machine state through the
// three-stage model.
type Simulator struct {
	St     *machine.State
	Dec    *decode.Decoder
	Oracle rtl.Oracle
	// Trace, when non-nil, receives one line per executed instruction.
	Trace func(pc uint32, inst x86.Inst)
	// CacheTranslations memoizes (instruction bytes, pc) → RTL term, a
	// large win for loops (translation embeds the pc as a literal, so the
	// pc is part of the key). Enabled by New.
	CacheTranslations bool

	xlat map[xlatKey]xlatEntry
	rst  *rtl.State
}

type xlatKey struct {
	pc    uint32
	bytes string
}

type xlatEntry struct {
	inst x86.Inst
	n    int
	prog []rtl.Instr
}

const xlatCacheMax = 1 << 16

// New creates a simulator over a machine state with a deterministic
// (all-zeros) oracle and translation caching enabled.
func New(st *machine.State) *Simulator {
	return &Simulator{
		St: st, Dec: decode.NewDecoder(), Oracle: rtl.ZeroOracle{},
		CacheTranslations: true,
	}
}

// ErrHalt is returned (wrapped) when the program executes a faulting or
// unsupported instruction; inspect the message for the trap reason.
var ErrHalt = errors.New("sim: halted")

// ErrInternalFault is returned (wrapped, alongside ErrHalt) when the
// decode → RTL → interpret pipeline panics. The simulator fails closed:
// the panic is contained, the instruction is treated as a fault, and the
// recovered value plus goroutine stack ride along in the error message.
// Containment matters because the simulator's inputs are adversarial —
// fault-injection mutants and fuzzer corpora must not be able to crash
// the process that is judging them.
var ErrInternalFault = errors.New("sim: internal fault")

// FetchDecode decodes the instruction at CS:PC without executing it.
// Like Step, it contains decoder panics and reports them as an
// ErrHalt/ErrInternalFault error.
func (s *Simulator) FetchDecode() (inst x86.Inst, n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			inst, n = x86.Inst{}, 0
			err = fmt.Errorf("%w: %w at pc %#x: %v\n%s",
				ErrHalt, ErrInternalFault, s.St.PC, r, debug.Stack())
		}
	}()
	return s.fetchDecode()
}

func (s *Simulator) fetchDecode() (x86.Inst, int, error) {
	lin := s.St.SegBase[x86.CS] + s.St.PC
	window := s.St.Mem.ReadBytes(lin, decode.MaxInstLen)
	// The code fetch itself is bounded by the CS limit.
	if s.St.PC > s.St.SegLimit[x86.CS] {
		return x86.Inst{}, 0, fmt.Errorf("%w: pc %#x beyond CS limit", ErrHalt, s.St.PC)
	}
	return s.Dec.Decode(window)
}

// Step fetches, decodes, translates and executes one instruction. A
// panic anywhere in the pipeline is contained and converted to an error
// wrapping both ErrHalt and ErrInternalFault (fail-closed) rather than
// unwinding into the caller.
func (s *Simulator) Step() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %w at pc %#x: %v\n%s",
				ErrHalt, ErrInternalFault, s.St.PC, r, debug.Stack())
		}
	}()
	return s.step()
}

func (s *Simulator) step() error {
	var inst x86.Inst
	var n int
	var prog []rtl.Instr

	hit := false
	var key xlatKey
	if s.CacheTranslations {
		lin := s.St.SegBase[x86.CS] + s.St.PC
		if s.St.PC > s.St.SegLimit[x86.CS] {
			return fmt.Errorf("%w: pc %#x beyond CS limit", ErrHalt, s.St.PC)
		}
		window := s.St.Mem.ReadBytes(lin, decode.MaxInstLen)
		key = xlatKey{pc: s.St.PC, bytes: string(window)}
		if e, ok := s.xlat[key]; ok {
			inst, n, prog = e.inst, e.n, e.prog
			hit = true
		}
	}
	if !hit {
		var err error
		inst, n, err = s.FetchDecode()
		if err != nil {
			// %w keeps sentinel chains (ErrHalt, ErrInternalFault) from
			// FetchDecode intact.
			return fmt.Errorf("%w: %w at pc %#x", ErrHalt, err, s.St.PC)
		}
		prog, err = semantics.Translate(inst, s.St.PC, n)
		if err != nil {
			return fmt.Errorf("%w: %v at pc %#x", ErrHalt, err, s.St.PC)
		}
		if s.CacheTranslations {
			if s.xlat == nil {
				s.xlat = make(map[xlatKey]xlatEntry)
			}
			if len(s.xlat) < xlatCacheMax {
				s.xlat[key] = xlatEntry{inst: inst, n: n, prog: prog}
			}
		}
	}
	if s.Trace != nil {
		s.Trace(s.St.PC, inst)
	}
	if s.rst == nil {
		s.rst = rtl.NewState(s.St, s.Oracle)
	} else {
		s.rst.M, s.rst.Oracle = s.St, s.Oracle
		s.rst.Reset()
	}
	if s.Oracle == nil {
		s.rst.Oracle = rtl.ZeroOracle{}
	}
	if err := rtl.Exec(prog, s.rst); err != nil {
		return fmt.Errorf("%w: %v at pc %#x (%v)", ErrHalt, err, s.St.PC, inst)
	}
	return nil
}

// Run executes up to maxSteps instructions, returning the count executed
// and the reason execution stopped (nil when the step budget ran out).
func (s *Simulator) Run(maxSteps int) (int, error) {
	for i := 0; i < maxSteps; i++ {
		if err := s.Step(); err != nil {
			return i, err
		}
	}
	return maxSteps, nil
}

package vcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutLRU(t *testing.T) {
	c := New(1 << 20)
	k1 := Sum("t", []byte("one"))
	k2 := Sum("t", []byte("two"))
	if _, ok := c.Get(k1); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put(k1, "v1", 10)
	c.Put(k2, "v2", 20)
	if v, ok := c.Get(k1); !ok || v.(string) != "v1" {
		t.Fatalf("got %v %v", v, ok)
	}
	// Replacement updates value and accounting.
	c.Put(k1, "v1b", 15)
	if v, _ := c.Get(k1); v.(string) != "v1b" {
		t.Fatal("replacement not visible")
	}
	ct := c.Counters()
	if ct.Entries != 2 || ct.Bytes != 35 {
		t.Fatalf("counters %+v", ct)
	}
	if ct.Hits != 2 || ct.Misses != 1 {
		t.Fatalf("hit/miss accounting %+v", ct)
	}
}

func TestEvictionByCapacity(t *testing.T) {
	// One shard gets capBytes/numShards; craft keys landing in shard 0.
	c := New(numShards * 100)
	keyIn := func(i int) Key {
		for n := 0; ; n++ {
			k := Sum("ev", []byte(fmt.Sprint(i, n)))
			if k[0]&(numShards-1) == 0 {
				return k
			}
		}
	}
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = keyIn(i)
		c.Put(keys[i], i, 40) // 5*40 = 200 > 100 shard cap
	}
	ct := c.Counters()
	if ct.Evictions == 0 || ct.Bytes > 100 {
		t.Fatalf("expected evictions to bound shard bytes, got %+v", ct)
	}
	// The most recently inserted survives; the oldest is gone.
	if _, ok := c.Get(keys[len(keys)-1]); !ok {
		t.Fatal("most recent entry was evicted")
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	// Oversized values are refused outright.
	big := keyIn(99)
	c.Put(big, "big", 101)
	if _, ok := c.Get(big); ok {
		t.Fatal("oversized value was stored")
	}
}

func TestLRUTouchOrder(t *testing.T) {
	c := New(numShards * 100)
	keyIn := func(s string) Key {
		for n := 0; ; n++ {
			k := Sum("lru", []byte(fmt.Sprint(s, n)))
			if k[0]&(numShards-1) == 0 {
				return k
			}
		}
	}
	a, b, d := keyIn("a"), keyIn("b"), keyIn("d")
	c.Put(a, "a", 40)
	c.Put(b, "b", 40)
	c.Get(a) // touch a so b becomes the eviction victim
	c.Put(d, "d", 40)
	if _, ok := c.Get(a); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if _, ok := c.Get(b); ok {
		t.Fatal("least-recently-used entry survived")
	}
}

func TestKeyDomainsAndParts(t *testing.T) {
	if Sum("a", []byte("xy")) == Sum("b", []byte("xy")) {
		t.Fatal("domains do not separate")
	}
	// Partition into parts is part of the identity.
	if Sum("a", []byte("xy"), []byte("z")) == Sum("a", []byte("x"), []byte("yz")) {
		t.Fatal("part boundaries do not separate")
	}
	if Sum("a", []byte("xy")) != Sum("a", []byte("xy")) {
		t.Fatal("hashing is not deterministic")
	}
	k := Sum("a")
	if len(k.String()) != 32 {
		t.Fatalf("hex key length %d", len(k.String()))
	}
	back, err := ParseKey(k.String())
	if err != nil || back != k {
		t.Fatalf("ParseKey(%q) = %v, %v", k.String(), back, err)
	}
	for _, bad := range []string{"", "xyz", k.String()[:31], k.String() + "0", "g" + k.String()[1:]} {
		if _, err := ParseKey(bad); err == nil {
			t.Fatalf("ParseKey accepted %q", bad)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Sum("cc", []byte{byte(g), byte(i)})
				c.Put(k, i, 16)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if ct := c.Counters(); ct.Entries == 0 {
		t.Fatalf("nothing stored: %+v", ct)
	}
}

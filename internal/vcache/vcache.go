// Package vcache is a content-addressed verdict cache: a sharded,
// byte-capacity LRU keyed by strong hashes of verified content. The
// verification engine uses it at two granularities — whole-image
// verdicts (a Report keyed by the image's content hash) and per-64KiB
// chunk parse artifacts (boundary bitmap words and jump targets keyed
// by the chunk's content and position) — so re-verifying an unchanged
// image is a lookup, and re-verifying a locally-edited image re-parses
// only the chunks that changed.
//
// The cache stores opaque values (`any`) so it has no dependency on the
// engine's types; the engine decides what a hit means. Keys are 128-bit
// truncations of SHA-256 over domain-separated input (hash.go), so a
// collision — the only way the cache could change a verdict — requires
// breaking the hash. Everything else here can only cost or save time.
package vcache

import (
	"fmt"
	"sync"
)

// Key addresses one cache entry: 128 bits of a domain-separated
// SHA-256 (see Sum). The zero Key is valid but, being as hard to find a
// preimage for as any other, never collides with real content in
// practice.
type Key [16]byte

// String renders the key as lowercase hex (for reports and logs).
func (k Key) String() string {
	const hexdigits = "0123456789abcdef"
	var b [32]byte
	for i, v := range k {
		b[2*i] = hexdigits[v>>4]
		b[2*i+1] = hexdigits[v&0xF]
	}
	return string(b[:])
}

// ParseKey inverts Key.String: 32 hex digits back into a Key. It exists
// so a key reported by one run (Report.CacheKey) can be handed to a
// later one without rehashing the content.
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != 2*len(k) {
		return k, fmt.Errorf("vcache: key %q: want %d hex digits, have %d", s, 2*len(k), len(s))
	}
	for i := 0; i < len(k); i++ {
		hi, ok1 := unhex(s[2*i])
		lo, ok2 := unhex(s[2*i+1])
		if !ok1 || !ok2 {
			return Key{}, fmt.Errorf("vcache: key %q: not hex", s)
		}
		k[i] = hi<<4 | lo
	}
	return k, nil
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Counters is a point-in-time snapshot of cache effectiveness,
// aggregated across shards.
type Counters struct {
	Hits      int64 // Get calls that found an entry
	Misses    int64 // Get calls that did not
	Evictions int64 // entries evicted to make room
	Entries   int64 // entries currently resident
	Bytes     int64 // payload bytes currently resident
}

// numShards spreads the lock; a power of two so the shard pick is a
// mask of the key's first byte.
const numShards = 16

// entry is one resident value on its shard's LRU list.
type entry struct {
	key        Key
	value      any
	size       int64
	prev, next *entry // LRU list: head = most recent
}

type shard struct {
	mu         sync.Mutex
	entries    map[Key]*entry
	head, tail *entry
	bytes      int64
	hits       int64
	misses     int64
	evictions  int64
}

// Cache is the sharded LRU. Safe for concurrent use.
type Cache struct {
	capBytes int64 // per total; each shard gets an equal slice
	shards   [numShards]shard
}

// New returns a cache bounded to roughly capBytes of stored payload
// (entry sizes are whatever callers declare in Put). Capacities below
// numShards bytes degenerate to an always-empty cache.
func New(capBytes int64) *Cache {
	c := &Cache{capBytes: capBytes}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*entry)
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	return &c.shards[k[0]&(numShards-1)]
}

// Get returns the value stored under k and marks it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.moveToFront(e)
	return e.value, true
}

// Put stores value under k, declaring its retained payload size for the
// capacity accounting. An existing entry under k is replaced. Values
// larger than a shard's capacity slice are not stored at all (they
// would only evict everything else for one residency).
func (c *Cache) Put(k Key, value any, size int64) {
	shardCap := c.capBytes / numShards
	if size < 0 || size > shardCap {
		return
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		s.bytes += size - e.size
		e.value, e.size = value, size
		s.moveToFront(e)
	} else {
		e := &entry{key: k, value: value, size: size}
		s.entries[k] = e
		s.bytes += size
		s.pushFront(e)
	}
	for s.bytes > shardCap && s.tail != nil {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
		s.bytes -= victim.size
		s.evictions++
	}
}

// Counters aggregates the per-shard statistics.
func (c *Cache) Counters() Counters {
	var out Counters
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Evictions += s.evictions
		out.Entries += int64(len(s.entries))
		out.Bytes += s.bytes
		s.mu.Unlock()
	}
	return out
}

// moveToFront marks e most recently used. Caller holds the shard lock.
func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *shard) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

package vcache

import (
	"crypto/sha256"
	"encoding/binary"
)

// Keys are truncated SHA-256: collision resistance is the cache's whole
// soundness story (a collision would let one image's verdict answer for
// another), so the hash must be cryptographic, and the stdlib
// implementation is hardware-accelerated on the platforms that matter.
// 128 retained bits keep key storage small while leaving collisions
// out of reach of any birthday attack an adversary could mount against
// a cache that holds at most millions of entries.
//
// Every key is domain-separated: the domain string and each part's
// length are hashed along with the content, so "chunk at offset x of
// image A" can never alias "whole image B" even when the bytes agree.

// Sum computes the Key for the given domain and parts. Parts are
// length-prefixed, so the partition into parts is part of the identity
// (no concatenation ambiguity).
func Sum(domain string, parts ...[]byte) Key {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(domain)))
	h.Write(n[:])
	h.Write([]byte(domain))
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	var d [sha256.Size]byte
	h.Sum(d[:0])
	var k Key
	copy(k[:], d[:])
	return k
}

package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Verdict classifies one task's outcome. Kill and Agree are the healthy
// outcomes (all checkers agreed, and accepted mutants were simulated
// without escaping); Disagree, Escape and ReferenceFault are the
// findings a campaign exists to surface.
type Verdict string

const (
	// VerdictKill: every consulted checker rejected the mutant.
	VerdictKill Verdict = "kill"
	// VerdictAgree: every consulted checker accepted the mutant and its
	// simulation stayed inside the sandbox.
	VerdictAgree Verdict = "agree"
	// VerdictDisagree: the checkers returned different verdicts — a bug
	// in one of the three implementations.
	VerdictDisagree Verdict = "disagree"
	// VerdictEscape: an accepted mutant's simulation left the sandbox —
	// a soundness bug.
	VerdictEscape Verdict = "escape"
	// VerdictReferenceFault: a checker panicked or the task exhausted
	// its watchdog retries; the campaign degrades gracefully and moves
	// on.
	VerdictReferenceFault Verdict = "fault"
)

// verdictIndex maps verdicts to aggregate-table columns.
var verdictIndex = map[Verdict]int{
	VerdictKill: 0, VerdictAgree: 1, VerdictDisagree: 2, VerdictEscape: 3, VerdictReferenceFault: 4,
}

const numVerdicts = 5

// record is one journal line: task ID, verdict, and (for findings) a
// short diagnostic.
type record struct {
	ID      int     `json:"id"`
	Verdict Verdict `json:"v"`
	Detail  string  `json:"d,omitempty"`
}

// journal is the append-only task log. Every record is written as one
// JSON line in a single Write syscall, so a crash can tear at most the
// final line — and replay tolerates exactly that.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f}, nil
}

func (j *journal) append(r record) error {
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(line)
	return err
}

func (j *journal) close() error { return j.f.Close() }

// replayJournal streams the journal's records from byte offset from,
// calling fn for each, and returns the offset just past the last intact
// record. A torn final line (the crash case) is skipped — its task
// simply runs again, and the dedup in state.apply keeps the replay
// idempotent. A malformed line that is not the final one means real
// corruption and is an error.
func replayJournal(path string, from int64, fn func(record)) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) && from == 0 {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return 0, err
	}
	offset := from
	br := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: a torn write. Leave offset before it.
			return offset, nil
		}
		if err != nil {
			return 0, err
		}
		var r record
		if jerr := json.Unmarshal(bytes.TrimSpace(line), &r); jerr != nil {
			// A malformed line that still got its newline: only tolerable
			// as the final line (torn mid-buffer by the crash).
			if _, perr := br.Peek(1); perr == io.EOF {
				return offset, nil
			}
			return 0, fmt.Errorf("campaign: corrupt journal at offset %d: %v", offset, jerr)
		}
		offset += int64(len(line))
		fn(r)
	}
}

// state is the campaign's resumable position: which tasks are done (a
// bitmap over task IDs), the per-policy/kind/verdict aggregate table,
// and the list of finding records. It is exactly the fold of the
// journal's deduplicated records, which is what makes the final table a
// pure function of the plan: replay order, retries and timing all wash
// out.
type state struct {
	n       int
	done    []uint64
	nDone   int
	counts  []int64 // [policy][kind][verdict], flattened
	failing []record
	cfg     Config
}

func newState(cfg Config) *state {
	n := cfg.NumTasks()
	return &state{
		n:      n,
		done:   make([]uint64, (n+63)/64),
		counts: make([]int64, len(cfg.Policies)*numKinds*numVerdicts),
		cfg:    cfg,
	}
}

const numKinds = 4 // faultinject.NumImageKinds

func (s *state) isDone(id int) bool {
	return s.done[id/64]&(1<<(id%64)) != 0
}

// apply folds one record in; it returns false (and changes nothing) for
// duplicates and out-of-range IDs, which is what makes journal replay
// idempotent.
func (s *state) apply(r record) bool {
	if r.ID < 0 || r.ID >= s.n || s.isDone(r.ID) {
		return false
	}
	vi, ok := verdictIndex[r.Verdict]
	if !ok {
		return false
	}
	s.done[r.ID/64] |= 1 << (r.ID % 64)
	s.nDone++
	t := s.cfg.TaskFor(r.ID)
	s.counts[(t.Policy*numKinds+int(t.Kind))*numVerdicts+vi]++
	if r.Verdict == VerdictDisagree || r.Verdict == VerdictEscape || r.Verdict == VerdictReferenceFault {
		s.failing = append(s.failing, r)
	}
	return true
}

// checkpoint is the periodic snapshot: the state as of the journal
// prefix [0, Offset). Resume loads it and replays only the journal tail
// past Offset. It is advisory — a missing or stale checkpoint only
// means a longer replay, never a wrong answer.
type checkpoint struct {
	Offset  int64    `json:"offset"`
	NDone   int      `json:"n_done"`
	Done    []byte   `json:"done"`
	Counts  []int64  `json:"counts"`
	Failing []record `json:"failing,omitempty"`
}

// writeCheckpoint persists the state atomically (tmp + rename), tagged
// with the journal offset it covers.
func writeCheckpoint(dir string, s *state, offset int64) error {
	ck := checkpoint{
		Offset:  offset,
		NDone:   s.nDone,
		Done:    packBitmap(s.done),
		Counts:  append([]int64(nil), s.counts...),
		Failing: s.failing,
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "checkpoint.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "checkpoint.json"))
}

// loadCheckpoint restores a state snapshot. Any inconsistency (wrong
// sizes, offset beyond the journal) discards the checkpoint and reports
// ok=false; the caller falls back to a full journal replay.
func loadCheckpoint(dir string, s *state) (offset int64, ok bool) {
	data, err := os.ReadFile(filepath.Join(dir, "checkpoint.json"))
	if err != nil {
		return 0, false
	}
	var ck checkpoint
	if json.Unmarshal(data, &ck) != nil {
		return 0, false
	}
	done, err := unpackBitmap(ck.Done, len(s.done))
	if err != nil || len(ck.Counts) != len(s.counts) || ck.Offset < 0 {
		return 0, false
	}
	if fi, err := os.Stat(filepath.Join(dir, "journal.jsonl")); err != nil || fi.Size() < ck.Offset {
		return 0, false
	}
	s.done = done
	s.nDone = ck.NDone
	copy(s.counts, ck.Counts)
	s.failing = append(s.failing[:0], ck.Failing...)
	return ck.Offset, true
}

func packBitmap(words []uint64) []byte {
	out := make([]byte, len(words)*8)
	for i, w := range words {
		for b := 0; b < 8; b++ {
			out[i*8+b] = byte(w >> (8 * b))
		}
	}
	return out
}

func unpackBitmap(data []byte, words int) ([]uint64, error) {
	if len(data) != words*8 {
		return nil, fmt.Errorf("campaign: bitmap is %d bytes, want %d", len(data), words*8)
	}
	out := make([]uint64, words)
	for i := range out {
		for b := 0; b < 8; b++ {
			out[i] |= uint64(data[i*8+b]) << (8 * b)
		}
	}
	return out, nil
}

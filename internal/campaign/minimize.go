package campaign

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"rocksalt/internal/faultinject"
)

// minimizeBudget caps how many re-judgings one minimization may spend.
// Each probe is a full differential judging (three checkers plus the
// escape check), so the budget bounds a finding's cost at roughly 200x
// a normal task — still minutes, not hours, even with armor in the
// loop.
const minimizeBudget = 200

// Repro is the persisted, self-contained reproduction of one finding:
// everything needed to regenerate and re-judge the image without the
// campaign directory — the plan coordinates, the derived seeds, the
// full mutant and its minimized form.
type Repro struct {
	Task         int    `json:"task"`
	Policy       string `json:"policy"`
	Kind         string `json:"kind"`
	Base         int    `json:"base"`
	Mutant       int    `json:"mutant"`
	CampaignSeed int64  `json:"campaign_seed"`
	MutSeed      int64  `json:"mut_seed"`
	BaseSeed     int64  `json:"base_seed"`
	Verdict      string `json:"verdict"`
	Detail       string `json:"detail,omitempty"`
	ImageHex     string `json:"image_hex"`
	MinimizedHex string `json:"minimized_hex"`
}

// minimizeAndPersist delta-debugs a finding down to a minimal
// bundle-aligned image that still reproduces a bad verdict, and writes
// the repro under <dir>/repros/. The reproduction predicate is "the
// differential judging still finds a disagreement or an escape" — not
// "the same disagreement" — which is the standard ddmin fixpoint
// condition and keeps the minimized image meaningful even when chunk
// removal shifts which checker flips first.
func (c *Campaign) minimizeAndPersist(pc *policyCtx, h *faultinject.Harness, t Task, img []byte, v Verdict, detail string) (string, error) {
	budget := minimizeBudget
	bad := func(cand []byte) bool {
		if budget <= 0 {
			return false
		}
		budget--
		vv, _ := c.judge(pc, h, cand, true)
		return vv == VerdictDisagree || vv == VerdictEscape
	}
	min := ddmin(img, pc.params.Bundle, bad)

	rep := Repro{
		Task:         t.ID,
		Policy:       pc.name,
		Kind:         t.Kind.String(),
		Base:         t.Base,
		Mutant:       t.Mutant,
		CampaignSeed: c.cfg.Seed,
		MutSeed:      c.cfg.MutSeed(t),
		BaseSeed:     c.cfg.BaseSeed(t.Policy, t.Base),
		Verdict:      string(v),
		Detail:       detail,
		ImageHex:     hex.EncodeToString(img),
		MinimizedHex: hex.EncodeToString(min),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	name := fmt.Sprintf("task-%08d.json", t.ID)
	path := filepath.Join(c.dir, "repros", name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	return filepath.Join("repros", name), nil
}

// ddmin is greedy bundle-chunk delta debugging: starting from the
// largest bundle-multiple chunk size, repeatedly remove any aligned
// chunk whose removal keeps the image bad, then halve the chunk size,
// down to single bundles. Removing a bundle-multiple at a
// bundle-aligned offset preserves the alignment of everything after it,
// so the minimized image exercises the same alignment discipline as the
// original.
func ddmin(img []byte, bundle int, bad func([]byte) bool) []byte {
	cur := append([]byte(nil), img...)
	if len(cur) <= bundle || !bad(cur) {
		return cur
	}
	start := bundle
	for start*2 <= len(cur)/2 {
		start *= 2
	}
	for size := start; size >= bundle; size /= 2 {
		for changed := true; changed; {
			changed = false
			for off := 0; off+size <= len(cur); off += size {
				if len(cur) == size {
					break // never minimize to an empty image
				}
				cand := make([]byte, 0, len(cur)-size)
				cand = append(cand, cur[:off]...)
				cand = append(cand, cur[off+size:]...)
				if bad(cand) {
					cur = cand
					changed = true
				}
			}
		}
	}
	return cur
}

// Package campaign is the standing soundness harness: a long-running,
// crash-safe differential-testing subsystem that pushes generated and
// mutated images through rocksalt-vs-ncval-vs-armor agreement plus
// simulator escape checks, per policy. A campaign is a deterministic
// work-plan — every task is a pure function of (campaign seed, task ID)
// — sharded across a worker pool, with an append-only journal and
// periodic checkpoints so a killed process resumes exactly where it
// left off, per-task watchdog timeouts with bounded retry, panic
// containment per worker (a crashing reference checker becomes a
// ReferenceFault verdict, not a dead campaign), and automatic
// delta-debugging minimization of every disagreement into a persisted
// repro.
package campaign

import (
	"fmt"
	"time"

	"rocksalt/internal/faultinject"
	"rocksalt/internal/policy"
)

// Config describes a campaign. The JSON-tagged fields are the
// campaign's identity: they are persisted in plan.json and, together
// with the deterministic task derivation below, fix every task's input
// bytes and expected verdict. The untagged fields are execution knobs —
// worker count, timeouts, checkpoint cadence — which may differ between
// a run and its resume without changing any verdict.
type Config struct {
	// Seed roots every derived seed in the campaign: base-image
	// generation, mutation, and simulation all key off it.
	Seed int64 `json:"seed"`
	// Policies are the policy presets under test (see PresetSpec).
	Policies []string `json:"policies"`
	// Bases is how many generated base images each policy gets.
	Bases int `json:"bases"`
	// BaseInstrs sizes each base image, in generated instructions.
	BaseInstrs int `json:"base_instrs"`
	// PerKind is how many mutants of each mutator family are derived
	// from each base image.
	PerKind int `json:"per_kind"`
	// ArmorStride runs the armor comparator on every Nth task only:
	// armor re-derives grammar derivatives and RTL verification
	// conditions per instruction and is orders of magnitude slower than
	// the other two checkers (that gap is the point of experiment E3),
	// so sampling it is a deliberate budget decision, not an accident.
	ArmorStride int `json:"armor_stride"`
	// SimSeeds is how many randomized machine states each accepted
	// mutant is executed under for the escape check.
	SimSeeds int `json:"sim_seeds"`
	// MaxSteps bounds each simulation.
	MaxSteps int `json:"max_steps"`

	// Workers sizes the worker pool (default 1).
	Workers int `json:"-"`
	// TaskTimeout is the per-task watchdog: a task running longer is
	// abandoned and retried (default 60s).
	TaskTimeout time.Duration `json:"-"`
	// MaxRetries bounds watchdog retries per task before the task is
	// recorded as a ReferenceFault (default 2).
	MaxRetries int `json:"-"`
	// CheckpointEvery is how many newly journaled tasks pass between
	// checkpoint snapshots (default 512).
	CheckpointEvery int `json:"-"`
	// PostmortemDir, when set, receives a flight-recorder postmortem
	// bundle for every task the watchdog abandons after exhausting its
	// retries. An execution knob like Workers: where the bundles land
	// (or whether they are written at all) may differ between a run and
	// its resume without changing any verdict.
	PostmortemDir string `json:"-"`
}

// withDefaults fills the zero fields in.
func (c Config) withDefaults() Config {
	if len(c.Policies) == 0 {
		c.Policies = []string{"nacl-32", "nacl-16", "reins-16"}
	}
	if c.Bases == 0 {
		c.Bases = 2
	}
	if c.BaseInstrs == 0 {
		c.BaseInstrs = 40
	}
	if c.PerKind == 0 {
		c.PerKind = 50
	}
	if c.ArmorStride == 0 {
		c.ArmorStride = 16
	}
	if c.SimSeeds == 0 {
		c.SimSeeds = 2
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 200
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.TaskTimeout == 0 {
		c.TaskTimeout = 60 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 512
	}
	return c
}

// PresetSpec resolves a policy preset name to its spec.
func PresetSpec(name string) (policy.Spec, error) {
	switch name {
	case "nacl-32":
		return policy.NaCl(), nil
	case "nacl-16":
		return policy.NaCl16(), nil
	case "reins-16":
		return policy.REINS(), nil
	}
	return policy.Spec{}, fmt.Errorf("campaign: unknown policy preset %q (want nacl-32, nacl-16 or reins-16)", name)
}

// Task locates one unit of work in the campaign's deterministic plan:
// mutant Mutant of mutator family Kind over base image Base under
// policy Policy. Task IDs enumerate the plan in mixed-radix order —
// policy-major, then base, kind, mutant — so the mapping ID <-> task is
// a pure function of the config.
type Task struct {
	ID     int
	Policy int // index into Config.Policies
	Base   int
	Kind   faultinject.Kind
	Mutant int
}

// NumTasks is the plan size.
func (c Config) NumTasks() int {
	return len(c.Policies) * c.Bases * faultinject.NumImageKinds * c.PerKind
}

// TaskFor decodes a task ID back into plan coordinates.
func (c Config) TaskFor(id int) Task {
	t := Task{ID: id}
	t.Mutant = id % c.PerKind
	id /= c.PerKind
	t.Kind = faultinject.Kind(id % faultinject.NumImageKinds)
	id /= faultinject.NumImageKinds
	t.Base = id % c.Bases
	t.Policy = id / c.Bases
	return t
}

// mix is a splitmix64-style finalizer: it turns structured coordinates
// into well-dispersed seeds so adjacent tasks do not share rng streams.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MutSeed is the mutation seed of a task — a pure function of the
// campaign seed and the task ID.
func (c Config) MutSeed(t Task) int64 {
	return int64(mix(uint64(c.Seed)*0x9e3779b97f4a7c15 + uint64(t.ID) + 1))
}

// BaseSeed is the generator seed of base image b under policy p.
func (c Config) BaseSeed(p, b int) int64 {
	return int64(mix(uint64(c.Seed)*0xd1b54a32d192ed03 + uint64(p)*1_000_003 + uint64(b) + 1))
}

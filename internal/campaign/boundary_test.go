package campaign

import (
	"testing"

	"rocksalt/internal/armor"
	"rocksalt/internal/core"
	"rocksalt/internal/ncval"
	"rocksalt/internal/policy"
)

// TestGuardRegionBoundaryAgreement pins down the out-of-image
// direct-target semantics at the exact boundaries — guard_cutoff-1,
// guard_cutoff, guard_cutoff+1, code_limit-1, code_limit, code_limit+1,
// and the in-image/out-of-image edge — and requires rocksalt, ncval and
// armor to agree on every case for every shipped policy preset. These
// are the off-by-one cliffs a differential campaign samples only by
// luck; here they are enumerated.
func TestGuardRegionBoundaryAgreement(t *testing.T) {
	for _, preset := range []string{"nacl-32", "nacl-16", "reins-16"} {
		t.Run(preset, func(t *testing.T) {
			spec, err := PresetSpec(preset)
			if err != nil {
				t.Fatal(err)
			}
			com, err := policy.Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			check, err := core.NewCheckerFromPolicy(com)
			if err != nil {
				t.Fatal(err)
			}
			ncf, err := ncval.ConfigForSpec(com.Spec)
			if err != nil {
				t.Fatal(err)
			}

			B := uint32(com.Spec.BundleSize)
			G := com.Spec.GuardCutoff
			CL := com.Spec.CodeLimit
			imgLen := 2 * B

			// jumpTo builds a two-bundle image whose first instruction is
			// "jmp rel32" to the given absolute target, padded with nops.
			// Everything but the jump target is trivially policy-clean.
			jumpTo := func(target uint32) []byte {
				img := make([]byte, imgLen)
				for i := range img {
					img[i] = 0x90
				}
				img[0] = 0xe9
				rel := int32(target) - 5
				img[1] = byte(rel)
				img[2] = byte(rel >> 8)
				img[3] = byte(rel >> 16)
				img[4] = byte(rel >> 24)
				return img
			}

			type tc struct {
				name    string
				target  uint32
				entries []uint32 // whitelisted entry points
				want    bool
			}
			cases := []tc{
				{"in-image bundle start", B, nil, true},
				{"in-image nop, misaligned", B + 1, nil, true},
				{"in-image mid-instruction", 2, nil, false},
				{"out-of-image, not whitelisted", 8 * B, nil, false},
				{"first out-of-image byte, not whitelisted", imgLen, nil, false},
				// A whitelisted entry just past the image is reachable
				// unless it sits inside the guard region (as it does for
				// reins-16, whose guard dwarfs the test image).
				{"first out-of-image byte, whitelisted", imgLen, []uint32{imgLen}, G == 0 || imgLen >= G},
				{"last in-image byte (nop), no whitelist", imgLen - 1, nil, true},
			}
			if G != 0 {
				cases = append(cases,
					// The guard overrides the whitelist below the cutoff...
					tc{"whitelisted at guard_cutoff-1", G - 1, []uint32{G - 1}, false},
					tc{"whitelisted at guard_cutoff-bundle (last guard bundle)", G - B, []uint32{G - B}, false},
					// ...and stops mattering exactly at it.
					tc{"whitelisted at guard_cutoff", G, []uint32{G}, true},
					tc{"whitelisted at guard_cutoff+1", G + 1, []uint32{G + 1}, true},
					tc{"guard_cutoff-1 without whitelist", G - 1, nil, false},
				)
			}
			if CL != 0 {
				// Direct targets are governed by the entry whitelist and
				// the guard, not the mask's code_limit: a whitelisted
				// entry at or above code_limit is a (trusted) runtime
				// address, like NaCl's trampolines above the sandbox.
				cases = append(cases,
					tc{"whitelisted at code_limit-1", CL - 1, []uint32{CL - 1}, true},
					tc{"whitelisted at code_limit", CL, []uint32{CL}, true},
					tc{"whitelisted at code_limit+1", CL + 1, []uint32{CL + 1}, true},
					tc{"code_limit-1 without whitelist", CL - 1, nil, false},
				)
			}

			for _, c := range cases {
				t.Run(c.name, func(t *testing.T) {
					entries := map[uint32]bool{}
					for _, e := range c.entries {
						entries[e] = true
					}
					img := jumpTo(c.target)

					check.Entries = entries
					rs := check.Verify(img)

					ncf.Entries = entries
					nv := ncf.Validate(img)

					am := armor.VerifyPolicy(img, com.Spec, entries)

					if rs != nv || rs != am {
						t.Fatalf("checkers disagree: rocksalt=%v ncval=%v armor=%v (target %#x, entries %v)",
							rs, nv, am, c.target, c.entries)
					}
					if rs != c.want {
						t.Fatalf("all checkers say %v, want %v (target %#x, entries %v)",
							rs, c.want, c.target, c.entries)
					}
				})
			}
		})
	}
}

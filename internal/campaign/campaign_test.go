package campaign

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testConfig is a small two-policy plan that still exercises every
// mutator family, the armor stride, and both mask widths.
func testConfig() Config {
	return Config{
		Seed:            7,
		Policies:        []string{"nacl-32", "reins-16"},
		Bases:           2,
		BaseInstrs:      30,
		PerKind:         6,
		ArmorStride:     11,
		SimSeeds:        1,
		MaxSteps:        100,
		Workers:         2,
		TaskTimeout:     time.Minute,
		MaxRetries:      1,
		CheckpointEvery: 16,
	}
}

func runToCompletion(t *testing.T, dir string, cfg Config) *Result {
	t.Helper()
	c, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func marshal(t *testing.T, res *Result) []byte {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// journalIDs reads the journal's intact records.
func journalIDs(t *testing.T, dir string) []int {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var ids []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r record
		if json.Unmarshal(sc.Bytes(), &r) == nil {
			ids = append(ids, r.ID)
		}
	}
	return ids
}

// TestCampaignCleanRun: a small campaign across both mask widths
// completes with zero findings, journals every task exactly once, and
// reports a table whose totals cover the whole plan.
func TestCampaignCleanRun(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	res := runToCompletion(t, dir, cfg)
	if res.Done != cfg.NumTasks() {
		t.Fatalf("done %d of %d tasks", res.Done, cfg.NumTasks())
	}
	if len(res.Findings) != 0 {
		t.Fatalf("clean campaign produced findings: %+v", res.Findings)
	}
	var total int64
	for _, pt := range res.Policies {
		if pt.Disagreements+pt.Escapes+pt.Faults != 0 {
			t.Fatalf("policy %s has nonzero findings: %+v", pt.Policy, pt)
		}
		total += pt.Tasks
	}
	if total != int64(cfg.NumTasks()) {
		t.Fatalf("table covers %d tasks, want %d", total, cfg.NumTasks())
	}
	ids := journalIDs(t, dir)
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("task %d journaled twice", id)
		}
		seen[id] = true
	}
	if len(seen) != cfg.NumTasks() {
		t.Fatalf("journal holds %d unique tasks, want %d", len(seen), cfg.NumTasks())
	}
}

// TestResumeDeterminism: cancel a campaign partway, resume it in the
// same directory, and require the final table to be byte-identical to
// an uninterrupted run of the same plan — with no task journaled twice
// across the two sessions.
func TestResumeDeterminism(t *testing.T) {
	cfg := testConfig()

	want := marshal(t, runToCompletion(t, t.TempDir(), cfg))

	dir := t.TempDir()
	c, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel once the journal shows real progress; file size is the
	// only signal the test shares with the collector goroutine.
	stop := make(chan struct{})
	go func() {
		defer cancel()
		jpath := filepath.Join(dir, "journal.jsonl")
		for {
			select {
			case <-stop:
				return
			default:
			}
			if fi, err := os.Stat(jpath); err == nil && fi.Size() > 600 {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	if _, err := c.Run(ctx); err == nil {
		t.Log("campaign finished before cancellation; mid-run resume not exercised")
	}
	close(stop)
	c.Close()

	c2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Resumed() {
		t.Fatal("second Open did not resume")
	}
	res, err := c2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := marshal(t, res); string(got) != string(want) {
		t.Fatalf("resumed table differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}

	// No task re-run, no task lost: the journal across both sessions
	// holds every task ID exactly once.
	ids := journalIDs(t, dir)
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("task %d re-run after resume (journaled twice)", id)
		}
		seen[id] = true
	}
	if len(seen) != cfg.NumTasks() {
		t.Fatalf("journal holds %d unique tasks, want %d (no task lost)", len(seen), cfg.NumTasks())
	}
}

// TestCheckpointTailReplay: a resume that finds a checkpoint replays
// only the journal tail and reconstructs the same state; a corrupt
// checkpoint falls back to a full-journal fold with the same answer.
func TestCheckpointTailReplay(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointEvery = 10 // several snapshots over the run
	dir := t.TempDir()
	want := marshal(t, runToCompletion(t, dir, cfg))

	c, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Done() != cfg.NumTasks() {
		t.Fatalf("resume reconstructed %d done tasks, want %d", c.Done(), cfg.NumTasks())
	}
	if got := marshal(t, c.result()); string(got) != string(want) {
		t.Fatalf("reconstructed table differs:\n got %s\nwant %s", got, want)
	}

	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := marshal(t, c2.result()); string(got) != string(want) {
		t.Fatalf("full-replay table differs after checkpoint corruption:\n got %s\nwant %s", got, want)
	}
}

// TestTornJournalLine: a torn final journal line (the crash case) is
// skipped on replay and its task simply runs again on resume, ending at
// the same table.
func TestTornJournalLine(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	want := marshal(t, runToCompletion(t, dir, cfg))

	jpath := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	// The final checkpoint covers the untruncated journal; drop it so
	// the discard-and-replay path is what's under test. (loadCheckpoint
	// would discard it anyway: its offset exceeds the file size.)
	os.Remove(filepath.Join(dir, "checkpoint.json"))

	c, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Done() != cfg.NumTasks()-1 {
		t.Fatalf("after torn line: %d done, want %d", c.Done(), cfg.NumTasks()-1)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := marshal(t, res); string(got) != string(want) {
		t.Fatalf("table after torn-line resume differs:\n got %s\nwant %s", got, want)
	}
}

// TestReferenceFaultContainment: a reference checker that panics must
// be recorded as ReferenceFault verdicts while the campaign completes —
// graceful degradation, not a dead process.
func TestReferenceFaultContainment(t *testing.T) {
	cfg := testConfig()
	cfg.Policies = []string{"nacl-32"}
	testNcvalHook = func(img []byte) bool {
		panic("injected reference-checker crash")
	}
	defer func() { testNcvalHook = nil }()

	dir := t.TempDir()
	res := runToCompletion(t, dir, cfg)
	if res.Done != cfg.NumTasks() {
		t.Fatalf("campaign did not complete under reference faults: %d/%d", res.Done, cfg.NumTasks())
	}
	var faults int64
	for _, pt := range res.Policies {
		faults += pt.Faults
	}
	if faults != int64(cfg.NumTasks()) {
		t.Fatalf("%d faults recorded, want every task (%d)", faults, cfg.NumTasks())
	}
	for _, f := range res.Findings {
		if f.Verdict != string(VerdictReferenceFault) {
			t.Fatalf("unexpected verdict %q among faults: %+v", f.Verdict, f)
		}
		if f.Detail == "" {
			t.Fatalf("fault finding without detail: %+v", f)
		}
	}
}

// TestDisagreementMinimized: a (synthetic) reference divergence is
// journaled as a disagreement and ddmin'd to a persisted, no-larger,
// alignment-preserving repro.
func TestDisagreementMinimized(t *testing.T) {
	cfg := testConfig()
	cfg.Policies = []string{"nacl-32"}
	// The hooked ncval rejects everything: every mutant rocksalt
	// accepts becomes a disagreement (and nothing else changes — the
	// mutants rocksalt rejects stay kills).
	testNcvalHook = func(img []byte) bool { return false }
	defer func() { testNcvalHook = nil }()

	dir := t.TempDir()
	res := runToCompletion(t, dir, cfg)
	var disagreements int64
	for _, pt := range res.Policies {
		disagreements += pt.Disagreements
		if pt.Escapes != 0 || pt.Faults != 0 {
			t.Fatalf("unexpected escapes/faults: %+v", pt)
		}
	}
	if disagreements == 0 {
		t.Fatal("hook produced no disagreements; test is vacuous")
	}
	entries, err := os.ReadDir(filepath.Join(dir, "repros"))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(entries)) != disagreements {
		t.Fatalf("%d repro files for %d disagreements", len(entries), disagreements)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, "repros", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var rep Repro
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("repro %s: %v", e.Name(), err)
		}
		if rep.Verdict != string(VerdictDisagree) {
			t.Fatalf("repro %s verdict %q", e.Name(), rep.Verdict)
		}
		if n := len(rep.MinimizedHex); n == 0 || n > len(rep.ImageHex) {
			t.Fatalf("repro %s: minimized %d hex chars vs image %d", e.Name(), n, len(rep.ImageHex))
		}
		// ddmin removes bundle multiples at bundle-aligned offsets, so
		// the minimized length is congruent to the original mod bundle.
		if (len(rep.ImageHex)-len(rep.MinimizedHex))%(2*32) != 0 {
			t.Fatalf("repro %s: removed %d hex chars, not a bundle multiple",
				e.Name(), len(rep.ImageHex)-len(rep.MinimizedHex))
		}
	}
}

// TestDDMin: the chunk minimizer reaches the smallest bundle-aligned
// image containing the "bad" marker and never proposes an empty image.
func TestDDMin(t *testing.T) {
	const bundle = 32
	img := make([]byte, 8*bundle)
	img[5*bundle+3] = 0xAA // the byte the predicate keys on
	bad := func(b []byte) bool {
		for _, x := range b {
			if x == 0xAA {
				return true
			}
		}
		return false
	}
	min := ddmin(img, bundle, bad)
	if len(min) != bundle {
		t.Fatalf("minimized to %d bytes, want one bundle (%d)", len(min), bundle)
	}
	if !bad(min) {
		t.Fatal("minimized image no longer reproduces")
	}

	// An image that is all marker never minimizes to empty.
	all := make([]byte, 4*bundle)
	for i := range all {
		all[i] = 0xAA
	}
	if min := ddmin(all, bundle, bad); len(min) == 0 {
		t.Fatal("ddmin produced an empty image")
	}
}

// TestTaskRoundTrip: the mixed-radix task indexing is a bijection.
func TestTaskRoundTrip(t *testing.T) {
	cfg := testConfig().withDefaults()
	n := cfg.NumTasks()
	for id := 0; id < n; id++ {
		tk := cfg.TaskFor(id)
		back := ((tk.Policy*cfg.Bases+tk.Base)*numKinds+int(tk.Kind))*cfg.PerKind + tk.Mutant
		if back != id {
			t.Fatalf("task %d round-trips to %d (%+v)", id, back, tk)
		}
		if tk.Policy < 0 || tk.Policy >= len(cfg.Policies) || tk.Base < 0 || tk.Base >= cfg.Bases ||
			tk.Mutant < 0 || tk.Mutant >= cfg.PerKind {
			t.Fatalf("task %d decodes out of range: %+v", id, tk)
		}
	}
}

// TestWatchdogTimeout: a task that outlives its timeout is abandoned,
// retried, and finally recorded as a ReferenceFault — the campaign
// finishes anyway.
func TestWatchdogTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.Policies = []string{"nacl-32"}
	cfg.Bases, cfg.PerKind = 1, 1 // 4 tasks
	cfg.Workers = 1
	cfg.TaskTimeout = 20 * time.Millisecond
	cfg.MaxRetries = 1
	testTaskDelay.Store(int64(200 * time.Millisecond))
	defer testTaskDelay.Store(0)

	res := runToCompletion(t, t.TempDir(), cfg)
	if res.Done != cfg.NumTasks() {
		t.Fatalf("campaign stuck: %d/%d", res.Done, cfg.NumTasks())
	}
	var faults int64
	for _, pt := range res.Policies {
		faults += pt.Faults
	}
	if faults != int64(cfg.NumTasks()) {
		t.Fatalf("%d watchdog faults, want %d", faults, cfg.NumTasks())
	}
}

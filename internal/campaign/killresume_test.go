package campaign

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestKillAndResume is the crash-safety proof from ISSUE acceptance:
// run the campaign in a child process, SIGKILL it mid-run (no cleanup,
// no deferred flushes — the real crash case), resume from the journal
// in this process, and require the final table to be byte-identical to
// an uninterrupted run of the same plan, with no journaled task re-run
// and no task lost.
//
// The test re-execs the test binary: with GO_CAMPAIGN_CHILD=1 this
// function becomes the child and runs the campaign (slowed by
// testTaskDelay so the parent reliably catches it mid-flight) until it
// is killed.
func TestKillAndResume(t *testing.T) {
	cfg := testConfig()

	if os.Getenv("GO_CAMPAIGN_CHILD") == "1" {
		testTaskDelay.Store(int64(5 * time.Millisecond))
		c, err := Open(os.Getenv("CAMPAIGN_DIR"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Reaching here means the parent failed to kill us in time; the
		// parent detects that via Done()==NumTasks and skips.
		return
	}

	want := marshal(t, runToCompletion(t, t.TempDir(), cfg))

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestKillAndResume$", "-test.v")
	cmd.Env = append(os.Environ(), "GO_CAMPAIGN_CHILD=1", "CAMPAIGN_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// SIGKILL the child once the journal shows it is well into the run
	// but nowhere near done (5ms/task over the remaining ~70 tasks is
	// comfortably longer than the poll-to-kill latency).
	jpath := filepath.Join(dir, "journal.jsonl")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("child never produced enough journal records")
		}
		if data, err := os.ReadFile(jpath); err == nil && strings.Count(string(data), "\n") >= 25 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit status is the kill signal, not meaningful

	c, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Resumed() {
		t.Fatal("Open did not resume the killed campaign")
	}
	pre := c.Done()
	if pre == 0 {
		t.Fatal("resume recovered nothing from the journal")
	}
	if pre >= cfg.NumTasks() {
		t.Skipf("child finished all %d tasks before the kill; crash window missed", cfg.NumTasks())
	}
	t.Logf("child killed after %d/%d tasks; resuming", pre, cfg.NumTasks())

	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != cfg.NumTasks() {
		t.Fatalf("resume finished %d/%d tasks", res.Done, cfg.NumTasks())
	}
	if got := marshal(t, res); string(got) != string(want) {
		t.Fatalf("post-kill table differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}

	// No journaled task re-ran, no task was lost. The kill may tear the
	// child's final journal line; that fragment merges with the first
	// resumed line into one unparseable scanner line, hiding at most one
	// record from this accounting (the in-memory fold replays past it
	// correctly — that is what the byte-identical table above proves).
	ids := journalIDs(t, dir)
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("task %d journaled twice across kill/resume", id)
		}
		seen[id] = true
	}
	if len(seen) < cfg.NumTasks()-1 {
		t.Fatalf("journal holds %d unique tasks, want >= %d", len(seen), cfg.NumTasks()-1)
	}
}

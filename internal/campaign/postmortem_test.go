package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rocksalt/internal/flight"
)

// TestWatchdogPostmortem: a task abandoned by the watchdog drops a
// postmortem bundle into PostmortemDir carrying the abandonment detail
// and the policy identity, without disturbing the campaign's verdicts.
func TestWatchdogPostmortem(t *testing.T) {
	cfg := testConfig()
	cfg.Policies = []string{"nacl-32"}
	cfg.Bases, cfg.PerKind = 1, 1 // 4 tasks
	cfg.Workers = 1
	cfg.TaskTimeout = 20 * time.Millisecond
	cfg.MaxRetries = 1
	cfg.PostmortemDir = filepath.Join(t.TempDir(), "postmortems")
	testTaskDelay.Store(int64(200 * time.Millisecond))
	defer testTaskDelay.Store(0)
	defer flight.SetGlobal(nil) // Run installs a global recorder for the dir

	res := runToCompletion(t, t.TempDir(), cfg)
	if res.Done != cfg.NumTasks() {
		t.Fatalf("campaign stuck: %d/%d", res.Done, cfg.NumTasks())
	}
	entries, err := os.ReadDir(cfg.PostmortemDir)
	if err != nil {
		t.Fatalf("postmortem dir: %v", err)
	}
	if len(entries) != cfg.NumTasks() {
		t.Fatalf("%d postmortems, want %d (one per abandoned task)", len(entries), cfg.NumTasks())
	}
	data, err := os.ReadFile(filepath.Join(cfg.PostmortemDir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	var pm struct {
		Reason            string `json:"reason"`
		Detail            string `json:"detail"`
		File              string `json:"file"`
		TableBundle       string `json:"table_bundle"`
		PolicyFingerprint string `json:"policy_fingerprint"`
	}
	if err := json.Unmarshal(data, &pm); err != nil {
		t.Fatalf("postmortem is not valid JSON: %v\n%s", err, data)
	}
	if pm.Reason != "watchdog-abandonment" {
		t.Errorf("reason = %q, want watchdog-abandonment", pm.Reason)
	}
	if !strings.Contains(pm.Detail, "watchdog: task exceeded") {
		t.Errorf("detail = %q, want the watchdog message", pm.Detail)
	}
	if !strings.Contains(pm.File, "nacl-32") {
		t.Errorf("file = %q, want the task's policy name", pm.File)
	}
	if pm.PolicyFingerprint == "" {
		t.Error("policy_fingerprint empty")
	}
	if pm.TableBundle != "compiled" {
		t.Errorf("table_bundle = %q, want compiled (campaign checkers are runtime-compiled)", pm.TableBundle)
	}
}

package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"rocksalt/internal/armor"
	"rocksalt/internal/core"
	"rocksalt/internal/faultinject"
	"rocksalt/internal/flight"
	"rocksalt/internal/nacl"
	"rocksalt/internal/ncval"
	"rocksalt/internal/policy"
	"rocksalt/internal/telemetry"
)

// cmMetrics are the campaign's live-progress counters (scrapable via
// internal/telemetry's exporters). The alarm counters — disagreements,
// escapes, faults — staying at zero is the continuously monitored form
// of the agreement claim.
var cmMetrics struct {
	tasks, kills, agrees, disagrees, escapes, faults *telemetry.Counter
	retries, resumedTasks                            *telemetry.Counter
}

func init() {
	r := telemetry.Default()
	cmMetrics.tasks = r.NewCounter("rocksalt_campaign_tasks_total", "campaign tasks completed")
	cmMetrics.kills = r.NewCounter("rocksalt_campaign_kills_total", "mutants rejected by all checkers")
	cmMetrics.agrees = r.NewCounter("rocksalt_campaign_agreements_total", "mutants accepted by all checkers and contained")
	cmMetrics.disagrees = r.NewCounter("rocksalt_campaign_disagreements_total", "checker disagreements found")
	cmMetrics.escapes = r.NewCounter("rocksalt_campaign_escapes_total", "sandbox escapes found")
	cmMetrics.faults = r.NewCounter("rocksalt_campaign_faults_total", "reference-checker faults contained")
	cmMetrics.retries = r.NewCounter("rocksalt_campaign_retries_total", "watchdog retries")
	cmMetrics.resumedTasks = r.NewCounter("rocksalt_campaign_resumed_tasks_total", "tasks recovered from the journal on resume")
}

// Campaign is one differential soak run rooted in a directory:
// plan.json (the identity config), journal.jsonl (the append-only task
// log), checkpoint.json (the periodic snapshot) and repros/ (minimized
// findings).
type Campaign struct {
	cfg     Config
	dir     string
	st      *state
	j       *journal
	resumed bool
	// sinceCheckpoint counts newly applied records since the last
	// snapshot.
	sinceCheckpoint int
	journalOffset   int64
}

// Open creates a campaign in dir, or resumes the one already there: if
// plan.json exists, its identity fields replace cfg's (the plan on disk
// is the campaign; cfg's execution knobs still apply), the checkpoint
// is loaded, and the journal tail is replayed. Crash-safety note: the
// journal is the source of truth and the checkpoint is a replay
// shortcut, so any prefix of a crashed run — including a torn final
// journal line — resumes to the same final table.
func Open(dir string, cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(filepath.Join(dir, "repros"), 0o755); err != nil {
		return nil, err
	}
	planPath := filepath.Join(dir, "plan.json")
	resumed := false
	if data, err := os.ReadFile(planPath); err == nil {
		var persisted Config
		if err := json.Unmarshal(data, &persisted); err != nil {
			return nil, fmt.Errorf("campaign: corrupt plan.json: %v", err)
		}
		persisted.Workers = cfg.Workers
		persisted.TaskTimeout = cfg.TaskTimeout
		persisted.MaxRetries = cfg.MaxRetries
		persisted.CheckpointEvery = cfg.CheckpointEvery
		persisted.PostmortemDir = cfg.PostmortemDir
		cfg = persisted.withDefaults()
		resumed = true
	} else {
		data, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			return nil, err
		}
		tmp := planPath + ".tmp"
		if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		if err := os.Rename(tmp, planPath); err != nil {
			return nil, err
		}
	}
	for _, name := range cfg.Policies {
		if _, err := PresetSpec(name); err != nil {
			return nil, err
		}
	}

	c := &Campaign{cfg: cfg, dir: dir, st: newState(cfg), resumed: resumed}
	jpath := filepath.Join(dir, "journal.jsonl")
	if resumed {
		from, _ := loadCheckpoint(dir, c.st)
		recovered := 0
		offset, err := replayJournal(jpath, from, func(r record) {
			if c.st.apply(r) {
				recovered++
			}
		})
		if err != nil {
			return nil, err
		}
		c.journalOffset = offset
		cmMetrics.resumedTasks.Add(int64(c.st.nDone))
		_ = recovered
	}
	j, err := openJournal(jpath)
	if err != nil {
		return nil, err
	}
	c.j = j
	return c, nil
}

// Resumed reports whether Open found an existing plan in the directory.
func (c *Campaign) Resumed() bool { return c.resumed }

// Config returns the effective (persisted) configuration.
func (c *Campaign) Config() Config { return c.cfg }

// Done reports how many tasks are already journaled.
func (c *Campaign) Done() int { return c.st.nDone }

// Close releases the journal handle. Run leaves the campaign open so a
// caller can inspect state; Close is idempotent via the OS.
func (c *Campaign) Close() error { return c.j.close() }

// policyCtx is the per-policy runtime: the compiled rocksalt checker
// (safe for concurrent use), the ncval enforcement config and armor
// spec (both pure), the mutator geometry, and the base images.
type policyCtx struct {
	index  int
	name   string
	spec   policy.Spec // normalized
	check  *core.Checker
	nc     ncval.Config
	params faultinject.Params
	bases  [][]byte
}

// buildPolicies compiles each preset, derives the three checkers'
// parameterizations, and generates the policy's base images — each of
// which must be accepted by all three checkers before any mutation
// happens (a divergence on an unmutated image is a finding, but of a
// different kind: it would poison every task, so it fails fast here).
func (c *Campaign) buildPolicies() ([]*policyCtx, error) {
	pcs := make([]*policyCtx, len(c.cfg.Policies))
	for i, name := range c.cfg.Policies {
		spec, err := PresetSpec(name)
		if err != nil {
			return nil, err
		}
		com, err := policy.Compile(spec)
		if err != nil {
			return nil, fmt.Errorf("campaign: compiling %s: %v", name, err)
		}
		check, err := core.NewCheckerFromPolicy(com)
		if err != nil {
			return nil, fmt.Errorf("campaign: building checker for %s: %v", name, err)
		}
		nc, err := ncval.ConfigForSpec(com.Spec)
		if err != nil {
			return nil, fmt.Errorf("campaign: ncval config for %s: %v", name, err)
		}
		prof, err := nacl.ProfileForSpec(com.Spec)
		if err != nil {
			return nil, fmt.Errorf("campaign: generator profile for %s: %v", name, err)
		}
		pc := &policyCtx{
			index:  i,
			name:   name,
			spec:   com.Spec,
			check:  check,
			nc:     nc,
			params: faultinject.ParamsFor(check.PolicyInfo()),
		}
		pc.bases = make([][]byte, c.cfg.Bases)
		for b := range pc.bases {
			gen := nacl.NewGeneratorFor(c.cfg.BaseSeed(i, b), prof, com.SafeGrammar)
			img, err := gen.Random(c.cfg.BaseInstrs)
			if err != nil {
				return nil, fmt.Errorf("campaign: generating base %d for %s: %v", b, name, err)
			}
			if !check.Verify(img) {
				return nil, fmt.Errorf("campaign: %s base %d rejected by rocksalt before mutation", name, b)
			}
			if !pc.nc.Validate(img) {
				return nil, fmt.Errorf("campaign: %s base %d rejected by ncval before mutation", name, b)
			}
			if !armor.VerifyPolicy(img, pc.spec, nil) {
				return nil, fmt.Errorf("campaign: %s base %d rejected by armor before mutation", name, b)
			}
			pc.bases[b] = img
		}
		pcs[i] = pc
	}
	return pcs, nil
}

// Run drives the campaign to completion (or until ctx is cancelled,
// returning the partial result and ctx's error — everything journaled
// so far resumes). The final Result is a pure function of the plan: it
// is folded from the deduplicated journal, so worker scheduling,
// retries and kill/resume cycles cannot change a byte of it.
func (c *Campaign) Run(ctx context.Context) (*Result, error) {
	pcs, err := c.buildPolicies()
	if err != nil {
		return nil, err
	}
	// Watchdog postmortems want the spans of the abandoned task's last
	// attempt, so make sure a flight recorder is live for the run. An
	// embedder's own recorder (already installed) is left in place.
	if c.cfg.PostmortemDir != "" && flight.Active() == nil {
		flight.SetGlobal(flight.NewRecorder(0))
	}

	n := c.cfg.NumTasks()
	ids := make(chan int)
	recs := make(chan record, c.cfg.Workers)
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The feeder skips tasks by the resume-time snapshot of the done
	// bitmap, not the live one: the collector mutates live state
	// concurrently, and the only tasks that finish mid-run are ones the
	// feeder already handed out.
	doneAtStart := append([]uint64(nil), c.st.done...)
	go func() {
		defer close(ids)
		for id := 0; id < n; id++ {
			if doneAtStart[id/64]&(1<<(id%64)) != 0 {
				continue
			}
			select {
			case ids <- id:
			case <-wctx.Done():
				return
			}
		}
	}()

	workerDone := make(chan struct{})
	for w := 0; w < c.cfg.Workers; w++ {
		go func() {
			defer func() { workerDone <- struct{}{} }()
			c.worker(wctx, ids, recs, pcs)
		}()
	}
	go func() {
		for w := 0; w < c.cfg.Workers; w++ {
			<-workerDone
		}
		close(recs)
	}()

	for r := range recs {
		if err := c.j.append(r); err != nil {
			cancel()
			return nil, fmt.Errorf("campaign: journal write failed: %v", err)
		}
		if !c.st.apply(r) {
			continue
		}
		c.journalOffset = -1 // unknown past the replayed prefix; recompute at checkpoint
		c.bumpCounters(r)
		c.sinceCheckpoint++
		if c.sinceCheckpoint >= c.cfg.CheckpointEvery {
			c.snapshot()
		}
	}
	c.snapshot()
	if err := ctx.Err(); err != nil {
		return c.result(), err
	}
	return c.result(), nil
}

// snapshot writes a checkpoint covering everything journaled so far.
func (c *Campaign) snapshot() {
	off := c.journalOffset
	if off < 0 {
		fi, err := os.Stat(filepath.Join(c.dir, "journal.jsonl"))
		if err != nil {
			return
		}
		off = fi.Size()
		c.journalOffset = off
	}
	if writeCheckpoint(c.dir, c.st, off) == nil {
		c.sinceCheckpoint = 0
	}
}

func (c *Campaign) bumpCounters(r record) {
	cmMetrics.tasks.Add(1)
	switch r.Verdict {
	case VerdictKill:
		cmMetrics.kills.Add(1)
	case VerdictAgree:
		cmMetrics.agrees.Add(1)
	case VerdictDisagree:
		cmMetrics.disagrees.Add(1)
	case VerdictEscape:
		cmMetrics.escapes.Add(1)
	case VerdictReferenceFault:
		cmMetrics.faults.Add(1)
	}
}

// executor owns the goroutine that actually runs tasks. The worker
// talks to it through channels so a stuck task can be abandoned: the
// out channel is buffered, so an abandoned executor finishes its task,
// parks its result nobody will read, sees its in channel closed, and
// exits — the leak is bounded to the duration of the stuck task.
type executor struct {
	in  chan int
	out chan record
}

func (c *Campaign) newExecutor(pcs []*policyCtx) *executor {
	e := &executor{in: make(chan int), out: make(chan record, 1)}
	go func() {
		// The simulator harness is not safe for concurrent use, so each
		// executor carries its own per policy.
		hs := make([]*faultinject.Harness, len(pcs))
		for id := range e.in {
			e.out <- c.runTask(id, pcs, hs)
		}
	}()
	return e
}

// worker pulls task IDs, runs each under the watchdog, and forwards
// exactly one record per task. A task that outlives its timeout is
// retried on a fresh executor with linear backoff; after MaxRetries it
// is recorded as a ReferenceFault so the campaign keeps moving.
func (c *Campaign) worker(ctx context.Context, ids <-chan int, recs chan<- record, pcs []*policyCtx) {
	ex := c.newExecutor(pcs)
	defer func() { close(ex.in) }()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for id := range ids {
		var rec record
		got := false
		for attempt := 0; attempt <= c.cfg.MaxRetries && !got; attempt++ {
			if attempt > 0 {
				cmMetrics.retries.Add(1)
				select {
				case <-time.After(time.Duration(attempt) * 100 * time.Millisecond):
				case <-ctx.Done():
					return
				}
			}
			select {
			case ex.in <- id:
			case <-ctx.Done():
				return
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(c.cfg.TaskTimeout)
			select {
			case rec = <-ex.out:
				got = true
			case <-timer.C:
				// Abandon the stuck executor and replace it. Closing in
				// lets it exit once (if ever) the stuck task returns.
				close(ex.in)
				ex = c.newExecutor(pcs)
			case <-ctx.Done():
				return
			}
		}
		if !got {
			rec = record{ID: id, Verdict: VerdictReferenceFault,
				Detail: fmt.Sprintf("watchdog: task exceeded %v on %d attempts", c.cfg.TaskTimeout, c.cfg.MaxRetries+1)}
			c.writeAbandonPostmortem(id, rec, pcs)
		}
		select {
		case recs <- rec:
		case <-ctx.Done():
			return
		}
	}
}

// writeAbandonPostmortem snapshots the flight recorder into a
// postmortem bundle when the watchdog gives up on a task. Best-effort
// by design: the campaign's forward progress never depends on the
// bundle landing, so write errors are swallowed (the journal still
// records the ReferenceFault verdict either way).
func (c *Campaign) writeAbandonPostmortem(id int, rec record, pcs []*policyCtx) {
	if c.cfg.PostmortemDir == "" {
		return
	}
	var spans []flight.Event
	if fr := flight.Active(); fr != nil {
		spans = fr.Snapshot()
	}
	t := c.cfg.TaskFor(id)
	pc := pcs[t.Policy]
	_, _ = flight.WritePostmortem(c.cfg.PostmortemDir, &flight.Postmortem{
		Reason:            "watchdog-abandonment",
		Detail:            rec.Detail,
		File:              fmt.Sprintf("task %d (policy %s, kind %s, base %d)", id, pc.name, t.Kind, t.Base),
		TableBundle:       pc.check.TableBundle(),
		PolicyFingerprint: pc.check.Fingerprint(),
		Spans:             spans,
	})
}

// Test hooks: testNcvalHook substitutes the ncval reference (the fault-
// containment tests install a panicking one), testTaskDelay slows every
// task down (the kill-and-resume test uses it to hold the child process
// mid-campaign without changing any verdict).
var (
	testNcvalHook func(img []byte) bool
	testTaskDelay atomic.Int64 // nanoseconds; atomic because abandoned executors outlive the test that set it
)

// runTask derives the task's mutant and judges it. Any panic — in the
// engine, a reference checker, or the simulator — is contained into a
// ReferenceFault verdict.
func (c *Campaign) runTask(id int, pcs []*policyCtx, hs []*faultinject.Harness) (rec record) {
	if d := testTaskDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	defer func() {
		if p := recover(); p != nil {
			rec = record{ID: id, Verdict: VerdictReferenceFault, Detail: fmt.Sprintf("panic: %v", p)}
		}
	}()
	t := c.cfg.TaskFor(id)
	pc := pcs[t.Policy]
	if hs[t.Policy] == nil {
		hs[t.Policy] = &faultinject.Harness{Checker: pc.check, SimSeeds: c.cfg.SimSeeds, MaxSteps: c.cfg.MaxSteps}
	}
	h := hs[t.Policy]
	mut := faultinject.MutateParams(pc.bases[t.Base], t.Kind, c.cfg.MutSeed(t), pc.params)
	v, detail := c.judge(pc, h, mut, c.armorTurn(id))
	if v == VerdictDisagree || v == VerdictEscape {
		if path, err := c.minimizeAndPersist(pc, h, t, mut, v, detail); err == nil {
			detail += "; repro " + path
		} else {
			detail += "; minimization failed: " + err.Error()
		}
	}
	return record{ID: id, Verdict: v, Detail: detail}
}

// armorTurn deterministically samples which tasks consult the armor
// comparator (see Config.ArmorStride).
func (c *Campaign) armorTurn(id int) bool {
	return id%c.cfg.ArmorStride == 0
}

// judge runs one image through the consulted checkers and, when all
// accept, the escape check. The harness h must belong to pc.
func (c *Campaign) judge(pc *policyCtx, h *faultinject.Harness, img []byte, withArmor bool) (Verdict, string) {
	valid, pairJmp, rep := pc.check.AnalyzeContext(context.Background(), img, core.VerifyOptions{})
	if rep.Interrupted() {
		return VerdictReferenceFault, fmt.Sprintf("rocksalt interrupted: %v", rep.Err())
	}
	rs := rep.Safe

	nc, err := safeBool(func() bool {
		if testNcvalHook != nil {
			return testNcvalHook(img)
		}
		return pc.nc.Validate(img)
	})
	if err != nil {
		return VerdictReferenceFault, "ncval panicked: " + err.Error()
	}
	if nc != rs {
		return VerdictDisagree, fmt.Sprintf("rocksalt=%v ncval=%v", rs, nc)
	}
	if withArmor {
		am, err := safeBool(func() bool { return armor.VerifyPolicy(img, pc.spec, nil) })
		if err != nil {
			return VerdictReferenceFault, "armor panicked: " + err.Error()
		}
		if am != rs {
			return VerdictDisagree, fmt.Sprintf("rocksalt=%v armor=%v", rs, am)
		}
	}
	if !rs {
		return VerdictKill, ""
	}
	for seed := 0; seed < c.cfg.SimSeeds; seed++ {
		if err := h.Contained(img, valid, pairJmp, int64(seed)); err != nil {
			return VerdictEscape, err.Error()
		}
	}
	return VerdictAgree, ""
}

// safeBool runs a reference checker with panic containment.
func safeBool(f func() bool) (v bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	return f(), nil
}

// Result is the campaign's per-policy kill/agree table plus every
// finding, in canonical order (policies in plan order, kinds in enum
// order, findings by task ID), so two runs of the same plan marshal to
// identical bytes.
type Result struct {
	Seed     int64         `json:"seed"`
	Tasks    int           `json:"tasks"`
	Done     int           `json:"done"`
	Policies []PolicyTable `json:"policies"`
	Findings []Finding     `json:"findings,omitempty"`
}

// PolicyTable is one policy's row group.
type PolicyTable struct {
	Policy        string    `json:"policy"`
	Tasks         int64     `json:"tasks"`
	Kills         int64     `json:"kills"`
	Agreements    int64     `json:"agreements"`
	Disagreements int64     `json:"disagreements"`
	Escapes       int64     `json:"escapes"`
	Faults        int64     `json:"faults"`
	Kinds         []KindRow `json:"kinds"`
}

// KindRow is one mutator family's row within a policy.
type KindRow struct {
	Kind          string `json:"kind"`
	Tasks         int64  `json:"tasks"`
	Kills         int64  `json:"kills"`
	Agreements    int64  `json:"agreements"`
	Disagreements int64  `json:"disagreements"`
	Escapes       int64  `json:"escapes"`
	Faults        int64  `json:"faults"`
}

// Finding is one journaled disagreement, escape or fault.
type Finding struct {
	Task    int    `json:"task"`
	Policy  string `json:"policy"`
	Kind    string `json:"kind"`
	Verdict string `json:"verdict"`
	Detail  string `json:"detail,omitempty"`
}

// result folds the state into the canonical Result.
func (c *Campaign) result() *Result {
	res := &Result{Seed: c.cfg.Seed, Tasks: c.cfg.NumTasks(), Done: c.st.nDone}
	for p, name := range c.cfg.Policies {
		pt := PolicyTable{Policy: name}
		for k := 0; k < numKinds; k++ {
			row := KindRow{Kind: faultinject.Kind(k).String()}
			base := (p*numKinds + k) * numVerdicts
			row.Kills = c.st.counts[base+verdictIndex[VerdictKill]]
			row.Agreements = c.st.counts[base+verdictIndex[VerdictAgree]]
			row.Disagreements = c.st.counts[base+verdictIndex[VerdictDisagree]]
			row.Escapes = c.st.counts[base+verdictIndex[VerdictEscape]]
			row.Faults = c.st.counts[base+verdictIndex[VerdictReferenceFault]]
			row.Tasks = row.Kills + row.Agreements + row.Disagreements + row.Escapes + row.Faults
			pt.Kinds = append(pt.Kinds, row)
			pt.Tasks += row.Tasks
			pt.Kills += row.Kills
			pt.Agreements += row.Agreements
			pt.Disagreements += row.Disagreements
			pt.Escapes += row.Escapes
			pt.Faults += row.Faults
		}
		res.Policies = append(res.Policies, pt)
	}
	sort.Slice(c.st.failing, func(i, j int) bool { return c.st.failing[i].ID < c.st.failing[j].ID })
	for _, r := range c.st.failing {
		t := c.cfg.TaskFor(r.ID)
		res.Findings = append(res.Findings, Finding{
			Task:    r.ID,
			Policy:  c.cfg.Policies[t.Policy],
			Kind:    t.Kind.String(),
			Verdict: string(r.Verdict),
			Detail:  r.Detail,
		})
	}
	return res
}

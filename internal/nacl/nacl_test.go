package nacl_test

import (
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/x86"
)

func TestBuilderBundlePacking(t *testing.T) {
	b := nacl.NewBuilder()
	// 30 one-byte instructions, then a 5-byte one: it must be pushed to
	// the next bundle.
	for i := 0; i < 30; i++ {
		b.Inst(x86.Inst{Op: x86.NOP, W: true})
	}
	b.Inst(x86.Inst{Op: x86.MOV, W: true,
		Args: []x86.Operand{x86.RegOp{Reg: x86.EAX}, x86.Imm{Val: 1}}})
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(img)%core.BundleSize != 0 {
		t.Fatal("image must be a whole number of bundles")
	}
	if img[32] != 0xb8 {
		t.Fatalf("5-byte instruction must start the next bundle, got %#x at 32", img[32])
	}
}

func TestBuilderLabelsAndJumps(t *testing.T) {
	b := nacl.NewBuilder()
	b.Label("start")
	b.Inst(x86.Inst{Op: x86.NOP, W: true})
	b.Jmp("start")
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// jmp at offset 1, rel32 = start(0) - (1+5) = -6.
	if img[1] != 0xe9 {
		t.Fatalf("expected e9 at 1, got %#x", img[1])
	}
	rel := int32(uint32(img[2]) | uint32(img[3])<<8 | uint32(img[4])<<16 | uint32(img[5])<<24)
	if rel != -6 {
		t.Fatalf("rel = %d, want -6", rel)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := nacl.NewBuilder()
	b.Jmp("nowhere")
	if _, err := b.Finish(); err == nil {
		t.Fatal("undefined label must be an error")
	}
}

func TestMaskedCallEndsAtBundleBoundary(t *testing.T) {
	b := nacl.NewBuilder()
	b.Inst(x86.Inst{Op: x86.NOP, W: true})
	b.MaskedCall(x86.ECX)
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// The call (last byte of the pair) must end exactly at a 32-byte
	// boundary: find the pair.
	found := false
	for i := 0; i+5 <= len(img); i++ {
		if img[i] == 0x83 && img[i+3] == 0xff && img[i+4] == 0xd1 {
			if (i+5)%core.BundleSize != 0 {
				t.Fatalf("masked call ends at %d, not a bundle boundary", i+5)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("masked call pair not found")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, err := nacl.NewGenerator(5).Random(50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nacl.NewGenerator(5).Random(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("generator must be deterministic per seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator must be deterministic per seed")
		}
	}
}

func TestUnsafeCorpusComplete(t *testing.T) {
	corpus := nacl.UnsafeCorpus()
	if len(corpus) != int(nacl.NumUnsafeKinds) {
		t.Fatalf("corpus has %d entries, want %d", len(corpus), nacl.NumUnsafeKinds)
	}
	for name, img := range corpus {
		if len(img) == 0 || len(img)%core.BundleSize != 0 {
			t.Errorf("unsafe image %q has bad size %d", name, len(img))
		}
	}
}

func TestGeneratedImageSizes(t *testing.T) {
	gen := nacl.NewGenerator(9)
	img, err := gen.Random(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) < 1000 { // at least one byte per instruction
		t.Fatalf("image too small: %d", len(img))
	}
	if len(img)%core.BundleSize != 0 {
		t.Fatal("image must be bundle aligned")
	}
}

// Package nacl is the sandboxing toolchain substitute: where the paper
// uses NaCl's modified GCC to produce compliant binaries (and Csmith to
// generate test programs), this package assembles code images that obey
// the aligned sandbox policy — instructions packed into 32-byte bundles,
// computed jumps preceded by the AND mask, direct jumps to instruction
// boundaries — plus a corpus of deliberately violating images for
// negative testing.
package nacl

import (
	"fmt"
	"math/rand"

	"rocksalt/internal/core"
	"rocksalt/internal/grammar"
	"rocksalt/internal/policy"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/encode"
)

// Profile captures the image-layout conventions of one compiled policy
// — everything the builder and generator need to emit compliant code
// for it: the bundle size and the encoding of the masked jump/call
// pair. The zero-value-free constructors are NaClProfile (the default
// 32-byte policy) and ProfileForSpec (any normalized policy.Spec).
type Profile struct {
	// Name labels the profile (matches the spec name).
	Name string
	// Bundle is the alignment quantum in bytes.
	Bundle int
	// Regs are the maskable registers (the generator draws jump
	// registers from these).
	Regs []x86.Reg
	// Pair encodes the masked AND+JMP (or AND+CALL) sequence through r.
	Pair func(r x86.Reg, call bool) []byte
}

// NaClProfile is the default 32-byte-bundle NaCl profile.
func NaClProfile() Profile {
	return Profile{
		Name:   "nacl-32",
		Bundle: core.BundleSize,
		Regs:   maskableRegs([]x86.Reg{x86.ESP}),
		Pair:   naclPair,
	}
}

// ProfileForSpec derives the builder/generator conventions from a
// policy spec (normalized first, so presets and hand-written specs both
// work).
func ProfileForSpec(s policy.Spec) (Profile, error) {
	norm, err := s.Normalize()
	if err != nil {
		return Profile{}, err
	}
	imm := norm.MaskImm()
	width32 := norm.MaskWidth == 32
	regs := norm.MaskRegisters()
	return Profile{
		Name:   norm.Name,
		Bundle: norm.BundleSize,
		Regs:   regs,
		Pair: func(r x86.Reg, call bool) []byte {
			modrm := byte(0xe0) // /4 = jmp
			if call {
				modrm = 0xd0 // /2 = call
			}
			if width32 {
				return []byte{0x81, 0xe0 | byte(r),
					byte(imm), byte(imm >> 8), byte(imm >> 16), byte(imm >> 24),
					0xff, modrm | byte(r)}
			}
			return []byte{0x83, 0xe0 | byte(r), byte(imm), 0xff, modrm | byte(r)}
		},
	}, nil
}

// maskableRegs returns the GP registers in encoding order minus the
// scratch set.
func maskableRegs(scratch []x86.Reg) []x86.Reg {
	var out []x86.Reg
	for r := x86.EAX; r <= x86.EDI; r++ {
		skip := false
		for _, s := range scratch {
			if r == s {
				skip = true
			}
		}
		if !skip {
			out = append(out, r)
		}
	}
	return out
}

// Builder assembles a policy-compliant code image (NaCl's 32-byte
// bundles by default; see NewBuilderProfile for other policies).
type Builder struct {
	prof   Profile
	buf    []byte
	labels map[string]int
	fixups []fixup
	err    error
}

type fixup struct {
	at    int // offset of the rel32 field
	label string
}

// NewBuilder returns an empty image builder for the default NaCl
// profile.
func NewBuilder() *Builder {
	return NewBuilderProfile(NaClProfile())
}

// NewBuilderProfile returns an empty image builder emitting code under
// the given policy profile.
func NewBuilderProfile(p Profile) *Builder {
	return &Builder{prof: p, labels: make(map[string]int)}
}

// Len returns the current image size.
func (b *Builder) Len() int { return len(b.buf) }

// padTo pads with NOPs so the next instruction starts exactly at off.
func (b *Builder) padTo(off int) {
	if off < len(b.buf) {
		b.err = fmt.Errorf("nacl: cannot pad backwards to %#x", off)
		return
	}
	b.buf = append(b.buf, encode.NopPad(off-len(b.buf))...)
}

// fit pads to the next bundle when n more bytes would cross a bundle
// boundary (the policy requires every bundle-size-th byte to start an
// instruction).
func (b *Builder) fit(n int) {
	rem := b.prof.Bundle - len(b.buf)%b.prof.Bundle
	if n > rem {
		b.padTo(len(b.buf) + rem)
	}
}

// Raw appends pre-encoded instruction bytes as one unit, keeping it
// within a bundle.
func (b *Builder) Raw(code []byte) {
	b.fit(len(code))
	b.buf = append(b.buf, code...)
}

// Inst encodes and appends one instruction.
func (b *Builder) Inst(i x86.Inst) {
	code, err := encode.Encode(i)
	if err != nil && b.err == nil {
		b.err = err
		return
	}
	b.Raw(code)
}

// Label defines a label at the current position (an instruction start).
func (b *Builder) Label(name string) {
	b.labels[name] = len(b.buf)
}

// AlignBundle pads to the next bundle boundary (no-op when already
// aligned). Jump targets for computed jumps must be bundle-aligned.
func (b *Builder) AlignBundle() {
	if rem := len(b.buf) % b.prof.Bundle; rem != 0 {
		b.padTo(len(b.buf) + b.prof.Bundle - rem)
	}
}

// MaskedJump emits the two-instruction nacljmp sequence through r
// (AND r, mask; JMP r), as one unit within a bundle.
func (b *Builder) MaskedJump(r x86.Reg) {
	b.Raw(b.prof.Pair(r, false))
}

// MaskedCall emits AND r, mask; CALL r. The call is placed so that it
// ends exactly at a bundle boundary, making the return address
// bundle-aligned (the NaCl convention for returns, which replace RET).
func (b *Builder) MaskedCall(r x86.Reg) {
	pair := b.prof.Pair(r, true)
	want := b.prof.Bundle - len(pair) // start offset within the bundle
	pos := len(b.buf) % b.prof.Bundle
	if pos > want {
		b.AlignBundle()
		pos = 0
	}
	b.padTo(len(b.buf) + want - pos)
	b.buf = append(b.buf, pair...)
}

func naclPair(r x86.Reg, call bool) []byte {
	modrm := byte(0xe0) // /4 = jmp
	if call {
		modrm = 0xd0 // /2 = call
	}
	return []byte{0x83, 0xe0 | byte(r), core.SafeMask, 0xff, modrm | byte(r)}
}

// Jmp emits a direct jump to a label (rel32 form, patched at Finish).
func (b *Builder) Jmp(label string) {
	b.fit(5)
	b.buf = append(b.buf, 0xe9, 0, 0, 0, 0)
	b.fixups = append(b.fixups, fixup{at: len(b.buf) - 4, label: label})
}

// Jcc emits a conditional direct jump to a label (0F 8x rel32).
func (b *Builder) Jcc(c x86.Cond, label string) {
	b.fit(6)
	b.buf = append(b.buf, 0x0f, 0x80|byte(c), 0, 0, 0, 0)
	b.fixups = append(b.fixups, fixup{at: len(b.buf) - 4, label: label})
}

// Call emits a direct call to a label.
func (b *Builder) Call(label string) {
	b.fit(5)
	b.buf = append(b.buf, 0xe8, 0, 0, 0, 0)
	b.fixups = append(b.fixups, fixup{at: len(b.buf) - 4, label: label})
}

// CallAligned emits a direct call padded so it ends exactly at a bundle
// boundary: the pushed return address is then bundle-aligned, satisfying
// checkers running with AlignedCalls.
func (b *Builder) CallAligned(label string) {
	const n = 5 // e8 rel32
	want := b.prof.Bundle - n
	pos := len(b.buf) % b.prof.Bundle
	if pos > want {
		b.AlignBundle()
		pos = 0
	}
	b.padTo(len(b.buf) + want - pos)
	b.Call(label)
}

// Finish resolves fixups, pads the image to a whole number of bundles,
// and returns the code image.
func (b *Builder) Finish() ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.AlignBundle()
	for _, f := range b.fixups {
		t, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("nacl: undefined label %q", f.label)
		}
		rel := int32(t - (f.at + 4))
		b.buf[f.at] = byte(rel)
		b.buf[f.at+1] = byte(rel >> 8)
		b.buf[f.at+2] = byte(rel >> 16)
		b.buf[f.at+3] = byte(rel >> 24)
	}
	return b.buf, nil
}

// Generator produces random compliant images, the stand-in for the
// paper's Csmith + NaCl-GCC pipeline. Instruction bytes are drawn from
// the checker's own NoControlFlow grammar (so they are definitionally
// legal instructions), interleaved with masked jumps and direct jumps to
// bundle boundaries.
type Generator struct {
	prof    Profile
	rng     *rand.Rand
	sampler *grammar.Sampler
	safe    *grammar.Grammar
}

// NewGenerator creates a generator with the given seed for the default
// NaCl policy.
func NewGenerator(seed int64) *Generator {
	return NewGeneratorFor(seed, NaClProfile(), core.NoControlFlowGrammar())
}

// NewGeneratorFor creates a generator emitting images compliant with an
// arbitrary compiled policy: the profile supplies the layout
// conventions and safe is the policy's own NoControlFlow grammar
// (policy.Compiled.SafeGrammar), so sampled instruction bytes are
// definitionally legal under that policy.
func NewGeneratorFor(seed int64, prof Profile, safe *grammar.Grammar) *Generator {
	rng := rand.New(rand.NewSource(seed))
	return &Generator{
		prof:    prof,
		rng:     rng,
		sampler: grammar.NewSampler(rng),
		safe:    safe,
	}
}

// Random produces a compliant image containing roughly n instructions.
func (g *Generator) Random(n int) ([]byte, error) {
	b := NewBuilderProfile(g.prof)
	bundles := 1
	for i := 0; i < n; i++ {
		switch r := g.rng.Intn(100); {
		case r < 82:
			code, _, ok := g.sampler.SampleBytes(g.safe, 8)
			if !ok {
				return nil, fmt.Errorf("nacl: sampling safe instruction failed")
			}
			b.Raw(code)
		case r < 90:
			reg := g.prof.Regs[g.rng.Intn(len(g.prof.Regs))]
			b.MaskedJump(reg)
		case r < 96:
			// Direct jump to a random bundle boundary (bundle starts are
			// always instruction starts).
			label := fmt.Sprintf("b%d", g.rng.Intn(bundles))
			if g.rng.Intn(2) == 0 {
				b.Jmp(label)
			} else {
				b.Jcc(x86.Cond(g.rng.Intn(16)), label)
			}
		default:
			b.AlignBundle()
		}
		// Define a label at every bundle boundary we cross.
		for len(b.buf)/g.prof.Bundle >= bundles {
			b.Label(fmt.Sprintf("b%d", bundles))
			// Labels at bundle starts require the boundary to be an
			// instruction start, which the builder guarantees.
			bundles++
		}
	}
	// Backstop label targets: define any missing bundle labels at the end.
	b.AlignBundle()
	for i := 0; i <= bundles; i++ {
		name := fmt.Sprintf("b%d", i)
		if _, ok := b.labels[name]; !ok {
			b.Label(name)
		}
	}
	// The final position may be referenced; make it a real boundary with
	// one more bundle of nops.
	b.Raw(encode.NopPad(g.prof.Bundle))
	return b.Finish()
}

// UnsafeKind enumerates the hand-crafted violation categories.
type UnsafeKind int

// Violation categories, mirroring the attacks the policy must stop.
const (
	BareIndirectJump UnsafeKind = iota
	Syscall
	SoftwareInterrupt
	StraddlingBoundary
	JumpIntoInstruction
	JumpOverMask
	JumpOutOfImage
	SegmentWrite
	SegmentOverride
	FarCall
	PrivilegedHalt
	MaskWrongRegister
	MaskedPairSplit
	ReturnInstruction
	UndefinedInstruction
	NumUnsafeKinds
)

var unsafeNames = [...]string{
	"bare-indirect-jump", "syscall", "software-interrupt",
	"straddling-boundary", "jump-into-instruction", "jump-over-mask",
	"jump-out-of-image", "segment-write", "segment-override", "far-call",
	"privileged-halt", "mask-wrong-register", "masked-pair-split",
	"return-instruction", "undefined-instruction",
}

func (k UnsafeKind) String() string { return unsafeNames[k] }

// Unsafe builds a hand-crafted image exhibiting the given violation; all
// of them must be rejected by a correct checker.
func Unsafe(kind UnsafeKind) []byte {
	pad := func(code ...byte) []byte {
		out := append([]byte{}, code...)
		for len(out)%core.BundleSize != 0 {
			out = append(out, 0x90)
		}
		return out
	}
	switch kind {
	case BareIndirectJump:
		return pad(0xff, 0xe0) // jmp eax without mask
	case Syscall:
		return pad(0xcd, 0x80) // int 0x80
	case SoftwareInterrupt:
		return pad(0xcc) // int3
	case StraddlingBoundary:
		// 30 nops, then a 5-byte mov eax imm straddling offset 32.
		img := make([]byte, 0, 64)
		for i := 0; i < 30; i++ {
			img = append(img, 0x90)
		}
		img = append(img, 0xb8, 0x01, 0x02, 0x03, 0x04)
		return pad(img...)
	case JumpIntoInstruction:
		// jmp +3 lands inside the following 5-byte mov.
		return pad(0xeb, 0x03, 0xb8, 0x00, 0x00, 0x00, 0x00)
	case JumpOverMask:
		// Direct jump targeting the jmp of a masked pair (offset 5... the
		// pair starts at 2, so its jump half is at 5).
		return pad(0xeb, 0x03, 0x83, 0xe0, 0xe0, 0xff, 0xe0)
	case JumpOutOfImage:
		return pad(0xe9, 0x00, 0x10, 0x00, 0x00) // jmp far beyond the image
	case SegmentWrite:
		return pad(0x8e, 0xd8) // mov ds, eax
	case SegmentOverride:
		return pad(0x64, 0x8b, 0x00) // mov eax, fs:[eax]
	case FarCall:
		return pad(0x9a, 0, 0, 0, 0, 0x23, 0x00) // call 0023:0
	case PrivilegedHalt:
		return pad(0xf4)
	case MaskWrongRegister:
		// Mask EAX but jump through ECX.
		return pad(0x83, 0xe0, 0xe0, 0xff, 0xe1)
	case MaskedPairSplit:
		// Mask and jump separated by a nop: the pair grammar must not
		// match, and the bare jump is illegal.
		return pad(0x83, 0xe0, 0xe0, 0x90, 0xff, 0xe0)
	case ReturnInstruction:
		return pad(0xc3)
	case UndefinedInstruction:
		return pad(0x0f, 0x0b) // ud2
	}
	panic("nacl: unknown unsafe kind")
}

// UnsafeCorpus returns every hand-crafted violating image with its name.
func UnsafeCorpus() map[string][]byte {
	out := make(map[string][]byte, NumUnsafeKinds)
	for k := UnsafeKind(0); k < NumUnsafeKinds; k++ {
		out[k.String()] = Unsafe(k)
	}
	return out
}

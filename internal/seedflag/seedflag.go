// Package seedflag unifies -seed handling across the CLIs that generate
// or mutate deterministic workloads (cmd/x86fuzz, cmd/naclgen, the
// campaign runner in cmd/experiments). Every tool registers the flag
// through Register so the name, default and help text never drift, and
// every run both prints its seed and embeds it in the artifacts it
// writes — a run is reproducible from its own output alone, without the
// shell history that launched it.
package seedflag

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
)

// Default is the seed every tool starts from when -seed is not given.
// Keeping one shared default means "the" reference run of any tool is
// the unflagged invocation.
const Default = 1

// Register installs the shared -seed flag on fs and returns the value
// pointer. Call before fs.Parse.
func Register(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", Default,
		"deterministic seed; printed and embedded in artifacts so runs reproduce from their output alone")
}

// Announce prints the canonical one-line seed banner for a tool. Tools
// call it immediately after flag parsing so the seed is on record even
// when the run later fails.
func Announce(w io.Writer, tool string, seed int64) {
	fmt.Fprintf(w, "%s: seed %d\n", tool, seed)
}

// Meta is the sidecar metadata embedded beside artifacts that are not
// themselves JSON (e.g. naclgen's raw .bin images): the tool, its seed,
// and any tool-specific fields needed to regenerate the artifact.
type Meta struct {
	Tool  string         `json:"tool"`
	Seed  int64          `json:"seed"`
	Extra map[string]any `json:"extra,omitempty"`
}

// MarshalMeta renders a Meta as indented JSON with a trailing newline,
// ready to write next to the artifact it describes.
func MarshalMeta(tool string, seed int64, extra map[string]any) ([]byte, error) {
	data, err := json.MarshalIndent(Meta{Tool: tool, Seed: seed, Extra: extra}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

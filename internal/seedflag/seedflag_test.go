package seedflag

import (
	"bytes"
	"encoding/json"
	"flag"
	"testing"
)

func TestRegisterDefaultAndParse(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	seed := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *seed != Default {
		t.Fatalf("unflagged seed = %d, want Default (%d)", *seed, Default)
	}

	fs2 := flag.NewFlagSet("tool", flag.ContinueOnError)
	seed2 := Register(fs2)
	if err := fs2.Parse([]string{"-seed", "42"}); err != nil {
		t.Fatal(err)
	}
	if *seed2 != 42 {
		t.Fatalf("-seed 42 parsed as %d", *seed2)
	}
}

func TestAnnounceFormat(t *testing.T) {
	var buf bytes.Buffer
	Announce(&buf, "naclgen", 7)
	if got, want := buf.String(), "naclgen: seed 7\n"; got != want {
		t.Fatalf("Announce wrote %q, want %q", got, want)
	}
}

func TestMarshalMetaRoundTrip(t *testing.T) {
	data, err := MarshalMeta("naclgen", 9, map[string]any{"n": 200})
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("meta JSON missing trailing newline")
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Tool != "naclgen" || m.Seed != 9 || m.Extra["n"] != float64(200) {
		t.Fatalf("round-trip mismatch: %+v", m)
	}
}

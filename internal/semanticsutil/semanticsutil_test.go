package semanticsutil_test

import (
	"math/rand"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/grammar"
	"rocksalt/internal/semanticsutil"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
	"rocksalt/internal/x86/machine"
	"rocksalt/internal/x86/semantics"
)

func TestNoSegmentWritesOnMov(t *testing.T) {
	prog, err := semantics.Translate(x86.Inst{Op: x86.MOV, W: true,
		Args: []x86.Operand{x86.RegOp{Reg: x86.EAX}, x86.Imm{Val: 1}}}, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !semanticsutil.NoSegmentWrites(prog) {
		t.Fatal("plain mov writes no segments")
	}
	// mov ds, eax does.
	prog, err = semantics.Translate(x86.Inst{Op: x86.MOV, W: true,
		Args: []x86.Operand{x86.SegOp{Seg: x86.DS}, x86.RegOp{Reg: x86.EAX}}}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if semanticsutil.NoSegmentWrites(prog) {
		t.Fatal("mov ds, eax must be flagged")
	}
}

func TestFallThroughOnly(t *testing.T) {
	prog, err := semantics.Translate(x86.Inst{Op: x86.ADD, W: true,
		Args: []x86.Operand{x86.RegOp{Reg: x86.EAX}, x86.RegOp{Reg: x86.EBX}}}, 0x100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !semanticsutil.FallThroughOnly(prog, 0x102) {
		t.Fatal("add must fall through")
	}
	if semanticsutil.FallThroughOnly(prog, 0x999) {
		t.Fatal("wrong next must fail")
	}
	// A jump does not fall through.
	prog, err = semantics.Translate(x86.Inst{Op: x86.JMP, W: true, Rel: true,
		Args: []x86.Operand{x86.Imm{Val: 0x10}}}, 0x100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if semanticsutil.FallThroughOnly(prog, 0x102) {
		t.Fatal("jmp must not count as fall-through")
	}
}

func TestPCWritesConfined(t *testing.T) {
	// rep movsb: PC either stays or advances.
	prog, err := semantics.Translate(x86.Inst{Op: x86.MOVS, W: false,
		Prefix: x86.Prefix{Rep: true}}, 0x100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !semanticsutil.PCWritesConfined(prog, map[uint32]bool{0x100: true, 0x102: true}) {
		t.Fatal("rep movs PC must be confined to {self, next}")
	}
	if semanticsutil.PCWritesConfined(prog, map[uint32]bool{0x102: true}) {
		t.Fatal("rep movs can stay on itself; {next} alone must fail")
	}
}

// TestSafeInstructionsSatisfyVCs is the whole-class version of the
// paper's property (1): every instruction the NoControlFlow grammar can
// produce translates to RTL without segment writes.
func TestSafeInstructionsSatisfyVCs(t *testing.T) {
	s := grammar.NewSampler(rand.New(rand.NewSource(17)))
	g := core.NoControlFlowGrammar()
	dec := decode.NewDecoder()
	trials := 2000
	if testing.Short() {
		trials = 200
	}
	for i := 0; i < trials; i++ {
		bs, _, ok := s.SampleBytes(g, 4)
		if !ok {
			t.Fatal("sample failed")
		}
		inst, n, err := dec.Decode(bs)
		if err != nil {
			t.Fatalf("% x: %v", bs, err)
		}
		prog, err := semantics.Translate(inst, 0x1000, n)
		if err != nil {
			t.Fatalf("translate %v: %v", inst, err)
		}
		if !semanticsutil.NoSegmentWrites(prog) {
			t.Fatalf("safe instruction %v writes a segment register", inst)
		}
	}
}

func TestWritesLocAndMemWriteCount(t *testing.T) {
	prog, err := semantics.Translate(x86.Inst{Op: x86.PUSH, W: true,
		Args: []x86.Operand{x86.RegOp{Reg: x86.EAX}}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !semanticsutil.WritesLoc(prog, machine.RegLoc(x86.ESP)) {
		t.Fatal("push must write ESP")
	}
	if semanticsutil.WritesLoc(prog, machine.RegLoc(x86.EBX)) {
		t.Fatal("push must not write EBX")
	}
	if got := semanticsutil.MemWriteCount(prog); got != 4 {
		t.Fatalf("push stores %d bytes, want 4", got)
	}
}

// Package semanticsutil provides syntactic analyses over RTL terms:
// the per-instruction "verification conditions" that connect the
// generated RTL to the sandbox policy (the paper's §4 properties (1)
// and (3)). They are used by the armor-style verifier and by the test
// suite that checks the same properties across the whole NoControlFlow
// instruction class.
package semanticsutil

import (
	"rocksalt/internal/rtl"
	"rocksalt/internal/x86/machine"
)

// NoSegmentWrites reports whether the RTL term never writes a segment
// selector, base, or limit — the paper's property (1) for non-control-
// flow instructions.
func NoSegmentWrites(prog []rtl.Instr) bool {
	for _, ins := range prog {
		set, ok := ins.(rtl.SetLoc)
		if !ok {
			continue
		}
		switch set.Loc.(type) {
		case machine.SegSelLoc, machine.SegBaseLoc, machine.SegLimitLoc:
			return false
		}
	}
	return true
}

// FallThroughOnly reports whether every PC write in the term is the
// constant next — the paper's property (3): after executing a
// non-control-flow instruction the PC is the old PC plus the length.
// The check is syntactic: the PC must be assigned from a variable whose
// definition chain is the literal `next` (possibly through casts).
func FallThroughOnly(prog []rtl.Instr, next uint32) bool {
	// Track variables holding the literal `next` (through casts).
	isNext := map[rtl.Var]bool{}
	sawPCWrite := false
	for _, ins := range prog {
		switch i := ins.(type) {
		case rtl.LoadImm:
			if i.Val.Width() == 32 && uint32(i.Val.Uint64()) == next {
				isNext[i.Dst] = true
			} else {
				delete(isNext, i.Dst)
			}
		case rtl.CastU:
			if isNext[i.Src] && i.Width == 32 {
				isNext[i.Dst] = true
			} else {
				delete(isNext, i.Dst)
			}
		case rtl.CastS:
			if isNext[i.Src] && i.Width == 32 {
				isNext[i.Dst] = true
			} else {
				delete(isNext, i.Dst)
			}
		case rtl.SetLoc:
			if _, isPC := i.Loc.(machine.PCLoc); isPC {
				sawPCWrite = true
				if !isNext[i.Src] {
					return false
				}
			}
		}
	}
	return sawPCWrite
}

// TrapsUnconditionally reports whether the term contains an unconditional
// Trap: execution can never complete, so the instruction is a safe halt
// regardless of its PC behavior.
func TrapsUnconditionally(prog []rtl.Instr) bool {
	for _, ins := range prog {
		if _, ok := ins.(rtl.Trap); ok {
			return true
		}
	}
	return false
}

// PCWritesConfined reports whether every PC write in the term stores a
// value provably in the allowed set: a literal member, a cast of one, or
// a Mux whose both arms are confined. It is the relaxed property (3) for
// REP-style instructions, whose PC either advances or stays put.
func PCWritesConfined(prog []rtl.Instr, allowed map[uint32]bool) bool {
	confined := map[rtl.Var]bool{}
	sawPCWrite := false
	for _, ins := range prog {
		switch i := ins.(type) {
		case rtl.LoadImm:
			confined[i.Dst] = i.Val.Width() == 32 && allowed[uint32(i.Val.Uint64())]
		case rtl.CastU:
			confined[i.Dst] = confined[i.Src] && i.Width == 32
		case rtl.CastS:
			confined[i.Dst] = confined[i.Src] && i.Width == 32
		case rtl.Mux:
			confined[i.Dst] = confined[i.A] && confined[i.B]
		case rtl.SetLoc:
			if _, isPC := i.Loc.(machine.PCLoc); isPC {
				sawPCWrite = true
				if !confined[i.Src] {
					return false
				}
			}
		}
	}
	return sawPCWrite
}

// WritesLoc reports whether the term writes the given location.
func WritesLoc(prog []rtl.Instr, loc rtl.Loc) bool {
	for _, ins := range prog {
		if set, ok := ins.(rtl.SetLoc); ok && set.Loc == loc {
			return true
		}
	}
	return false
}

// MemWriteCount counts the byte stores in the term.
func MemWriteCount(prog []rtl.Instr) int {
	n := 0
	for _, ins := range prog {
		if _, ok := ins.(rtl.StoreMem); ok {
			n++
		}
	}
	return n
}

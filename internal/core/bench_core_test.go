package core_test

import (
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/ncval"
)

var bigImg []byte

func getBig(b *testing.B) []byte {
	if bigImg == nil {
		img, err := nacl.NewGenerator(3).Random(120000)
		if err != nil {
			b.Fatal(err)
		}
		bigImg = img
	}
	return bigImg
}

func BenchmarkVerifyBig(b *testing.B) {
	img := getBig(b)
	c, _ := core.NewChecker()
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Verify(img) {
			b.Fatal("rejected")
		}
	}
}

func BenchmarkNcvalBig(b *testing.B) {
	img := getBig(b)
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ncval.Validate(img) {
			b.Fatal("rejected")
		}
	}
}

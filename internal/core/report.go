package core

import "fmt"

// This file is the structured diagnostic channel of the verification
// engine. The sequential checker used to surface violations as
// fmt.Errorf strings produced in discovery order; the sharded engine
// instead collects every violation as a typed Violation and reconciles
// them into a Report whose first entry is the canonical lowest-offset
// violation — the same one no matter how many workers ran stage 1.

// ViolationKind classifies a sandbox-policy violation. The ordinal
// doubles as the tie-break priority when two violations share a byte
// offset (lower ordinal wins), so the merged report is deterministic.
type ViolationKind uint8

const (
	// IllegalInstruction: no policy grammar matches at a position the
	// parse reached (an undecodable or forbidden instruction sequence).
	IllegalInstruction ViolationKind = iota
	// TargetOutOfImage: a direct jump's destination lies outside the
	// image and is not a whitelisted trampoline entry.
	TargetOutOfImage
	// MisalignedCall (AlignedCalls checkers only): a call does not end
	// exactly at a bundle boundary, so its return address is unaligned.
	MisalignedCall
	// TargetNotBoundary: a direct jump targets the interior of an
	// instruction rather than an instruction boundary.
	TargetNotBoundary
	// BundleStraddle: a 32-byte bundle boundary is not an instruction
	// boundary (an instruction straddles it, or the parse never reached
	// it).
	BundleStraddle
	// InternalFault: a stage-1 shard worker panicked. The checker fails
	// closed — a run that faulted internally can never report Safe — and
	// the recovered panic value and goroutine stack ride along in Detail
	// and Stack for diagnostics.
	InternalFault
)

// NumViolationKinds is the number of violation kinds; Stats uses it to
// size its per-kind census array.
const NumViolationKinds = int(InternalFault) + 1

var kindNames = [...]string{
	"illegal instruction sequence",
	"direct jump out of image",
	"misaligned call return address",
	"jump into instruction interior",
	"bundle boundary inside instruction",
	"internal fault in verifier",
}

func (k ViolationKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("ViolationKind(%d)", uint8(k))
}

// windowBytes is how much code context a Violation carries.
const windowBytes = 8

// Violation is one structured policy violation. It implements error, so
// the legacy (bool, error) entry points keep working unchanged.
type Violation struct {
	// Offset is the byte offset the violation is attributed to: the
	// instruction start for parse failures, the destination for target
	// violations, the boundary for bundle violations, and the end of
	// the offending call for alignment violations.
	Offset int
	Kind   ViolationKind
	// Window holds up to 8 code bytes starting at Offset (empty when
	// Offset is at the end of the image).
	Window []byte
	// Detail is a human-readable elaboration (e.g. the jump target).
	Detail string
	// Stack is the recovered goroutine stack for InternalFault
	// violations; empty otherwise.
	Stack string
}

func (v *Violation) Error() string {
	s := fmt.Sprintf("core: %s at offset %#x", v.Kind, v.Offset)
	if v.Detail != "" {
		s += ": " + v.Detail
	}
	if len(v.Window) > 0 {
		s += fmt.Sprintf(" [bytes % x]", v.Window)
	}
	return s
}

// MaxReportViolations caps the diagnostics retained in a Report. A
// thoroughly garbage image would otherwise yield one violation per
// bundle boundary; Total still counts them all.
const MaxReportViolations = 64

// Outcome classifies how a verification run ended. Only OutcomeSafe
// pairs with Safe == true; an interrupted run (canceled or past its
// deadline) is never Safe, so callers that only look at the boolean
// still fail closed.
type Outcome uint8

const (
	// OutcomeSafe: the run completed and the image satisfies the policy.
	OutcomeSafe Outcome = iota
	// OutcomeRejected: the run completed and found violations (including
	// the fail-closed InternalFault conversion of a worker panic).
	OutcomeRejected
	// OutcomeCanceled: the context was canceled before the run finished;
	// no verdict was reached and Violations is empty.
	OutcomeCanceled
	// OutcomeDeadline: the context deadline expired before the run
	// finished; no verdict was reached and Violations is empty.
	OutcomeDeadline
)

var outcomeNames = [...]string{"safe", "rejected", "canceled", "deadline exceeded"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Report is the structured outcome of a verification run.
type Report struct {
	// Safe is the verdict: true exactly when the image satisfies the
	// aligned sandbox policy. Interrupted runs are never Safe.
	Safe bool
	// Outcome distinguishes a completed verdict from an interrupted run.
	Outcome Outcome
	// Size is the image size in bytes.
	Size int
	// Shards is the number of stage-1 shards the image was split into.
	Shards int
	// Workers is the number of workers that executed stage 1.
	Workers int
	// Violations is sorted by (Offset, Kind) and capped at
	// MaxReportViolations; Violations[0] is the canonical first
	// violation, identical for sequential and parallel runs.
	Violations []Violation
	// Total is the number of violations found (>= len(Violations)).
	Total int
	// Stats is the per-run engine record: bytes, bundles, instruction
	// boundaries, shard parse modes, per-stage wall times and the
	// uncapped per-kind violation census. All fields except the wall
	// times are deterministic for a given image and engine — identical
	// under any worker count (Stats.Counters compares that subset).
	// For an interrupted run Stats is partial: the stage-1 facts are
	// present, reconciliation-derived counts are zero.
	Stats Stats
	// CacheKey is the whole-image content key of a cached run (hex), or
	// "" when the run had no cache attached. Passing it back as
	// VerifyOptions.CacheKey for the same checker and bytes turns the
	// next verification into a single lookup with no hashing pass.
	CacheKey string
	// ctxErr is the context error that interrupted the run (nil for a
	// completed run); surfaced through Err.
	ctxErr error
}

// Interrupted reports whether the run stopped before reaching a verdict
// because its context was canceled or its deadline expired. Interrupted
// reports carry no violations: the partial stage-1 results are
// discarded rather than presented as a (nondeterministic) diagnosis.
func (r *Report) Interrupted() bool {
	return r.Outcome == OutcomeCanceled || r.Outcome == OutcomeDeadline
}

// First returns the canonical (lowest-offset) violation, or nil for a
// safe image.
func (r *Report) First() *Violation {
	if len(r.Violations) == 0 {
		return nil
	}
	return &r.Violations[0]
}

// Err returns nil for a safe image, the context error for an
// interrupted run, and the first violation otherwise.
func (r *Report) Err() error {
	if r.ctxErr != nil {
		return r.ctxErr
	}
	if v := r.First(); v != nil {
		return v
	}
	return nil
}

// violation builds a Violation carrying a window of code bytes.
func violation(code []byte, off int, kind ViolationKind, detail string) Violation {
	v := Violation{Offset: off, Kind: kind, Detail: detail}
	if off >= 0 && off < len(code) {
		w := off + windowBytes
		if w > len(code) {
			w = len(code)
		}
		v.Window = append([]byte(nil), code[off:w]...)
	}
	return v
}

package core_test

import (
	"bytes"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/flight"
	"rocksalt/internal/nacl"
	"rocksalt/internal/telemetry"
)

// TestVerifyZeroAlloc pins the steady-state allocation behaviour of the
// hot path: after one warm-up call (which populates the scratch pool),
// Checker.Verify must not touch the heap, for a single-bundle image and
// for a 100-bundle one. A regression here usually means a closure or a
// Report snuck back into the lean path.
//
// The bound is checked across two independent observability axes:
// telemetry disabled/enabled, and flight recorder uninstalled/
// installed. Every combination must be exactly zero. Telemetry-on is
// atomic adds on stack Stats; recorder-on records spans into a
// preallocated seqlock ring, so neither instrumentation layer may
// touch the heap on the hot path — that is the "zero-overhead"
// contract.
func TestVerifyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the bound only holds in normal builds")
	}
	c := checker(t)
	images := []struct {
		name string
		img  []byte
	}{
		{"1 bundle", bytes.Repeat([]byte{0x90}, core.BundleSize)},
		{"100 bundles", bytes.Repeat([]byte{0x90}, 100*core.BundleSize)},
	}
	for _, enabled := range []bool{false, true} {
		for _, recorder := range []bool{false, true} {
			name := "telemetry=off"
			if enabled {
				name = "telemetry=on"
			}
			if recorder {
				name += "/recorder=on"
			} else {
				name += "/recorder=off"
			}
			t.Run(name, func(t *testing.T) {
				prev := telemetry.Enabled()
				telemetry.SetEnabled(enabled)
				defer telemetry.SetEnabled(prev)
				if recorder {
					flight.SetGlobal(flight.NewRecorder(0))
				}
				defer flight.SetGlobal(nil)
				for _, tc := range images {
					t.Run(tc.name, func(t *testing.T) {
						if !c.Verify(tc.img) {
							t.Fatal("NOP image must verify")
						}
						allocs := testing.AllocsPerRun(100, func() {
							c.Verify(tc.img)
						})
						if allocs != 0 {
							t.Errorf("Verify allocated %.1f times per run, want 0", allocs)
						}
					})
				}
			})
		}
	}
}

// TestVerifyZeroAllocGenerated repeats the bound on a realistic
// generated image (jumps, masked pairs, padding) rather than pure NOPs,
// so the direct-jump target path is exercised too.
func TestVerifyZeroAllocGenerated(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the bound only holds in normal builds")
	}
	c := checker(t)
	gen := nacl.NewGenerator(9)
	img, err := gen.Random(100)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Verify(img) {
		t.Fatal("generated image must verify")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Verify(img)
	})
	if allocs != 0 {
		t.Errorf("Verify allocated %.1f times per run, want 0", allocs)
	}
}

package core_test

import (
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/grammar"
	"rocksalt/internal/x86/decode"
)

// TestPolicyLanguagesContainedInX86Grammar is the paper's §4.1 language-
// containment lemma, decided completely on the automata: everything the
// NoControlFlow and DirectJump expressions accept is a legal instruction
// of the full x86 grammar, and everything MaskedJump accepts is a legal
// *pair* of instructions. (Without containment, the inversion principles
// would be vacuous: the DFAs could accept bytes the model cannot even
// decode.)
func TestPolicyLanguagesContainedInX86Grammar(t *testing.T) {
	ctx := grammar.NewCtx()
	topR := ctx.Strip(decode.TopGrammar())
	top, err := ctx.CompileBitDFA(topR, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	// One instruction, then two in sequence.
	topPair, err := ctx.CompileBitDFA(ctx.Cat(topR, topR), 1<<21)
	if err != nil {
		t.Fatal(err)
	}

	single := map[string]*grammar.Grammar{
		"NoControlFlow": core.NoControlFlowGrammar(),
		"DirectJump":    core.DirectJumpGrammar(),
	}
	for name, g := range single {
		d, err := ctx.CompileBitDFA(ctx.Strip(g), 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !grammar.SubsetOfBitDFAs(d, top) {
			t.Errorf("%s accepts a string outside the x86 grammar", name)
		}
	}
	d, err := ctx.CompileBitDFA(ctx.Strip(core.MaskedJumpGrammar()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !grammar.SubsetOfBitDFAs(d, topPair) {
		t.Error("MaskedJump accepts a string that is not two legal instructions")
	}

	// Sanity on the subset decision itself: the full grammar is not a
	// subset of the restricted policy.
	if grammar.SubsetOfBitDFAs(top, mustBitDFA(t, ctx, core.NoControlFlowGrammar())) {
		t.Error("subset test is degenerate")
	}
}

func mustBitDFA(t *testing.T, ctx *grammar.Ctx, g *grammar.Grammar) *grammar.BitDFA {
	t.Helper()
	d, err := ctx.CompileBitDFA(ctx.Strip(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

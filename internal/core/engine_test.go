package core_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
)

// requireSameReport asserts that two runs of the engine produced the
// same verdict and the same violation list (the Workers field is the
// one legitimate difference).
func requireSameReport(t *testing.T, seq, par *core.Report, ctx string) {
	t.Helper()
	if seq.Safe != par.Safe {
		t.Fatalf("%s: verdict diverged: sequential=%v parallel=%v", ctx, seq.Safe, par.Safe)
	}
	if seq.Shards != par.Shards || seq.Size != par.Size || seq.Total != par.Total {
		t.Fatalf("%s: report shape diverged: seq={shards %d size %d total %d} par={shards %d size %d total %d}",
			ctx, seq.Shards, seq.Size, seq.Total, par.Shards, par.Size, par.Total)
	}
	if !reflect.DeepEqual(seq.Violations, par.Violations) {
		t.Fatalf("%s: violations diverged:\nseq: %+v\npar: %+v", ctx, seq.Violations, par.Violations)
	}
}

// TestVerifyWithMatchesSequential is the equivalence property the
// tentpole is stated over: on compliant images, tampered mutants, and
// the hand-crafted unsafe corpus, the parallel engine reports exactly
// the sequential verdict and first-violation offset.
func TestVerifyWithMatchesSequential(t *testing.T) {
	c := checker(t)
	gen := nacl.NewGenerator(41)
	rng := rand.New(rand.NewSource(42))
	workerCounts := []int{2, 3, 8, 0}

	check := func(img []byte, ctx string) {
		t.Helper()
		seq := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
		for _, w := range workerCounts {
			par := c.VerifyWith(img, core.VerifyOptions{Workers: w})
			requireSameReport(t, seq, par, ctx)
		}
	}

	// Compliant images, including ones spanning several shards.
	sizes := []int{10, 300, 12000}
	if testing.Short() {
		sizes = []int{10, 300}
	}
	for _, n := range sizes {
		img, err := gen.Random(n)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Verify(img) {
			t.Fatalf("compliant image (%d instructions) rejected", n)
		}
		check(img, "compliant")
		// Tampered variants: flipped bytes (including near shard
		// boundaries) and truncation to a non-bundle length.
		for m := 0; m < 6; m++ {
			mut := append([]byte{}, img...)
			for k := 0; k < 1+rng.Intn(3); k++ {
				mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
			}
			if len(mut) > core.ShardBytes {
				mut[core.ShardBytes-1+rng.Intn(3)] = byte(rng.Intn(256))
			}
			check(mut, "tampered")
			check(mut[:len(mut)-1-rng.Intn(7)], "truncated")
		}
	}

	// The unsafe corpus.
	for name, img := range nacl.UnsafeCorpus() {
		if c.Verify(img) {
			t.Fatalf("unsafe image %q accepted", name)
		}
		check(img, "unsafe:"+name)
	}
}

// TestAnalyzeWithBitmapEquality: on an accepted image the boundary
// bitmaps (the safety theorem's invariant) are identical however many
// workers parsed stage 1.
func TestAnalyzeWithBitmapEquality(t *testing.T) {
	c := checker(t)
	img, err := nacl.NewGenerator(43).Random(12000)
	if err != nil {
		t.Fatal(err)
	}
	v1, p1, rep1 := c.AnalyzeWith(img, core.VerifyOptions{Workers: 1})
	if !rep1.Safe {
		t.Fatalf("image rejected: %v", rep1.Err())
	}
	if rep1.Shards < 2 {
		t.Fatalf("image too small to exercise sharding: %d shards", rep1.Shards)
	}
	v4, p4, rep4 := c.AnalyzeWith(img, core.VerifyOptions{Workers: 4})
	if !rep4.Safe {
		t.Fatal("parallel run rejected an accepted image")
	}
	if !reflect.DeepEqual(v1, v4) || !reflect.DeepEqual(p1, p4) {
		t.Fatal("boundary bitmaps differ between sequential and parallel runs")
	}
}

// TestShardBoundaryStraddle: an instruction straddling a shard (and
// hence bundle) boundary is reported at that boundary with the same
// offset sequentially and in parallel — the case where stage 1 must
// stop at its shard end rather than race into its neighbour's range.
func TestShardBoundaryStraddle(t *testing.T) {
	c := checker(t)
	img := make([]byte, 0, core.ShardBytes+core.BundleSize)
	for len(img) < core.ShardBytes-2 {
		img = append(img, 0x90)
	}
	img = append(img, 0xb8, 1, 2, 3, 4) // 5-byte mov straddling the shard end
	for len(img)%core.BundleSize != 0 {
		img = append(img, 0x90)
	}
	seq := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
	if seq.Safe {
		t.Fatal("straddling image accepted")
	}
	if v := seq.First(); v.Offset != core.ShardBytes || v.Kind != core.BundleStraddle {
		t.Fatalf("first violation = %v, want %v at %#x", v, core.BundleStraddle, core.ShardBytes)
	}
	par := c.VerifyWith(img, core.VerifyOptions{Workers: 4})
	requireSameReport(t, seq, par, "shard straddle")
}

// TestReportDiagnostics pins the structured diagnostics for
// representative corpus entries: offset, kind and byte window.
func TestReportDiagnostics(t *testing.T) {
	c := checker(t)
	cases := []struct {
		kind   nacl.UnsafeKind
		offset int
		want   core.ViolationKind
	}{
		{nacl.BareIndirectJump, 0, core.IllegalInstruction},
		{nacl.Syscall, 0, core.IllegalInstruction},
		{nacl.StraddlingBoundary, 32, core.BundleStraddle},
		{nacl.JumpIntoInstruction, 5, core.TargetNotBoundary},
		{nacl.JumpOutOfImage, 0, core.TargetOutOfImage},
		{nacl.ReturnInstruction, 0, core.IllegalInstruction},
	}
	for _, tc := range cases {
		img := nacl.Unsafe(tc.kind)
		rep := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
		if rep.Safe {
			t.Errorf("%v: accepted", tc.kind)
			continue
		}
		v := rep.First()
		if v.Offset != tc.offset || v.Kind != tc.want {
			t.Errorf("%v: first violation %v at %#x, want %v at %#x",
				tc.kind, v.Kind, v.Offset, tc.want, tc.offset)
		}
		if v.Offset < len(img) && len(v.Window) == 0 {
			t.Errorf("%v: violation carries no byte window", tc.kind)
		}
		if v.Error() == "" {
			t.Errorf("%v: empty diagnostic", tc.kind)
		}
	}
}

// TestViolationThroughErrorInterface: the legacy (bool, error) entry
// point now surfaces the structured violation.
func TestViolationThroughErrorInterface(t *testing.T) {
	c := checker(t)
	ok, err := c.VerifyReport(nacl.Unsafe(nacl.BareIndirectJump))
	if ok || err == nil {
		t.Fatal("expected a diagnostic")
	}
	var v *core.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error is %T, want *core.Violation", err)
	}
	if v.Kind != core.IllegalInstruction || v.Offset != 0 {
		t.Fatalf("unexpected violation: %v", v)
	}
}

// TestReportShape covers the bookkeeping fields and edge cases.
func TestReportShape(t *testing.T) {
	c := checker(t)

	// Empty image: vacuously safe, zero shards.
	rep := c.VerifyWith(nil, core.VerifyOptions{Workers: 8})
	if !rep.Safe || rep.Shards != 0 || rep.Total != 0 || rep.Err() != nil || rep.First() != nil {
		t.Fatalf("empty image report: %+v", rep)
	}

	// A single-bundle image occupies one shard; workers clamp to it.
	img := make([]byte, core.BundleSize)
	for i := range img {
		img[i] = 0x90
	}
	rep = c.VerifyWith(img, core.VerifyOptions{Workers: 8})
	if !rep.Safe || rep.Shards != 1 || rep.Workers != 1 {
		t.Fatalf("single-bundle report: %+v", rep)
	}

	// Garbage across several shards: Total counts everything even when
	// the retained list is capped.
	garbage := make([]byte, 3*core.ShardBytes)
	for i := range garbage {
		garbage[i] = 0xc3 // ret: always illegal
	}
	rep = c.VerifyWith(garbage, core.VerifyOptions{Workers: 2})
	if rep.Safe {
		t.Fatal("garbage accepted")
	}
	if len(rep.Violations) > core.MaxReportViolations {
		t.Fatalf("retained %d violations, cap is %d", len(rep.Violations), core.MaxReportViolations)
	}
	if rep.Total < len(rep.Violations) {
		t.Fatalf("Total %d < retained %d", rep.Total, len(rep.Violations))
	}
	if v := rep.First(); v.Offset != 0 {
		t.Fatalf("first violation at %#x, want 0", v.Offset)
	}
}

// TestAlignedCallsParallelParity: the optional strict policy must agree
// across worker counts too (it adds the MisalignedCall violation kind).
func TestAlignedCallsParallelParity(t *testing.T) {
	strict := checker(t)
	strict.AlignedCalls = true
	imgs := [][]byte{
		nacl.Unsafe(nacl.BareIndirectJump),
	}
	b := nacl.NewBuilder()
	b.Label("f")
	b.Call("f") // misaligned call: rejected only under AlignedCalls
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	imgs = append(imgs, img)
	for i, img := range imgs {
		seq := strict.VerifyWith(img, core.VerifyOptions{Workers: 1})
		par := strict.VerifyWith(img, core.VerifyOptions{Workers: 4})
		requireSameReport(t, seq, par, "aligned-calls")
		if i == 1 {
			if seq.Safe {
				t.Fatal("misaligned call accepted by strict checker")
			}
			if v := seq.First(); v.Kind != core.MisalignedCall {
				t.Fatalf("first violation %v, want %v", v.Kind, core.MisalignedCall)
			}
		}
	}
}

package core_test

import (
	"math/rand"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/grammar"
	"rocksalt/internal/nacl"
	"rocksalt/internal/ncval"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
)

func checker(t *testing.T) *core.Checker {
	t.Helper()
	c, err := core.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDFAStateCounts is experiment E4: the checker DFAs are tiny (the
// paper's largest was 61 states) and need no minimization.
func TestDFAStateCounts(t *testing.T) {
	stats, err := core.DFAStats()
	if err != nil {
		t.Fatal(err)
	}
	for name, n := range stats {
		t.Logf("%s: %d states", name, n)
		if n > 64 {
			t.Errorf("%s has %d states; the paper reports at most 61", name, n)
		}
		if n < 2 {
			t.Errorf("%s is degenerate (%d states)", name, n)
		}
	}
}

func TestNopBundleAccepted(t *testing.T) {
	c := checker(t)
	img := make([]byte, 4*core.BundleSize)
	for i := range img {
		img[i] = 0x90
	}
	if !c.Verify(img) {
		t.Fatal("all-nop image must verify")
	}
}

func TestEmptyImage(t *testing.T) {
	c := checker(t)
	if !c.Verify(nil) {
		t.Fatal("the empty image is vacuously safe")
	}
}

func TestMaskedJumpForms(t *testing.T) {
	c := checker(t)
	for _, r := range []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX, x86.EBP, x86.ESI, x86.EDI} {
		for _, call := range []bool{false, true} {
			modrm := byte(0xe0)
			if call {
				modrm = 0xd0
			}
			img := []byte{0x83, 0xe0 | byte(r), core.SafeMask, 0xff, modrm | byte(r)}
			for len(img)%core.BundleSize != 0 {
				img = append(img, 0x90)
			}
			if !c.Verify(img) {
				t.Errorf("masked jump through %v (call=%v) rejected", r, call)
			}
		}
	}
	// ESP is not maskable.
	img := []byte{0x83, 0xe4, core.SafeMask, 0xff, 0xe4}
	for len(img)%core.BundleSize != 0 {
		img = append(img, 0x90)
	}
	if c.Verify(img) {
		t.Error("masked jump through ESP must be rejected")
	}
}

// TestUnsafeCorpusRejected checks every hand-crafted violation is caught
// (half of experiment E6).
func TestUnsafeCorpusRejected(t *testing.T) {
	c := checker(t)
	for name, img := range nacl.UnsafeCorpus() {
		if c.Verify(img) {
			t.Errorf("unsafe image %q accepted", name)
		}
	}
}

// TestGeneratedImagesAccepted: the NaCl toolchain substitute only emits
// compliant code, and the checker must accept all of it.
func TestGeneratedImagesAccepted(t *testing.T) {
	c := checker(t)
	gen := nacl.NewGenerator(7)
	n := 150
	if testing.Short() {
		n = 20
	}
	for i := 0; i < n; i++ {
		img, err := gen.Random(30 + i)
		if err != nil {
			t.Fatal(err)
		}
		if ok, verr := c.VerifyReport(img); !ok {
			t.Fatalf("generated image %d rejected: %v", i, verr)
		}
	}
}

// TestCheckerAgreement is experiment E6: RockSalt and the Google-style
// validator agree on thousands of generated programs — both on compliant
// images and on random mutations of them.
func TestCheckerAgreement(t *testing.T) {
	c := checker(t)
	gen := nacl.NewGenerator(11)
	rng := rand.New(rand.NewSource(13))
	images := 400
	if testing.Short() {
		images = 50
	}
	agreeAccept, agreeReject := 0, 0
	for i := 0; i < images; i++ {
		img, err := gen.Random(25)
		if err != nil {
			t.Fatal(err)
		}
		a, b := c.Verify(img), ncval.Validate(img)
		if a != b {
			t.Fatalf("disagreement on compliant image %d: rocksalt=%v ncval=%v", i, a, b)
		}
		if !a {
			t.Fatalf("compliant image %d rejected by both (generator bug)", i)
		}
		agreeAccept++
		// Mutate: flip random bytes and require the verdicts to stay in
		// sync (most mutants are rejected; some remain legal).
		for m := 0; m < 5; m++ {
			mut := append([]byte{}, img...)
			for k := 0; k < 1+rng.Intn(3); k++ {
				mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
			}
			a, b := c.Verify(mut), ncval.Validate(mut)
			if a != b {
				t.Fatalf("disagreement on mutant of image %d: rocksalt=%v ncval=%v\nimage: % x", i, a, b, mut)
			}
			if a {
				agreeAccept++
			} else {
				agreeReject++
			}
		}
	}
	t.Logf("agreement on %d accepts and %d rejects", agreeAccept, agreeReject)
	// The unsafe corpus must also agree.
	for name, img := range nacl.UnsafeCorpus() {
		if ncval.Validate(img) {
			t.Errorf("ncval accepted unsafe image %q", name)
		}
	}
}

// TestMaskedJumpInversion is the §4.1 inversion principle for the
// MaskedJump DFA: every accepted string decodes to AND r, safeMask
// followed by an indirect JMP or CALL through the same register.
func TestMaskedJumpInversion(t *testing.T) {
	s := grammar.NewSampler(rand.New(rand.NewSource(5)))
	g := core.MaskedJumpGrammar()
	dec := decode.NewDecoder()
	for i := 0; i < 500; i++ {
		bs, _, ok := s.SampleBytes(g, 4)
		if !ok {
			t.Fatal("cannot sample masked-jump grammar")
		}
		mask, n, err := dec.Decode(bs)
		if err != nil {
			t.Fatalf("masked pair % x does not decode: %v", bs, err)
		}
		if mask.Op != x86.AND || !mask.W {
			t.Fatalf("pair % x: first instruction is %v, want AND", bs, mask)
		}
		reg, ok := mask.Args[0].(x86.RegOp)
		if !ok {
			t.Fatalf("pair % x: mask destination not a register", bs)
		}
		imm, ok := mask.Args[1].(x86.Imm)
		if !ok || imm.Val != 0xffffffe0 {
			t.Fatalf("pair % x: mask immediate %v, want 0xffffffe0", bs, mask.Args[1])
		}
		jmp, _, err := dec.Decode(bs[n:])
		if err != nil {
			t.Fatalf("pair % x: jump does not decode: %v", bs, err)
		}
		if jmp.Op != x86.JMP && jmp.Op != x86.CALL {
			t.Fatalf("pair % x: second instruction %v", bs, jmp)
		}
		if jmp.Rel || jmp.Far {
			t.Fatalf("pair % x: jump is not register-indirect", bs)
		}
		jr, ok := jmp.Args[0].(x86.RegOp)
		if !ok || jr.Reg != reg.Reg {
			t.Fatalf("pair % x: jump through %v but mask of %v", bs, jmp.Args[0], reg)
		}
		if reg.Reg == x86.ESP {
			t.Fatalf("pair % x: ESP must not be maskable", bs)
		}
	}
}

// TestDirectJumpInversion: strings accepted by the DirectJump DFA decode
// to relative JMP/Jcc/CALL instructions.
func TestDirectJumpInversion(t *testing.T) {
	s := grammar.NewSampler(rand.New(rand.NewSource(6)))
	g := core.DirectJumpGrammar()
	dec := decode.NewDecoder()
	for i := 0; i < 500; i++ {
		bs, _, ok := s.SampleBytes(g, 4)
		if !ok {
			t.Fatal("cannot sample direct-jump grammar")
		}
		inst, n, err := dec.Decode(bs)
		if err != nil || n != len(bs) {
			t.Fatalf("direct jump % x: decode %v n=%d", bs, err, n)
		}
		switch inst.Op {
		case x86.JMP, x86.CALL, x86.Jcc:
		default:
			t.Fatalf("direct jump % x decodes to %v", bs, inst)
		}
		if !inst.Rel {
			t.Fatalf("direct jump % x is not PC-relative", bs)
		}
	}
}

// TestNoControlFlowInversion: strings accepted by the NoControlFlow DFA
// decode to instructions satisfying the SafeInst policy predicate.
func TestNoControlFlowInversion(t *testing.T) {
	s := grammar.NewSampler(rand.New(rand.NewSource(8)))
	g := core.NoControlFlowGrammar()
	dec := decode.NewDecoder()
	trials := 3000
	if testing.Short() {
		trials = 300
	}
	for i := 0; i < trials; i++ {
		bs, _, ok := s.SampleBytes(g, 4)
		if !ok {
			t.Fatal("cannot sample NoControlFlow grammar")
		}
		inst, n, err := dec.Decode(bs)
		if err != nil {
			t.Fatalf("safe string % x does not decode: %v", bs, err)
		}
		if n != len(bs) {
			t.Fatalf("safe string % x: decoder consumed %d of %d bytes", bs, n, len(bs))
		}
		if !core.SafeInst(inst) {
			t.Fatalf("NoControlFlow accepted % x = %v, which violates SafeInst", bs, inst)
		}
	}
}

// TestPolicyGrammarsArePrefixFree: the shortest-match loop in the
// verifier is only correct when no accepted string is a proper prefix of
// another; check it on the compiled automata.
func TestPolicyGrammarsArePrefixFree(t *testing.T) {
	ctx := grammar.NewCtx()
	for name, g := range map[string]*grammar.Grammar{
		"MaskedJump":    core.MaskedJumpGrammar(),
		"NoControlFlow": core.NoControlFlowGrammar(),
		"DirectJump":    core.DirectJumpGrammar(),
	} {
		d, err := ctx.CompileBitDFA(ctx.Strip(g), 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !d.PrefixFree() {
			t.Errorf("%s is not prefix-free", name)
		}
	}
}

// TestTrampolineEntries: out-of-image direct targets are rejected unless
// whitelisted as runtime entry points.
func TestTrampolineEntries(t *testing.T) {
	c := checker(t)
	img := []byte{0xe9, 0xfb, 0xff, 0xff, 0x0f} // jmp to 0x10000000
	for len(img)%core.BundleSize != 0 {
		img = append(img, 0x90)
	}
	if c.Verify(img) {
		t.Fatal("out-of-image jump must be rejected without entries")
	}
	c2 := checker(t)
	c2.Entries = map[uint32]bool{0x10000000: true}
	if !c2.Verify(img) {
		t.Fatal("whitelisted trampoline target must be accepted")
	}
}

func TestVerifyReportDiagnostics(t *testing.T) {
	c := checker(t)
	ok, err := c.VerifyReport(nacl.Unsafe(nacl.BareIndirectJump))
	if ok || err == nil {
		t.Fatal("expected diagnostic")
	}
}

func TestAnalyzeArrays(t *testing.T) {
	c := checker(t)
	img := []byte{0x83, 0xe0, 0xe0, 0xff, 0xe0, 0x90}
	for len(img)%core.BundleSize != 0 {
		img = append(img, 0x90)
	}
	valid, pairJmp, ok := c.Analyze(img)
	if !ok {
		t.Fatal("image must verify")
	}
	if !valid[0] || valid[3] || !valid[5] {
		t.Fatalf("valid array wrong: %v", valid[:8])
	}
	if !pairJmp[3] {
		t.Fatal("pair jump position not marked")
	}
}

func TestAlignedCallsOption(t *testing.T) {
	strict := checker(t)
	strict.AlignedCalls = true

	// A misaligned direct call: accepted by default, rejected strictly.
	b := nacl.NewBuilder()
	b.Label("f")
	b.Inst(x86.Inst{Op: x86.NOP, W: true})
	b.Call("f")
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !checker(t).Verify(img) {
		t.Fatal("baseline policy must accept the misaligned call")
	}
	if strict.Verify(img) {
		t.Fatal("strict policy must reject the misaligned call")
	}

	// An aligned call passes both.
	b = nacl.NewBuilder()
	b.Label("f")
	b.Inst(x86.Inst{Op: x86.NOP, W: true})
	b.CallAligned("f")
	img, err = b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if ok, verr := strict.VerifyReport(img); !ok {
		t.Fatalf("aligned call rejected: %v", verr)
	}

	// Masked calls: MaskedCall aligns, a bare Raw pair does not.
	b = nacl.NewBuilder()
	b.MaskedCall(x86.ECX)
	img, err = b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !strict.Verify(img) {
		t.Fatal("MaskedCall must satisfy the strict policy")
	}
	b = nacl.NewBuilder()
	b.Raw([]byte{0x83, 0xe1, 0xe0, 0xff, 0xd1}) // and ecx,-32; call ecx at offset 0
	img, err = b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if strict.Verify(img) {
		t.Fatal("misaligned masked call must be rejected strictly")
	}
	// And masked *jumps* are unaffected by the option.
	b = nacl.NewBuilder()
	b.MaskedJump(x86.ECX)
	img, err = b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !strict.Verify(img) {
		t.Fatal("masked jump must not require alignment")
	}
}

package core_test

import (
	"reflect"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/vcache"
)

// cacheImage builds a compliant multi-chunk image (several 64KiB cache
// chunks) so the chunk layer has something to do.
func cacheImage(t *testing.T, seed int64, insns int) []byte {
	t.Helper()
	img, err := nacl.NewGenerator(seed).Random(insns)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) < 3*64<<10 {
		t.Fatalf("generated image too small for chunk tests: %d bytes", len(img))
	}
	return img
}

// sameVerdict asserts two reports agree on everything the cache
// promises to preserve: the verdict and the full diagnosis. Stats and
// CacheKey legitimately differ between cached and uncached runs.
func sameVerdict(t *testing.T, got, want *core.Report, what string) {
	t.Helper()
	if got.Safe != want.Safe || got.Outcome != want.Outcome || got.Total != want.Total ||
		got.Size != want.Size || got.Shards != want.Shards {
		t.Fatalf("%s: verdict differs: got {safe %v %v total %d} want {safe %v %v total %d}",
			what, got.Safe, got.Outcome, got.Total, want.Safe, want.Outcome, want.Total)
	}
	if !reflect.DeepEqual(got.Violations, want.Violations) {
		t.Fatalf("%s: violations differ", what)
	}
}

func TestCacheWholeImageHit(t *testing.T) {
	c := checker(t)
	img := cacheImage(t, 1, 60000)
	cache := vcache.New(64 << 20)
	opts := core.VerifyOptions{Workers: 1, Cache: cache}

	want := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
	first := c.VerifyWith(img, opts)
	sameVerdict(t, first, want, "first cached run")
	if first.Stats.CacheWholeHits != 0 {
		t.Fatal("cold run reported a whole-image hit")
	}
	if first.CacheKey == "" {
		t.Fatal("cached run did not report its content key")
	}

	second := c.VerifyWith(img, opts)
	sameVerdict(t, second, want, "warm run")
	if second.Stats.CacheWholeHits != 1 {
		t.Fatalf("warm run stats %+v: expected a whole-image hit", second.Stats)
	}
	if second.Stats.CacheBytesSaved != int64(len(img)) {
		t.Fatalf("whole hit saved %d bytes, want %d", second.Stats.CacheBytesSaved, len(img))
	}

	// The keyed path: hand the reported key back and hit without any
	// hashing pass over the content.
	key, err := vcache.ParseKey(first.CacheKey)
	if err != nil {
		t.Fatal(err)
	}
	keyed := c.VerifyWith(img, core.VerifyOptions{Workers: 1, Cache: cache, CacheKey: &key})
	sameVerdict(t, keyed, want, "keyed warm run")
	if keyed.Stats.CacheWholeHits != 1 {
		t.Fatal("keyed run missed")
	}
}

func TestCacheChunkReuseAfterEdit(t *testing.T) {
	c := checker(t)
	img := cacheImage(t, 2, 60000)
	cache := vcache.New(64 << 20)
	opts := core.VerifyOptions{Workers: 1, Cache: cache}

	if rep := c.VerifyWith(img, opts); !rep.Safe {
		t.Fatalf("generated image not safe: %v", rep.Err())
	}

	// Corrupt one byte in the middle of the last cacheable chunk — and
	// keep flipping until the image actually rejects (a lone flip can
	// land on another valid encoding). Every untouched chunk must come
	// back from the cache; the verdict must be byte-identical to an
	// uncached verification of the edited image.
	edited := append([]byte(nil), img...)
	var want *core.Report
	for editAt := 2*64<<10 + 300; ; editAt++ {
		edited[editAt] ^= 0xff
		if want = c.VerifyWith(edited, core.VerifyOptions{Workers: 1}); !want.Safe {
			break
		}
		edited[editAt] ^= 0xff
	}
	got := c.VerifyWith(edited, opts)
	sameVerdict(t, got, want, "edited image via chunk cache")
	if got.Stats.CacheWholeHits != 0 {
		t.Fatal("edited image claimed a whole-image hit")
	}
	if got.Stats.CacheChunkHits == 0 {
		t.Fatalf("no chunk hits on a one-byte edit: %+v", got.Stats)
	}
	if got.Stats.CacheChunkMisses == 0 {
		t.Fatalf("the edited chunk should have missed: %+v", got.Stats)
	}
	if got.Stats.CacheBytesSaved != got.Stats.CacheChunkHits*64<<10 {
		t.Fatalf("bytes saved %d inconsistent with %d chunk hits",
			got.Stats.CacheBytesSaved, got.Stats.CacheChunkHits)
	}

	// Parallel workers must reach the same verdict with the same cache.
	gotPar := c.VerifyWith(edited, core.VerifyOptions{Workers: 8, Cache: cache})
	sameVerdict(t, gotPar, want, "edited image, parallel workers")

	// A violating chunk is never stored: re-verifying the edited image
	// after evicting its whole-image report must re-miss that chunk.
	// (Fresh cache isolates the property.)
	fresh := vcache.New(64 << 20)
	r1 := c.VerifyWith(edited, core.VerifyOptions{Workers: 1, Cache: fresh})
	r2 := c.VerifyWith(edited, core.VerifyOptions{Workers: 1, Cache: fresh})
	sameVerdict(t, r2, want, "rejected image re-verified")
	if r1.Safe || r2.Stats.CacheWholeHits != 1 {
		t.Fatalf("rejected whole-image reports should still be cached: %+v", r2.Stats)
	}
}

func TestCacheConfigSeparation(t *testing.T) {
	base := checker(t)
	img := cacheImage(t, 3, 60000)
	cache := vcache.New(64 << 20)

	rep := base.VerifyWith(img, core.VerifyOptions{Workers: 1, Cache: cache})
	if rep.CacheKey == "" {
		t.Fatal("no cache key reported")
	}

	// A checker with different policy knobs must not share entries even
	// for identical bytes: its config hash differs, so its keys differ.
	other := checker(t)
	other.AlignedCalls = true
	rep2 := other.VerifyWith(img, core.VerifyOptions{Workers: 1, Cache: cache})
	if rep2.CacheKey == rep.CacheKey {
		t.Fatal("different configurations produced the same content key")
	}
	if rep2.Stats.CacheWholeHits != 0 {
		t.Fatal("different configuration hit the other checker's entry")
	}

	entries := checker(t)
	entries.Entries = map[uint32]bool{0x1000: true}
	rep3 := entries.VerifyWith(img, core.VerifyOptions{Workers: 1, Cache: cache})
	if rep3.CacheKey == rep.CacheKey || rep3.Stats.CacheWholeHits != 0 {
		t.Fatal("Entries whitelist not separated in the config hash")
	}

	// Same configuration in a distinct checker instance shares entries:
	// the key is content-addressed, not instance-addressed.
	twin := checker(t)
	rep4 := twin.VerifyWith(img, core.VerifyOptions{Workers: 1, Cache: cache})
	if rep4.CacheKey != rep.CacheKey || rep4.Stats.CacheWholeHits != 1 {
		t.Fatalf("equal configuration did not share the cache: key match %v, whole hits %d",
			rep4.CacheKey == rep.CacheKey, rep4.Stats.CacheWholeHits)
	}
}

func TestCacheAnalyzeChunkLayer(t *testing.T) {
	c := checker(t)
	img := cacheImage(t, 4, 60000)
	cache := vcache.New(64 << 20)
	opts := core.VerifyOptions{Workers: 1, Cache: cache}

	wantValid, wantPair, wantRep := c.AnalyzeWith(img, core.VerifyOptions{Workers: 1})
	v1, p1, r1 := c.AnalyzeWith(img, opts)
	v2, p2, r2 := c.AnalyzeWith(img, opts)
	if r2.Stats.CacheChunkHits == 0 {
		t.Fatalf("warm Analyze used no chunk hits: %+v", r2.Stats)
	}
	if r2.Stats.CacheWholeHits != 0 {
		t.Fatal("Analyze must not take the whole-image path (it has bitmaps to fill)")
	}
	sameVerdict(t, r1, wantRep, "cold cached Analyze")
	sameVerdict(t, r2, wantRep, "warm cached Analyze")
	if !reflect.DeepEqual(v1, wantValid) || !reflect.DeepEqual(v2, wantValid) {
		t.Fatal("cached Analyze boundary bitmap differs from uncached")
	}
	if !reflect.DeepEqual(p1, wantPair) || !reflect.DeepEqual(p2, wantPair) {
		t.Fatal("cached Analyze pairJmp bitmap differs from uncached")
	}
}

// TestCacheBadTargetReplay pins the subtlest chunk-cache invariant: a
// chunk with no shard-local violation is stored and replayed, but its
// shards may have proven in-shard jump targets bad — a fact that only
// becomes a TargetNotBoundary violation at reconcile. The replay must
// carry those bad targets, or a warm run would accept an image the cold
// run rejects.
func TestCacheBadTargetReplay(t *testing.T) {
	c := checker(t)
	// Three full 64KiB chunks of NOPs plus a tail, with one direct jump
	// in chunk 0 whose target (offset 2) is inside the jump instruction
	// itself: no shard-local violation, but reconcile must reject.
	img := make([]byte, 3*64<<10+64)
	for i := range img {
		img[i] = 0x90
	}
	img[0] = 0xe9 // jmp rel32 to offset 2 = 5 + (-3)
	rel := int32(-3)
	img[1], img[2], img[3], img[4] = byte(rel), byte(rel>>8), byte(rel>>16), byte(rel>>24)

	want := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
	if want.Safe {
		t.Fatal("jump into an instruction should reject")
	}
	if len(want.Violations) == 0 || want.Violations[0].Kind != core.TargetNotBoundary {
		t.Fatalf("expected TargetNotBoundary, got %+v", want.Violations)
	}

	cache := vcache.New(64 << 20)
	opts := core.VerifyOptions{Workers: 1, Cache: cache}
	cold := c.VerifyWith(img, opts)
	sameVerdict(t, cold, want, "cold run")

	// Change only the non-cacheable tail so the whole-image key misses
	// while every chunk key still hits; the replayed chunk 0 must carry
	// its bad target into reconcile.
	edited := append([]byte(nil), img...)
	edited[len(edited)-1] = 0x50 // push eax: safe, single byte
	want2 := c.VerifyWith(edited, core.VerifyOptions{Workers: 1})
	warm := c.VerifyWith(edited, opts)
	sameVerdict(t, warm, want2, "warm run with replayed bad target")
	if warm.Stats.CacheWholeHits != 0 {
		t.Fatal("tail edit should have missed the whole-image layer")
	}
	if warm.Stats.CacheChunkHits == 0 {
		t.Fatalf("no chunk hits on a tail-only edit: %+v", warm.Stats)
	}
	if warm.Safe || len(warm.Violations) == 0 || warm.Violations[0].Kind != core.TargetNotBoundary {
		t.Fatalf("replayed run lost the bad target: %+v", warm.Violations)
	}
}

func TestCacheSmallImageAndTail(t *testing.T) {
	// Images smaller than one chunk exercise only the whole-image layer;
	// the final chunk of any image is never chunk-cached.
	c := checker(t)
	img, err := nacl.NewGenerator(5).Random(50)
	if err != nil {
		t.Fatal(err)
	}
	cache := vcache.New(1 << 20)
	opts := core.VerifyOptions{Workers: 1, Cache: cache}
	want := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
	first := c.VerifyWith(img, opts)
	sameVerdict(t, first, want, "small image cold")
	if first.Stats.CacheChunkHits != 0 || first.Stats.CacheChunkMisses != 0 {
		t.Fatalf("sub-chunk image touched the chunk layer: %+v", first.Stats)
	}
	second := c.VerifyWith(img, opts)
	sameVerdict(t, second, want, "small image warm")
	if second.Stats.CacheWholeHits != 1 {
		t.Fatal("small image did not whole-hit")
	}
}

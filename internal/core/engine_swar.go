package core

import "encoding/binary"

// This file is the SWAR multi-byte stepper: the third generation of the
// fused hot path, layered on the same two-pass lane machinery as
// engine_lanes.go (pass-1 state buffer, laneEvent recovery, laneExtract
// boundary extraction), with only the pass-1 inner step replaced.
//
// Per lane and per round, the stepper loads 8 input bytes with one
// uint64 load, translates adjacent byte pairs to pair classes through
// the 64K-entry pcls map (fused_stride.go) and chains four two-stride
// walk entries:
//
//	x  := le64(code[i:])
//	v0 := walk[s  <<12 | pcls[x&0xffff]]
//	v1 := walk[v0>>8<<12 | pcls[x>>16&0xffff]]   ... v2, v3
//
// In the common case — no eventful state in the 8 bytes — the four
// entries' high bits are all clear, the packed state bytes are stored
// with a single 8-byte write, and the lane retires 8 bytes having taken
// exactly two branches (the OR-ed sentinel tests, one per chain half).
// Each walk entry *is* the two state bytes the single-stride walk would
// have stored (fused_stride.go), so the state buffer — and with it pass
// 2, every recovery scan, and the final report — is byte-identical to
// the single-stride and two-stride variants by construction.
//
// The sentinel test is split after the second pair on purpose: with a
// jump-dense image a quarter or more of the rounds contain an event,
// and testing v0|v1 before computing v2, v3 skips the second half of
// the dependent load chain — the most expensive work of the round —
// whenever the event sits in the first half. On clean rounds the extra
// test is one predicted-not-taken branch.
//
// Why an 8-byte load cannot skip an event: a walk entry is the eventful
// sentinel iff *either* of its two composed steps leaves the inline
// bands [0, rec) — bundle-relevant accepts, masked-pair resolutions,
// direct jumps and dead walks are all eventful states, so any event
// inside the 8 bytes poisons the entry that covers it, the OR test
// fires, and the lane re-walks from the event's pair boundary: the
// clean entries before the first sentinel are banked (they are exactly
// the single-stride stores), then one single-byte flat step re-discovers
// the event at the right byte and hands it to laneEvent unchanged. The
// guard and bundle checks themselves live in laneEvent/laneExtract,
// shared verbatim with the other variants, so no policy decision is
// duplicated here. FuzzByteClassEquiv and FuzzPolicyEquiv hold the
// engine byte-identical to EngineReference.

// swarLanes is the SWAR stepper's interleave width (see the region
// comment in parseShardSWAR for why it is two, not laneCount).
const swarLanes = 2

// Density backoff. Multi-byte rounds win only while events are sparse:
// a sentinel round discards most of its chained work, so on jump-dense
// code the 8-byte stepper measures slower than the four-lane
// single-stride walk (whose flat table is also far kinder to the cache
// than the pair-class walk). The stepper therefore counts sentinel
// rounds and, once a shard has proven dense — at least swarDenseFloor
// sentinels and more than one per 2^swarDenseShift parsed bytes —
// abandons the shard with dense=true; the dispatcher erases the
// probe's writes and re-parses the shard with parseShardLanes. The
// probe is cheap (the floor is hit within the first few hundred bytes
// of a dense shard), so a dense shard runs within a few percent of the
// plain lane walk, while quiet shards keep the full multi-byte gain —
// which is what lets the default engine select the SWAR stepper
// without ever picking a slower walk. The measured crossover sits near
// one sentinel per ~48 bytes; the 2^6 = 64-byte threshold backs off
// only when the multi-byte rounds are clearly losing, and the floor
// keeps a few early events in a quiet shard from triggering it.
const (
	swarDenseFloor = 8
	swarDenseShift = 6
)

// parseShardSWAR runs the interleaved two-pass parse over the
// whole-bundle region [start, fullEnd) with the SWAR stepper. ok
// reports whether the region was fully regular; on ok=false the caller
// must discard the shard's bitmap/result writes and re-parse — with
// the four-lane single-stride walk when dense is set (the density
// backoff above fired), with the scalar loop otherwise. The caller
// guarantees swarReady() (walk, pcls and flat materialized) and at
// least laneCount bundles in the region.
func (c *Checker) parseShardSWAR(code []byte, start, fullEnd int, sc *scratch, res *shardResult) (ok, dense bool) {
	f := c.fused
	if !f.swarReady() || f.nc == f.quiet {
		return false, false
	}
	flat := (*[flatStates * 256]uint16)(f.flat)
	walk := (*[flatStates << strideShift]uint16)(f.stride.walk)
	pcls := (*[1 << 16]uint16)(f.stride.pcls)
	rec := uint16(f.rec)
	L := fullEnd - start
	bp := stbufPool.Get().(*[]byte)
	defer stbufPool.Put(bp)
	buf := (*bp)[:L]

	lc := laneCtx{
		code:   code,
		buf:    buf,
		tags:   f.tags,
		res:    res,
		sc:     sc,
		base:   start,
		qb:     uint8(f.quiet),
		c1w:    uint8(f.nc - f.quiet),
		fstart: uint16(f.start),
	}

	// Two contiguous bundle-aligned regions; the second takes the
	// remainder. Two lanes, not four: a SWAR round is itself a chain of
	// four dependent walk loads, so two interleaved chains already cover
	// the load latency, and the smaller live set (two lanes of
	// {index, state, slices} plus three table pointers) fits the amd64
	// register file — four SWAR lanes spill to the stack and run slower.
	bundle := c.params.bundle
	q := L / swarLanes / bundle * bundle
	st0, st1 := start, start+q
	en0, en1 := st1, fullEnd
	li0, li1 := code[st0:en0], code[st1:en1]
	sb0 := buf[st0-start : en0-start]
	sb1 := buf[st1-start : en1-start]
	// Same-length reslices: the loop guard on sb then proves the li
	// index in bounds too.
	sb0, sb1 = sb0[:len(li0)], sb1[:len(li1)]
	var i0, i1, sent int
	s0, s1 := lc.fstart, lc.fstart

	for i0 < len(sb0) || i1 < len(sb1) {
		if i0 < len(sb0) {
			if i0+8 <= len(sb0) {
				x := binary.LittleEndian.Uint64(li0[i0:])
				v0 := walk[int(s0&127)<<strideShift|int(pcls[uint16(x)])&(stridePairCap-1)]
				v1 := walk[int(v0>>8&127)<<strideShift|int(pcls[uint16(x>>16)])&(stridePairCap-1)]
				if v0|v1 < 0x8000 {
					v2 := walk[int(v1>>8&127)<<strideShift|int(pcls[uint16(x>>32)])&(stridePairCap-1)]
					v3 := walk[int(v2>>8&127)<<strideShift|int(pcls[uint16(x>>48)])&(stridePairCap-1)]
					if v2|v3 < 0x8000 {
						binary.LittleEndian.PutUint64(sb0[i0:],
							uint64(v0)|uint64(v1)<<16|uint64(v2)<<32|uint64(v3)<<48)
						s0 = v3 >> 8
						i0 += 8
						goto lane1
					}
					// Sentinel in the second half: bank the clean prefix
					// (exactly the single-stride stores), then fall through
					// to the flat step that re-discovers the event.
					sent++
					if sent >= swarDenseFloor && sent > (i0+i1)>>swarDenseShift {
						return false, true
					}
					binary.LittleEndian.PutUint32(sb0[i0:], uint32(v0)|uint32(v1)<<16)
					s0, i0 = v1>>8, i0+4
					if v2 < 0x8000 {
						sb0[i0], sb0[i0+1] = byte(v2), byte(v2>>8)
						s0, i0 = v2>>8, i0+2
					}
				} else {
					// Sentinel in the first half; v2, v3 were never computed.
					sent++
					if sent >= swarDenseFloor && sent > (i0+i1)>>swarDenseShift {
						return false, true
					}
					if v0 < 0x8000 {
						sb0[i0], sb0[i0+1] = byte(v0), byte(v0>>8)
						s0, i0 = v0>>8, i0+2
					}
				}
			}
			if s := flat[int(s0&127)<<8|int(li0[i0])]; s < rec {
				sb0[i0] = byte(s)
				s0 = s
				i0++
			} else {
				var o int
				s0, o = c.laneEvent(&lc, s, st0+i0+1, st0, en0)
				i0 = o - st0
			}
		}
	lane1:
		if i1 < len(sb1) {
			if i1+8 <= len(sb1) {
				x := binary.LittleEndian.Uint64(li1[i1:])
				v0 := walk[int(s1&127)<<strideShift|int(pcls[uint16(x)])&(stridePairCap-1)]
				v1 := walk[int(v0>>8&127)<<strideShift|int(pcls[uint16(x>>16)])&(stridePairCap-1)]
				if v0|v1 < 0x8000 {
					v2 := walk[int(v1>>8&127)<<strideShift|int(pcls[uint16(x>>32)])&(stridePairCap-1)]
					v3 := walk[int(v2>>8&127)<<strideShift|int(pcls[uint16(x>>48)])&(stridePairCap-1)]
					if v2|v3 < 0x8000 {
						binary.LittleEndian.PutUint64(sb1[i1:],
							uint64(v0)|uint64(v1)<<16|uint64(v2)<<32|uint64(v3)<<48)
						s1 = v3 >> 8
						i1 += 8
						continue
					}
					sent++
					if sent >= swarDenseFloor && sent > (i0+i1)>>swarDenseShift {
						return false, true
					}
					binary.LittleEndian.PutUint32(sb1[i1:], uint32(v0)|uint32(v1)<<16)
					s1, i1 = v1>>8, i1+4
					if v2 < 0x8000 {
						sb1[i1], sb1[i1+1] = byte(v2), byte(v2>>8)
						s1, i1 = v2>>8, i1+2
					}
				} else {
					sent++
					if sent >= swarDenseFloor && sent > (i0+i1)>>swarDenseShift {
						return false, true
					}
					if v0 < 0x8000 {
						sb1[i1], sb1[i1+1] = byte(v0), byte(v0>>8)
						s1, i1 = v0>>8, i1+2
					}
				}
			}
			if s := flat[int(s1&127)<<8|int(li1[i1])]; s < rec {
				sb1[i1] = byte(s)
				s1 = s
				i1++
			} else {
				var o int
				s1, o = c.laneEvent(&lc, s, st1+i1+1, st1, en1)
				i1 = o - st1
			}
		}
	}
	if lc.failed {
		return false, false
	}
	return c.laneExtract(buf, sc, start, L), false
}

package core_test

import (
	"math/rand"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/rtl"
	"rocksalt/internal/sim"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/machine"
)

// This file is the executable form of the paper's Theorem 1: starting
// from a locally-safe state of a checker-accepted image, every reachable
// state is appropriate — the segment registers are unchanged, the code
// bytes are unchanged, memory effects stay inside the data segments, and
// the PC only ever rests on checker-validated instruction boundaries (or
// on the jump half of a masked pair, reached by fall-through from its
// mask — the 2-safe case). Instead of a Coq proof over all oracles, the
// test executes accepted images under many random oracles and register
// states and asserts the invariants at every step.

const (
	codeBase = 0x10000
	dataBase = 0x200000
	dataLim  = 0xffff
)

func sandboxState(code []byte) *machine.State {
	st := machine.New()
	for _, s := range []x86.SegReg{x86.ES, x86.SS, x86.DS, x86.FS, x86.GS} {
		st.SegBase[s] = dataBase
		st.SegLimit[s] = dataLim
		st.SegSel[s] = 0x2b
	}
	st.SegBase[x86.CS] = codeBase
	st.SegLimit[x86.CS] = uint32(len(code) - 1)
	st.SegSel[x86.CS] = 0x23
	st.Mem.WriteBytes(codeBase, code)
	return st
}

// checkAppropriate asserts Definition 1's data invariants against the
// initial state.
func checkAppropriate(t *testing.T, st, init *machine.State, code []byte) {
	t.Helper()
	if st.SegSel != init.SegSel || st.SegBase != init.SegBase || st.SegLimit != init.SegLimit {
		t.Fatal("segment state changed during execution")
	}
	for i, b := range code {
		if st.Mem.Load(codeBase+uint32(i)) != b {
			t.Fatalf("code byte at offset %#x changed", i)
		}
	}
}

// checkConfinement asserts that every non-zero byte of memory lies in the
// code image or the data segment window (writes cannot escape).
func checkConfinement(t *testing.T, st *machine.State, code []byte, extra map[uint32]bool) {
	t.Helper()
	// Scan a generous window around both regions plus guard zones.
	for _, zone := range [][2]uint32{
		{codeBase - 0x1000, codeBase},                                         // below code
		{codeBase + uint32(len(code)), codeBase + uint32(len(code)) + 0x1000}, // above code
		{dataBase - 0x1000, dataBase},                                         // below data
		{dataBase + dataLim + 1, dataBase + dataLim + 0x1001},                 // above data
	} {
		for a := zone[0]; a < zone[1]; a++ {
			if st.Mem.Load(a) != 0 && !extra[a] {
				t.Fatalf("memory write escaped the sandbox at %#x", a)
			}
		}
	}
}

// runSoundness executes an accepted image and asserts the k-safety
// invariant at every step.
func runSoundness(t *testing.T, c *core.Checker, code []byte, seed int64, maxSteps int) {
	t.Helper()
	valid, pairJmp, ok := c.Analyze(code)
	if !ok {
		t.Fatal("image must verify before the soundness run")
	}
	rng := rand.New(rand.NewSource(seed))
	st := sandboxState(code)
	for r := range st.Regs {
		st.Regs[r] = uint32(rng.Intn(1 << 16))
	}
	st.Regs[x86.ESP] = 0x8000
	st.PC = 0
	init := st.Clone()

	oracleBits := make([]byte, 64)
	rng.Read(oracleBits)
	s := sim.New(st)
	s.Oracle = &rtl.StreamOracle{Bits: oracleBits}

	prevPC := uint32(0xffffffff)
	for step := 0; step < maxSteps; step++ {
		pc := st.PC
		if pc >= uint32(len(code)) {
			// Fetch beyond the CS limit faults; that is a safe halt.
			break
		}
		if !valid[pc] {
			if !pairJmp[pc] {
				t.Fatalf("step %d: pc %#x is not a checker-validated boundary", step, pc)
			}
			if prevPC != pc-3 {
				t.Fatalf("step %d: pair jump at %#x reached from %#x, not its mask", step, pc, prevPC)
			}
		}
		prevPC = pc
		if err := s.Step(); err != nil {
			break // traps are safe halts
		}
		checkAppropriate(t, st, init, code)
	}
	checkAppropriate(t, st, init, code)
	checkConfinement(t, st, code, nil)
}

// TestCheckerSoundnessGenerated runs the invariant check over many
// generated compliant images, oracles and initial register files.
func TestCheckerSoundnessGenerated(t *testing.T) {
	c := checker(t)
	gen := nacl.NewGenerator(21)
	images := 60
	if testing.Short() {
		images = 10
	}
	for i := 0; i < images; i++ {
		img, err := gen.Random(40)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 3; seed++ {
			runSoundness(t, c, img, seed*1000+int64(i), 300)
		}
	}
}

// TestCheckerSoundnessMaskedLoop runs a hand-built program that actually
// exercises the masked-jump path for many iterations: a counter loop
// whose back edge is a computed jump through a masked register.
func TestCheckerSoundnessMaskedLoop(t *testing.T) {
	c := checker(t)
	b := nacl.NewBuilder()
	// Bundle 0: counter in EBX, target in ECX = 32 (bundle 1).
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{x86.RegOp{Reg: x86.EBX}, x86.Imm{Val: 50}}})
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{x86.RegOp{Reg: x86.ECX}, x86.Imm{Val: 32}}})
	b.AlignBundle()
	// Bundle 1: decrement, store progress, computed jump back while > 0.
	b.Label("loop")
	b.Inst(x86.Inst{Op: x86.DEC, W: true, Args: []x86.Operand{x86.RegOp{Reg: x86.EBX}}})
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{
		x86.MemOp{Addr: x86.Addr{Disp: 0x100}}, x86.RegOp{Reg: x86.EBX}}})
	b.Jcc(x86.CondE, "done")
	b.MaskedJump(x86.ECX)
	b.AlignBundle()
	b.Label("done")
	b.Inst(x86.Inst{Op: x86.HLT}) // deliberately unsafe: must be caught
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// The HLT makes the image invalid — replace it with nops to pass the
	// checker; the run then falls off the end (a fetch fault, safe halt).
	for i, bb := range img {
		if bb == 0xf4 {
			img[i] = 0x90
		}
	}
	if ok, verr := c.VerifyReport(img); !ok {
		t.Fatalf("loop image rejected: %v", verr)
	}
	runSoundness(t, c, img, 1, 1000)
}

// TestUnsafeImagesViolateWhenRun demonstrates the converse: the unsafe
// corpus images, if they were executed, would break the invariants the
// checker guarantees — evidence the policy is not vacuous.
func TestUnsafeImagesViolateWhenRun(t *testing.T) {
	// mov ds, eax actually changes a selector.
	img := nacl.Unsafe(nacl.SegmentWrite)
	st := sandboxState(img)
	st.Regs[x86.EAX] = 0x1234
	init := st.Clone()
	s := sim.New(st)
	if err := s.Step(); err != nil {
		t.Fatalf("segment write should execute: %v", err)
	}
	if st.SegSel == init.SegSel {
		t.Fatal("mov ds, eax did not change the selector — semantics bug")
	}
}

// TestSoundnessWithTrampolines: an image whose direct call targets a
// whitelisted out-of-image entry verifies, and running it halts safely at
// the segment boundary (the model has no trampoline code to land in).
func TestSoundnessWithTrampolines(t *testing.T) {
	c, err := core.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	c.Entries = map[uint32]bool{0xffff0000: true}
	b := nacl.NewBuilder()
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{
		x86.RegOp{Reg: x86.EAX}, x86.Imm{Val: 7}}})
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Patch in a call to the trampoline: e8 rel32 with target 0xffff0000.
	call := make([]byte, 5)
	call[0] = 0xe8
	rel := int64(0xffff0000) - int64(5+5) // call placed at offset 5
	for i := 0; i < 4; i++ {
		call[1+i] = byte(rel >> (8 * i))
	}
	img = append(img[:5], append(call, img[10:]...)...)
	if ok, verr := c.VerifyReport(img); !ok {
		t.Fatalf("trampoline call rejected: %v", verr)
	}
	runSoundness(t, c, img, 3, 50)
}

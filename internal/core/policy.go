// Package core implements the RockSalt checker: a verifier for the NaCl
// sandbox policy whose decoding logic is three DFAs compiled from
// grammars — MaskedJump, NoControlFlow and DirectJump (§3 of the paper) —
// driven by the small match/verify routines of Figures 5 and 6.
package core

import (
	"fmt"
	"math/rand"
	"sync"

	"rocksalt/internal/grammar"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
)

// SafeMask is the byte-sized immediate whose sign extension
// (0xffffffe0) aligns a register to a 32-byte bundle boundary: the
// paper's safeMask.
const SafeMask = 0xe0

// BundleSize is the NaCl alignment quantum: computed jump targets must be
// 32-byte aligned.
const BundleSize = 32

// maskableRegs are the registers a masked jump may go through — the
// paper's list (every general register except ESP).
var maskableRegs = []x86.Reg{
	x86.EAX, x86.ECX, x86.EDX, x86.EBX, x86.EBP, x86.ESI, x86.EDI,
}

// naclMaskP is the paper's nacl_MASK_p: the pattern for
// "AND r, safeMask" (opcode 0x83 /4, mod=11, imm8 = 0xe0).
func naclMaskP(r x86.Reg) *grammar.Grammar {
	return grammar.Then(grammar.Bits("1000 0011"),
		grammar.Then(grammar.Bits("11"),
			grammar.Then(grammar.Bits("100"),
				grammar.Then(grammar.BitsValue(3, uint64(r)),
					grammar.BitsValue(8, SafeMask)))))
}

// naclJmpP is nacl_JMP_p: "JMP r" (0xFF /4, mod=11).
func naclJmpP(r x86.Reg) *grammar.Grammar {
	return grammar.Then(grammar.Bits("1111 1111"),
		grammar.Then(grammar.Bits("11"),
			grammar.Then(grammar.Bits("100"), grammar.BitsValue(3, uint64(r)))))
}

// naclCallP is nacl_CALL_p: "CALL r" (0xFF /2, mod=11).
func naclCallP(r x86.Reg) *grammar.Grammar {
	return grammar.Then(grammar.Bits("1111 1111"),
		grammar.Then(grammar.Bits("11"),
			grammar.Then(grammar.Bits("010"), grammar.BitsValue(3, uint64(r)))))
}

// naclJmpPair is nacljmp_p: a mask of r immediately followed by an
// indirect jump or call through the same r.
func naclJmpPair(r x86.Reg) *grammar.Grammar {
	return grammar.Cat(naclMaskP(r), grammar.Alt(naclJmpP(r), naclCallP(r)))
}

// MaskedJumpGrammar is nacljmp_mask: the union over all maskable
// registers.
func MaskedJumpGrammar() *grammar.Grammar {
	var alts []*grammar.Grammar
	for _, r := range maskableRegs {
		alts = append(alts, naclJmpPair(r))
	}
	return grammar.Alt(alts...)
}

// DirectJumpGrammar matches exactly the direct, PC-relative control
// transfers the policy allows: JMP rel8/rel32, Jcc rel8/rel32, and CALL
// rel32, all unprefixed.
func DirectJumpGrammar() *grammar.Grammar {
	rel8 := grammar.AnyByte()
	rel32 := grammar.Then(grammar.AnyByte(),
		grammar.Then(grammar.AnyByte(), grammar.Then(grammar.AnyByte(), grammar.AnyByte())))
	return grammar.Alt(
		grammar.Then(grammar.LitByte(0xeb), rel8),
		grammar.Then(grammar.LitByte(0xe9), rel32),
		grammar.Then(grammar.LitByte(0xe8), rel32),
		grammar.Then(grammar.Bits("0111"), grammar.Then(grammar.Field(4), rel8)),
		grammar.Then(grammar.LitByte(0x0f),
			grammar.Then(grammar.Bits("1000"), grammar.Then(grammar.Field(4), rel32))),
	)
}

// SafeInst is the policy predicate on abstract syntax: an instruction the
// sandbox can always allow. It is the semantic counterpart of the
// NoControlFlow grammar, used both to build that grammar (forms are
// classified by sampling) and as the specification in the inversion-
// principle tests.
func SafeInst(i x86.Inst) bool {
	if i.IsControlFlow() || i.Far {
		return false
	}
	switch i.Op {
	case x86.IN, x86.OUT, x86.INS, x86.OUTS, x86.HLT, x86.BOUND,
		x86.LDS, x86.LES, x86.LSS, x86.LFS, x86.LGS, x86.UD2, x86.BAD:
		return false
	}
	for _, a := range i.Args {
		if _, isSeg := a.(x86.SegOp); isSeg {
			return false
		}
	}
	if i.Prefix.Seg != nil || i.Prefix.AddrSize || i.Prefix.Lock {
		return false
	}
	// REP/REPNE are meaningful (and allowed) only on string operations.
	if (i.Prefix.Rep || i.Prefix.RepN) && !isStringOp(i.Op) {
		return false
	}
	return true
}

// isStringOp reports the REP-able string operations.
func isStringOp(op x86.Op) bool {
	switch op {
	case x86.MOVS, x86.STOS, x86.LODS, x86.SCAS, x86.CMPS:
		return true
	}
	return false
}

// classifyForms splits the decoder's instruction forms into the safe
// subset by sampling: each form is homogeneous (one constructor), so a
// handful of samples decides its class. The deterministic seed keeps the
// generated DFAs reproducible.
func classifyForms(opsize16 bool) (safe, strings []*grammar.Grammar) {
	s := grammar.NewSampler(rand.New(rand.NewSource(1)))
	for _, form := range decode.InstructionForms(opsize16) {
		var inst x86.Inst
		ok := false
		allSafe, allString := true, true
		for k := 0; k < 8; k++ {
			_, v, sampled := s.Sample(form)
			if !sampled {
				break
			}
			ok = true
			inst = v.(x86.Inst)
			if !SafeInst(inst) {
				allSafe = false
			}
			if !isStringOp(inst.Op) {
				allString = false
			}
		}
		if !ok {
			panic("core: unsampleable instruction form")
		}
		if allSafe {
			safe = append(safe, form)
			if allString {
				strings = append(strings, form)
			}
		}
	}
	return safe, strings
}

// NoControlFlowGrammar matches one legal NaCl non-control-flow
// instruction: a safe instruction form, optionally under an operand-size
// override, or a REP/REPN-prefixed string operation. Lock prefixes,
// segment overrides and 16-bit addressing are rejected outright.
func NoControlFlowGrammar() *grammar.Grammar {
	safe32, strings32 := classifyForms(false)
	safe16, _ := classifyForms(true)
	var alts []*grammar.Grammar
	alts = append(alts, safe32...)
	alts = append(alts, grammar.Then(grammar.LitByte(0x66), grammar.Alt(safe16...)))
	alts = append(alts, grammar.Then(grammar.LitByte(0xf3), grammar.Alt(strings32...)))
	alts = append(alts, grammar.Then(grammar.LitByte(0xf2), grammar.Alt(strings32...)))
	return grammar.Alt(alts...)
}

// DFASet holds the three compiled checker automata.
type DFASet struct {
	MaskedJump    *grammar.DFA
	NoControlFlow *grammar.DFA
	DirectJump    *grammar.DFA
}

var (
	dfaOnce sync.Once
	dfaSet  *DFASet
	dfaErr  error
)

// BuildDFAs compiles the three policy grammars to DFAs. This is the
// paper's offline table generation (§3.2); the result is memoized.
func BuildDFAs() (*DFASet, error) {
	dfaOnce.Do(func() {
		ctx := grammar.NewCtx()
		compile := func(g *grammar.Grammar, name string) *grammar.DFA {
			if dfaErr != nil {
				return nil
			}
			d, err := ctx.CompileDFA(ctx.Strip(g), 0)
			if err != nil {
				dfaErr = fmt.Errorf("core: compiling %s: %w", name, err)
				return nil
			}
			return d
		}
		set := &DFASet{
			MaskedJump:    compile(MaskedJumpGrammar(), "MaskedJump"),
			NoControlFlow: compile(NoControlFlowGrammar(), "NoControlFlow"),
			DirectJump:    compile(DirectJumpGrammar(), "DirectJump"),
		}
		if dfaErr == nil {
			dfaSet = set
		}
	})
	return dfaSet, dfaErr
}

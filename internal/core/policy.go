// Package core implements the RockSalt checker: a verifier for the NaCl
// sandbox policy whose decoding logic is three DFAs compiled from
// grammars — MaskedJump, NoControlFlow and DirectJump (§3 of the paper) —
// driven by the small match/verify routines of Figures 5 and 6. The
// grammar→DFA pipeline itself lives in internal/policy (the runtime
// policy compiler); this package consumes its output and keeps thin
// delegates for the default NaCl policy so existing callers are
// undisturbed.
package core

import (
	"sync"

	"rocksalt/internal/grammar"
	"rocksalt/internal/policy"
	"rocksalt/internal/x86"
)

// SafeMask is the byte-sized immediate whose sign extension
// (0xffffffe0) aligns a register to a 32-byte bundle boundary: the
// paper's safeMask.
const SafeMask = 0xe0

// BundleSize is the NaCl alignment quantum: computed jump targets must be
// 32-byte aligned. This is the default policy's bundle size; checkers
// compiled from a non-default spec carry their own (see PolicyInfo).
const BundleSize = 32

// MaskedJumpGrammar is the default policy's nacljmp_mask: the union of
// masked pairs over all maskable registers (every general register
// except ESP).
func MaskedJumpGrammar() *grammar.Grammar {
	return policy.MaskedJumpGrammar(defaultSpec())
}

// DirectJumpGrammar matches exactly the direct, PC-relative control
// transfers the policy allows: JMP rel8/rel32, Jcc rel8/rel32, and CALL
// rel32, all unprefixed.
func DirectJumpGrammar() *grammar.Grammar {
	return policy.DirectJumpGrammar()
}

// NoControlFlowGrammar matches one legal NaCl non-control-flow
// instruction: a safe instruction form, optionally under an operand-size
// override, or a REP/REPN-prefixed string operation.
func NoControlFlowGrammar() *grammar.Grammar {
	return policy.NoControlFlowGrammar(defaultSpec())
}

// SafeInst is the policy predicate on abstract syntax: an instruction the
// sandbox can always allow (see policy.SafeInst).
func SafeInst(i x86.Inst) bool { return policy.SafeInst(i) }

// defaultSpec is the normalized default NaCl spec.
func defaultSpec() policy.Spec {
	s, err := policy.NaCl().Normalize()
	if err != nil {
		panic("core: the default policy spec must normalize: " + err.Error())
	}
	return s
}

// DFASet holds the three compiled checker automata.
type DFASet struct {
	MaskedJump    *grammar.DFA
	NoControlFlow *grammar.DFA
	DirectJump    *grammar.DFA
}

var (
	dfaOnce sync.Once
	dfaSet  *DFASet
	dfaErr  error
)

// BuildDFAs compiles the three default-policy grammars to DFAs via the
// runtime policy compiler. This is the paper's offline table generation
// (§3.2); the result is memoized.
func BuildDFAs() (*DFASet, error) {
	dfaOnce.Do(func() {
		c, err := policy.CompileDefault()
		if err != nil {
			dfaErr = err
			return
		}
		dfaSet = &DFASet{
			MaskedJump:    c.MaskedJump,
			NoControlFlow: c.NoControlFlow,
			DirectJump:    c.DirectJump,
		}
	})
	return dfaSet, dfaErr
}

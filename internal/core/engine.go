package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
)

// This file is the staged verification engine. The NaCl policy itself
// licenses the decomposition: every 32-byte bundle boundary must be an
// instruction boundary and no matched unit (including the two-
// instruction masked pair) may straddle one, so the image partitions
// into aligned groups of bundles that parse independently.
//
// Stage 1 parses each shard with the Figure 5/6 match loop, producing
// shard-local valid/pairJmp bitmaps, the shard's direct-jump targets,
// and any shard-local violation. Stage 2 is a cheap sequential
// reconciliation: it validates every collected jump target against the
// merged boundary map, flags unreached bundle boundaries, and sorts all
// violations by (offset, kind) so the reported first violation is
// identical no matter how many workers ran stage 1.

// VerifyOptions configures a verification run.
type VerifyOptions struct {
	// Workers is the number of goroutines parsing stage-1 shards: 1 (or
	// an image smaller than one shard) runs in-line with no goroutines;
	// 0 or negative means runtime.GOMAXPROCS(0). The value is clamped by
	// clampWorkers — to the shard count and to MaxWorkers — so absurd
	// requests (Workers: 1<<30) cost nothing: no per-worker state is
	// allocated beyond the clamped count, and the report is identical to
	// the sequential one. Report.Workers records the clamped value.
	Workers int
}

// MaxWorkers is the hard ceiling on stage-1 workers. Beyond the machine
// parallelism extra goroutines only add scheduling overhead; the cap
// keeps a hostile or buggy caller from turning Workers into a
// goroutine-exhaustion vector on many-shard images.
const MaxWorkers = 1024

// clampWorkers is the single place worker-count hygiene lives: <= 0
// means all CPUs, and the result is bounded by the shard count, by
// MaxWorkers, and below by 1.
func clampWorkers(workers, shards int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > MaxWorkers {
		workers = MaxWorkers
	}
	if workers > shards {
		workers = shards
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ShardBytes is the stage-1 shard size: an aligned group of 512
// bundles. It is a constant rather than an option because the shard
// decomposition defines the canonical violation report — with a fixed
// decomposition, sequential and parallel runs agree byte-for-byte.
const ShardBytes = 512 * BundleSize

// shardResult is what stage 1 reports per shard, besides the bitmap
// ranges it writes in place.
type shardResult struct {
	// violations holds the shard-local violation that stopped the
	// parse, if any (at most one entry).
	violations []Violation
	// targets are the in-image destinations of the shard's direct
	// jumps, validated globally in stage 2.
	targets []int32
}

// VerifyWith runs the staged engine and returns the structured report.
func (c *Checker) VerifyWith(code []byte, opts VerifyOptions) *Report {
	_, _, rep := c.run(context.Background(), code, opts.Workers)
	return rep
}

// VerifyContext is VerifyWith under a context. Stage-1 shard workers
// check for cancellation between shards; once the context is done the
// run stops promptly and returns a report with Outcome Canceled or
// Deadline (and Safe == false) instead of a partial verdict. A canceled
// run never reports Safe and never surfaces the nondeterministic subset
// of violations it happened to reach.
func (c *Checker) VerifyContext(ctx context.Context, code []byte, opts VerifyOptions) *Report {
	_, _, rep := c.run(ctx, code, opts.Workers)
	return rep
}

// AnalyzeWith is VerifyWith plus the instruction-boundary bitmap and
// masked-pair jump positions (see Analyze for their meaning). The
// bitmaps are only meaningful when the report is Safe.
func (c *Checker) AnalyzeWith(code []byte, opts VerifyOptions) (valid, pairJmp []bool, rep *Report) {
	return c.run(context.Background(), code, opts.Workers)
}

// AnalyzeContext is AnalyzeWith under a context, with VerifyContext's
// cancellation semantics. The bitmaps are only meaningful when the
// report is Safe (in particular, never for an interrupted run).
func (c *Checker) AnalyzeContext(ctx context.Context, code []byte, opts VerifyOptions) (valid, pairJmp []bool, rep *Report) {
	return c.run(ctx, code, opts.Workers)
}

// testShardHook, when non-nil, runs at the start of every stage-1 shard
// parse with the shard index. Tests use it to inject cancellation and
// panics mid-stage-1; it is never set in production.
var testShardHook func(shard int)

// interrupted builds the fail-closed report for a run whose context
// ended before stage 2: no verdict, no partial violations.
func interrupted(size, shards, workers int, err error) *Report {
	out := OutcomeCanceled
	if err == context.DeadlineExceeded {
		out = OutcomeDeadline
	}
	return &Report{
		Safe:    false,
		Outcome: out,
		Size:    size,
		Shards:  shards,
		Workers: workers,
		ctxErr:  err,
	}
}

// run executes stage 1 over the shard decomposition and stage 2 over
// the merged results. Shard workers poll ctx between shards and panics
// inside a shard parse are converted to InternalFault violations, so a
// hostile image (or a bug behind it) can stop the run early or fail it
// closed, but can neither hang the pool nor crash the process.
func (c *Checker) run(ctx context.Context, code []byte, workers int) (valid, pairJmp []bool, rep *Report) {
	size := len(code)
	shards := (size + ShardBytes - 1) / ShardBytes
	workers = clampWorkers(workers, shards)
	valid = make([]bool, size)
	pairJmp = make([]bool, size)
	results := make([]shardResult, shards)

	parse := func(s int) {
		defer func() {
			if r := recover(); r != nil {
				// Fail closed: a panicking shard becomes a structured
				// violation attributed to the shard start, carrying the
				// recovered value and stack. The worker itself survives,
				// so the pool drains normally instead of deadlocking on
				// a lost wg.Done.
				results[s] = shardResult{violations: []Violation{{
					Offset: s * ShardBytes,
					Kind:   InternalFault,
					Detail: fmt.Sprintf("shard %d worker panicked: %v", s, r),
					Stack:  string(debug.Stack()),
				}}}
			}
		}()
		if testShardHook != nil {
			testShardHook(s)
		}
		start := s * ShardBytes
		end := start + ShardBytes
		if end > size {
			end = size
		}
		// Workers write disjoint [start,end) ranges of the shared
		// bitmaps, so no synchronization is needed beyond the pool's.
		results[s] = c.parseShard(code, start, end, valid, pairJmp)
	}
	// Workers poll ctx.Err between shards: one atomic load per 16 KiB
	// shard parse, observed synchronously (a cancel that happened-before
	// a shard starts is always seen).
	if workers == 1 {
		for s := 0; s < shards; s++ {
			if ctx.Err() != nil {
				break
			}
			parse(s)
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int, shards)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := range jobs {
					if ctx.Err() != nil {
						// The channel is buffered and already closed, so
						// returning early cannot block the producer.
						return
					}
					parse(s)
				}
			}()
		}
		for s := 0; s < shards; s++ {
			jobs <- s
		}
		close(jobs)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return valid, pairJmp, interrupted(size, shards, workers, err)
	}
	return valid, pairJmp, c.reconcile(code, valid, results, shards, workers)
}

// parseShard is stage 1: the Figure 5 loop restricted to one shard.
// The shard start is a bundle boundary, which the policy requires to be
// an instruction boundary, so on any compliant image the shard-local
// parse reproduces exactly the boundaries the sequential parse would
// find. A matched unit extending past the shard end means that bundle
// boundary sits inside an instruction — itself a violation — so the
// shard stops there instead of racing into its neighbour's range.
func (c *Checker) parseShard(code []byte, start, end int, valid, pairJmp []bool) (res shardResult) {
	masked, noCF, direct := c.masked, c.noCF, c.direct
	size := len(code)
	stop := func(off int, kind ViolationKind, detail string) {
		res.violations = append(res.violations, violation(code, off, kind, detail))
	}
	straddles := func(saved, pos int) bool {
		if pos <= end || end == size {
			return false
		}
		stop(end, BundleStraddle, fmt.Sprintf("instruction at %#x extends past the boundary", saved))
		return true
	}
	pos := start
	for pos < end {
		valid[pos] = true
		saved := pos
		if match(masked, code, &pos) {
			if straddles(saved, pos) {
				return
			}
			pairJmp[saved+maskLen] = true
			// The call form of the pair is FF /2 (0xD0|r in the modrm).
			if c.AlignedCalls && code[pos-1]>>3&7 == 2 && pos%BundleSize != 0 {
				stop(pos, MisalignedCall, "masked call leaves a misaligned return address")
				return
			}
			continue
		}
		if match(noCF, code, &pos) {
			if straddles(saved, pos) {
				return
			}
			continue
		}
		if match(direct, code, &pos) {
			if straddles(saved, pos) {
				return
			}
			if c.AlignedCalls && code[saved] == 0xe8 && pos%BundleSize != 0 {
				stop(pos, MisalignedCall, "call leaves a misaligned return address")
				return
			}
			t, ok := jumpTarget(code, saved, pos)
			if !ok {
				stop(saved, IllegalInstruction, "unrecognized direct jump form")
				return
			}
			if t >= 0 && t < int64(size) {
				res.targets = append(res.targets, int32(t))
			} else if !c.Entries[uint32(t)] {
				stop(saved, TargetOutOfImage, fmt.Sprintf("direct jump targets %#x, outside the image", uint32(t)))
				return
			}
			continue
		}
		stop(saved, IllegalInstruction, "")
		return
	}
	return
}

// jumpTarget decodes the direct jump occupying code[saved:pos] and
// computes its absolute destination (the analogue of Figure 5's
// extract). The destination may lie outside the image; the caller
// decides whether that is legal.
func jumpTarget(code []byte, saved, pos int) (int64, bool) {
	var rel int32
	switch b := code[saved]; {
	case b == 0xeb || b>>4 == 0x7: // JMP rel8 / Jcc rel8
		rel = int32(int8(code[pos-1]))
	case b == 0xe8 || b == 0xe9: // CALL/JMP rel32
		rel = int32(le32(code[pos-4 : pos]))
	case b == 0x0f: // Jcc rel32
		rel = int32(le32(code[pos-4 : pos]))
	default:
		return 0, false
	}
	return int64(pos) + int64(rel), true
}

// reconcile is stage 2: merge shard results, validate every direct-jump
// target against the merged boundary map, flag bundle boundaries the
// parse never reached, and select the deterministic lowest-offset
// violation ordering.
func (c *Checker) reconcile(code []byte, valid []bool, results []shardResult, shards, workers int) *Report {
	size := len(code)
	var all []Violation
	for i := range results {
		all = append(all, results[i].violations...)
	}
	// Cross-shard jump-target validation against the merged boundary
	// map. Several jumps may share a bad target; dedupe after sorting
	// so the report is one violation per offending offset.
	var badTargets []int
	for i := range results {
		for _, t := range results[i].targets {
			if !valid[t] {
				badTargets = append(badTargets, int(t))
			}
		}
	}
	if len(badTargets) > 0 {
		sort.Ints(badTargets)
		prev := -1
		for _, t := range badTargets {
			if t == prev {
				continue
			}
			prev = t
			all = append(all, violation(code, t, TargetNotBoundary, "direct jump targets a non-boundary offset"))
		}
	}
	// Every bundle boundary must be an instruction boundary.
	for i := 0; i < size; i += BundleSize {
		if !valid[i] {
			all = append(all, violation(code, i, BundleStraddle, ""))
		}
	}
	// Violations never collide on (Offset, Kind): each shard stops at
	// its first violation and the global scan emits at most one of each
	// kind per offset, so this order is total and the report is
	// deterministic. The stable sort is belt and braces.
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Offset != all[j].Offset {
			return all[i].Offset < all[j].Offset
		}
		return all[i].Kind < all[j].Kind
	})
	total := len(all)
	if len(all) > MaxReportViolations {
		all = all[:MaxReportViolations]
	}
	outcome := OutcomeSafe
	if total > 0 {
		outcome = OutcomeRejected
	}
	return &Report{
		Safe:       total == 0,
		Outcome:    outcome,
		Size:       size,
		Shards:     shards,
		Workers:    workers,
		Violations: all,
		Total:      total,
	}
}

package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"rocksalt/internal/bitset"
	"rocksalt/internal/flight"
	"rocksalt/internal/telemetry"
	"rocksalt/internal/vcache"
)

// This file is the staged verification engine. The NaCl policy itself
// licenses the decomposition: every 32-byte bundle boundary must be an
// instruction boundary and no matched unit (including the two-
// instruction masked pair) may straddle one, so the image partitions
// into aligned groups of bundles that parse independently.
//
// Stage 1 parses each shard, producing shard-local valid/pairJmp
// bitmaps, the shard's direct-jump targets, and any shard-local
// violation. By default the inner loop is one walk of the fused product
// automaton per offset (see fused.go); the seed's three-sequential-DFA
// loop survives as the reference engine, selectable per run, and the
// two are held byte-identical by FuzzFusedEquiv and the fault-injection
// harness. Stage 2 is a cheap sequential reconciliation: it validates
// every collected jump target against the merged boundary map, flags
// unreached bundle boundaries, and sorts all violations by (offset,
// kind) so the reported first violation is identical no matter how many
// workers ran stage 1 and which engine matched the bytes.
//
// All per-run mutable state (the two packed bitmaps and the shard
// result array) lives in a pooled scratch, so steady-state Verify runs
// without allocating.

// EngineKind selects the stage-1 matcher.
type EngineKind uint8

const (
	// EngineFused walks the fused product automaton once per offset
	// (the default).
	EngineFused EngineKind = iota
	// EngineReference runs the seed's Figure-5 loop: up to three
	// sequential DFA match attempts per offset. It exists as the
	// cross-check oracle for the fused engine.
	EngineReference
	// EngineFusedScalar forces the canonical scalar fused walk on every
	// shard — the diagnosing path the lane engine rewinds to — with the
	// optimistic lane phase disabled. It exists for cross-checks and as
	// the like-for-like baseline in benchmarks.
	EngineFusedScalar
	// EngineStrided forces the two-stride lane walk, building (and
	// semantically verifying) the pair tables if needed, regardless of
	// the size budget. EngineFused never auto-selects it (the pcls-
	// indexed walk measured slower than the single-stride lanes, see
	// swarAuto); it exists for cross-checks and benchmarks. A table
	// build or verification failure falls back to the single-stride
	// lanes.
	EngineStrided
	// EngineSWAR forces the SWAR multi-byte stepper (engine_swar.go):
	// the two-stride walk driven 8 input bytes per round through the
	// pair-class map, retiring 4-8 bytes per iteration with one
	// eventful-sentinel branch per chain half, and handing event-dense
	// shards back to the single-stride lanes (the density backoff).
	// EngineFused upgrades to it automatically when the tables are
	// present and fit StrideBudgetBytes; forcing it builds them on
	// demand. If the automaton cannot support it (too many states, or a
	// table failure) the run degrades to the single-stride lanes.
	EngineSWAR
)

// stepMode is the resolved inner stepper of the lane engine for one
// run: the single-stride flat walk, the forced two-stride pair walk, or
// the SWAR multi-byte stepper. It is derived once per run by
// resolveEngine and uniform across shards, so reports and stats stay
// deterministic.
type stepMode uint8

const (
	stepSingle stepMode = iota
	stepStride
	stepSWAR
)

// engineName is the human-readable engine census value recorded in
// Stats.Engine: the requested kind refined by the resolved stepper, so
// "what actually ran" is visible in -stats/-json output.
func engineName(e EngineKind, mode stepMode) string {
	switch {
	case e == EngineReference:
		return "reference"
	case e == EngineFusedScalar:
		return "fused-scalar"
	case mode == stepSWAR:
		return "swar"
	case mode == stepStride:
		return "strided"
	default:
		return "lanes"
	}
}

// VerifyOptions configures a verification run.
type VerifyOptions struct {
	// Workers is the number of goroutines parsing stage-1 shards: 1 (or
	// an image smaller than one shard) runs in-line with no goroutines;
	// 0 or negative means runtime.GOMAXPROCS(0). The value is clamped by
	// clampWorkers — to the shard count and to MaxWorkers — so absurd
	// requests (Workers: 1<<30) cost nothing: no per-worker state is
	// allocated beyond the clamped count, and the report is identical to
	// the sequential one. Report.Workers records the clamped value.
	Workers int
	// Engine selects the stage-1 matcher; the zero value is the fused
	// product automaton. Reports are engine-invariant byte for byte.
	Engine EngineKind
	// StrideBudgetBytes bounds the hot stride-table footprint
	// EngineFused will auto-select the SWAR stepper under (see
	// swarAuto): 0 means the default ceiling, negative disables the
	// upgrade and pins the run to the single-stride lanes. Ignored by
	// the other engines; EngineStrided/EngineSWAR always build their
	// tables.
	StrideBudgetBytes int
	// Cache, when non-nil, attaches the content-addressed verdict cache
	// (see cache.go): Verify* runs first look up the whole image's
	// content key and return the cached Report on a hit; on a miss the
	// image's aligned 64KiB chunks are individually cached so a later
	// run re-parses only what changed. Requires fused tables (every
	// current bundle has them); ignored otherwise. Cached runs record
	// their effectiveness in Stats.CacheWholeHits et al.
	Cache *vcache.Cache
	// CacheKey, when non-nil, is a caller-computed key identifying this
	// exact (checker configuration, image) pair — obtained from a prior
	// Report.CacheKey for the same checker and bytes. A whole-image hit
	// under it skips even the hashing pass over the content, which is
	// what makes warm re-verification O(1). The caller vouches for the
	// association; a wrong key returns the wrong report. Ignored unless
	// Cache is set.
	CacheKey *vcache.Key
	// StreamSize is the total image size VerifyReader will stream,
	// which must be declared up front: direct-jump targets are
	// classified against the image size, so a verifier that discovered
	// the size only at EOF could not match full verification
	// byte-for-byte. 0 (or negative) makes VerifyReader buffer the
	// whole stream in memory instead. Ignored by the in-memory Verify*
	// entry points.
	StreamSize int64
}

// MaxWorkers is the hard ceiling on stage-1 workers. Beyond the machine
// parallelism extra goroutines only add scheduling overhead; the cap
// keeps a hostile or buggy caller from turning Workers into a
// goroutine-exhaustion vector on many-shard images.
const MaxWorkers = 1024

// clampWorkers is the single place worker-count hygiene lives: <= 0
// means all CPUs, and the result is bounded by the shard count, by
// MaxWorkers, and below by 1.
func clampWorkers(workers, shards int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > MaxWorkers {
		workers = MaxWorkers
	}
	if workers > shards {
		workers = shards
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ShardBytes is the stage-1 shard size: an aligned group of 512
// bundles. It is a constant rather than an option because the shard
// decomposition defines the canonical violation report — with a fixed
// decomposition, sequential and parallel runs agree byte-for-byte.
// It is also a multiple of 64, so shards own disjoint word ranges of
// the packed bitmaps and stage-1 workers need no synchronization.
const ShardBytes = 512 * BundleSize

// shardResult is what stage 1 reports per shard, besides the bitmap
// ranges it writes in place. Its slices are recycled through the
// scratch pool; reset truncates them while keeping their capacity.
type shardResult struct {
	// violations holds the shard-local violation that stopped the
	// parse, if any (at most one entry).
	violations []Violation
	// targets are the destinations of the shard's direct jumps that
	// land outside the shard, validated globally in stage 2. In-shard
	// targets are resolved at the end of the shard parse itself (the
	// shard's bitmap words are final then), overlapping stage-2 work
	// with stage 1; the failures land in bad.
	targets []int32
	// bad holds in-shard jump targets already proven to miss an
	// instruction boundary; reconcile merges them with the cross-shard
	// failures before sorting and deduping.
	bad []int32
	// lane/swar/scalar/restart classify how the shard was parsed (see
	// Stats.LaneBatches, SWARBatches, ScalarFallbacks, Restarts);
	// merged into the run's Stats at reconciliation. A shard sets at
	// most one.
	lane, swar, scalar, restart bool
	// backoff marks a shard whose SWAR parse hit the density backoff
	// and was handed to the single-stride lanes; the flight recorder
	// surfaces it as an EventSWARBackoff instant.
	backoff bool
	// prefetch absorbs the next-shard cache-line touches (see
	// touchLines); never read.
	prefetch byte
}

func (r *shardResult) reset() {
	r.violations = r.violations[:0]
	r.targets = r.targets[:0]
	r.bad = r.bad[:0]
	r.lane, r.swar, r.scalar, r.restart = false, false, false, false
	r.backoff = false
}

// scratch is the reusable per-run state: the packed boundary bitmaps
// and the shard result array. A sync.Pool recycles it across runs so a
// warmed checker verifies without allocating.
type scratch struct {
	valid, pairJmp bitset.Set
	results        []shardResult
	// base/imgSize place the byte slice handed to the parser inside the
	// logical image: the slice covers image offsets [base, base+len).
	// Ordinary runs parse the whole image, so base is 0 and imgSize is
	// len(code); the streaming verifier (stream.go) parses one window at
	// a time with base advanced chunk by chunk. Jump-target
	// classification and end-of-image straddle allowance use these
	// absolute coordinates so a windowed parse classifies targets
	// exactly as a whole-image parse would.
	base    int
	imgSize int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch(size, shards int) *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.valid.Reset(size)
	sc.pairJmp.Reset(size)
	sc.base, sc.imgSize = 0, size
	if cap(sc.results) < shards {
		sc.results = make([]shardResult, shards)
	} else {
		sc.results = sc.results[:shards]
	}
	for i := range sc.results {
		sc.results[i].reset()
	}
	return sc
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

// VerifyWith runs the staged engine and returns the structured report.
func (c *Checker) VerifyWith(code []byte, opts VerifyOptions) *Report {
	return c.VerifyContext(context.Background(), code, opts)
}

// VerifyContext is VerifyWith under a context. Stage-1 shard workers
// check for cancellation between shards; once the context is done the
// run stops promptly and returns a report with Outcome Canceled or
// Deadline (and Safe == false) instead of a partial verdict. A canceled
// run never reports Safe and never surfaces the nondeterministic subset
// of violations it happened to reach.
func (c *Checker) VerifyContext(ctx context.Context, code []byte, opts VerifyOptions) *Report {
	if opts.Cache != nil && c.fused != nil {
		return c.verifyCached(ctx, code, opts)
	}
	sc := getScratch(len(code), shardCount(len(code)))
	defer putScratch(sc)
	var st Stats
	rep := c.report(c.run(ctx, code, opts, sc, &st, nil), len(code))
	rep.Stats = st
	return rep
}

// AnalyzeWith is VerifyWith plus the instruction-boundary bitmap and
// masked-pair jump positions (see Analyze for their meaning). The
// bitmaps are only meaningful when the report is Safe.
func (c *Checker) AnalyzeWith(code []byte, opts VerifyOptions) (valid, pairJmp []bool, rep *Report) {
	return c.AnalyzeContext(context.Background(), code, opts)
}

// AnalyzeContext is AnalyzeWith under a context, with VerifyContext's
// cancellation semantics. The bitmaps are only meaningful when the
// report is Safe (in particular, never for an interrupted run).
func (c *Checker) AnalyzeContext(ctx context.Context, code []byte, opts VerifyOptions) (valid, pairJmp []bool, rep *Report) {
	sc := getScratch(len(code), shardCount(len(code)))
	defer putScratch(sc)
	var st Stats
	// Analyze uses the chunk layer only: a whole-image Report hit would
	// skip filling the bitmaps this entry point exists to return.
	var cc *cacheCtx
	if opts.Cache != nil && c.fused != nil {
		_, chunks := c.cacheKeys(code)
		cc = &cacheCtx{cache: opts.Cache, keys: chunks}
	}
	rep = c.report(c.run(ctx, code, opts, sc, &st, cc), len(code))
	rep.Stats = st
	return sc.valid.Bools(), sc.pairJmp.Bools(), rep
}

// verifyLean is the allocation-free boolean path behind Verify: it runs
// the engine on pooled scratch and never materializes a Report. Stats
// collection is skipped entirely unless global telemetry is enabled —
// the disabled path's whole observability cost is this one branch —
// and when it is enabled, the Stats live on the stack and publication
// is atomic adds, so the path stays allocation-free either way.
func (c *Checker) verifyLean(code []byte) bool {
	sc := getScratch(len(code), shardCount(len(code)))
	defer putScratch(sc)
	var st *Stats
	var stv Stats
	if telemetry.Enabled() {
		st = &stv
	}
	out := c.run(context.Background(), code, VerifyOptions{Workers: 1}, sc, st, nil)
	return out.ctxErr == nil && out.total == 0
}

func shardCount(size int) int {
	return (size + ShardBytes - 1) / ShardBytes
}

// testShardHook, when non-nil, runs at the start of every stage-1 shard
// parse with the shard index. Tests use it to inject cancellation and
// panics mid-stage-1; it is never set in production.
var testShardHook func(shard int)

// runResult is what run hands to the report builders: the reconciled,
// sorted, capped violation list (nil for a safe completed run), the
// uncapped total, the clamped worker count, and the context error for
// an interrupted run.
type runResult struct {
	violations []Violation
	total      int
	shards     int
	workers    int
	ctxErr     error
}

// report materializes a runResult as a caller-owned Report.
func (c *Checker) report(out runResult, size int) *Report {
	if out.ctxErr != nil {
		outc := OutcomeCanceled
		if out.ctxErr == context.DeadlineExceeded {
			outc = OutcomeDeadline
		}
		return &Report{
			Safe:    false,
			Outcome: outc,
			Size:    size,
			Shards:  out.shards,
			Workers: out.workers,
			ctxErr:  out.ctxErr,
		}
	}
	outcome := OutcomeSafe
	if out.total > 0 {
		outcome = OutcomeRejected
	}
	return &Report{
		Safe:       out.total == 0,
		Outcome:    outcome,
		Size:       size,
		Shards:     out.shards,
		Workers:    out.workers,
		Violations: out.violations,
		Total:      out.total,
	}
}

// run executes stage 1 over the shard decomposition and stage 2 over
// the merged results, writing all per-run state into sc. Shard workers
// poll ctx between shards and panics inside a shard parse are converted
// to InternalFault violations, so a hostile image (or a bug behind it)
// can stop the run early or fail it closed, but can neither hang the
// pool nor crash the process.
//
// st, when non-nil, receives the per-run Stats: the size/shard facts
// up front, wall times at each stage boundary, and at the end the
// per-shard parse-mode flags and the bitmap population merged during
// reconciliation. Everything written to st is stack- or scratch-
// resident, so collecting it never allocates.
func (c *Checker) run(ctx context.Context, code []byte, opts VerifyOptions, sc *scratch, st *Stats, cc *cacheCtx) runResult {
	size := len(code)
	shards := shardCount(size)
	workers := clampWorkers(opts.Workers, shards)
	var t0 time.Time
	if st != nil {
		t0 = time.Now()
		st.BytesScanned = int64(size)
		st.Bundles = int64((size + c.params.bundle - 1) / c.params.bundle)
		st.Shards = int64(shards)
	}
	// The effective engine is resolved once per run and is uniform across
	// shards, so reports stay deterministic. (Assign-once locals: the
	// worker closure below captures them by value.)
	engine, mode := c.resolveEngine(opts)
	if st != nil {
		st.Engine = engineName(engine, mode)
	}
	// Flight recorder: one atomic pointer load decides whether this run
	// records spans — with no recorder installed that load is the whole
	// cost, which is what keeps Verify at 0 allocs/op recorder-off.
	// (frun/frt0 come from a helper so they are assign-once too — a
	// declare-then-assign local would be captured by reference and
	// heap-allocated.)
	fr := flight.Active()
	frun, frt0 := flightBegin(fr)
	// Chunk-cache probe: restore the parse artifacts of every resident
	// chunk and mark its shards skipped. Skipped shards set none of the
	// lane/scalar/restart flags, so Stats' parse-mode counts cover only
	// the shards actually parsed this run. (skip, like engine above, is
	// assign-once so the worker closure captures it by value.)
	var skip []bool
	if cc != nil && len(cc.keys) > 0 {
		cc.fr, cc.frun = fr, frun
		skip = c.probeChunks(cc, sc, st)
	}
	endStage1 := telemetry.Region(ctx, "rocksalt.stage1.parse")

	// Workers write disjoint [start,end) bit ranges of the shared
	// bitmaps; ShardBytes is a multiple of 64, so the ranges are also
	// word-disjoint and no synchronization is needed beyond the pool's.
	// Workers poll ctx.Err between shards: one atomic load per 16 KiB
	// shard parse, observed synchronously (a cancel that happened-before
	// a shard starts is always seen).
	if workers == 1 {
		for s := 0; s < shards; s++ {
			if skip != nil && skip[s] {
				continue
			}
			if ctx.Err() != nil {
				break
			}
			c.parseOne(code, s, sc, engine, mode, fr, frun, 0)
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int, shards)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for s := range jobs {
					if ctx.Err() != nil {
						// The channel is buffered and already closed, so
						// returning early cannot block the producer.
						return
					}
					c.parseOne(code, s, sc, engine, mode, fr, frun, w)
				}
			}(w)
		}
		for s := 0; s < shards; s++ {
			if skip != nil && skip[s] {
				continue
			}
			jobs <- s
		}
		close(jobs)
		wg.Wait()
	}
	endStage1()
	if st != nil {
		st.Stage1Wall = time.Since(t0)
	}
	if err := ctx.Err(); err != nil {
		if st != nil {
			st.Wall = time.Since(t0)
			publishStats(st, true, false)
		}
		if fr != nil {
			fr.Record(flight.Event{Kind: flight.SpanRun, Engine: runFlightEngine(engine, mode),
				Run: frun, Start: frt0, Dur: fr.Now() - frt0, Bytes: int64(size)})
		}
		return runResult{shards: shards, workers: workers, ctxErr: err}
	}
	if cc != nil && len(cc.keys) > 0 {
		// The run completed, so every freshly-parsed clean chunk's
		// artifacts are final; bank them for the next run.
		c.storeChunks(cc, sc, skip)
	}
	var t1 time.Time
	if st != nil {
		t1 = time.Now()
	}
	var frt1 int64
	if fr != nil {
		frt1 = fr.Now()
	}
	endReconcile := telemetry.Region(ctx, "rocksalt.stage2.reconcile")
	violations, total := c.reconcile(ctx, code, sc, st, fr, frun)
	endReconcile()
	if fr != nil {
		fr.Record(flight.Event{Kind: flight.SpanReconcile, Run: frun,
			Start: frt1, Dur: fr.Now() - frt1, Bytes: int64(total)})
	}
	if st != nil {
		for i := range sc.results {
			r := &sc.results[i]
			// SWAR-proven shards are lane batches too (the same 4-lane
			// two-pass parser, a different inner stepper); SWARBatches is
			// the sub-census.
			if r.lane || r.swar {
				st.LaneBatches++
			}
			if r.swar {
				st.SWARBatches++
			}
			if r.scalar {
				st.ScalarFallbacks++
			}
			if r.restart {
				st.Restarts++
			}
		}
		st.Instructions = int64(sc.valid.Count())
		st.Stage2Wall = time.Since(t1)
		st.Wall = time.Since(t0)
		publishStats(st, false, total > 0)
	}
	if fr != nil {
		fr.Record(flight.Event{Kind: flight.SpanRun, Engine: runFlightEngine(engine, mode),
			Run: frun, Start: frt0, Dur: fr.Now() - frt0, Bytes: int64(size)})
	}
	return runResult{violations: violations, total: total, shards: shards, workers: workers}
}

// runFlightEngine maps the run's resolved engine to the flight
// recorder's enum — the run-level counterpart of engineName.
// flightBegin opens a flight-recorder run, returning its run id and
// start timestamp (zeros with no recorder installed).
func flightBegin(fr *flight.Recorder) (frun uint32, frt0 int64) {
	if fr == nil {
		return 0, 0
	}
	return fr.BeginRun(), fr.Now()
}

func runFlightEngine(e EngineKind, mode stepMode) flight.Engine {
	switch {
	case e == EngineReference:
		return flight.EngineReference
	case e == EngineFusedScalar:
		return flight.EngineScalar
	case mode == stepSWAR:
		return flight.EngineSWAR
	case mode == stepStride:
		return flight.EngineStrided
	default:
		return flight.EngineLanes
	}
}

// shardFlightEngine classifies how one shard was actually parsed, from
// its result flags — finer-grained than the run-level engine because a
// shard can individually back off or restart scalar.
func shardFlightEngine(e EngineKind, mode stepMode, res *shardResult) flight.Engine {
	switch {
	case e == EngineReference:
		return flight.EngineReference
	case res.swar:
		return flight.EngineSWAR
	case res.lane && mode == stepStride:
		return flight.EngineStrided
	case res.lane:
		return flight.EngineLanes
	default:
		return flight.EngineScalar
	}
}

// resolveEngine maps the requested engine to the stepper a run will
// actually use. The forced kinds (EngineStrided, EngineSWAR) build and
// semantically verify their tables on first use and degrade to the
// single-stride lanes if they cannot be readied. EngineFused — the
// default — auto-upgrades to the SWAR stepper when the tables are
// already present (shipped in the bundle or built by an earlier forced
// run) and their hot footprint fits the budget; it never auto-selects
// the plain two-stride walk, which measures slower than the
// single-stride lanes (the regression TestAutoEngineSelection pins
// this: auto must never pick a slower stepper).
func (c *Checker) resolveEngine(opts VerifyOptions) (EngineKind, stepMode) {
	engine := opts.Engine
	if c.fused == nil {
		return engine, stepSingle
	}
	switch engine {
	case EngineStrided:
		if c.fused.ensureStride() == nil {
			return engine, stepStride
		}
		return EngineFused, stepSingle
	case EngineSWAR:
		if c.fused.ensureStride() == nil && c.fused.swarReady() {
			return engine, stepSWAR
		}
		return EngineFused, stepSingle
	case EngineFused:
		if c.fused.swarAuto(opts.StrideBudgetBytes) && c.fused.ensureStride() == nil && c.fused.swarReady() {
			return engine, stepSWAR
		}
	}
	return engine, stepSingle
}

// parseOne runs stage 1 on shard s, containing panics as InternalFault
// violations so the worker (and the pool behind it) survives. fr, when
// non-nil, receives a SpanShard record (and an EventSWARBackoff instant
// when the density backoff fired) tagged with the worker index w.
// Ordinary runs parse the whole image in place; the streaming verifier
// parses a window, where s is window-relative and the shard's true
// index differs — parseShardAt takes both so flight records and panic
// details name the global shard while offsets stay window-relative
// (the harvest translates them).
func (c *Checker) parseOne(code []byte, s int, sc *scratch, engine EngineKind, mode stepMode, fr *flight.Recorder, frun uint32, w int) {
	c.parseShardAt(code, s, s, sc, engine, mode, fr, frun, w)
}

func (c *Checker) parseShardAt(code []byte, s, gs int, sc *scratch, engine EngineKind, mode stepMode, fr *flight.Recorder, frun uint32, w int) {
	res := &sc.results[s]
	var ft0 int64
	if fr != nil {
		ft0 = fr.Now()
	}
	defer func() {
		if r := recover(); r != nil {
			// Fail closed: a panicking shard becomes a structured
			// violation attributed to the shard start, carrying the
			// recovered value and stack. The worker itself survives,
			// so the pool drains normally instead of deadlocking on
			// a lost wg.Done. The global counter is bumped here, at
			// the containment site, so even a run that is later
			// canceled leaves the fault visible in metrics.
			coreMetrics.containedPanics.Add(1)
			res.targets = res.targets[:0]
			res.bad = res.bad[:0]
			res.violations = append(res.violations[:0], Violation{
				Offset: s * ShardBytes,
				Kind:   InternalFault,
				Detail: fmt.Sprintf("shard %d worker panicked: %v", gs, r),
				Stack:  string(debug.Stack()),
			})
		}
	}()
	if testShardHook != nil {
		testShardHook(s)
	}
	start := s * ShardBytes
	end := start + ShardBytes
	if end > len(code) {
		end = len(code)
	}
	// Software prefetch: stream one byte per cache line of the *next*
	// shard before the dependent-load walk starts on this one. The
	// streaming pass has high memory-level parallelism (the hardware
	// prefetcher runs ahead of it), so by the time the walk's
	// latency-bound, table-interleaved code loads reach those lines they
	// hit cache. Read-only and redundant across workers, so it needs no
	// coordination; it is skipped for the last shard.
	if end < len(code) {
		res.prefetch = touchLines(code, end, end+ShardBytes)
	}
	switch {
	case engine == EngineReference || c.fused == nil:
		res.scalar = true
		c.parseShardRef(code, start, end, sc, res)
	case engine == EngineFusedScalar:
		res.scalar = true
		c.parseShardFusedScalar(code, start, end, sc, res)
	default:
		c.parseShardFused(code, start, end, sc, res, mode)
	}
	// Overlap stage 2 with stage 1: the shard's bitmap words are final
	// the moment its parse returns (shards own disjoint word ranges), so
	// its in-shard jump targets can be resolved here, on the parallel
	// workers, instead of on reconcile's serial path. Only cross-shard
	// targets — typically a small minority — remain for stage 2; proven
	// failures are banked in res.bad and replayed by reconcile, so the
	// report is unchanged.
	kept := res.targets[:0]
	for _, t := range res.targets {
		if int(t) >= start && int(t) < end {
			if !sc.valid.Get(int(t)) {
				res.bad = append(res.bad, t)
			}
			continue
		}
		kept = append(kept, t)
	}
	res.targets = kept
	if fr != nil {
		now := fr.Now()
		fr.Record(flight.Event{Kind: flight.SpanShard, Engine: shardFlightEngine(engine, mode, res),
			Worker: uint16(w), Shard: uint32(gs), Run: frun, Start: ft0, Dur: now - ft0, Bytes: int64(end - start)})
		if res.backoff {
			fr.Record(flight.Event{Kind: flight.EventSWARBackoff, Engine: flight.EngineSWAR,
				Worker: uint16(w), Shard: uint32(gs), Run: frun, Start: now})
		}
	}
}

// touchLines reads one byte per 64-byte cache line of code[start:end)
// (clamped to the image) and folds them into a throwaway value the
// caller stores, which keeps the loop from looking dead. This is the
// portable software-prefetch idiom: a pure streaming read that drags
// the lines into cache ahead of their latency-bound consumer.
func touchLines(code []byte, start, end int) byte {
	if end > len(code) {
		end = len(code)
	}
	var x byte
	for i := start; i < end; i += 64 {
		x ^= code[i]
	}
	return x
}

// stopShard appends the shard-local violation that ends a parse.
func stopShard(res *shardResult, code []byte, off int, kind ViolationKind, detail string) {
	res.violations = append(res.violations, violation(code, off, kind, detail))
}

// parseShardFused is stage 1 around the fused product automaton. The
// whole-bundle prefix of the shard runs through the four-lane
// interleaved parser — with the single-stride, two-stride or SWAR
// stepper per the resolved mode — which assumes the image is
// compliant; if it finds anything irregular its partial writes are
// erased and the canonical scalar loop below re-parses the shard from
// the start, so every violating shard is diagnosed by exactly the same
// code path regardless of the optimistic phase. A trailing partial
// bundle (only the image's last shard can have one) is parsed scalar
// as well, continuing where the lanes proved the prefix regular.
//
// The lane engines support bundle sizes 16, 32 and 64: the pass-2
// boundary extraction masks bundle bits per 64-bit bitmap word
// (laneExtract), so a larger bundle has no in-word boundary to check
// and such checkers take the canonical scalar walk — every
// policy-relevant decision lives there and in the shared helpers, so
// the verdict is engine-invariant either way (FuzzPolicyEquiv holds
// the engines identical per policy).
func (c *Checker) parseShardFused(code []byte, start, end int, sc *scratch, res *shardResult, mode stepMode) {
	bundle := c.params.bundle
	if bundle <= 64 {
		full := start + (end-start)/bundle*bundle
		if full-start >= laneCount*bundle {
			ok := false
			if mode == stepSWAR {
				var dense bool
				ok, dense = c.parseShardSWAR(code, start, full, sc, res)
				if ok {
					res.swar = true
				} else if dense {
					// Density backoff: the multi-byte rounds were losing on
					// this shard. Erase the probe's writes and re-parse with
					// the four-lane single-stride walk, which is faster on
					// event-dense code (see the backoff comment in
					// engine_swar.go); a further failure there still falls
					// to the canonical scalar re-parse below.
					sc.valid.ClearRange(start, end)
					sc.pairJmp.ClearRange(start, end)
					res.reset()
					res.backoff = true
					if ok = c.parseShardLanes(code, start, full, sc, res, false); ok {
						res.lane = true
					}
				}
			} else if ok = c.parseShardLanes(code, start, full, sc, res, mode == stepStride); ok {
				res.lane = true
			}
			if ok {
				if full < end {
					c.parseShardFusedScalar(code, full, end, sc, res)
				}
				return
			}
			sc.valid.ClearRange(start, end)
			sc.pairJmp.ClearRange(start, end)
			backedOff := res.backoff
			res.reset()
			res.backoff = backedOff // the SWAR backoff happened regardless of the later restart
			res.restart = true
			c.parseShardFusedScalar(code, start, end, sc, res)
			return
		}
	}
	res.scalar = true
	c.parseShardFusedScalar(code, start, end, sc, res)
}

// parseShardFusedScalar is the sequential fused walk: one table walk per
// offset yields every component's earliest accept length, and the seed's
// priority — masked, then noCF, then direct — picks the match. The shard
// start is a bundle boundary, which the policy requires to be an
// instruction boundary, so on any compliant image the shard-local parse
// reproduces exactly the boundaries the sequential parse would find. A
// matched unit extending past the shard end means that bundle boundary
// sits inside an instruction — itself a violation — so the shard stops
// there instead of racing into its neighbour's range.
func (c *Checker) parseShardFusedScalar(code []byte, start, end int, sc *scratch, res *shardResult) {
	f := c.fused
	table, tags := f.table, f.tags
	nocf1 := &f.nocf1
	fstart, quiet := uint16(f.start), uint16(f.quiet)
	mlen, bundle := c.params.maskLen, c.params.bundle
	size := len(code)
	pos := start

	// Boundary bits are buffered in a register-resident word: the shard
	// owns whole words of the bitmap (ShardBytes is a multiple of 64) and
	// pos only moves forward, so each word is flushed exactly once — at
	// the word crossing or at the single exit below — replacing one
	// read-modify-write of shared memory per instruction with an OR.
	wvalid := sc.valid.Words()
	curw := uint(pos) / 64
	var acc uint64

loop:
	for pos < end {
		if w := uint(pos) / 64; w != curw {
			wvalid[curw] |= acc
			curw, acc = w, 0
		}
		acc |= 1 << (uint(pos) % 64)
		// Single-byte fast path: the byte alone is a complete noCF
		// instruction and resolves every component (NOP padding is the
		// common case), so the walk and its bookkeeping are skipped.
		if nocf1[code[pos]] {
			pos++
			continue
		}
		saved := pos

		// The fused walk, inlined (see fusedDFA.scan for the stop-rule
		// argument): quiet states cost one table load and one compare;
		// the walk ends as soon as the priority decision is determined.
		state := fstart
		lm, ln, ld := 0, 0, 0
		off := saved
		for off < size {
			state = table[state][code[off]]
			off++
			if state < quiet {
				continue
			}
			tag := tags[state]
			n := off - saved
			if tag&tagAccMasked != 0 {
				lm = n
				break
			}
			if tag&tagAccNoCF != 0 && ln == 0 {
				ln = n
			}
			if tag&tagAccDirect != 0 && ld == 0 {
				ld = n
			}
			if tag&tagLiveMasked == 0 &&
				(ln != 0 || tag&tagLiveNoCF == 0 && (ld != 0 || tag&tagLiveDirect == 0)) {
				break
			}
		}

		// The pos > end guards keep the (never-inlined) straddle helper
		// off the hot path; straddling is always a violation en route.
		switch {
		case lm != 0:
			pos = saved + lm
			if pos > end && c.straddles(sc, res, code, saved, pos, end) {
				break loop
			}
			sc.pairJmp.Set(saved + mlen)
			// The call form of the pair is FF /2 (0xD0|r in the modrm).
			if c.AlignedCalls && code[pos-1]>>3&7 == 2 && pos%bundle != 0 {
				stopShard(res, code, pos, MisalignedCall, "masked call leaves a misaligned return address")
				break loop
			}
		case ln != 0:
			pos = saved + ln
			if pos > end && c.straddles(sc, res, code, saved, pos, end) {
				break loop
			}
		case ld != 0:
			pos = saved + ld
			if pos > end && c.straddles(sc, res, code, saved, pos, end) {
				break loop
			}
			if c.directJump(sc, res, code, saved, pos) {
				break loop
			}
		default:
			stopShard(res, code, saved, IllegalInstruction, "")
			break loop
		}
	}
	wvalid[curw] |= acc
}

// parseShardRef is the reference stage 1: the seed's Figure 5 loop, up
// to three sequential DFA match attempts per offset. It is the oracle
// the fused engine is held byte-identical to.
func (c *Checker) parseShardRef(code []byte, start, end int, sc *scratch, res *shardResult) {
	masked, noCF, direct := c.masked, c.noCF, c.direct
	pos := start
	for pos < end {
		sc.valid.Set(pos)
		saved := pos
		if match(masked, code, &pos) {
			if c.straddles(sc, res, code, saved, pos, end) {
				return
			}
			sc.pairJmp.Set(saved + c.params.maskLen)
			// The call form of the pair is FF /2 (0xD0|r in the modrm).
			if c.AlignedCalls && code[pos-1]>>3&7 == 2 && pos%c.params.bundle != 0 {
				stopShard(res, code, pos, MisalignedCall, "masked call leaves a misaligned return address")
				return
			}
			continue
		}
		if match(noCF, code, &pos) {
			if c.straddles(sc, res, code, saved, pos, end) {
				return
			}
			continue
		}
		if match(direct, code, &pos) {
			if c.straddles(sc, res, code, saved, pos, end) {
				return
			}
			if c.directJump(sc, res, code, saved, pos) {
				return
			}
			continue
		}
		stopShard(res, code, saved, IllegalInstruction, "")
		return
	}
}

// straddles flags a matched unit extending past the shard end (a bundle
// boundary inside an instruction) unless the shard ends at the image
// end. The image end is judged in absolute coordinates (sc.base+end)
// so a windowed parse only grants the allowance at the true end of the
// image, not at the end of every window.
func (c *Checker) straddles(sc *scratch, res *shardResult, code []byte, saved, pos, end int) bool {
	if pos <= end || sc.base+end == sc.imgSize {
		return false
	}
	stopShard(res, code, end, BundleStraddle, fmt.Sprintf("instruction at %#x extends past the boundary", saved))
	return true
}

// directJump applies the policy checks shared by both engines to a
// direct-jump match occupying code[saved:pos]; it reports whether the
// shard parse must stop. Targets are classified in absolute image
// coordinates (the window-relative destination shifted by sc.base) so
// a windowed parse agrees with a whole-image parse; in-image targets
// are banked window-relative, matching the bitmap the caller owns.
func (c *Checker) directJump(sc *scratch, res *shardResult, code []byte, saved, pos int) (stop bool) {
	if c.AlignedCalls && code[saved] == 0xe8 && pos%c.params.bundle != 0 {
		stopShard(res, code, pos, MisalignedCall, "call leaves a misaligned return address")
		return true
	}
	t, ok := jumpTarget(code, saved, pos)
	if !ok {
		stopShard(res, code, saved, IllegalInstruction, "unrecognized direct jump form")
		return true
	}
	tAbs := t + int64(sc.base)
	if tAbs >= 0 && tAbs < int64(sc.imgSize) {
		res.targets = append(res.targets, int32(t))
	} else if !c.targetAllowed(uint32(tAbs)) {
		detail := fmt.Sprintf("direct jump targets %#x, outside the image", uint32(tAbs))
		if c.params.guard != 0 && uint32(tAbs) < c.params.guard {
			detail = fmt.Sprintf("direct jump targets %#x, inside the guard region below %#x", uint32(tAbs), c.params.guard)
		}
		stopShard(res, code, saved, TargetOutOfImage, detail)
		return true
	}
	return false
}

// targetAllowed reports whether an out-of-image direct-jump target is
// permitted: it must be a whitelisted entry point and must not fall in
// the policy's guard region.
func (c *Checker) targetAllowed(t uint32) bool {
	if c.params.guard != 0 && t < c.params.guard {
		return false
	}
	return c.Entries[t]
}

// jumpTarget decodes the direct jump occupying code[saved:pos] and
// computes its absolute destination (the analogue of Figure 5's
// extract). The destination may lie outside the image; the caller
// decides whether that is legal.
func jumpTarget(code []byte, saved, pos int) (int64, bool) {
	var rel int32
	switch b := code[saved]; {
	case b == 0xeb || b>>4 == 0x7: // JMP rel8 / Jcc rel8
		rel = int32(int8(code[pos-1]))
	case b == 0xe8 || b == 0xe9: // CALL/JMP rel32
		rel = int32(le32(code[pos-4 : pos]))
	case b == 0x0f: // Jcc rel32
		rel = int32(le32(code[pos-4 : pos]))
	default:
		return 0, false
	}
	return int64(pos) + int64(rel), true
}

// reconcile is stage 2: merge shard results, validate every direct-jump
// target against the merged boundary map, flag bundle boundaries the
// parse never reached, and select the deterministic lowest-offset
// violation ordering. A safe image takes the nil fast path: no slice is
// allocated. When st is non-nil the uncapped per-kind violation census
// is recorded before the report cap is applied, so Stats sees every
// violation even when the Report is truncated.
func (c *Checker) reconcile(ctx context.Context, code []byte, sc *scratch, st *Stats, fr *flight.Recorder, frun uint32) (all []Violation, total int) {
	// The image size comes from the scratch geometry, not len(code):
	// the streaming verifier reconciles with code == nil (the window
	// bytes are gone), in which case stage-2 violations simply carry no
	// Window excerpt (violation guards the slice access).
	size := sc.imgSize
	for i := range sc.results {
		all = append(all, sc.results[i].violations...)
	}
	// Jump-target validation. In-shard targets were already resolved on
	// the stage-1 workers (parseOne) with their failures banked in bad;
	// here only the cross-shard leftovers are checked against the merged
	// boundary map. Several jumps may share a bad target; dedupe after
	// sorting so the report is one violation per offending offset.
	var jt0 time.Time
	if st != nil {
		jt0 = time.Now()
	}
	var fjt0 int64
	if fr != nil {
		fjt0 = fr.Now()
	}
	endJumps := telemetry.Region(ctx, "rocksalt.stage2.jumps")
	var badTargets []int
	for i := range sc.results {
		r := &sc.results[i]
		for _, t := range r.bad {
			badTargets = append(badTargets, int(t))
		}
		for _, t := range r.targets {
			if !sc.valid.Get(int(t)) {
				badTargets = append(badTargets, int(t))
			}
		}
	}
	if len(badTargets) > 0 {
		sort.Ints(badTargets)
		prev := -1
		for _, t := range badTargets {
			if t == prev {
				continue
			}
			prev = t
			all = append(all, violation(code, t, TargetNotBoundary, "direct jump targets a non-boundary offset"))
		}
	}
	endJumps()
	if st != nil {
		st.JumpsWall = time.Since(jt0)
	}
	if fr != nil {
		fr.Record(flight.Event{Kind: flight.SpanJumps, Run: frun,
			Start: fjt0, Dur: fr.Now() - fjt0, Bytes: int64(len(badTargets))})
	}
	// Every bundle boundary must be an instruction boundary. Shards the
	// lane/SWAR parser proved regular already had every bundle boundary
	// in their range checked by pass 2 (laneExtract fails otherwise and
	// the shard restarts scalar), so the scan skips them — for a
	// compliant image that removes the whole pass. The proof only covers
	// a full shard: a short final shard has a scalar-parsed tail, and a
	// cache-restored shard (no parse flags set) replays bits without the
	// pass-2 check, so both still scan. ShardBytes is a multiple of
	// every supported bundle size, so the per-shard scan visits exactly
	// the offsets the whole-image scan would.
	for s := range sc.results {
		r := &sc.results[s]
		start := s * ShardBytes
		end := start + ShardBytes
		if end > size {
			end = size
		}
		if (r.lane || r.swar) && end-start == ShardBytes {
			continue
		}
		for i := start; i < end; i += c.params.bundle {
			if !sc.valid.Get(i) {
				all = append(all, violation(code, i, BundleStraddle, ""))
			}
		}
	}
	// Violations never collide on (Offset, Kind): each shard stops at
	// its first violation and the global scan emits at most one of each
	// kind per offset, so this order is total and the report is
	// deterministic. The stable sort is belt and braces.
	if len(all) > 1 {
		sort.SliceStable(all, func(i, j int) bool {
			if all[i].Offset != all[j].Offset {
				return all[i].Offset < all[j].Offset
			}
			return all[i].Kind < all[j].Kind
		})
	}
	total = len(all)
	if st != nil {
		for i := range all {
			st.ViolationsByKind[all[i].Kind]++
		}
		st.ContainedPanics = st.ViolationsByKind[InternalFault]
	}
	if len(all) > MaxReportViolations {
		all = all[:MaxReportViolations]
	}
	return all, total
}

package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// This file is the staged verification engine. The NaCl policy itself
// licenses the decomposition: every 32-byte bundle boundary must be an
// instruction boundary and no matched unit (including the two-
// instruction masked pair) may straddle one, so the image partitions
// into aligned groups of bundles that parse independently.
//
// Stage 1 parses each shard with the Figure 5/6 match loop, producing
// shard-local valid/pairJmp bitmaps, the shard's direct-jump targets,
// and any shard-local violation. Stage 2 is a cheap sequential
// reconciliation: it validates every collected jump target against the
// merged boundary map, flags unreached bundle boundaries, and sorts all
// violations by (offset, kind) so the reported first violation is
// identical no matter how many workers ran stage 1.

// VerifyOptions configures a verification run.
type VerifyOptions struct {
	// Workers is the number of goroutines parsing stage-1 shards: 1 (or
	// an image smaller than one shard) runs in-line with no goroutines;
	// 0 or negative means runtime.GOMAXPROCS(0).
	Workers int
}

// ShardBytes is the stage-1 shard size: an aligned group of 512
// bundles. It is a constant rather than an option because the shard
// decomposition defines the canonical violation report — with a fixed
// decomposition, sequential and parallel runs agree byte-for-byte.
const ShardBytes = 512 * BundleSize

// shardResult is what stage 1 reports per shard, besides the bitmap
// ranges it writes in place.
type shardResult struct {
	// violations holds the shard-local violation that stopped the
	// parse, if any (at most one entry).
	violations []Violation
	// targets are the in-image destinations of the shard's direct
	// jumps, validated globally in stage 2.
	targets []int32
}

// VerifyWith runs the staged engine and returns the structured report.
func (c *Checker) VerifyWith(code []byte, opts VerifyOptions) *Report {
	_, _, rep := c.run(code, opts.Workers)
	return rep
}

// AnalyzeWith is VerifyWith plus the instruction-boundary bitmap and
// masked-pair jump positions (see Analyze for their meaning). The
// bitmaps are only meaningful when the report is Safe.
func (c *Checker) AnalyzeWith(code []byte, opts VerifyOptions) (valid, pairJmp []bool, rep *Report) {
	return c.run(code, opts.Workers)
}

// run executes stage 1 over the shard decomposition and stage 2 over
// the merged results.
func (c *Checker) run(code []byte, workers int) (valid, pairJmp []bool, rep *Report) {
	size := len(code)
	shards := (size + ShardBytes - 1) / ShardBytes
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	if workers < 1 {
		workers = 1
	}
	valid = make([]bool, size)
	pairJmp = make([]bool, size)
	results := make([]shardResult, shards)

	parse := func(s int) {
		start := s * ShardBytes
		end := start + ShardBytes
		if end > size {
			end = size
		}
		// Workers write disjoint [start,end) ranges of the shared
		// bitmaps, so no synchronization is needed beyond the pool's.
		results[s] = c.parseShard(code, start, end, valid, pairJmp)
	}
	if workers == 1 {
		for s := 0; s < shards; s++ {
			parse(s)
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int, shards)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := range jobs {
					parse(s)
				}
			}()
		}
		for s := 0; s < shards; s++ {
			jobs <- s
		}
		close(jobs)
		wg.Wait()
	}
	return valid, pairJmp, c.reconcile(code, valid, results, shards, workers)
}

// parseShard is stage 1: the Figure 5 loop restricted to one shard.
// The shard start is a bundle boundary, which the policy requires to be
// an instruction boundary, so on any compliant image the shard-local
// parse reproduces exactly the boundaries the sequential parse would
// find. A matched unit extending past the shard end means that bundle
// boundary sits inside an instruction — itself a violation — so the
// shard stops there instead of racing into its neighbour's range.
func (c *Checker) parseShard(code []byte, start, end int, valid, pairJmp []bool) (res shardResult) {
	masked, noCF, direct := c.masked, c.noCF, c.direct
	size := len(code)
	stop := func(off int, kind ViolationKind, detail string) {
		res.violations = append(res.violations, violation(code, off, kind, detail))
	}
	straddles := func(saved, pos int) bool {
		if pos <= end || end == size {
			return false
		}
		stop(end, BundleStraddle, fmt.Sprintf("instruction at %#x extends past the boundary", saved))
		return true
	}
	pos := start
	for pos < end {
		valid[pos] = true
		saved := pos
		if match(masked, code, &pos) {
			if straddles(saved, pos) {
				return
			}
			pairJmp[saved+maskLen] = true
			// The call form of the pair is FF /2 (0xD0|r in the modrm).
			if c.AlignedCalls && code[pos-1]>>3&7 == 2 && pos%BundleSize != 0 {
				stop(pos, MisalignedCall, "masked call leaves a misaligned return address")
				return
			}
			continue
		}
		if match(noCF, code, &pos) {
			if straddles(saved, pos) {
				return
			}
			continue
		}
		if match(direct, code, &pos) {
			if straddles(saved, pos) {
				return
			}
			if c.AlignedCalls && code[saved] == 0xe8 && pos%BundleSize != 0 {
				stop(pos, MisalignedCall, "call leaves a misaligned return address")
				return
			}
			t, ok := jumpTarget(code, saved, pos)
			if !ok {
				stop(saved, IllegalInstruction, "unrecognized direct jump form")
				return
			}
			if t >= 0 && t < int64(size) {
				res.targets = append(res.targets, int32(t))
			} else if !c.Entries[uint32(t)] {
				stop(saved, TargetOutOfImage, fmt.Sprintf("direct jump targets %#x, outside the image", uint32(t)))
				return
			}
			continue
		}
		stop(saved, IllegalInstruction, "")
		return
	}
	return
}

// jumpTarget decodes the direct jump occupying code[saved:pos] and
// computes its absolute destination (the analogue of Figure 5's
// extract). The destination may lie outside the image; the caller
// decides whether that is legal.
func jumpTarget(code []byte, saved, pos int) (int64, bool) {
	var rel int32
	switch b := code[saved]; {
	case b == 0xeb || b>>4 == 0x7: // JMP rel8 / Jcc rel8
		rel = int32(int8(code[pos-1]))
	case b == 0xe8 || b == 0xe9: // CALL/JMP rel32
		rel = int32(le32(code[pos-4 : pos]))
	case b == 0x0f: // Jcc rel32
		rel = int32(le32(code[pos-4 : pos]))
	default:
		return 0, false
	}
	return int64(pos) + int64(rel), true
}

// reconcile is stage 2: merge shard results, validate every direct-jump
// target against the merged boundary map, flag bundle boundaries the
// parse never reached, and select the deterministic lowest-offset
// violation ordering.
func (c *Checker) reconcile(code []byte, valid []bool, results []shardResult, shards, workers int) *Report {
	size := len(code)
	var all []Violation
	for i := range results {
		all = append(all, results[i].violations...)
	}
	// Cross-shard jump-target validation against the merged boundary
	// map. Several jumps may share a bad target; dedupe after sorting
	// so the report is one violation per offending offset.
	var badTargets []int
	for i := range results {
		for _, t := range results[i].targets {
			if !valid[t] {
				badTargets = append(badTargets, int(t))
			}
		}
	}
	if len(badTargets) > 0 {
		sort.Ints(badTargets)
		prev := -1
		for _, t := range badTargets {
			if t == prev {
				continue
			}
			prev = t
			all = append(all, violation(code, t, TargetNotBoundary, "direct jump targets a non-boundary offset"))
		}
	}
	// Every bundle boundary must be an instruction boundary.
	for i := 0; i < size; i += BundleSize {
		if !valid[i] {
			all = append(all, violation(code, i, BundleStraddle, ""))
		}
	}
	// Violations never collide on (Offset, Kind): each shard stops at
	// its first violation and the global scan emits at most one of each
	// kind per offset, so this order is total and the report is
	// deterministic. The stable sort is belt and braces.
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Offset != all[j].Offset {
			return all[i].Offset < all[j].Offset
		}
		return all[i].Kind < all[j].Kind
	})
	total := len(all)
	if len(all) > MaxReportViolations {
		all = all[:MaxReportViolations]
	}
	return &Report{
		Safe:       total == 0,
		Size:       size,
		Shards:     shards,
		Workers:    workers,
		Violations: all,
		Total:      total,
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rocksalt/internal/flight"
	"rocksalt/internal/telemetry"
	"rocksalt/internal/vcache"
)

// This file is the incremental (delta) verifier: re-verification after
// an edit in time proportional to the edited bytes, not the image.
//
// The substrate is the same decomposition the chunk cache rests on: a
// stage-1 shard parse is a pure function of its chunk's bytes plus at
// most lookahead()-1 bytes past the chunk end (see fusedDFA.lookahead),
// the image size, and the checker configuration. A DeltaState retains
// the whole-image stage-1 artifacts of the previous round — the packed
// boundary/pairJmp bitmaps and every shard's result (targets, proven-bad
// targets, parse-mode flags): the in-memory, whole-image form of the
// chunk cache's chunkEntry. A delta round re-parses only the chunks
// whose parse inputs may have changed and then re-runs the ordinary
// stage-2 reconciliation over the merged results.
//
// Verdicts are byte-identical to a from-scratch Verify because both
// stages are reproduced exactly:
//
//   - Stage 1: a retained chunk's bytes, overhang bytes, offset, image
//     size and configuration are unchanged (anything else dirties it),
//     so its retained artifacts are exactly what re-parsing it would
//     produce. Dirty chunks are re-parsed through the identical engine
//     dispatch (parseShardAt), after their bitmap words and results are
//     erased — the same erase-then-reparse discipline the lane engine
//     uses for restarts.
//   - Stage 2: reconcile runs unchanged over all shard results, so
//     cross-chunk jump validation, bundle-boundary coverage and the
//     deterministic (offset, kind) ordering are recomputed against the
//     current merged state every round. Stale cross-chunk conclusions
//     cannot survive: stage 2 never reads the previous round's output.
//
// Image size changes need care beyond byte ranges, because stage 1
// classifies direct-jump targets against the image size:
//   - every chunk whose parse window reaches past min(old, new) size is
//     re-parsed (its bytes or straddle/walk envelope changed);
//   - a retained chunk holding a banked target at or beyond the new
//     size is re-parsed (on a shrink the target's classification flips
//     to out-of-image);
//   - if any whitelisted entry point lies in [min, max) of the two
//     sizes, everything is re-parsed: a jump to such an entry was
//     legally out-of-image in one size and an in-image target needing
//     boundary validation in the other, and the allowed form leaves no
//     artifact to re-examine.
// FuzzDeltaEquiv exercises all of these against full verification.

// Range describes one edited byte span of the image, [Off, Off+Len).
// Ranges may overlap chunk boundaries, each other, or the image end
// (they are clamped). An edit that moves bytes (an insertion or
// deletion) must be reported as changing everything from the edit point
// to the image end — VerifyDelta's contract is that bytes outside every
// range (and below min(old, new) size) are identical to the previous
// round's image.
type Range struct {
	Off int
	Len int
}

// DeltaState is the retained artifact a VerifyDelta round reconciles
// against: the previous round's merged stage-1 state for the whole
// image. It is owned by the delta session — never pooled — and is
// mutated and returned by each round. A DeltaState is only meaningful
// for the checker that produced it; handing it to a differently
// configured checker is detected (the config key mismatches) and
// degrades to a full re-parse, never to a wrong verdict. Its memory
// footprint is size/4 bytes of bitmaps plus ~100 bytes per 16 KiB
// shard.
//
// A DeltaState must not be used concurrently: one round at a time.
type DeltaState struct {
	cfg      vcache.Key
	size     int
	overhang int
	sc       scratch
	// chunkClean[i] records that cacheable chunk i's latest parse found
	// no shard-local violation, licensing replay next round. Violating
	// chunks are re-parsed every round (mirroring the chunk cache's
	// never-store-violations rule), so a verdict can never be assembled
	// from stale violations.
	chunkClean []bool
}

// Size returns the image size the state currently describes.
func (st *DeltaState) Size() int { return st.size }

// VerifyDelta re-verifies code after an edit, re-parsing only the
// chunks overlapping the changed ranges (plus whatever the state
// cannot vouch for) and re-running stage 2 against the merged state.
// prev is the state returned by the previous round, or nil for the
// first round (which parses everything and builds the state); it is
// consumed — the caller must use the returned state for the next round.
// The report is byte-identical to c.VerifyWith(code, opts) on the same
// image, with the delta reuse counters added in Stats.
func (c *Checker) VerifyDelta(code []byte, changed []Range, prev *DeltaState) (*Report, *DeltaState, error) {
	return c.VerifyDeltaContext(context.Background(), code, changed, prev, VerifyOptions{})
}

// VerifyDeltaWith is VerifyDelta with explicit options. Engine and
// Workers apply to the re-parsed shards; when Cache is set the round
// also stores refreshed chunk entries back through the verdict cache,
// so a delta session warms the ordinary keyed path. CacheKey is
// ignored (a delta round never computes whole-image keys — that would
// cost a full content hash).
func (c *Checker) VerifyDeltaWith(code []byte, changed []Range, prev *DeltaState, opts VerifyOptions) (*Report, *DeltaState, error) {
	return c.VerifyDeltaContext(context.Background(), code, changed, prev, opts)
}

// VerifyDeltaContext is VerifyDeltaWith under a context. An interrupted
// round returns the usual Canceled/Deadline report plus a state that
// remains sound: every chunk of the round's dirty set is marked
// unclean, so the next round re-parses whatever this one may have left
// half-written.
func (c *Checker) VerifyDeltaContext(ctx context.Context, code []byte, changed []Range, prev *DeltaState, opts VerifyOptions) (*Report, *DeltaState, error) {
	if c.fused == nil {
		return nil, prev, errors.New("core: VerifyDelta requires fused tables (reference-only checkers cannot retain chunk state)")
	}
	for _, r := range changed {
		if r.Off < 0 || r.Len < 0 {
			return nil, prev, fmt.Errorf("core: negative delta range {%d, %d}", r.Off, r.Len)
		}
	}
	size := len(code)
	shards := shardCount(size)
	nc := cacheableChunks(size)
	cfg := c.configKey()
	overhang := c.fused.lookahead()

	st := prev
	fresh := st == nil || st.cfg != cfg
	if fresh {
		st = &DeltaState{cfg: cfg, overhang: overhang}
	}
	var t0 time.Time
	stats := Stats{
		BytesScanned: int64(size),
		Bundles:      int64((size + c.params.bundle - 1) / c.params.bundle),
		Shards:       int64(shards),
	}
	t0 = time.Now()
	engine, mode := c.resolveEngine(opts)
	stats.Engine = engineName(engine, mode)

	// The dirty set: cacheable chunks whose retained artifacts cannot be
	// trusted this round. The tail (every shard past the cacheable
	// prefix) is always re-parsed — its parse depends on the image end.
	dirty := make([]bool, nc)
	if fresh {
		for i := range dirty {
			dirty[i] = true
		}
	} else {
		for i := range dirty {
			if i >= len(st.chunkClean) || !st.chunkClean[i] {
				dirty[i] = true
			}
		}
		for _, r := range changed {
			lo, hi := r.Off, r.Off+r.Len
			if hi > size {
				hi = size
			}
			if hi <= lo {
				continue
			}
			// Chunk i's parse reads [i*chunkBytes, (i+1)*chunkBytes +
			// overhang); it is dirty iff the edit intersects that window.
			i := (lo - overhang) / chunkBytes
			if i < 0 {
				i = 0
			}
			for ; i < nc && i*chunkBytes < hi; i++ {
				if lo < (i+1)*chunkBytes+overhang {
					dirty[i] = true
				}
			}
		}
		if size != st.size {
			lo, hi := st.size, size
			if lo > hi {
				lo, hi = hi, lo
			}
			all := false
			for e, ok := range c.Entries {
				if ok && int64(e) >= int64(lo) && int64(e) < int64(hi) {
					all = true
					break
				}
			}
			for i := range dirty {
				if all || (i+1)*chunkBytes+overhang > lo {
					dirty[i] = true
				}
			}
			// A retained target at or beyond the new size would have been
			// classified out-of-image by a full run; re-parse its chunk.
			for i := 0; i < nc; i++ {
				if dirty[i] {
					continue
				}
				for s := i * chunkShards; s < (i+1)*chunkShards && s < len(st.sc.results); s++ {
					for _, t := range st.sc.results[s].targets {
						if int(t) >= lo {
							dirty[i] = true
							break
						}
					}
					if dirty[i] {
						break
					}
				}
			}
		}
	}

	// Resize the retained state to the new geometry, preserving the
	// clean chunks' bits; anything near or past min(old, new) size is
	// in the dirty set and about to be erased anyway.
	st.sc.valid.Resize(size)
	st.sc.pairJmp.Resize(size)
	if cap(st.sc.results) < shards {
		res := make([]shardResult, shards)
		copy(res, st.sc.results)
		st.sc.results = res
	} else {
		old := len(st.sc.results)
		st.sc.results = st.sc.results[:shards]
		for s := old; s < shards; s++ {
			st.sc.results[s].reset()
		}
	}
	st.sc.base, st.sc.imgSize = 0, size

	// Erase-then-reparse: list the dirty shards and clear their bitmap
	// words and results, so the parse appends onto clean slates.
	var reparse []int
	for i := 0; i < nc; i++ {
		if dirty[i] {
			for s := i * chunkShards; s < (i+1)*chunkShards; s++ {
				reparse = append(reparse, s)
			}
		}
	}
	for s := nc * chunkShards; s < shards; s++ {
		reparse = append(reparse, s)
	}
	var reparsedBytes int64
	for _, s := range reparse {
		lo, hi := s*ShardBytes, (s+1)*ShardBytes
		if hi > size {
			hi = size
		}
		st.sc.valid.ClearRange(lo, hi)
		st.sc.pairJmp.ClearRange(lo, hi)
		st.sc.results[s].reset()
		reparsedBytes += int64(hi - lo)
	}

	dirtyChunks := 0
	for i := range dirty {
		if dirty[i] {
			dirtyChunks++
		}
	}
	stats.DeltaChunksReparsed = int64(dirtyChunks)
	if shards > nc*chunkShards {
		stats.DeltaChunksReparsed++ // the never-retained tail
	}
	stats.DeltaChunksReplayed = int64(nc - dirtyChunks)
	stats.DeltaBytesReparsed = reparsedBytes

	fr := flight.Active()
	frun, frt0 := flightBegin(fr)
	if fr != nil {
		for i := range dirty {
			if !dirty[i] {
				fr.Record(flight.Event{Kind: flight.EventChunkReplay, Engine: flight.EngineCache,
					Shard: uint32(i * chunkShards), Run: frun, Start: fr.Now(), Bytes: chunkBytes})
			}
		}
	}

	workers := clampWorkers(opts.Workers, len(reparse))
	endStage1 := telemetry.Region(ctx, "rocksalt.stage1.parse")
	if workers == 1 {
		for _, s := range reparse {
			if ctx.Err() != nil {
				break
			}
			c.parseOne(code, s, &st.sc, engine, mode, fr, frun, 0)
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int, len(reparse))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for s := range jobs {
					if ctx.Err() != nil {
						return
					}
					c.parseOne(code, s, &st.sc, engine, mode, fr, frun, w)
				}
			}(w)
		}
		for _, s := range reparse {
			jobs <- s
		}
		close(jobs)
		wg.Wait()
	}
	endStage1()
	stats.Stage1Wall = time.Since(t0)

	// chunkClean tracks the new geometry from here on; an interrupted
	// round distrusts the whole dirty set.
	if len(st.chunkClean) < nc {
		st.chunkClean = append(st.chunkClean, make([]bool, nc-len(st.chunkClean))...)
	}
	st.chunkClean = st.chunkClean[:nc]
	st.size = size
	if err := ctx.Err(); err != nil {
		for i := range dirty {
			if dirty[i] {
				st.chunkClean[i] = false
			}
		}
		stats.Wall = time.Since(t0)
		publishStats(&stats, true, false)
		if fr != nil {
			fr.Record(flight.Event{Kind: flight.SpanDelta, Run: frun,
				Start: frt0, Dur: fr.Now() - frt0, Bytes: reparsedBytes})
		}
		rep := c.report(runResult{shards: shards, workers: workers, ctxErr: err}, size)
		rep.Stats = stats
		return rep, st, nil
	}
	for i := range dirty {
		if !dirty[i] {
			continue
		}
		clean := true
		for s := i * chunkShards; s < (i+1)*chunkShards; s++ {
			if len(st.sc.results[s].violations) > 0 {
				clean = false
				break
			}
		}
		st.chunkClean[i] = clean
	}

	// Satellite of the chunk cache: bank the refreshed chunks so a delta
	// session also warms the ordinary keyed Verify path. Only re-parsed
	// clean chunks are hashed — O(changed bytes), like the parse.
	if opts.Cache != nil {
		var ft0 int64
		if fr != nil {
			ft0 = fr.Now()
		}
		var storedBytes int64
		wvalid, wpair := st.sc.valid.Words(), st.sc.pairJmp.Words()
		for i := range dirty {
			if !dirty[i] || !st.chunkClean[i] {
				continue
			}
			w0 := i * chunkBytes / 64
			e := &chunkEntry{
				valid:   append([]uint64(nil), wvalid[w0:w0+chunkBytes/64]...),
				pairJmp: append([]uint64(nil), wpair[w0:w0+chunkBytes/64]...),
			}
			for s := i * chunkShards; s < (i+1)*chunkShards; s++ {
				e.targets = append(e.targets, st.sc.results[s].targets...)
				e.bad = append(e.bad, st.sc.results[s].bad...)
			}
			opts.Cache.Put(c.chunkSum(cfg, code, i, overhang), e, e.size())
			storedBytes += chunkBytes
		}
		if fr != nil && storedBytes > 0 {
			fr.Record(flight.Event{Kind: flight.SpanCacheStore, Engine: flight.EngineCache,
				Run: frun, Start: ft0, Dur: fr.Now() - ft0, Bytes: storedBytes})
		}
	}

	t1 := time.Now()
	var frt1 int64
	if fr != nil {
		frt1 = fr.Now()
	}
	endReconcile := telemetry.Region(ctx, "rocksalt.stage2.reconcile")
	violations, total := c.reconcile(ctx, code, &st.sc, &stats, fr, frun)
	endReconcile()
	if fr != nil {
		fr.Record(flight.Event{Kind: flight.SpanReconcile, Run: frun,
			Start: frt1, Dur: fr.Now() - frt1, Bytes: int64(total)})
	}
	// Parse-mode counters cover only the shards this round actually
	// parsed, mirroring how cached runs count only non-restored shards.
	for _, s := range reparse {
		r := &st.sc.results[s]
		if r.lane || r.swar {
			stats.LaneBatches++
		}
		if r.swar {
			stats.SWARBatches++
		}
		if r.scalar {
			stats.ScalarFallbacks++
		}
		if r.restart {
			stats.Restarts++
		}
	}
	stats.Instructions = int64(st.sc.valid.Count())
	stats.Stage2Wall = time.Since(t1)
	stats.Wall = time.Since(t0)
	publishStats(&stats, false, total > 0)
	publishDeltaStats(&stats)
	if fr != nil {
		fr.Record(flight.Event{Kind: flight.SpanDelta, Run: frun,
			Start: frt0, Dur: fr.Now() - frt0, Bytes: reparsedBytes})
	}
	rep := c.report(runResult{violations: violations, total: total, shards: shards, workers: workers}, size)
	rep.Stats = stats
	return rep, st, nil
}

package core_test

import (
	"errors"
	"hash/adler32"
	"testing"

	"rocksalt/internal/nacl"
	"rocksalt/internal/sim"
	"rocksalt/internal/x86"
)

// TestRealProgramEndToEnd is the full NaCl story on a real computation:
// an Adler-32 checksum routine is assembled by the sandboxing toolchain,
// accepted by the checker, executed in the x86 model against a data
// buffer, and its result compared to Go's hash/adler32 — the analogue of
// the paper's CompCert-suite benchmarks (AES, SHA1, ...) compiled through
// NaCl GCC and run after validation.
func TestRealProgramEndToEnd(t *testing.T) {
	reg := func(r x86.Reg) x86.Operand { return x86.RegOp{Reg: r} }
	imm := func(v uint32) x86.Operand { return x86.Imm{Val: v} }
	esi := x86.ESI
	memESI := x86.MemOp{Addr: x86.Addr{Base: &esi}}

	b := nacl.NewBuilder()
	// Registers on entry: ESI = buffer offset, ECX = length,
	// EBX = a = 1, EDI = b = 0, EBP = 65521 (the Adler modulus).
	b.Label("loop")
	b.Inst(x86.Inst{Op: x86.MOVZX, W: true, SrcSize: 8, Args: []x86.Operand{reg(x86.EAX), memESI}})
	b.Inst(x86.Inst{Op: x86.ADD, W: true, Args: []x86.Operand{reg(x86.EBX), reg(x86.EAX)}})
	// a %= 65521
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX)}})
	b.Inst(x86.Inst{Op: x86.XOR, W: true, Args: []x86.Operand{reg(x86.EDX), reg(x86.EDX)}})
	b.Inst(x86.Inst{Op: x86.DIV, W: true, Args: []x86.Operand{reg(x86.EBP)}})
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{reg(x86.EBX), reg(x86.EDX)}})
	// b = (b + a) % 65521
	b.Inst(x86.Inst{Op: x86.ADD, W: true, Args: []x86.Operand{reg(x86.EDI), reg(x86.EBX)}})
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EDI)}})
	b.Inst(x86.Inst{Op: x86.XOR, W: true, Args: []x86.Operand{reg(x86.EDX), reg(x86.EDX)}})
	b.Inst(x86.Inst{Op: x86.DIV, W: true, Args: []x86.Operand{reg(x86.EBP)}})
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{reg(x86.EDI), reg(x86.EDX)}})
	// Advance and loop.
	b.Inst(x86.Inst{Op: x86.INC, W: true, Args: []x86.Operand{reg(x86.ESI)}})
	b.Inst(x86.Inst{Op: x86.DEC, W: true, Args: []x86.Operand{reg(x86.ECX)}})
	b.Jcc(x86.CondNE, "loop")
	// result = b<<16 | a, stored at [0x2000].
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EDI)}})
	b.Inst(x86.Inst{Op: x86.SHL, W: true, Args: []x86.Operand{reg(x86.EAX), imm(16)}})
	b.Inst(x86.Inst{Op: x86.OR, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX)}})
	b.Inst(x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{
		x86.MemOp{Addr: x86.Addr{Disp: 0x2000}}, reg(x86.EAX)}})
	b.Label("spin")
	b.Jmp("spin")
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// 1. The checker accepts it (it contains no calls, so the strict
	// aligned-call variant accepts it too).
	c := checker(t)
	if ok, verr := c.VerifyReport(img); !ok {
		t.Fatalf("adler32 guest rejected: %v", verr)
	}
	strict := checker(t)
	strict.AlignedCalls = true
	if !strict.Verify(img) {
		t.Fatal("strict policy must accept the call-free guest")
	}

	// 2. Execute it in the model.
	input := []byte("the quick brown fox jumps over the lazy dog, sandboxed")
	st := sandboxState(img)
	st.Mem.WriteBytes(dataBase+0x1000, input)
	st.Regs[x86.ESI] = 0x1000
	st.Regs[x86.ECX] = uint32(len(input))
	st.Regs[x86.EBX] = 1
	st.Regs[x86.EDI] = 0
	st.Regs[x86.EBP] = 65521
	s := sim.New(st)
	if _, err := s.Run(40 * len(input)); err != nil && !errors.Is(err, sim.ErrHalt) {
		t.Fatal(err)
	}

	// 3. Compare against the native implementation.
	got := uint32(st.Mem.Load(dataBase+0x2000)) |
		uint32(st.Mem.Load(dataBase+0x2001))<<8 |
		uint32(st.Mem.Load(dataBase+0x2002))<<16 |
		uint32(st.Mem.Load(dataBase+0x2003))<<24
	want := adler32.Checksum(input)
	if got != want {
		t.Fatalf("sandboxed adler32 = %#x, native = %#x", got, want)
	}

	// 4. The soundness invariants hold over the whole run too.
	runSoundness(t, c, img, 4, 40*len(input))
}

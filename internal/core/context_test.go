package core_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
)

func bigImage(t testing.TB, instrs int) []byte {
	t.Helper()
	img, err := nacl.NewGenerator(55).Random(instrs)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestVerifyContextCompleted: with a live context, VerifyContext is
// exactly VerifyWith — same verdict, outcome and violations.
func TestVerifyContextCompleted(t *testing.T) {
	c := checker(t)
	img := bigImage(t, 2000)
	for _, w := range []int{1, 4} {
		rep := c.VerifyContext(context.Background(), img, core.VerifyOptions{Workers: w})
		if !rep.Safe || rep.Outcome != core.OutcomeSafe || rep.Interrupted() || rep.Err() != nil {
			t.Fatalf("workers=%d: completed run misreported: %+v", w, rep)
		}
	}
	bad := append([]byte(nil), img...)
	bad[0] = 0xc3
	rep := c.VerifyContext(context.Background(), bad, core.VerifyOptions{Workers: 4})
	if rep.Safe || rep.Outcome != core.OutcomeRejected {
		t.Fatalf("rejected run misreported: %+v", rep)
	}
}

// TestVerifyContextPreCanceled: an already-dead context never reports
// Safe, carries no partial violations, and surfaces the context error.
func TestVerifyContextPreCanceled(t *testing.T) {
	c := checker(t)
	img := bigImage(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		rep := c.VerifyContext(ctx, img, core.VerifyOptions{Workers: w})
		if rep.Safe {
			t.Fatalf("workers=%d: canceled run reported Safe", w)
		}
		if rep.Outcome != core.OutcomeCanceled || !rep.Interrupted() {
			t.Fatalf("workers=%d: outcome = %v, want canceled", w, rep.Outcome)
		}
		if len(rep.Violations) != 0 || rep.Total != 0 {
			t.Fatalf("workers=%d: interrupted run carries partial violations: %+v", w, rep)
		}
		if !errors.Is(rep.Err(), context.Canceled) {
			t.Fatalf("workers=%d: Err() = %v, want context.Canceled", w, rep.Err())
		}
	}
}

// TestVerifyContextCanceledMidStage1 injects cancellation from inside a
// stage-1 shard worker: the run must stop promptly, never report Safe,
// and never surface the nondeterministic subset of violations the
// surviving workers happened to find. This is the acceptance-criteria
// test that a canceled run returns a non-Safe structured report.
func TestVerifyContextCanceledMidStage1(t *testing.T) {
	c := checker(t)
	img := bigImage(t, 60000) // dozens of shards
	if n := (len(img) + core.ShardBytes - 1) / core.ShardBytes; n < 8 {
		t.Fatalf("image too small to exercise mid-run cancellation: %d shards", n)
	}
	for _, w := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var fired atomic.Int32
		core.SetShardHook(func(shard int) {
			if fired.Add(1) == 3 { // cancel while stage 1 is in flight
				cancel()
			}
		})
		rep := c.VerifyContext(ctx, img, core.VerifyOptions{Workers: w})
		core.SetShardHook(nil)
		cancel()
		if rep.Safe {
			t.Fatalf("workers=%d: mid-run-canceled verification reported Safe", w)
		}
		if rep.Outcome != core.OutcomeCanceled {
			t.Fatalf("workers=%d: outcome = %v, want canceled", w, rep.Outcome)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("workers=%d: canceled run leaked %d partial violations", w, len(rep.Violations))
		}
		if int(fired.Load()) >= rep.Shards {
			t.Fatalf("workers=%d: cancellation did not stop stage 1 early (%d/%d shards parsed)",
				w, fired.Load(), rep.Shards)
		}
	}
}

// TestVerifyContextDeadline: an expired deadline yields the Deadline
// outcome and context.DeadlineExceeded, on the safe and unsafe image
// alike (deterministically non-Safe either way).
func TestVerifyContextDeadline(t *testing.T) {
	c := checker(t)
	img := bigImage(t, 2000)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rep := c.VerifyContext(ctx, img, core.VerifyOptions{Workers: 2})
	if rep.Safe || rep.Outcome != core.OutcomeDeadline || !rep.Interrupted() {
		t.Fatalf("deadline run misreported: %+v", rep)
	}
	if !errors.Is(rep.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err() = %v, want context.DeadlineExceeded", rep.Err())
	}
}

// TestShardWorkerPanicFailsClosed injects a panic into one stage-1
// shard worker: the pool must drain normally (no deadlock, no process
// crash) and the report must fail closed with an InternalFault
// violation carrying the panic value and the recovered stack.
func TestShardWorkerPanicFailsClosed(t *testing.T) {
	c := checker(t)
	img := bigImage(t, 20000)
	shards := (len(img) + core.ShardBytes - 1) / core.ShardBytes
	if shards < 3 {
		t.Fatalf("need >= 3 shards, have %d", shards)
	}
	for _, w := range []int{1, 4} {
		core.SetShardHook(func(shard int) {
			if shard == 1 {
				panic("injected shard fault")
			}
		})
		rep := c.VerifyWith(img, core.VerifyOptions{Workers: w})
		core.SetShardHook(nil)
		if rep.Safe {
			t.Fatalf("workers=%d: panicking run reported Safe", w)
		}
		if rep.Outcome != core.OutcomeRejected {
			t.Fatalf("workers=%d: outcome = %v, want rejected", w, rep.Outcome)
		}
		var fault *core.Violation
		for i := range rep.Violations {
			if rep.Violations[i].Kind == core.InternalFault {
				fault = &rep.Violations[i]
				break
			}
		}
		if fault == nil {
			t.Fatalf("workers=%d: no InternalFault violation in %+v", w, rep.Violations)
		}
		if fault.Offset != core.ShardBytes {
			t.Errorf("workers=%d: fault attributed to %#x, want shard 1 start %#x",
				w, fault.Offset, core.ShardBytes)
		}
		if !strings.Contains(fault.Detail, "injected shard fault") {
			t.Errorf("workers=%d: panic value missing from detail: %q", w, fault.Detail)
		}
		if !strings.Contains(fault.Stack, "goroutine") {
			t.Errorf("workers=%d: recovered stack missing from violation", w)
		}
	}
	// The checker must remain fully usable after containment.
	if !c.Verify(img) {
		t.Fatal("checker broken after contained panic")
	}
}

// TestWorkersClampAbsurd is the robustness satellite: Workers: 1<<30
// must neither allocate per-worker state proportionally (the run
// completes instantly in bounded memory) nor diverge from the
// sequential report.
func TestWorkersClampAbsurd(t *testing.T) {
	c := checker(t)
	img := bigImage(t, 20000)
	seq := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
	for _, w := range []int{1 << 30, -5, core.MaxWorkers + 1} {
		par := c.VerifyWith(img, core.VerifyOptions{Workers: w})
		if par.Workers > core.MaxWorkers || par.Workers > par.Shards || par.Workers < 1 {
			t.Fatalf("Workers: %d ran with %d workers (shards %d, cap %d)",
				w, par.Workers, par.Shards, core.MaxWorkers)
		}
		if seq.Safe != par.Safe || !reflect.DeepEqual(seq.Violations, par.Violations) {
			t.Fatalf("Workers: %d diverged from sequential", w)
		}
	}
	// The mutated image must agree too (violations, not just verdicts).
	bad := append([]byte(nil), img...)
	bad[17] = 0xcd
	seq = c.VerifyWith(bad, core.VerifyOptions{Workers: 1})
	par := c.VerifyWith(bad, core.VerifyOptions{Workers: 1 << 30})
	if seq.Safe != par.Safe || !reflect.DeepEqual(seq.Violations, par.Violations) {
		t.Fatal("absurd worker count diverged from sequential on a rejected image")
	}
}

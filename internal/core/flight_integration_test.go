package core_test

import (
	"bytes"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/flight"
	"rocksalt/internal/nacl"
	"rocksalt/internal/vcache"
)

// installRecorder installs a fresh global flight recorder for one test
// and removes it afterwards (the global is process-wide state shared
// with the alloc tests).
func installRecorder(t *testing.T) *flight.Recorder {
	t.Helper()
	r := flight.NewRecorder(0)
	flight.SetGlobal(r)
	t.Cleanup(func() { flight.SetGlobal(nil) })
	return r
}

func kindsOf(events []flight.Event) map[flight.Kind]int {
	m := map[flight.Kind]int{}
	for _, ev := range events {
		m[ev.Kind]++
	}
	return m
}

// TestFlightSpansCoverPipeline verifies the tentpole wiring: one
// cache-backed Verify run records spans for every pipeline stage —
// run, per-shard stage 1, reconcile, jump check and cache store — and
// a warm re-verify of the same image records the cache-serve event
// instead of re-running the pipeline.
func TestFlightSpansCoverPipeline(t *testing.T) {
	c := checker(t)
	r := installRecorder(t)
	cache := vcache.New(64 << 20)
	img := bytes.Repeat([]byte{0x90}, 3*512*core.BundleSize) // 3 shards

	rep := c.VerifyWith(img, core.VerifyOptions{Workers: 2, Cache: cache})
	if !rep.Safe {
		t.Fatalf("NOP image must verify: %v", rep.Err())
	}
	events := r.Snapshot()
	kinds := kindsOf(events)
	if kinds[flight.SpanRun] != 1 {
		t.Errorf("run spans = %d, want 1", kinds[flight.SpanRun])
	}
	if kinds[flight.SpanShard] != 3 {
		t.Errorf("shard spans = %d, want 3", kinds[flight.SpanShard])
	}
	if kinds[flight.SpanReconcile] != 1 {
		t.Errorf("reconcile spans = %d, want 1", kinds[flight.SpanReconcile])
	}
	if kinds[flight.SpanJumps] != 1 {
		t.Errorf("jump-check spans = %d, want 1", kinds[flight.SpanJumps])
	}
	// Chunk store plus whole-image store.
	if kinds[flight.SpanCacheStore] < 1 {
		t.Errorf("cache-store spans = %d, want >= 1", kinds[flight.SpanCacheStore])
	}
	for _, ev := range events {
		if ev.Kind == flight.SpanShard && ev.Engine == flight.EngineNone {
			t.Errorf("shard span %d has no engine attribution", ev.Shard)
		}
		if ev.Kind.Span() && ev.Dur < 0 {
			t.Errorf("%v span has negative duration %d", ev.Kind, ev.Dur)
		}
	}
	census := flight.Census(events)
	if len(census) == 0 {
		t.Error("census is empty for a recorded run")
	}

	// Warm path: the same image under the same cache is answered from
	// the whole-image verdict and must surface as a cache-serve event.
	rep2 := c.VerifyWith(img, core.VerifyOptions{Workers: 2, Cache: cache})
	if !rep2.Safe || rep2.Stats.CacheWholeHits != 1 {
		t.Fatalf("warm run: safe=%v wholeHits=%d, want cached hit", rep2.Safe, rep2.Stats.CacheWholeHits)
	}
	kinds2 := kindsOf(r.Snapshot())
	if kinds2[flight.EventCacheServe] != 1 {
		t.Errorf("cache-serve events = %d, want 1", kinds2[flight.EventCacheServe])
	}
	if kinds2[flight.SpanRun] != 1 {
		t.Errorf("run spans after warm verify = %d, want still 1 (no re-run)", kinds2[flight.SpanRun])
	}
}

// TestCacheServeCensus pins the satellite fix: a Verify answered from
// the whole-image cache reports engine "cache" — not the engine census
// of the original parse — and zeroes the parse-mode counters that
// described work this run did not do.
func TestCacheServeCensus(t *testing.T) {
	c := checker(t)
	cache := vcache.New(64 << 20)
	gen := nacl.NewGenerator(11)
	img, err := gen.Random(2000)
	if err != nil {
		t.Fatal(err)
	}

	cold := c.VerifyWith(img, core.VerifyOptions{Workers: 1, Cache: cache})
	if !cold.Safe {
		t.Fatalf("generated image must verify: %v", cold.Err())
	}
	if cold.Stats.Engine == "cache" {
		t.Fatalf("cold run engine = %q, must be a parse engine", cold.Stats.Engine)
	}

	warm := c.VerifyWith(img, core.VerifyOptions{Workers: 1, Cache: cache})
	if !warm.Safe {
		t.Fatalf("warm run must verify: %v", warm.Err())
	}
	if warm.Stats.Engine != "cache" {
		t.Errorf("warm run engine = %q, want %q", warm.Stats.Engine, "cache")
	}
	if warm.Stats.CacheWholeHits != 1 {
		t.Errorf("warm CacheWholeHits = %d, want 1", warm.Stats.CacheWholeHits)
	}
	if warm.Stats.LaneBatches != 0 || warm.Stats.SWARBatches != 0 ||
		warm.Stats.ScalarFallbacks != 0 || warm.Stats.Restarts != 0 {
		t.Errorf("warm run reports parse work it did not do: %+v", warm.Stats)
	}
	if warm.Stats.CacheBytesSaved != int64(len(img)) {
		t.Errorf("warm CacheBytesSaved = %d, want %d", warm.Stats.CacheBytesSaved, len(img))
	}
}

// TestFlightChunkEvents checks the chunk-cache instrumentation: after a
// cold run populates the chunk layer, verifying an image with one
// modified chunk records both chunk-hit and chunk-miss events.
func TestFlightChunkEvents(t *testing.T) {
	c := checker(t)
	cache := vcache.New(64 << 20)
	img := bytes.Repeat([]byte{0x90}, 4*64<<10) // 4 chunks
	if rep := c.VerifyWith(img, core.VerifyOptions{Workers: 1, Cache: cache}); !rep.Safe {
		t.Fatalf("cold run failed: %v", rep.Err())
	}

	r := installRecorder(t)
	mod := append([]byte(nil), img...)
	mod[0] = 0x91 // xchg eax,ecx — still safe, but changes chunk 0's key
	rep := c.VerifyWith(mod, core.VerifyOptions{Workers: 1, Cache: cache})
	if !rep.Safe {
		t.Fatalf("modified run failed: %v", rep.Err())
	}
	kinds := kindsOf(r.Snapshot())
	if kinds[flight.EventChunkHit] == 0 {
		t.Errorf("no chunk-hit events; stats: %+v", rep.Stats)
	}
	if kinds[flight.EventChunkMiss] == 0 {
		t.Errorf("no chunk-miss events; stats: %+v", rep.Stats)
	}
}

package core_test

import (
	"bytes"
	"context"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/policy"
	"rocksalt/internal/vcache"
)

// deltaChunk mirrors the engine's retained-chunk granularity (64 KiB);
// the edge-geometry tests place edits relative to it.
const deltaChunk = 64 << 10

// deltaRound runs one VerifyDelta round and asserts its report is
// byte-identical to a cold full verify of the same bytes, returning
// the round's report and next state.
func deltaRound(t *testing.T, c *core.Checker, code []byte, changed []core.Range, state *core.DeltaState, what string) (*core.Report, *core.DeltaState) {
	t.Helper()
	opts := core.VerifyOptions{Workers: 1}
	rep, next, err := c.VerifyDeltaWith(code, changed, state, opts)
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	deltaRoundEqual(t, rep, c.VerifyWith(code, opts), what)
	return rep, next
}

// TestDeltaEdgeGeometry drives VerifyDelta through the edit shapes
// that stress the dirty-set computation: a no-op round, an edit
// straddling a chunk boundary, an edit in the never-retained final
// chunk, growth, shrinkage, a clean chunk flipping to violating, and
// the revert — each round checked byte-identical to a full verify.
func TestDeltaEdgeGeometry(t *testing.T) {
	c := checker(t)
	img := cacheImage(t, 5, 60000)
	nc := len(img) / deltaChunk
	if len(img)%deltaChunk == 0 {
		nc--
	}

	_, state := deltaRound(t, c, img, nil, nil, "initial full round")

	// A no-edit round replays every retained chunk and re-parses only
	// the tail.
	rep, state := deltaRound(t, c, img, nil, state, "no-edit round")
	if rep.Stats.DeltaChunksReplayed != int64(nc) || rep.Stats.DeltaChunksReparsed != 1 {
		t.Fatalf("no-edit round reparsed %d chunks, replayed %d (want 1 reparsed, %d replayed)",
			rep.Stats.DeltaChunksReparsed, rep.Stats.DeltaChunksReplayed, nc)
	}
	if want := int64(len(img) - nc*deltaChunk); rep.Stats.DeltaBytesReparsed != want {
		t.Fatalf("no-edit round reparsed %d bytes, want the %d-byte tail", rep.Stats.DeltaBytesReparsed, want)
	}

	// An edit straddling the chunk 0 / chunk 1 boundary dirties both
	// sides (plus the tail).
	edit := func(code []byte, off, n int, fill byte) []core.Range {
		for i := off; i < off+n && i < len(code); i++ {
			code[i] = fill
		}
		return []core.Range{{Off: off, Len: n}}
	}
	saved := append([]byte(nil), img[deltaChunk-4:deltaChunk+4]...)
	rep, state = deltaRound(t, c, img, edit(img, deltaChunk-4, 8, 0x90), state, "boundary-straddling edit")
	if got := rep.Stats.DeltaChunksReparsed; got != 3 {
		t.Fatalf("boundary edit reparsed %d chunks, want 3 (both sides + tail)", got)
	}
	copy(img[deltaChunk-4:], saved)
	_, state = deltaRound(t, c, img, []core.Range{{Off: deltaChunk - 4, Len: 8}}, state, "boundary revert")

	// An edit in the final (never-retained) chunk re-parses only the
	// tail — and possibly the last retained chunk when the edit sits
	// inside its lookahead overhang, never more.
	rep, state = deltaRound(t, c, img, edit(img, len(img)-2, 2, 0x90), state, "final-chunk edit")
	if got := rep.Stats.DeltaChunksReparsed; got < 1 || got > 2 {
		t.Fatalf("final-chunk edit reparsed %d chunks, want 1 or 2", got)
	}

	// Growth: append nop bundles. Only the chunks near the old end and
	// the new tail may re-parse; everything before replays.
	grown := append(append([]byte(nil), img...), bytes.Repeat([]byte{0x90}, 3*deltaChunk)...)
	rep, state = deltaRound(t, c, grown, nil, state, "grow by three chunks")
	if rep.Stats.DeltaChunksReplayed < int64(nc-2) {
		t.Fatalf("grow replayed only %d of %d prior chunks", rep.Stats.DeltaChunksReplayed, nc)
	}

	// Shrinkage back to the original size, then below a chunk boundary.
	_, state = deltaRound(t, c, grown[:len(img)], nil, state, "shrink to original")
	_, state = deltaRound(t, c, grown[:deltaChunk+100], nil, state, "shrink to just past one chunk")
	_, state = deltaRound(t, c, img, nil, state, "grow back to original")

	// Flip a mid-image chunk to violating (keep flipping bytes until
	// the full verifier rejects), then revert: the state must neither
	// mask the violation nor retain it after the revert.
	pristine := append([]byte(nil), img...)
	off := deltaChunk + deltaChunk/2
	var rep2 *core.Report
	for i := 0; ; i++ {
		img[off+i] ^= 0xff
		rep2, state = deltaRound(t, c, img, []core.Range{{Off: off + i, Len: 1}}, state, "violating flip")
		if !rep2.Safe {
			break
		}
		if i > 200 {
			t.Fatal("200 byte flips never produced a violation")
		}
	}
	copy(img, pristine)
	rep2, _ = deltaRound(t, c, img, []core.Range{{Off: off, Len: 256}}, state, "revert to clean")
	if !rep2.Safe {
		t.Fatalf("reverted image still rejected: %v", rep2.Err())
	}
}

// TestDeltaWarmsChunkCache pins the store-back satellite: a delta
// round with a cache attached must leave the ordinary keyed chunk
// path fully warm, both after the initial round and after an edit.
func TestDeltaWarmsChunkCache(t *testing.T) {
	c := checker(t)
	img := cacheImage(t, 6, 60000)
	nc := int64(len(img) / deltaChunk)
	if len(img)%deltaChunk == 0 {
		nc--
	}
	cache := vcache.New(64 << 20)
	opts := core.VerifyOptions{Workers: 1, Cache: cache}

	if _, _, err := c.VerifyDeltaWith(img, nil, nil, opts); err != nil {
		t.Fatal(err)
	}
	warm := c.VerifyWith(img, opts)
	if warm.Stats.CacheChunkHits != nc || warm.Stats.CacheChunkMisses != 0 {
		t.Fatalf("after delta store-back: %d chunk hits, %d misses (want %d hits, 0 misses)",
			warm.Stats.CacheChunkHits, warm.Stats.CacheChunkMisses, nc)
	}
	if r := warm.Stats.ChunkHitRatio(); r != 1 {
		t.Fatalf("hit ratio %v, want 1", r)
	}

	// Overwrite one whole bundle well inside chunk 1 with nops — a
	// compliance-preserving edit — through a fresh delta session; the
	// refreshed chunk must be re-banked under its new content key while
	// the untouched chunks still hit under their old ones.
	edited := append([]byte(nil), img...)
	off := deltaChunk + 1024
	for i := 0; i < 32; i++ {
		edited[off+i] = 0x90
	}
	_, state, err := c.VerifyDeltaWith(img, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := c.VerifyDeltaWith(edited, []core.Range{{Off: off, Len: 32}}, state, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatalf("nop-bundle edit should preserve compliance: %v", rep.Err())
	}
	warm = c.VerifyWith(edited, opts)
	if warm.Stats.CacheChunkHits != nc || warm.Stats.CacheChunkMisses != 0 {
		t.Fatalf("after edited-round store-back: %d chunk hits, %d misses (want %d hits, 0 misses)",
			warm.Stats.CacheChunkHits, warm.Stats.CacheChunkMisses, nc)
	}
}

// TestDeltaConfigMismatch: handing a state to a differently configured
// checker must degrade to a transparent full rebuild, never a wrong
// verdict or replayed foreign artifacts.
func TestDeltaConfigMismatch(t *testing.T) {
	a := checker(t)
	com, err := policy.Compile(policy.NaCl16())
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewCheckerFromPolicy(com)
	if err != nil {
		t.Fatal(err)
	}
	// An image compliant under b, so b's rebuilt state has clean chunks
	// to replay; a's state for it is foreign either way.
	prof, err := nacl.ProfileForSpec(com.Spec)
	if err != nil {
		t.Fatal(err)
	}
	img, err := nacl.NewGeneratorFor(7, prof, com.SafeGrammar).Random(60000)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) < 3*deltaChunk {
		t.Fatalf("generated image too small for chunk tests: %d bytes", len(img))
	}

	_, state, err := a.VerifyDeltaWith(img, nil, nil, core.VerifyOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, state2, err := b.VerifyDeltaWith(img, nil, state, core.VerifyOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	deltaRoundEqual(t, rep, b.VerifyWith(img, core.VerifyOptions{Workers: 1}), "foreign-state round")
	if rep.Stats.DeltaChunksReplayed != 0 {
		t.Fatalf("foreign state replayed %d chunks", rep.Stats.DeltaChunksReplayed)
	}
	// The rebuilt state belongs to b now and replays normally.
	rep, _, err = b.VerifyDeltaWith(img, nil, state2, core.VerifyOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.DeltaChunksReplayed == 0 {
		t.Fatal("rebuilt state replayed nothing on the next round")
	}
}

// TestDeltaInterrupted: a canceled round reports Canceled, and the
// returned state stays sound — the next round re-parses whatever the
// canceled one touched and matches a full verify.
func TestDeltaInterrupted(t *testing.T) {
	c := checker(t)
	img := cacheImage(t, 8, 60000)

	_, state, err := c.VerifyDeltaWith(img, nil, nil, core.VerifyOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	edited := append([]byte(nil), img...)
	edited[deltaChunk/2] ^= 0xff
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, state, err := c.VerifyDeltaContext(ctx, edited, []core.Range{{Off: deltaChunk / 2, Len: 1}}, state, core.VerifyOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != core.OutcomeCanceled || !rep.Interrupted() {
		t.Fatalf("canceled round reported %v", rep.Outcome)
	}
	deltaRound(t, c, edited, []core.Range{{Off: deltaChunk / 2, Len: 1}}, state, "round after cancel")
}

// TestDeltaRejectsNegativeRange: malformed ranges error out without
// corrupting the state.
func TestDeltaRejectsNegativeRange(t *testing.T) {
	c := checker(t)
	img, err := nacl.NewGenerator(9).Random(100)
	if err != nil {
		t.Fatal(err)
	}
	_, state, err := c.VerifyDeltaWith(img, nil, nil, core.VerifyOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.VerifyDeltaWith(img, []core.Range{{Off: -1, Len: 4}}, state, core.VerifyOptions{Workers: 1}); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, _, err := c.VerifyDeltaWith(img, []core.Range{{Off: 0, Len: -4}}, state, core.VerifyOptions{Workers: 1}); err == nil {
		t.Fatal("negative length accepted")
	}
	deltaRound(t, c, img, nil, state, "round after rejected ranges")
}

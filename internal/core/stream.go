package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"rocksalt/internal/flight"
	"rocksalt/internal/telemetry"
)

// This file is the bounded-memory streaming verifier: the same staged
// engine driven through a sliding two-chunk window, for images too
// large (or too remote) to map whole.
//
// The scheme leans on the scratch base/imgSize geometry threaded
// through the engine: a window's shards are parsed in window-relative
// coordinates against a small window scratch whose base places it in
// the image, so straddle allowances and jump-target classification
// behave exactly as in a whole-image parse. The first chunk of the
// window is always complete — the parse of a chunk reads at most
// lookahead()-1 bytes past its end (see fusedDFA.lookahead), and
// lookahead() is far below chunkBytes for every real grammar — so its
// artifacts are final the moment it is parsed. They are harvested into
// a full-image carry scratch (bitmap words copied to their absolute
// word positions, offsets and targets translated by the window base),
// the window slides one chunk, and the loop continues. At EOF the
// remaining window is parsed in full, with the window end coinciding
// with the image end so the end-of-image straddle allowance applies.
//
// The carry state is the image's packed bitmaps (size/4 bytes) plus
// the per-shard results — the same retained form DeltaState holds — so
// memory is bounded by the bitmaps, not the code: the window holds
// only 128 KiB of image bytes. Stage 2 then runs unchanged over the
// carry scratch with code == nil: verdict, offsets, kinds and details
// are identical to the in-memory verifier; the one documented
// difference is that stage-2 violations (TargetNotBoundary, the
// bundle-coverage scan) carry no Window byte excerpt, since the bytes
// around them are no longer resident.

// VerifyReader streams an image from r through a bounded window and
// verifies it. opts.StreamSize must carry the total size (see its doc);
// when it is zero the stream is buffered whole in memory and verified
// by the ordinary path. Parsing is sequential (one window chunk at a
// time), so opts.Workers is ignored and Report.Workers is 1.
func (c *Checker) VerifyReader(r io.Reader, opts VerifyOptions) (*Report, error) {
	return c.VerifyReaderContext(context.Background(), r, opts)
}

// VerifyReaderContext is VerifyReader under a context; cancellation is
// observed between window chunks.
func (c *Checker) VerifyReaderContext(ctx context.Context, r io.Reader, opts VerifyOptions) (*Report, error) {
	if opts.StreamSize <= 0 {
		code, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("core: buffering stream: %w", err)
		}
		return c.VerifyContext(ctx, code, opts), nil
	}
	// Direct-jump targets are represented as int32 throughout the
	// engine; images at or beyond 2 GiB are out of contract for the
	// in-memory verifier too, so fail loudly instead of truncating.
	if opts.StreamSize >= 1<<31 {
		return nil, fmt.Errorf("core: stream size %d exceeds the verifier's 2 GiB image ceiling", opts.StreamSize)
	}
	if c.fused == nil {
		return nil, fmt.Errorf("core: VerifyReader requires fused tables")
	}
	if c.fused.lookahead() >= chunkBytes {
		// Impossible for the x86 grammars (instruction length is
		// bounded); reachable only through a degenerate custom bundle.
		return nil, fmt.Errorf("core: automaton lookahead %d reaches past a window chunk; stream verification unavailable", c.fused.lookahead())
	}
	size := int(opts.StreamSize)
	shards := shardCount(size)

	var st Stats
	t0 := time.Now()
	st.BytesScanned = int64(size)
	st.Bundles = int64((size + c.params.bundle - 1) / c.params.bundle)
	st.Shards = int64(shards)
	engine, mode := c.resolveEngine(opts)
	st.Engine = engineName(engine, mode)
	fr := flight.Active()
	frun, frt0 := flightBegin(fr)

	// ssc is the carry state (absolute coordinates, full image); wsc is
	// re-aimed at each window. Both come from the ordinary pool.
	ssc := getScratch(size, shards)
	defer putScratch(ssc)
	wsc := getScratch(2*chunkBytes, shardCount(2*chunkBytes))
	defer putScratch(wsc)
	window := make([]byte, 2*chunkBytes)

	// harvest banks the final artifacts of window bytes [0, n) — always
	// whole shards — into the carry scratch at absolute offset base.
	harvest := func(base, n int) {
		w0 := base / 64
		nw := (n + 63) / 64
		copy(ssc.valid.Words()[w0:w0+nw], wsc.valid.Words()[:nw])
		copy(ssc.pairJmp.Words()[w0:w0+nw], wsc.pairJmp.Words()[:nw])
		for ws := 0; ws*ShardBytes < n; ws++ {
			src, dst := &wsc.results[ws], &ssc.results[base/ShardBytes+ws]
			dst.lane, dst.swar, dst.scalar, dst.restart, dst.backoff =
				src.lane, src.swar, src.scalar, src.restart, src.backoff
			for _, v := range src.violations {
				v.Offset += base
				dst.violations = append(dst.violations, v)
			}
			for _, t := range src.targets {
				dst.targets = append(dst.targets, t+int32(base))
			}
			for _, t := range src.bad {
				dst.bad = append(dst.bad, t+int32(base))
			}
		}
	}

	endStage1 := telemetry.Region(ctx, "rocksalt.stage1.parse")
	base, filled := 0, 0
	interrupted := false
	for {
		// Top the window up, never reading past the declared size.
		want := len(window) - filled
		if rem := size - base - filled; want > rem {
			want = rem
		}
		if want > 0 {
			n, err := io.ReadFull(r, window[filled:filled+want])
			filled += n
			if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
				endStage1()
				return nil, fmt.Errorf("core: reading stream at offset %d: %w", base+filled, err)
			}
		}
		if base+filled < size && filled < len(window) {
			endStage1()
			return nil, fmt.Errorf("core: stream ended at %d bytes, %d declared", base+filled, size)
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		last := base+filled == size
		// Parse the settled span: the first chunk mid-stream (the second
		// chunk provides its overhang), the whole remainder at EOF.
		span := chunkBytes
		if last {
			span = filled
		}
		wsc.valid.Reset(filled)
		wsc.pairJmp.Reset(filled)
		wsc.base, wsc.imgSize = base, size
		nshards := shardCount(span)
		for ws := 0; ws < nshards; ws++ {
			wsc.results[ws].reset()
			c.parseShardAt(window[:filled], ws, base/ShardBytes+ws, wsc, engine, mode, fr, frun, 0)
		}
		// parseShardAt parses [ws*ShardBytes, min(·, filled)); for the
		// mid-stream first chunk that span is exactly the chunk, and the
		// walk past its end stays inside the second chunk (lookahead).
		harvest(base, span)
		if last {
			break
		}
		copy(window, window[chunkBytes:filled])
		base += chunkBytes
		filled -= chunkBytes
	}
	endStage1()
	st.Stage1Wall = time.Since(t0)
	if !interrupted {
		// A stream longer than declared would silently verify a prefix;
		// probe one byte to reject it.
		var one [1]byte
		if n, _ := io.ReadFull(r, one[:]); n > 0 {
			return nil, fmt.Errorf("core: stream continues past the declared %d bytes", size)
		}
	}
	if interrupted {
		err := ctx.Err()
		st.Wall = time.Since(t0)
		publishStats(&st, true, false)
		if fr != nil {
			fr.Record(flight.Event{Kind: flight.SpanRun, Engine: runFlightEngine(engine, mode),
				Run: frun, Start: frt0, Dur: fr.Now() - frt0, Bytes: int64(size)})
		}
		rep := c.report(runResult{shards: shards, workers: 1, ctxErr: err}, size)
		rep.Stats = st
		return rep, nil
	}

	t1 := time.Now()
	var frt1 int64
	if fr != nil {
		frt1 = fr.Now()
	}
	endReconcile := telemetry.Region(ctx, "rocksalt.stage2.reconcile")
	violations, total := c.reconcile(ctx, nil, ssc, &st, fr, frun)
	endReconcile()
	if fr != nil {
		fr.Record(flight.Event{Kind: flight.SpanReconcile, Run: frun,
			Start: frt1, Dur: fr.Now() - frt1, Bytes: int64(total)})
	}
	for i := range ssc.results {
		r := &ssc.results[i]
		if r.lane || r.swar {
			st.LaneBatches++
		}
		if r.swar {
			st.SWARBatches++
		}
		if r.scalar {
			st.ScalarFallbacks++
		}
		if r.restart {
			st.Restarts++
		}
	}
	st.Instructions = int64(ssc.valid.Count())
	st.Stage2Wall = time.Since(t1)
	st.Wall = time.Since(t0)
	publishStats(&st, false, total > 0)
	if fr != nil {
		fr.Record(flight.Event{Kind: flight.SpanRun, Engine: runFlightEngine(engine, mode),
			Run: frun, Start: frt0, Dur: fr.Now() - frt0, Bytes: int64(size)})
	}
	rep := c.report(runResult{violations: violations, total: total, shards: shards, workers: 1}, size)
	rep.Stats = st
	return rep, nil
}

package core_test

import (
	"bytes"
	"strings"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
)

// agreeOnCorpus asserts two checkers produce the same verdict on a
// mixed corpus of compliant images, mutants, and the unsafe corpus.
func agreeOnCorpus(t *testing.T, loaded, fresh *core.Checker, what string) {
	t.Helper()
	gen := nacl.NewGenerator(77)
	for i := 0; i < 50; i++ {
		img, err := gen.Random(30)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Verify(img) != fresh.Verify(img) {
			t.Fatalf("%s checker disagrees on compliant image", what)
		}
		mut := append([]byte{}, img...)
		mut[i%len(mut)] ^= 0xff
		if loaded.Verify(mut) != fresh.Verify(mut) {
			t.Fatalf("%s checker disagrees on mutant", what)
		}
	}
	for name, img := range nacl.UnsafeCorpus() {
		if loaded.Verify(img) {
			t.Errorf("%s checker accepted %q", what, name)
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	set, err := core.BuildDFAs()
	if err != nil {
		t.Fatal(err)
	}
	fresh := checker(t)

	var v1 bytes.Buffer
	if err := set.WriteTables(&v1); err != nil {
		t.Fatal(err)
	}
	t.Logf("serialized v1 tables: %d bytes", v1.Len())
	loaded, err := core.NewCheckerFromTables(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	agreeOnCorpus(t, loaded, fresh, "v1 table-loaded")

	var v2 bytes.Buffer
	if err := set.WriteTablesV2(&v2); err != nil {
		t.Fatal(err)
	}
	t.Logf("serialized v2 tables: %d bytes", v2.Len())
	loaded2, err := core.NewCheckerFromTables(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	agreeOnCorpus(t, loaded2, fresh, "v2 table-loaded")

	var v3 bytes.Buffer
	if err := set.WriteTablesV3(&v3); err != nil {
		t.Fatal(err)
	}
	t.Logf("serialized v3 tables: %d bytes", v3.Len())
	loaded3, err := core.NewCheckerFromTables(bytes.NewReader(v3.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	agreeOnCorpus(t, loaded3, fresh, "v3 table-loaded")

	// ReadTables must recover the component set from every version.
	for _, buf := range [][]byte{v1.Bytes(), v2.Bytes(), v3.Bytes()} {
		got, err := core.ReadTables(bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if got.MaskedJump.NumStates() != set.MaskedJump.NumStates() ||
			got.NoControlFlow.NumStates() != set.NoControlFlow.NumStates() ||
			got.DirectJump.NumStates() != set.DirectJump.NumStates() {
			t.Fatal("ReadTables state counts differ from the generated set")
		}
	}
}

// TestEmbeddedBundleFresh is the regeneration guard: the bundle
// embedded in the binary must be byte-identical to what the current
// grammars generate, and the checker it produces must agree with the
// grammar-compiled one. A failure means someone changed the grammars
// (or the fusion/serialization) without re-running
//
//	go run ./cmd/dfagen -o internal/core/rocksalt_tables_v3.bin
func TestEmbeddedBundleFresh(t *testing.T) {
	set, err := core.BuildDFAs()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := set.WriteTablesV3(&want); err != nil {
		t.Fatal(err)
	}
	got := core.EmbeddedTableBytes()
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("embedded table bundle is stale (%d bytes vs %d freshly generated): re-run 'go run ./cmd/dfagen -o internal/core/rocksalt_tables_v3.bin'",
			len(got), want.Len())
	}

	emb, err := core.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	fromGrammars, err := core.NewCheckerFromGrammars()
	if err != nil {
		t.Fatal(err)
	}
	agreeOnCorpus(t, emb, fromGrammars, "embedded-bundle")
}

// TestNewCheckerFromTablesErrorPaths: every malformed table bundle must
// fail with a descriptive error, never a panic.
func TestNewCheckerFromTablesErrorPaths(t *testing.T) {
	set, err := core.BuildDFAs()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	var buf2 bytes.Buffer
	if err := set.WriteTablesV2(&buf2); err != nil {
		t.Fatal(err)
	}
	goodV2 := buf2.Bytes()
	var buf3 bytes.Buffer
	if err := set.WriteTablesV3(&buf3); err != nil {
		t.Fatal(err)
	}
	goodV3 := buf3.Bytes()

	mutate := func(src []byte, f func(b []byte) []byte) []byte {
		return f(append([]byte{}, src...))
	}
	cases := []struct {
		name    string
		input   []byte
		wantSub string
	}{
		{"empty input", nil, "magic"},
		{"truncated magic", mutate(good, func(b []byte) []byte { return b[:3] }), "magic"},
		{"unknown version", mutate(good, func(b []byte) []byte { b[4] = '9'; return b }), "unknown table bundle version"},
		{"not a bundle at all", []byte("GARBAGE BYTES"), "unknown table bundle version"},
		{"v1 body behind v2 magic", mutate(good, func(b []byte) []byte { b[4] = '2'; return b }), ""},
		{"truncated header", mutate(good, func(b []byte) []byte { return b[:8] }), ""},
		{"truncated bundle", mutate(good, func(b []byte) []byte { return b[:len(b)/3] }), ""},
		{"truncated final checksum", mutate(good, func(b []byte) []byte { return b[:len(b)-2] }), ""},
		{"corrupted table byte", mutate(good, func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }), ""},
		{"corrupted status byte", mutate(good, func(b []byte) []byte { b[16] ^= 0x04; return b }), ""},
		{"zero-state DFA", mutate(good, func(b []byte) []byte {
			copy(b[6:10], []byte{0, 0, 0, 0}) // first DFA's state count
			return b
		}), "implausible"},
		{"v2 zero-state fused", mutate(goodV2, func(b []byte) []byte {
			copy(b[6:10], []byte{0, 0, 0, 0}) // fused state count
			return b
		}), "implausible"},
		{"v2 corrupted tag byte", mutate(goodV2, func(b []byte) []byte { b[13] ^= 0x01; return b }), ""},
		{"v2 corrupted fused table", mutate(goodV2, func(b []byte) []byte { b[2048] ^= 0x80; return b }), ""},
		{"v2 truncated fused section", mutate(goodV2, func(b []byte) []byte { return b[:1024] }), ""},
		{"v2 corrupted component table", mutate(goodV2, func(b []byte) []byte { b[len(b)-100] ^= 0x01; return b }), ""},
		{"v3 zero-state fused", mutate(goodV3, func(b []byte) []byte {
			copy(b[6:10], []byte{0, 0, 0, 0}) // fused state count
			return b
		}), "implausible"},
		{"v3 corrupted fused table", mutate(goodV3, func(b []byte) []byte { b[2048] ^= 0x80; return b }), ""},
		{"v3 truncated mid-stride", mutate(goodV3, func(b []byte) []byte { return b[:len(goodV2)+500] }), ""},
		{"v3 corrupted stride interior", mutate(goodV3, func(b []byte) []byte {
			b[len(goodV2)+(len(b)-len(goodV2))/2] ^= 0x01 // middle of the stride section
			return b
		}), ""},
		{"v3 corrupted component table", mutate(goodV3, func(b []byte) []byte { b[len(b)-100] ^= 0x01; return b }), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := core.NewCheckerFromTables(bytes.NewReader(tc.input))
			if err == nil {
				t.Fatalf("accepted a malformed bundle (checker %v)", c != nil)
			}
			if err.Error() == "" {
				t.Fatal("error has no message")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestTableCorruptionDetected(t *testing.T) {
	set, err := core.BuildDFAs()
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range []int{1, 2, 3} {
		var buf bytes.Buffer
		switch version {
		case 1:
			err = set.WriteTables(&buf)
		case 2:
			err = set.WriteTablesV2(&buf)
		default:
			err = set.WriteTablesV3(&buf)
		}
		if err != nil {
			t.Fatal(err)
		}
		good := buf.Bytes()

		// Bad magic.
		bad := append([]byte{}, good...)
		bad[0] ^= 0xff
		if _, err := core.NewCheckerFromTables(bytes.NewReader(bad)); err == nil {
			t.Fatalf("v%d: bad magic must be rejected", version)
		}
		// Flipped table byte (checksum).
		bad = append([]byte{}, good...)
		bad[len(bad)/2] ^= 0x01
		if _, err := core.NewCheckerFromTables(bytes.NewReader(bad)); err == nil {
			t.Fatalf("v%d: corrupted table must be rejected", version)
		}
		// Truncation.
		if _, err := core.NewCheckerFromTables(bytes.NewReader(good[:len(good)/3])); err == nil {
			t.Fatalf("v%d: truncated bundle must be rejected", version)
		}
	}
}

package core_test

import (
	"bytes"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
)

func TestTableRoundTrip(t *testing.T) {
	set, err := core.BuildDFAs()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	t.Logf("serialized tables: %d bytes", size)

	loaded, err := core.NewCheckerFromTables(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fresh := checker(t)

	// The table-loaded checker and the grammar-compiled one must agree on
	// a mixed corpus.
	gen := nacl.NewGenerator(77)
	for i := 0; i < 50; i++ {
		img, err := gen.Random(30)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Verify(img) != fresh.Verify(img) {
			t.Fatal("table-loaded checker disagrees on compliant image")
		}
		mut := append([]byte{}, img...)
		mut[i%len(mut)] ^= 0xff
		if loaded.Verify(mut) != fresh.Verify(mut) {
			t.Fatal("table-loaded checker disagrees on mutant")
		}
	}
	for name, img := range nacl.UnsafeCorpus() {
		if loaded.Verify(img) {
			t.Errorf("table-loaded checker accepted %q", name)
		}
	}
}

func TestTableCorruptionDetected(t *testing.T) {
	set, err := core.BuildDFAs()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] ^= 0xff
	if _, err := core.NewCheckerFromTables(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	// Flipped table byte (checksum).
	bad = append([]byte{}, good...)
	bad[len(bad)/2] ^= 0x01
	if _, err := core.NewCheckerFromTables(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted table must be rejected")
	}
	// Truncation.
	if _, err := core.NewCheckerFromTables(bytes.NewReader(good[:len(good)/3])); err == nil {
		t.Fatal("truncated bundle must be rejected")
	}
}

package core_test

import (
	"bytes"
	"strings"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
)

func TestTableRoundTrip(t *testing.T) {
	set, err := core.BuildDFAs()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	t.Logf("serialized tables: %d bytes", size)

	loaded, err := core.NewCheckerFromTables(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fresh := checker(t)

	// The table-loaded checker and the grammar-compiled one must agree on
	// a mixed corpus.
	gen := nacl.NewGenerator(77)
	for i := 0; i < 50; i++ {
		img, err := gen.Random(30)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Verify(img) != fresh.Verify(img) {
			t.Fatal("table-loaded checker disagrees on compliant image")
		}
		mut := append([]byte{}, img...)
		mut[i%len(mut)] ^= 0xff
		if loaded.Verify(mut) != fresh.Verify(mut) {
			t.Fatal("table-loaded checker disagrees on mutant")
		}
	}
	for name, img := range nacl.UnsafeCorpus() {
		if loaded.Verify(img) {
			t.Errorf("table-loaded checker accepted %q", name)
		}
	}
}

// TestNewCheckerFromTablesErrorPaths: every malformed table bundle must
// fail with a descriptive error, never a panic.
func TestNewCheckerFromTablesErrorPaths(t *testing.T) {
	set, err := core.BuildDFAs()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte{}, good...))
	}
	cases := []struct {
		name    string
		input   []byte
		wantSub string
	}{
		{"empty input", nil, "magic"},
		{"truncated magic", mutate(func(b []byte) []byte { return b[:3] }), "magic"},
		{"wrong version byte", mutate(func(b []byte) []byte { b[4] = '2'; return b }), "not a rocksalt table bundle"},
		{"truncated header", mutate(func(b []byte) []byte { return b[:8] }), ""},
		{"truncated bundle", mutate(func(b []byte) []byte { return b[:len(b)/3] }), ""},
		{"truncated final checksum", mutate(func(b []byte) []byte { return b[:len(b)-2] }), ""},
		{"corrupted table byte", mutate(func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }), ""},
		{"corrupted status byte", mutate(func(b []byte) []byte { b[16] ^= 0x04; return b }), ""},
		{"zero-state DFA", mutate(func(b []byte) []byte {
			copy(b[6:10], []byte{0, 0, 0, 0}) // first DFA's state count
			return b
		}), "implausible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := core.NewCheckerFromTables(bytes.NewReader(tc.input))
			if err == nil {
				t.Fatalf("accepted a malformed bundle (checker %v)", c != nil)
			}
			if err.Error() == "" {
				t.Fatal("error has no message")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestTableCorruptionDetected(t *testing.T) {
	set, err := core.BuildDFAs()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] ^= 0xff
	if _, err := core.NewCheckerFromTables(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	// Flipped table byte (checksum).
	bad = append([]byte{}, good...)
	bad[len(bad)/2] ^= 0x01
	if _, err := core.NewCheckerFromTables(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted table must be rejected")
	}
	// Truncation.
	if _, err := core.NewCheckerFromTables(bytes.NewReader(good[:len(good)/3])); err == nil {
		t.Fatal("truncated bundle must be rejected")
	}
}

package core

import "fmt"

// This file builds the optional two-stride (byte-pair) tables for the
// lane engine — the second classic regex-engine acceleration after byte
// classes. Two byte pairs are equivalent iff from every state the
// restart-closed two-step walk stores the same two states (or is
// eventful either step); the pair-class map pcls collapses the 2^16
// pair space onto those classes, and the strided table gives, per
// (state, pair class), the two state bytes the single-stride walk would
// have stored — packed little-endian so one uint16 entry is exactly the
// two-byte store into the state buffer. An entry is the sentinel
// strideEventful when either step leaves the inline bands [0, rec); the
// walk then falls back to two single-byte steps, which re-discover the
// event at the right byte. Because entries are *defined* as the
// single-stride stores, the state buffer — and everything derived from
// it — is byte-identical between the variants.
//
// Pair classes factor through byte classes: encStride(s, b1, b2) only
// reads closed-table columns, and two bytes in the same byte class have
// identical columns by definition (cls is the column partition computed
// in-process by computeFast). So the pair's class is a function of
// (cls[b1], cls[b2]) alone. That fact powers three things here:
//
//   - buildStride computes one dense column per byte-class pair
//     (ncls², ~15k for the shipped automaton) instead of one per raw
//     pair (65,536), while numbering classes exactly as the historical
//     per-pair construction did (first occurrence in ascending pair
//     order, deduped by column signature) so serialized RSLT3/RSLT4
//     bundles stay byte-identical.
//   - verifyStride checks each byte-class pair's column exhaustively
//     against encStride once, and holds every other pair of the same
//     class pair to that canonical column — the same acceptance set as
//     the old 65,536×states check at a fraction of the cost.
//   - the SWAR stepper (engine_swar.go) indexes pcls directly with the
//     four uint16 pair values sliced out of one 8-byte load — the pair
//     map doubles as the SWAR translation table, so nothing new is
//     derived or serialized and no table format grew.
//
// The tables are big (pcls is 128 KiB; the dense strided table is
// states×pairClasses×2 bytes, ~455 KiB for the shipped 66-state
// automaton), so the pair-indexed walks are L2-resident rather than L1;
// swarAuto gates auto-selection on that hot footprint, and the density
// backoff (engine_swar.go) hands event-dense shards back to the
// L1-resident flat walk. EngineStrided/EngineSWAR force the tables
// regardless. RSLT3/RSLT4 bundles carry pcls/dense
// precomputed; they are fully semantically verified against the
// in-process closed table before first use (ensureStride), so a corrupt
// or stale bundle can disable striding but never change a verdict.

const (
	// strideShift is the pair-class capacity exponent: the padded walk
	// table is flatStates << strideShift entries, so (state&127)<<shift
	// | (class & (cap-1)) is provably in bounds. Automata whose pair
	// partition exceeds the capacity get no stride tables (the size
	// budget would reject them anyway).
	strideShift   = 12
	stridePairCap = 1 << strideShift
	// strideEventful marks a pair transition that leaves the inline
	// bands; valid entries pack two states < 128, so the high bit
	// distinguishes.
	strideEventful = 0xFFFF
)

// defaultSWARBudgetBytes is the auto-selection ceiling on the SWAR
// stepper's hot table footprint (the 128 KiB pair map plus the dense
// walk rows). The shipped automaton needs ~585 KiB, which stays
// L2-resident alongside the 16 KiB code shard on commodity cores; the
// budget rejects pathological runtime-compiled automata whose pair
// partition balloons. VerifyOptions.StrideBudgetBytes overrides;
// negative pins the engine to the single-stride lanes.
const defaultSWARBudgetBytes = 1 << 20

// strideTables holds the pair-class machinery. pcls and dense are the
// serialized form (RSLT3/RSLT4); walk is the padded runtime table
// derived by ensureStride.
type strideTables struct {
	npcls int
	pcls  []uint16 // 1<<16: byte pair (little-endian uint16) -> class
	dense []uint16 // n*npcls: packed two-state entries, row-major by state
	walk  []uint16 // flatStates<<strideShift, sentinel-padded
}

// encStride is the defining map: the packed entry for state s consuming
// bytes b1 then b2 through the restart-closed table.
func (f *fusedDFA) encStride(s uint16, b1, b2 byte) uint16 {
	s1 := f.closed[s][b1]
	if int(s1) >= f.rec {
		return strideEventful
	}
	s2 := f.closed[s1][b2]
	if int(s2) >= f.rec {
		return strideEventful
	}
	return s1 | s2<<8
}

// buildStride constructs the pair-class map and dense strided table
// from the closed table, deterministically (classes numbered by first
// occurrence in ascending pair order, deduped by column signature —
// the numbering the serialized bundles pin). The dense column is
// computed once per byte-class pair and memoized; pairs in the same
// class pair provably share it (closed columns are equal within a byte
// class), so the output is byte-identical to the historical per-pair
// construction at ~1/4 the cost. Fails if the automaton is too large
// for the packed encoding or the pair partition exceeds the capacity.
func (f *fusedDFA) buildStride() (*strideTables, error) {
	n := len(f.table)
	if n > flatStates {
		return nil, fmt.Errorf("core: %d states exceed the %d the strided walk supports", n, flatStates)
	}
	ncls := f.ncls
	sig := make([]byte, 2*n)
	seen := make(map[string]uint16, stridePairCap)
	pcls := make([]uint16, 1<<16)
	var cols [][]uint16
	colbuf := make([]uint16, n)
	memo := make([]int32, ncls*ncls) // byte-class pair -> id, -1 unseen
	for i := range memo {
		memo[i] = -1
	}
	for p := 0; p < 1<<16; p++ {
		b1, b2 := byte(p), byte(p>>8) // pair index is the LE uint16 of [b1 b2]
		key := int(f.cls[b1])*ncls + int(f.cls[b2])
		if id := memo[key]; id >= 0 {
			pcls[p] = uint16(id)
			continue
		}
		for s := 0; s < n; s++ {
			v := f.encStride(uint16(s), b1, b2)
			colbuf[s] = v
			sig[2*s] = byte(v)
			sig[2*s+1] = byte(v >> 8)
		}
		// Dedup by column signature, not by class pair: two distinct
		// class pairs with coincidentally equal columns share one id,
		// exactly as the per-pair construction numbered them.
		id, ok := seen[string(sig)]
		if !ok {
			if len(seen) >= stridePairCap {
				return nil, fmt.Errorf("core: pair-class count exceeds %d", stridePairCap)
			}
			id = uint16(len(seen))
			seen[string(sig)] = id
			cols = append(cols, append([]uint16(nil), colbuf...))
		}
		memo[key] = int32(id)
		pcls[p] = id
	}
	npcls := len(seen)
	dense := make([]uint16, n*npcls)
	for s := 0; s < n; s++ {
		for p := 0; p < npcls; p++ {
			dense[s*npcls+p] = cols[p][s]
		}
	}
	return &strideTables{npcls: npcls, pcls: pcls, dense: dense}, nil
}

// verifyStride checks a deserialized stride section semantically
// against the in-process closed table. The acceptance set is identical
// to the historical exhaustive 65,536×states check, factored through
// the byte classes: the first pair of each byte-class pair (the
// canonical pair) has its dense column verified against encStride for
// every state; any later pair of the same class pair provably demands
// the same column (closed columns are equal within a byte class), so
// it is held to the canonical pair's column — equal id passes outright,
// a different id must carry an equal column. A bundle whose stride
// tables passed the CRC but disagree semantically (a stale or
// hand-edited bundle) is rejected here, before the strided walk ever
// consumes them.
func (f *fusedDFA) verifyStride(st *strideTables) error {
	n := len(f.table)
	if n > flatStates {
		return fmt.Errorf("core: %d states exceed the %d the strided walk supports", n, flatStates)
	}
	if st.npcls < 1 || st.npcls > stridePairCap {
		return fmt.Errorf("core: implausible pair-class count %d", st.npcls)
	}
	if len(st.pcls) != 1<<16 || len(st.dense) != n*st.npcls {
		return fmt.Errorf("core: stride table sizes do not match the automaton")
	}
	ncls := f.ncls
	canon := make([]int32, ncls*ncls) // byte-class pair -> canonical id, -1 unseen
	for i := range canon {
		canon[i] = -1
	}
	for p := 0; p < 1<<16; p++ {
		id := int(st.pcls[p])
		if id >= st.npcls {
			return fmt.Errorf("core: pair class out of range")
		}
		b1, b2 := byte(p), byte(p>>8)
		key := int(f.cls[b1])*ncls + int(f.cls[b2])
		switch cid := canon[key]; {
		case cid < 0:
			for s := 0; s < n; s++ {
				if st.dense[s*st.npcls+id] != f.encStride(uint16(s), b1, b2) {
					return fmt.Errorf("core: strided table disagrees with the closed walk at state %d pair %#04x", s, p)
				}
			}
			canon[key] = int32(id)
		case int32(id) != cid:
			// A different id for an equivalent pair is legal only if its
			// column is identical to the canonical (already verified) one.
			for s := 0; s < n; s++ {
				if st.dense[s*st.npcls+id] != st.dense[s*st.npcls+int(cid)] {
					return fmt.Errorf("core: strided table disagrees with the closed walk at state %d pair %#04x", s, p)
				}
			}
		}
	}
	return nil
}

// ensureStride makes f's stride tables ready for the walk, once:
// bundle-shipped tables are semantically verified, otherwise they are
// built from the closed table, and either way the padded walk table is
// materialized. Runs once per automaton (a few milliseconds); the error
// is sticky, and a failure leaves the engine on the single-stride path.
func (f *fusedDFA) ensureStride() error {
	f.strideOnce.Do(func() {
		st := f.stride
		if st != nil {
			if err := f.verifyStride(st); err != nil {
				f.stride = nil
				f.strideErr = err
				return
			}
		} else {
			built, err := f.buildStride()
			if err != nil {
				f.strideErr = err
				return
			}
			st = built
			f.stride = st
		}
		walk := make([]uint16, flatStates<<strideShift)
		for i := range walk {
			walk[i] = strideEventful
		}
		n := len(f.table)
		for s := 0; s < n; s++ {
			copy(walk[s<<strideShift:s<<strideShift+st.npcls], st.dense[s*st.npcls:(s+1)*st.npcls])
		}
		st.walk = walk
	})
	return f.strideErr
}

// strideReady reports whether the walk tables are materialized and
// verified (ensureStride succeeded).
func (f *fusedDFA) strideReady() bool {
	return f.stride != nil && f.stride.walk != nil
}

// swarReady reports whether the SWAR stepper's tables — the padded walk,
// the pair map and the flat fallback table — are materialized.
func (f *fusedDFA) swarReady() bool {
	return f.strideReady() && f.flat != nil
}

// swarAuto decides whether EngineFused should upgrade to the SWAR
// stepper: the automaton must fit the packed encodings and the hot
// table footprint — the 128 KiB pair map plus the dense walk rows
// actually touched — must fit the budget, so pathological
// runtime-compiled automata degrade gracefully to the single-stride
// lanes instead of thrashing the cache. budget 0 means
// defaultSWARBudgetBytes; negative disables the upgrade outright (the
// "lanes" engine of the CLI).
//
// Note what is deliberately absent: a plain two-stride auto-upgrade.
// The byte-at-a-time pcls-indexed walk measured *slower* than the
// single-stride lanes on commodity cores (its 128 KiB pair map misses
// L1 on every load), so auto never selects it — EngineStrided still
// forces it for cross-checks. The SWAR stepper pays the same per-load
// latency but retires 8 bytes per round trip and backs dense shards
// off to the flat walk, which is what makes striding pay.
func (f *fusedDFA) swarAuto(budget int) bool {
	if budget < 0 {
		return false
	}
	if budget == 0 {
		budget = defaultSWARBudgetBytes
	}
	if len(f.table) > flatStates {
		return false
	}
	st := f.stride
	if st == nil {
		return false
	}
	hot := 2*(1<<16) + 2*len(f.table)*st.npcls
	return hot <= budget
}

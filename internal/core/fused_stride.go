package core

import "fmt"

// This file builds the optional two-stride (byte-pair) tables for the
// lane engine — the second classic regex-engine acceleration after byte
// classes. Two byte pairs are equivalent iff from every state the
// restart-closed two-step walk stores the same two states (or is
// eventful either step); the pair-class map pcls collapses the 2^16
// pair space onto those classes, and the strided table gives, per
// (state, pair class), the two state bytes the single-stride walk would
// have stored — packed little-endian so one uint16 entry is exactly the
// two-byte store into the state buffer. An entry is the sentinel
// strideEventful when either step leaves the inline bands [0, rec); the
// walk then falls back to two single-byte steps, which re-discover the
// event at the right byte. Because entries are *defined* as the
// single-stride stores, the state buffer — and everything derived from
// it — is byte-identical between the variants.
//
// The tables are big (pcls is 128 KiB; the dense strided table is
// states×pairClasses×2 bytes, ~520 KiB for the shipped 66-state
// automaton), so EngineFused only auto-selects them under a size budget
// (strideAuto) — on typical hosts they fall out of L2 and lose to the
// single-stride walk, so the default budget rejects them and the engine
// falls back to single-stride automatically. EngineStrided forces them.
// RSLT3 bundles carry the tables precomputed; they are fully
// semantically verified against the in-process closed table before
// first use (ensureStride), so a corrupt or stale bundle can disable
// striding but never change a verdict.

const (
	// strideShift is the pair-class capacity exponent: the padded walk
	// table is flatStates << strideShift entries, so (state&127)<<shift
	// | (class & (cap-1)) is provably in bounds. Automata whose pair
	// partition exceeds the capacity get no stride tables (the size
	// budget would reject them anyway).
	strideShift   = 12
	stridePairCap = 1 << strideShift
	// strideEventful marks a pair transition that leaves the inline
	// bands; valid entries pack two states < 128, so the high bit
	// distinguishes.
	strideEventful = 0xFFFF
)

// defaultStrideBudgetBytes is the auto-selection ceiling on the hot
// stride-table footprint (pcls + dense rows). Past ~256 KiB the tables
// contend with the code bytes for L2 and the two-stride walk measures
// slower than single-stride on commodity cores, so the default keeps
// striding off unless the automaton is small enough to stay cache
// resident; VerifyOptions.StrideBudgetBytes overrides.
const defaultStrideBudgetBytes = 256 << 10

// strideTables holds the pair-class machinery. pcls and dense are the
// serialized form (RSLT3); walk is the padded runtime table built by
// ensureStride.
type strideTables struct {
	npcls int
	pcls  []uint16 // 1<<16: byte pair (little-endian uint16) -> class
	dense []uint16 // n*npcls: packed two-state entries, row-major by state
	walk  []uint16 // flatStates<<strideShift, sentinel-padded
}

// encStride is the defining map: the packed entry for state s consuming
// bytes b1 then b2 through the restart-closed table.
func (f *fusedDFA) encStride(s uint16, b1, b2 byte) uint16 {
	s1 := f.closed[s][b1]
	if int(s1) >= f.rec {
		return strideEventful
	}
	s2 := f.closed[s1][b2]
	if int(s2) >= f.rec {
		return strideEventful
	}
	return s1 | s2<<8
}

// buildStride constructs the pair-class map and dense strided table
// from the closed table, deterministically (classes numbered by first
// occurrence in ascending pair order). Fails if the automaton is too
// large for the packed encoding or the pair partition exceeds the
// capacity.
func (f *fusedDFA) buildStride() (*strideTables, error) {
	n := len(f.table)
	if n > flatStates {
		return nil, fmt.Errorf("core: %d states exceed the %d the strided walk supports", n, flatStates)
	}
	sig := make([]byte, 2*n)
	seen := make(map[string]uint16, stridePairCap)
	pcls := make([]uint16, 1<<16)
	var cols [][]uint16
	colbuf := make([]uint16, n)
	for p := 0; p < 1<<16; p++ {
		b1, b2 := byte(p), byte(p>>8) // pair index is the LE uint16 of [b1 b2]
		for s := 0; s < n; s++ {
			v := f.encStride(uint16(s), b1, b2)
			colbuf[s] = v
			sig[2*s] = byte(v)
			sig[2*s+1] = byte(v >> 8)
		}
		id, ok := seen[string(sig)]
		if !ok {
			if len(seen) >= stridePairCap {
				return nil, fmt.Errorf("core: pair-class count exceeds %d", stridePairCap)
			}
			id = uint16(len(seen))
			seen[string(sig)] = id
			cols = append(cols, append([]uint16(nil), colbuf...))
		}
		pcls[p] = id
	}
	npcls := len(seen)
	dense := make([]uint16, n*npcls)
	for s := 0; s < n; s++ {
		for p := 0; p < npcls; p++ {
			dense[s*npcls+p] = cols[p][s]
		}
	}
	return &strideTables{npcls: npcls, pcls: pcls, dense: dense}, nil
}

// verifyStride checks a deserialized stride section exhaustively
// against the in-process closed table: every pair's class entry must
// reproduce encStride for every state. A bundle whose stride tables
// passed the CRC but disagree semantically (a stale or hand-edited
// bundle) is rejected here, before the strided walk ever consumes them.
func (f *fusedDFA) verifyStride(st *strideTables) error {
	n := len(f.table)
	if n > flatStates {
		return fmt.Errorf("core: %d states exceed the %d the strided walk supports", n, flatStates)
	}
	if st.npcls < 1 || st.npcls > stridePairCap {
		return fmt.Errorf("core: implausible pair-class count %d", st.npcls)
	}
	if len(st.pcls) != 1<<16 || len(st.dense) != n*st.npcls {
		return fmt.Errorf("core: stride table sizes do not match the automaton")
	}
	for p := 0; p < 1<<16; p++ {
		id := int(st.pcls[p])
		if id >= st.npcls {
			return fmt.Errorf("core: pair class out of range")
		}
		b1, b2 := byte(p), byte(p>>8)
		for s := 0; s < n; s++ {
			if st.dense[s*st.npcls+id] != f.encStride(uint16(s), b1, b2) {
				return fmt.Errorf("core: strided table disagrees with the closed walk at state %d pair %#04x", s, p)
			}
		}
	}
	return nil
}

// ensureStride makes f's stride tables ready for the walk, once:
// bundle-shipped tables are semantically verified, otherwise they are
// built from the closed table, and either way the padded walk table is
// materialized. Runs once per automaton (tens of milliseconds); the
// error is sticky, and a failure leaves the engine on the single-stride
// path.
func (f *fusedDFA) ensureStride() error {
	f.strideOnce.Do(func() {
		st := f.stride
		if st != nil {
			if err := f.verifyStride(st); err != nil {
				f.stride = nil
				f.strideErr = err
				return
			}
		} else {
			built, err := f.buildStride()
			if err != nil {
				f.strideErr = err
				return
			}
			st = built
			f.stride = st
		}
		walk := make([]uint16, flatStates<<strideShift)
		for i := range walk {
			walk[i] = strideEventful
		}
		n := len(f.table)
		for s := 0; s < n; s++ {
			copy(walk[s<<strideShift:s<<strideShift+st.npcls], st.dense[s*st.npcls:(s+1)*st.npcls])
		}
		st.walk = walk
	})
	return f.strideErr
}

// strideReady reports whether the walk tables are materialized and
// verified (ensureStride succeeded).
func (f *fusedDFA) strideReady() bool {
	return f.stride != nil && f.stride.walk != nil
}

// strideAuto decides whether EngineFused should use the two-stride walk:
// only when tables were shipped in the bundle (building them ad hoc
// would dwarf any win) and their hot footprint — the pair-class map
// plus the dense rows actually touched — fits the budget. budget 0
// means defaultStrideBudgetBytes; negative disables striding outright.
func (f *fusedDFA) strideAuto(budget int) bool {
	if budget < 0 {
		return false
	}
	if budget == 0 {
		budget = defaultStrideBudgetBytes
	}
	st := f.stride
	if st == nil {
		return false
	}
	hot := 2*(1<<16) + 2*len(f.table)*st.npcls
	return hot <= budget
}

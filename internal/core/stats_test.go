package core_test

import (
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/telemetry"
)

// TestStatsDeterministic pins the acceptance criterion that
// Report.Stats counters are byte-identical across worker counts: the
// same image verified with Workers 1, 4, and 0 (= all CPUs) yields
// identical deterministic counters (wall times excluded via Counters).
// It covers a safe multi-shard image, a rejected image with violations
// in several shards, and a tiny single-bundle image.
func TestStatsDeterministic(t *testing.T) {
	c := checker(t)
	gen := nacl.NewGenerator(55)
	safe, err := gen.Random(6000) // multiple shards
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), safe...)
	bad[0] = 0xc3                    // illegal at the very start
	bad[len(bad)/2] = 0xc3           // and mid-image
	tiny := []byte{0x90, 0x90, 0x90} // sub-bundle image
	for _, tc := range []struct {
		name string
		img  []byte
	}{
		{"safe", safe},
		{"rejected", bad},
		{"tiny", tiny},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := c.VerifyWith(tc.img, core.VerifyOptions{Workers: 1})
			want := base.Stats.Counters()
			if want.BytesScanned != int64(len(tc.img)) {
				t.Errorf("BytesScanned = %d, want %d", want.BytesScanned, len(tc.img))
			}
			if base.Safe && want.Instructions == 0 {
				t.Error("safe image reported zero instruction boundaries")
			}
			kindTotal := int64(0)
			for _, n := range want.ViolationsByKind {
				kindTotal += n
			}
			if kindTotal != int64(base.Total) {
				t.Errorf("ViolationsByKind sums to %d, Report.Total is %d", kindTotal, base.Total)
			}
			for _, w := range []int{4, 0} {
				rep := c.VerifyWith(tc.img, core.VerifyOptions{Workers: w})
				if got := rep.Stats.Counters(); got != want {
					t.Errorf("workers=%d: stats diverged\n got %+v\nwant %+v", w, got, want)
				}
			}
		})
	}
}

// TestStatsEngineModes pins the lane/scalar/restart classification: a
// large compliant image goes through the lane batches, the reference
// engine is all scalar fallbacks, and a violating image forces lane
// restarts (erase + scalar re-parse).
func TestStatsEngineModes(t *testing.T) {
	c := checker(t)
	gen := nacl.NewGenerator(56)
	img, err := gen.Random(6000)
	if err != nil {
		t.Fatal(err)
	}

	rep := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
	if !rep.Safe {
		t.Fatal("image rejected")
	}
	if rep.Stats.LaneBatches == 0 {
		t.Error("compliant multi-shard image parsed without any lane batch")
	}
	if rep.Stats.Restarts != 0 {
		t.Errorf("compliant image forced %d lane restarts", rep.Stats.Restarts)
	}

	ref := c.VerifyWith(img, core.VerifyOptions{Workers: 1, Engine: core.EngineReference})
	if ref.Stats.LaneBatches != 0 || ref.Stats.Restarts != 0 {
		t.Errorf("reference engine recorded lane activity: %+v", ref.Stats)
	}
	if ref.Stats.ScalarFallbacks != ref.Stats.Shards {
		t.Errorf("reference engine: ScalarFallbacks %d != Shards %d",
			ref.Stats.ScalarFallbacks, ref.Stats.Shards)
	}

	bad := append([]byte(nil), img...)
	bad[0] = 0xc3 // RET at an instruction start is always illegal
	badRep := c.VerifyWith(bad, core.VerifyOptions{Workers: 1})
	if badRep.Safe {
		t.Fatal("tampered image accepted")
	}
	if badRep.Stats.Restarts == 0 {
		t.Error("violating shard did not record a lane restart")
	}
	if badRep.Stats.ViolationsByKind[core.IllegalInstruction] == 0 {
		t.Error("per-kind census missed the illegal instruction")
	}
}

// TestStatsUncappedCensus: ViolationsByKind must count past the
// MaxReportViolations cap — its sum equals Report.Total, not
// len(Report.Violations).
func TestStatsUncappedCensus(t *testing.T) {
	c := checker(t)
	// An image of 0xC3 (RET) bytes violates at every bundle boundary;
	// 200 bundles overflows the 64-violation report cap comfortably.
	img := make([]byte, 200*core.BundleSize)
	for i := range img {
		img[i] = 0xc3
	}
	rep := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
	if rep.Safe {
		t.Fatal("garbage image accepted")
	}
	if rep.Total <= core.MaxReportViolations {
		t.Fatalf("test image too tame: total %d", rep.Total)
	}
	sum := int64(0)
	for _, n := range rep.Stats.ViolationsByKind {
		sum += n
	}
	if sum != int64(rep.Total) {
		t.Errorf("census sums to %d, want the uncapped total %d", sum, rep.Total)
	}
}

// TestContainedPanicMetric: a shard panic must bump the process-wide
// contained-panic counter (with telemetry enabled) in addition to the
// fail-closed InternalFault violation, so containment regressions are
// visible on /metrics, not only in test failures.
func TestContainedPanicMetric(t *testing.T) {
	c := checker(t)
	prev := telemetry.Enabled()
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)

	core.SetShardHook(func(shard int) {
		if shard == 1 {
			panic("injected shard fault")
		}
	})
	defer core.SetShardHook(nil)

	img := make([]byte, 2*core.ShardBytes)
	for i := range img {
		img[i] = 0x90
	}
	before, _ := telemetry.Default().Value("rocksalt_verify_contained_panics_total")
	rep := c.VerifyWith(img, core.VerifyOptions{Workers: 2})
	after, _ := telemetry.Default().Value("rocksalt_verify_contained_panics_total")
	if rep.Safe {
		t.Fatal("run with a panicking shard reported safe")
	}
	if rep.Stats.ContainedPanics != 1 {
		t.Errorf("Stats.ContainedPanics = %d, want 1", rep.Stats.ContainedPanics)
	}
	if after-before != 1 {
		t.Errorf("contained-panic counter moved by %d, want 1", after-before)
	}
}

package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/policy"
)

// deltaRoundEqual asserts a delta round's report is byte-identical to
// a from-scratch verify of the same image: verdict, the full sorted
// violation list (offsets, kinds, windows, details), geometry, and the
// engine-invariant stats (modulo the delta reuse counters, which only
// a delta round reports).
func deltaRoundEqual(t *testing.T, got, want *core.Report, what string) {
	t.Helper()
	if got.Safe != want.Safe || got.Outcome != want.Outcome || got.Total != want.Total ||
		got.Size != want.Size || got.Shards != want.Shards {
		t.Fatalf("%s: verdict differs: got {safe %v %v total %d size %d} want {safe %v %v total %d size %d}",
			what, got.Safe, got.Outcome, got.Total, got.Size, want.Safe, want.Outcome, want.Total, want.Size)
	}
	if !reflect.DeepEqual(got.Violations, want.Violations) {
		t.Fatalf("%s: violations differ\ndelta: %+v\nfull:  %+v", what, got.Violations, want.Violations)
	}
	gs, ws := got.Stats.EngineInvariant(), want.Stats.EngineInvariant()
	gs.DeltaChunksReparsed, gs.DeltaChunksReplayed, gs.DeltaBytesReparsed = 0, 0, 0
	if gs != ws {
		t.Fatalf("%s: stats diverged\ndelta: %+v\nfull:  %+v", what, gs, ws)
	}
}

// FuzzDeltaEquiv is the incremental verifier's soundness property: an
// arbitrary edit script applied round by round through VerifyDelta —
// overwrites, inserts, appends, truncations, edits straddling chunk
// boundaries — must leave every round's report byte-identical to a
// cold full verify of the image at that point, for all three shipped
// policies. The state is threaded across rounds, so staleness in any
// retained artifact (bitmap words, banked targets, clean bits, the
// size-change rules) surfaces as a diverging verdict. Run longer with
//
//	go test -fuzz FuzzDeltaEquiv ./internal/core
func FuzzDeltaEquiv(f *testing.F) {
	checkers, err := fuzzPolicies()
	if err != nil {
		f.Fatal(err)
	}
	// Seeds: multi-chunk compliant images per policy (so replay has
	// retained chunks to reuse), the unsafe corpus, and scripts that
	// overwrite, grow across a chunk boundary, and shrink.
	for i, spec := range []policy.Spec{policy.NaCl(), policy.NaCl16(), policy.REINS()} {
		com, err := policy.Compile(spec)
		if err != nil {
			f.Fatal(err)
		}
		prof, err := nacl.ProfileForSpec(com.Spec)
		if err != nil {
			f.Fatal(err)
		}
		img, err := nacl.NewGeneratorFor(int64(31+i), prof, com.SafeGrammar).Random(40000)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img, []byte{0x00, 0x80, 0x00, 0x20, 0x90, 0x01, 0xff, 0xff, 0x10, 0xe9})
	}
	for _, img := range nacl.UnsafeCorpus() {
		f.Add(img, []byte{0x02, 0x00, 0x04, 0xff, 0x90, 0x00, 0x00, 0x01, 0x01, 0xcc})
	}
	f.Add([]byte{0xe9, 0x00, 0x10, 0x00, 0x00}, []byte{0x03, 0x00, 0x02})

	f.Fuzz(func(t *testing.T, img, script []byte) {
		if len(img) > 512<<10 || len(script) > 30 {
			t.Skip()
		}
		for _, c := range checkers {
			name := c.PolicyInfo().Name
			code := append([]byte(nil), img...)
			opts := core.VerifyOptions{Workers: 1}

			rep, state, err := c.VerifyDeltaWith(code, nil, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			deltaRoundEqual(t, rep, c.VerifyWith(code, opts), name+"/round 0")

			// Each op consumes 5 script bytes: kind, 2-byte offset seed,
			// length seed, fill byte. Offsets and lengths are scaled to
			// the image so edits land everywhere from byte 0 to past the
			// last chunk boundary.
			for round := 0; round+5 <= len(script) && round < 30; round += 5 {
				op := script[round]
				off := int(script[round+1])<<8 | int(script[round+2])
				n := 1 + int(script[round+3])*257
				fill := script[round+4]
				if len(code) > 0 {
					off = off % (len(code) + 1)
				} else {
					off = 0
				}
				var changed []core.Range
				switch op % 4 {
				case 0: // overwrite [off, off+n)
					if off == len(code) {
						off = 0
					}
					end := off + n
					if end > len(code) {
						end = len(code)
					}
					for i := off; i < end; i++ {
						code[i] = fill
					}
					changed = []core.Range{{Off: off, Len: end - off}}
				case 1: // insert n bytes at off (moves the tail)
					ins := bytes.Repeat([]byte{fill}, n)
					code = append(code[:off], append(ins, code[off:]...)...)
					changed = []core.Range{{Off: off, Len: len(code) - off}}
				case 2: // append n bytes (no range needed: only the size moved)
					code = append(code, bytes.Repeat([]byte{fill}, n)...)
				case 3: // truncate to off
					code = code[:off]
				}
				var got *core.Report
				got, state, err = c.VerifyDeltaWith(code, changed, state, opts)
				if err != nil {
					t.Fatal(err)
				}
				deltaRoundEqual(t, got, c.VerifyWith(code, opts), name+"/edited round")
			}
		}
	})
}

package core_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
)

// streamEqual asserts a streaming report matches the in-memory one on
// everything except Window: the bounded window cannot always keep the
// bytes around a violation resident (stage-2 violations carry no
// excerpt at all, and shard-local ones within the automaton lookahead
// of a chunk start clip at the window seam), so the contract is
// identical verdict, offsets, kinds and details.
func streamEqual(t *testing.T, got, want *core.Report, what string) {
	t.Helper()
	if got.Safe != want.Safe || got.Outcome != want.Outcome || got.Total != want.Total ||
		got.Size != want.Size || got.Shards != want.Shards {
		t.Fatalf("%s: verdict differs: got {safe %v %v total %d} want {safe %v %v total %d}",
			what, got.Safe, got.Outcome, got.Total, want.Safe, want.Outcome, want.Total)
	}
	if len(got.Violations) != len(want.Violations) {
		t.Fatalf("%s: %d violations, want %d", what, len(got.Violations), len(want.Violations))
	}
	for i := range got.Violations {
		g, w := got.Violations[i], want.Violations[i]
		if g.Offset != w.Offset || g.Kind != w.Kind || g.Detail != w.Detail {
			t.Fatalf("%s: violation %d differs:\nstream: %+v\nmemory: %+v", what, i, g, w)
		}
	}
}

// TestVerifyReaderMatchesVerify: the bounded-window streaming verifier
// agrees with the in-memory one across the window geometries — images
// smaller than one chunk, exactly the window size, spanning many
// windows — on both compliant and corrupted inputs.
func TestVerifyReaderMatchesVerify(t *testing.T) {
	c := checker(t)
	big := cacheImage(t, 10, 60000)
	images := map[string][]byte{
		"tiny":         big[:64],
		"one chunk":    big[:deltaChunk],
		"exact window": big[:2*deltaChunk],
		"multi-window": big,
		"odd tail":     big[:2*deltaChunk+12345],
	}
	// Corrupted variants: flip bytes in every chunk so violations fall
	// in different windows.
	bad := append([]byte(nil), big...)
	for off := deltaChunk / 2; off < len(bad); off += deltaChunk {
		bad[off] ^= 0xff
	}
	images["corrupted"] = bad
	// A violation straddling a window seam: corrupt right at a chunk
	// boundary.
	seam := append([]byte(nil), big...)
	copy(seam[2*deltaChunk-8:2*deltaChunk+8], bytes.Repeat([]byte{0xff}, 16))
	images["seam corruption"] = seam

	for name, img := range images {
		want := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
		got, err := c.VerifyReader(bytes.NewReader(img), core.VerifyOptions{StreamSize: int64(len(img))})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		streamEqual(t, got, want, name)
		if got.Workers != 1 {
			t.Fatalf("%s: streaming run reported %d workers", name, got.Workers)
		}
	}
}

// TestVerifyReaderSizeMismatch: a stream shorter or longer than the
// declared size is an error, never a verdict over the wrong bytes.
func TestVerifyReaderSizeMismatch(t *testing.T) {
	c := checker(t)
	img, err := nacl.NewGenerator(11).Random(2000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.VerifyReader(bytes.NewReader(img), core.VerifyOptions{StreamSize: int64(len(img)) + 10}); err == nil ||
		!strings.Contains(err.Error(), "stream ended") {
		t.Fatalf("short stream: got %v", err)
	}
	if _, err := c.VerifyReader(bytes.NewReader(img), core.VerifyOptions{StreamSize: int64(len(img)) - 10}); err == nil ||
		!strings.Contains(err.Error(), "continues past") {
		t.Fatalf("long stream: got %v", err)
	}
	if _, err := c.VerifyReader(bytes.NewReader(img), core.VerifyOptions{StreamSize: 1 << 31}); err == nil {
		t.Fatal("2 GiB stream size accepted")
	}
}

// TestVerifyReaderZeroSizeFallback: StreamSize 0 buffers the stream
// and takes the ordinary path — reports then match in full, Windows
// included.
func TestVerifyReaderZeroSizeFallback(t *testing.T) {
	c := checker(t)
	img, err := nacl.NewGenerator(12).Random(2000)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0xff
	want := c.VerifyWith(img, core.VerifyOptions{})
	got, err := c.VerifyReader(bytes.NewReader(img), core.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameVerdict(t, got, want, "zero-size fallback")
}

// TestVerifyReaderCanceled: cancellation between window chunks yields
// the usual interrupted report, not an error or partial verdict.
func TestVerifyReaderCanceled(t *testing.T) {
	c := checker(t)
	img := cacheImage(t, 13, 60000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := c.VerifyReaderContext(ctx, bytes.NewReader(img), core.VerifyOptions{StreamSize: int64(len(img))})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != core.OutcomeCanceled || !rep.Interrupted() {
		t.Fatalf("canceled stream reported %v", rep.Outcome)
	}
	if len(rep.Violations) != 0 {
		t.Fatal("interrupted streaming run carried partial violations")
	}
}

package core

import (
	"fmt"
	"sync"

	"rocksalt/internal/grammar"
	"rocksalt/internal/policy"
	"rocksalt/internal/vcache"
)

// This file hosts the fused policy automaton in the table form the
// engine walks: the product of the three checker DFAs (MaskedJump ×
// NoControlFlow × DirectJump) with a tag byte per state recording which
// components accept or are still live. The product construction itself
// (collapse-to-sinks, BFS discovery, tagged minimization) lives in
// internal/policy (FuseProduct), since it is part of the grammar→tables
// pipeline; this file layers the engine-facing renumbering and derived
// fast-path structures on top. The seed engine's Figure-5 loop tries
// the three DFAs sequentially at every offset, rescanning the same
// bytes on each failed attempt; the fused automaton reproduces the
// exact same decision — masked's first accept wins, else noCF's, else
// direct's — in a single table walk that stops as soon as every
// component has either accepted or rejected.

// Tag bits of a fused state, aliased from the policy compiler (which
// owns the serialized layout; see policy.TagAccMasked and friends).
const (
	tagAccMasked  = policy.TagAccMasked
	tagAccNoCF    = policy.TagAccNoCF
	tagAccDirect  = policy.TagAccDirect
	tagLiveMasked = policy.TagLiveMasked
	tagLiveNoCF   = policy.TagLiveNoCF
	tagLiveDirect = policy.TagLiveDirect

	tagAccAny  = policy.TagAccAny
	tagLiveAny = policy.TagLiveAny

	// tagMask covers every defined bit; loaders reject tags outside it.
	tagMask = policy.TagMask
)

// fusedDFA is the product automaton in the table form the engine walks.
// States are renumbered by class (see stateClass): quiet states occupy
// [0, quiet), states whose tag is exactly tagAccNoCF — a complete noCF
// instruction with every other component resolved, the overwhelmingly
// common way an instruction ends — occupy [quiet, nc), recording states
// (an accept happened but a masked pair is still live, so the walk just
// remembers it and keeps going) occupy [nc, rec), and the rest [rec, n).
// The hot loops then classify a state with integer compares on the
// number itself, no tag load: `s < quiet` skips all stop logic, and
// `s < rec` keeps the restart-closed walk inline — recording states need
// no action at all during the walk, because the accept they would record
// is recoverable later from the state the walk stored for that byte.
type fusedDFA struct {
	start int
	quiet int
	nc    int
	rec   int
	tags  []uint8
	table [][256]uint16
	// closed is the restart-closed transition table the lane engine
	// walks: identical to table except that class-1 states (pure noCF
	// accept, nothing live — the instruction just ended and nothing else
	// can match) transition as if from the start state. A walk over
	// closed never stops at the common instruction end; it flows straight
	// into the next instruction, and the engine recovers the boundary
	// positions from the state numbers it passes through. Derived on
	// load, never serialized.
	closed [][256]uint16
	// flat is the restart-closed table flattened and padded to 128 state
	// rows: flat[s<<8|b] == closed[s][b]. The pass-1 walk indexes it as
	// flat[int(s&127)<<8|int(b)], which the compiler can prove in-bounds
	// against the fixed 1<<15 length, so the hottest load carries no
	// bounds check. Derived on load, never serialized.
	flat []uint16
	// nocf1[b] means byte b alone is a complete noCF instruction and no
	// component can match anything else from the start state — the walk's
	// outcome is fully determined by one byte. Derived from the table
	// (never serialized), it lets the engine skip the walk for the
	// single-byte instructions (NOPs above all) that dominate real images.
	nocf1 [256]bool
	// cls partitions the byte alphabet by column equality over closed
	// (grammar.ByteClasses): cls[b1] == cls[b2] iff every state maps b1
	// and b2 to the same successor. ncls is the class count. The
	// compacted states×classes table this induces is what the two-stride
	// construction works from; see fused_stride.go.
	cls  [256]uint8
	ncls int
	// stride holds the optional two-stride tables (pair-class map +
	// superstate transitions); nil when no bundle carried them and
	// ensureStride has not built them. Guarded by strideOnce: the first
	// strided run verifies (or builds) the tables and materializes the
	// padded walk table; a sticky strideErr keeps later runs on the
	// single-stride path. See fused_stride.go.
	stride     *strideTables
	strideOnce sync.Once
	strideErr  error
	// fp memoizes the content hash of (start, tags, table) — the
	// automaton's identity in verdict-cache keys (see cache.go).
	fpOnce sync.Once
	fp     vcache.Key
	// la memoizes lookahead(): the worst-case number of bytes a single
	// walk from the start state can consume before the stop rule fires.
	laOnce sync.Once
	la     int
}

// lookahead bounds how far past a position any engine can read while
// deciding the instruction that starts there: the longest walk from the
// start state through states the stop rule would continue from (quiet
// states, and eventful states that neither accepted masked nor went
// fully dead). A shard or chunk parse therefore depends only on its own
// bytes plus at most lookahead()-1 bytes beyond its end — the fact the
// chunk cache and the delta verifier key on. The reference engine's
// per-component walks read no further: each component automaton's
// liveness is a projection of the product's, so its walks die (or
// accept) no later than the product's stop rule. A cycle among
// continuing states (impossible for the x86 grammars, whose instruction
// length is bounded, but reachable through a custom table bundle) falls
// back to the chunk size, which disables cross-chunk reuse rather than
// unsoundly enabling it.
func (f *fusedDFA) lookahead() int {
	f.laOnce.Do(func() {
		cont := func(s uint16) bool {
			if int(s) < f.quiet {
				return true
			}
			tag := f.tags[s]
			return tag&tagAccMasked == 0 && tag&tagLiveAny != 0
		}
		// depth[s]: 0 unvisited, -1 on the current DFS path (cycle when
		// re-entered), otherwise 2 + longest remaining walk from s.
		depth := make([]int, len(f.table))
		cyclic := false
		var walk func(s uint16) int
		walk = func(s uint16) int {
			switch d := depth[s]; {
			case d == -1:
				cyclic = true
				return 0
			case d > 0:
				return d - 2
			}
			depth[s] = -1
			best := 0
			row := &f.table[s]
			for b := 0; b < 256 && !cyclic; b++ {
				t := row[b]
				steps := 1
				if cont(t) {
					steps += walk(t)
				}
				if steps > best {
					best = steps
				}
			}
			depth[s] = best + 2
			return best
		}
		n := walk(uint16(f.start))
		if cyclic || n <= 0 || n > chunkBytes {
			n = chunkBytes
		}
		f.la = n
	})
	return f.la
}

// flatStates is the padded state capacity of the flat table. Automata
// with more states (possible only through custom table bundles; the
// shipped fused product has 66) get no flat table and are verified by
// the scalar-fused path alone.
const flatStates = 128

// computeFast derives the never-serialized fast-path structures: the
// single-byte noCF table (entering a state whose tag is exactly
// tagAccNoCF means noCF just accepted and every component is resolved,
// so the priority decision is "noCF, length 1") and the restart-closed
// transition table.
func (f *fusedDFA) computeFast() {
	row := &f.table[f.start]
	for b := 0; b < 256; b++ {
		f.nocf1[b] = f.tags[row[b]] == tagAccNoCF
	}
	f.closed = make([][256]uint16, len(f.table))
	for s := range f.table {
		if s >= f.quiet && s < f.nc {
			f.closed[s] = *row
		} else {
			f.closed[s] = f.table[s]
		}
	}
	f.cls, f.ncls = grammar.ByteClasses(f.closed)
	f.flat = nil
	if len(f.table) <= flatStates {
		f.flat = make([]uint16, flatStates*256)
		for s := range f.closed {
			copy(f.flat[s<<8:(s+1)<<8], f.closed[s][:])
		}
	}
}

// eventfulTag reports whether a walk must inspect the state's tag: a
// component just accepted, or no component is live anymore. Quiet states
// (live, nothing accepting) are the overwhelming majority of steps.
func eventfulTag(g uint8) bool {
	return g&tagAccAny != 0 || g&tagLiveAny == 0
}

// stateClass orders the renumbering classes: 0 quiet, 1 "pure noCF
// accept" (tag exactly tagAccNoCF), 2 recording (an accept with no
// masked accept and masked still live — the walk can never resolve
// here, whatever was recorded earlier, so it only needs to remember
// the state), 3 everything else eventful.
func stateClass(g uint8) int {
	switch {
	case !eventfulTag(g):
		return 0
	case g == tagAccNoCF:
		return 1
	case g&tagAccMasked == 0 && g&tagLiveMasked != 0:
		return 2
	}
	return 3
}

const numStateClasses = 4

// fuseDFAs builds the minimized fused product automaton for a DFA set
// (policy.FuseProduct) and renumbers it into the engine's class bands.
// The construction is deterministic end to end, so the same tables
// always fuse to the same bytes — the property the embedded-bundle
// regeneration guard checks.
func fuseDFAs(set *DFASet) (*fusedDFA, error) {
	mStart, mTags, mTable, err := policy.FuseProduct(set.MaskedJump, set.NoControlFlow, set.DirectJump)
	if err != nil {
		return nil, err
	}
	return reorderByClass(mStart, mTags, mTable), nil
}

// reorderByClass renumbers the minimized product so the stateClass
// sequence is non-decreasing, preserving relative order within each
// class — a deterministic permutation, so serialized bundles stay
// reproducible. The boundaries themselves are not serialized; they are
// recomputed from the tags on load (validate checks the partition).
func reorderByClass(start int, tags []uint8, table [][256]uint16) *fusedDFA {
	n := len(tags)
	perm := make([]int, n)
	var count [numStateClasses]int
	for _, g := range tags {
		count[stateClass(g)]++
	}
	var next [numStateClasses]int
	for cl := 1; cl < numStateClasses; cl++ {
		next[cl] = next[cl-1] + count[cl-1]
	}
	for i, g := range tags {
		cl := stateClass(g)
		perm[i] = next[cl]
		next[cl]++
	}
	f := &fusedDFA{
		start: perm[start],
		quiet: count[0],
		nc:    count[0] + count[1],
		rec:   count[0] + count[1] + count[2],
		tags:  make([]uint8, n),
		table: make([][256]uint16, n),
	}
	for i, g := range tags {
		ni := perm[i]
		f.tags[ni] = g
		for b := 0; b < 256; b++ {
			f.table[ni][b] = uint16(perm[int(table[i][b])])
		}
	}
	f.computeFast()
	return f
}

// scan is the fused engine's inner step: one walk of the product
// automaton from code[pos:], returning each component's earliest accept
// length (0 = the component never accepts) — the same values the seed's
// three sequential match calls would produce, in one pass. The walk
// stops as soon as the priority decision is determined: a masked accept
// wins outright; once masked can no longer accept, a recorded noCF
// accept wins; once noCF is out too, a recorded direct accept; and a
// state with nothing live and nothing recorded is the illegal case.
// Quiet states skip all of that behind the state-number compare.
func (f *fusedDFA) scan(code []byte, pos int) (lm, ln, ld int) {
	table, tags := f.table, f.tags
	quiet := uint16(f.quiet)
	state := uint16(f.start)
	off := pos
	for off < len(code) {
		state = table[state][code[off]]
		off++
		if state < quiet {
			continue
		}
		tag := tags[state]
		n := off - pos
		if tag&tagAccMasked != 0 {
			lm = n
			break
		}
		if tag&tagAccNoCF != 0 && ln == 0 {
			ln = n
		}
		if tag&tagAccDirect != 0 && ld == 0 {
			ld = n
		}
		if tag&tagLiveMasked == 0 &&
			(ln != 0 || tag&tagLiveNoCF == 0 && (ld != 0 || tag&tagLiveDirect == 0)) {
			break
		}
	}
	return lm, ln, ld
}

// validate bounds-checks a deserialized fused automaton so a corrupt
// bundle can never index out of range at verification time, and
// recomputes the quiet boundary the hot loop depends on (rejecting
// tables that are not quiet-first partitioned — the walk would silently
// skip accepts in the quiet region otherwise).
func (f *fusedDFA) validate() error {
	n := len(f.table)
	if n == 0 || n > 1<<16 {
		return fmt.Errorf("core: implausible fused automaton size %d", n)
	}
	if len(f.tags) != n {
		return fmt.Errorf("core: fused tag count %d does not match %d states", len(f.tags), n)
	}
	if f.start < 0 || f.start >= n {
		return fmt.Errorf("core: fused start state out of range")
	}
	for i, g := range f.tags {
		if g&^uint8(tagMask) != 0 {
			return fmt.Errorf("core: fused state %d has undefined tag bits %#x", i, g)
		}
	}
	// Recompute the class boundaries the hot loops depend on, rejecting
	// tables that are not class-partitioned — the walk would silently
	// misclassify states otherwise (a quiet-region accept state would
	// never be seen; an out-of-place eventful state would resolve as a
	// plain noCF instruction).
	prev := 0
	q, nc, rec := n, n, n
	for i, g := range f.tags {
		cl := stateClass(g)
		if cl < prev {
			return fmt.Errorf("core: fused states are not class-partitioned (class %d state %d after class %d)", cl, i, prev)
		}
		if cl >= 1 && q == n {
			q = i
		}
		if cl >= 2 && nc == n {
			nc = i
		}
		if cl == 3 && rec == n {
			rec = i
		}
		prev = cl
	}
	f.quiet, f.nc, f.rec = q, nc, rec
	for s := range f.table {
		for b := 0; b < 256; b++ {
			if int(f.table[s][b]) >= n {
				return fmt.Errorf("core: fused transition out of range")
			}
		}
	}
	f.computeFast()
	return nil
}

package core_test

import (
	"bytes"
	"testing"

	"rocksalt/internal/core"
)

// TestByteClassPartition pins the byte-class compaction invariants on
// the shipped automaton: the class map is a true partition of the
// 256-byte alphabet by closed-table column equality, and the compacted
// states×classes table it induces fits comfortably in L1.
func TestByteClassPartition(t *testing.T) {
	c := checker(t)
	states, ncls, _ := strideParams(t, c)
	if ncls < 1 || ncls > 256 {
		t.Fatalf("implausible byte-class count %d", ncls)
	}
	seen := make([]bool, ncls)
	for b := 0; b < 256; b++ {
		cl := c.ByteClassForTest(byte(b))
		if cl < 0 || cl >= ncls {
			t.Fatalf("byte %#x maps to class %d, outside [0,%d)", b, cl, ncls)
		}
		seen[cl] = true
	}
	for cl, ok := range seen {
		if !ok {
			t.Fatalf("class %d has no bytes: not a partition", cl)
		}
	}
	// Same class <=> identical closed-table column.
	for b1 := 0; b1 < 256; b1++ {
		for b2 := b1 + 1; b2 < 256; b2++ {
			equal := true
			for s := 0; s < states; s++ {
				if c.ClosedStepForTest(s, byte(b1)) != c.ClosedStepForTest(s, byte(b2)) {
					equal = false
					break
				}
			}
			same := c.ByteClassForTest(byte(b1)) == c.ByteClassForTest(byte(b2))
			if same != equal {
				t.Fatalf("bytes %#x,%#x: same class %v but columns equal %v", b1, b2, same, equal)
			}
		}
	}
	if hot := states * ncls * 2; hot > 32<<10 {
		t.Fatalf("compacted table is %d bytes; it must fit a 32KiB L1", hot)
	}
	t.Logf("%d states, %d byte classes, compacted table %d bytes", states, ncls, states*ncls*2)
}

// TestStrideComposition is the defining equation of the two-stride
// tables, checked exhaustively: for every (state, b1, b2), the strided
// entry equals two composed restart-closed single steps, or is the
// eventful sentinel exactly when either step leaves the inline bands.
func TestStrideComposition(t *testing.T) {
	c := checker(t)
	states, _, npcls := strideParams(t, c)
	rec := c.RecBoundaryForTest()
	if npcls < 1 || npcls > 4096 {
		t.Fatalf("implausible pair-class count %d", npcls)
	}
	for s := 0; s < states; s++ {
		for p := 0; p < 1<<16; p++ {
			b1, b2 := byte(p), byte(p>>8)
			w1 := c.ClosedStepForTest(s, b1)
			w2 := 0
			inline := w1 < rec
			if inline {
				w2 = c.ClosedStepForTest(w1, b2)
				inline = w2 < rec
			}
			s1, s2, ok := c.StrideStepForTest(s, b1, b2)
			if ok != inline {
				t.Fatalf("state %d pair %02x %02x: stride valid=%v, composed inline=%v", s, b1, b2, ok, inline)
			}
			if ok && (s1 != w1 || s2 != w2) {
				t.Fatalf("state %d pair %02x %02x: stride stores (%d,%d), composed steps give (%d,%d)",
					s, b1, b2, s1, s2, w1, w2)
			}
		}
	}
	t.Logf("%d states x 65536 pairs verified against composed closed steps (%d pair classes)", states, npcls)
}

func strideParams(t *testing.T, c *core.Checker) (states, ncls, npcls int) {
	t.Helper()
	if err := c.EnsureStrideForTest(); err != nil {
		t.Fatalf("stride tables unavailable for the shipped automaton: %v", err)
	}
	return c.StrideParamsForTest()
}

// TestStrideSectionCorruptionRejected flips bytes inside the RSLT3
// stride section specifically: every flip must be caught (the section
// CRC plus the structural and semantic cross-checks), never silently
// accepted into a checker with different tables.
func TestStrideSectionCorruptionRejected(t *testing.T) {
	set, err := core.BuildDFAs()
	if err != nil {
		t.Fatal(err)
	}
	var v1, v2, v3 bytes.Buffer
	if err := set.WriteTables(&v1); err != nil {
		t.Fatal(err)
	}
	if err := set.WriteTablesV2(&v2); err != nil {
		t.Fatal(err)
	}
	if err := set.WriteTablesV3(&v3); err != nil {
		t.Fatal(err)
	}
	// v2 = magic + fused section + v1 body; v3 = magic + fused section +
	// stride section + v1 body. The shared pieces locate the stride
	// section without duplicating the serializer's layout here.
	v1body := v1.Len() - 6
	strideStart := v2.Len() - v1body
	strideEnd := strideStart + (v3.Len() - v2.Len())
	if strideEnd <= strideStart || strideEnd > v3.Len() {
		t.Fatalf("bad stride section bounds [%d,%d) of %d", strideStart, strideEnd, v3.Len())
	}
	good := v3.Bytes()
	if _, err := core.NewCheckerFromTables(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine v3 bundle rejected: %v", err)
	}
	offsets := []int{
		strideStart,                               // ncls header
		strideStart + 100,                         // cls map
		strideStart + 400,                         // compact table
		(strideStart + strideEnd) / 2,             // pcls / dense interior
		strideEnd - 5,                             // section CRC itself
		strideStart + (strideEnd-strideStart)/4*3, // dense interior
	}
	for _, off := range offsets {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x01
		if _, err := core.NewCheckerFromTables(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flip at stride-section offset %d (section [%d,%d)) was accepted", off, strideStart, strideEnd)
		}
	}
}

package core_test

import (
	"reflect"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
)

// FuzzVerifyParallelEquiv asserts the engine's defining property on
// arbitrary byte strings: the parallel verdict, the canonical first-
// violation offset, and in fact the whole violation list are identical
// to the sequential run's. Seeds come from the compliant-image
// generator (including a multi-shard image) and the unsafe corpus. Run
// longer with
//
//	go test -fuzz FuzzVerifyParallelEquiv ./internal/core
func FuzzVerifyParallelEquiv(f *testing.F) {
	gen := nacl.NewGenerator(31)
	for _, n := range []int{5, 60, 6000} {
		img, err := gen.Random(n)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
	}
	for _, img := range nacl.UnsafeCorpus() {
		f.Add(img)
	}
	f.Add([]byte{0x83, 0xe0, 0xe0, 0xff, 0xe0}) // masked pair, short bundle
	f.Add([]byte{0xeb, 0x03, 0xb8, 0, 0, 0, 0}) // jump into an instruction

	c, err := core.NewChecker()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, img []byte) {
		if len(img) > 1<<20 {
			t.Skip()
		}
		seq := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
		for _, w := range []int{2, 4, 0} {
			par := c.VerifyWith(img, core.VerifyOptions{Workers: w})
			if par.Safe != seq.Safe {
				t.Fatalf("workers=%d: verdict %v, sequential %v on % x", w, par.Safe, seq.Safe, img)
			}
			if !reflect.DeepEqual(par.Violations, seq.Violations) || par.Total != seq.Total {
				t.Fatalf("workers=%d: violations diverged on % x\nseq: %+v\npar: %+v",
					w, img, seq.Violations, par.Violations)
			}
		}
	})
}

// FuzzFusedEquiv holds the fused product automaton to the reference
// three-DFA engine on arbitrary byte strings: same verdict, identical
// violation lists (offset, kind, detail, window — byte for byte), same
// uncapped total, with and without the AlignedCalls extension. This is
// the executable statement that the fusion is a pure performance
// transformation. Run longer with
//
//	go test -fuzz FuzzFusedEquiv ./internal/core
func FuzzFusedEquiv(f *testing.F) {
	gen := nacl.NewGenerator(47)
	for _, n := range []int{5, 60, 6000} {
		img, err := gen.Random(n)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
	}
	for _, img := range nacl.UnsafeCorpus() {
		f.Add(img)
	}
	f.Add([]byte{0x83, 0xe0, 0xe0, 0xff, 0xe0}) // masked pair, short bundle
	f.Add([]byte{0xeb, 0x03, 0xb8, 0, 0, 0, 0}) // jump into an instruction
	f.Add([]byte{0xe8, 0, 0, 0, 0})             // call (AlignedCalls-sensitive)

	plain, err := core.NewChecker()
	if err != nil {
		f.Fatal(err)
	}
	aligned, err := core.NewChecker()
	if err != nil {
		f.Fatal(err)
	}
	aligned.AlignedCalls = true

	f.Fuzz(func(t *testing.T, img []byte) {
		if len(img) > 1<<20 {
			t.Skip()
		}
		for _, c := range []*core.Checker{plain, aligned} {
			ref := c.VerifyWith(img, core.VerifyOptions{Workers: 1, Engine: core.EngineReference})
			fus := c.VerifyWith(img, core.VerifyOptions{Workers: 1, Engine: core.EngineFused})
			if fus.Safe != ref.Safe {
				t.Fatalf("alignedCalls=%v: fused verdict %v, reference %v on % x",
					c.AlignedCalls, fus.Safe, ref.Safe, img)
			}
			if !reflect.DeepEqual(fus.Violations, ref.Violations) || fus.Total != ref.Total {
				t.Fatalf("alignedCalls=%v: reports diverged on % x\nref: %+v\nfus: %+v",
					c.AlignedCalls, img, ref.Violations, fus.Violations)
			}
			// The engine-invariant Stats subset (bytes, bundles,
			// instruction boundaries, per-kind census) must match too:
			// the fused engine may take a different route through the
			// bytes, but it must conclude exactly the same facts.
			if fs, rs := fus.Stats.EngineInvariant(), ref.Stats.EngineInvariant(); fs != rs {
				t.Fatalf("alignedCalls=%v: stats diverged on % x\nref: %+v\nfus: %+v",
					c.AlignedCalls, img, rs, fs)
			}
		}
	})
}

// FuzzByteClassEquiv holds the byte-class compacted scalar walk, the
// two-stride superstate engine and the SWAR multi-byte stepper to the
// reference three-DFA engine (and, transitively, to the default fused
// lane engine) on arbitrary byte strings: same verdict, byte-identical
// violation lists, same uncapped total, same engine-invariant Stats,
// with and without AlignedCalls. This is the executable statement that
// the compaction, the stride composition and the SWAR stepping (with
// its density backoff and dispatcher re-parses) are pure performance
// transformations. Run longer with
//
//	go test -fuzz FuzzByteClassEquiv ./internal/core
func FuzzByteClassEquiv(f *testing.F) {
	gen := nacl.NewGenerator(53)
	for _, n := range []int{5, 60, 6000} {
		img, err := gen.Random(n)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
	}
	for _, img := range nacl.UnsafeCorpus() {
		f.Add(img)
	}
	f.Add([]byte{0x83, 0xe0, 0xe0, 0xff, 0xe0}) // masked pair, short bundle
	f.Add([]byte{0xeb, 0x03, 0xb8, 0, 0, 0, 0}) // jump into an instruction
	f.Add([]byte{0xe8, 0, 0, 0, 0})             // call (AlignedCalls-sensitive)
	f.Add([]byte{0x90})                         // odd length: stride tail byte

	plain, err := core.NewChecker()
	if err != nil {
		f.Fatal(err)
	}
	aligned, err := core.NewChecker()
	if err != nil {
		f.Fatal(err)
	}
	aligned.AlignedCalls = true

	engines := []struct {
		name string
		e    core.EngineKind
	}{
		{"fused", core.EngineFused},
		{"fused-scalar", core.EngineFusedScalar},
		{"strided", core.EngineStrided},
		{"swar", core.EngineSWAR},
	}
	f.Fuzz(func(t *testing.T, img []byte) {
		if len(img) > 1<<20 {
			t.Skip()
		}
		for _, c := range []*core.Checker{plain, aligned} {
			ref := c.VerifyWith(img, core.VerifyOptions{Workers: 1, Engine: core.EngineReference})
			for _, eng := range engines {
				got := c.VerifyWith(img, core.VerifyOptions{Workers: 1, Engine: eng.e})
				if got.Safe != ref.Safe {
					t.Fatalf("alignedCalls=%v %s: verdict %v, reference %v on % x",
						c.AlignedCalls, eng.name, got.Safe, ref.Safe, img)
				}
				if !reflect.DeepEqual(got.Violations, ref.Violations) || got.Total != ref.Total {
					t.Fatalf("alignedCalls=%v %s: reports diverged on % x\nref: %+v\ngot: %+v",
						c.AlignedCalls, eng.name, img, ref.Violations, got.Violations)
				}
				if gs, rs := got.Stats.EngineInvariant(), ref.Stats.EngineInvariant(); gs != rs {
					t.Fatalf("alignedCalls=%v %s: stats diverged on % x\nref: %+v\ngot: %+v",
						c.AlignedCalls, eng.name, img, rs, gs)
				}
			}
		}
	})
}

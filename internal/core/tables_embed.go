package core

import (
	"bytes"
	_ "embed"
	"sync"
)

// The pregenerated v3 table bundle, regenerated with
//
//	go run ./cmd/dfagen -o internal/core/rocksalt_tables_v3.bin
//
// whenever the policy grammars change. CI's regeneration guard (and
// TestEmbeddedBundleFresh) byte-compare a fresh generation against this
// file, so a stale bundle fails loudly instead of silently diverging
// from the grammars.
//
//go:embed rocksalt_tables_v3.bin
var embeddedTables []byte

// EmbeddedTableBytes returns (a copy of) the embedded v3 bundle — the
// regeneration guard and the benchmark suite read it to measure and
// cross-check the table-load path.
func EmbeddedTableBytes() []byte {
	return append([]byte(nil), embeddedTables...)
}

var (
	embOnce    sync.Once
	embChecker *Checker
	embErr     error
)

// newCheckerFromEmbedded parses the embedded bundle once and hands out
// fresh Checker values sharing the immutable tables, so every
// NewChecker call after the first costs one small allocation.
func newCheckerFromEmbedded() (*Checker, error) {
	embOnce.Do(func() {
		embChecker, embErr = NewCheckerFromTables(bytes.NewReader(embeddedTables))
	})
	if embErr != nil {
		return nil, embErr
	}
	return &Checker{
		masked: embChecker.masked,
		noCF:   embChecker.noCF,
		direct: embChecker.direct,
		fused:  embChecker.fused,
		params: embChecker.params,
		bundle: embChecker.bundle,
	}, nil
}

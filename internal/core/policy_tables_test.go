package core_test

import (
	"bytes"
	"strings"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/policy"
	"rocksalt/internal/vcache"
)

// compiledChecker compiles a spec and wraps it in a checker, failing
// the test on any error.
func compiledChecker(t *testing.T, spec policy.Spec) (*core.Checker, *policy.Compiled) {
	t.Helper()
	com, err := policy.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCheckerFromPolicy(com)
	if err != nil {
		t.Fatal(err)
	}
	return c, com
}

// policyImage generates a compliant image for the given compiled
// policy.
func policyImage(t *testing.T, com *policy.Compiled, seed int64, insns int) []byte {
	t.Helper()
	prof, err := nacl.ProfileForSpec(com.Spec)
	if err != nil {
		t.Fatal(err)
	}
	img, err := nacl.NewGeneratorFor(seed, prof, com.SafeGrammar).Random(insns)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestRuntimeDefaultMatchesEmbedded is the refactor's keystone: the
// runtime policy compiler, fed the default NaCl spec, must reproduce
// the embedded table bundle byte for byte. This holds the new
// internal/policy pipeline identical to the offline dfagen path the
// bundle was generated with.
func TestRuntimeDefaultMatchesEmbedded(t *testing.T) {
	com, err := policy.CompileDefault()
	if err != nil {
		t.Fatal(err)
	}
	set := &core.DFASet{
		MaskedJump:    com.MaskedJump,
		NoControlFlow: com.NoControlFlow,
		DirectJump:    com.DirectJump,
	}
	var buf bytes.Buffer
	if err := set.WriteTablesV3(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), core.EmbeddedTableBytes()) {
		t.Fatal("runtime-compiled default policy diverges from the embedded bundle; the policy package and the embedded tables are out of sync")
	}
}

// TestPolicyInfo pins the engine parameters each construction path
// reports.
func TestPolicyInfo(t *testing.T) {
	def, err := core.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	if info := def.PolicyInfo(); info.Name != "nacl-32" || info.BundleSize != 32 || info.MaskLen != 3 || info.GuardCutoff != 0 {
		t.Fatalf("default PolicyInfo = %+v", info)
	}
	reins, _ := compiledChecker(t, policy.REINS())
	if info := reins.PolicyInfo(); info.Name != "reins-16" || info.BundleSize != 16 || info.MaskLen != 6 || info.GuardCutoff != 1<<16 {
		t.Fatalf("REINS PolicyInfo = %+v", info)
	}
}

// writeV4 serializes a compiled policy as a v4 bundle.
func writeV4(t *testing.T, com *policy.Compiled) []byte {
	t.Helper()
	set := &core.DFASet{
		MaskedJump:    com.MaskedJump,
		NoControlFlow: com.NoControlFlow,
		DirectJump:    com.DirectJump,
	}
	info := core.PolicyInfo{
		Name:        com.Spec.Name,
		BundleSize:  com.Spec.BundleSize,
		MaskLen:     com.Spec.MaskLen(),
		GuardCutoff: com.Spec.GuardCutoff,
	}
	var buf bytes.Buffer
	if err := set.WriteTablesV4(&buf, info, com.Spec.AlignedCalls); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTableRoundTripV4 holds a v4-loaded checker identical to the
// runtime-compiled one it was serialized from: same reported policy
// parameters, same verdicts over compliant images, mutants and the
// unsafe corpus.
func TestTableRoundTripV4(t *testing.T) {
	for _, spec := range []policy.Spec{policy.NaCl16(), policy.REINS()} {
		fresh, com := compiledChecker(t, spec)
		loaded, err := core.NewCheckerFromTables(bytes.NewReader(writeV4(t, com)))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if loaded.PolicyInfo() != fresh.PolicyInfo() {
			t.Fatalf("%s: loaded PolicyInfo %+v, fresh %+v", spec.Name, loaded.PolicyInfo(), fresh.PolicyInfo())
		}
		img := policyImage(t, com, 91, 400)
		if !fresh.Verify(img) || !loaded.Verify(img) {
			t.Fatalf("%s: compliant image rejected (fresh %v, loaded %v)", spec.Name, fresh.Verify(img), loaded.Verify(img))
		}
		mut := append([]byte(nil), img...)
		mut[17] ^= 0xff
		if fresh.Verify(mut) != loaded.Verify(mut) {
			t.Fatalf("%s: fresh and loaded checkers disagree on a mutant", spec.Name)
		}
		for name, bad := range nacl.UnsafeCorpus() {
			if fresh.Verify(bad) != loaded.Verify(bad) {
				t.Fatalf("%s: fresh and loaded checkers disagree on unsafe %s", spec.Name, name)
			}
		}
	}
}

// TestReadTablesV4 exercises the set-only reader on a v4 bundle.
func TestReadTablesV4(t *testing.T) {
	com, err := policy.Compile(policy.NaCl16())
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.ReadTables(bytes.NewReader(writeV4(t, com)))
	if err != nil {
		t.Fatal(err)
	}
	if set.MaskedJump.NumStates() != com.MaskedJump.NumStates() ||
		set.NoControlFlow.NumStates() != com.NoControlFlow.NumStates() ||
		set.DirectJump.NumStates() != com.DirectJump.NumStates() {
		t.Fatal("v4 ReadTables returned a different component set")
	}
}

// TestV4ParamValidation: corrupted or implausible parameter blocks must
// fail closed at the loader with a message naming the problem.
func TestV4ParamValidation(t *testing.T) {
	com, err := policy.Compile(policy.NaCl16())
	if err != nil {
		t.Fatal(err)
	}
	good := writeV4(t, com)

	load := func(b []byte) error {
		_, err := core.NewCheckerFromTables(bytes.NewReader(b))
		return err
	}
	if err := load(good); err != nil {
		t.Fatalf("pristine v4 bundle rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(b []byte)
		want   string
	}{
		// Offsets: 6-byte magic, then u16 bundle, u8 maskLen, u8 flags,
		// u32 guard, u16 nameLen, name, u32 CRC.
		{"flipped-bundle", func(b []byte) { b[6] ^= 0x01 }, "checksum mismatch"},
		{"flipped-name", func(b []byte) { b[16] ^= 0x20 }, "checksum mismatch"},
		{"huge-name", func(b []byte) { b[14] = 0xff; b[15] = 0xff }, "name length"},
		{"truncated", func(b []byte) {}, ""}, // handled below
	}
	for _, tc := range cases[:3] {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), good...)
			tc.mutate(b)
			err := load(b)
			if err == nil {
				t.Fatal("corrupted parameter block loaded")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	t.Run("truncated", func(t *testing.T) {
		if err := load(good[:10]); err == nil {
			t.Fatal("truncated parameter block loaded")
		}
	})

	// Implausible-but-CRC-valid parameters: serialize them through the
	// writer itself (which does not validate) and require the reader to
	// refuse.
	set := &core.DFASet{
		MaskedJump:    com.MaskedJump,
		NoControlFlow: com.NoControlFlow,
		DirectJump:    com.DirectJump,
	}
	for _, tc := range []struct {
		name string
		info core.PolicyInfo
		want string
	}{
		{"bundle-not-pow2", core.PolicyInfo{Name: "x", BundleSize: 24, MaskLen: 3}, "bundle size"},
		{"bundle-too-big", core.PolicyInfo{Name: "x", BundleSize: 8192, MaskLen: 3}, "bundle size"},
		{"masklen-zero", core.PolicyInfo{Name: "x", BundleSize: 32, MaskLen: 0}, "mask length"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := set.WriteTablesV4(&buf, tc.info, false); err != nil {
				t.Fatal(err)
			}
			err := load(buf.Bytes())
			if err == nil {
				t.Fatal("implausible parameters loaded")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestPolicyCacheSeparation: checkers compiled from different specs
// must never share verdict-cache entries over the same image, even
// through one shared cache — the configuration key separates them. The
// CacheKey fast path inherits the separation because the keys
// themselves differ.
func TestPolicyCacheSeparation(t *testing.T) {
	nacl16, com16 := compiledChecker(t, policy.NaCl16())
	// A guard-only variant: same tables as nacl-16, different engine
	// parameters — the sharpest separation case.
	guarded := policy.NaCl16()
	guarded.Name = "nacl-16-guarded"
	guarded.GuardCutoff = 1 << 16
	gchk, _ := compiledChecker(t, guarded)

	img := policyImage(t, com16, 7, 4200) // > one 64KiB chunk
	cache := vcache.New(64 << 20)
	opts := core.VerifyOptions{Workers: 1, Cache: cache}

	rep16 := nacl16.VerifyWith(img, opts)
	if !rep16.Safe || rep16.Stats.CacheWholeHits != 0 {
		t.Fatalf("first nacl-16 run: %+v", rep16.Stats)
	}
	warm16 := nacl16.VerifyWith(img, opts)
	if warm16.Stats.CacheWholeHits != 1 {
		t.Fatal("second nacl-16 run missed its own cache entry")
	}

	repG := gchk.VerifyWith(img, opts)
	if repG.Stats.CacheWholeHits != 0 {
		t.Fatal("guarded-policy checker hit the nacl-16 whole-image entry")
	}
	if repG.Stats.CacheChunkHits != 0 {
		t.Fatal("guarded-policy checker hit nacl-16 chunk entries")
	}
	if repG.CacheKey == rep16.CacheKey {
		t.Fatal("different specs produced the same cache key; the CacheKey fast path would alias them")
	}

	// The keyed fast path still works within one policy.
	key, err := vcache.ParseKey(rep16.CacheKey)
	if err != nil {
		t.Fatal(err)
	}
	kopts := opts
	kopts.CacheKey = &key
	if nacl16.VerifyWith(img, kopts).Stats.CacheWholeHits != 1 {
		t.Fatal("keyed fast path missed within the same policy")
	}
}

package core_test

import (
	"reflect"
	"sync"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/policy"
)

// fuzzPolicies are the runtime-compiled checkers FuzzPolicyEquiv holds
// to engine equivalence, compiled once per process.
var fuzzPolicies = sync.OnceValues(func() ([]*core.Checker, error) {
	var out []*core.Checker
	for _, spec := range []policy.Spec{policy.NaCl(), policy.NaCl16(), policy.REINS()} {
		com, err := policy.Compile(spec)
		if err != nil {
			return nil, err
		}
		c, err := core.NewCheckerFromPolicy(com)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
})

// FuzzPolicyEquiv extends the engine-equivalence property to
// runtime-compiled policies: for each shipped policy (NaCl-32,
// NaCl-16, REINS-style), the reference three-DFA loop, the scalar
// fused walk, the strided walk and the SWAR stepper must produce
// byte-identical reports on arbitrary inputs — the 16-byte-bundle
// policies exercise the non-32 stride and SWAR region splits. This is
// the executable statement that the engine parameterization (bundle
// size, mask length, guard cutoff) is threaded identically through
// every engine. Run longer with
//
//	go test -fuzz FuzzPolicyEquiv ./internal/core
func FuzzPolicyEquiv(f *testing.F) {
	checkers, err := fuzzPolicies()
	if err != nil {
		f.Fatal(err)
	}
	// Seeds: each policy's own compliant images plus cross-policy pairs
	// and the unsafe corpus, so every checker sees both its accept and
	// reject paths.
	for i, spec := range []policy.Spec{policy.NaCl(), policy.NaCl16(), policy.REINS()} {
		com, err := policy.Compile(spec)
		if err != nil {
			f.Fatal(err)
		}
		prof, err := nacl.ProfileForSpec(com.Spec)
		if err != nil {
			f.Fatal(err)
		}
		img, err := nacl.NewGeneratorFor(int64(61+i), prof, com.SafeGrammar).Random(120)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
	}
	for _, img := range nacl.UnsafeCorpus() {
		f.Add(img)
	}
	f.Add([]byte{0x83, 0xe0, 0xe0, 0xff, 0xe0})                   // nacl-32 pair (wrong mask under nacl-16)
	f.Add([]byte{0x83, 0xe0, 0xf0, 0xff, 0xe0})                   // nacl-16 pair (wrong mask under nacl-32)
	f.Add([]byte{0x81, 0xe0, 0xf0, 0xff, 0xff, 0x0f, 0xff, 0xe0}) // reins pair
	f.Add([]byte{0xa4})                                           // movs: safe for nacl, banned by reins
	f.Add([]byte{0xe9, 0x00, 0x10, 0x00, 0x00})                   // direct jump out of image

	f.Fuzz(func(t *testing.T, img []byte) {
		if len(img) > 1<<20 {
			t.Skip()
		}
		for _, c := range checkers {
			name := c.PolicyInfo().Name
			ref := c.VerifyWith(img, core.VerifyOptions{Workers: 1, Engine: core.EngineReference})
			for _, eng := range []struct {
				name string
				e    core.EngineKind
			}{
				{"fused", core.EngineFused},
				{"fused-scalar", core.EngineFusedScalar},
				{"strided", core.EngineStrided},
				{"swar", core.EngineSWAR},
			} {
				got := c.VerifyWith(img, core.VerifyOptions{Workers: 1, Engine: eng.e})
				if got.Safe != ref.Safe {
					t.Fatalf("%s/%s: verdict %v, reference %v on % x", name, eng.name, got.Safe, ref.Safe, img)
				}
				if !reflect.DeepEqual(got.Violations, ref.Violations) || got.Total != ref.Total {
					t.Fatalf("%s/%s: reports diverged on % x\nref: %+v\ngot: %+v",
						name, eng.name, img, ref.Violations, got.Violations)
				}
				if gs, rs := got.Stats.EngineInvariant(), ref.Stats.EngineInvariant(); gs != rs {
					t.Fatalf("%s/%s: stats diverged on % x\nref: %+v\ngot: %+v", name, eng.name, img, rs, gs)
				}
			}
		}
	})
}

package core_test

import (
	"reflect"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/policy"
)

// TestAutoEngineSelection pins the engine picker's contract: the
// default EngineFused upgrades to the SWAR stepper when the stride
// tables are present and fit the budget, degrades to the single-stride
// lanes when the budget forbids them, and — the regression this test
// exists for — never resolves to the plain two-stride walk, which
// measures slower than the lanes it would replace. Forced kinds resolve
// to themselves (or degrade to lanes when their tables cannot be
// readied, which the shipped automaton never hits).
func TestAutoEngineSelection(t *testing.T) {
	c, err := core.NewChecker()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts core.VerifyOptions
		want string
	}{
		{"auto", core.VerifyOptions{}, "swar"},
		{"auto-default-budget", core.VerifyOptions{StrideBudgetBytes: 0}, "swar"},
		{"auto-negative-budget", core.VerifyOptions{StrideBudgetBytes: -1}, "lanes"},
		{"auto-tiny-budget", core.VerifyOptions{StrideBudgetBytes: 1024}, "lanes"},
		{"forced-strided", core.VerifyOptions{Engine: core.EngineStrided}, "strided"},
		{"forced-swar", core.VerifyOptions{Engine: core.EngineSWAR}, "swar"},
		{"forced-scalar", core.VerifyOptions{Engine: core.EngineFusedScalar}, "fused-scalar"},
		{"reference", core.VerifyOptions{Engine: core.EngineReference}, "reference"},
	}
	for _, tc := range cases {
		if got := c.ResolvedEngineForTest(tc.opts); got != tc.want {
			t.Errorf("%s: resolved to %q, want %q", tc.name, got, tc.want)
		}
	}
	// Auto must never pick the plain two-stride walk, whatever the
	// budget: it is strictly a forced cross-check engine.
	for _, b := range []int{0, 1, 4096, 1 << 20, 1 << 30} {
		if got := c.ResolvedEngineForTest(core.VerifyOptions{StrideBudgetBytes: b}); got == "strided" {
			t.Errorf("budget %d: auto resolved to the plain two-stride walk", b)
		}
	}

	// The census agrees with the resolution, and the density backoff is
	// visible in it: an event-sparse image parses its shards on the SWAR
	// stepper, while auto stays the resolved engine either way.
	nop := make([]byte, 64000)
	for i := range nop {
		nop[i] = 0x90
	}
	rep := c.VerifyWith(nop, core.VerifyOptions{Workers: 1})
	if !rep.Safe {
		t.Fatal("NOP image rejected")
	}
	if rep.Stats.Engine != "swar" {
		t.Errorf("NOP image: Stats.Engine = %q, want swar", rep.Stats.Engine)
	}
	if rep.Stats.SWARBatches == 0 {
		t.Error("NOP image: no shard retired on the SWAR stepper")
	}

	// A generated (jump-dense) image triggers the density backoff on its
	// shards: they re-parse on the lanes, and the verdict and report are
	// byte-identical to a lanes-pinned run.
	img, err := nacl.NewGenerator(5).Random(60000)
	if err != nil {
		t.Fatal(err)
	}
	auto := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
	lanes := c.VerifyWith(img, core.VerifyOptions{Workers: 1, StrideBudgetBytes: -1})
	if !auto.Safe || !lanes.Safe {
		t.Fatalf("generated image rejected: auto=%v lanes=%v", auto.Safe, lanes.Safe)
	}
	if auto.Stats.LaneBatches == 0 {
		t.Error("generated image: no shard parsed by the lane engine")
	}
	if !reflect.DeepEqual(auto.Violations, lanes.Violations) ||
		auto.Stats.EngineInvariant() != lanes.Stats.EngineInvariant() {
		t.Error("auto and lanes runs diverged on the generated image")
	}

	// Runtime-compiled policies build their tables eagerly
	// (NewCheckerFromPolicy), so auto rides the SWAR stepper from the
	// first image — including the 16-byte-bundle presets.
	for _, spec := range []policy.Spec{policy.NaCl16(), policy.REINS()} {
		com, err := policy.Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := core.NewCheckerFromPolicy(com)
		if err != nil {
			t.Fatal(err)
		}
		if got := pc.ResolvedEngineForTest(core.VerifyOptions{}); got != "swar" {
			t.Errorf("%s: auto resolved to %q, want swar", spec.Name, got)
		}
	}
}

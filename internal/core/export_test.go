package core

// SetShardHook installs (or, with nil, removes) the stage-1 shard hook.
// Tests use it to inject cancellation and panics into shard workers
// mid-run; see testShardHook.
func SetShardHook(f func(shard int)) { testShardHook = f }

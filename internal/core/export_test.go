package core

import "errors"

// SetShardHook installs (or, with nil, removes) the stage-1 shard hook.
// Tests use it to inject cancellation and panics into shard workers
// mid-run; see testShardHook.
func SetShardHook(f func(shard int)) { testShardHook = f }

// EnsureStrideForTest forces the two-stride tables ready (building and
// semantically verifying them if needed); tests use it to assert the
// construction succeeds for the shipped automaton.
func (c *Checker) EnsureStrideForTest() error {
	if c.fused == nil {
		return errors.New("checker has no fused automaton")
	}
	return c.fused.ensureStride()
}

// StrideParamsForTest exposes the stride table shape: the number of
// fused states, byte classes, and pair classes.
func (c *Checker) StrideParamsForTest() (states, ncls, npcls int) {
	f := c.fused
	return len(f.table), f.ncls, f.stride.npcls
}

// ByteClassForTest returns the byte-class id of b in the fused
// automaton's column partition.
func (c *Checker) ByteClassForTest(b byte) int { return int(c.fused.cls[b]) }

// ClosedStepForTest is one restart-closed transition (the single-stride
// semantics the two-stride tables must compose).
func (c *Checker) ClosedStepForTest(s int, b byte) int {
	return int(c.fused.closed[s][b])
}

// StrideStepForTest is one two-byte superstate transition as the lane
// engine performs it: pair-class lookup, then the padded walk table.
// ok reports whether the entry is a real state pair (not the eventful
// sentinel); s1 and s2 are the states after one and two bytes.
func (c *Checker) StrideStepForTest(s int, b1, b2 byte) (s1, s2 int, ok bool) {
	f := c.fused
	v := f.stride.walk[s<<strideShift|int(f.stride.pcls[int(b1)|int(b2)<<8])]
	if v >= 0x8000 {
		return 0, 0, false
	}
	return int(v & 0xFF), int(v >> 8), true
}

// RecBoundaryForTest is the first eventful state id: the lane engines'
// inline bands are [0, rec), and a two-stride entry is the sentinel
// exactly when either composed step leaves them.
func (c *Checker) RecBoundaryForTest() int { return c.fused.rec }

// ResolvedEngineForTest reports the engine-census name (Stats.Engine) a
// run with opts would resolve to, without running a verification.
func (c *Checker) ResolvedEngineForTest(opts VerifyOptions) string {
	return engineName(c.resolveEngine(opts))
}

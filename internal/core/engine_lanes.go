package core

import (
	"encoding/binary"
	"sync"
)

// This file is the two-pass region-interleaved fast path of the fused
// engine.
//
// Pass 1 splits a shard's whole-bundle range into laneCount contiguous
// regions and walks all of them at once, interleaving the restart-closed
// table steps byte by byte so four independent load chains cover each
// other's latency. Unlike a per-bundle engine, a lane never stops at a
// bundle end: the walk is continuous, and for every byte it consumes it
// stores the resulting state number into a per-shard state buffer
// (scratch.stbuf). Thanks to the four-band state numbering (see
// fusedDFA), the only states that interrupt the walk are the truly
// eventful ones [rec, n): masked-pair accepts, direct jumps, dead walks
// and the rare history-dependent continuations. Recording states —
// an accept noted mid-instruction while a masked pair is still live —
// are absorbed into the inline path entirely: the accept they would
// record is recovered later from the state bytes, by scanning the
// current instruction's stored states when an event finally needs the
// earliest noCF/direct accept positions.
//
// Pass 2 turns the state buffer into the instruction-boundary bitmap
// with branch-free SWAR: eight state bytes are range-checked against the
// class-1 band [quiet, nc) per 64-bit load (a class-1 state marks "an
// instruction ended after this byte"), the per-byte results are packed
// into one bit per byte, and the words are OR-ed into the shared valid
// bitmap. The same pass enforces the policy's structural demand
// posteriorly: every bundle boundary in the region (16-, 32- or 64-byte
// bundles, a mask over each word) must carry a boundary bit. If any
// does not — an instruction straddled a bundle
// boundary, or a lane's walk ended mid-instruction at its region seam —
// the parse reports failure, the dispatcher erases the shard's partial
// writes, and the canonical scalar loop re-parses the shard.
//
// Equivalence argument. When parseShardLanes returns true, its
// valid/pairJmp bits and collected jump targets are exactly those of the
// canonical scalar parse (parseShardFusedScalar) over the same range:
//
//   - Within a region the walk is the canonical continuous parse.
//     Class-1 states resolve instructions inline (their closed rows are
//     the start row, so flowing through one is identical to restarting),
//     and those are exactly the positions the scalar walk resolves via
//     its "pure noCF accept" rule. Recording states never resolve the
//     scalar walk either (masked is still live), so absorbing them loses
//     nothing; their accept positions are recovered verbatim from the
//     stored state tags when an event resolves by priority. Events apply
//     the same priority rule and the same policy checks as the scalar
//     path, or fail the lane parse.
//   - A resolution may rewind the walk; the bytes it re-walks cannot
//     contain a class-1 state (one would itself have resolved the
//     instruction earlier), so no stale boundary survives in the buffer
//     — rewritten states overwrite the doomed segment.
//   - Region seams are bundle boundaries. The posterior bundle check
//     passing at a seam means the previous lane's walk ended exactly at
//     an instruction boundary, so the next lane starting from the start
//     state is the canonical continuation — inductively the whole range
//     matches the single continuous parse.
//   - Any canonical violation in the range (illegal instruction,
//     misaligned call, bad jump target, bundle straddle) either fails a
//     lane event directly or leaves a bundle boundary bit unset, so it
//     can never be reported here: the scalar fallback diagnoses it, and
//     reports stay byte-identical, which FuzzFusedEquiv and the
//     fault-injection cross-check enforce.
//
// The optional two-stride variant consumes two bytes per dependent load
// through the pair-class tables (fused_stride.go); a superstate entry is
// the two state bytes the single-stride walk would have stored, so the
// state buffer — and therefore pass 2 and every recovery scan — is
// byte-identical between the variants.

// laneCount is the interleave width. Four keeps every lane's hot state
// in registers on amd64 while covering most of the L1 latency of the
// dependent table loads.
const laneCount = 4

// stbufPool recycles the pass-1 state buffers (one byte per shard byte).
// They are pooled separately from scratch because stage-1 workers parse
// shards of the same run concurrently and each in-flight shard needs its
// own buffer; the pool holds the steady state at one buffer per worker.
var stbufPool = sync.Pool{New: func() any {
	b := make([]byte, ShardBytes)
	return &b
}}

// laneCtx is the shared state of one lane parse, stack-allocated by the
// driver and threaded through the event method by pointer.
type laneCtx struct {
	code []byte
	buf  []byte // state byte per parsed byte; index = offset - base
	tags []uint8
	res  *shardResult
	sc   *scratch
	base int // region-range start (the shard start)
	// Class-1 band test on state bytes: b is class-1 iff b-qb < c1w
	// (unsigned byte arithmetic).
	qb, c1w uint8
	fstart  uint16
	failed  bool
}

// laneEvent handles a walk entering an eventful state s (>= rec) with
// the event byte at absolute offset o-1; rs is the lane's region start
// and re its end. It returns the state and absolute offset to continue
// from; on an irregularity it marks the parse failed and parks the lane
// at its region end. The logic mirrors fusedDFA.scan's out-of-line tail
// exactly, with the recorded accepts recovered from the state buffer:
// the instruction start is the last class-1 byte before the event (the
// region start if none), and the earliest noCF/direct accept positions
// are read off the stored states' tags.
func (c *Checker) laneEvent(lc *laneCtx, s uint16, o, rs, re int) (uint16, int) {
	buf, base, tags := lc.buf, lc.base, lc.tags
	saved := rs
	for j := o - 2; j >= rs; j-- {
		if buf[j-base]-lc.qb < lc.c1w {
			saved = j + 1
			break
		}
	}
	tag := tags[s]
	if tag&tagAccMasked != 0 {
		// Masked pair: top priority, resolves outright at o.
		lc.sc.pairJmp.Set(saved + c.params.maskLen)
		// The call form of the pair is FF /2 (0xD0|r in the modrm).
		if c.AlignedCalls && lc.code[o-1]>>3&7 == 2 && o%c.params.bundle != 0 {
			lc.failed = true
			return lc.fstart, re
		}
		buf[o-1-base] = lc.qb
		return lc.fstart, o
	}
	var ln, ld int
	for j := saved; j < o-1; j++ {
		g := tags[buf[j-base]]
		if g&tagAccNoCF != 0 && ln == 0 {
			ln = j + 1
		}
		if g&tagAccDirect != 0 && ld == 0 {
			ld = j + 1
		}
	}
	if tag&tagAccNoCF != 0 && ln == 0 {
		ln = o
	}
	if tag&tagAccDirect != 0 && ld == 0 {
		ld = o
	}
	if tag&tagLiveMasked == 0 &&
		(ln != 0 || tag&tagLiveNoCF == 0 && (ld != 0 || tag&tagLiveDirect == 0)) {
		pos := ln
		if pos == 0 {
			pos = ld
			if pos == 0 {
				// Dead walk: nothing matched. The scalar fallback reports
				// IllegalInstruction here.
				lc.failed = true
				return lc.fstart, re
			}
			if c.AlignedCalls && lc.code[saved] == 0xe8 && pos%c.params.bundle != 0 {
				lc.failed = true
				return lc.fstart, re
			}
			t, ok := jumpTarget(lc.code, saved, pos)
			if !ok {
				lc.failed = true
				return lc.fstart, re
			}
			tAbs := t + int64(lc.sc.base)
			if tAbs >= 0 && tAbs < int64(lc.sc.imgSize) {
				lc.res.targets = append(lc.res.targets, int32(t))
			} else if !c.targetAllowed(uint32(tAbs)) {
				lc.failed = true
				return lc.fstart, re
			}
		}
		// Resolution may rewind below o; the doomed bytes in [pos, o)
		// contain no class-1 state and are overwritten by the re-walk.
		buf[pos-1-base] = lc.qb
		return lc.fstart, pos
	}
	// History-dependent continuation (e.g. a direct accept with noCF
	// still live and nothing recorded): store the state itself so later
	// recovery scans see its accept bits, and keep walking.
	buf[o-1-base] = byte(s)
	return s, o
}

// parseShardLanes runs the interleaved two-pass parse over the
// whole-bundle region [start, fullEnd). It reports whether the region
// was fully regular; on false the caller must discard the shard's
// bitmap/result writes and re-parse with the scalar loop. With strided
// set it consumes byte pairs through the two-stride tables (the caller
// has run ensureStride); the stored states, and so the result, are
// byte-identical to the single-stride walk.
func (c *Checker) parseShardLanes(code []byte, start, fullEnd int, sc *scratch, res *shardResult, strided bool) bool {
	f := c.fused
	if f.flat == nil || f.nc == f.quiet {
		return false
	}
	flat := (*[flatStates * 256]uint16)(f.flat)
	rec := uint16(f.rec)
	L := fullEnd - start
	bp := stbufPool.Get().(*[]byte)
	defer stbufPool.Put(bp)
	buf := (*bp)[:L]

	lc := laneCtx{
		code:   code,
		buf:    buf,
		tags:   f.tags,
		res:    res,
		sc:     sc,
		base:   start,
		qb:     uint8(f.quiet),
		c1w:    uint8(f.nc - f.quiet),
		fstart: uint16(f.start),
	}

	// Contiguous bundle-aligned regions; the last lane takes the
	// remainder. The caller guarantees at least laneCount bundles.
	q := L / laneCount / c.params.bundle * c.params.bundle
	st0, st1, st2, st3 := start, start+q, start+2*q, start+3*q
	en0, en1, en2, en3 := st1, st2, st3, fullEnd
	li0, li1, li2, li3 := code[st0:en0], code[st1:en1], code[st2:en2], code[st3:en3]
	sb0 := buf[st0-start : en0-start]
	sb1 := buf[st1-start : en1-start]
	sb2 := buf[st2-start : en2-start]
	sb3 := buf[st3-start : en3-start]
	// Same-length reslices: the loop guard on sb then proves the li
	// index in bounds too.
	sb0, sb1, sb2, sb3 = sb0[:len(li0)], sb1[:len(li1)], sb2[:len(li2)], sb3[:len(li3)]
	var i0, i1, i2, i3 int
	s0, s1, s2, s3 := lc.fstart, lc.fstart, lc.fstart, lc.fstart

	if strided {
		sw := f.stride
		pcls := (*[1 << 16]uint16)(sw.pcls)
		walk := (*[flatStates << strideShift]uint16)(sw.walk)
		for i0 < len(sb0) || i1 < len(sb1) || i2 < len(sb2) || i3 < len(sb3) {
			if i0 < len(sb0) {
				if i0+2 <= len(sb0) {
					v := walk[int(s0&127)<<strideShift|int(pcls[binary.LittleEndian.Uint16(li0[i0:])])&(stridePairCap-1)]
					if v < 0x8000 {
						sb0[i0] = byte(v)
						sb0[i0+1] = byte(v >> 8)
						s0 = v >> 8
						i0 += 2
						goto lane1
					}
				}
				if s := flat[int(s0&127)<<8|int(li0[i0])]; s < rec {
					sb0[i0] = byte(s)
					s0 = s
					i0++
				} else {
					var o int
					s0, o = c.laneEvent(&lc, s, st0+i0+1, st0, en0)
					i0 = o - st0
				}
			}
		lane1:
			if i1 < len(sb1) {
				if i1+2 <= len(sb1) {
					v := walk[int(s1&127)<<strideShift|int(pcls[binary.LittleEndian.Uint16(li1[i1:])])&(stridePairCap-1)]
					if v < 0x8000 {
						sb1[i1] = byte(v)
						sb1[i1+1] = byte(v >> 8)
						s1 = v >> 8
						i1 += 2
						goto lane2
					}
				}
				if s := flat[int(s1&127)<<8|int(li1[i1])]; s < rec {
					sb1[i1] = byte(s)
					s1 = s
					i1++
				} else {
					var o int
					s1, o = c.laneEvent(&lc, s, st1+i1+1, st1, en1)
					i1 = o - st1
				}
			}
		lane2:
			if i2 < len(sb2) {
				if i2+2 <= len(sb2) {
					v := walk[int(s2&127)<<strideShift|int(pcls[binary.LittleEndian.Uint16(li2[i2:])])&(stridePairCap-1)]
					if v < 0x8000 {
						sb2[i2] = byte(v)
						sb2[i2+1] = byte(v >> 8)
						s2 = v >> 8
						i2 += 2
						goto lane3
					}
				}
				if s := flat[int(s2&127)<<8|int(li2[i2])]; s < rec {
					sb2[i2] = byte(s)
					s2 = s
					i2++
				} else {
					var o int
					s2, o = c.laneEvent(&lc, s, st2+i2+1, st2, en2)
					i2 = o - st2
				}
			}
		lane3:
			if i3 < len(sb3) {
				if i3+2 <= len(sb3) {
					v := walk[int(s3&127)<<strideShift|int(pcls[binary.LittleEndian.Uint16(li3[i3:])])&(stridePairCap-1)]
					if v < 0x8000 {
						sb3[i3] = byte(v)
						sb3[i3+1] = byte(v >> 8)
						s3 = v >> 8
						i3 += 2
						continue
					}
				}
				if s := flat[int(s3&127)<<8|int(li3[i3])]; s < rec {
					sb3[i3] = byte(s)
					s3 = s
					i3++
				} else {
					var o int
					s3, o = c.laneEvent(&lc, s, st3+i3+1, st3, en3)
					i3 = o - st3
				}
			}
		}
	} else {
		for i0 < len(sb0) || i1 < len(sb1) || i2 < len(sb2) || i3 < len(sb3) {
			if i0 < len(sb0) {
				if s := flat[int(s0&127)<<8|int(li0[i0])]; s < rec {
					sb0[i0] = byte(s)
					s0 = s
					i0++
				} else {
					var o int
					s0, o = c.laneEvent(&lc, s, st0+i0+1, st0, en0)
					i0 = o - st0
				}
			}
			if i1 < len(sb1) {
				if s := flat[int(s1&127)<<8|int(li1[i1])]; s < rec {
					sb1[i1] = byte(s)
					s1 = s
					i1++
				} else {
					var o int
					s1, o = c.laneEvent(&lc, s, st1+i1+1, st1, en1)
					i1 = o - st1
				}
			}
			if i2 < len(sb2) {
				if s := flat[int(s2&127)<<8|int(li2[i2])]; s < rec {
					sb2[i2] = byte(s)
					s2 = s
					i2++
				} else {
					var o int
					s2, o = c.laneEvent(&lc, s, st2+i2+1, st2, en2)
					i2 = o - st2
				}
			}
			if i3 < len(sb3) {
				if s := flat[int(s3&127)<<8|int(li3[i3])]; s < rec {
					sb3[i3] = byte(s)
					s3 = s
					i3++
				} else {
					var o int
					s3, o = c.laneEvent(&lc, s, st3+i3+1, st3, en3)
					i3 = o - st3
				}
			}
		}
	}
	if lc.failed {
		return false
	}
	return c.laneExtract(buf, sc, start, L)
}

// laneExtract is pass 2: SWAR-extract the boundary bits from the state
// buffer into the shared valid bitmap and enforce that every bundle
// boundary in [start, start+L] is an instruction boundary. Bit
// offset start+base+j+1 is set iff buf[base+j] is a class-1 state (the
// instruction ended after that byte); bit `start` is set unconditionally
// (the region start is an instruction start by construction). The bit
// for offset start+L belongs to the following parse and is only checked
// (the walk must have ended exactly at an instruction boundary), never
// written.
//
// The bundle-boundary demand is a per-word mask: with bundle size 2^k
// (16, 32 or 64 here; larger bundles never reach the lanes), boundary
// offsets within a 64-bit word sit at fixed bit positions 0, 2^k, ...,
// so one AND-compare per word checks them all at once.
func (c *Checker) laneExtract(buf []byte, sc *scratch, start, L int) bool {
	f := c.fused
	// Range test x in [quiet, nc) per byte lane: state bytes are < 128,
	// so x+128-quiet carries into the high bit iff x >= quiet and
	// x+128-nc iff x >= nc; no carry crosses byte lanes.
	const ones = 0x0101010101010101
	A := ones * uint64(128-f.quiet)
	B := ones * uint64(128-f.nc)
	var bmask uint64
	for b := 0; b < 64; b += c.params.bundle {
		bmask |= 1 << uint(b)
	}
	wvalid := sc.valid.Words()
	w := start / 64 // shard starts are 64-aligned
	carry := uint64(1)
	ok := true
	base := 0
	for ; base+64 <= L; base += 64 {
		var bits uint64
		for k := 0; k < 64; k += 8 {
			x := binary.LittleEndian.Uint64(buf[base+k:])
			m := ((x + A) &^ (x + B)) & 0x8080808080808080
			bits |= (m >> 7 * 0x0102040810204080 >> 56) << k
		}
		v := bits<<1 | carry
		wvalid[w] |= v
		carry = bits >> 63
		if v&bmask != bmask {
			ok = false
		}
		w++
	}
	if base < L {
		// Trailing partial word: the region length is a multiple of the
		// bundle size, not of 64, so a 16-byte-bundle region can end 16,
		// 32 or 48 bytes in (a 32-byte one only 32 — only the image's
		// last shard ends like this). rem is a multiple of 16, so the
		// 8-byte loads below never read past buf[L-1]. Bit rem of the
		// word is the offset start+L bit: checked via the final carry,
		// never written.
		rem := L - base
		var bits uint64
		for k := 0; k < rem; k += 8 {
			x := binary.LittleEndian.Uint64(buf[base+k:])
			m := ((x + A) &^ (x + B)) & 0x8080808080808080
			bits |= (m >> 7 * 0x0102040810204080 >> 56) << k
		}
		v := bits<<1 | carry
		inword := uint64(1)<<uint(rem) - 1
		wvalid[w] |= v & inword
		carry = bits >> uint(rem-1) & 1
		if v&(bmask&inword) != bmask&inword {
			ok = false
		}
	}
	// The walk must have tiled the region exactly: the last byte's state
	// is class-1, i.e. offset start+L is an instruction boundary.
	return ok && carry == 1
}

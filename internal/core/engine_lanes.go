package core

// This file is the bundle-interleaved fast path of the fused engine.
//
// The policy makes every 32-byte bundle of a *compliant* image an
// independent parse unit: each bundle boundary must be an instruction
// boundary, and no matched unit may cross one. The scalar fused walk
// cannot exploit that — each table step depends on the previous one and
// each instruction end is an unpredictable branch — so the CPU stalls
// on load latency and branch mispredictions. The lane parser attacks
// both: it runs four bundles at once, interleaving their walks byte by
// byte so four independent load chains cover each other's latency, and
// it walks the restart-closed table (fusedDFA.closed), in which the
// common instruction end — a state whose tag is exactly tagAccNoCF, a
// complete noCF instruction with every other component resolved — is
// not a stop at all: the walk flows straight into the next instruction,
// and the boundary position is recovered branchlessly from the state
// number (conditional moves, no mispredictable jump). Only masked
// pairs, direct jumps, dead states and bundle completions take a real
// branch.
//
// Optimism is what keeps the lanes exactly equivalent to the scalar
// parse. A lane validates every instruction with the same priority rule
// and the same policy checks the scalar path applies, plus one stronger
// structural demand: instructions must resolve inside the lane's bundle
// and tile it exactly. The moment anything irregular appears — no
// match, a unit or an undecided walk reaching the bundle end, a
// misaligned call, a bad direct-jump target — the whole lane parse
// reports failure and the dispatcher erases its partial writes and
// re-parses the shard with the canonical scalar loop. So the lane phase
// either proves the region violation-free (in which case its
// valid/pairJmp bits are precisely the scalar ones and its collected
// jump targets are the same multiset — stage 2 sorts them), or it
// contributes nothing. Reports stay byte-identical either way, which is
// what FuzzFusedEquiv and the fault-injection cross-check enforce.

// laneCount is the interleave width. Four keeps every lane's hot state
// in registers on amd64 while covering most of the L1 latency of the
// dependent table loads.
const laneCount = 4

const (
	laneWalking = iota // all lanes stepping; the unrolled loop runs
	laneDrain          // a lane ran out of bundles; finish the rest one by one
	laneFailed         // irregularity found; caller must fall back to scalar
)

// flane is one lane's parse state. The driver keeps the hot subset
// (state, offset, bundle bounds, instruction start, valid-bit
// accumulator) in named locals for register allocation and syncs them
// here only around the rare method calls.
type flane struct {
	saved  int    // start of the instruction being walked
	recFor int    // instruction start the ln/ld records belong to
	bs, be int    // current bundle [bs, be)
	ln, ld int    // earliest noCF/direct accept lengths recorded mid-walk
	off    int    // walk offset (synced from the driver's local)
	acc    uint64 // valid bits of the current bundle (bit j = bs+j)
	st     uint16 // walk state (synced from the driver's local)
	done   bool
}

// laneCtx is the shared state of one lane parse, stack-allocated by the
// driver and threaded through the event methods by pointer.
type laneCtx struct {
	code    []byte
	tags    []uint8
	wvalid  []uint64
	res     *shardResult
	sc      *scratch
	size    int
	next    int // next unclaimed bundle start
	fullEnd int // end of the whole-bundle region
	fstart  uint16
	status  uint8
	lanes   [laneCount]flane
}

func laneFail(lc *laneCtx) (uint16, int) {
	lc.status = laneFailed
	return 0, 0
}

// laneClaim flushes lane i's bundle accumulator (bit 32, set by an
// instruction ending exactly at the bundle end, belongs to the next
// bundle and is dropped — its owner sets bit 0 on claim) and hands the
// lane the next unclaimed bundle, or marks it done when the region is
// exhausted.
func (c *Checker) laneClaim(lc *laneCtx, i int) (uint16, int) {
	l := &lc.lanes[i]
	lc.wvalid[uint(l.bs)/64] |= uint64(uint32(l.acc)) << (uint(l.bs) % 64)
	if lc.next >= lc.fullEnd {
		l.done = true
		if lc.status == laneWalking {
			lc.status = laneDrain
		}
		return 0, 0
	}
	bs := lc.next
	lc.next += BundleSize
	l.bs, l.be = bs, bs+BundleSize
	l.acc = 1
	l.saved = bs
	return lc.fstart, bs
}

// laneNext restarts the walk at pos, the start of the next instruction
// (the caller has validated that the previous one ends at or before the
// bundle end), completing the bundle when pos reaches its end. pos may
// rewind below the walk offset — a resolution from recorded accepts
// re-walks the tail bytes with a fresh state; the doomed segment it
// replaces can never have recorded boundary bits (a class-1 state in it
// would itself have resolved the instruction), so nothing stale is left
// behind.
func (c *Checker) laneNext(lc *laneCtx, i int, pos int) (uint16, int) {
	l := &lc.lanes[i]
	if pos == l.be {
		return c.laneClaim(lc, i)
	}
	l.saved = pos
	l.acc |= 1 << uint(pos-l.bs)
	return lc.fstart, pos
}

// laneMasked ends lane i's walk on a masked-pair accept of length n —
// the top-priority match, so it resolves the instruction outright.
func (c *Checker) laneMasked(lc *laneCtx, i int, n int) (uint16, int) {
	l := &lc.lanes[i]
	saved := l.saved
	pos := saved + n
	if pos > l.be {
		return laneFail(lc)
	}
	lc.sc.pairJmp.Set(saved + maskLen)
	// The call form of the pair is FF /2 (0xD0|r in the modrm).
	if c.AlignedCalls && lc.code[pos-1]>>3&7 == 2 && pos%BundleSize != 0 {
		return laneFail(lc)
	}
	return c.laneNext(lc, i, pos)
}

// laneResolve ends lane i's walk from the recorded accept lengths (no
// masked accept happened — that resolves immediately via laneMasked):
// a recorded noCF accept wins, else a recorded direct one, else the
// walk found nothing and the lane parse fails for the scalar fallback
// to diagnose. The policy checks mirror the scalar path exactly.
func (c *Checker) laneResolve(lc *laneCtx, i int) (uint16, int) {
	l := &lc.lanes[i]
	code := lc.code
	saved := l.saved
	var pos int
	switch {
	case l.ln != 0:
		pos = saved + l.ln
		if pos > l.be {
			return laneFail(lc)
		}
	case l.ld != 0:
		pos = saved + l.ld
		if pos > l.be {
			return laneFail(lc)
		}
		if c.AlignedCalls && code[saved] == 0xe8 && pos%BundleSize != 0 {
			return laneFail(lc)
		}
		t, ok := jumpTarget(code, saved, pos)
		if !ok {
			return laneFail(lc)
		}
		if t >= 0 && t < int64(lc.size) {
			lc.res.targets = append(lc.res.targets, int32(t))
		} else if !c.Entries[uint32(t)] {
			return laneFail(lc)
		}
	default:
		return laneFail(lc)
	}
	return c.laneNext(lc, i, pos)
}

// laneTag handles lane i entering a class-2 state s (anything the
// branchless inline cases do not cover) with the walk at off — the
// out-of-line tail of the scalar loop's stop logic (see fusedDFA.scan
// for the argument): record each component's earliest accept, resolve
// as soon as the priority decision is determined. A walk still
// undecided when it reaches the bundle end fails the lane parse: its
// instruction either crosses the boundary (a violation the scalar
// fallback will report) or resolves from a recorded accept that a
// longer match might still outrank — the lane cannot decide without
// walking out of its bundle, so it hands the shard back instead.
func (c *Checker) laneTag(lc *laneCtx, i int, s uint16, off int) (uint16, int) {
	l := &lc.lanes[i]
	if l.recFor != l.saved {
		l.recFor = l.saved
		l.ln, l.ld = 0, 0
	}
	tag := lc.tags[s]
	n := off - l.saved
	if tag&tagAccMasked != 0 {
		return c.laneMasked(lc, i, n)
	}
	if tag&tagAccNoCF != 0 && l.ln == 0 {
		l.ln = n
	}
	if tag&tagAccDirect != 0 && l.ld == 0 {
		l.ld = n
	}
	if tag&tagLiveMasked == 0 &&
		(l.ln != 0 || tag&tagLiveNoCF == 0 && (l.ld != 0 || tag&tagLiveDirect == 0)) {
		return c.laneResolve(lc, i)
	}
	if off >= l.be {
		return laneFail(lc)
	}
	return s, off
}

// parseShardLanes runs the four-lane interleaved parse over the
// whole-bundle region [start, fullEnd). It reports whether the region
// was fully regular; on false the caller must discard the shard's
// bitmap/result writes and re-parse with the scalar loop.
func (c *Checker) parseShardLanes(code []byte, start, fullEnd int, sc *scratch, res *shardResult) bool {
	f := c.fused
	closed := f.closed
	quiet := uint16(f.quiet)
	nc := uint16(f.nc)
	c1w := uint16(f.nc - f.quiet)

	lc := laneCtx{
		code:    code,
		tags:    f.tags,
		wvalid:  sc.valid.Words(),
		res:     res,
		sc:      sc,
		size:    len(code),
		next:    start,
		fullEnd: fullEnd,
		fstart:  uint16(f.start),
	}
	for i := range lc.lanes {
		lc.lanes[i].bs = start // first laneClaim flushes an empty acc here
	}
	var s0, s1, s2, s3 uint16
	var o0, o1, o2, o3 int
	s0, o0 = c.laneClaim(&lc, 0)
	s1, o1 = c.laneClaim(&lc, 1)
	s2, o2 = c.laneClaim(&lc, 2)
	s3, o3 = c.laneClaim(&lc, 3)
	bs0, be0, sv0, a0 := lc.lanes[0].bs, lc.lanes[0].be, lc.lanes[0].saved, lc.lanes[0].acc
	bs1, be1, sv1, a1 := lc.lanes[1].bs, lc.lanes[1].be, lc.lanes[1].saved, lc.lanes[1].acc
	bs2, be2, sv2, a2 := lc.lanes[2].bs, lc.lanes[2].be, lc.lanes[2].saved, lc.lanes[2].acc
	bs3, be3, sv3, a3 := lc.lanes[3].bs, lc.lanes[3].be, lc.lanes[3].saved, lc.lanes[3].acc

	// The unrolled interleave: one closed-table step per lane per round.
	// The quiet and class-1 cases are a single straight line — the
	// instruction-boundary bit and the new instruction start are derived
	// from `s` with conditional moves, no data-dependent branch — and a
	// walk never reads past its bundle end: an undecided walk reaching it
	// fails (m == 0 below) rather than crossing. Class-2 states and
	// bundle completions sync the lane's registers to its flane, run the
	// out-of-line methods, and reload (they may claim a new bundle or
	// rewind the walk). When any lane retires or fails the round
	// finishes and the loop exits; a just-retired or just-failed lane
	// parks on (0, bs) and is not stepped again because the round check
	// runs first.
	for lc.status == laneWalking {
		{
			s := closed[s0][code[o0]]
			if s < nc {
				o0++
				c1 := uint16(s-quiet) < c1w
				var m uint64
				if c1 {
					m = 1
					sv0 = o0
				}
				a0 |= m << (uint(o0) - uint(bs0))
				s0 = s
				if o0 == be0 {
					if !c1 {
						lc.status = laneFailed
					} else {
						lc.lanes[0].acc = a0
						s0, o0 = c.laneClaim(&lc, 0)
						bs0, be0, sv0, a0 = lc.lanes[0].bs, lc.lanes[0].be, lc.lanes[0].saved, lc.lanes[0].acc
					}
				}
			} else {
				l := &lc.lanes[0]
				l.saved, l.acc = sv0, a0
				s0, o0 = c.laneTag(&lc, 0, s, o0+1)
				bs0, be0, sv0, a0 = l.bs, l.be, l.saved, l.acc
			}
		}
		{
			s := closed[s1][code[o1]]
			if s < nc {
				o1++
				c1 := uint16(s-quiet) < c1w
				var m uint64
				if c1 {
					m = 1
					sv1 = o1
				}
				a1 |= m << (uint(o1) - uint(bs1))
				s1 = s
				if o1 == be1 {
					if !c1 {
						lc.status = laneFailed
					} else {
						lc.lanes[1].acc = a1
						s1, o1 = c.laneClaim(&lc, 1)
						bs1, be1, sv1, a1 = lc.lanes[1].bs, lc.lanes[1].be, lc.lanes[1].saved, lc.lanes[1].acc
					}
				}
			} else {
				l := &lc.lanes[1]
				l.saved, l.acc = sv1, a1
				s1, o1 = c.laneTag(&lc, 1, s, o1+1)
				bs1, be1, sv1, a1 = l.bs, l.be, l.saved, l.acc
			}
		}
		{
			s := closed[s2][code[o2]]
			if s < nc {
				o2++
				c1 := uint16(s-quiet) < c1w
				var m uint64
				if c1 {
					m = 1
					sv2 = o2
				}
				a2 |= m << (uint(o2) - uint(bs2))
				s2 = s
				if o2 == be2 {
					if !c1 {
						lc.status = laneFailed
					} else {
						lc.lanes[2].acc = a2
						s2, o2 = c.laneClaim(&lc, 2)
						bs2, be2, sv2, a2 = lc.lanes[2].bs, lc.lanes[2].be, lc.lanes[2].saved, lc.lanes[2].acc
					}
				}
			} else {
				l := &lc.lanes[2]
				l.saved, l.acc = sv2, a2
				s2, o2 = c.laneTag(&lc, 2, s, o2+1)
				bs2, be2, sv2, a2 = l.bs, l.be, l.saved, l.acc
			}
		}
		{
			s := closed[s3][code[o3]]
			if s < nc {
				o3++
				c1 := uint16(s-quiet) < c1w
				var m uint64
				if c1 {
					m = 1
					sv3 = o3
				}
				a3 |= m << (uint(o3) - uint(bs3))
				s3 = s
				if o3 == be3 {
					if !c1 {
						lc.status = laneFailed
					} else {
						lc.lanes[3].acc = a3
						s3, o3 = c.laneClaim(&lc, 3)
						bs3, be3, sv3, a3 = lc.lanes[3].bs, lc.lanes[3].be, lc.lanes[3].saved, lc.lanes[3].acc
					}
				}
			} else {
				l := &lc.lanes[3]
				l.saved, l.acc = sv3, a3
				s3, o3 = c.laneTag(&lc, 3, s, o3+1)
				bs3, be3, sv3, a3 = l.bs, l.be, l.saved, l.acc
			}
		}
	}
	if lc.status == laneFailed {
		return false
	}

	// Drain: bundles are exhausted, so each remaining lane just finishes
	// the one it holds, sequentially, with the same step logic.
	lc.lanes[0].st, lc.lanes[0].off, lc.lanes[0].saved, lc.lanes[0].acc = s0, o0, sv0, a0
	lc.lanes[1].st, lc.lanes[1].off, lc.lanes[1].saved, lc.lanes[1].acc = s1, o1, sv1, a1
	lc.lanes[2].st, lc.lanes[2].off, lc.lanes[2].saved, lc.lanes[2].acc = s2, o2, sv2, a2
	lc.lanes[3].st, lc.lanes[3].off, lc.lanes[3].saved, lc.lanes[3].acc = s3, o3, sv3, a3
	for i := 0; i < laneCount; i++ {
		l := &lc.lanes[i]
		for !l.done {
			if lc.status == laneFailed {
				return false
			}
			s := closed[l.st][code[l.off]]
			if s < nc {
				o := l.off + 1
				c1 := uint16(s-quiet) < c1w
				if c1 {
					l.saved = o
					l.acc |= 1 << (uint(o) - uint(l.bs))
				}
				l.st, l.off = s, o
				if o == l.be {
					if !c1 {
						return false
					}
					l.st, l.off = c.laneClaim(&lc, i)
				}
			} else {
				l.st, l.off = c.laneTag(&lc, i, s, l.off+1)
			}
		}
	}
	return lc.status != laneFailed
}

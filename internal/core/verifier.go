package core

import (
	"fmt"

	"rocksalt/internal/grammar"
)

// This file is the Go rendition of the paper's trusted checker: the
// verifier main routine of Figure 5 and the DFA match routine of
// Figure 6. Everything clever lives in the generated tables; the code
// below is deliberately a line-by-line transcription.

// Checker verifies flat code images against the NaCl sandbox policy.
type Checker struct {
	masked, noCF, direct *dfa
	// Entries is the set of permitted out-of-image direct-jump targets
	// (the NaCl runtime's trampoline entry points).
	Entries map[uint32]bool
	// AlignedCalls additionally requires every call (direct CALL and the
	// call half of a masked pair) to end exactly at a bundle boundary, so
	// that return addresses are always bundle-aligned — the rule
	// production NaCl uses to make its replacement for RET safe. Off by
	// default (the paper's five requirements do not include it).
	AlignedCalls bool
}

// NewChecker builds (or reuses) the policy DFAs and returns a checker.
func NewChecker() (*Checker, error) {
	dfas, err := BuildDFAs()
	if err != nil {
		return nil, err
	}
	return &Checker{
		masked: newDFA(dfas.MaskedJump),
		noCF:   newDFA(dfas.NoControlFlow),
		direct: newDFA(dfas.DirectJump),
	}, nil
}

// match is Figure 6: run the DFA over code starting at *pos; on reaching
// an accepting state advance *pos past the matched bytes and report
// success, on a rejecting state (or end of input) leave *pos unchanged.
func match(a *dfa, code []byte, pos *int) bool {
	state := uint16(a.start)
	off := 0
	table, status := a.table, a.status
	for *pos+off < len(code) {
		state = table[state][code[*pos+off]]
		off++
		st := status[state]
		if st == stReject {
			break
		}
		if st == stAccept {
			*pos += off
			return true
		}
	}
	return false
}

// dfa is the table form consumed by match; it mirrors the C struct of
// Figure 6, with the accept/reject arrays fused into one status byte per
// state.
type dfa struct {
	start  int
	status []uint8
	table  [][256]uint16
}

const (
	stNeutral = uint8(0)
	stAccept  = uint8(1)
	stReject  = uint8(2)
)

func newDFA(g *grammar.DFA) *dfa {
	status := make([]uint8, g.NumStates())
	for i := range status {
		switch {
		case g.Accepts[i]:
			status[i] = stAccept
		case g.Rejects[i]:
			status[i] = stReject
		}
	}
	return &dfa{start: g.Start, status: status, table: g.Table}
}

// Verify is Figure 5: returns true exactly when the image satisfies the
// aligned sandbox policy.
func (c *Checker) Verify(code []byte) bool {
	ok, _ := c.VerifyReport(code)
	return ok
}

// VerifyReport is Verify with a diagnostic for the first violation.
func (c *Checker) VerifyReport(code []byte) (bool, error) {
	_, _, err := c.analyze(code)
	return err == nil, err
}

// Analyze runs the verifier and additionally returns its instruction-
// boundary bitmap and the positions of the indirect jumps inside masked
// pairs. These arrays are the invariant the safety theorem (and its
// executable test) is stated over: during execution of an accepted image,
// the PC is always at a valid offset, or at a pairJmp offset reached by
// fall-through from its mask.
func (c *Checker) Analyze(code []byte) (valid, pairJmp []bool, ok bool) {
	valid, pairJmp, err := c.analyze(code)
	return valid, pairJmp, err == nil
}

// maskLen is the encoded size of the masking AND (0x83 modrm imm8).
const maskLen = 3

func (c *Checker) analyze(code []byte) (valid, pairJmp []bool, err error) {
	size := len(code)
	masked, noCF, direct := c.masked, c.noCF, c.direct

	valid = make([]bool, size)
	pairJmp = make([]bool, size)
	target := make([]bool, size)
	pos := 0
	for pos < size {
		valid[pos] = true
		saved := pos
		if match(masked, code, &pos) {
			pairJmp[saved+maskLen] = true
			// The call form of the pair is FF /2 (0xD0|r in the modrm).
			if c.AlignedCalls && code[pos-1]>>3&7 == 2 && pos%BundleSize != 0 {
				return nil, nil, fmt.Errorf("core: masked call ending at %#x leaves a misaligned return address", pos)
			}
			continue
		}
		if match(noCF, code, &pos) {
			continue
		}
		if match(direct, code, &pos) {
			if c.AlignedCalls && code[saved] == 0xe8 && pos%BundleSize != 0 {
				return nil, nil, fmt.Errorf("core: call ending at %#x leaves a misaligned return address", pos)
			}
			if c.extract(code, saved, pos, target) {
				continue
			}
			return nil, nil, fmt.Errorf("core: direct jump at offset %#x targets outside the image", saved)
		}
		return nil, nil, fmt.Errorf("core: illegal instruction sequence at offset %#x", saved)
	}
	for i := 0; i < size; i++ {
		if target[i] && !valid[i] {
			return nil, nil, fmt.Errorf("core: direct jump targets offset %#x, which is not an instruction boundary", i)
		}
		if i&(BundleSize-1) == 0 && !valid[i] {
			return nil, nil, fmt.Errorf("core: bundle boundary %#x is not an instruction boundary", i)
		}
	}
	return valid, pairJmp, nil
}

// extract decodes the direct jump occupying code[saved:pos], computes its
// destination, and records in-image targets in the target array. Targets
// outside the image are legal only when listed in Entries (the NaCl
// trampolines). It returns false on an illegal target — the analogue of
// Figure 5's `extract(...)` failing.
func (c *Checker) extract(code []byte, saved, pos int, target []bool) bool {
	var rel int32
	switch b := code[saved]; {
	case b == 0xeb || b>>4 == 0x7: // JMP rel8 / Jcc rel8
		rel = int32(int8(code[pos-1]))
	case b == 0xe8 || b == 0xe9: // CALL/JMP rel32
		rel = int32(le32(code[pos-4 : pos]))
	case b == 0x0f: // Jcc rel32
		rel = int32(le32(code[pos-4 : pos]))
	default:
		return false
	}
	t := int64(pos) + int64(rel)
	if t >= 0 && t < int64(len(code)) {
		target[t] = true
		return true
	}
	return c.Entries[uint32(t)]
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// DFAStats reports the state counts of the generated automata — the
// paper's evaluation point that the largest checker DFA has 61 states and
// needs no minimization.
func DFAStats() (map[string]int, error) {
	dfas, err := BuildDFAs()
	if err != nil {
		return nil, err
	}
	return map[string]int{
		"MaskedJump":    dfas.MaskedJump.NumStates(),
		"NoControlFlow": dfas.NoControlFlow.NumStates(),
		"DirectJump":    dfas.DirectJump.NumStates(),
	}, nil
}

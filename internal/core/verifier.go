package core

import (
	"rocksalt/internal/grammar"
	"rocksalt/internal/policy"
)

// This file is the Go rendition of the paper's trusted checker: the
// verifier main routine of Figure 5 and the DFA match routine of
// Figure 6. Everything clever lives in the generated tables; the code
// below is deliberately a line-by-line transcription. The fused product
// automaton (fused.go) is the performance path; the three-DFA match
// loop here is the reference semantics it is held to.

// Checker verifies flat code images against a compiled sandbox policy
// (the NaCl policy by default; see NewCheckerFromPolicy for others).
type Checker struct {
	masked, noCF, direct *dfa
	// fused is the product automaton the default engine walks; the
	// three component DFAs above remain the reference engine.
	fused *fusedDFA
	// params are the engine knobs of the compiled policy: bundle size,
	// mask-instruction length and guard cutoff. Every constructor sets
	// them (to naclParams unless a spec says otherwise).
	params policyParams
	// bundle names the table provenance: the bundle version for
	// checkers loaded from a serialized bundle ("RSLT1".."RSLT4"),
	// "compiled" for tables built at runtime from grammars or a policy
	// spec. Surfaced by TableBundle and the rocksalt_build_info gauge.
	bundle string
	// Entries is the set of permitted out-of-image direct-jump targets
	// (the NaCl runtime's trampoline entry points).
	Entries map[uint32]bool
	// AlignedCalls additionally requires every call (direct CALL and the
	// call half of a masked pair) to end exactly at a bundle boundary, so
	// that return addresses are always bundle-aligned — the rule
	// production NaCl uses to make its replacement for RET safe. Off by
	// default (the paper's five requirements do not include it).
	AlignedCalls bool
}

// policyParams are the non-table engine parameters of a compiled
// policy. They are part of the verdict-cache configuration key
// (cache.go) and of the RSLT4 bundle format (tables.go).
type policyParams struct {
	// name labels the policy in PolicyInfo; it has no engine effect.
	name string
	// bundle is the alignment quantum (a power of two dividing
	// ShardBytes).
	bundle int
	// maskLen is the encoded size of the masking AND; the jump half of
	// a masked pair starts maskLen bytes into the pair.
	maskLen int
	// guard, when nonzero, rejects out-of-image direct-jump targets
	// below it even when whitelisted in Entries.
	guard uint32
}

// naclParams are the default NaCl policy's engine parameters.
var naclParams = policyParams{name: "nacl-32", bundle: BundleSize, maskLen: maskLen}

// PolicyInfo describes the compiled policy a checker enforces.
type PolicyInfo struct {
	// Name is the policy's display name (from the spec; "nacl-32" for
	// the default).
	Name string
	// BundleSize is the alignment quantum in bytes.
	BundleSize int
	// MaskLen is the encoded size of the masking AND instruction.
	MaskLen int
	// GuardCutoff is the guard-region ceiling (0 = no guard region).
	GuardCutoff uint32
}

// PolicyInfo reports the compiled policy parameters this checker
// enforces.
func (c *Checker) PolicyInfo() PolicyInfo {
	return PolicyInfo{
		Name:        c.params.name,
		BundleSize:  c.params.bundle,
		MaskLen:     c.params.maskLen,
		GuardCutoff: c.params.guard,
	}
}

// TableBundle reports the checker's table provenance: the serialized
// bundle version it was loaded from ("RSLT1".."RSLT4") or "compiled"
// for tables built at runtime.
func (c *Checker) TableBundle() string { return c.bundle }

// Fingerprint returns the hex content key of the checker's full
// configuration — tables plus policy knobs, the same hash the verdict
// cache is keyed on — identifying the policy in build-info metrics and
// postmortem bundles. Empty for a checker without fused tables.
func (c *Checker) Fingerprint() string {
	if c.fused == nil {
		return ""
	}
	k := c.configKey()
	return k.String()
}

// NewChecker returns a checker backed by the pregenerated table bundle
// embedded in the binary (parsed once, behind a sync.Once). This is the
// paper's deployment story — tables generated offline, shipped beside
// the tiny trusted loop — and it makes construction a microsecond
// operation instead of the ~170 ms grammar compilation.
// NewCheckerFromGrammars recompiles from the grammars and is the
// cross-check path; the embedded-bundle regeneration test holds the two
// identical.
func NewChecker() (*Checker, error) {
	return newCheckerFromEmbedded()
}

// NewCheckerFromGrammars compiles the policy grammars to DFAs (memoized
// across calls), fuses them, and returns a checker. It is the slow,
// self-contained construction the embedded bundle is generated from.
func NewCheckerFromGrammars() (*Checker, error) {
	set, err := BuildDFAs()
	if err != nil {
		return nil, err
	}
	return newCheckerFromSet(set)
}

// newCheckerFromSet builds the runtime checker — component DFAs plus
// the fused product — from a compiled or deserialized DFA set, under
// the default NaCl engine parameters.
func newCheckerFromSet(set *DFASet) (*Checker, error) {
	return newCheckerFromSetParams(set, naclParams, false)
}

// newCheckerFromSetParams is newCheckerFromSet with explicit engine
// parameters (for non-default policies and RSLT4 bundles).
func newCheckerFromSetParams(set *DFASet, params policyParams, alignedCalls bool) (*Checker, error) {
	fused, err := fuseDFAs(set)
	if err != nil {
		return nil, err
	}
	return &Checker{
		masked:       newDFA(set.MaskedJump),
		noCF:         newDFA(set.NoControlFlow),
		direct:       newDFA(set.DirectJump),
		fused:        fused,
		params:       params,
		bundle:       "compiled",
		AlignedCalls: alignedCalls,
	}, nil
}

// NewCheckerFromPolicy builds a checker from a runtime-compiled policy:
// the compiled component DFAs are fused, compacted and strided through
// exactly the pipeline the embedded bundle was generated with, and the
// engine takes its bundle size, mask length and guard cutoff from the
// spec. The stride/SWAR tables are built eagerly here — a few
// milliseconds folded into the one-time compile cost — so runtime
// policies (16-byte bundles included) verify on the SWAR fast path
// from their first image, exactly like the embedded bundle whose
// tables ship precomputed. A table build failure is not an error: the
// checker simply stays on the single-stride lanes (swarAuto rejects
// what ensureStride could not ready). Compiling the default NaCl spec
// yields a checker byte-identical in behaviour (and in serialized
// tables) to NewChecker.
func NewCheckerFromPolicy(com *policy.Compiled) (*Checker, error) {
	set := &DFASet{
		MaskedJump:    com.MaskedJump,
		NoControlFlow: com.NoControlFlow,
		DirectJump:    com.DirectJump,
	}
	c, err := newCheckerFromSetParams(set, specParams(com.Spec), com.Spec.AlignedCalls)
	if err == nil && c.fused != nil {
		_ = c.fused.ensureStride()
	}
	return c, err
}

// specParams extracts the engine parameters from a normalized spec.
func specParams(s policy.Spec) policyParams {
	return policyParams{
		name:    s.Name,
		bundle:  s.BundleSize,
		maskLen: s.MaskLen(),
		guard:   s.GuardCutoff,
	}
}

// match is Figure 6: run the DFA over code starting at *pos; on reaching
// an accepting state advance *pos past the matched bytes and report
// success, on a rejecting state (or end of input) leave *pos unchanged.
func match(a *dfa, code []byte, pos *int) bool {
	state := uint16(a.start)
	off := 0
	table, status := a.table, a.status
	for *pos+off < len(code) {
		state = table[state][code[*pos+off]]
		off++
		st := status[state]
		if st == stReject {
			break
		}
		if st == stAccept {
			*pos += off
			return true
		}
	}
	return false
}

// dfa is the table form consumed by match; it mirrors the C struct of
// Figure 6, with the accept/reject arrays fused into one status byte per
// state.
type dfa struct {
	start  int
	status []uint8
	table  [][256]uint16
}

const (
	stNeutral = uint8(0)
	stAccept  = uint8(1)
	stReject  = uint8(2)
)

func newDFA(g *grammar.DFA) *dfa {
	status := make([]uint8, g.NumStates())
	for i := range status {
		switch {
		case g.Accepts[i]:
			status[i] = stAccept
		case g.Rejects[i]:
			status[i] = stReject
		}
	}
	return &dfa{start: g.Start, status: status, table: g.Table}
}

// Verify is Figure 5: returns true exactly when the image satisfies the
// aligned sandbox policy. It runs the staged engine sequentially on
// pooled scratch — steady state it performs no heap allocation; use
// VerifyWith to spread stage 1 over a worker pool or to get a Report.
func (c *Checker) Verify(code []byte) bool {
	return c.verifyLean(code)
}

// VerifyReport is Verify with a diagnostic for the first violation. The
// returned error, when non-nil, is a *Violation carrying the offset,
// kind and byte window of the canonical lowest-offset violation.
func (c *Checker) VerifyReport(code []byte) (bool, error) {
	rep := c.VerifyWith(code, VerifyOptions{Workers: 1})
	return rep.Safe, rep.Err()
}

// Analyze runs the verifier and additionally returns its instruction-
// boundary bitmap and the positions of the indirect jumps inside masked
// pairs. These arrays are the invariant the safety theorem (and its
// executable test) is stated over: during execution of an accepted image,
// the PC is always at a valid offset, or at a pairJmp offset reached by
// fall-through from its mask.
func (c *Checker) Analyze(code []byte) (valid, pairJmp []bool, ok bool) {
	valid, pairJmp, rep := c.AnalyzeWith(code, VerifyOptions{Workers: 1})
	return valid, pairJmp, rep.Safe
}

// maskLen is the encoded size of the masking AND (0x83 modrm imm8).
const maskLen = 3

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// DFAStats reports the state counts of the generated automata — the
// paper's evaluation point that the largest checker DFA has 61 states and
// needs no minimization.
func DFAStats() (map[string]int, error) {
	dfas, err := BuildDFAs()
	if err != nil {
		return nil, err
	}
	return map[string]int{
		"MaskedJump":    dfas.MaskedJump.NumStates(),
		"NoControlFlow": dfas.NoControlFlow.NumStates(),
		"DirectJump":    dfas.DirectJump.NumStates(),
	}, nil
}

// FusedStats reports the size of the minimized fused product automaton:
// its state count and the bytes of its transition table plus tags.
func FusedStats() (states, tableBytes int, err error) {
	dfas, err := BuildDFAs()
	if err != nil {
		return 0, 0, err
	}
	fused, err := fuseDFAs(dfas)
	if err != nil {
		return 0, 0, err
	}
	n := len(fused.table)
	return n, n*512 + n, nil
}

package core

import (
	"fmt"
	"strings"
	"time"

	"rocksalt/internal/telemetry"
)

// This file is the engine's measurement channel. Two layers, kept
// deliberately separate:
//
//   - Stats is the per-run record attached to every Report: counters
//     describing exactly what the staged engine did on this image.
//     They are populated from per-shard scratch flags merged at
//     reconciliation, so they are byte-identical for any worker count
//     and for both stage-1 engines where the quantity is
//     engine-invariant (the determinism tests pin this). Collection is
//     always on for the Report-producing entry points; the lean
//     boolean path (Verify) skips it entirely unless global telemetry
//     is enabled, which keeps the hot path's disabled cost at one
//     branch.
//
//   - The process-wide metrics below aggregate runs for scraping
//     (Prometheus text format, expvar). They are registered once at
//     init and bumped only after a run completes, from the already-
//     merged Stats — a dozen atomic adds per run, nothing per
//     instruction — so the enabled overhead stays in the noise.

// Stats is the per-run engine record. All fields except the wall times
// are deterministic: for a given image, engine, and checker they do
// not depend on the worker count or scheduling.
type Stats struct {
	// BytesScanned is the image size handed to the run.
	BytesScanned int64 `json:"bytes_scanned"`
	// Bundles is the number of 32-byte bundles (the last may be
	// partial) the image decomposes into.
	Bundles int64 `json:"bundles"`
	// Instructions is the number of instruction boundaries the parse
	// established — the population count of the merged valid bitmap.
	// For a safe image this is exactly the instruction count; for a
	// rejected one it counts the boundaries reached before each shard
	// stopped.
	Instructions int64 `json:"instructions"`
	// Shards is the stage-1 shard count.
	Shards int64 `json:"shards"`
	// Engine names the stage-1 stepper the run resolved to
	// ("lanes", "swar", "strided", "fused-scalar", "reference") — the
	// per-run face of the engine census. It describes how the bytes
	// were matched, not what was concluded, so EngineInvariant blanks
	// it alongside the parse-mode counters.
	Engine string `json:"engine,omitempty"`
	// LaneBatches counts shards whose whole-bundle region the 4-lane
	// interleaved parser proved regular (the fast path), with any of
	// its steppers.
	LaneBatches int64 `json:"lane_batches"`
	// SWARBatches is the subset of LaneBatches parsed by the SWAR
	// multi-byte stepper (engine_swar.go).
	SWARBatches int64 `json:"swar_batches"`
	// ScalarFallbacks counts shards parsed by a scalar loop without a
	// lane attempt: regions too small for the lanes, and every shard
	// under the reference engine.
	ScalarFallbacks int64 `json:"scalar_fallbacks"`
	// Restarts counts shards where the lane parse found an
	// irregularity, erased its optimistic writes, and the canonical
	// scalar loop re-parsed the shard from the start.
	Restarts int64 `json:"restarts"`
	// ContainedPanics counts stage-1 shard panics converted to
	// InternalFault violations (always 0 unless something is wrong).
	ContainedPanics int64 `json:"contained_panics"`
	// CacheWholeHits is 1 when the run was answered entirely from the
	// verdict cache (no byte was scanned), else 0. Cache fields are
	// populated only when VerifyOptions.Cache is set; they describe
	// cache state, not the image, so they sit outside the
	// engine-invariance contract (they are zero in uncached runs, which
	// is what the equivalence tests compare).
	CacheWholeHits int64 `json:"cache_whole_hits"`
	// CacheChunkHits / CacheChunkMisses count the cacheable 64KiB
	// chunks restored from, respectively missing from, the chunk cache.
	CacheChunkHits   int64 `json:"cache_chunk_hits"`
	CacheChunkMisses int64 `json:"cache_chunk_misses"`
	// CacheBytesSaved is how many image bytes stage 1 did not have to
	// parse thanks to cache hits (the whole image on a whole-image hit).
	CacheBytesSaved int64 `json:"cache_bytes_saved"`
	// DeltaChunksReparsed / DeltaChunksReplayed count, for a VerifyDelta
	// round, the cacheable 64KiB chunks re-parsed (dirty under the edit
	// set) versus replayed from the retained delta state; the
	// never-retained final chunk is counted under reparsed when present.
	// DeltaBytesReparsed is the total bytes stage 1 actually re-parsed
	// in the round. Like the cache fields, they describe delta state
	// rather than the image, so they sit outside the engine-invariance
	// contract and are zero for ordinary full runs.
	DeltaChunksReparsed int64 `json:"delta_chunks_reparsed"`
	DeltaChunksReplayed int64 `json:"delta_chunks_replayed"`
	DeltaBytesReparsed  int64 `json:"delta_bytes_reparsed"`
	// ViolationsByKind is the uncapped per-kind violation census —
	// unlike Report.Violations it is not truncated at
	// MaxReportViolations, so its sum equals Report.Total.
	ViolationsByKind [NumViolationKinds]int64 `json:"violations_by_kind"`
	// Stage1Wall, Stage2Wall, JumpsWall and Wall are wall-clock timings
	// for the shard parse, reconciliation, the jump-validation section
	// inside reconciliation, and the whole run. They are the one
	// nondeterministic part of Stats; Counters() zeroes them for
	// comparisons.
	Stage1Wall time.Duration `json:"stage1_wall_ns"`
	Stage2Wall time.Duration `json:"stage2_wall_ns"`
	JumpsWall  time.Duration `json:"jumps_wall_ns"`
	Wall       time.Duration `json:"wall_ns"`
}

// Counters returns a copy with the wall-clock fields zeroed: the
// deterministic subset, comparable with == across worker counts.
func (s Stats) Counters() Stats {
	s.Stage1Wall, s.Stage2Wall, s.JumpsWall, s.Wall = 0, 0, 0, 0
	return s
}

// EngineInvariant returns the subset that must also be identical
// between the fused and reference stage-1 engines: everything except
// the lane/scalar/restart split, which describes how the fused engine
// matched the bytes rather than what it concluded.
func (s Stats) EngineInvariant() Stats {
	s = s.Counters()
	s.LaneBatches, s.SWARBatches, s.ScalarFallbacks, s.Restarts = 0, 0, 0, 0
	s.Engine = ""
	return s
}

// String renders the stats as a compact human-readable block (the
// rocksalt -stats output).
func (s Stats) String() string {
	var b strings.Builder
	if s.Engine != "" {
		fmt.Fprintf(&b, "engine %s, ", s.Engine)
	}
	fmt.Fprintf(&b, "bytes %d, bundles %d, instructions %d, shards %d\n",
		s.BytesScanned, s.Bundles, s.Instructions, s.Shards)
	fmt.Fprintf(&b, "lane batches %d (swar %d), scalar fallbacks %d, restarts %d, contained panics %d\n",
		s.LaneBatches, s.SWARBatches, s.ScalarFallbacks, s.Restarts, s.ContainedPanics)
	if s.CacheWholeHits != 0 || s.CacheChunkHits != 0 || s.CacheChunkMisses != 0 {
		fmt.Fprintf(&b, "cache: whole hits %d, chunk hits %d, chunk misses %d, bytes saved %d (hit ratio %.0f%%)\n",
			s.CacheWholeHits, s.CacheChunkHits, s.CacheChunkMisses, s.CacheBytesSaved, 100*s.ChunkHitRatio())
	}
	if s.DeltaChunksReparsed != 0 || s.DeltaChunksReplayed != 0 {
		fmt.Fprintf(&b, "delta: chunks reparsed %d, replayed %d, bytes reparsed %d\n",
			s.DeltaChunksReparsed, s.DeltaChunksReplayed, s.DeltaBytesReparsed)
	}
	total := int64(0)
	for k, n := range s.ViolationsByKind {
		if n > 0 {
			fmt.Fprintf(&b, "violations[%s] %d\n", ViolationKind(k), n)
			total += n
		}
	}
	fmt.Fprintf(&b, "stage1 %v, stage2 %v (jumps %v), total %v", s.Stage1Wall, s.Stage2Wall, s.JumpsWall, s.Wall)
	return b.String()
}

// ChunkHitRatio is the fraction of chunk-grade reuse opportunities
// that were served from prior state: cache hits over hits+misses for a
// cached run, replayed over replayed+reparsed chunks for a delta round.
// It returns 0 when the run used neither layer.
func (s Stats) ChunkHitRatio() float64 {
	hits := s.CacheChunkHits + s.DeltaChunksReplayed
	total := hits + s.CacheChunkMisses + s.DeltaChunksReparsed
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// kindSlugs are the Prometheus label values for ViolationKind, index-
// aligned with kindNames.
var kindSlugs = [NumViolationKinds]string{
	"illegal_instruction",
	"target_out_of_image",
	"misaligned_call",
	"target_not_boundary",
	"bundle_straddle",
	"internal_fault",
}

// coreMetrics is the process-wide aggregate, registered once against
// the default telemetry registry.
var coreMetrics struct {
	runs            *telemetry.Counter
	interrupted     *telemetry.Counter
	rejected        *telemetry.Counter
	bytes           *telemetry.Counter
	instructions    *telemetry.Counter
	bundles         *telemetry.Counter
	shards          *telemetry.Counter
	laneBatches     *telemetry.Counter
	swarBatches     *telemetry.Counter
	scalarFallbacks *telemetry.Counter
	restarts        *telemetry.Counter
	containedPanics *telemetry.Counter
	cacheWholeHits  *telemetry.Counter
	cacheChunkHits  *telemetry.Counter
	cacheChunkMiss  *telemetry.Counter
	cacheBytesSaved *telemetry.Counter
	cacheServes     *telemetry.Counter
	deltaRounds     *telemetry.Counter
	deltaReparsed   *telemetry.Counter
	deltaReplayed   *telemetry.Counter
	deltaBytes      *telemetry.Counter
	byKind          [NumViolationKinds]*telemetry.Counter
	runNanos        *telemetry.Histogram
	// stageNanos are per-stage latency histograms, one labeled series
	// per pipeline stage; engineNanos are per-run latency histograms
	// keyed by the resolved engine census name (including "cache" for
	// whole-image serves).
	stage1Nanos    *telemetry.Histogram
	reconcileNanos *telemetry.Histogram
	jumpsNanos     *telemetry.Histogram
	engineNanos    map[string]*telemetry.Histogram
}

func init() {
	r := telemetry.Default()
	coreMetrics.runs = r.NewCounter("rocksalt_verify_runs_total", "verification runs completed (any verdict)")
	coreMetrics.interrupted = r.NewCounter("rocksalt_verify_interrupted_total", "runs stopped by context cancellation or deadline")
	coreMetrics.rejected = r.NewCounter("rocksalt_verify_rejected_total", "completed runs that rejected the image")
	coreMetrics.bytes = r.NewCounter("rocksalt_verify_bytes_total", "image bytes scanned by stage 1")
	coreMetrics.instructions = r.NewCounter("rocksalt_verify_instructions_total", "instruction boundaries established")
	coreMetrics.bundles = r.NewCounter("rocksalt_verify_bundles_total", "32-byte bundles processed")
	coreMetrics.shards = r.NewCounter("rocksalt_verify_shards_total", "stage-1 shards parsed")
	coreMetrics.laneBatches = r.NewCounter("rocksalt_verify_lane_batches_total", "shards proved regular by the 4-lane parser")
	coreMetrics.swarBatches = r.NewCounter("rocksalt_verify_swar_batches_total", "lane shards parsed by the SWAR multi-byte stepper")
	coreMetrics.scalarFallbacks = r.NewCounter("rocksalt_verify_scalar_fallbacks_total", "shards parsed scalar without a lane attempt")
	coreMetrics.restarts = r.NewCounter("rocksalt_verify_restarts_total", "lane parses erased and re-parsed scalar")
	coreMetrics.containedPanics = r.NewCounter("rocksalt_verify_contained_panics_total", "stage-1 shard panics contained as InternalFault")
	coreMetrics.cacheWholeHits = r.NewCounter("rocksalt_cache_whole_hits_total", "runs answered entirely from the verdict cache")
	coreMetrics.cacheChunkHits = r.NewCounter("rocksalt_cache_chunk_hits_total", "64KiB chunks restored from the verdict cache")
	coreMetrics.cacheChunkMiss = r.NewCounter("rocksalt_cache_chunk_misses_total", "cacheable chunks not found in the verdict cache")
	coreMetrics.cacheBytesSaved = r.NewCounter("rocksalt_cache_bytes_saved_total", "image bytes not re-parsed thanks to cache hits")
	coreMetrics.cacheServes = r.NewCounter("rocksalt_cache_serves_total", "verifies answered entirely from the whole-image verdict cache")
	coreMetrics.deltaRounds = r.NewCounter("rocksalt_delta_rounds_total", "VerifyDelta reconciliation rounds completed")
	coreMetrics.deltaReparsed = r.NewCounter("rocksalt_delta_chunks_reparsed_total", "chunks re-parsed by VerifyDelta rounds")
	coreMetrics.deltaReplayed = r.NewCounter("rocksalt_delta_chunks_replayed_total", "chunks replayed from retained delta state")
	coreMetrics.deltaBytes = r.NewCounter("rocksalt_delta_bytes_reparsed_total", "image bytes re-parsed by VerifyDelta rounds")
	for k := range coreMetrics.byKind {
		coreMetrics.byKind[k] = r.NewLabeledCounter("rocksalt_verify_violations_total",
			"policy violations found, by kind", "kind", kindSlugs[k])
	}
	coreMetrics.runNanos = r.NewHistogram("rocksalt_verify_duration_ns", "wall time per verification run")
	stageHelp := "wall time per verification run, by pipeline stage"
	coreMetrics.stage1Nanos = r.NewLabeledHistogram("rocksalt_stage_duration_ns", stageHelp, "stage", "stage1")
	coreMetrics.reconcileNanos = r.NewLabeledHistogram("rocksalt_stage_duration_ns", stageHelp, "stage", "reconcile")
	coreMetrics.jumpsNanos = r.NewLabeledHistogram("rocksalt_stage_duration_ns", stageHelp, "stage", "jumps")
	coreMetrics.engineNanos = map[string]*telemetry.Histogram{}
	for _, e := range []string{"lanes", "swar", "strided", "fused-scalar", "reference", "cache"} {
		coreMetrics.engineNanos[e] = r.NewLabeledHistogram("rocksalt_engine_duration_ns",
			"wall time per verification run, by resolved engine", "engine", e)
	}
}

// publishStats folds one completed (or interrupted) run into the
// process-wide metrics. Called once per run, after reconciliation;
// every add is gated on the telemetry enable bit, so a disabled
// process pays one branch here and nothing else.
func publishStats(st *Stats, interrupted, rejected bool) {
	if !telemetry.Enabled() {
		return
	}
	m := &coreMetrics
	m.runs.Add(1)
	if interrupted {
		m.interrupted.Add(1)
	}
	if rejected {
		m.rejected.Add(1)
	}
	m.bytes.Add(st.BytesScanned)
	m.instructions.Add(st.Instructions)
	m.bundles.Add(st.Bundles)
	m.shards.Add(st.Shards)
	m.laneBatches.Add(st.LaneBatches)
	m.swarBatches.Add(st.SWARBatches)
	m.scalarFallbacks.Add(st.ScalarFallbacks)
	m.restarts.Add(st.Restarts)
	for k, n := range st.ViolationsByKind {
		if n > 0 {
			m.byKind[k].Add(n)
		}
	}
	m.runNanos.Observe(int64(st.Wall))
	m.stage1Nanos.Observe(int64(st.Stage1Wall))
	m.reconcileNanos.Observe(int64(st.Stage2Wall))
	m.jumpsNanos.Observe(int64(st.JumpsWall))
	if h := m.engineNanos[st.Engine]; h != nil {
		h.Observe(int64(st.Wall))
	}
}

// publishDeltaStats folds one VerifyDelta round's reuse counters into
// the process-wide metrics.
func publishDeltaStats(st *Stats) {
	if !telemetry.Enabled() {
		return
	}
	m := &coreMetrics
	m.deltaRounds.Add(1)
	m.deltaReparsed.Add(st.DeltaChunksReparsed)
	m.deltaReplayed.Add(st.DeltaChunksReplayed)
	m.deltaBytes.Add(st.DeltaBytesReparsed)
}

// publishCacheStats folds a cached run's cache effectiveness into the
// process-wide metrics. Separate from publishStats because the
// whole-image hit path never reaches run()/reconcile — it publishes
// here and nowhere else.
func publishCacheStats(st *Stats) {
	if !telemetry.Enabled() {
		return
	}
	m := &coreMetrics
	if st.CacheWholeHits > 0 {
		m.cacheWholeHits.Add(st.CacheWholeHits)
		m.cacheServes.Add(1)
		if h := m.engineNanos["cache"]; h != nil {
			h.Observe(int64(st.Wall))
		}
	}
	if st.CacheChunkHits > 0 {
		m.cacheChunkHits.Add(st.CacheChunkHits)
	}
	if st.CacheChunkMisses > 0 {
		m.cacheChunkMiss.Add(st.CacheChunkMisses)
	}
	if st.CacheBytesSaved > 0 {
		m.cacheBytesSaved.Add(st.CacheBytesSaved)
	}
}

package core_test

import (
	"bytes"
	"strings"
	"testing"

	"rocksalt/internal/core"
)

// TestViolationKindStrings pins the String() of every violation kind:
// these are part of the CLI's diagnostic contract, so a reorder or an
// off-by-one in the name table must fail loudly.
func TestViolationKindStrings(t *testing.T) {
	want := map[core.ViolationKind]string{
		core.IllegalInstruction: "illegal instruction sequence",
		core.TargetOutOfImage:   "direct jump out of image",
		core.MisalignedCall:     "misaligned call return address",
		core.TargetNotBoundary:  "jump into instruction interior",
		core.BundleStraddle:     "bundle boundary inside instruction",
		core.InternalFault:      "internal fault in verifier",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", k, got, s)
		}
	}
	// Out-of-range kinds must not panic or alias a real name.
	if got := core.ViolationKind(99).String(); got != "ViolationKind(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

// TestOutcomeStrings does the same for run outcomes.
func TestOutcomeStrings(t *testing.T) {
	want := map[core.Outcome]string{
		core.OutcomeSafe:     "safe",
		core.OutcomeRejected: "rejected",
		core.OutcomeCanceled: "canceled",
		core.OutcomeDeadline: "deadline exceeded",
	}
	for o, s := range want {
		if got := o.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", o, got, s)
		}
	}
	if got := core.Outcome(42).String(); got != "Outcome(42)" {
		t.Errorf("unknown outcome String() = %q", got)
	}
}

// TestViolationWindowEdges drives the byte-window printer to the edges
// of the image: the window must clip at the end, exist at the start,
// and never slice negatively. The checker path is used (not the raw
// constructor) so the test pins real behavior.
func TestViolationWindowEdges(t *testing.T) {
	c := checker(t)

	// Violation at offset 0 of a tiny image: window is the whole image.
	tiny := []byte{0xc3} // ret, illegal
	rep := c.VerifyWith(tiny, core.VerifyOptions{Workers: 1})
	if rep.Safe {
		t.Fatal("ret accepted")
	}
	v := rep.First()
	if v.Offset != 0 || !bytes.Equal(v.Window, tiny) {
		t.Fatalf("tiny-image violation: offset %d window % x", v.Offset, v.Window)
	}

	// Violation at the very end: a bundle of nops with an illegal last
	// byte; the straddle/illegal offset sits one byte before the end, so
	// the window must clip to that single byte.
	img := bytes.Repeat([]byte{0x90}, 32)
	img[31] = 0xc3
	rep = c.VerifyWith(img, core.VerifyOptions{Workers: 1})
	if rep.Safe {
		t.Fatal("trailing ret accepted")
	}
	v = rep.First()
	if v.Offset != 31 {
		t.Fatalf("trailing violation at %d, want 31", v.Offset)
	}
	if len(v.Window) != 1 || v.Window[0] != 0xc3 {
		t.Fatalf("window at image end = % x, want c3", v.Window)
	}

	// Violation attributed to the end-of-image offset (a straddle
	// reported at a boundary == len(code)) carries an empty window and a
	// printable message.
	short := bytes.Repeat([]byte{0x90}, 30)
	short[29] = 0xb8 // 5-byte mov truncated by the image end
	rep = c.VerifyWith(short, core.VerifyOptions{Workers: 1})
	if rep.Safe {
		t.Fatal("truncated mov accepted")
	}
	for i := range rep.Violations {
		v := &rep.Violations[i]
		if v.Offset > len(short) || (v.Offset == len(short) && len(v.Window) != 0) {
			t.Fatalf("violation %v: offset %d window % x escapes the image", v.Kind, v.Offset, v.Window)
		}
		if v.Error() == "" {
			t.Fatalf("violation %v: empty message", v.Kind)
		}
	}

	// A full window mid-image is exactly 8 bytes.
	mid := bytes.Repeat([]byte{0x90}, 64)
	mid[32] = 0xc3
	rep = c.VerifyWith(mid, core.VerifyOptions{Workers: 1})
	if v := rep.First(); len(v.Window) != 8 {
		t.Fatalf("mid-image window = %d bytes, want 8", len(v.Window))
	}
}

// TestViolationErrorFormat pins the message shape with and without
// detail and window.
func TestViolationErrorFormat(t *testing.T) {
	c := checker(t)
	img := bytes.Repeat([]byte{0x90}, 32)
	img[0] = 0xe9 // jmp rel32 out of the image
	rep := c.VerifyWith(img, core.VerifyOptions{Workers: 1})
	if rep.Safe {
		t.Fatal("wild jump accepted")
	}
	msg := rep.First().Error()
	for _, want := range []string{"core:", "offset", "bytes"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q missing %q", msg, want)
		}
	}
	v := core.Violation{Offset: 3, Kind: core.IllegalInstruction}
	if got := v.Error(); got != "core: illegal instruction sequence at offset 0x3" {
		t.Errorf("bare violation message = %q", got)
	}
	v.Detail = "why"
	if got := v.Error(); !strings.HasSuffix(got, ": why") {
		t.Errorf("detailed message = %q", got)
	}
}

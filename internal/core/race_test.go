//go:build race

package core_test

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation adds allocations the zero-alloc
// guards would misattribute to the engine.
const raceEnabled = true

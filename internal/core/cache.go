package core

import (
	"context"
	"encoding/binary"
	"sort"
	"time"

	"rocksalt/internal/flight"
	"rocksalt/internal/vcache"
)

// This file wires the content-addressed verdict cache (internal/vcache)
// into the engine, at two granularities:
//
//   - Whole-image: VerifyWith/VerifyContext with VerifyOptions.Cache
//     set first look the image's content key up; a hit returns a copy
//     of the cached Report without scanning a byte. Callers that track
//     content identity themselves (a build system, a module registry)
//     can hand the key in via VerifyOptions.CacheKey and skip even the
//     hashing pass — that is the >100x warm re-verification path.
//   - Per-chunk: on a whole-image miss, the image's aligned 64KiB
//     chunks are individually content-addressed. A chunk hit restores
//     the chunk's parse artifacts — its boundary/pairJmp bitmap words
//     and collected jump targets — and stage 1 skips the chunk's
//     shards; only chunks that actually changed are re-parsed. Stage 2
//     always runs in full, so cross-chunk properties (jump targets,
//     bundle coverage) are re-validated against the current image.
//
// Soundness rests on two facts. Keys are collision-resistant hashes
// (vcache.Sum) over everything the parse depends on: the table
// fingerprint, the policy configuration (AlignedCalls, Entries), the
// image size, and — for chunks — the chunk's offset and bytes plus the
// lookahead overhang past its end (the scalar walk deciding the last
// instruction of a chunk may read up to fusedDFA.lookahead()-1 bytes
// beyond the chunk boundary, so those bytes are part of the parse's
// input and must be part of the key). A shard parse is a pure function
// of exactly those inputs, so a chunk hit replays byte-identical
// artifacts; a final or partial chunk, whose parse could depend on the
// image end, is never cached (chunkEnd < size). Chunks with violations
// are never stored, so replayed chunks are always clean and every
// rejected image re-diagnoses its violating chunks through the
// ordinary engine paths.

// chunkBytes is the chunk-cache granularity: an aligned span of four
// stage-1 shards. Coarse enough that stored artifacts (two bitmap
// slices, ~1/4 of the chunk size) amortize, fine enough that a local
// edit invalidates little.
const chunkBytes = 64 << 10

// chunkShards is how many stage-1 shards one chunk covers.
const chunkShards = chunkBytes / ShardBytes

// chunkEntry is the cached parse artifact of one clean chunk: the
// boundary and masked-pair bitmap words for its bit range, the
// cross-shard jump targets its shards collected, and the in-shard
// targets already proven bad by the stage-1 workers. bad must be
// replayed: a chunk is "clean" when its parse found no shard-local
// violation, but a jump into the middle of an instruction only becomes
// a TargetNotBoundary violation at reconcile — dropping bad would make
// a cached replay accept what a cold run rejects.
type chunkEntry struct {
	valid   []uint64
	pairJmp []uint64
	targets []int32
	bad     []int32
}

func (e *chunkEntry) size() int64 {
	return int64(8*len(e.valid) + 8*len(e.pairJmp) + 4*len(e.targets) + 4*len(e.bad))
}

// cacheCtx carries a run's chunk-cache state: the per-chunk keys (index
// i covers bytes [i*chunkBytes, (i+1)*chunkBytes)) and the cache
// itself. keys is truncated to the cacheable prefix — the final chunk,
// whose parse may depend on the image end, is excluded.
type cacheCtx struct {
	cache *vcache.Cache
	keys  []vcache.Key
	// fr/frun are the run's flight recorder and run ID, filled in by
	// run() so probe/store can attribute their events.
	fr   *flight.Recorder
	frun uint32
}

// configKey hashes everything except the code bytes that a verdict
// depends on: the fused-table fingerprint and the checker's policy
// knobs — AlignedCalls, the entry whitelist, and the compiled policy's
// engine parameters (bundle size, mask length, guard cutoff). Two
// checkers with equal configKey parse any image identically; checkers
// compiled from different specs never share verdict-cache entries even
// when their tables coincide (e.g. specs differing only in the guard
// cutoff).
func (c *Checker) configKey() vcache.Key {
	fp := c.fused.fingerprint()
	cfg := make([]byte, 0, 25+4*len(c.Entries))
	cfg = append(cfg, fp[:]...)
	if c.AlignedCalls {
		cfg = append(cfg, 1)
	} else {
		cfg = append(cfg, 0)
	}
	cfg = binary.LittleEndian.AppendUint16(cfg, uint16(c.params.bundle))
	cfg = append(cfg, byte(c.params.maskLen))
	cfg = binary.LittleEndian.AppendUint32(cfg, c.params.guard)
	entries := make([]uint32, 0, len(c.Entries))
	for e, ok := range c.Entries {
		if ok {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
	for _, e := range entries {
		cfg = binary.LittleEndian.AppendUint32(cfg, e)
	}
	return vcache.Sum("rocksalt/config", cfg)
}

// fingerprint returns the (memoized) content hash of the fused
// automaton: start, tags and transition rows. It identifies the policy
// tables in cache keys, so checkers loaded from different-but-equal
// bundles share cache entries and different tables never collide.
func (f *fusedDFA) fingerprint() vcache.Key {
	f.fpOnce.Do(func() {
		buf := make([]byte, 0, 8+len(f.tags)+512*len(f.table))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.start))
		buf = append(buf, f.tags...)
		for s := range f.table {
			for b := 0; b < 256; b++ {
				buf = binary.LittleEndian.AppendUint16(buf, f.table[s][b])
			}
		}
		f.fp = vcache.Sum("rocksalt/tables", buf)
	})
	return f.fp
}

// cacheableChunks is the number of chunks eligible for caching and
// delta retention: whole chunks strictly before the image end. The
// final chunk — even when exactly chunk-sized — is excluded because its
// parse depends on where the image ends (the end-of-image straddle
// allowance).
func cacheableChunks(size int) int {
	nchunks := size / chunkBytes
	if nchunks*chunkBytes == size && nchunks > 0 {
		nchunks--
	}
	return nchunks
}

// chunkSum is the content key of one cacheable chunk: the config key,
// the image size, the chunk offset, and the chunk's bytes extended by
// the parse's lookahead overhang past its end (clamped to the image).
// The image size is a genuine input — direct-jump targets are
// classified against it — so equal chunks of different-sized images
// never share entries.
func (c *Checker) chunkSum(cfg vcache.Key, code []byte, i, overhang int) vcache.Key {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(len(code)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(i*chunkBytes))
	end := (i+1)*chunkBytes + overhang
	if end > len(code) {
		end = len(code)
	}
	return vcache.Sum("rocksalt/chunk", cfg[:], hdr[:], code[i*chunkBytes:end])
}

// cacheKeys computes the per-chunk keys for the cacheable prefix of the
// image and the derived whole-image key. The whole-image key is
// hierarchical — the hash of the chunk keys plus the non-cacheable tail
// — so both layers are addressed with a single pass over the content.
func (c *Checker) cacheKeys(code []byte) (whole vcache.Key, chunks []vcache.Key) {
	cfg := c.configKey()
	size := len(code)
	nchunks := cacheableChunks(size)
	overhang := c.fused.lookahead()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(size))
	chunks = make([]vcache.Key, nchunks)
	keyBytes := make([]byte, 0, 16*nchunks)
	for i := range chunks {
		chunks[i] = c.chunkSum(cfg, code, i, overhang)
		keyBytes = append(keyBytes, chunks[i][:]...)
	}
	binary.LittleEndian.PutUint64(hdr[8:], uint64(nchunks*chunkBytes))
	whole = vcache.Sum("rocksalt/image", cfg[:], hdr[:8], keyBytes, code[nchunks*chunkBytes:])
	return whole, chunks
}

// verifyCached is VerifyContext's path when a cache is attached.
func (c *Checker) verifyCached(ctx context.Context, code []byte, opts VerifyOptions) *Report {
	lookupStart := time.Now()
	var whole vcache.Key
	var chunks []vcache.Key
	if opts.CacheKey != nil {
		// The caller vouches that this key identifies (config, image);
		// trusting it is what makes the warm path free of hashing.
		whole = *opts.CacheKey
	} else {
		whole, chunks = c.cacheKeys(code)
	}
	if v, ok := opts.Cache.Get(whole); ok {
		rep := *(v.(*Report))
		st := &rep.Stats
		// The cached Report carries the originating run's Stats; a serve
		// scanned no byte with no engine, so the census must say so
		// instead of replaying the stale parse-mode split and timings.
		st.Engine = "cache"
		st.LaneBatches, st.SWARBatches, st.ScalarFallbacks, st.Restarts = 0, 0, 0, 0
		st.CacheWholeHits = 1
		st.CacheChunkHits, st.CacheChunkMisses = 0, 0
		st.CacheBytesSaved = int64(len(code))
		st.Stage1Wall, st.Stage2Wall, st.JumpsWall = 0, 0, 0
		st.Wall = time.Since(lookupStart)
		publishCacheStats(st)
		if fr := flight.Active(); fr != nil {
			fr.Record(flight.Event{Kind: flight.EventCacheServe, Engine: flight.EngineCache,
				Run: fr.BeginRun(), Start: fr.Now(), Bytes: int64(len(code))})
		}
		return &rep
	}
	if opts.CacheKey != nil {
		_, chunks = c.cacheKeys(code)
	}
	sc := getScratch(len(code), shardCount(len(code)))
	defer putScratch(sc)
	var st Stats
	cc := &cacheCtx{cache: opts.Cache, keys: chunks}
	rep := c.report(c.run(ctx, code, opts, sc, &st, cc), len(code))
	rep.Stats = st
	rep.CacheKey = whole.String()
	if !rep.Interrupted() {
		stored := *rep
		var t0 int64
		fr := flight.Active()
		if fr != nil {
			t0 = fr.Now()
		}
		opts.Cache.Put(whole, &stored, int64(reportSize(&stored)))
		if fr != nil {
			fr.Record(flight.Event{Kind: flight.SpanCacheStore, Engine: flight.EngineCache,
				Start: t0, Dur: fr.Now() - t0, Bytes: int64(len(code))})
		}
	}
	publishCacheStats(&rep.Stats)
	return rep
}

// reportSize approximates a Report's retained bytes for the cache's
// capacity accounting.
func reportSize(r *Report) int {
	n := 256
	for i := range r.Violations {
		n += 96 + len(r.Violations[i].Window) + len(r.Violations[i].Detail) + len(r.Violations[i].Stack)
	}
	return n
}

// probeChunks runs before stage 1: for every cacheable chunk with a
// resident entry it restores the chunk's parse artifacts and marks its
// shards to be skipped. The returned slice is indexed by shard (nil
// when nothing was restored).
func (c *Checker) probeChunks(cc *cacheCtx, sc *scratch, st *Stats) []bool {
	var skip []bool
	wvalid, wpair := sc.valid.Words(), sc.pairJmp.Words()
	for i, key := range cc.keys {
		v, ok := cc.cache.Get(key)
		if !ok {
			if st != nil {
				st.CacheChunkMisses++
			}
			if cc.fr != nil {
				cc.fr.Record(flight.Event{Kind: flight.EventChunkMiss, Engine: flight.EngineCache,
					Shard: uint32(i * chunkShards), Run: cc.frun, Start: cc.fr.Now(), Bytes: chunkBytes})
			}
			continue
		}
		e := v.(*chunkEntry)
		w0 := i * chunkBytes / 64
		copy(wvalid[w0:w0+len(e.valid)], e.valid)
		copy(wpair[w0:w0+len(e.pairJmp)], e.pairJmp)
		res := &sc.results[i*chunkShards]
		res.targets = append(res.targets, e.targets...)
		res.bad = append(res.bad, e.bad...)
		if skip == nil {
			skip = make([]bool, len(sc.results))
		}
		for s := 0; s < chunkShards; s++ {
			skip[i*chunkShards+s] = true
		}
		if st != nil {
			st.CacheChunkHits++
			st.CacheBytesSaved += chunkBytes
		}
		if cc.fr != nil {
			cc.fr.Record(flight.Event{Kind: flight.EventChunkHit, Engine: flight.EngineCache,
				Shard: uint32(i * chunkShards), Run: cc.frun, Start: cc.fr.Now(), Bytes: chunkBytes})
		}
	}
	return skip
}

// storeChunks runs after a completed stage 1: every cacheable chunk
// that was parsed this run (not restored) and is violation-free is
// stored for the next run. Chunks whose shards found violations are
// never cached, so replay can only ever reproduce clean parses.
func (c *Checker) storeChunks(cc *cacheCtx, sc *scratch, skip []bool) {
	var ft0 int64
	if cc.fr != nil {
		ft0 = cc.fr.Now()
	}
	var storedBytes int64
	wvalid, wpair := sc.valid.Words(), sc.pairJmp.Words()
	for i, key := range cc.keys {
		if skip != nil && skip[i*chunkShards] {
			continue // restored from cache this run
		}
		clean := true
		var ntargets, nbad int
		for s := 0; s < chunkShards; s++ {
			res := &sc.results[i*chunkShards+s]
			if len(res.violations) > 0 {
				clean = false
				break
			}
			ntargets += len(res.targets)
			nbad += len(res.bad)
		}
		if !clean {
			continue
		}
		w0 := i * chunkBytes / 64
		e := &chunkEntry{
			valid:   append([]uint64(nil), wvalid[w0:w0+chunkBytes/64]...),
			pairJmp: append([]uint64(nil), wpair[w0:w0+chunkBytes/64]...),
			targets: make([]int32, 0, ntargets),
		}
		if nbad > 0 {
			e.bad = make([]int32, 0, nbad)
		}
		for s := 0; s < chunkShards; s++ {
			e.targets = append(e.targets, sc.results[i*chunkShards+s].targets...)
			e.bad = append(e.bad, sc.results[i*chunkShards+s].bad...)
		}
		cc.cache.Put(key, e, e.size())
		storedBytes += chunkBytes
	}
	if cc.fr != nil {
		cc.fr.Record(flight.Event{Kind: flight.SpanCacheStore, Engine: flight.EngineCache,
			Run: cc.frun, Start: ft0, Dur: cc.fr.Now() - ft0, Bytes: storedBytes})
	}
}

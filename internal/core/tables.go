package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"rocksalt/internal/grammar"
)

// This file serializes the generated DFA tables. In the paper's
// deployment story the tables are generated offline from the verified
// grammars and shipped alongside the tiny trusted C checker; here
// cmd/dfagen can emit a table bundle and NewCheckerFromTables can run
// without touching the grammar machinery at all — the run-time trusted
// computing base is then exactly: this loader, verifier.go, engine.go,
// and the bytes of the tables.
//
// Four bundle versions exist:
//
//	RSLT1: the three policy DFAs, CRC-checked (the seed format).
//	RSLT2: the fused product automaton (states, start, tag bytes,
//	       transition table, CRC) followed by the complete v1-layout
//	       component DFAs, so one bundle carries both the fast path
//	       and the reference engine.
//	RSLT3: RSLT2 plus a stride section between the fused automaton and
//	       the component DFAs: the byte-class map and compacted
//	       states×classes table, and (optionally) the two-stride pair
//	       tables, under their own CRC. The stride section is pure
//	       acceleration data — the loader cross-checks the class map
//	       against its own recomputation and ensureStride semantically
//	       verifies the pair tables before first use, so a corrupt or
//	       stale section can cost speed but never change a verdict.
//	RSLT4: a CRC-checked policy-parameter block (bundle size, mask
//	       length, aligned-calls flag, guard cutoff, policy name)
//	       followed by the full v3 body. This is the format for
//	       non-default compiled policies (cmd/dfagen -spec), whose
//	       engine parameters must travel with their tables; v1–v3
//	       bundles always describe the default NaCl policy.
//
// Loading a v1 bundle reconstructs the fused automaton from the
// component tables; loading a v2/v3 bundle is pure deserialization,
// which is what makes NewChecker on the embedded bundle a
// sub-millisecond operation. Fused sections from any version are
// renumbered into the current class-band state order on load
// (reorderByClass), so bundles written by older builds keep loading.

// tableMagicV1..V4 identify serialized DFA bundles. RSLT4 is RSLT3
// prefixed by a CRC-checked policy-parameter block (bundle size, mask
// length, guard cutoff, aligned-calls flag, policy name), so one bundle
// carries everything a non-default compiled policy needs; the default
// NaCl policy keeps shipping as RSLT3 (parameters implied), which is
// what holds the embedded bundle byte-stable across the policy-compiler
// refactor.
const (
	tableMagicV1 = "RSLT1\x00"
	tableMagicV2 = "RSLT2\x00"
	tableMagicV3 = "RSLT3\x00"
	tableMagicV4 = "RSLT4\x00"
	magicLen     = len(tableMagicV1)
)

// WriteTables serializes the three policy DFAs in the v1 format.
func (s *DFASet) WriteTables(w io.Writer) error {
	if _, err := io.WriteString(w, tableMagicV1); err != nil {
		return err
	}
	return s.writeBody(w)
}

func (s *DFASet) writeBody(w io.Writer) error {
	for _, d := range []*grammar.DFA{s.MaskedJump, s.NoControlFlow, s.DirectJump} {
		if err := writeDFA(w, d); err != nil {
			return err
		}
	}
	return nil
}

// WriteTablesV2 serializes the fused product automaton of the set
// followed by the three component DFAs — the v2 bundle format.
func (s *DFASet) WriteTablesV2(w io.Writer) error {
	fused, err := fuseDFAs(s)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, tableMagicV2); err != nil {
		return err
	}
	if err := writeFused(w, fused); err != nil {
		return err
	}
	return s.writeBody(w)
}

// WriteTablesV3 serializes the v3 bundle: the fused automaton, the
// byte-class/two-stride acceleration section, and the component DFAs.
// The stride pair tables are built here (offline, where the cost
// belongs); an automaton whose pair partition overflows the packed
// encoding simply gets none and loaders fall back to single-stride.
func (s *DFASet) WriteTablesV3(w io.Writer) error {
	fused, err := fuseDFAs(s)
	if err != nil {
		return err
	}
	if st, err := fused.buildStride(); err == nil {
		fused.stride = st
	}
	if _, err := io.WriteString(w, tableMagicV3); err != nil {
		return err
	}
	if err := writeFused(w, fused); err != nil {
		return err
	}
	if err := writeStride(w, fused); err != nil {
		return err
	}
	return s.writeBody(w)
}

// WriteTablesV4 serializes the v4 bundle: the policy-parameter block,
// then the full v3 body (fused automaton, stride section, component
// DFAs). This is the format for non-default compiled policies, whose
// engine parameters must travel with the tables.
func (s *DFASet) WriteTablesV4(w io.Writer, info PolicyInfo, alignedCalls bool) error {
	if _, err := io.WriteString(w, tableMagicV4); err != nil {
		return err
	}
	if err := writeParams(w, info, alignedCalls); err != nil {
		return err
	}
	var body bytes.Buffer
	if err := s.WriteTablesV3(&body); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes()[magicLen:])
	return err
}

// writeParams serializes the v4 policy-parameter block: bundle size,
// mask length, flags (bit 0 = aligned calls), guard cutoff, the policy
// name, and a CRC over all of it.
func writeParams(w io.Writer, info PolicyInfo, alignedCalls bool) error {
	name := info.Name
	if len(name) > maxPolicyNameLen {
		name = name[:maxPolicyNameLen]
	}
	buf := make([]byte, 0, 10+len(name))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(info.BundleSize))
	buf = append(buf, byte(info.MaskLen))
	var flags byte
	if alignedCalls {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, info.GuardCutoff)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(buf))
}

// maxPolicyNameLen bounds the serialized policy name.
const maxPolicyNameLen = 64

// readParams deserializes and validates a v4 policy-parameter block.
func readParams(r io.Reader) (params policyParams, alignedCalls bool, err error) {
	head := make([]byte, 10)
	if _, e := io.ReadFull(r, head); e != nil {
		return params, false, fmt.Errorf("core: reading policy parameters: %w", e)
	}
	crc := crc32.NewIEEE()
	crc.Write(head)
	bundle := int(binary.LittleEndian.Uint16(head))
	mlen := int(head[2])
	flags := head[3]
	guard := binary.LittleEndian.Uint32(head[4:])
	nameLen := int(binary.LittleEndian.Uint16(head[8:]))
	if nameLen > maxPolicyNameLen {
		return params, false, fmt.Errorf("core: implausible policy name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, e := io.ReadFull(r, name); e != nil {
		return params, false, fmt.Errorf("core: reading policy name: %w", e)
	}
	crc.Write(name)
	var sum uint32
	if e := binary.Read(r, binary.LittleEndian, &sum); e != nil {
		return params, false, e
	}
	if sum != crc.Sum32() {
		return params, false, fmt.Errorf("core: policy parameter checksum mismatch")
	}
	if bundle < 16 || bundle > 4096 || bundle&(bundle-1) != 0 {
		return params, false, fmt.Errorf("core: implausible policy bundle size %d", bundle)
	}
	if mlen < 1 || mlen > 15 {
		return params, false, fmt.Errorf("core: implausible policy mask length %d", mlen)
	}
	if flags&^byte(1) != 0 {
		return params, false, fmt.Errorf("core: undefined policy flag bits %#x", flags)
	}
	return policyParams{
		name:    string(name),
		bundle:  bundle,
		maskLen: mlen,
		guard:   guard,
	}, flags&1 != 0, nil
}

// sniffVersion consumes the magic and returns the bundle version, or an
// error naming the unknown version so CLI users know a re-generation
// (or a different tool) is needed.
func sniffVersion(r io.Reader) (int, error) {
	magic := make([]byte, magicLen)
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, fmt.Errorf("core: reading table magic: %w", err)
	}
	switch string(magic) {
	case tableMagicV1:
		return 1, nil
	case tableMagicV2:
		return 2, nil
	case tableMagicV3:
		return 3, nil
	case tableMagicV4:
		return 4, nil
	}
	return 0, fmt.Errorf("core: unknown table bundle version %q (want %q, %q, %q or %q)",
		string(magic), tableMagicV1, tableMagicV2, tableMagicV3, tableMagicV4)
}

// ReadTables deserializes the component DFA set from a bundle of any
// version (for v2/v3 the fused and stride sections are read and
// discarded; use NewCheckerFromTables to keep them).
func ReadTables(r io.Reader) (*DFASet, error) {
	version, err := sniffVersion(r)
	if err != nil {
		return nil, err
	}
	if version >= 4 {
		if _, _, err := readParams(r); err != nil {
			return nil, err
		}
	}
	if version >= 2 {
		f, err := readFused(r)
		if err != nil {
			return nil, err
		}
		if version >= 3 {
			if err := readStride(r, f); err != nil {
				return nil, err
			}
		}
	}
	return readSet(r)
}

func readSet(r io.Reader) (*DFASet, error) {
	var out [3]*grammar.DFA
	for i := range out {
		d, err := readDFA(r)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return &DFASet{MaskedJump: out[0], NoControlFlow: out[1], DirectJump: out[2]}, nil
}

// NewCheckerFromTables builds a checker directly from a serialized
// bundle, bypassing grammar compilation entirely. v1 bundles carry only
// the component DFAs, so the fused automaton is reconstructed (a few
// milliseconds of product construction); v2+ bundles deserialize both,
// and v4 bundles additionally restore the compiled policy's engine
// parameters (v1–v3 imply the default NaCl parameters). Every load is
// CRC- and bounds-checked: a corrupted bundle fails closed at this
// boundary, never at verification time.
func NewCheckerFromTables(r io.Reader) (*Checker, error) {
	version, err := sniffVersion(r)
	if err != nil {
		return nil, err
	}
	params, alignedCalls := naclParams, false
	if version >= 4 {
		if params, alignedCalls, err = readParams(r); err != nil {
			return nil, err
		}
	}
	if version == 1 {
		set, err := readSet(r)
		if err != nil {
			return nil, err
		}
		c, err := newCheckerFromSet(set)
		if err == nil {
			c.bundle = "RSLT1"
		}
		return c, err
	}
	fused, err := readFused(r)
	if err != nil {
		return nil, err
	}
	if version >= 3 {
		if err := readStride(r, fused); err != nil {
			return nil, err
		}
	}
	set, err := readSet(r)
	if err != nil {
		return nil, err
	}
	return &Checker{
		masked:       newDFA(set.MaskedJump),
		noCF:         newDFA(set.NoControlFlow),
		direct:       newDFA(set.DirectJump),
		fused:        fused,
		params:       params,
		bundle:       fmt.Sprintf("RSLT%d", version),
		AlignedCalls: alignedCalls,
	}, nil
}

// writeFused serializes the fused automaton: state count, start state,
// tag bytes, transition rows, and a CRC over tags+rows.
func writeFused(w io.Writer, f *fusedDFA) error {
	n := uint32(len(f.table))
	if err := binary.Write(w, binary.LittleEndian, n); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(f.start)); err != nil {
		return err
	}
	if _, err := w.Write(f.tags); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	crc.Write(f.tags)
	buf := make([]byte, 512)
	for _, row := range f.table {
		for i, v := range row {
			binary.LittleEndian.PutUint16(buf[i*2:], v)
		}
		crc.Write(buf)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// readFused deserializes and validates a fused automaton section.
func readFused(r io.Reader) (*fusedDFA, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<16 {
		return nil, fmt.Errorf("core: implausible fused automaton size %d", n)
	}
	var start uint16
	if err := binary.Read(r, binary.LittleEndian, &start); err != nil {
		return nil, err
	}
	f := &fusedDFA{
		start: int(start),
		tags:  make([]uint8, n),
		table: make([][256]uint16, n),
	}
	if _, err := io.ReadFull(r, f.tags); err != nil {
		return nil, err
	}
	crc := crc32.NewIEEE()
	crc.Write(f.tags)
	buf := make([]byte, 512)
	for s := range f.table {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		crc.Write(buf)
		for i := 0; i < 256; i++ {
			f.table[s][i] = binary.LittleEndian.Uint16(buf[i*2:])
		}
	}
	var sum uint32
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return nil, err
	}
	if sum != crc.Sum32() {
		return nil, fmt.Errorf("core: fused table checksum mismatch")
	}
	// Bounds pre-check, then renumber into the current class-band state
	// order. Freshly written bundles are already in it (the permutation
	// is the identity); bundles from builds with an older band layout are
	// permuted into place, so they keep loading. validate then recomputes
	// the band boundaries and derives the fast-path structures.
	if int(start) >= int(n) {
		return nil, fmt.Errorf("core: fused start state out of range")
	}
	for s := range f.table {
		for b := 0; b < 256; b++ {
			if uint32(f.table[s][b]) >= n {
				return nil, fmt.Errorf("core: fused transition out of range")
			}
		}
	}
	for i, g := range f.tags {
		if g&^uint8(tagMask) != 0 {
			return nil, fmt.Errorf("core: fused state %d has undefined tag bits %#x", i, g)
		}
	}
	f = reorderByClass(f.start, f.tags, f.table)
	if err := f.validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// writeStride serializes the v3 acceleration section: the byte-class
// map and compacted table, the optional two-stride pair tables, and a
// CRC over all of it. The byte classes are recomputed from the fused
// automaton's restart-closed table (computeFast has run by
// construction), so the section is always consistent with the fused
// section it follows.
func writeStride(w io.Writer, f *fusedDFA) error {
	var buf []byte
	le16 := func(v uint16) { buf = append(buf, byte(v), byte(v>>8)) }
	le16(uint16(f.ncls))
	buf = append(buf, f.cls[:]...)
	for _, v := range grammar.CompactTable(f.closed, f.cls, f.ncls) {
		le16(v)
	}
	if st := f.stride; st != nil {
		le16(uint16(st.npcls))
		for _, v := range st.pcls {
			le16(v)
		}
		for _, v := range st.dense {
			le16(v)
		}
	} else {
		le16(0)
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(buf))
}

// readStride deserializes and cross-checks a v3 acceleration section
// against the already-loaded (and renumbered) fused automaton f. The
// class map must equal the loader's own recomputation and the compacted
// table must verify against the closed table (grammar.VerifyByteClasses);
// pair tables get structural checks here and full semantic verification
// in ensureStride before the strided walk ever consumes them. Any
// mismatch rejects the bundle: acceleration data that disagrees with
// the automaton it ships with means the bundle is corrupt or
// mis-generated, and refusing it loudly beats silently dropping to a
// slower path.
func readStride(r io.Reader, f *fusedDFA) error {
	n := len(f.table)
	crc := crc32.NewIEEE()
	var ncls uint16
	head := make([]byte, 2+256)
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("core: reading stride section: %w", err)
	}
	crc.Write(head)
	ncls = binary.LittleEndian.Uint16(head)
	if ncls < 1 || ncls > 256 {
		return fmt.Errorf("core: implausible byte-class count %d", ncls)
	}
	var cls [256]uint8
	copy(cls[:], head[2:])
	readU16s := func(count int) ([]uint16, error) {
		b := make([]byte, 2*count)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("core: reading stride section: %w", err)
		}
		crc.Write(b)
		out := make([]uint16, count)
		for i := range out {
			out[i] = binary.LittleEndian.Uint16(b[2*i:])
		}
		return out, nil
	}
	compact, err := readU16s(n * int(ncls))
	if err != nil {
		return err
	}
	np, err := readU16s(1)
	if err != nil {
		return err
	}
	npcls := int(np[0])
	var pcls, dense []uint16
	if npcls > 0 {
		if npcls > stridePairCap {
			return fmt.Errorf("core: implausible pair-class count %d", npcls)
		}
		if pcls, err = readU16s(1 << 16); err != nil {
			return err
		}
		if dense, err = readU16s(n * npcls); err != nil {
			return err
		}
	}
	var sum uint32
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return err
	}
	if sum != crc.Sum32() {
		return fmt.Errorf("core: stride section checksum mismatch")
	}
	if cls != f.cls || int(ncls) != f.ncls {
		return fmt.Errorf("core: bundled byte-class map disagrees with the fused automaton")
	}
	if !grammar.VerifyByteClasses(f.closed, cls, int(ncls), compact) {
		return fmt.Errorf("core: bundled byte-class tables fail verification")
	}
	if npcls > 0 {
		for _, v := range pcls {
			if int(v) >= npcls {
				return fmt.Errorf("core: pair class out of range")
			}
		}
		for _, v := range dense {
			if v != strideEventful && (v&0xFF >= uint16(n) || v>>8 >= uint16(n)) {
				return fmt.Errorf("core: strided transition out of range")
			}
		}
		f.stride = &strideTables{npcls: npcls, pcls: pcls, dense: dense}
	}
	return nil
}

func writeDFA(w io.Writer, d *grammar.DFA) error {
	n := uint32(d.NumStates())
	if err := binary.Write(w, binary.LittleEndian, n); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(d.Start)); err != nil {
		return err
	}
	status := make([]uint8, n)
	for i := range status {
		switch {
		case d.Accepts[i]:
			status[i] = 1
		case d.Rejects[i]:
			status[i] = 2
		}
	}
	if _, err := w.Write(status); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	crc.Write(status)
	buf := make([]byte, 512)
	for _, row := range d.Table {
		for i, v := range row {
			binary.LittleEndian.PutUint16(buf[i*2:], v)
		}
		crc.Write(buf)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

func readDFA(r io.Reader) (*grammar.DFA, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<16 {
		return nil, fmt.Errorf("core: implausible DFA size %d", n)
	}
	var start uint16
	if err := binary.Read(r, binary.LittleEndian, &start); err != nil {
		return nil, err
	}
	if uint32(start) >= n {
		return nil, fmt.Errorf("core: start state out of range")
	}
	status := make([]uint8, n)
	if _, err := io.ReadFull(r, status); err != nil {
		return nil, err
	}
	crc := crc32.NewIEEE()
	crc.Write(status)
	d := &grammar.DFA{
		Start:   int(start),
		Accepts: make([]bool, n),
		Rejects: make([]bool, n),
		Table:   make([][256]uint16, n),
	}
	for i, st := range status {
		switch st {
		case 0:
		case 1:
			d.Accepts[i] = true
		case 2:
			d.Rejects[i] = true
		default:
			return nil, fmt.Errorf("core: bad state status %d", st)
		}
	}
	buf := make([]byte, 512)
	for s := range d.Table {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		crc.Write(buf)
		for i := 0; i < 256; i++ {
			v := binary.LittleEndian.Uint16(buf[i*2:])
			if uint32(v) >= n {
				return nil, fmt.Errorf("core: transition out of range")
			}
			d.Table[s][i] = v
		}
	}
	var sum uint32
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return nil, err
	}
	if sum != crc.Sum32() {
		return nil, fmt.Errorf("core: table checksum mismatch")
	}
	return d, nil
}

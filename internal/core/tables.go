package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"rocksalt/internal/grammar"
)

// This file serializes the generated DFA tables. In the paper's
// deployment story the tables are generated offline from the verified
// grammars and shipped alongside the tiny trusted C checker; here
// cmd/dfagen can emit a table bundle and NewCheckerFromTables can run
// without touching the grammar machinery at all — the run-time trusted
// computing base is then exactly: this loader, verifier.go, and the
// bytes of the tables.

// tableMagic identifies a serialized DFA bundle (version 1).
const tableMagic = "RSLT1\x00"

// WriteTables serializes the three policy DFAs.
func (s *DFASet) WriteTables(w io.Writer) error {
	if _, err := io.WriteString(w, tableMagic); err != nil {
		return err
	}
	for _, d := range []*grammar.DFA{s.MaskedJump, s.NoControlFlow, s.DirectJump} {
		if err := writeDFA(w, d); err != nil {
			return err
		}
	}
	return nil
}

// ReadTables deserializes a bundle written by WriteTables.
func ReadTables(r io.Reader) (*DFASet, error) {
	magic := make([]byte, len(tableMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("core: reading table magic: %w", err)
	}
	if string(magic) != tableMagic {
		return nil, fmt.Errorf("core: not a rocksalt table bundle")
	}
	var out [3]*grammar.DFA
	for i := range out {
		d, err := readDFA(r)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return &DFASet{MaskedJump: out[0], NoControlFlow: out[1], DirectJump: out[2]}, nil
}

// NewCheckerFromTables builds a checker directly from serialized tables,
// bypassing grammar compilation entirely.
func NewCheckerFromTables(r io.Reader) (*Checker, error) {
	set, err := ReadTables(r)
	if err != nil {
		return nil, err
	}
	return &Checker{
		masked: newDFA(set.MaskedJump),
		noCF:   newDFA(set.NoControlFlow),
		direct: newDFA(set.DirectJump),
	}, nil
}

func writeDFA(w io.Writer, d *grammar.DFA) error {
	n := uint32(d.NumStates())
	if err := binary.Write(w, binary.LittleEndian, n); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(d.Start)); err != nil {
		return err
	}
	status := make([]uint8, n)
	for i := range status {
		switch {
		case d.Accepts[i]:
			status[i] = 1
		case d.Rejects[i]:
			status[i] = 2
		}
	}
	if _, err := w.Write(status); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	crc.Write(status)
	buf := make([]byte, 512)
	for _, row := range d.Table {
		for i, v := range row {
			binary.LittleEndian.PutUint16(buf[i*2:], v)
		}
		crc.Write(buf)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

func readDFA(r io.Reader) (*grammar.DFA, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<16 {
		return nil, fmt.Errorf("core: implausible DFA size %d", n)
	}
	var start uint16
	if err := binary.Read(r, binary.LittleEndian, &start); err != nil {
		return nil, err
	}
	if uint32(start) >= n {
		return nil, fmt.Errorf("core: start state out of range")
	}
	status := make([]uint8, n)
	if _, err := io.ReadFull(r, status); err != nil {
		return nil, err
	}
	crc := crc32.NewIEEE()
	crc.Write(status)
	d := &grammar.DFA{
		Start:   int(start),
		Accepts: make([]bool, n),
		Rejects: make([]bool, n),
		Table:   make([][256]uint16, n),
	}
	for i, st := range status {
		switch st {
		case 0:
		case 1:
			d.Accepts[i] = true
		case 2:
			d.Rejects[i] = true
		default:
			return nil, fmt.Errorf("core: bad state status %d", st)
		}
	}
	buf := make([]byte, 512)
	for s := range d.Table {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		crc.Write(buf)
		for i := 0; i < 256; i++ {
			v := binary.LittleEndian.Uint16(buf[i*2:])
			if uint32(v) >= n {
				return nil, fmt.Errorf("core: transition out of range")
			}
			d.Table[s][i] = v
		}
	}
	var sum uint32
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return nil, err
	}
	if sum != crc.Sum32() {
		return nil, fmt.Errorf("core: table checksum mismatch")
	}
	return d, nil
}

package core

import (
	"runtime"
	"sync"

	"rocksalt/internal/telemetry"
)

// buildInfoMu guards buildInfoSeen: the registry panics on duplicate
// (name, labels) registration, so PublishBuildInfo must register each
// distinct identity exactly once per process even when several checkers
// share a bundle and policy.
var (
	buildInfoMu   sync.Mutex
	buildInfoSeen = map[string]bool{}
)

// PublishBuildInfo registers (once per distinct identity) the
// rocksalt_build_info gauge, the conventional always-1 info metric
// whose labels carry the checker's identity: table-bundle version,
// policy fingerprint, and the Go toolchain version. The gauge is set
// with an ungated Store so it is scrapeable even before SetEnabled.
func PublishBuildInfo(c *Checker) {
	bundle, fp := c.TableBundle(), c.Fingerprint()
	key := bundle + "\x00" + fp
	buildInfoMu.Lock()
	defer buildInfoMu.Unlock()
	if buildInfoSeen[key] {
		return
	}
	buildInfoSeen[key] = true
	g := telemetry.Default().NewLabeledGauge(
		"rocksalt_build_info",
		"constant 1; labels carry the table-bundle version, policy fingerprint and go version",
		"bundle", bundle,
		"policy", fp,
		"go", runtime.Version(),
	)
	g.Store(1)
}

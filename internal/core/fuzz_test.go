package core_test

import (
	"bytes"
	"testing"

	"rocksalt/internal/core"
	"rocksalt/internal/nacl"
	"rocksalt/internal/ncval"
)

// FuzzCheckerAgreement feeds arbitrary byte strings to both validators:
// any verdict disagreement is a bug in one of them (this is exactly how
// the paper argues for its own testing — "we verified that our driver
// and Google's always agreed on a program's safety"). Run with
//
//	go test -fuzz FuzzCheckerAgreement ./internal/core
func FuzzCheckerAgreement(f *testing.F) {
	// Seeds: compliant images, the unsafe corpus, tricky fragments.
	gen := nacl.NewGenerator(123)
	for i := 0; i < 8; i++ {
		img, err := gen.Random(10)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
	}
	for _, img := range nacl.UnsafeCorpus() {
		f.Add(img)
	}
	f.Add([]byte{0x83, 0xe0, 0xe0, 0xff, 0xe0})
	// Regressions from three-way fuzzing: ENTER with a non-zero nesting
	// level (safe: it faults), and REPNE on a non-string op (illegal).
	f.Add(append([]byte{0xc8, 0xa0, 0x65, 0xc5}, make([]byte, 28)...))
	f.Add(append([]byte{0xf2, 0x0f, 0x1f, 0x84, 0, 0, 0, 0, 0}, make([]byte, 23)...))
	f.Add([]byte{0x66, 0x90, 0xf3, 0xa4, 0xeb, 0x00})
	f.Add(bytes.Repeat([]byte{0x90}, 32))

	c, err := core.NewChecker()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, img []byte) {
		if len(img) > 1<<16 {
			t.Skip()
		}
		a := c.Verify(img)
		b := ncval.Validate(img)
		if a != b {
			t.Fatalf("checker disagreement on % x: rocksalt=%v ncval=%v", img, a, b)
		}
	})
}

package grammar

import (
	"math/rand"
	"testing"
)

func bitAccepts(d *BitDFA, s []bool) bool {
	st := d.Start
	for _, b := range s {
		i := 0
		if b {
			i = 1
		}
		st = d.Next[st][i]
	}
	return d.Accepts[st]
}

func TestMinimizePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	ctx := NewCtx()
	for trial := 0; trial < 150; trial++ {
		g := genGrammar(rng, 3)
		d, err := ctx.CompileBitDFA(ctx.Strip(g), 0)
		if err != nil {
			t.Fatal(err)
		}
		m := MinimizeBitDFA(d)
		if m.NumStates() > d.NumStates() {
			t.Fatalf("minimization grew the DFA: %d -> %d", d.NumStates(), m.NumStates())
		}
		if !EquivalentBitDFAs(d, m) {
			t.Fatalf("minimized DFA not equivalent for %s", g)
		}
		for k := 0; k < 30; k++ {
			s := randString(rng, rng.Intn(10))
			if bitAccepts(d, s) != bitAccepts(m, s) {
				t.Fatalf("disagreement on %v for %s", s, g)
			}
		}
	}
}

func TestMinimizeMergesDuplicates(t *testing.T) {
	// Alt of the same literal twice (built without interning) must
	// minimize to the same automaton as the single literal.
	ctx := NewCtx()
	one := ctx.Strip(Bits("1011"))
	d1, err := ctx.CompileBitDFA(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	m1 := MinimizeBitDFA(d1)
	// A deliberately redundant grammar with the same language.
	red := Alt(Cat(Bits("10"), Bits("11")), Bits("1011"))
	d2, err := ctx.CompileBitDFA(ctx.Strip(red), 0)
	if err != nil {
		t.Fatal(err)
	}
	m2 := MinimizeBitDFA(d2)
	if m1.NumStates() != m2.NumStates() {
		t.Fatalf("same language, different minimal sizes: %d vs %d", m1.NumStates(), m2.NumStates())
	}
	if !EquivalentBitDFAs(m1, m2) {
		t.Fatal("minimal DFAs for the same language must be equivalent")
	}
}

func TestEquivalentBitDFAsDetectsDifference(t *testing.T) {
	ctx := NewCtx()
	a, err := ctx.CompileBitDFA(ctx.Strip(Bits("10")), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.CompileBitDFA(ctx.Strip(Bits("11")), 0)
	if err != nil {
		t.Fatal(err)
	}
	if EquivalentBitDFAs(a, b) {
		t.Fatal("different languages reported equivalent")
	}
	if !EquivalentBitDFAs(a, a) {
		t.Fatal("a DFA must be equivalent to itself")
	}
}

// TestBrzozowskiNearMinimal is the paper's §3.2 observation, verified:
// the derivative construction with ACI normalization is already at (or
// within a hair of) the minimal state counts, so "we do not need to
// worry about further minimization".
func TestBrzozowskiNearMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	ctx := NewCtx()
	totalRaw, totalMin := 0, 0
	for trial := 0; trial < 100; trial++ {
		g := genGrammar(rng, 4)
		d, err := ctx.CompileBitDFA(ctx.Strip(g), 0)
		if err != nil {
			t.Fatal(err)
		}
		m := MinimizeBitDFA(d)
		totalRaw += d.NumStates()
		totalMin += m.NumStates()
	}
	ratio := float64(totalRaw) / float64(totalMin)
	t.Logf("raw %d states vs minimal %d states (%.2fx)", totalRaw, totalMin, ratio)
	if ratio > 1.5 {
		t.Errorf("derivative DFAs are %.2fx larger than minimal; expected near-minimal", ratio)
	}
}

func TestSubsetOfBitDFAs(t *testing.T) {
	ctx := NewCtx()
	small := mustBit(t, ctx, Bits("10"))
	big := mustBit(t, ctx, Alt(Bits("10"), Bits("11")))
	if !SubsetOfBitDFAs(small, big) {
		t.Fatal("subset not detected")
	}
	if SubsetOfBitDFAs(big, small) {
		t.Fatal("superset accepted as subset")
	}
	if !SubsetOfBitDFAs(big, big) {
		t.Fatal("language is a subset of itself")
	}
	// Property over random star-free grammars: g ⊆ Alt(g, h) always.
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 100; trial++ {
		g := genStarFree(rng, 3)
		h := genStarFree(rng, 3)
		dg := mustBit(t, ctx, g)
		dgh := mustBit(t, ctx, Alt(g, h))
		if !SubsetOfBitDFAs(dg, dgh) {
			t.Fatalf("g ⊄ g|h for %s, %s", g, h)
		}
	}
}

func mustBit(t *testing.T, ctx *Ctx, g *Grammar) *BitDFA {
	t.Helper()
	d, err := ctx.CompileBitDFA(ctx.Strip(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

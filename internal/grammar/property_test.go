package grammar

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// This file property-tests the grammar meta-theory over *random grammars*,
// not just the hand-picked ones: a generator produces small grammar terms,
// and each algebraic fact the implementation relies on is checked against
// the denotational reference semantics.

// genGrammar builds a random grammar of bounded depth. Maps use value
// tagging so results stay comparable with reflect.DeepEqual.
func genGrammar(rng *rand.Rand, depth int) *Grammar {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return Eps()
		case 1:
			return Char(rng.Intn(2) == 1)
		case 2:
			return Any()
		default:
			return Bits(randBits(rng, 1+rng.Intn(3)))
		}
	}
	switch rng.Intn(6) {
	case 0:
		return Cat(genGrammar(rng, depth-1), genGrammar(rng, depth-1))
	case 1:
		return Alt(genGrammar(rng, depth-1), genGrammar(rng, depth-1))
	case 2:
		// Star of something that is usually non-nullable to keep the
		// denotation finite per string length.
		return Star(Cat(Char(rng.Intn(2) == 1), genGrammar(rng, depth-2)))
	case 3:
		tag := rng.Intn(100)
		return Map(genGrammar(rng, depth-1), func(v Value) Value {
			return Pair{tag, v}
		})
	case 4:
		return genGrammar(rng, depth-1)
	default:
		return Cat(genGrammar(rng, depth-1), Alt(genGrammar(rng, depth-1), genGrammar(rng, depth-1)))
	}
}

// genStarFree builds a random grammar without Star (for the generalized
// derivative properties).
func genStarFree(rng *rand.Rand, depth int) *Grammar {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return Eps()
		case 1:
			return Char(rng.Intn(2) == 1)
		default:
			return Any()
		}
	}
	switch rng.Intn(3) {
	case 0:
		return Cat(genStarFree(rng, depth-1), genStarFree(rng, depth-1))
	case 1:
		return Alt(genStarFree(rng, depth-1), genStarFree(rng, depth-1))
	default:
		return genStarFree(rng, depth-1)
	}
}

func randBits(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '0' + byte(rng.Intn(2))
	}
	return string(b)
}

func randString(rng *rand.Rand, n int) []bool {
	s := make([]bool, n)
	for i := range s {
		s[i] = rng.Intn(2) == 1
	}
	return s
}

// canon renders a multiset of semantic values for order-insensitive
// comparison.
func canon(vs []Value) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = reprValue(v)
	}
	sort.Strings(out)
	return out
}

func reprValue(v Value) string {
	// Sprintf on nested Pairs/slices/bools is stable enough for equality.
	return sprint(v)
}

func sprint(v Value) string {
	switch x := v.(type) {
	case Pair:
		return "(" + sprint(x.Fst) + "," + sprint(x.Snd) + ")"
	case []Value:
		s := "["
		for _, e := range x {
			s += sprint(e) + ";"
		}
		return s + "]"
	case bool:
		if x {
			return "1"
		}
		return "0"
	case Unit:
		return "tt"
	default:
		return reflectString(v)
	}
}

func reflectString(v Value) string {
	return reflect.ValueOf(v).Kind().String() + ":" + sprintDefault(v)
}

func sprintDefault(v Value) string {
	return fmtSprint(v)
}

// TestPropDerivativeCharacterization: for random g, s, bit b:
// Denote(Deriv(b, g), s) == Denote(g, b::s), as multisets.
func TestPropDerivativeCharacterization(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 400; trial++ {
		g := genGrammar(rng, 3)
		b := rng.Intn(2) == 1
		s := randString(rng, rng.Intn(5))
		want := Denote(g, append([]bool{b}, s...))
		got := Denote(Deriv(b, g), s)
		if !reflect.DeepEqual(canon(got), canon(want)) {
			t.Fatalf("trial %d: deriv(%v) of %s on %v:\n got %v\nwant %v",
				trial, b, g, s, canon(got), canon(want))
		}
	}
}

// TestPropNullCharacterization: Extract(Null(g)) == Denote(g, ε).
func TestPropNullCharacterization(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 400; trial++ {
		g := genGrammar(rng, 3)
		want := Denote(g, nil)
		got := Extract(Null(g))
		if !reflect.DeepEqual(canon(got), canon(want)) {
			t.Fatalf("trial %d: null of %s:\n got %v\nwant %v", trial, g, canon(got), canon(want))
		}
	}
}

// TestPropExtractCharacterization: Extract(g) == Denote(g, ε).
func TestPropExtractCharacterization(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 400; trial++ {
		g := genGrammar(rng, 3)
		if !reflect.DeepEqual(canon(Extract(g)), canon(Denote(g, nil))) {
			t.Fatalf("trial %d: extract of %s differs from denotation at ε", trial, g)
		}
	}
}

// TestPropParserAdequacyRandom: the derivative parser equals the
// denotation on random grammars and strings (the adequacy theorem, now
// over the generated term space).
func TestPropParserAdequacyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 400; trial++ {
		g := genGrammar(rng, 3)
		s := randString(rng, rng.Intn(7))
		want := Denote(g, s)
		got, err := ParseBits(g, s)
		if len(want) == 0 {
			if err == nil {
				t.Fatalf("trial %d: parser accepted a string outside the denotation", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: parser rejected a denoted string: %v", trial, err)
		}
		if !reflect.DeepEqual(canon(got), canon(want)) {
			t.Fatalf("trial %d: parse values differ:\n got %v\nwant %v", trial, canon(got), canon(want))
		}
	}
}

// TestPropStripPreservesLanguage: the action-stripped, interned regex
// accepts exactly the grammar's language (checked via its bit-DFA).
func TestPropStripPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	ctx := NewCtx()
	for trial := 0; trial < 200; trial++ {
		g := genGrammar(rng, 3)
		r := ctx.Strip(g)
		d, err := ctx.CompileBitDFA(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 20; k++ {
			s := randString(rng, rng.Intn(7))
			st := d.Start
			for _, b := range s {
				i := 0
				if b {
					i = 1
				}
				st = d.Next[st][i]
			}
			if d.Accepts[st] != InDenotation(g, s) {
				t.Fatalf("trial %d: DFA and denotation disagree on %v for %s", trial, s, g)
			}
		}
	}
}

// TestPropIntersectsSound: when Intersects says no, no common string of
// bounded length exists; when it says yes, a witness is found by search.
func TestPropIntersectsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	ctx := NewCtx()
	for trial := 0; trial < 150; trial++ {
		g1 := genStarFree(rng, 3)
		g2 := genStarFree(rng, 3)
		r1, r2 := ctx.Strip(g1), ctx.Strip(g2)
		claim := ctx.Intersects(r1, r2)
		// Exhaustive search up to the max possible length of star-free
		// depth-3 grammars (8 bits is generous).
		found := false
		for n := 0; n <= 8 && !found; n++ {
			for mask := 0; mask < 1<<n && !found; mask++ {
				s := make([]bool, n)
				for i := 0; i < n; i++ {
					s[i] = mask>>i&1 == 1
				}
				if InDenotation(g1, s) && InDenotation(g2, s) {
					found = true
				}
			}
		}
		if claim != found {
			t.Fatalf("trial %d: Intersects=%v but exhaustive search says %v for %s vs %s",
				trial, claim, found, g1, g2)
		}
	}
}

// TestPropDerivByCharacterizationRandom: the generalized derivative's
// defining equation over random star-free grammars.
func TestPropDerivByCharacterizationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	ctx := NewCtx()
	for trial := 0; trial < 80; trial++ {
		g := genStarFree(rng, 3)
		by := genStarFree(rng, 2)
		d, err := ctx.DerivBy(ctx.Strip(g), ctx.Strip(by))
		if err != nil {
			t.Fatal(err)
		}
		dfa, err := ctx.CompileBitDFA(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		accepts := func(s []bool) bool {
			st := dfa.Start
			for _, b := range s {
				i := 0
				if b {
					i = 1
				}
				st = dfa.Next[st][i]
			}
			return dfa.Accepts[st]
		}
		// Check all s2 up to length 4 against the definition
		// ∃s1 ∈ by. s1·s2 ∈ g (s1 up to length 6 covers depth-2 terms).
		for n := 0; n <= 4; n++ {
			for mask := 0; mask < 1<<n; mask++ {
				s2 := make([]bool, n)
				for i := 0; i < n; i++ {
					s2[i] = mask>>i&1 == 1
				}
				want := false
				for m := 0; m <= 6 && !want; m++ {
					for pm := 0; pm < 1<<m && !want; pm++ {
						s1 := make([]bool, m)
						for i := 0; i < m; i++ {
							s1[i] = pm>>i&1 == 1
						}
						if InDenotation(by, s1) &&
							InDenotation(g, append(append([]bool{}, s1...), s2...)) {
							want = true
						}
					}
				}
				if got := accepts(s2); got != want {
					t.Fatalf("trial %d: DerivBy wrong on %v: got %v want %v (g=%s by=%s)",
						trial, s2, got, want, g, by)
				}
			}
		}
	}
}

// TestPropSamplerSoundRandom: samples of random grammars lie in their
// denotations with matching values.
func TestPropSamplerSoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	s := NewSampler(rng)
	for trial := 0; trial < 300; trial++ {
		g := genGrammar(rng, 3)
		bits, v, ok := s.Sample(g)
		if !ok {
			// The language may genuinely be empty only via Void, which the
			// generator never emits; Cat of Star... cannot be empty either.
			t.Fatalf("trial %d: sampler claims empty language for %s", trial, g)
		}
		if len(bits) > 64 {
			continue // denotation check too costly
		}
		vs := Denote(g, bits)
		found := false
		for _, w := range vs {
			if reflect.DeepEqual(v, w) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trial %d: sampled value not in denotation for %s", trial, g)
		}
	}
}

// TestPropSmartConstructorsPreserveLanguage: the reductions performed by
// the smart constructors never change the denotation.
func TestPropSmartConstructorsPreserveLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 300; trial++ {
		g := genGrammar(rng, 2)
		variants := []*Grammar{
			Cat(Eps(), g),
			Cat(g, Eps()),
			Alt(Void(), g),
			Alt(g, Void()),
			Map(g, func(v Value) Value { return v }),
		}
		for vi, gv := range variants {
			for k := 0; k < 10; k++ {
				s := randString(rng, rng.Intn(6))
				if InDenotation(g, s) != InDenotation(gv, s) {
					t.Fatalf("trial %d variant %d: language changed on %v", trial, vi, s)
				}
			}
		}
	}
}

// TestPropNullableMatchesDenotation: the cached nullability bit agrees
// with ε-membership.
func TestPropNullableMatchesDenotation(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 500; trial++ {
		g := genGrammar(rng, 4)
		if g.nullable != InDenotation(g, nil) {
			t.Fatalf("trial %d: cached nullable=%v but denotation says %v for %s",
				trial, g.nullable, InDenotation(g, nil), g)
		}
	}
}

func fmtSprint(v Value) string { return fmt.Sprint(v) }

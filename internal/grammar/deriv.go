package grammar

import (
	"errors"
	"fmt"
)

// This file implements §2.2 of the paper: Brzozowski derivatives lifted to
// grammars with semantic actions, the null and extract functions, and the
// derivative-based parser that the x86 decoder runs on.

// Deriv computes the derivative of g with respect to one bit:
//
//	[[Deriv(b, g)]] = {(s, v) | (b::s, v) ∈ [[g]]}
//
// The semantic actions are adjusted with Maps exactly as in the paper, and
// the smart constructors keep the result reduced.
func Deriv(b bool, g *Grammar) *Grammar {
	switch g.op {
	case opAny:
		return Map(epsG, func(Value) Value { return b })
	case opChar:
		if g.bit == b {
			c := g.bit
			return Map(epsG, func(Value) Value { return c })
		}
		return voidG
	case opAlt:
		return Alt(Deriv(b, g.l), Deriv(b, g.r))
	case opStar:
		inner := g.l
		return Map(Cat(Deriv(b, inner), g), func(v Value) Value {
			p := v.(Pair)
			return append([]Value{p.Fst}, p.Snd.([]Value)...)
		})
	case opCat:
		left := Cat(Deriv(b, g.l), g.r)
		// When g.l is not nullable, Null(g.l) is Void and the right branch
		// vanishes; skipping it avoids deriving g.r at all.
		if !g.l.nullable {
			return left
		}
		right := Cat(Null(g.l), Deriv(b, g.r))
		return Alt(left, right)
	case opMap:
		return Map(Deriv(b, g.l), g.f)
	default: // Eps, Void
		return voidG
	}
}

// Null returns a grammar equivalent to g restricted to the empty string:
// Eps-like when g accepts ε (carrying the same values), Void otherwise.
func Null(g *Grammar) *Grammar {
	switch g.op {
	case opEps:
		return epsG
	case opAlt:
		return Alt(Null(g.l), Null(g.r))
	case opCat:
		return Cat(Null(g.l), Null(g.r))
	case opStar:
		return Map(epsG, func(Value) Value { return []Value(nil) })
	case opMap:
		return Map(Null(g.l), g.f)
	default: // Char, Any, Void
		return voidG
	}
}

// Extract returns the semantic values g associates with the empty string.
func Extract(g *Grammar) []Value {
	if !g.nullable {
		return nil
	}
	switch g.op {
	case opEps:
		return []Value{Unit{}}
	case opStar:
		return []Value{[]Value(nil)}
	case opAlt:
		return append(Extract(g.l), Extract(g.r)...)
	case opCat:
		vs1 := Extract(g.l)
		if len(vs1) == 0 {
			return nil
		}
		vs2 := Extract(g.r)
		var out []Value
		for _, v1 := range vs1 {
			for _, v2 := range vs2 {
				out = append(out, Pair{v1, v2})
			}
		}
		return out
	case opMap:
		vs := Extract(g.l)
		out := make([]Value, len(vs))
		for i, v := range vs {
			out[i] = g.f(v)
		}
		return out
	default:
		return nil
	}
}

// IsVoid reports whether the grammar is the reduced Void (matches nothing).
// Because the smart constructors propagate Void, a derivative chain that
// can no longer match anything collapses to exactly this node.
func (g *Grammar) IsVoid() bool { return g.op == opVoid }

// DerivBits iterates Deriv over a bit string.
func DerivBits(g *Grammar, s []bool) *Grammar {
	for _, b := range s {
		g = Deriv(b, g)
		if g.op == opVoid {
			return voidG
		}
	}
	return g
}

// DerivByte iterates Deriv over the 8 bits of one byte, MSB first.
func DerivByte(g *Grammar, b byte) *Grammar {
	for i := 7; i >= 0; i-- {
		g = Deriv(b>>uint(i)&1 == 1, g)
		if g.op == opVoid {
			return voidG
		}
	}
	return g
}

// ErrNoParse is returned when the input cannot be matched by the grammar.
var ErrNoParse = errors.New("grammar: no parse")

// ErrAmbiguous is returned when a parse produces more than one semantic
// value; the x86 grammar is proven (checked) unambiguous, so seeing this
// signals a grammar bug, exactly the failure mode the paper describes for
// the flipped MOV bit.
var ErrAmbiguous = errors.New("grammar: ambiguous parse")

// ParseBytes matches the shortest prefix of input accepted by g, taking one
// byte-derivative at a time, and returns the unique semantic value together
// with the number of bytes consumed. For a prefix-free grammar (which the
// instruction grammar is checked to be) the shortest match is the only
// match. maxBytes bounds the search (x86 instructions are at most 15
// bytes); 0 means len(input).
func ParseBytes(g *Grammar, input []byte, maxBytes int) (Value, int, error) {
	if maxBytes <= 0 || maxBytes > len(input) {
		maxBytes = len(input)
	}
	cur := g
	for n := 0; n < maxBytes; n++ {
		cur = DerivByte(cur, input[n])
		if cur.op == opVoid {
			return nil, 0, fmt.Errorf("%w: dead after %d bytes", ErrNoParse, n+1)
		}
		if vs := Extract(cur); len(vs) > 0 {
			if len(vs) > 1 {
				return nil, 0, ErrAmbiguous
			}
			return vs[0], n + 1, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: input exhausted", ErrNoParse)
}

// ParseBits runs the derivative parser over a whole bit string, requiring
// the entire input to be consumed. It is the executable counterpart of the
// denotational semantics and is compared against Denote in tests (the
// adequacy theorem).
func ParseBits(g *Grammar, s []bool) ([]Value, error) {
	d := DerivBits(g, s)
	if d.op == opVoid {
		return nil, ErrNoParse
	}
	vs := Extract(d)
	if len(vs) == 0 {
		return nil, ErrNoParse
	}
	return vs, nil
}

package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the action-stripped regular expressions the paper
// compiles to DFAs (§3.2). Stripping the semantic actions makes equality
// decidable, which unlocks the Alt g g → g reduction; we go further and
// maintain a full ACI normal form (flattened, sorted, deduplicated Alt;
// flattened Cat; Void/Eps laws) with hash-consing, so that Brzozowski's
// finiteness theorem yields small state sets in practice (the paper's
// largest checker DFA has 61 states).

// Regex is an interned, ACI-normalized regular expression over bits.
// Regexes are created through a Ctx and compared by pointer.
type Regex struct {
	id       int
	op       rop
	bit      bool     // for rChar
	kids     []*Regex // for rCat (ordered) and rAlt (sorted by id)
	nullable bool
	derivs   [2]*Regex // memoized bit derivatives
}

type rop uint8

const (
	rVoid rop = iota
	rEps
	rChar
	rAny
	rCat
	rAlt
	rStar
)

// Ctx interns regexes; all construction goes through it. A Ctx is not safe
// for concurrent use; build DFAs up front (package init or cmd/dfagen).
type Ctx struct {
	table map[string]*Regex
	next  int

	Void *Regex
	Eps  *Regex
	R0   *Regex // Char 0
	R1   *Regex // Char 1
	Dot  *Regex // Any
}

// NewCtx creates an interning context with the shared leaves pre-made.
func NewCtx() *Ctx {
	c := &Ctx{table: make(map[string]*Regex)}
	c.Void = c.intern(&Regex{op: rVoid})
	c.Eps = c.intern(&Regex{op: rEps, nullable: true})
	c.R0 = c.intern(&Regex{op: rChar, bit: false})
	c.R1 = c.intern(&Regex{op: rChar, bit: true})
	c.Dot = c.intern(&Regex{op: rAny})
	return c
}

func (c *Ctx) key(r *Regex) string {
	var sb strings.Builder
	sb.WriteByte(byte('0' + r.op))
	if r.op == rChar {
		if r.bit {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	for _, k := range r.kids {
		fmt.Fprintf(&sb, ",%d", k.id)
	}
	return sb.String()
}

func (c *Ctx) intern(r *Regex) *Regex {
	k := c.key(r)
	if got, ok := c.table[k]; ok {
		return got
	}
	r.id = c.next
	c.next++
	c.table[k] = r
	return r
}

// Size reports how many distinct regex nodes have been interned.
func (c *Ctx) Size() int { return c.next }

// Char returns the single-bit literal.
func (c *Ctx) Char(b bool) *Regex {
	if b {
		return c.R1
	}
	return c.R0
}

// Cat builds normalized concatenation: flattens nested Cats, drops Eps,
// and annihilates on Void.
func (c *Ctx) Cat(rs ...*Regex) *Regex {
	var kids []*Regex
	for _, r := range rs {
		switch r.op {
		case rVoid:
			return c.Void
		case rEps:
			continue
		case rCat:
			kids = append(kids, r.kids...)
		default:
			kids = append(kids, r)
		}
	}
	switch len(kids) {
	case 0:
		return c.Eps
	case 1:
		return kids[0]
	}
	nullable := true
	for _, k := range kids {
		nullable = nullable && k.nullable
	}
	return c.intern(&Regex{op: rCat, kids: kids, nullable: nullable})
}

// Alt builds normalized alternation: flattens, removes Void, sorts by id
// and deduplicates (the ACI laws, including the paper's Alt g g → g).
func (c *Ctx) Alt(rs ...*Regex) *Regex {
	var kids []*Regex
	var add func(r *Regex)
	add = func(r *Regex) {
		if r.op == rVoid {
			return
		}
		if r.op == rAlt {
			for _, k := range r.kids {
				add(k)
			}
			return
		}
		kids = append(kids, r)
	}
	for _, r := range rs {
		add(r)
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].id < kids[j].id })
	out := kids[:0]
	for i, k := range kids {
		if i == 0 || kids[i-1] != k {
			out = append(out, k)
		}
	}
	kids = out
	switch len(kids) {
	case 0:
		return c.Void
	case 1:
		return kids[0]
	}
	nullable := false
	for _, k := range kids {
		nullable = nullable || k.nullable
	}
	cp := make([]*Regex, len(kids))
	copy(cp, kids)
	return c.intern(&Regex{op: rAlt, kids: cp, nullable: nullable})
}

// Star builds normalized iteration: Star Star g → Star g; Star of
// Void/Eps → Eps.
func (c *Ctx) Star(r *Regex) *Regex {
	switch r.op {
	case rStar:
		return r
	case rVoid, rEps:
		return c.Eps
	}
	return c.intern(&Regex{op: rStar, kids: []*Regex{r}, nullable: true})
}

// Nullable reports whether the regex accepts the empty string.
func (r *Regex) Nullable() bool { return r.nullable }

// IsVoid reports whether the regex is the canonical empty language.
func (r *Regex) IsVoid() bool { return r.op == rVoid }

// ID returns the regex's interning identity (stable within its Ctx).
func (r *Regex) ID() int { return r.id }

// Deriv computes the memoized Brzozowski derivative with respect to a bit.
func (c *Ctx) Deriv(r *Regex, b bool) *Regex {
	idx := 0
	if b {
		idx = 1
	}
	if d := r.derivs[idx]; d != nil {
		return d
	}
	var d *Regex
	switch r.op {
	case rVoid, rEps:
		d = c.Void
	case rChar:
		if r.bit == b {
			d = c.Eps
		} else {
			d = c.Void
		}
	case rAny:
		d = c.Eps
	case rCat:
		// d(r1 r2 … rn) = d(r1) r2…rn | [r1 nullable] d(r2 r3…rn)
		head := c.Deriv(r.kids[0], b)
		rest := c.Cat(r.kids[1:]...)
		d = c.Cat(append([]*Regex{head}, r.kids[1:]...)...)
		if r.kids[0].nullable {
			d = c.Alt(d, c.Deriv(rest, b))
		}
	case rAlt:
		parts := make([]*Regex, len(r.kids))
		for i, k := range r.kids {
			parts[i] = c.Deriv(k, b)
		}
		d = c.Alt(parts...)
	case rStar:
		d = c.Cat(c.Deriv(r.kids[0], b), r)
	}
	r.derivs[idx] = d
	return d
}

// DerivByte applies eight bit derivatives, MSB first.
func (c *Ctx) DerivByte(r *Regex, by byte) *Regex {
	for i := 7; i >= 0; i-- {
		r = c.Deriv(r, by>>uint(i)&1 == 1)
		if r.op == rVoid {
			return r
		}
	}
	return r
}

// Strip converts a grammar into its action-stripped regex, the first step
// of DFA compilation in §3.2.
func (c *Ctx) Strip(g *Grammar) *Regex {
	switch g.op {
	case opVoid:
		return c.Void
	case opEps:
		return c.Eps
	case opChar:
		return c.Char(g.bit)
	case opAny:
		return c.Dot
	case opCat:
		return c.Cat(c.Strip(g.l), c.Strip(g.r))
	case opAlt:
		return c.Alt(c.Strip(g.l), c.Strip(g.r))
	case opStar:
		return c.Star(c.Strip(g.l))
	case opMap:
		return c.Strip(g.l)
	default:
		panic("grammar: unknown op in Strip")
	}
}

// String renders the regex.
func (r *Regex) String() string {
	var sb strings.Builder
	r.render(&sb)
	return sb.String()
}

func (r *Regex) render(sb *strings.Builder) {
	switch r.op {
	case rVoid:
		sb.WriteString("∅")
	case rEps:
		sb.WriteString("ε")
	case rChar:
		if r.bit {
			sb.WriteString("1")
		} else {
			sb.WriteString("0")
		}
	case rAny:
		sb.WriteString(".")
	case rCat:
		for _, k := range r.kids {
			if k.op == rAlt {
				sb.WriteString("(")
				k.render(sb)
				sb.WriteString(")")
			} else {
				k.render(sb)
			}
		}
	case rAlt:
		sb.WriteString("(")
		for i, k := range r.kids {
			if i > 0 {
				sb.WriteString("|")
			}
			k.render(sb)
		}
		sb.WriteString(")")
	case rStar:
		if len(r.kids[0].kids) > 0 {
			sb.WriteString("(")
			r.kids[0].render(sb)
			sb.WriteString(")*")
		} else {
			r.kids[0].render(sb)
			sb.WriteString("*")
		}
	}
}

package grammar

// This file implements byte-equivalence-class compaction for byte-table
// automata, the first of the two classic regex-engine accelerations
// (RE2/Hyperscan style) layered onto the checker's fused product DFA.
// Two bytes are equivalent iff every state maps them to the same
// successor; the x86 policy grammars distinguish far fewer than 256
// byte columns, so the induced states×classes table is several times
// smaller than the raw states×256 table and fits comfortably in L1.
// The class map also underpins the two-stride (byte-pair) construction
// in internal/core, which needs a compact domain to enumerate.

// ByteClasses partitions the byte alphabet of a byte-transition table
// into equivalence classes: cls[b1] == cls[b2] iff table[s][b1] ==
// table[s][b2] for every state s. Classes are numbered by first
// occurrence in ascending byte order, so the map is deterministic for a
// given table and cls[0] is always 0. Returns the class map and the
// number of classes n (1 ≤ n ≤ 256); class ids are < n, so they fit the
// uint8 map for any input.
func ByteClasses(table [][256]uint16) (cls [256]uint8, n int) {
	// Column signature: the successor of every state on this byte.
	sig := make([]byte, 2*len(table))
	seen := make(map[string]uint8, 256)
	for b := 0; b < 256; b++ {
		for s := range table {
			v := table[s][b]
			sig[2*s] = byte(v)
			sig[2*s+1] = byte(v >> 8)
		}
		id, ok := seen[string(sig)]
		if !ok {
			id = uint8(len(seen))
			seen[string(sig)] = id
		}
		cls[b] = id
	}
	return cls, len(seen)
}

// CompactTable builds the states×classes table induced by a class map:
// compact[s*n+c] is the successor of state s on any byte of class c.
// The map must come from ByteClasses over the same table (every byte of
// a class has the same column), which VerifyByteClasses checks.
func CompactTable(table [][256]uint16, cls [256]uint8, n int) []uint16 {
	compact := make([]uint16, len(table)*n)
	for b := 0; b < 256; b++ {
		c := int(cls[b])
		for s := range table {
			compact[s*n+c] = table[s][b]
		}
	}
	return compact
}

// VerifyByteClasses checks that (cls, n) is a true byte-class partition
// of the table that refines every state row — i.e. class ids are dense
// in [0, n), every class is inhabited, and two bytes share a class iff
// every state maps them to the same successor — and that compact (when
// non-nil) is exactly the induced states×classes table. This is what a
// loader runs against deserialized class maps so a corrupt or stale
// bundle cannot silently desynchronize the compacted tables from the
// transition table they summarize.
func VerifyByteClasses(table [][256]uint16, cls [256]uint8, n int, compact []uint16) bool {
	if n < 1 || n > 256 {
		return false
	}
	inhabited := make([]bool, n)
	// Representative byte of each class, for the "same class ⇒ same
	// column" direction.
	rep := make([]int, n)
	for i := range rep {
		rep[i] = -1
	}
	for b := 0; b < 256; b++ {
		c := int(cls[b])
		if c >= n {
			return false
		}
		inhabited[c] = true
		if rep[c] < 0 {
			rep[c] = b
		}
		for s := range table {
			if table[s][b] != table[s][rep[c]] {
				return false
			}
		}
	}
	for _, ok := range inhabited {
		if !ok {
			return false
		}
	}
	// Distinct classes ⇒ distinct columns (the partition is no coarser
	// than column equality), checked pairwise over representatives.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same := true
			for s := range table {
				if table[s][rep[i]] != table[s][rep[j]] {
					same = false
					break
				}
			}
			if same {
				return false
			}
		}
	}
	if compact != nil {
		if len(compact) != len(table)*n {
			return false
		}
		for b := 0; b < 256; b++ {
			c := int(cls[b])
			for s := range table {
				if compact[s*n+c] != table[s][b] {
					return false
				}
			}
		}
	}
	return true
}

// Package grammar implements the paper's Decoder DSL: grammars over bits
// with semantic actions, a denotational reference semantics, Brzozowski
// derivatives with smart constructors, a derivative-based parser, DFA
// compilation for action-stripped grammars, and the generalized derivative
// used to decide unambiguity of star-free grammars.
//
// A Grammar denotes a relation between bit strings and semantic values,
// exactly as in §2.1 of the paper:
//
//	[[Char c]]    = {([c], c)}
//	[[Any]]       = ∪_c {([c], c)}
//	[[Eps]]       = {([], tt)}
//	[[Void]]      = ∅
//	[[Alt g1 g2]] = [[g1]] ∪ [[g2]]
//	[[Cat g1 g2]] = {(s1s2, (v1,v2)) | (si,vi) ∈ [[gi]]}
//	[[Map f g]]   = {(s, f v) | (s,v) ∈ [[g]]}
//	[[Star g]]    = lists of g-matches
//
// The paper's characters are bits: patterns are written at the bit level so
// that semantic actions never need shifts or masks. Bits within a byte are
// fed most-significant first, matching the Intel manual's table layout.
package grammar

import (
	"fmt"
	"strings"
)

// Value is a semantic value computed by a grammar. The Coq development uses
// type-indexed grammars; in Go the index is erased and actions are dynamic.
type Value = any

// Unit is the value of Eps, Coq's tt.
type Unit struct{}

// Pair is the value of Cat.
type Pair struct {
	Fst, Snd Value
}

// Grammar is the abstract syntax of the DSL, mirroring the paper's
// inductive type. Values of this type are immutable once built.
type Grammar struct {
	op       op
	bit      bool              // for opChar
	l, r     *Grammar          // children (r nil for unary)
	f        func(Value) Value // for opMap
	name     string            // optional label for opMap, used in String
	nullable bool              // accepts the empty string (cached)
}

type op uint8

const (
	opVoid op = iota
	opEps
	opChar
	opAny
	opCat
	opAlt
	opStar
	opMap
)

// Shared leaves: grammars are immutable, so these singletons are safe.
var (
	voidG = &Grammar{op: opVoid}
	epsG  = &Grammar{op: opEps, nullable: true}
	char0 = &Grammar{op: opChar, bit: false}
	char1 = &Grammar{op: opChar, bit: true}
	anyG  = &Grammar{op: opAny}
)

// Void is the grammar matching nothing.
func Void() *Grammar { return voidG }

// Eps matches the empty string and yields Unit.
func Eps() *Grammar { return epsG }

// Char matches exactly one bit and yields it as a bool.
func Char(b bool) *Grammar {
	if b {
		return char1
	}
	return char0
}

// Any matches any single bit and yields it as a bool.
func Any() *Grammar { return anyG }

// Cat is sequential composition; it yields Pair{v1, v2}. This constructor
// is "smart": Void annihilates, and Eps on either side is fused into a Map
// so that derivatives stay small (the paper's local reductions).
func Cat(g1, g2 *Grammar) *Grammar {
	switch {
	case g1.op == opVoid || g2.op == opVoid:
		return voidG
	case g1.op == opEps:
		return Map(g2, func(v Value) Value { return Pair{Unit{}, v} })
	case g2.op == opEps:
		return Map(g1, func(v Value) Value { return Pair{v, Unit{}} })
	}
	return &Grammar{op: opCat, l: g1, r: g2, nullable: g1.nullable && g2.nullable}
}

// Alt is alternation. Void children are eliminated (a smart constructor);
// the Alt g g → g reduction needs decidable equality and is performed only
// on action-stripped regexes (see regex.go), as in the paper.
func Alt(gs ...*Grammar) *Grammar {
	var acc *Grammar
	for _, g := range gs {
		if g.op == opVoid {
			continue
		}
		if acc == nil {
			acc = g
		} else {
			acc = &Grammar{op: opAlt, l: acc, r: g, nullable: acc.nullable || g.nullable}
		}
	}
	if acc == nil {
		return voidG
	}
	return acc
}

// Star matches zero or more occurrences, yielding a []Value.
func Star(g *Grammar) *Grammar {
	switch g.op {
	case opStar:
		return g
	case opVoid, opEps:
		return Map(epsG, func(Value) Value { return []Value(nil) })
	}
	return &Grammar{op: opStar, l: g, nullable: true}
}

// Map applies a semantic action, the paper's g @ f. Nested maps are fused
// so derivative towers stay shallow.
func Map(g *Grammar, f func(Value) Value) *Grammar {
	if g.op == opVoid {
		return voidG
	}
	if g.op == opMap {
		inner := g.f
		base := g.l
		return &Grammar{op: opMap, l: base, f: func(v Value) Value { return f(inner(v)) }, nullable: base.nullable}
	}
	return &Grammar{op: opMap, l: g, f: f, nullable: g.nullable}
}

// Named attaches a diagnostic label to a grammar (visible in String).
func Named(name string, g *Grammar) *Grammar {
	return &Grammar{op: opMap, l: g, f: func(v Value) Value { return v }, name: name, nullable: g.nullable}
}

// Then is the paper's g1 $$ g2: sequence, keeping only g2's value.
func Then(g1, g2 *Grammar) *Grammar {
	return Map(Cat(g1, g2), func(v Value) Value { return v.(Pair).Snd })
}

// ThenFst sequences two grammars, keeping only g1's value.
func ThenFst(g1, g2 *Grammar) *Grammar {
	return Map(Cat(g1, g2), func(v Value) Value { return v.(Pair).Fst })
}

// Bits matches the literal bit pattern written as a string of '0' and '1'
// (most significant bit first, as in the Intel manual tables and the
// paper's "1110" $$ "1000" notation). It yields Unit. Spaces and
// underscores may be used as visual separators.
func Bits(pattern string) *Grammar {
	g := epsG
	first := true
	for _, c := range pattern {
		var bit *Grammar
		switch c {
		case '0':
			bit = char0
		case '1':
			bit = char1
		case ' ', '_':
			continue
		default:
			panic(fmt.Sprintf("grammar: bad bit pattern %q", pattern))
		}
		if first {
			g = bit
			first = false
		} else {
			g = Then(g, bit)
		}
	}
	return Map(g, func(Value) Value { return Unit{} })
}

// Field matches n arbitrary bits (MSB first) and yields them as a uint64.
// It is used for register fields, mod/rm bits, scale fields, etc.
func Field(n int) *Grammar {
	if n < 1 || n > 64 {
		panic("grammar: Field width out of range")
	}
	g := anyG
	for i := 1; i < n; i++ {
		g = Cat(g, anyG)
	}
	// The value tree is left-nested pairs of bools; fold it to an integer.
	return Map(g, func(v Value) Value {
		var fold func(Value) (uint64, int)
		fold = func(v Value) (uint64, int) {
			switch x := v.(type) {
			case bool:
				if x {
					return 1, 1
				}
				return 0, 1
			case Pair:
				hi, nh := fold(x.Fst)
				lo, nl := fold(x.Snd)
				return hi<<uint(nl) | lo, nh + nl
			default:
				panic("grammar: Field folding non-bit value")
			}
		}
		r, _ := fold(v)
		return r
	})
}

// BitsValue matches the literal n-bit pattern for value v (MSB first),
// yielding Unit. It is the paper's bitslist(int_to_bools …) helper.
func BitsValue(n int, v uint64) *Grammar {
	var sb strings.Builder
	for i := n - 1; i >= 0; i-- {
		if v>>uint(i)&1 == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return Bits(sb.String())
}

// AnyByte matches 8 arbitrary bits, yielding the byte value (uint64).
func AnyByte() *Grammar { return Field(8) }

// LitByte matches one literal byte (bits MSB first), yielding Unit.
func LitByte(b byte) *Grammar { return BitsValue(8, uint64(b)) }

// UnsignedLE matches n little-endian bytes and yields the unsigned integer
// they encode as a uint64. Within each byte, bits are MSB first; across
// bytes, the least significant byte comes first, which is how x86 encodes
// immediates and displacements.
func UnsignedLE(nbytes int) *Grammar {
	if nbytes < 1 || nbytes > 8 {
		panic("grammar: UnsignedLE size out of range")
	}
	g := AnyByte()
	for i := 1; i < nbytes; i++ {
		g = Cat(g, AnyByte())
	}
	return Map(g, func(v Value) Value {
		// Left-nested pairs: ((b0, b1), b2)... b0 is the first (lowest) byte.
		bytes := make([]uint64, 0, nbytes)
		var walk func(Value)
		walk = func(v Value) {
			switch x := v.(type) {
			case Pair:
				walk(x.Fst)
				walk(x.Snd)
			case uint64:
				bytes = append(bytes, x)
			default:
				panic("grammar: UnsignedLE folding non-byte")
			}
		}
		walk(v)
		var r uint64
		for i := len(bytes) - 1; i >= 0; i-- {
			r = r<<8 | bytes[i]
		}
		return r
	})
}

// Word matches a 32-bit little-endian immediate, the paper's `word`.
func Word() *Grammar { return UnsignedLE(4) }

// Halfword matches a 16-bit little-endian immediate, the paper's `halfword`.
func Halfword() *Grammar { return UnsignedLE(2) }

// Option matches either g or the empty string; the value is g's value or
// nil for the empty case.
func Option(g *Grammar) *Grammar {
	return Alt(
		Map(g, func(v Value) Value { return v }),
		Map(epsG, func(Value) Value { return nil }),
	)
}

// String renders the grammar's shape (actions are opaque).
func (g *Grammar) String() string {
	var sb strings.Builder
	g.render(&sb, 0)
	return sb.String()
}

func (g *Grammar) render(sb *strings.Builder, depth int) {
	if depth > 12 {
		sb.WriteString("…")
		return
	}
	switch g.op {
	case opVoid:
		sb.WriteString("∅")
	case opEps:
		sb.WriteString("ε")
	case opChar:
		if g.bit {
			sb.WriteString("1")
		} else {
			sb.WriteString("0")
		}
	case opAny:
		sb.WriteString(".")
	case opCat:
		sb.WriteString("(")
		g.l.render(sb, depth+1)
		sb.WriteString(" · ")
		g.r.render(sb, depth+1)
		sb.WriteString(")")
	case opAlt:
		sb.WriteString("(")
		g.l.render(sb, depth+1)
		sb.WriteString(" | ")
		g.r.render(sb, depth+1)
		sb.WriteString(")")
	case opStar:
		g.l.render(sb, depth+1)
		sb.WriteString("*")
	case opMap:
		if g.name != "" {
			sb.WriteString(g.name)
			return
		}
		g.l.render(sb, depth+1)
		sb.WriteString("@f")
	}
}

// minLen returns the length of the shortest string in [[g]], or -1 when
// the language is empty. maxLen returns the longest, with -2 meaning
// unbounded (Star) and -1 empty. These bounds prune the Cat splits in
// Denote, keeping the oracle usable on byte-sized inputs.
func minLen(g *Grammar) int {
	switch g.op {
	case opVoid:
		return -1
	case opEps, opStar:
		return 0
	case opChar, opAny:
		return 1
	case opCat:
		a, b := minLen(g.l), minLen(g.r)
		if a < 0 || b < 0 {
			return -1
		}
		return a + b
	case opAlt:
		a, b := minLen(g.l), minLen(g.r)
		switch {
		case a < 0:
			return b
		case b < 0:
			return a
		case a < b:
			return a
		default:
			return b
		}
	case opMap:
		return minLen(g.l)
	default:
		return -1
	}
}

func maxLen(g *Grammar) int {
	switch g.op {
	case opVoid:
		return -1
	case opEps:
		return 0
	case opChar, opAny:
		return 1
	case opStar:
		if m := maxLen(g.l); m == 0 || m == -1 {
			return 0
		}
		return -2
	case opCat:
		a, b := maxLen(g.l), maxLen(g.r)
		if a == -1 || b == -1 {
			return -1
		}
		if a == -2 || b == -2 {
			return -2
		}
		return a + b
	case opAlt:
		a, b := maxLen(g.l), maxLen(g.r)
		switch {
		case a == -1:
			return b
		case b == -1:
			return a
		case a == -2 || b == -2:
			return -2
		case a > b:
			return a
		default:
			return b
		}
	case opMap:
		return maxLen(g.l)
	default:
		return -1
	}
}

func lenCompatible(g *Grammar, n int) bool {
	mn := minLen(g)
	if mn < 0 || n < mn {
		return false
	}
	mx := maxLen(g)
	return mx == -2 || n <= mx
}

// Denote computes the denotational semantics restricted to one input
// string: the (finite) set of values v with (s, v) ∈ [[g]]. It is the
// executable form of the paper's inductively defined predicate, used as
// the specification oracle in property tests. It is exponential in the
// worst case and intended only for short strings.
func Denote(g *Grammar, s []bool) []Value {
	if !lenCompatible(g, len(s)) {
		return nil
	}
	switch g.op {
	case opVoid:
		return nil
	case opEps:
		if len(s) == 0 {
			return []Value{Unit{}}
		}
		return nil
	case opChar:
		if len(s) == 1 && s[0] == g.bit {
			return []Value{g.bit}
		}
		return nil
	case opAny:
		if len(s) == 1 {
			return []Value{s[0]}
		}
		return nil
	case opAlt:
		return append(Denote(g.l, s), Denote(g.r, s)...)
	case opCat:
		var out []Value
		for i := 0; i <= len(s); i++ {
			vs1 := Denote(g.l, s[:i])
			if len(vs1) == 0 {
				continue
			}
			vs2 := Denote(g.r, s[i:])
			for _, v1 := range vs1 {
				for _, v2 := range vs2 {
					out = append(out, Pair{v1, v2})
				}
			}
		}
		return out
	case opMap:
		vs := Denote(g.l, s)
		out := make([]Value, len(vs))
		for i, v := range vs {
			out[i] = g.f(v)
		}
		return out
	case opStar:
		if len(s) == 0 {
			return []Value{[]Value(nil)}
		}
		var out []Value
		// First iteration must consume at least one bit, or recursion
		// would not terminate; [[Star g]] on a non-empty string always
		// has a non-empty first chunk.
		for i := 1; i <= len(s); i++ {
			vs1 := Denote(g.l, s[:i])
			if len(vs1) == 0 {
				continue
			}
			rests := Denote(g, s[i:])
			for _, v1 := range vs1 {
				for _, rest := range rests {
					out = append(out, append([]Value{v1}, rest.([]Value)...))
				}
			}
		}
		return out
	default:
		panic("grammar: unknown op")
	}
}

// InDenotation reports whether s is in the domain of [[g]].
func InDenotation(g *Grammar, s []bool) bool { return len(Denote(g, s)) > 0 }

// BytesToBits expands bytes into bits, most significant bit of each byte
// first — the order in which the decoder consumes input.
func BytesToBits(bs []byte) []bool {
	out := make([]bool, 0, len(bs)*8)
	for _, b := range bs {
		for i := 7; i >= 0; i-- {
			out = append(out, b>>uint(i)&1 == 1)
		}
	}
	return out
}

// BitsToBytes packs bits (MSB first per byte) into bytes; it panics if the
// bit count is not a multiple of 8.
func BitsToBytes(bits []bool) []byte {
	if len(bits)%8 != 0 {
		panic("grammar: bit string not byte aligned")
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

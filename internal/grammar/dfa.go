package grammar

import (
	"errors"
	"fmt"
)

// This file implements §3.2: compiling action-stripped regexes to DFAs by
// iterated Brzozowski derivatives. Each reachable derivative becomes a
// state; interning plus the smart constructors' reductions guarantee the
// set of derivatives is finite (Brzozowski 1964). Byte-level tables are
// produced for the checker's match routine (Figure 6), and a bit-level
// automaton is kept for meta-theoretic checks (prefix-freedom) and for the
// ablation comparing bit- vs byte-granularity.

// DFA is a byte-transition automaton in the exact shape consumed by the
// paper's Figure-6 match routine: a start state, accepting and rejecting
// flags, and a dense 256-way transition table.
type DFA struct {
	Start   int
	Accepts []bool
	Rejects []bool // state matches nothing, ever (derivative is Void)
	Table   [][256]uint16
	States  []*Regex // state i's regex (diagnostics, inversion tests)
}

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.Table) }

// ErrTooManyStates is returned when DFA construction exceeds its bound.
var ErrTooManyStates = errors.New("grammar: DFA construction exceeded state bound")

// CompileDFA builds the byte-level DFA for r. Each byte transition is the
// composition of eight bit derivatives (MSB first). maxStates bounds the
// construction; 0 means a generous default.
func (c *Ctx) CompileDFA(r *Regex, maxStates int) (*DFA, error) {
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	if maxStates > 1<<16 {
		return nil, fmt.Errorf("grammar: maxStates %d exceeds uint16 table entries", maxStates)
	}
	index := map[*Regex]int{r: 0}
	states := []*Regex{r}
	var table [][256]uint16
	for i := 0; i < len(states); i++ {
		var row [256]uint16
		for b := 0; b < 256; b++ {
			d := c.DerivByte(states[i], byte(b))
			j, ok := index[d]
			if !ok {
				j = len(states)
				if j >= maxStates {
					return nil, ErrTooManyStates
				}
				index[d] = j
				states = append(states, d)
			}
			row[b] = uint16(j)
		}
		table = append(table, row)
	}
	accepts := make([]bool, len(states))
	rejects := make([]bool, len(states))
	for i, s := range states {
		accepts[i] = s.nullable
		rejects[i] = s.op == rVoid
	}
	return &DFA{Start: 0, Accepts: accepts, Rejects: rejects, Table: table, States: states}, nil
}

// BitDFA is the automaton over single bits, used for state-count ablations
// and the prefix-freedom check.
type BitDFA struct {
	Start   int
	Accepts []bool
	Rejects []bool
	Next    [][2]int
	States  []*Regex
}

// NumStates returns the number of bit-DFA states.
func (d *BitDFA) NumStates() int { return len(d.Next) }

// CompileBitDFA builds the bit-level DFA for r.
func (c *Ctx) CompileBitDFA(r *Regex, maxStates int) (*BitDFA, error) {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	index := map[*Regex]int{r: 0}
	states := []*Regex{r}
	var next [][2]int
	for i := 0; i < len(states); i++ {
		var row [2]int
		for b := 0; b < 2; b++ {
			d := c.Deriv(states[i], b == 1)
			j, ok := index[d]
			if !ok {
				j = len(states)
				if j >= maxStates {
					return nil, ErrTooManyStates
				}
				index[d] = j
				states = append(states, d)
			}
			row[b] = j
		}
		next = append(next, row)
	}
	accepts := make([]bool, len(states))
	rejects := make([]bool, len(states))
	for i, s := range states {
		accepts[i] = s.nullable
		rejects[i] = s.op == rVoid
	}
	return &BitDFA{Start: 0, Accepts: accepts, Rejects: rejects, Next: next, States: states}, nil
}

// PrefixFree reports whether no accepted string is a proper prefix of
// another accepted string: no accepting state reaches an accepting state by
// a non-empty path. This is the executable form of the paper's
// "no instruction's bit pattern is a prefix of another instruction's bit
// pattern" (§4.1).
func (d *BitDFA) PrefixFree() bool {
	// canReachAccept[i]: some path of length >= 0 from i hits an accepting
	// state. Computed by reverse reachability from accepting states.
	rev := make([][]int, len(d.Next))
	for i, row := range d.Next {
		for _, j := range row {
			rev[j] = append(rev[j], i)
		}
	}
	reach := make([]bool, len(d.Next))
	var stack []int
	for i, a := range d.Accepts {
		if a {
			reach[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[n] {
			if !reach[p] {
				reach[p] = true
				stack = append(stack, p)
			}
		}
	}
	for i, a := range d.Accepts {
		if !a {
			continue
		}
		for _, j := range d.Next[i] {
			if reach[j] {
				return false
			}
		}
	}
	return true
}

// Intersects decides whether L(r1) ∩ L(r2) is non-empty by exploring the
// product of the two derivative automata. This is the emptiness test the
// paper's unambiguity reflection relies on.
func (c *Ctx) Intersects(r1, r2 *Regex) bool {
	type pair struct{ a, b int }
	seen := map[pair]bool{}
	var stack [][2]*Regex
	push := func(a, b *Regex) {
		if a.op == rVoid || b.op == rVoid {
			return
		}
		p := pair{a.id, b.id}
		if !seen[p] {
			seen[p] = true
			stack = append(stack, [2]*Regex{a, b})
		}
	}
	push(r1, r2)
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if top[0].nullable && top[1].nullable {
			return true
		}
		for _, bit := range []bool{false, true} {
			push(c.Deriv(top[0], bit), c.Deriv(top[1], bit))
		}
	}
	return false
}

// ErrNotStarFree is returned by DerivBy when the second grammar contains
// Star; the paper's generalized-derivative procedure "only succeeds on
// star-free grammars".
var ErrNotStarFree = errors.New("grammar: generalized derivative requires a star-free grammar")

// DerivBy computes the paper's generalized derivative (§4.1):
//
//	Deriv g by = {s2 | ∃s1. s1 ∈ [[by]] ∧ s1·s2 ∈ [[g]]}
//
// When the result is Void, no string of g has a prefix (including itself)
// in by. The `by` argument must be star-free.
func (c *Ctx) DerivBy(g, by *Regex) (*Regex, error) {
	switch by.op {
	case rEps:
		return g, nil
	case rVoid:
		return c.Void, nil
	case rChar:
		return c.Deriv(g, by.bit), nil
	case rAny:
		// The alphabet is binary, so DrvAny is the exact union of the two
		// bit derivatives.
		return c.Alt(c.Deriv(g, false), c.Deriv(g, true)), nil
	case rAlt:
		acc := c.Void
		for _, k := range by.kids {
			d, err := c.DerivBy(g, k)
			if err != nil {
				return nil, err
			}
			acc = c.Alt(acc, d)
		}
		return acc, nil
	case rCat:
		cur := g
		for _, k := range by.kids {
			d, err := c.DerivBy(cur, k)
			if err != nil {
				return nil, err
			}
			cur = d
			if cur.op == rVoid {
				return cur, nil
			}
		}
		return cur, nil
	case rStar:
		return nil, ErrNotStarFree
	default:
		panic("grammar: unknown rop in DerivBy")
	}
}

// PrefixDisjoint reports whether g1 and g2 are mutually prefix-disjoint:
// no string of either language is a prefix (proper or not) of a string of
// the other. Both must be star-free.
func (c *Ctx) PrefixDisjoint(g1, g2 *Regex) (bool, error) {
	d12, err := c.DerivBy(g1, g2)
	if err != nil {
		return false, err
	}
	if !d12.IsVoid() {
		return false, nil
	}
	d21, err := c.DerivBy(g2, g1)
	if err != nil {
		return false, err
	}
	return d21.IsVoid(), nil
}

// AmbiguityError reports the first overlapping pair of alternatives found
// by CheckUnambiguous.
type AmbiguityError struct {
	Left, Right *Regex
}

func (e *AmbiguityError) Error() string {
	return fmt.Sprintf("grammar: overlapping alternatives: %s vs %s", e.Left, e.Right)
}

// CheckUnambiguous is the paper's reflection procedure: "We simply
// recursively descend into the grammar, and each time we encounter an Alt,
// check that the intersection of the two sub-grammars is empty." Maximal
// Alt chains are flattened and every pair of alternatives is checked for
// language disjointness. The grammar is first action-stripped into ctx.
func CheckUnambiguous(c *Ctx, g *Grammar) error {
	return checkUnambiguous(c, g, make(map[*Grammar]bool))
}

func checkUnambiguous(c *Ctx, g *Grammar, seen map[*Grammar]bool) error {
	if seen[g] {
		return nil
	}
	seen[g] = true
	switch g.op {
	case opAlt:
		alts := flattenAlt(g, nil)
		regs := make([]*Regex, len(alts))
		for i, a := range alts {
			regs[i] = c.Strip(a)
		}
		for i := 0; i < len(regs); i++ {
			for j := i + 1; j < len(regs); j++ {
				if c.Intersects(regs[i], regs[j]) {
					return &AmbiguityError{Left: regs[i], Right: regs[j]}
				}
			}
		}
		for _, a := range alts {
			if err := checkUnambiguous(c, a, seen); err != nil {
				return err
			}
		}
	case opCat:
		if err := checkUnambiguous(c, g.l, seen); err != nil {
			return err
		}
		return checkUnambiguous(c, g.r, seen)
	case opStar, opMap:
		return checkUnambiguous(c, g.l, seen)
	}
	return nil
}

func flattenAlt(g *Grammar, acc []*Grammar) []*Grammar {
	if g.op == opAlt {
		acc = flattenAlt(g.l, acc)
		return flattenAlt(g.r, acc)
	}
	return append(acc, g)
}

package grammar

import (
	"math/rand"
	"testing"
)

// A tiny table whose byte classes are known by construction: state 0
// distinguishes bytes by their low 2 bits, state 1 by bit 7, so the
// partition is (low 2 bits, bit 7) with 8 classes.
func classTestTable() [][256]uint16 {
	table := make([][256]uint16, 3)
	for b := 0; b < 256; b++ {
		table[0][b] = uint16(b & 3)
		table[1][b] = uint16(b >> 7)
		table[2][b] = 2
	}
	return table
}

func TestByteClassesKnownPartition(t *testing.T) {
	table := classTestTable()
	cls, n := ByteClasses(table)
	if n != 8 {
		t.Fatalf("expected 8 classes, got %d", n)
	}
	for b1 := 0; b1 < 256; b1++ {
		for b2 := 0; b2 < 256; b2++ {
			want := b1&3 == b2&3 && b1>>7 == b2>>7
			if (cls[b1] == cls[b2]) != want {
				t.Fatalf("bytes %#x,%#x: class equality %v, want %v", b1, b2, cls[b1] == cls[b2], want)
			}
		}
	}
	if cls[0] != 0 {
		t.Fatalf("class ids must be numbered by first occurrence; cls[0]=%d", cls[0])
	}
	if !VerifyByteClasses(table, cls, n, CompactTable(table, cls, n)) {
		t.Fatal("VerifyByteClasses rejected its own construction")
	}
}

func TestByteClassesPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ns := 1 + rng.Intn(12)
		table := make([][256]uint16, ns)
		// Few distinct columns so classes merge; successor values bounded
		// by the state count.
		for b := 0; b < 256; b++ {
			col := rng.Intn(6)
			for s := 0; s < ns; s++ {
				table[s][b] = uint16((col + s) % ns)
			}
		}
		cls, n := ByteClasses(table)
		compact := CompactTable(table, cls, n)
		if !VerifyByteClasses(table, cls, n, compact) {
			t.Fatalf("trial %d: verification failed", trial)
		}
		// Every byte's column must equal its class representative's column
		// in the compacted table.
		for b := 0; b < 256; b++ {
			for s := 0; s < ns; s++ {
				if compact[s*n+int(cls[b])] != table[s][b] {
					t.Fatalf("trial %d: compact[%d][%d] != table[%d][%#x]", trial, s, cls[b], s, b)
				}
			}
		}
	}
}

func TestVerifyByteClassesRejectsCorruption(t *testing.T) {
	table := classTestTable()
	cls, n := ByteClasses(table)
	compact := CompactTable(table, cls, n)

	// Merging two distinct classes must be rejected (coarser than column
	// equality).
	bad := cls
	for b := 0; b < 256; b++ {
		if bad[b] == 1 {
			bad[b] = 0
		}
	}
	if VerifyByteClasses(table, bad, n, nil) {
		t.Fatal("accepted a class map that merges distinct columns")
	}

	// Splitting one class in two must be rejected (not refining: two ids,
	// same column — and with n unchanged, some id is uninhabited or out of
	// range).
	bad = cls
	bad[0] = uint8(n - 1)
	if bad[0] == cls[0] {
		t.Skip("degenerate: single class")
	}
	if VerifyByteClasses(table, bad, n, nil) {
		t.Fatal("accepted a class map that splits a column across ids")
	}

	// Out-of-range id.
	bad = cls
	bad[5] = uint8(n)
	if VerifyByteClasses(table, bad, n, nil) {
		t.Fatal("accepted an out-of-range class id")
	}

	// Corrupt compacted table.
	compact[3] ^= 1
	if VerifyByteClasses(table, cls, n, compact) {
		t.Fatal("accepted a corrupt compacted table")
	}
}

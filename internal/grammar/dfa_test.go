package grammar

import (
	"math/rand"
	"testing"
)

func TestStripAndNormalize(t *testing.T) {
	c := NewCtx()
	r1 := c.Strip(Alt(Bits("10"), Bits("10")))
	r2 := c.Strip(Bits("10"))
	if r1 != r2 {
		t.Fatal("Alt g g must normalize to g after stripping")
	}
	// Alt is commutative after normalization.
	a := c.Alt(c.Strip(Bits("10")), c.Strip(Bits("01")))
	b := c.Alt(c.Strip(Bits("01")), c.Strip(Bits("10")))
	if a != b {
		t.Fatal("Alt must be commutative under interning")
	}
	if c.Cat(c.Eps, c.R1) != c.R1 {
		t.Fatal("Cat with Eps must reduce")
	}
	if c.Cat(c.Void, c.R1) != c.Void {
		t.Fatal("Cat with Void must annihilate")
	}
	if c.Star(c.Star(c.R1)) != c.Star(c.R1) {
		t.Fatal("Star Star reduces")
	}
	if c.Star(c.Eps) != c.Eps || c.Star(c.Void) != c.Eps {
		t.Fatal("Star of Eps/Void is Eps")
	}
}

func TestRegexDeriv(t *testing.T) {
	c := NewCtx()
	r := c.Strip(Bits("10"))
	d1 := c.Deriv(r, true)
	if d1 == c.Void {
		t.Fatal("deriv by 1 live")
	}
	if c.Deriv(r, false) != c.Void {
		t.Fatal("deriv by 0 dead")
	}
	d2 := c.Deriv(d1, false)
	if d2 != c.Eps {
		t.Fatalf("full match must reach Eps, got %v", d2)
	}
	// Memoization returns identical pointers.
	if c.Deriv(r, true) != d1 {
		t.Fatal("derivative must be memoized")
	}
}

// TestDFAAgainstDenotation is the executable Theorem 2: the generated DFA
// accepts exactly the prefix-closed reading of the regex's language.
func TestDFAAgainstDenotation(t *testing.T) {
	grammars := []*Grammar{
		Bits("10101010"),
		Alt(LitByte(0x90), LitByte(0xcc)),
		Then(LitByte(0xe8), AnyByte()),
		Cat(AnyByte(), LitByte(0x00)),
		Alt(LitByte(0x01), Then(LitByte(0x0f), LitByte(0xaf))),
	}
	c := NewCtx()
	rng := rand.New(rand.NewSource(3))
	for gi, g := range grammars {
		r := c.Strip(g)
		dfa, err := c.CompileDFA(r, 0)
		if err != nil {
			t.Fatalf("grammar %d: %v", gi, err)
		}
		for trial := 0; trial < 500; trial++ {
			n := rng.Intn(4)
			bs := make([]byte, n)
			rng.Read(bs)
			// Walk the DFA.
			st := dfa.Start
			for _, b := range bs {
				st = int(dfa.Table[st][b])
			}
			got := dfa.Accepts[st]
			want := InDenotation(g, BytesToBits(bs))
			if got != want {
				t.Fatalf("grammar %d on % x: dfa=%v denotation=%v", gi, bs, got, want)
			}
			if dfa.Rejects[st] {
				// A rejecting state must have an empty residual language:
				// no extension may be accepted.
				if want {
					t.Fatalf("grammar %d: rejecting state accepts", gi)
				}
			}
		}
	}
}

func TestDFARejectStateIsSink(t *testing.T) {
	c := NewCtx()
	dfa, err := c.CompileDFA(c.Strip(LitByte(0x90)), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dfa.Table {
		if !dfa.Rejects[i] {
			continue
		}
		for b := 0; b < 256; b++ {
			if !dfa.Rejects[dfa.Table[i][b]] {
				t.Fatal("rejecting states must be closed under transitions")
			}
		}
	}
}

func TestBitDFAPrefixFree(t *testing.T) {
	c := NewCtx()
	pf := c.Strip(Alt(LitByte(0x90), LitByte(0xcc)))
	d, err := c.CompileBitDFA(pf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.PrefixFree() {
		t.Fatal("two distinct single bytes are prefix-free")
	}
	notPf := c.Strip(Alt(LitByte(0x90), Then(LitByte(0x90), LitByte(0x01))))
	d2, err := c.CompileBitDFA(notPf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2.PrefixFree() {
		t.Fatal("0x90 is a prefix of 0x90 0x01")
	}
}

func TestIntersects(t *testing.T) {
	c := NewCtx()
	a := c.Strip(LitByte(0x90))
	b := c.Strip(LitByte(0xcc))
	if c.Intersects(a, b) {
		t.Fatal("distinct literals must not intersect")
	}
	if !c.Intersects(a, a) {
		t.Fatal("language intersects itself")
	}
	anyB := c.Strip(AnyByte())
	if !c.Intersects(a, anyB) {
		t.Fatal("literal intersects wildcard")
	}
	// ε-option vs literal: {ε} ∩ {0x66} = ∅.
	opt := c.Strip(Option(LitByte(0x66)))
	eps := c.Eps
	if c.Intersects(eps, c.Strip(LitByte(0x66))) {
		t.Fatal("ε does not intersect a byte literal")
	}
	if !c.Intersects(opt, eps) {
		t.Fatal("option includes ε")
	}
}

func TestDerivBy(t *testing.T) {
	c := NewCtx()
	// g = "10 11", by = "10": residual must be "11".
	g := c.Strip(Bits("1011"))
	by := c.Strip(Bits("10"))
	d, err := c.DerivBy(g, by)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Strip(Bits("11"))
	if d != want {
		t.Fatalf("DerivBy = %v, want %v", d, want)
	}
	// by not a prefix: residual Void.
	d2, err := c.DerivBy(g, c.Strip(Bits("01")))
	if err != nil {
		t.Fatal(err)
	}
	if !d2.IsVoid() {
		t.Fatalf("DerivBy with non-prefix = %v, want Void", d2)
	}
	// Star in `by` is rejected.
	if _, err := c.DerivBy(g, c.Star(c.R1)); err == nil {
		t.Fatal("DerivBy must reject Star")
	}
	// Any in `by` is the exact union over bits.
	d3, err := c.DerivBy(c.Strip(Bits("10")), c.Dot)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != c.R0 {
		t.Fatalf("DerivBy by Any = %v, want 0", d3)
	}
}

func TestDerivByCharacterization(t *testing.T) {
	// Property: s2 ∈ DerivBy(g, by) iff ∃s1 ∈ by with s1·s2 ∈ g —
	// checked by sampling over small languages.
	c := NewCtx()
	g := Alt(Bits("1011"), Bits("0111"), Bits("10"))
	by := Alt(Bits("10"), Bits("01"))
	dg, err := c.DerivBy(c.Strip(g), c.Strip(by))
	if err != nil {
		t.Fatal(err)
	}
	dfa, err := c.CompileBitDFA(dg, 0)
	if err != nil {
		t.Fatal(err)
	}
	inD := func(s []bool) bool {
		st := dfa.Start
		for _, b := range s {
			i := 0
			if b {
				i = 1
			}
			st = dfa.Next[st][i]
		}
		return dfa.Accepts[st]
	}
	// Enumerate all bit strings up to length 4 and compare.
	for n := 0; n <= 4; n++ {
		for mask := 0; mask < 1<<n; mask++ {
			s2 := make([]bool, n)
			for i := 0; i < n; i++ {
				s2[i] = mask>>i&1 == 1
			}
			want := false
			for m := 0; m <= 4 && !want; m++ {
				for pm := 0; pm < 1<<m && !want; pm++ {
					s1 := make([]bool, m)
					for i := 0; i < m; i++ {
						s1[i] = pm>>i&1 == 1
					}
					if InDenotation(by, s1) && InDenotation(g, append(append([]bool{}, s1...), s2...)) {
						want = true
					}
				}
			}
			if got := inD(s2); got != want {
				t.Fatalf("DerivBy characterization fails on %v: got %v want %v", s2, got, want)
			}
		}
	}
}

func TestPrefixDisjoint(t *testing.T) {
	c := NewCtx()
	a := c.Strip(LitByte(0x90))
	b := c.Strip(LitByte(0xcc))
	ok, err := c.PrefixDisjoint(a, b)
	if err != nil || !ok {
		t.Fatalf("distinct bytes must be prefix-disjoint: %v %v", ok, err)
	}
	pre := c.Strip(Then(LitByte(0x90), LitByte(0x01)))
	ok, err = c.PrefixDisjoint(pre, a)
	if err != nil || ok {
		t.Fatalf("0x90 is a prefix of 0x90 0x01: %v %v", ok, err)
	}
}

func TestCheckUnambiguous(t *testing.T) {
	c := NewCtx()
	good := Alt(LitByte(0x01), LitByte(0x02), Then(LitByte(0x0f), AnyByte()))
	if err := CheckUnambiguous(c, good); err != nil {
		t.Fatalf("disjoint alternatives flagged: %v", err)
	}
	// The paper's flipped-MOV-bit scenario: two alternatives overlap.
	bad := Alt(LitByte(0x88), Alt(LitByte(0x88), LitByte(0x89)))
	if err := CheckUnambiguous(c, bad); err == nil {
		t.Fatal("overlapping alternatives must be detected")
	}
	// Overlap via wildcard.
	bad2 := Alt(AnyByte(), LitByte(0x90))
	if err := CheckUnambiguous(c, bad2); err == nil {
		t.Fatal("wildcard overlap must be detected")
	}
}

func TestDFAStateCountSmall(t *testing.T) {
	// The normalization must keep policy-sized DFAs tiny (paper: 61 states
	// for the largest of the three checker DFAs).
	c := NewCtx()
	g := Alt(
		Then(LitByte(0x83), Then(LitByte(0xe0), LitByte(0xe0))),
		Then(LitByte(0xff), LitByte(0xe0)),
	)
	dfa, err := c.CompileDFA(c.Strip(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := dfa.NumStates(); n > 10 {
		t.Fatalf("tiny grammar exploded to %d states", n)
	}
}

func TestCompileDFAStateBound(t *testing.T) {
	c := NewCtx()
	if _, err := c.CompileDFA(c.Strip(Word()), 2); err == nil {
		t.Fatal("state bound must be enforced")
	}
}

package grammar

import "math/rand"

// This file implements the paper's generative use of grammars (§2.5):
// "Using our generative grammar, we randomly produce byte sequences that
// correspond to instructions we have specified." Sampling a grammar yields
// a (bit string, semantic value) pair drawn from its denotation, which the
// fuzzer feeds back through the decoder.

// Sampler draws random members of a grammar's denotation.
type Sampler struct {
	rng        *rand.Rand
	productive map[*Grammar]bool
	alts       map[*Grammar][]*Grammar
}

// NewSampler creates a sampler using the given random source.
func NewSampler(rng *rand.Rand) *Sampler {
	return &Sampler{
		rng:        rng,
		productive: make(map[*Grammar]bool),
		alts:       make(map[*Grammar][]*Grammar),
	}
}

// flatAlts returns the productive leaves of a maximal Alt chain, memoized.
func (s *Sampler) flatAlts(g *Grammar) []*Grammar {
	if v, ok := s.alts[g]; ok {
		return v
	}
	var out []*Grammar
	var walk func(*Grammar)
	walk = func(n *Grammar) {
		if n.op == opAlt {
			walk(n.l)
			walk(n.r)
			return
		}
		if s.Productive(n) {
			out = append(out, n)
		}
	}
	walk(g)
	s.alts[g] = out
	return out
}

// Productive reports whether g's language is non-empty.
func (s *Sampler) Productive(g *Grammar) bool {
	if v, ok := s.productive[g]; ok {
		return v
	}
	// Grammars are finite trees (no recursion except Star, which is always
	// productive), so a plain recursive walk terminates.
	var v bool
	switch g.op {
	case opVoid:
		v = false
	case opEps, opChar, opAny, opStar:
		v = true
	case opCat:
		v = s.Productive(g.l) && s.Productive(g.r)
	case opAlt:
		v = s.Productive(g.l) || s.Productive(g.r)
	case opMap:
		v = s.Productive(g.l)
	}
	s.productive[g] = v
	return v
}

// Sample draws one (bit string, value) pair uniformly-ish from [[g]]. The
// second return is false when the language is empty.
func (s *Sampler) Sample(g *Grammar) ([]bool, Value, bool) {
	if !s.Productive(g) {
		return nil, nil, false
	}
	bits, v := s.sample(g)
	return bits, v, true
}

func (s *Sampler) sample(g *Grammar) ([]bool, Value) {
	switch g.op {
	case opEps:
		return nil, Unit{}
	case opChar:
		return []bool{g.bit}, g.bit
	case opAny:
		b := s.rng.Intn(2) == 1
		return []bool{b}, b
	case opCat:
		s1, v1 := s.sample(g.l)
		s2, v2 := s.sample(g.r)
		return append(s1, s2...), Pair{v1, v2}
	case opAlt:
		// Alt chains are flattened and sampled uniformly across all
		// alternatives; sampling the binary tree directly would weight
		// the last alternative of an n-way choice with probability 1/2.
		alts := s.flatAlts(g)
		return s.sample(alts[s.rng.Intn(len(alts))])
	case opStar:
		var bits []bool
		var vals []Value
		for s.Productive(g.l) && s.rng.Intn(2) == 0 {
			sb, v := s.sample(g.l)
			if len(sb) == 0 {
				break // avoid spinning on a nullable body
			}
			bits = append(bits, sb...)
			vals = append(vals, v)
		}
		return bits, vals
	case opMap:
		sb, v := s.sample(g.l)
		return sb, g.f(v)
	default:
		panic("grammar: sampling Void")
	}
}

// SampleBytes draws a sample whose bit length is a multiple of 8 and packs
// it into bytes, retrying up to tries times (instruction grammars are
// byte-aligned by construction, so the first try normally succeeds).
func (s *Sampler) SampleBytes(g *Grammar, tries int) ([]byte, Value, bool) {
	for i := 0; i < tries; i++ {
		bits, v, ok := s.Sample(g)
		if !ok {
			return nil, nil, false
		}
		if len(bits)%8 == 0 {
			return BitsToBytes(bits), v, true
		}
	}
	return nil, nil, false
}

package grammar

import (
	"math/rand"
	"reflect"
	"testing"
)

// bitsOf parses "1010" into a bit slice.
func bitsOf(s string) []bool {
	var out []bool
	for _, c := range s {
		switch c {
		case '0':
			out = append(out, false)
		case '1':
			out = append(out, true)
		}
	}
	return out
}

func TestDenoteLeaves(t *testing.T) {
	if vs := Denote(Eps(), nil); len(vs) != 1 {
		t.Fatal("Eps must match empty")
	}
	if vs := Denote(Eps(), bitsOf("0")); len(vs) != 0 {
		t.Fatal("Eps must not match non-empty")
	}
	if vs := Denote(Void(), nil); len(vs) != 0 {
		t.Fatal("Void matches nothing")
	}
	if vs := Denote(Char(true), bitsOf("1")); len(vs) != 1 || vs[0] != true {
		t.Fatal("Char(1) must match '1' yielding true")
	}
	if vs := Denote(Char(true), bitsOf("0")); len(vs) != 0 {
		t.Fatal("Char(1) must not match '0'")
	}
	if vs := Denote(Any(), bitsOf("0")); len(vs) != 1 || vs[0] != false {
		t.Fatal("Any must match any single bit")
	}
}

func TestDenoteCatAltStar(t *testing.T) {
	g := Cat(Char(true), Char(false)) // "10"
	if !InDenotation(g, bitsOf("10")) {
		t.Fatal("cat must match 10")
	}
	if InDenotation(g, bitsOf("11")) || InDenotation(g, bitsOf("1")) {
		t.Fatal("cat must reject others")
	}
	a := Alt(Bits("10"), Bits("01"))
	if !InDenotation(a, bitsOf("10")) || !InDenotation(a, bitsOf("01")) {
		t.Fatal("alt must match both branches")
	}
	st := Star(Bits("10"))
	for _, s := range []string{"", "10", "1010", "101010"} {
		if !InDenotation(st, bitsOf(s)) {
			t.Fatalf("star must match %q", s)
		}
	}
	if InDenotation(st, bitsOf("1")) || InDenotation(st, bitsOf("100")) {
		t.Fatal("star must reject non-multiples")
	}
}

func TestBitsHelperAndThen(t *testing.T) {
	// The paper's "1110" $$ "1000" (the CALL rel32 opcode 0xE8).
	g := Then(Bits("1110"), Bits("1000"))
	if !InDenotation(g, BytesToBits([]byte{0xe8})) {
		t.Fatal("must match 0xe8")
	}
	if InDenotation(g, BytesToBits([]byte{0xe9})) {
		t.Fatal("must reject 0xe9")
	}
}

func TestFieldValue(t *testing.T) {
	g := Field(3)
	vs := Denote(g, bitsOf("101"))
	if len(vs) != 1 || vs[0].(uint64) != 5 {
		t.Fatalf("Field(3) on 101 = %v, want 5", vs)
	}
	vs = Denote(Field(8), BytesToBits([]byte{0xa7}))
	if len(vs) != 1 || vs[0].(uint64) != 0xa7 {
		t.Fatalf("Field(8) = %v, want 0xa7", vs)
	}
}

func TestUnsignedLE(t *testing.T) {
	vs := Denote(Word(), BytesToBits([]byte{0x78, 0x56, 0x34, 0x12}))
	if len(vs) != 1 || vs[0].(uint64) != 0x12345678 {
		t.Fatalf("Word = %v, want 0x12345678", vs)
	}
	vs = Denote(Halfword(), BytesToBits([]byte{0xcd, 0xab}))
	if len(vs) != 1 || vs[0].(uint64) != 0xabcd {
		t.Fatalf("Halfword = %v, want 0xabcd", vs)
	}
}

func TestBitsValue(t *testing.T) {
	g := BitsValue(5, 0b10110)
	if !InDenotation(g, bitsOf("10110")) {
		t.Fatal("BitsValue must match its pattern")
	}
	if InDenotation(g, bitsOf("10111")) {
		t.Fatal("BitsValue must reject other patterns")
	}
}

func TestOption(t *testing.T) {
	g := Option(Bits("11"))
	if !InDenotation(g, nil) || !InDenotation(g, bitsOf("11")) {
		t.Fatal("Option must match empty and the pattern")
	}
	if InDenotation(g, bitsOf("1")) {
		t.Fatal("Option must reject partial")
	}
}

func TestMapTransformsValues(t *testing.T) {
	g := Map(Field(4), func(v Value) Value { return v.(uint64) * 2 })
	vs := Denote(g, bitsOf("0111"))
	if len(vs) != 1 || vs[0].(uint64) != 14 {
		t.Fatalf("Map = %v, want 14", vs)
	}
}

func TestDerivBasic(t *testing.T) {
	g := Bits("10")
	d := Deriv(true, g)
	if d.IsVoid() {
		t.Fatal("deriv of '10' by 1 must not be void")
	}
	if !Deriv(false, g).IsVoid() {
		t.Fatal("deriv of '10' by 0 must be void")
	}
	d2 := Deriv(false, d)
	vs := Extract(d2)
	if len(vs) != 1 {
		t.Fatalf("extract after full match = %v", vs)
	}
}

func TestNullAndExtract(t *testing.T) {
	if len(Extract(Null(Star(Char(true))))) != 1 {
		t.Fatal("null of star accepts empty")
	}
	if !Null(Char(true)).IsVoid() {
		t.Fatal("null of char is void")
	}
	if len(Extract(Eps())) != 1 {
		t.Fatal("extract of eps")
	}
	if len(Extract(Char(true))) != 0 {
		t.Fatal("extract of char must be empty")
	}
}

// TestAdequacy is the executable form of the paper's adequacy result: the
// derivative parser computes exactly the denotational parse set.
func TestAdequacy(t *testing.T) {
	grammars := []*Grammar{
		Bits("1010"),
		Alt(Bits("10"), Bits("01"), Bits("0011")),
		Cat(Field(3), Bits("1")),
		Star(Bits("10")),
		Then(Bits("11"), Field(2)),
		Option(Bits("110")),
		Cat(Star(Char(true)), Char(false)),
		Map(Cat(Any(), Any()), func(v Value) Value { return v.(Pair) }),
	}
	rng := rand.New(rand.NewSource(42))
	for gi, g := range grammars {
		for trial := 0; trial < 300; trial++ {
			n := rng.Intn(8)
			s := make([]bool, n)
			for i := range s {
				s[i] = rng.Intn(2) == 1
			}
			want := Denote(g, s)
			got, err := ParseBits(g, s)
			if len(want) == 0 {
				if err == nil {
					t.Fatalf("grammar %d: parser accepted %v but denotation rejects", gi, s)
				}
				continue
			}
			if err != nil {
				t.Fatalf("grammar %d: parser rejected %v but denotation accepts: %v", gi, s, err)
			}
			if len(got) != len(want) {
				t.Fatalf("grammar %d on %v: parser %d values, denotation %d", gi, s, len(got), len(want))
			}
			// Compare as multisets via reflect.DeepEqual on sorted-ish
			// rendering; for these grammars single values are typical.
			if len(got) == 1 && !reflect.DeepEqual(got[0], want[0]) {
				t.Fatalf("grammar %d on %v: value %#v vs %#v", gi, s, got[0], want[0])
			}
		}
	}
}

// TestSampleInDenotation checks the generative reading: every sample the
// sampler draws really is in the grammar's denotation with the same value.
func TestSampleInDenotation(t *testing.T) {
	grammars := []*Grammar{
		Bits("1010"),
		Alt(Bits("10"), Bits("01")),
		Cat(Field(3), Bits("1")),
		Option(Bits("110")),
		Then(Bits("1110"), Field(4)),
	}
	s := NewSampler(rand.New(rand.NewSource(1)))
	for gi, g := range grammars {
		for trial := 0; trial < 200; trial++ {
			bits, v, ok := s.Sample(g)
			if !ok {
				t.Fatalf("grammar %d: sampler says empty language", gi)
			}
			vs := Denote(g, bits)
			found := false
			for _, w := range vs {
				if reflect.DeepEqual(v, w) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("grammar %d: sampled (%v, %#v) not in denotation %v", gi, bits, v, vs)
			}
		}
	}
}

func TestSamplerVoid(t *testing.T) {
	s := NewSampler(rand.New(rand.NewSource(1)))
	if _, _, ok := s.Sample(Void()); ok {
		t.Fatal("Void must not be sampleable")
	}
	if _, _, ok := s.Sample(Cat(Void(), Bits("1"))); ok {
		t.Fatal("Cat with Void must not be sampleable")
	}
	if _, _, ok := s.Sample(Alt(Void(), Bits("1"))); !ok {
		t.Fatal("Alt with one live branch must be sampleable")
	}
}

func TestParseBytesShortestMatch(t *testing.T) {
	// 0xE8 followed by a 32-bit immediate.
	g := Then(LitByte(0xe8), Word())
	input := []byte{0xe8, 0x04, 0x03, 0x02, 0x01, 0x99, 0x99}
	v, n, err := ParseBytes(g, input, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("consumed %d bytes, want 5", n)
	}
	if v.(uint64) != 0x01020304 {
		t.Fatalf("value %#x, want 0x01020304", v)
	}
}

func TestParseBytesRejects(t *testing.T) {
	g := LitByte(0xe8)
	if _, _, err := ParseBytes(g, []byte{0xe9}, 0); err == nil {
		t.Fatal("wrong byte must fail")
	}
	if _, _, err := ParseBytes(g, nil, 0); err == nil {
		t.Fatal("empty input must fail")
	}
}

func TestBytesBitsRoundTrip(t *testing.T) {
	in := []byte{0x00, 0xff, 0xa5, 0x12}
	if got := BitsToBytes(BytesToBits(in)); !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip = %v", got)
	}
}

func TestSmartConstructors(t *testing.T) {
	if !Cat(Void(), Bits("1")).IsVoid() || !Cat(Bits("1"), Void()).IsVoid() {
		t.Fatal("Cat must annihilate on Void")
	}
	if !Alt(Void(), Void()).IsVoid() {
		t.Fatal("Alt of Voids is Void")
	}
	if Alt(Void(), Char(true)).op != opChar {
		t.Fatal("Alt must drop Void branches")
	}
	if Star(Star(Char(true))) != Star(Char(true)) && Star(Star(Char(true))).op != opStar {
		t.Fatal("Star collapses")
	}
	if Map(Void(), func(v Value) Value { return v }).op != opVoid {
		t.Fatal("Map over Void is Void")
	}
}

func TestNamedString(t *testing.T) {
	g := Named("word", Word())
	if got := g.String(); got != "word" {
		t.Fatalf("Named string = %q", got)
	}
	if Bits("10").String() == "" {
		t.Fatal("String must render")
	}
}

package grammar

// This file implements DFA minimization (Hopcroft's partition refinement)
// and language-equivalence checking for the bit-level automata. The paper
// observes that the Brzozowski construction with smart-constructor
// reductions yields DFAs small enough that "we do not need to worry about
// further minimization"; Minimize lets the test suite verify that claim
// quantitatively, and Equivalent underpins the checks that table
// transformations preserve the language.

// MinimizeBitDFA returns an equivalent bit-DFA with the minimal number of
// states (unreachable states dropped, indistinguishable states merged).
// The accepting/rejecting structure is recomputed: a state of the result
// rejects iff no accepting state is reachable from it.
func MinimizeBitDFA(d *BitDFA) *BitDFA {
	n := d.NumStates()
	// Reachable states from the start.
	reach := make([]bool, n)
	stack := []int{d.Start}
	reach[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range d.Next[s] {
			if !reach[t] {
				reach[t] = true
				stack = append(stack, t)
			}
		}
	}

	// Initial partition: accepting vs non-accepting (reachable only).
	part := make([]int, n) // state -> block id
	for i := range part {
		part[i] = -1
	}
	for i := 0; i < n; i++ {
		if !reach[i] {
			continue
		}
		if d.Accepts[i] {
			part[i] = 1
		} else {
			part[i] = 0
		}
	}
	blocks := 2
	// Moore-style refinement (simple and fast enough at these sizes:
	// policy DFAs have tens of states, the full grammar ~1000).
	for {
		type sig struct{ b, t0, t1 int }
		next := make(map[sig]int)
		newPart := make([]int, n)
		copy(newPart, part)
		newBlocks := 0
		for i := 0; i < n; i++ {
			if part[i] < 0 {
				continue
			}
			k := sig{part[i], part[d.Next[i][0]], part[d.Next[i][1]]}
			id, ok := next[k]
			if !ok {
				id = newBlocks
				newBlocks++
				next[k] = id
			}
			newPart[i] = id
		}
		if newBlocks == blocks {
			part = newPart
			break
		}
		part = newPart
		blocks = newBlocks
	}

	out := &BitDFA{
		Start:   part[d.Start],
		Accepts: make([]bool, blocks),
		Rejects: make([]bool, blocks),
		Next:    make([][2]int, blocks),
	}
	for i := 0; i < n; i++ {
		if part[i] < 0 {
			continue
		}
		b := part[i]
		out.Accepts[b] = d.Accepts[i]
		out.Next[b] = [2]int{part[d.Next[i][0]], part[d.Next[i][1]]}
	}
	// Recompute rejecting states: blocks from which no accepting block is
	// reachable.
	canAccept := make([]bool, blocks)
	changed := true
	for changed {
		changed = false
		for b := 0; b < blocks; b++ {
			if canAccept[b] {
				continue
			}
			if out.Accepts[b] || canAccept[out.Next[b][0]] || canAccept[out.Next[b][1]] {
				canAccept[b] = true
				changed = true
			}
		}
	}
	for b := 0; b < blocks; b++ {
		out.Rejects[b] = !canAccept[b]
	}
	return out
}

// SubsetOfBitDFAs reports whether L(a) ⊆ L(b): no reachable product state
// is accepting in a but not in b. This is the executable form of the
// paper's §4.1 language-containment lemmas (each policy expression's
// language is contained in the x86 grammar's).
func SubsetOfBitDFAs(a, b *BitDFA) bool {
	type pair struct{ x, y int }
	seen := map[pair]bool{}
	stack := []pair{{a.Start, b.Start}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.Accepts[p.x] && !b.Accepts[p.y] {
			return false
		}
		for bit := 0; bit < 2; bit++ {
			q := pair{a.Next[p.x][bit], b.Next[p.y][bit]}
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	return true
}

// EquivalentBitDFAs reports whether two bit-DFAs accept the same
// language, by searching the product automaton for a state pair that
// disagrees on acceptance.
func EquivalentBitDFAs(a, b *BitDFA) bool {
	type pair struct{ x, y int }
	seen := map[pair]bool{}
	stack := []pair{{a.Start, b.Start}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.Accepts[p.x] != b.Accepts[p.y] {
			return false
		}
		for bit := 0; bit < 2; bit++ {
			q := pair{a.Next[p.x][bit], b.Next[p.y][bit]}
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	return true
}

package grammar

// This file implements DFA minimization (Hopcroft's partition refinement)
// and language-equivalence checking for the bit-level automata. The paper
// observes that the Brzozowski construction with smart-constructor
// reductions yields DFAs small enough that "we do not need to worry about
// further minimization"; Minimize lets the test suite verify that claim
// quantitatively, and Equivalent underpins the checks that table
// transformations preserve the language.

// MinimizeBitDFA returns an equivalent bit-DFA with the minimal number of
// states (unreachable states dropped, indistinguishable states merged).
// The accepting/rejecting structure is recomputed: a state of the result
// rejects iff no accepting state is reachable from it.
func MinimizeBitDFA(d *BitDFA) *BitDFA {
	n := d.NumStates()
	// Reachable states from the start.
	reach := make([]bool, n)
	stack := []int{d.Start}
	reach[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range d.Next[s] {
			if !reach[t] {
				reach[t] = true
				stack = append(stack, t)
			}
		}
	}

	// Initial partition: accepting vs non-accepting (reachable only).
	part := make([]int, n) // state -> block id
	for i := range part {
		part[i] = -1
	}
	for i := 0; i < n; i++ {
		if !reach[i] {
			continue
		}
		if d.Accepts[i] {
			part[i] = 1
		} else {
			part[i] = 0
		}
	}
	blocks := 2
	// Moore-style refinement (simple and fast enough at these sizes:
	// policy DFAs have tens of states, the full grammar ~1000).
	for {
		type sig struct{ b, t0, t1 int }
		next := make(map[sig]int)
		newPart := make([]int, n)
		copy(newPart, part)
		newBlocks := 0
		for i := 0; i < n; i++ {
			if part[i] < 0 {
				continue
			}
			k := sig{part[i], part[d.Next[i][0]], part[d.Next[i][1]]}
			id, ok := next[k]
			if !ok {
				id = newBlocks
				newBlocks++
				next[k] = id
			}
			newPart[i] = id
		}
		if newBlocks == blocks {
			part = newPart
			break
		}
		part = newPart
		blocks = newBlocks
	}

	out := &BitDFA{
		Start:   part[d.Start],
		Accepts: make([]bool, blocks),
		Rejects: make([]bool, blocks),
		Next:    make([][2]int, blocks),
	}
	for i := 0; i < n; i++ {
		if part[i] < 0 {
			continue
		}
		b := part[i]
		out.Accepts[b] = d.Accepts[i]
		out.Next[b] = [2]int{part[d.Next[i][0]], part[d.Next[i][1]]}
	}
	// Recompute rejecting states: blocks from which no accepting block is
	// reachable.
	canAccept := make([]bool, blocks)
	changed := true
	for changed {
		changed = false
		for b := 0; b < blocks; b++ {
			if canAccept[b] {
				continue
			}
			if out.Accepts[b] || canAccept[out.Next[b][0]] || canAccept[out.Next[b][1]] {
				canAccept[b] = true
				changed = true
			}
		}
	}
	for b := 0; b < blocks; b++ {
		out.Rejects[b] = !canAccept[b]
	}
	return out
}

// MinimizeTaggedDFA minimizes a byte-transition automaton whose states
// carry opaque tag bytes instead of accept/reject booleans — the shape
// of the checker's fused product automaton, where a tag packs the
// accept/live status of every component DFA. Unreachable states are
// dropped and states are merged exactly when they have equal tags and
// lead to mergeable successors on every byte, so every walk through the
// minimized automaton observes the identical tag sequence. The result
// is deterministic (block ids are assigned in first-occurrence order
// over ascending state ids), which the serialized-table regeneration
// guard relies on.
func MinimizeTaggedDFA(start int, tags []uint8, table [][256]uint16) (newStart int, newTags []uint8, newTable [][256]uint16) {
	n := len(table)
	// Reachability from the start, exploring bytes in ascending order so
	// discovery order is deterministic.
	reach := make([]bool, n)
	reach[start] = true
	stack := []int{start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for b := 0; b < 256; b++ {
			t := int(table[s][b])
			if !reach[t] {
				reach[t] = true
				stack = append(stack, t)
			}
		}
	}

	// Initial partition: one block per distinct tag byte, numbered by
	// first occurrence.
	part := make([]int, n) // state -> block id; -1 = unreachable
	for i := range part {
		part[i] = -1
	}
	tagBlock := map[uint8]int{}
	blocks := 0
	for i := 0; i < n; i++ {
		if !reach[i] {
			continue
		}
		id, ok := tagBlock[tags[i]]
		if !ok {
			id = blocks
			blocks++
			tagBlock[tags[i]] = id
		}
		part[i] = id
	}

	// Moore refinement: split blocks by the 256-successor-block
	// signature until stable. The fused automata are a few hundred
	// states, so the simple quadratic-ish refinement is instant.
	sig := make([]byte, 2+2*256)
	for {
		next := map[string]int{}
		newPart := make([]int, n)
		copy(newPart, part)
		newBlocks := 0
		for i := 0; i < n; i++ {
			if part[i] < 0 {
				continue
			}
			sig[0] = byte(part[i])
			sig[1] = byte(part[i] >> 8)
			for b := 0; b < 256; b++ {
				t := part[table[i][b]]
				sig[2+2*b] = byte(t)
				sig[3+2*b] = byte(t >> 8)
			}
			id, ok := next[string(sig)]
			if !ok {
				id = newBlocks
				newBlocks++
				next[string(sig)] = id
			}
			newPart[i] = id
		}
		part = newPart
		if newBlocks == blocks {
			break
		}
		blocks = newBlocks
	}

	newTags = make([]uint8, blocks)
	newTable = make([][256]uint16, blocks)
	for i := 0; i < n; i++ {
		if part[i] < 0 {
			continue
		}
		b := part[i]
		newTags[b] = tags[i]
		for c := 0; c < 256; c++ {
			newTable[b][c] = uint16(part[table[i][c]])
		}
	}
	return part[start], newTags, newTable
}

// SubsetOfBitDFAs reports whether L(a) ⊆ L(b): no reachable product state
// is accepting in a but not in b. This is the executable form of the
// paper's §4.1 language-containment lemmas (each policy expression's
// language is contained in the x86 grammar's).
func SubsetOfBitDFAs(a, b *BitDFA) bool {
	type pair struct{ x, y int }
	seen := map[pair]bool{}
	stack := []pair{{a.Start, b.Start}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.Accepts[p.x] && !b.Accepts[p.y] {
			return false
		}
		for bit := 0; bit < 2; bit++ {
			q := pair{a.Next[p.x][bit], b.Next[p.y][bit]}
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	return true
}

// EquivalentBitDFAs reports whether two bit-DFAs accept the same
// language, by searching the product automaton for a state pair that
// disagrees on acceptance.
func EquivalentBitDFAs(a, b *BitDFA) bool {
	type pair struct{ x, y int }
	seen := map[pair]bool{}
	stack := []pair{{a.Start, b.Start}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.Accepts[p.x] != b.Accepts[p.y] {
			return false
		}
		for bit := 0; bit < 2; bit++ {
			q := pair{a.Next[p.x][bit], b.Next[p.y][bit]}
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	return true
}

package bitset_test

import (
	"math/rand"
	"testing"

	"rocksalt/internal/bitset"
)

func TestSetGetAgainstBools(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 16384} {
		s := bitset.New(n)
		ref := make([]bool, n)
		for k := 0; k < n/2+1 && n > 0; k++ {
			i := rng.Intn(n)
			s.Set(i)
			ref[i] = true
		}
		if s.Len() != n {
			t.Fatalf("Len = %d, want %d", s.Len(), n)
		}
		count := 0
		for i, want := range ref {
			if s.Get(i) != want {
				t.Fatalf("n=%d: Get(%d) = %v, want %v", n, i, s.Get(i), want)
			}
			if want {
				count++
			}
		}
		if s.Count() != count {
			t.Fatalf("n=%d: Count = %d, want %d", n, s.Count(), count)
		}
		bools := s.Bools()
		if len(bools) != n {
			t.Fatalf("Bools length %d, want %d", len(bools), n)
		}
		for i := range bools {
			if bools[i] != ref[i] {
				t.Fatalf("Bools[%d] = %v, want %v", i, bools[i], ref[i])
			}
		}
	}
}

func TestResetClearsAndReuses(t *testing.T) {
	s := bitset.New(128)
	s.Set(0)
	s.Set(127)
	s.Reset(128)
	if s.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
	// Shrinking then growing within capacity must still be fully clear.
	s.Set(64)
	s.Reset(64)
	s.Reset(128)
	if s.Get(64) {
		t.Fatal("Reset leaked a bit from a larger previous length")
	}
	allocs := testing.AllocsPerRun(50, func() { s.Reset(100) })
	if allocs != 0 {
		t.Fatalf("Reset within capacity allocated %.1f times", allocs)
	}
}

// Package bitset implements packed fixed-length bit vectors for the
// verification engine's boundary maps. The engine used to allocate two
// full-image []bool slices per run; a Set stores the same information in
// 1/8 the memory, clears in 1/8 the time, and — because it is reused
// through the engine's scratch pool — makes steady-state verification
// allocation-free.
//
// Concurrency contract: distinct goroutines may mutate a Set without
// synchronization only if they own disjoint *word* ranges (bit indices
// that never share an index/64). The engine's shard decomposition
// guarantees this: shards start at multiples of ShardBytes, which is a
// multiple of 64.
package bitset

import mathbits "math/bits"

const wordBits = 64

// Set is a fixed-length packed bit vector. The zero value is an empty
// set of length 0; Reset gives it a length.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set of n bits, all clear.
func New(n int) *Set {
	s := &Set{}
	s.Reset(n)
	return s
}

// Reset resizes the set to n bits and clears every bit, reusing the
// backing array whenever it is large enough.
func (s *Set) Reset(n int) {
	words := (n + wordBits - 1) / wordBits
	if cap(s.words) < words {
		s.words = make([]uint64, words)
	} else {
		s.words = s.words[:words]
		clear(s.words)
	}
	s.n = n
}

// Resize sets the length to n bits, preserving the bits below
// min(Len, n) — unlike Reset, which clears. Bits at indices >= n are
// cleared, so a shrink followed by a grow never resurrects stale bits
// and Count stays exact. The delta verifier uses it to keep retained
// boundary bitmaps across image size changes.
func (s *Set) Resize(n int) {
	words := (n + wordBits - 1) / wordBits
	switch old := len(s.words); {
	case words <= old:
		s.words = s.words[:words]
	case cap(s.words) >= words:
		s.words = s.words[:words]
		clear(s.words[old:])
	default:
		w := make([]uint64, words)
		copy(w, s.words)
		s.words = w
	}
	if words > 0 && n%wordBits != 0 {
		s.words[words-1] &= 1<<(uint(n)%wordBits) - 1
	}
	s.n = n
}

// Len returns the length in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i. It panics if i is out of range (via the bounds check
// on the word slice for i >= roundup(n); callers index within Len).
func (s *Set) Set(i int) {
	s.words[uint(i)/wordBits] |= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set.
func (s *Set) Get(i int) bool {
	return s.words[uint(i)/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Words exposes the backing word slice (bit i lives at words[i/64], bit
// i%64). Hot loops that set many monotonically increasing bits use it to
// buffer a whole word in a register instead of read-modify-writing
// memory per bit; the concurrency contract above applies unchanged.
func (s *Set) Words() []uint64 { return s.words }

// ClearRange clears bits [lo, hi). lo must be a multiple of 64 and the
// caller must own every word the range touches (the word containing
// hi-1 is cleared in full up to the set's length); the engine uses it
// to discard a shard's optimistic writes before re-parsing.
func (s *Set) ClearRange(lo, hi int) {
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return
	}
	clear(s.words[uint(lo)/wordBits : (uint(hi)+wordBits-1)/wordBits])
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += mathbits.OnesCount64(w)
	}
	return c
}

// Bools expands the set into a freshly allocated []bool of length
// Len() — the compatibility bridge to the engine's public Analyze
// signatures, which predate the packed representation.
func (s *Set) Bools() []bool {
	out := make([]bool, s.n)
	for i := range out {
		if s.words[uint(i)/wordBits]&(1<<(uint(i)%wordBits)) != 0 {
			out[i] = true
		}
	}
	return out
}

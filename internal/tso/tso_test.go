package tso

import (
	"math/rand"
	"testing"

	"rocksalt/internal/x86"
)

// Shared-memory addresses used by the litmus tests (well away from code).
const (
	locX = 0x10000
	locY = 0x20000
)

// movToMem assembles mov dword [addr], imm.
func movToMem(addr, imm uint32) []byte {
	out := []byte{0xc7, 0x05, byte(addr), byte(addr >> 8), byte(addr >> 16), byte(addr >> 24)}
	return append(out, byte(imm), byte(imm>>8), byte(imm>>16), byte(imm>>24))
}

// movFromMem assembles mov eax, [addr] (or another register via the moffs
// trick being EAX-only, we use 8B /r with disp32).
func movFromMem(r x86.Reg, addr uint32) []byte {
	return []byte{0x8b, byte(r)<<3 | 0x05, byte(addr), byte(addr >> 8), byte(addr >> 16), byte(addr >> 24)}
}

func hlt() []byte { return []byte{0xf4} }

// xchgMem assembles xchg eax, dword [addr].
func xchgMem(addr uint32) []byte {
	return []byte{0x87, 0x05, byte(addr), byte(addr >> 8), byte(addr >> 16), byte(addr >> 24)}
}

func cat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// sbSystem builds the store-buffering litmus test:
//
//	CPU0: [X] = 1; eax = [Y]
//	CPU1: [Y] = 1; eax = [X]
//
// Under sequential consistency at least one CPU reads 1; under TSO both
// may read 0.
func sbSystem() *System {
	sys := NewSystem(2)
	sys.LoadCode(0, 0x100, cat(movToMem(locX, 1), movFromMem(x86.EAX, locY), hlt()))
	sys.LoadCode(1, 0x800, cat(movToMem(locY, 1), movFromMem(x86.EAX, locX), hlt()))
	return sys
}

func TestStoreBufferingVisibleUnderTSO(t *testing.T) {
	// The canonical interleaving: both stores sit in the buffers while
	// both loads read shared memory.
	sys := sbSystem()
	sys.RunSchedule([]Event{{CPU: 0}, {CPU: 1}, {CPU: 0}, {CPU: 1}})
	r0 := sys.CPUs[0].State.Regs[x86.EAX]
	r1 := sys.CPUs[1].State.Regs[x86.EAX]
	if r0 != 0 || r1 != 0 {
		t.Fatalf("expected the TSO-only outcome r0=r1=0, got %d/%d", r0, r1)
	}
	// Both stores must still have reached memory in the end (coherence).
	if sys.Shared.Load(locX) != 1 || sys.Shared.Load(locY) != 1 {
		t.Fatal("stores lost after drain")
	}
}

func TestStoreBufferingImpossibleUnderSC(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		sys := sbSystem()
		sys.RunSC(rng, 100)
		r0 := sys.CPUs[0].State.Regs[x86.EAX]
		r1 := sys.CPUs[1].State.Regs[x86.EAX]
		if r0 == 0 && r1 == 0 {
			t.Fatalf("trial %d: r0=r1=0 under sequential consistency", trial)
		}
	}
}

func TestStoreBufferingOutcomeDistribution(t *testing.T) {
	// Random TSO schedules must reach both the SC-looking outcomes and
	// the TSO-only one.
	rng := rand.New(rand.NewSource(1))
	sawZeroZero, sawOther := false, false
	for trial := 0; trial < 300; trial++ {
		sys := sbSystem()
		sys.RunSchedule(RandomSchedule(rng, 2, 8, 0.3))
		r0 := sys.CPUs[0].State.Regs[x86.EAX]
		r1 := sys.CPUs[1].State.Regs[x86.EAX]
		if r0 == 0 && r1 == 0 {
			sawZeroZero = true
		} else {
			sawOther = true
		}
	}
	if !sawZeroZero || !sawOther {
		t.Fatalf("schedule exploration too weak: zerozero=%v other=%v", sawZeroZero, sawOther)
	}
}

// TestMessagePassing: TSO does not reorder a CPU's own stores, so a
// flag/data handshake is safe without fences.
func TestMessagePassing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sawHandshake := false
	for trial := 0; trial < 300; trial++ {
		sys := NewSystem(2)
		// CPU0: data = 42; flag = 1.
		sys.LoadCode(0, 0x100, cat(movToMem(locX, 42), movToMem(locY, 1), hlt()))
		// CPU1: eax = [flag]; ebx = [data].
		sys.LoadCode(1, 0x800, cat(movFromMem(x86.EAX, locY), movFromMem(x86.EBX, locX), hlt()))
		sys.RunSchedule(RandomSchedule(rng, 2, 10, 0.4))
		flagSeen := sys.CPUs[1].State.Regs[x86.EAX]
		dataSeen := sys.CPUs[1].State.Regs[x86.EBX]
		if flagSeen == 1 {
			sawHandshake = true
			if dataSeen != 42 {
				t.Fatalf("trial %d: flag observed but data stale (%d) — store reordering!", trial, dataSeen)
			}
		}
	}
	if !sawHandshake {
		t.Fatal("no schedule delivered the flag; exploration too weak")
	}
}

// TestSameCPUStoreOrder: a CPU's stores to one location commit in program
// order.
func TestSameCPUStoreOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		sys := NewSystem(1)
		sys.LoadCode(0, 0x100, cat(movToMem(locX, 1), movToMem(locX, 2), hlt()))
		sys.RunSchedule(RandomSchedule(rng, 1, 10, 0.5))
		sys.Finish(10)
		if got := sys.Shared.Load(locX); got != 2 {
			t.Fatalf("trial %d: final value %d, want 2 (FIFO violated)", trial, got)
		}
	}
}

// TestBufferForwarding: a CPU sees its own buffered store before it
// drains (store-to-load forwarding).
func TestBufferForwarding(t *testing.T) {
	sys := NewSystem(1)
	sys.LoadCode(0, 0x100, cat(movToMem(locX, 7), movFromMem(x86.EAX, locX), hlt()))
	// Execute both instructions with no flush events.
	sys.RunSchedule([]Event{{CPU: 0}, {CPU: 0}})
	if got := sys.CPUs[0].State.Regs[x86.EAX]; got != 7 {
		t.Fatalf("own store not forwarded: read %d", got)
	}
}

// incMem assembles inc dword [addr], optionally LOCK-prefixed.
func incMem(addr uint32, lock bool) []byte {
	out := []byte{}
	if lock {
		out = append(out, 0xf0)
	}
	out = append(out, 0xff, 0x05, byte(addr), byte(addr>>8), byte(addr>>16), byte(addr>>24))
	return out
}

// TestLostUpdateWithoutLock: two plain increments can collapse to one
// under TSO (the classic reason atomic RMWs exist).
func TestLostUpdateWithoutLock(t *testing.T) {
	sys := NewSystem(2)
	sys.LoadCode(0, 0x100, cat(incMem(locX, false), hlt()))
	sys.LoadCode(1, 0x800, cat(incMem(locX, false), hlt()))
	// Both increments execute before either buffer drains.
	sys.RunSchedule([]Event{{CPU: 0}, {CPU: 1}})
	if got := sys.Shared.Load(locX); got != 1 {
		t.Fatalf("expected the lost update (1), got %d", got)
	}
}

// TestLockedIncrementIsAtomic: LOCK INC never loses updates, under any
// schedule.
func TestLockedIncrementIsAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		sys := NewSystem(2)
		sys.LoadCode(0, 0x100, cat(incMem(locX, true), hlt()))
		sys.LoadCode(1, 0x800, cat(incMem(locX, true), hlt()))
		sys.RunSchedule(RandomSchedule(rng, 2, 6, 0.3))
		sys.Finish(10) // make sure both increments actually executed
		if got := sys.Shared.Load(locX); got != 2 {
			t.Fatalf("trial %d: locked increments lost an update: %d", trial, got)
		}
	}
}

// TestXchgIsFence: XCHG with memory drains the buffer, so it can build a
// correct spinlock handshake.
func TestXchgIsFence(t *testing.T) {
	sys := NewSystem(1)
	// [X] = 5 (buffered); xchg eax, [Y] (fences); shared [X] must be
	// visible afterwards even with no flush events.
	code := cat(
		movToMem(locX, 5),
		xchgMem(locY), // xchg eax,[Y]
		hlt(),
	)
	sys.LoadCode(0, 0x100, code)
	_ = sys.Step(0)
	if sys.Shared.Load(locX) == 5 {
		t.Fatal("store drained too early")
	}
	_ = sys.Step(0) // the xchg: must drain
	if sys.Shared.Load(locX) != 5 {
		t.Fatal("xchg did not act as a fence")
	}
}

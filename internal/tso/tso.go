// Package tso implements the paper's §6.1 future-work item: "to model
// multiple processors and the total-store order (TSO) memory consistency
// model, we believe that it is sufficient to add a store buffer to the
// machine state for each processor."
//
// Each processor owns a full x86 machine state whose memory operations
// are routed through a FIFO store buffer in front of a shared memory:
// stores enqueue; loads snoop the local buffer (youngest entry first)
// before falling through to shared memory; buffers drain to shared
// memory non-deterministically, under the control of a schedule — the
// same oracle idea the sequential model uses for undefined flags. Locked
// instructions and XCHG-with-memory drain the buffer around their
// execution (x86's fence semantics), which is what makes them usable for
// synchronization.
package tso

import (
	"fmt"
	"math/rand"
	"sync"

	"rocksalt/internal/bits"
	"rocksalt/internal/rtl"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
	"rocksalt/internal/x86/machine"
	"rocksalt/internal/x86/semantics"
)

// store is one pending write in a store buffer.
type store struct {
	addr uint32
	val  byte
}

// CPU is one processor: architectural state plus its store buffer. It
// implements rtl.Machine by splicing the buffer between the core and the
// shared memory.
type CPU struct {
	ID     int
	State  *machine.State // Mem field unused; memory ops are redirected
	Shared *machine.Memory
	Buffer []store
}

var _ rtl.Machine = (*CPU)(nil)

// Get reads an architectural location.
func (c *CPU) Get(loc rtl.Loc) bits.Vec { return c.State.Get(loc) }

// Set writes an architectural location.
func (c *CPU) Set(loc rtl.Loc, v bits.Vec) { c.State.Set(loc, v) }

// LoadByte reads through the store buffer: the youngest buffered write to
// the address wins; otherwise the shared memory supplies the value.
func (c *CPU) LoadByte(addr uint32) byte {
	for i := len(c.Buffer) - 1; i >= 0; i-- {
		if c.Buffer[i].addr == addr {
			return c.Buffer[i].val
		}
	}
	return c.Shared.Load(addr)
}

// StoreByte enqueues a write in program order.
func (c *CPU) StoreByte(addr uint32, b byte) {
	c.Buffer = append(c.Buffer, store{addr, b})
}

// DrainOne commits the oldest buffered store to shared memory; it reports
// whether anything was pending.
func (c *CPU) DrainOne() bool {
	if len(c.Buffer) == 0 {
		return false
	}
	st := c.Buffer[0]
	c.Buffer = c.Buffer[1:]
	c.Shared.Store(st.addr, st.val)
	return true
}

// Drain commits the whole buffer (a fence).
func (c *CPU) Drain() {
	for c.DrainOne() {
	}
}

// System is a multiprocessor: CPUs over one shared memory. A System is
// not safe for concurrent use (interleaving is expressed by schedules,
// not goroutines).
type System struct {
	Shared *machine.Memory
	CPUs   []*CPU
	dec    *decode.Decoder
}

// sharedDec amortizes the decoder's derivative cache across all systems
// in the process (the decoder is a pure function of the instruction
// bytes).
var (
	sharedDecOnce sync.Once
	sharedDec     *decode.Decoder
)

// NewSystem creates n processors sharing one memory, each with flat
// 4 GiB segments (litmus tests do not need the sandbox configuration;
// callers may adjust the per-CPU states).
func NewSystem(n int) *System {
	sharedDecOnce.Do(func() { sharedDec = decode.NewDecoder() })
	sys := &System{Shared: machine.NewMemory(), dec: sharedDec}
	for i := 0; i < n; i++ {
		st := machine.New()
		cpu := &CPU{ID: i, State: st, Shared: sys.Shared}
		sys.CPUs = append(sys.CPUs, cpu)
	}
	return sys
}

// LoadCode writes a program into shared memory and points the CPU at it.
func (sys *System) LoadCode(cpu int, base uint32, code []byte) {
	sys.Shared.WriteBytes(base, code)
	st := sys.CPUs[cpu].State
	st.SegBase[x86.CS] = base
	st.SegLimit[x86.CS] = uint32(len(code) - 1)
	st.PC = 0
}

// fencing reports whether an instruction drains the store buffer on x86:
// LOCK-prefixed RMWs and XCHG with a memory operand are full fences.
func fencing(i x86.Inst) bool {
	if i.Prefix.Lock {
		return true
	}
	if i.Op == x86.XCHG {
		for _, a := range i.Args {
			if _, mem := a.(x86.MemOp); mem {
				return true
			}
		}
	}
	return false
}

// Step executes one instruction on the given CPU (its stores stay in the
// buffer unless the instruction fences).
func (sys *System) Step(cpu int) error {
	c := sys.CPUs[cpu]
	// Fetch from shared memory (code is never written in these tests).
	lin := c.State.SegBase[x86.CS] + c.State.PC
	if c.State.PC > c.State.SegLimit[x86.CS] {
		return fmt.Errorf("tso: cpu %d pc out of code segment", cpu)
	}
	window := make([]byte, decode.MaxInstLen)
	for i := range window {
		window[i] = c.LoadByte(lin + uint32(i))
	}
	inst, n, err := sys.dec.Decode(window)
	if err != nil {
		return fmt.Errorf("tso: cpu %d: %w", cpu, err)
	}
	fence := fencing(inst)
	if fence {
		c.Drain()
	}
	prog, err := semantics.Translate(inst, c.State.PC, n)
	if err != nil {
		return fmt.Errorf("tso: cpu %d: %w", cpu, err)
	}
	if err := rtl.Exec(prog, rtl.NewState(c, rtl.ZeroOracle{})); err != nil {
		return fmt.Errorf("tso: cpu %d: %w", cpu, err)
	}
	if fence {
		c.Drain()
	}
	return nil
}

// Event is one step of a schedule: execute an instruction on a CPU, or
// commit one buffered store.
type Event struct {
	CPU   int
	Flush bool // true: drain one store instead of executing
}

// RunSchedule executes an explicit interleaving. Instruction events on a
// halted CPU (error or out of code) are ignored so schedules can be
// generated blindly. All buffers are drained at the end (TSO is
// eventually coherent).
func (sys *System) RunSchedule(events []Event) {
	for _, e := range events {
		if e.Flush {
			sys.CPUs[e.CPU].DrainOne()
			continue
		}
		_ = sys.Step(e.CPU) // halted CPUs simply stop contributing
	}
	for _, c := range sys.CPUs {
		c.Drain()
	}
}

// RandomSchedule produces a schedule of roughly steps events per CPU with
// the given flush bias (0..1: probability that an event commits a store
// instead of executing an instruction).
func RandomSchedule(rng *rand.Rand, cpus, steps int, flushBias float64) []Event {
	var out []Event
	for i := 0; i < cpus*steps; i++ {
		cpu := rng.Intn(cpus)
		out = append(out, Event{CPU: cpu, Flush: rng.Float64() < flushBias})
	}
	return out
}

// Finish runs every CPU until it halts (decode error or end of code) and
// drains all buffers, completing whatever a partial schedule left
// undone.
func (sys *System) Finish(maxSteps int) {
	for cpu := range sys.CPUs {
		for i := 0; i < maxSteps; i++ {
			if sys.Step(cpu) != nil {
				break
			}
		}
	}
	for _, c := range sys.CPUs {
		c.Drain()
	}
}

// RunSC executes the same programs under sequential consistency: every
// instruction immediately drains its stores. Used as the contrast model
// in the litmus tests.
func (sys *System) RunSC(rng *rand.Rand, maxSteps int) {
	live := make([]bool, len(sys.CPUs))
	for i := range live {
		live[i] = true
	}
	for n := 0; n < maxSteps; n++ {
		anyLive := false
		for _, l := range live {
			anyLive = anyLive || l
		}
		if !anyLive {
			break
		}
		cpu := rng.Intn(len(sys.CPUs))
		if !live[cpu] {
			continue
		}
		if err := sys.Step(cpu); err != nil {
			live[cpu] = false
			continue
		}
		sys.CPUs[cpu].Drain()
	}
	for _, c := range sys.CPUs {
		c.Drain()
	}
}

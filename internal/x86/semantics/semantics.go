// Package semantics translates x86 abstract syntax into RTL sequences —
// the paper's §2.3 "compiler" stage, one conv_* function per instruction.
// The translation is encapsulated in a builder that allocates fresh local
// variables; higher-level operations (operand load/store through segments,
// EFLAGS computation) are built from RTL primitives. Under-specified
// behavior (undefined flags) is over-approximated with the non-
// deterministic choose operation, exactly as the paper prescribes.
package semantics

import (
	"fmt"

	"rocksalt/internal/bits"
	"rocksalt/internal/rtl"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/machine"
)

// allOnesVec is the all-ones constant at a given width.
func allOnesVec(w int) bits.Vec { return bits.AllOnes(w) }

// Translate compiles one decoded instruction into an RTL sequence.
// pc is the instruction's address and length its encoded size; the
// sequence updates the PC location (to pc+length for fall-through, or to
// the branch target).
func Translate(inst x86.Inst, pc uint32, length int) (prog []rtl.Instr, err error) {
	defer func() {
		// The builder panics on width errors; those are translation bugs,
		// but we surface them as errors so a fuzzer can report them.
		if r := recover(); r != nil {
			err = fmt.Errorf("semantics: internal error translating %v: %v", inst, r)
		}
	}()
	t := &tr{
		b:      rtl.NewBuilder(),
		inst:   inst,
		size:   inst.OperandSize(),
		pc:     pc,
		length: uint32(length),
	}
	if err := t.conv(); err != nil {
		return nil, err
	}
	return t.b.Take(), nil
}

// machineLoc abbreviates the register location constructor.
func machineLoc(r x86.Reg) rtl.Loc { return machine.RegLoc(r) }

func machineESP() rtl.Loc { return machine.RegLoc(x86.ESP) }
func machineEBP() rtl.Loc { return machine.RegLoc(x86.EBP) }

// tr carries the per-instruction translation context.
type tr struct {
	b      *rtl.Builder
	inst   x86.Inst
	size   int // operand size in bits (8/16/32)
	pc     uint32
	length uint32
}

func (t *tr) nextPC() uint32 { return t.pc + t.length }

// fallthrough writes PC := pc+length, the non-control-flow epilogue
// (property (3) in the paper's proof for NoControlFlow instructions).
func (t *tr) fallThrough() {
	t.b.Set(machine.PCLoc{}, t.b.ImmU(32, uint64(t.nextPC())))
}

func (t *tr) setPC(target rtl.Var) {
	t.b.Set(machine.PCLoc{}, t.b.CastU(32, target))
}

// ---------- Segmented memory access ----------

// defaultSeg returns the default segment for a memory operand: SS when the
// base register is EBP or ESP, DS otherwise, overridden by a prefix.
func (t *tr) defaultSeg(a x86.Addr) x86.SegReg {
	if t.inst.Prefix.Seg != nil {
		return *t.inst.Prefix.Seg
	}
	if a.Base != nil && (*a.Base == x86.EBP || *a.Base == x86.ESP) {
		return x86.SS
	}
	return x86.DS
}

// segOverridable returns seg unless a prefix overrides it.
func (t *tr) segOverridable(seg x86.SegReg) x86.SegReg {
	if t.inst.Prefix.Seg != nil {
		return *t.inst.Prefix.Seg
	}
	return seg
}

// effAddr computes the effective address (offset within segment). Under
// a 0x67 prefix the address is computed modulo 2^16, the 8086 wraparound
// (the component registers contribute only their low halves, which the
// final truncation subsumes because mod 2^16 is a ring homomorphism).
func (t *tr) effAddr(a x86.Addr) rtl.Var {
	ea := t.b.ImmU(32, uint64(a.Disp))
	if a.Base != nil {
		ea = t.b.Arith(rtl.Add, ea, t.b.Get(machine.RegLoc(*a.Base)))
	}
	if a.Index != nil {
		idx := t.b.Get(machine.RegLoc(*a.Index))
		shift := map[x86.Scale]uint64{1: 0, 2: 1, 4: 2, 8: 3}[a.Scale]
		idx = t.b.Arith(rtl.Shl, idx, t.b.ImmU(32, shift))
		ea = t.b.Arith(rtl.Add, ea, idx)
	}
	if t.inst.Prefix.AddrSize {
		ea = t.b.CastU(32, t.b.CastU(16, ea))
	}
	return ea
}

// linearize translates a segment offset into a linear address, emitting
// the limit check (the hardware #GP that the NaCl sandbox relies on) and
// adding the segment base. size is the access width in bits.
func (t *tr) linearize(seg x86.SegReg, ea rtl.Var, size int) rtl.Var {
	// Trap when ea + size/8 - 1 > limit, computed without wraparound in 64
	// bits.
	ea64 := t.b.CastU(64, ea)
	last := t.b.Arith(rtl.Add, ea64, t.b.ImmU(64, uint64(size/8-1)))
	limit := t.b.CastU(64, t.b.Get(machine.SegLimitLoc(seg)))
	beyond := t.b.Test(rtl.LtU, limit, last)
	t.b.TrapIf(beyond, fmt.Sprintf("#GP segment limit violation (%v)", seg))
	return t.b.Arith(rtl.Add, ea, t.b.Get(machine.SegBaseLoc(seg)))
}

// loadMem loads size bits from seg:ea.
func (t *tr) loadMem(seg x86.SegReg, ea rtl.Var, size int) rtl.Var {
	lin := t.linearize(seg, ea, size)
	return t.b.LoadBytes(size, lin)
}

// storeMem stores v at seg:ea.
func (t *tr) storeMem(seg x86.SegReg, ea, v rtl.Var) {
	lin := t.linearize(seg, ea, t.b.WidthOf(v))
	t.b.StoreBytes(lin, v)
}

// ---------- Register access with x86 sub-register rules ----------

// loadReg reads an operand-sized view of a register: full 32 bits, the
// low 16, or the 8-bit bank where codes 4..7 address AH/CH/DH/BH.
func (t *tr) loadReg(r x86.Reg, size int) rtl.Var {
	switch size {
	case 32:
		return t.b.Get(machine.RegLoc(r))
	case 16:
		return t.b.CastU(16, t.b.Get(machine.RegLoc(r)))
	case 8:
		if r >= 4 { // AH CH DH BH: bits 8..15 of regs 0..3
			full := t.b.Get(machine.RegLoc(r - 4))
			sh := t.b.Arith(rtl.ShrU, full, t.b.ImmU(32, 8))
			return t.b.CastU(8, sh)
		}
		return t.b.CastU(8, t.b.Get(machine.RegLoc(r)))
	default:
		panic(fmt.Sprintf("semantics: bad register size %d", size))
	}
}

// storeReg writes an operand-sized view of a register, preserving the
// untouched bits (x86 partial-register semantics).
func (t *tr) storeReg(r x86.Reg, v rtl.Var) {
	size := t.b.WidthOf(v)
	switch size {
	case 32:
		t.b.Set(machine.RegLoc(r), v)
	case 16:
		full := t.b.Get(machine.RegLoc(r))
		hi := t.b.Arith(rtl.And, full, t.b.ImmU(32, 0xffff0000))
		merged := t.b.Arith(rtl.Or, hi, t.b.CastU(32, v))
		t.b.Set(machine.RegLoc(r), merged)
	case 8:
		target, shift := r, uint64(0)
		if r >= 4 {
			target, shift = r-4, 8
		}
		full := t.b.Get(machine.RegLoc(target))
		mask := uint64(0xff) << shift
		cleared := t.b.Arith(rtl.And, full, t.b.ImmU(32, ^mask))
		wide := t.b.Arith(rtl.Shl, t.b.CastU(32, v), t.b.ImmU(32, shift))
		t.b.Set(machine.RegLoc(target), t.b.Arith(rtl.Or, cleared, wide))
	default:
		panic(fmt.Sprintf("semantics: bad register store size %d", size))
	}
}

// ---------- Operand load/store (the paper's load_op / set_op) ----------

// loadOp fetches an operand at the instruction's operand size.
func (t *tr) loadOp(op x86.Operand) rtl.Var {
	return t.loadOpSized(op, t.size)
}

func (t *tr) loadOpSized(op x86.Operand, size int) rtl.Var {
	switch o := op.(type) {
	case x86.Imm:
		return t.b.ImmU(size, uint64(o.Val)&(1<<uint(size)-1))
	case x86.RegOp:
		return t.loadReg(o.Reg, size)
	case x86.MemOp:
		return t.loadMem(t.defaultSeg(o.Addr), t.effAddr(o.Addr), size)
	case x86.OffOp:
		ea := t.b.ImmU(32, uint64(o.Off))
		return t.loadMem(t.segOverridable(x86.DS), ea, size)
	case x86.SegOp:
		return t.b.CastU(size, t.b.Get(machine.SegSelLoc(o.Seg)))
	default:
		panic(fmt.Sprintf("semantics: cannot load operand %v", op))
	}
}

// storeOp writes v to an operand destination.
func (t *tr) storeOp(op x86.Operand, v rtl.Var) {
	switch o := op.(type) {
	case x86.RegOp:
		t.storeReg(o.Reg, v)
	case x86.MemOp:
		t.storeMem(t.defaultSeg(o.Addr), t.effAddr(o.Addr), v)
	case x86.OffOp:
		ea := t.b.ImmU(32, uint64(o.Off))
		t.storeMem(t.segOverridable(x86.DS), ea, v)
	case x86.SegOp:
		// Loading a segment register updates the selector. The model has
		// no descriptor tables, so base and limit are unchanged; the
		// sandbox safety property is falsified by the selector change
		// alone, which is what the checker must rule out.
		t.b.Set(machine.SegSelLoc(o.Seg), t.b.CastU(16, v))
	default:
		panic(fmt.Sprintf("semantics: cannot store operand %v", op))
	}
}

// ---------- Flags ----------

func (t *tr) flag(f x86.Flag) rtl.Var       { return t.b.Get(machine.FlagLoc(f)) }
func (t *tr) setFlag(f x86.Flag, v rtl.Var) { t.b.Set(machine.FlagLoc(f), t.b.CastU(1, v)) }

// chooseFlag models an undefined flag result (§2.3: "we use the choose
// operation, which non-deterministically selects a bit-vector value").
func (t *tr) chooseFlag(f x86.Flag) { t.setFlag(f, t.b.Choose(1)) }

// parity computes the even-parity bit of the low byte of v: the xor-fold
// of bits 0..7, complemented.
func (t *tr) parity(v rtl.Var) rtl.Var {
	low := t.b.CastU(8, v)
	acc := t.b.CastU(1, low)
	for i := uint(1); i < 8; i++ {
		acc = t.b.Arith(rtl.Xor, acc, t.b.BitAt(low, i))
	}
	return t.b.Not1(acc)
}

// setSZP sets SF, ZF, PF from a result.
func (t *tr) setSZP(r rtl.Var) {
	t.setFlag(x86.SF, t.b.MSB(r))
	t.setFlag(x86.ZF, t.b.IsZero(r))
	t.setFlag(x86.PF, t.parity(r))
}

// setAddFlags computes CF/OF/AF for r = a + b + carry (carry is a 1-bit
// variable or the zero constant). The OF computation follows the paper's
// Figure 4 xor dance.
func (t *tr) setAddFlags(a, b, carry, r rtl.Var) {
	size := t.b.WidthOf(a)
	// Carry out, computed in size+1 bits when possible (size+1 <= 64).
	wa := t.b.CastU(size+1, a)
	wb := t.b.CastU(size+1, b)
	wc := t.b.CastU(size+1, carry)
	sum := t.b.Arith(rtl.Add, t.b.Arith(rtl.Add, wa, wb), wc)
	t.setFlag(x86.CF, t.b.BitAt(sum, uint(size)))
	// Overflow: Figure 4's xor dance with up = 1 (addition).
	up := t.b.Bool(true)
	b0 := t.b.Test(rtl.LtS, a, t.b.ImmU(size, 0))
	b1 := t.b.Test(rtl.LtS, b, t.b.ImmU(size, 0))
	b2 := t.b.Test(rtl.LtS, r, t.b.ImmU(size, 0))
	b3 := t.b.Arith(rtl.Xor, b0, b1)
	b3 = t.b.Arith(rtl.Xor, up, b3)
	b4 := t.b.Arith(rtl.Xor, b0, b2)
	b4 = t.b.Arith(rtl.And, b3, b4)
	t.setFlag(x86.OF, b4)
	// Auxiliary carry: bit 4 of a^b^r (carry-in folded through sum).
	ax := t.b.Arith(rtl.Xor, a, b)
	ax = t.b.Arith(rtl.Xor, ax, r)
	t.setFlag(x86.AF, t.b.BitAt(ax, 4))
}

// setSubFlags computes CF/OF/AF for r = a - b - borrow.
func (t *tr) setSubFlags(a, b, borrow, r rtl.Var) {
	size := t.b.WidthOf(a)
	wa := t.b.CastU(size+1, a)
	wb := t.b.CastU(size+1, b)
	wc := t.b.CastU(size+1, borrow)
	diff := t.b.Arith(rtl.Sub, t.b.Arith(rtl.Sub, wa, wb), wc)
	t.setFlag(x86.CF, t.b.BitAt(diff, uint(size)))
	// Overflow for subtraction: signs differ and result sign != a's sign.
	b0 := t.b.Test(rtl.LtS, a, t.b.ImmU(size, 0))
	b1 := t.b.Test(rtl.LtS, b, t.b.ImmU(size, 0))
	b2 := t.b.Test(rtl.LtS, r, t.b.ImmU(size, 0))
	signsDiffer := t.b.Arith(rtl.Xor, b0, b1)
	resDiffers := t.b.Arith(rtl.Xor, b0, b2)
	t.setFlag(x86.OF, t.b.Arith(rtl.And, signsDiffer, resDiffers))
	ax := t.b.Arith(rtl.Xor, a, b)
	ax = t.b.Arith(rtl.Xor, ax, r)
	t.setFlag(x86.AF, t.b.BitAt(ax, 4))
}

// setLogicFlags implements the AND/OR/XOR/TEST flag behavior: CF=OF=0,
// SZP from the result, AF undefined.
func (t *tr) setLogicFlags(r rtl.Var) {
	t.setFlag(x86.CF, t.b.Bool(false))
	t.setFlag(x86.OF, t.b.Bool(false))
	t.chooseFlag(x86.AF)
	t.setSZP(r)
}

// cond evaluates a condition code from the flags, per the tttn table.
func (t *tr) cond(c x86.Cond) rtl.Var {
	b := t.b
	base := func() rtl.Var {
		switch c &^ 1 { // even variant
		case x86.CondO:
			return t.flag(x86.OF)
		case x86.CondB:
			return t.flag(x86.CF)
		case x86.CondE:
			return t.flag(x86.ZF)
		case x86.CondBE:
			return b.Arith(rtl.Or, t.flag(x86.CF), t.flag(x86.ZF))
		case x86.CondS:
			return t.flag(x86.SF)
		case x86.CondP:
			return t.flag(x86.PF)
		case x86.CondL:
			return b.Arith(rtl.Xor, t.flag(x86.SF), t.flag(x86.OF))
		case x86.CondLE:
			lt := b.Arith(rtl.Xor, t.flag(x86.SF), t.flag(x86.OF))
			return b.Arith(rtl.Or, t.flag(x86.ZF), lt)
		default:
			panic("semantics: bad condition")
		}
	}()
	if c&1 == 1 { // odd codes negate
		return b.Not1(base)
	}
	return base
}

// conv dispatches to the per-instruction translation.
func (t *tr) conv() error {
	i := t.inst
	switch i.Op {
	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.CMP,
		x86.AND, x86.OR, x86.XOR, x86.TEST:
		return t.convBinArith()
	case x86.INC, x86.DEC:
		return t.convIncDec()
	case x86.NEG:
		return t.convNeg()
	case x86.NOT:
		return t.convNot()
	case x86.MUL, x86.IMUL:
		return t.convMul()
	case x86.DIV, x86.IDIV:
		return t.convDiv()
	case x86.MOV:
		return t.convMov()
	case x86.MOVZX, x86.MOVSX:
		return t.convMovX()
	case x86.LEA:
		return t.convLea()
	case x86.XCHG:
		return t.convXchg()
	case x86.CMOVcc:
		return t.convCmov()
	case x86.SETcc:
		return t.convSetcc()
	case x86.PUSH:
		return t.convPush()
	case x86.POP:
		return t.convPop()
	case x86.PUSHA:
		return t.convPusha()
	case x86.POPA:
		return t.convPopa()
	case x86.PUSHF:
		return t.convPushf()
	case x86.POPF:
		return t.convPopf()
	case x86.LEAVE:
		return t.convLeave()
	case x86.LAHF:
		return t.convLahf()
	case x86.SAHF:
		return t.convSahf()
	case x86.CWDE:
		return t.convCwde()
	case x86.CDQ:
		return t.convCdq()
	case x86.NOP:
		t.fallThrough()
		return nil
	case x86.CLC, x86.STC, x86.CMC, x86.CLD, x86.STD:
		return t.convFlagOp()
	case x86.ROL, x86.ROR, x86.RCL, x86.RCR, x86.SHL, x86.SHR, x86.SAR:
		return t.convShift()
	case x86.SHLD, x86.SHRD:
		return t.convShiftD()
	case x86.BT, x86.BTS, x86.BTR, x86.BTC:
		return t.convBitTest()
	case x86.BSF, x86.BSR:
		return t.convBitScan()
	case x86.BSWAP:
		return t.convBswap()
	case x86.CMPXCHG:
		return t.convCmpxchg()
	case x86.XADD:
		return t.convXadd()
	case x86.XLAT:
		return t.convXlat()
	case x86.JMP, x86.CALL:
		return t.convJmpCall()
	case x86.Jcc:
		return t.convJcc()
	case x86.JCXZ:
		return t.convJcxz()
	case x86.LOOP, x86.LOOPZ, x86.LOOPNZ:
		return t.convLoop()
	case x86.RET:
		return t.convRet()
	case x86.MOVS, x86.STOS, x86.LODS, x86.SCAS, x86.CMPS:
		return t.convString()
	case x86.AAA, x86.AAS, x86.AAD, x86.AAM, x86.DAA, x86.DAS:
		return t.convDecimal()
	case x86.ENTER:
		return t.convEnter()
	case x86.CMPXCHG8B:
		return t.convCmpxchg8b()
	case x86.RDTSC:
		// The timestamp counter is outside the model: its value is
		// non-deterministic (an oracle read), like undefined flags.
		t.b.Set(machineLoc(x86.EAX), t.b.Choose(32))
		t.b.Set(machineLoc(x86.EDX), t.b.Choose(32))
		t.fallThrough()
		return nil
	case x86.CPUID:
		for _, r := range []x86.Reg{x86.EAX, x86.EBX, x86.ECX, x86.EDX} {
			t.b.Set(machineLoc(r), t.b.Choose(32))
		}
		t.fallThrough()
		return nil
	case x86.UD2:
		t.b.Trap("#UD undefined instruction")
		return nil
	case x86.HLT, x86.INT, x86.INT3, x86.INTO, x86.IRET,
		x86.IN, x86.OUT, x86.INS, x86.OUTS, x86.BOUND,
		x86.LDS, x86.LES, x86.LSS, x86.LFS, x86.LGS:
		// Outside the modeled user-mode fragment: these fault. The
		// checker must (and does) reject them.
		t.b.Trap(fmt.Sprintf("unsupported instruction %v", i.Op))
		return nil
	default:
		return fmt.Errorf("semantics: no translation for %v", i.Op)
	}
}

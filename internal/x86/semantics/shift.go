package semantics

import (
	"rocksalt/internal/rtl"
	"rocksalt/internal/x86"
)

// shiftCount loads and masks the shift count (x86 masks counts to 5 bits).
func (t *tr) shiftCount(op x86.Operand) rtl.Var {
	c := t.loadOpSized(op, 8)
	c = t.b.Arith(rtl.And, c, t.b.ImmU(8, 0x1f))
	return t.b.CastU(t.size, c)
}

// convShift translates the shift and rotate group. x86 flag behavior here
// is count-dependent: a zero count leaves every flag unchanged; OF is
// architecturally defined only for single-bit shifts (modeled with choose
// otherwise); CF receives the last bit shifted out.
func (t *tr) convShift() error {
	b := t.b
	dst := t.inst.Args[0]
	cnt := t.shiftCount(t.inst.Args[1])
	v := t.loadOp(dst)
	size := uint64(t.size)
	zero := b.IsZero(cnt)
	one := b.ImmU(t.size, 1)

	keep := func(f x86.Flag, val rtl.Var) {
		t.setFlag(f, b.Mux(zero, t.flag(f), val))
	}
	switch t.inst.Op {
	case x86.SHL:
		r := b.Arith(rtl.Shl, v, cnt)
		// CF = bit (size-count) of v — the last bit shifted out.
		out := b.Arith(rtl.ShrU, v, b.Arith(rtl.Sub, b.ImmU(t.size, size), cnt))
		cf := b.CastU(1, out)
		// OF (count==1): MSB(result) != CF.
		of := b.Arith(rtl.Xor, b.MSB(r), cf)
		t.finishShift(dst, r, zero, cf, of, keep)
	case x86.SHR:
		r := b.Arith(rtl.ShrU, v, cnt)
		out := b.Arith(rtl.ShrU, v, b.Arith(rtl.Sub, cnt, one))
		cf := b.CastU(1, out)
		of := b.MSB(v) // OF (count==1) = original MSB
		t.finishShift(dst, r, zero, cf, of, keep)
	case x86.SAR:
		r := b.Arith(rtl.ShrS, v, cnt)
		out := b.Arith(rtl.ShrS, v, b.Arith(rtl.Sub, cnt, one))
		cf := b.CastU(1, out)
		of := b.Bool(false) // OF (count==1) = 0 for SAR
		t.finishShift(dst, r, zero, cf, of, keep)
	case x86.ROL:
		r := b.Arith(rtl.Rol, v, cnt)
		cf := b.CastU(1, r) // CF = bit rotated into LSB
		of := b.Arith(rtl.Xor, b.MSB(r), cf)
		t.finishRotate(dst, r, zero, cf, of, keep)
	case x86.ROR:
		r := b.Arith(rtl.Ror, v, cnt)
		cf := b.MSB(r)
		secondMSB := b.BitAt(r, uint(size-2))
		of := b.Arith(rtl.Xor, b.MSB(r), secondMSB)
		t.finishRotate(dst, r, zero, cf, of, keep)
	case x86.RCL, x86.RCR:
		return t.convRotateCarry()
	}
	t.fallThrough()
	return nil
}

// finishShift stores the result and sets the shift-group flags (SZP
// defined, AF undefined, all preserved on zero count).
func (t *tr) finishShift(dst x86.Operand, r, zero, cf, of rtl.Var, keep func(x86.Flag, rtl.Var)) {
	b := t.b
	old := t.loadOp(dst)
	t.storeOp(dst, b.Mux(zero, old, r))
	keep(x86.CF, cf)
	keep(x86.OF, b.Mux(t.oneCount(), of, b.Choose(1)))
	keep(x86.SF, b.MSB(r))
	keep(x86.ZF, b.IsZero(r))
	keep(x86.PF, t.parity(r))
	keep(x86.AF, b.Choose(1))
}

// finishRotate stores the result; rotates set only CF and OF.
func (t *tr) finishRotate(dst x86.Operand, r, zero, cf, of rtl.Var, keep func(x86.Flag, rtl.Var)) {
	b := t.b
	old := t.loadOp(dst)
	t.storeOp(dst, b.Mux(zero, old, r))
	keep(x86.CF, cf)
	keep(x86.OF, b.Mux(t.oneCount(), of, b.Choose(1)))
}

// oneCount tests whether the (already masked) count equals one. It
// re-derives the count from the operand to stay context-free.
func (t *tr) oneCount() rtl.Var {
	cnt := t.shiftCount(t.inst.Args[1])
	return t.b.Test(rtl.Eq, cnt, t.b.ImmU(t.size, 1))
}

// convRotateCarry translates RCL/RCR: rotation through the carry flag,
// implemented as a (size+1)-bit rotate.
func (t *tr) convRotateCarry() error {
	b := t.b
	dst := t.inst.Args[0]
	cnt := t.shiftCount(t.inst.Args[1])
	v := t.loadOp(dst)
	wsize := t.size + 1
	// Build CF:v as a (size+1)-bit vector.
	wide := b.CastU(wsize, v)
	cfTop := b.Arith(rtl.Shl, b.CastU(wsize, t.flag(x86.CF)), b.ImmU(wsize, uint64(t.size)))
	wide = b.Arith(rtl.Or, wide, cfTop)
	wcnt := b.CastU(wsize, cnt)
	// Count is taken modulo size+1 by the Rol/Ror semantics of the RTL op.
	var rot rtl.Var
	if t.inst.Op == x86.RCL {
		rot = b.Arith(rtl.Rol, wide, wcnt)
	} else {
		rot = b.Arith(rtl.Ror, wide, wcnt)
	}
	r := b.CastU(t.size, rot)
	newCF := b.BitAt(rot, uint(t.size))
	zero := b.IsZero(cnt)
	old := t.loadOp(dst)
	t.storeOp(dst, b.Mux(zero, old, r))
	t.setFlag(x86.CF, b.Mux(zero, t.flag(x86.CF), newCF))
	var of rtl.Var
	if t.inst.Op == x86.RCL {
		of = b.Arith(rtl.Xor, b.MSB(r), newCF)
	} else {
		of = b.Arith(rtl.Xor, b.MSB(r), b.BitAt(r, uint(t.size-2)))
	}
	t.setFlag(x86.OF, b.Mux(zero, t.flag(x86.OF), b.Mux(t.oneCount(), of, b.Choose(1))))
	t.fallThrough()
	return nil
}

// convShiftD translates the double-precision shifts SHLD/SHRD.
func (t *tr) convShiftD() error {
	b := t.b
	dst, srcOp, cntOp := t.inst.Args[0], t.inst.Args[1], t.inst.Args[2]
	cnt := t.shiftCount(cntOp)
	v := t.loadOp(dst)
	src := t.loadOp(srcOp)
	size := uint64(t.size)
	zero := b.IsZero(cnt)
	// Build the 2*size-bit concatenation and shift it.
	wsize := t.size * 2
	var wide, res, cfBit rtl.Var
	if t.inst.Op == x86.SHLD {
		// dst:src shifted left; result is the high half.
		wide = b.Arith(rtl.Or,
			b.Arith(rtl.Shl, b.CastU(wsize, v), b.ImmU(wsize, size)),
			b.CastU(wsize, src))
		sh := b.Arith(rtl.Shl, wide, b.CastU(wsize, cnt))
		res = b.CastU(t.size, b.Arith(rtl.ShrU, sh, b.ImmU(wsize, size)))
		out := b.Arith(rtl.ShrU, v, b.Arith(rtl.Sub, b.ImmU(t.size, size), cnt))
		cfBit = b.CastU(1, out)
	} else {
		// src:dst shifted right; result is the low half.
		wide = b.Arith(rtl.Or,
			b.Arith(rtl.Shl, b.CastU(wsize, src), b.ImmU(wsize, size)),
			b.CastU(wsize, v))
		sh := b.Arith(rtl.ShrU, wide, b.CastU(wsize, cnt))
		res = b.CastU(t.size, sh)
		out := b.Arith(rtl.ShrU, v, b.Arith(rtl.Sub, cnt, b.ImmU(t.size, 1)))
		cfBit = b.CastU(1, out)
	}
	old := t.loadOp(dst)
	t.storeOp(dst, b.Mux(zero, old, res))
	keep := func(f x86.Flag, val rtl.Var) {
		t.setFlag(f, b.Mux(zero, t.flag(f), val))
	}
	keep(x86.CF, cfBit)
	keep(x86.SF, b.MSB(res))
	keep(x86.ZF, b.IsZero(res))
	keep(x86.PF, t.parity(res))
	keep(x86.AF, b.Choose(1))
	keep(x86.OF, b.Choose(1)) // defined only for count 1; over-approximate
	t.fallThrough()
	return nil
}

// convBitTest translates BT/BTS/BTR/BTC. Bit offsets are taken modulo the
// operand size (a deliberate simplification of the unbounded memory form,
// documented in DESIGN.md; the segment limit check still applies).
func (t *tr) convBitTest() error {
	b := t.b
	dst := t.inst.Args[0]
	off := t.loadOp(t.inst.Args[1])
	off = b.Arith(rtl.And, off, b.ImmU(t.size, uint64(t.size-1)))
	v := t.loadOp(dst)
	bit := b.CastU(1, b.Arith(rtl.ShrU, v, off))
	t.setFlag(x86.CF, bit)
	mask := b.Arith(rtl.Shl, b.ImmU(t.size, 1), off)
	switch t.inst.Op {
	case x86.BTS:
		t.storeOp(dst, b.Arith(rtl.Or, v, mask))
	case x86.BTR:
		notMask := b.Arith(rtl.Xor, mask, b.Imm(allOnesVec(t.size)))
		t.storeOp(dst, b.Arith(rtl.And, v, notMask))
	case x86.BTC:
		t.storeOp(dst, b.Arith(rtl.Xor, v, mask))
	}
	t.chooseFlag(x86.OF)
	t.chooseFlag(x86.SF)
	t.chooseFlag(x86.AF)
	t.chooseFlag(x86.PF)
	t.fallThrough()
	return nil
}

// convBitScan translates BSF/BSR with an unrolled priority mux chain.
// When the source is zero, ZF is set and the destination is undefined.
func (t *tr) convBitScan() error {
	b := t.b
	src := t.loadOp(t.inst.Args[1])
	zero := b.IsZero(src)
	t.setFlag(x86.ZF, zero)
	idx := b.ImmU(t.size, 0)
	if t.inst.Op == x86.BSF {
		// Lowest set bit: scan from high index down so lower indices win.
		for i := t.size - 1; i >= 0; i-- {
			set := b.BitAt(src, uint(i))
			idx = b.Mux(set, b.ImmU(t.size, uint64(i)), idx)
		}
	} else {
		for i := 0; i < t.size; i++ {
			set := b.BitAt(src, uint(i))
			idx = b.Mux(set, b.ImmU(t.size, uint64(i)), idx)
		}
	}
	undef := b.Choose(t.size)
	t.storeOp(t.inst.Args[0], b.Mux(zero, undef, idx))
	t.chooseFlag(x86.CF)
	t.chooseFlag(x86.OF)
	t.chooseFlag(x86.SF)
	t.chooseFlag(x86.AF)
	t.chooseFlag(x86.PF)
	t.fallThrough()
	return nil
}

package semantics

import (
	"rocksalt/internal/rtl"
	"rocksalt/internal/x86"
)

// convMov translates every MOV form: register/memory moves, immediates,
// the moffs accumulator forms, and the segment-register forms (which only
// update the selector; see storeOp).
func (t *tr) convMov() error {
	dst, src := t.inst.Args[0], t.inst.Args[1]
	v := t.loadOp(src)
	t.storeOp(dst, v)
	t.fallThrough()
	return nil
}

// convMovX translates MOVZX/MOVSX: load at the source width, extend to
// the destination width.
func (t *tr) convMovX() error {
	srcSize := int(t.inst.SrcSize)
	v := t.loadOpSized(t.inst.Args[1], srcSize)
	var wide rtl.Var
	if t.inst.Op == x86.MOVZX {
		wide = t.b.CastU(t.size, v)
	} else {
		wide = t.b.CastS(t.size, v)
	}
	t.storeOp(t.inst.Args[0], wide)
	t.fallThrough()
	return nil
}

// convLea stores the effective address itself; no memory access and no
// segment translation take place.
func (t *tr) convLea() error {
	mem := t.inst.Args[1].(x86.MemOp)
	ea := t.effAddr(mem.Addr)
	t.storeOp(t.inst.Args[0], t.b.CastU(t.size, ea))
	t.fallThrough()
	return nil
}

// convXchg swaps its operands (flags unaffected).
func (t *tr) convXchg() error {
	a, b := t.inst.Args[0], t.inst.Args[1]
	va := t.loadOp(a)
	vb := t.loadOp(b)
	t.storeOp(a, vb)
	t.storeOp(b, va)
	t.fallThrough()
	return nil
}

// convCmov performs the load unconditionally (it can fault even when the
// condition is false, as on hardware) and muxes the destination.
func (t *tr) convCmov() error {
	dst := t.inst.Args[0]
	old := t.loadOp(dst)
	v := t.loadOp(t.inst.Args[1])
	c := t.cond(t.inst.Cond)
	t.storeOp(dst, t.b.Mux(c, v, old))
	t.fallThrough()
	return nil
}

// convSetcc writes the condition as a byte.
func (t *tr) convSetcc() error {
	c := t.cond(t.inst.Cond)
	t.storeOp(t.inst.Args[0], t.b.CastU(8, c))
	t.fallThrough()
	return nil
}

// ---------- Stack operations ----------

// pushVar pushes a value (width = operand size) through SS.
func (t *tr) pushVar(v rtl.Var) {
	n := uint64(t.b.WidthOf(v) / 8)
	esp := t.b.Get(machineESP())
	newESP := t.b.Arith(rtl.Sub, esp, t.b.ImmU(32, n))
	t.storeMem(x86.SS, newESP, v)
	t.b.Set(machineESP(), newESP)
}

// popVar pops size bits through SS.
func (t *tr) popVar(size int) rtl.Var {
	esp := t.b.Get(machineESP())
	v := t.loadMem(x86.SS, esp, size)
	newESP := t.b.Arith(rtl.Add, esp, t.b.ImmU(32, uint64(size/8)))
	t.b.Set(machineESP(), newESP)
	return v
}

// convPush pushes a register, immediate, memory operand, or segment
// selector.
func (t *tr) convPush() error {
	v := t.loadOp(t.inst.Args[0])
	t.pushVar(v)
	t.fallThrough()
	return nil
}

// convPop pops into the destination. The increment happens before the
// destination write, so POP ESP yields the loaded value and memory
// destinations compute their address with the updated ESP.
func (t *tr) convPop() error {
	v := t.popVar(t.size)
	t.storeOp(t.inst.Args[0], v)
	t.fallThrough()
	return nil
}

// convPusha pushes all eight registers, with the pre-push ESP in the ESP
// slot.
func (t *tr) convPusha() error {
	orig := t.loadReg(x86.ESP, t.size)
	for _, r := range []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX} {
		t.pushVar(t.loadReg(r, t.size))
	}
	t.pushVar(orig)
	for _, r := range []x86.Reg{x86.EBP, x86.ESI, x86.EDI} {
		t.pushVar(t.loadReg(r, t.size))
	}
	t.fallThrough()
	return nil
}

// convPopa pops all registers, discarding the stacked ESP.
func (t *tr) convPopa() error {
	for _, r := range []x86.Reg{x86.EDI, x86.ESI, x86.EBP} {
		t.storeReg(r, t.popVar(t.size))
	}
	_ = t.popVar(t.size) // skip saved ESP
	for _, r := range []x86.Reg{x86.EBX, x86.EDX, x86.ECX, x86.EAX} {
		t.storeReg(r, t.popVar(t.size))
	}
	t.fallThrough()
	return nil
}

// eflagsWord assembles the architectural EFLAGS image of the tracked
// flags; reserved bit 1 reads as 1 and IF (bit 9) as 1 (user mode).
func (t *tr) eflagsWord(size int) rtl.Var {
	b := t.b
	word := b.ImmU(size, 1<<1|1<<9)
	add := func(f x86.Flag, bit uint64) {
		v := b.Arith(rtl.Shl, b.CastU(size, t.flag(f)), b.ImmU(size, bit))
		word = b.Arith(rtl.Or, word, v)
	}
	add(x86.CF, 0)
	add(x86.PF, 2)
	add(x86.AF, 4)
	add(x86.ZF, 6)
	add(x86.SF, 7)
	add(x86.DF, 10)
	add(x86.OF, 11)
	return word
}

// convPushf pushes the EFLAGS image.
func (t *tr) convPushf() error {
	t.pushVar(t.eflagsWord(t.size))
	t.fallThrough()
	return nil
}

// convPopf pops the EFLAGS image into the tracked flag bits; system bits
// are ignored (user mode cannot change them).
func (t *tr) convPopf() error {
	v := t.popVar(t.size)
	set := func(f x86.Flag, bit uint) { t.setFlag(f, t.b.BitAt(v, bit)) }
	set(x86.CF, 0)
	set(x86.PF, 2)
	set(x86.AF, 4)
	set(x86.ZF, 6)
	set(x86.SF, 7)
	set(x86.DF, 10)
	set(x86.OF, 11)
	t.fallThrough()
	return nil
}

// convLeave is ESP := EBP; EBP := pop.
func (t *tr) convLeave() error {
	ebp := t.b.Get(machineEBP())
	t.b.Set(machineESP(), ebp)
	t.storeReg(x86.EBP, t.popVar(t.size))
	t.fallThrough()
	return nil
}

// convLahf loads AH from the flag image byte: SF ZF 0 AF 0 PF 1 CF.
func (t *tr) convLahf() error {
	b := t.b
	word := b.ImmU(8, 1<<1)
	add := func(f x86.Flag, bit uint64) {
		v := b.Arith(rtl.Shl, b.CastU(8, t.flag(f)), b.ImmU(8, bit))
		word = b.Arith(rtl.Or, word, v)
	}
	add(x86.CF, 0)
	add(x86.PF, 2)
	add(x86.AF, 4)
	add(x86.ZF, 6)
	add(x86.SF, 7)
	t.storeReg(x86.Reg(4), word) // AH
	t.fallThrough()
	return nil
}

// convSahf stores AH into the low flag byte.
func (t *tr) convSahf() error {
	ah := t.loadReg(x86.Reg(4), 8)
	set := func(f x86.Flag, bit uint) { t.setFlag(f, t.b.BitAt(ah, bit)) }
	set(x86.CF, 0)
	set(x86.PF, 2)
	set(x86.AF, 4)
	set(x86.ZF, 6)
	set(x86.SF, 7)
	t.fallThrough()
	return nil
}

// convXlat is AL := DS:[EBX + zero-extend AL].
func (t *tr) convXlat() error {
	al := t.loadReg(x86.EAX, 8)
	ebx := t.b.Get(machineLoc(x86.EBX))
	ea := t.b.Arith(rtl.Add, ebx, t.b.CastU(32, al))
	v := t.loadMem(t.segOverridable(x86.DS), ea, 8)
	t.storeReg(x86.EAX, v)
	t.fallThrough()
	return nil
}

// convCmpxchg compares the accumulator with the destination; on equality
// the source is stored, otherwise the destination loads the accumulator.
// Flags are set as by CMP.
func (t *tr) convCmpxchg() error {
	b := t.b
	dst, srcReg := t.inst.Args[0], t.inst.Args[1]
	acc := t.loadReg(x86.EAX, t.size)
	old := t.loadOp(dst)
	src := t.loadOp(srcReg)
	r := b.Arith(rtl.Sub, acc, old)
	t.setSubFlags(acc, old, b.Bool(false), r)
	t.setSZP(r)
	equal := b.Test(rtl.Eq, acc, old)
	t.storeOp(dst, b.Mux(equal, src, old))
	t.storeReg(x86.EAX, b.Mux(equal, acc, old))
	t.fallThrough()
	return nil
}

// convXadd is the exchange-and-add: dst gets dst+src, src register gets
// the old dst; flags as by ADD.
func (t *tr) convXadd() error {
	dst, srcReg := t.inst.Args[0], t.inst.Args[1]
	old := t.loadOp(dst)
	src := t.loadOp(srcReg)
	sum := t.b.Arith(rtl.Add, old, src)
	t.storeOp(srcReg, old)
	t.storeOp(dst, sum)
	t.setAddFlags(old, src, t.b.Bool(false), sum)
	t.setSZP(sum)
	t.fallThrough()
	return nil
}

// convEnter builds a stack frame: push EBP, set EBP to the new top, and
// reserve size bytes. Only nesting level 0 (what compilers emit) is
// modeled; other levels trap.
func (t *tr) convEnter() error {
	size := t.inst.Args[0].(x86.Imm).Val
	level := t.inst.Args[1].(x86.Imm).Val % 32
	if level != 0 {
		t.b.Trap("enter: nesting levels not modeled")
		return nil
	}
	ebp := t.b.Get(machineEBP())
	t.pushVar(ebp)
	frame := t.b.Get(machineESP())
	t.b.Set(machineEBP(), frame)
	newESP := t.b.Arith(rtl.Sub, frame, t.b.ImmU(32, uint64(size)))
	t.b.Set(machineESP(), newESP)
	t.fallThrough()
	return nil
}

// convCmpxchg8b compares EDX:EAX against a 64-bit memory operand: on
// equality ZF is set and ECX:EBX is stored; otherwise the operand loads
// into EDX:EAX. Other flags are untouched (Intel defines only ZF).
func (t *tr) convCmpxchg8b() error {
	b := t.b
	mem := t.inst.Args[0].(x86.MemOp)
	seg := t.defaultSeg(mem.Addr)
	ea := t.effAddr(mem.Addr)
	lo := t.loadMem(seg, ea, 32)
	hiEA := b.Arith(rtl.Add, ea, b.ImmU(32, 4))
	hi := t.loadMem(seg, hiEA, 32)
	eax := b.Get(machineLoc(x86.EAX))
	edx := b.Get(machineLoc(x86.EDX))
	eqLo := b.Test(rtl.Eq, lo, eax)
	eqHi := b.Test(rtl.Eq, hi, edx)
	equal := b.Arith(rtl.And, eqLo, eqHi)
	t.setFlag(x86.ZF, equal)
	ebx := b.Get(machineLoc(x86.EBX))
	ecx := b.Get(machineLoc(x86.ECX))
	t.storeMem(seg, ea, b.Mux(equal, ebx, lo))
	t.storeMem(seg, hiEA, b.Mux(equal, ecx, hi))
	b.Set(machineLoc(x86.EAX), b.Mux(equal, eax, lo))
	b.Set(machineLoc(x86.EDX), b.Mux(equal, edx, hi))
	t.fallThrough()
	return nil
}

// convBswap reverses the bytes of a 32-bit register.
func (t *tr) convBswap() error {
	b := t.b
	r := t.inst.Args[0].(x86.RegOp).Reg
	v := b.Get(machineLoc(r))
	b0 := b.Arith(rtl.And, v, b.ImmU(32, 0xff))
	b1 := b.Arith(rtl.And, b.Arith(rtl.ShrU, v, b.ImmU(32, 8)), b.ImmU(32, 0xff))
	b2 := b.Arith(rtl.And, b.Arith(rtl.ShrU, v, b.ImmU(32, 16)), b.ImmU(32, 0xff))
	b3 := b.Arith(rtl.ShrU, v, b.ImmU(32, 24))
	out := b.Arith(rtl.Or,
		b.Arith(rtl.Or,
			b.Arith(rtl.Shl, b0, b.ImmU(32, 24)),
			b.Arith(rtl.Shl, b1, b.ImmU(32, 16))),
		b.Arith(rtl.Or,
			b.Arith(rtl.Shl, b2, b.ImmU(32, 8)),
			b3))
	b.Set(machineLoc(r), out)
	t.fallThrough()
	return nil
}

package semantics

import (
	"rocksalt/internal/rtl"
	"rocksalt/internal/x86"
)

// convString translates the string instructions. A REP-prefixed string
// instruction performs at most one iteration per machine step: it tests
// ECX, performs the element operation, decrements ECX, and leaves the PC
// on itself while iterations remain — the standard way to express
// iteration in a language without loops (the machine re-decodes the same
// instruction until the count is exhausted).
func (t *tr) convString() error {
	b := t.b
	i := t.inst
	rep := i.Prefix.Rep || i.Prefix.RepN
	n := uint64(t.size / 8)

	self := b.ImmU(32, uint64(t.pc))
	next := b.ImmU(32, uint64(t.nextPC()))

	ecx := b.Get(machineLoc(x86.ECX))
	countZero := b.IsZero(ecx)

	// Element step: direction delta = DF ? -n : +n.
	df := t.flag(x86.DF)
	fwd := b.ImmU(32, n)
	back := b.ImmU(32, uint64(-int64(n)))
	delta := b.Mux(df, back, fwd)

	esi := b.Get(machineLoc(x86.ESI))
	edi := b.Get(machineLoc(x86.EDI))
	srcSeg := t.segOverridable(x86.DS) // ESI side, overridable
	// The EDI side always uses ES and cannot be overridden.

	// For REP forms we must not perform the element op when ECX is zero.
	// Memory effects cannot be muxed away once emitted, so the zero-count
	// case is handled by making every address computation collapse to the
	// current pointer and every store re-store the loaded value... that
	// quickly becomes unreadable. Instead we exploit that a REP with
	// ECX=0 only sets PC := next; the simulator executes this RTL
	// sequence, so we guard the whole element operation behind a
	// conditional skip using Mux on the *addresses written*: when
	// ECX = 0 under REP, stores write back the bytes just loaded.
	guard := func(storeVal, origVal rtl.Var) rtl.Var {
		if !rep {
			return storeVal
		}
		return b.Mux(countZero, origVal, storeVal)
	}

	advanceSI := false
	advanceDI := false
	switch i.Op {
	case x86.MOVS:
		v := t.loadMem(srcSeg, esi, t.size)
		t.storeMem(x86.ES, edi, guard(v, t.loadMem(x86.ES, edi, t.size)))
		advanceSI, advanceDI = true, true
	case x86.STOS:
		acc := t.loadReg(x86.EAX, t.size)
		t.storeMem(x86.ES, edi, guard(acc, t.loadMem(x86.ES, edi, t.size)))
		advanceDI = true
	case x86.LODS:
		v := t.loadMem(srcSeg, esi, t.size)
		old := t.loadReg(x86.EAX, t.size)
		t.storeReg(x86.EAX, guard(v, old))
		advanceSI = true
	case x86.SCAS:
		acc := t.loadReg(x86.EAX, t.size)
		v := t.loadMem(x86.ES, edi, t.size)
		r := b.Arith(rtl.Sub, acc, v)
		t.setSubFlagsGuarded(acc, v, r, rep, countZero)
		advanceDI = true
	case x86.CMPS:
		vs := t.loadMem(srcSeg, esi, t.size)
		vd := t.loadMem(x86.ES, edi, t.size)
		r := b.Arith(rtl.Sub, vs, vd)
		t.setSubFlagsGuarded(vs, vd, r, rep, countZero)
		advanceSI, advanceDI = true, true
	}

	// Pointer updates (skipped when a REP count is exhausted).
	adv := delta
	if rep {
		adv = b.Mux(countZero, b.ImmU(32, 0), delta)
	}
	if advanceSI {
		b.Set(machineLoc(x86.ESI), b.Arith(rtl.Add, esi, adv))
	}
	if advanceDI {
		b.Set(machineLoc(x86.EDI), b.Arith(rtl.Add, edi, adv))
	}

	if !rep {
		t.fallThrough()
		return nil
	}

	// REP bookkeeping: decrement ECX (unless already zero) and decide
	// whether to iterate. REPE/REPNE on CMPS/SCAS additionally test ZF.
	one := b.ImmU(32, 1)
	dec := b.Arith(rtl.Sub, ecx, one)
	newECX := b.Mux(countZero, ecx, dec)
	b.Set(machineLoc(x86.ECX), newECX)
	done := b.IsZero(newECX)
	if i.Op == x86.CMPS || i.Op == x86.SCAS {
		zf := t.flag(x86.ZF)
		if i.Prefix.Rep { // REPE: stop when ZF clear
			done = b.Arith(rtl.Or, done, b.Not1(zf))
		} else { // REPNE: stop when ZF set
			done = b.Arith(rtl.Or, done, zf)
		}
	}
	done = b.Arith(rtl.Or, done, countZero)
	t.setPC(b.Mux(done, next, self))
	return nil
}

// setSubFlagsGuarded sets comparison flags, preserving them when a REP
// count of zero suppresses the iteration.
func (t *tr) setSubFlagsGuarded(a, v, r rtl.Var, rep bool, countZero rtl.Var) {
	if !rep {
		t.setSubFlags(a, v, t.b.Bool(false), r)
		t.setSZP(r)
		return
	}
	saved := make(map[x86.Flag]rtl.Var)
	for _, f := range []x86.Flag{x86.CF, x86.OF, x86.AF, x86.SF, x86.ZF, x86.PF} {
		saved[f] = t.flag(f)
	}
	t.setSubFlags(a, v, t.b.Bool(false), r)
	t.setSZP(r)
	for _, f := range []x86.Flag{x86.CF, x86.OF, x86.AF, x86.SF, x86.ZF, x86.PF} {
		t.setFlag(f, t.b.Mux(countZero, saved[f], t.flag(f)))
	}
}

package semantics_test

import (
	"testing"

	"rocksalt/internal/rtl"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/machine"
	"rocksalt/internal/x86/semantics"
)

// exec translates and runs one instruction on a fresh flat-segment state,
// returning the state. Registers and flags may be preset via mut.
func exec(t *testing.T, inst x86.Inst, length int, mut func(*machine.State)) *machine.State {
	t.Helper()
	st := machine.New()
	if mut != nil {
		mut(st)
	}
	prog, err := semantics.Translate(inst, 0x1000, length)
	if err != nil {
		t.Fatalf("translate %v: %v", inst, err)
	}
	if err := rtl.Exec(prog, rtl.NewState(st, nil)); err != nil {
		t.Fatalf("exec %v: %v", inst, err)
	}
	return st
}

func reg(r x86.Reg) x86.Operand { return x86.RegOp{Reg: r} }
func imm(v uint32) x86.Operand  { return x86.Imm{Val: v} }

func TestAddFlags(t *testing.T) {
	cases := []struct {
		a, b                   uint32
		cf, zf, sf, of, af, pf bool
	}{
		{1, 2, false, false, false, false, false, true},
		{0xffffffff, 1, true, true, false, false, true, true},
		{0x7fffffff, 1, false, false, true, true, true, true},
		{0x80000000, 0x80000000, true, true, false, true, false, true},
		{0, 0, false, true, false, false, false, true},
		{0x0f, 0x01, false, false, false, false, true, false},
	}
	for _, c := range cases {
		st := exec(t, x86.Inst{Op: x86.ADD, W: true, Args: []x86.Operand{reg(x86.EAX), imm(c.b)}}, 5,
			func(s *machine.State) { s.Regs[x86.EAX] = c.a })
		if st.Regs[x86.EAX] != c.a+c.b {
			t.Errorf("add(%#x,%#x) = %#x", c.a, c.b, st.Regs[x86.EAX])
		}
		got := [6]bool{st.Flags[x86.CF], st.Flags[x86.ZF], st.Flags[x86.SF],
			st.Flags[x86.OF], st.Flags[x86.AF], st.Flags[x86.PF]}
		want := [6]bool{c.cf, c.zf, c.sf, c.of, c.af, c.pf}
		if got != want {
			t.Errorf("add(%#x,%#x) flags CF/ZF/SF/OF/AF/PF = %v, want %v", c.a, c.b, got, want)
		}
		if st.PC != 0x1005 {
			t.Errorf("PC after add = %#x", st.PC)
		}
	}
}

func TestSubCmpFlags(t *testing.T) {
	st := exec(t, x86.Inst{Op: x86.CMP, W: true, Args: []x86.Operand{reg(x86.EAX), imm(5)}}, 3,
		func(s *machine.State) { s.Regs[x86.EAX] = 3 })
	if !st.Flags[x86.CF] || !st.Flags[x86.SF] || st.Flags[x86.ZF] || st.Flags[x86.OF] {
		t.Error("3 cmp 5: borrow and sign expected")
	}
	if st.Regs[x86.EAX] != 3 {
		t.Error("cmp must not write its destination")
	}
	// Signed overflow: min-int minus 1.
	st = exec(t, x86.Inst{Op: x86.SUB, W: true, Args: []x86.Operand{reg(x86.EAX), imm(1)}}, 3,
		func(s *machine.State) { s.Regs[x86.EAX] = 0x80000000 })
	if !st.Flags[x86.OF] || st.Flags[x86.CF] {
		t.Error("min-int - 1 must set OF, not CF")
	}
}

func TestAdcSbbUseCarry(t *testing.T) {
	st := exec(t, x86.Inst{Op: x86.ADC, W: true, Args: []x86.Operand{reg(x86.EAX), imm(0)}}, 3,
		func(s *machine.State) {
			s.Regs[x86.EAX] = 5
			s.Flags[x86.CF] = true
		})
	if st.Regs[x86.EAX] != 6 {
		t.Errorf("adc with carry = %d", st.Regs[x86.EAX])
	}
	st = exec(t, x86.Inst{Op: x86.SBB, W: true, Args: []x86.Operand{reg(x86.EAX), imm(0)}}, 3,
		func(s *machine.State) {
			s.Regs[x86.EAX] = 5
			s.Flags[x86.CF] = true
		})
	if st.Regs[x86.EAX] != 4 {
		t.Errorf("sbb with borrow = %d", st.Regs[x86.EAX])
	}
}

func TestIncPreservesCF(t *testing.T) {
	st := exec(t, x86.Inst{Op: x86.INC, W: true, Args: []x86.Operand{reg(x86.EBX)}}, 1,
		func(s *machine.State) {
			s.Regs[x86.EBX] = 0xffffffff
			s.Flags[x86.CF] = true
		})
	if st.Regs[x86.EBX] != 0 || !st.Flags[x86.ZF] {
		t.Error("inc wrap wrong")
	}
	if !st.Flags[x86.CF] {
		t.Error("inc must preserve CF")
	}
}

func TestPartialRegisterWrites(t *testing.T) {
	// mov ah, 0x12 must touch only bits 8..15 of EAX.
	st := exec(t, x86.Inst{Op: x86.MOV, W: false, Args: []x86.Operand{reg(x86.Reg(4)), imm(0x12)}}, 2,
		func(s *machine.State) { s.Regs[x86.EAX] = 0xaabbccdd })
	if st.Regs[x86.EAX] != 0xaabb12dd {
		t.Errorf("mov ah: eax = %#x", st.Regs[x86.EAX])
	}
	// mov al only low byte.
	st = exec(t, x86.Inst{Op: x86.MOV, W: false, Args: []x86.Operand{reg(x86.EAX), imm(0x34)}}, 2,
		func(s *machine.State) { s.Regs[x86.EAX] = 0xaabbccdd })
	if st.Regs[x86.EAX] != 0xaabbcc34 {
		t.Errorf("mov al: eax = %#x", st.Regs[x86.EAX])
	}
	// 16-bit write preserves the top half.
	st = exec(t, x86.Inst{Op: x86.MOV, W: true, Prefix: x86.Prefix{OpSize: true},
		Args: []x86.Operand{reg(x86.EAX), imm(0x1234)}}, 4,
		func(s *machine.State) { s.Regs[x86.EAX] = 0xaabbccdd })
	if st.Regs[x86.EAX] != 0xaabb1234 {
		t.Errorf("mov ax: eax = %#x", st.Regs[x86.EAX])
	}
}

func TestMulWidening(t *testing.T) {
	st := exec(t, x86.Inst{Op: x86.MUL, W: true, Args: []x86.Operand{reg(x86.EBX)}}, 2,
		func(s *machine.State) {
			s.Regs[x86.EAX] = 0x10000000
			s.Regs[x86.EBX] = 0x100
		})
	if st.Regs[x86.EAX] != 0 || st.Regs[x86.EDX] != 0x10 {
		t.Errorf("mul: edx:eax = %#x:%#x", st.Regs[x86.EDX], st.Regs[x86.EAX])
	}
	if !st.Flags[x86.CF] || !st.Flags[x86.OF] {
		t.Error("mul with significant high half must set CF/OF")
	}
	// 8-bit: AX = AL * r/m8.
	st = exec(t, x86.Inst{Op: x86.MUL, W: false, Args: []x86.Operand{reg(x86.EBX)}}, 2,
		func(s *machine.State) {
			s.Regs[x86.EAX] = 0xff // AL
			s.Regs[x86.EBX] = 0xff // BL
		})
	if st.Regs[x86.EAX]&0xffff != 0xfe01 {
		t.Errorf("8-bit mul: ax = %#x", st.Regs[x86.EAX]&0xffff)
	}
}

func TestImulSignedness(t *testing.T) {
	st := exec(t, x86.Inst{Op: x86.IMUL, W: true,
		Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX), imm(0xffffffff)}}, 3, // eax = ebx * -1
		func(s *machine.State) { s.Regs[x86.EBX] = 5 })
	if int32(st.Regs[x86.EAX]) != -5 {
		t.Errorf("imul: %d", int32(st.Regs[x86.EAX]))
	}
	if st.Flags[x86.CF] || st.Flags[x86.OF] {
		t.Error("no overflow expected")
	}
}

func TestDivQuotientRemainder(t *testing.T) {
	st := exec(t, x86.Inst{Op: x86.DIV, W: true, Args: []x86.Operand{reg(x86.EBX)}}, 2,
		func(s *machine.State) {
			s.Regs[x86.EDX] = 0
			s.Regs[x86.EAX] = 100
			s.Regs[x86.EBX] = 7
		})
	if st.Regs[x86.EAX] != 14 || st.Regs[x86.EDX] != 2 {
		t.Errorf("div: q=%d r=%d", st.Regs[x86.EAX], st.Regs[x86.EDX])
	}
	// Signed division with negative dividend.
	st = exec(t, x86.Inst{Op: x86.IDIV, W: true, Args: []x86.Operand{reg(x86.EBX)}}, 2,
		func(s *machine.State) {
			s.Regs[x86.EDX] = 0xffffffff
			s.Regs[x86.EAX] = 0xffffff9c // -100
			s.Regs[x86.EBX] = 7
		})
	if int32(st.Regs[x86.EAX]) != -14 || int32(st.Regs[x86.EDX]) != -2 {
		t.Errorf("idiv: q=%d r=%d", int32(st.Regs[x86.EAX]), int32(st.Regs[x86.EDX]))
	}
}

func TestDivOverflowTraps(t *testing.T) {
	prog, err := semantics.Translate(
		x86.Inst{Op: x86.DIV, W: true, Args: []x86.Operand{reg(x86.EBX)}}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := machine.New()
	st.Regs[x86.EDX] = 5 // dividend 5 * 2^32 + ...: quotient overflows
	st.Regs[x86.EBX] = 2
	if err := rtl.Exec(prog, rtl.NewState(st, nil)); err == nil {
		t.Fatal("quotient overflow must trap")
	}
}

func TestShiftFlagBehavior(t *testing.T) {
	// Count 0 leaves flags alone.
	st := exec(t, x86.Inst{Op: x86.SHL, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.ECX)}}, 2,
		func(s *machine.State) {
			s.Regs[x86.EAX] = 0xff
			s.Regs[x86.ECX] = 0
			s.Flags[x86.CF] = true
			s.Flags[x86.ZF] = true
		})
	if !st.Flags[x86.CF] || !st.Flags[x86.ZF] || st.Regs[x86.EAX] != 0xff {
		t.Error("zero-count shift must be a no-op")
	}
	// SHL 1 of the MSB sets CF.
	st = exec(t, x86.Inst{Op: x86.SHL, W: true, Args: []x86.Operand{reg(x86.EAX), imm(1)}}, 3,
		func(s *machine.State) { s.Regs[x86.EAX] = 0x80000000 })
	if !st.Flags[x86.CF] || st.Regs[x86.EAX] != 0 || !st.Flags[x86.ZF] {
		t.Error("shl msb out wrong")
	}
	// SAR keeps sign.
	st = exec(t, x86.Inst{Op: x86.SAR, W: true, Args: []x86.Operand{reg(x86.EAX), imm(4)}}, 3,
		func(s *machine.State) { s.Regs[x86.EAX] = 0x80000000 })
	if st.Regs[x86.EAX] != 0xf8000000 {
		t.Errorf("sar = %#x", st.Regs[x86.EAX])
	}
}

func TestRotateThroughCarry(t *testing.T) {
	st := exec(t, x86.Inst{Op: x86.RCL, W: false, Args: []x86.Operand{reg(x86.EAX), imm(1)}}, 3,
		func(s *machine.State) {
			s.Regs[x86.EAX] = 0x80
			s.Flags[x86.CF] = false
		})
	if st.Regs[x86.EAX]&0xff != 0 || !st.Flags[x86.CF] {
		t.Errorf("rcl: al=%#x cf=%v", st.Regs[x86.EAX]&0xff, st.Flags[x86.CF])
	}
	st = exec(t, x86.Inst{Op: x86.RCR, W: false, Args: []x86.Operand{reg(x86.EAX), imm(1)}}, 3,
		func(s *machine.State) {
			s.Regs[x86.EAX] = 0x01
			s.Flags[x86.CF] = true
		})
	if st.Regs[x86.EAX]&0xff != 0x80 || !st.Flags[x86.CF] {
		t.Errorf("rcr: al=%#x cf=%v", st.Regs[x86.EAX]&0xff, st.Flags[x86.CF])
	}
}

func TestBitScan(t *testing.T) {
	st := exec(t, x86.Inst{Op: x86.BSF, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX)}}, 3,
		func(s *machine.State) { s.Regs[x86.EBX] = 0x00f00000 })
	if st.Regs[x86.EAX] != 20 || st.Flags[x86.ZF] {
		t.Errorf("bsf = %d", st.Regs[x86.EAX])
	}
	st = exec(t, x86.Inst{Op: x86.BSR, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX)}}, 3,
		func(s *machine.State) { s.Regs[x86.EBX] = 0x00f00000 })
	if st.Regs[x86.EAX] != 23 || st.Flags[x86.ZF] {
		t.Errorf("bsr = %d", st.Regs[x86.EAX])
	}
	st = exec(t, x86.Inst{Op: x86.BSF, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX)}}, 3, nil)
	if !st.Flags[x86.ZF] {
		t.Error("bsf of zero sets ZF")
	}
}

func TestCmpxchg(t *testing.T) {
	// Equal: ZF set, destination gets the source.
	st := exec(t, x86.Inst{Op: x86.CMPXCHG, W: true, Args: []x86.Operand{reg(x86.EBX), reg(x86.ECX)}}, 3,
		func(s *machine.State) {
			s.Regs[x86.EAX] = 7
			s.Regs[x86.EBX] = 7
			s.Regs[x86.ECX] = 99
		})
	if st.Regs[x86.EBX] != 99 || !st.Flags[x86.ZF] {
		t.Error("cmpxchg equal case wrong")
	}
	// Unequal: accumulator loads destination.
	st = exec(t, x86.Inst{Op: x86.CMPXCHG, W: true, Args: []x86.Operand{reg(x86.EBX), reg(x86.ECX)}}, 3,
		func(s *machine.State) {
			s.Regs[x86.EAX] = 1
			s.Regs[x86.EBX] = 7
			s.Regs[x86.ECX] = 99
		})
	if st.Regs[x86.EAX] != 7 || st.Regs[x86.EBX] != 7 || st.Flags[x86.ZF] {
		t.Error("cmpxchg unequal case wrong")
	}
}

func TestLahfSahfRoundTrip(t *testing.T) {
	st := exec(t, x86.Inst{Op: x86.LAHF}, 1, func(s *machine.State) {
		s.Flags[x86.CF] = true
		s.Flags[x86.ZF] = true
		s.Flags[x86.SF] = false
		s.Flags[x86.PF] = true
		s.Flags[x86.AF] = false
	})
	ah := st.Regs[x86.EAX] >> 8 & 0xff
	if ah != 0b01000111 {
		t.Fatalf("lahf ah = %#b", ah)
	}
	st2 := exec(t, x86.Inst{Op: x86.SAHF}, 1, func(s *machine.State) {
		s.Regs[x86.EAX] = ah << 8
	})
	if !st2.Flags[x86.CF] || !st2.Flags[x86.ZF] || st2.Flags[x86.SF] || !st2.Flags[x86.PF] || st2.Flags[x86.AF] {
		t.Fatal("sahf did not restore flags")
	}
}

func TestConditionCodes(t *testing.T) {
	// setl: SF != OF.
	st := exec(t, x86.Inst{Op: x86.SETcc, Cond: x86.CondL, Args: []x86.Operand{reg(x86.EAX)}}, 3,
		func(s *machine.State) {
			s.Flags[x86.SF] = true
			s.Flags[x86.OF] = false
		})
	if st.Regs[x86.EAX]&0xff != 1 {
		t.Error("setl must set AL when SF!=OF")
	}
	// setnle: !(ZF || SF != OF).
	st = exec(t, x86.Inst{Op: x86.SETcc, Cond: x86.CondNLE, Args: []x86.Operand{reg(x86.EAX)}}, 3,
		func(s *machine.State) {
			s.Flags[x86.ZF] = false
			s.Flags[x86.SF] = true
			s.Flags[x86.OF] = true
		})
	if st.Regs[x86.EAX]&0xff != 1 {
		t.Error("setnle wrong")
	}
	// setbe: CF || ZF.
	st = exec(t, x86.Inst{Op: x86.SETcc, Cond: x86.CondBE, Args: []x86.Operand{reg(x86.EAX)}}, 3,
		func(s *machine.State) { s.Flags[x86.CF] = true })
	if st.Regs[x86.EAX]&0xff != 1 {
		t.Error("setbe wrong")
	}
}

func TestDecimalAdjust(t *testing.T) {
	// DAA: 0x0f + packed adjust -> 0x15.
	st := exec(t, x86.Inst{Op: x86.DAA}, 1, func(s *machine.State) {
		s.Regs[x86.EAX] = 0x0f
	})
	if st.Regs[x86.EAX]&0xff != 0x15 || !st.Flags[x86.AF] {
		t.Errorf("daa(0x0f) = %#x af=%v", st.Regs[x86.EAX]&0xff, st.Flags[x86.AF])
	}
	// AAM splits AL by base 10.
	st = exec(t, x86.Inst{Op: x86.AAM, Args: []x86.Operand{imm(10)}}, 2, func(s *machine.State) {
		s.Regs[x86.EAX] = 47
	})
	if st.Regs[x86.EAX]&0xff != 7 || st.Regs[x86.EAX]>>8&0xff != 4 {
		t.Errorf("aam(47) ah:al = %#x", st.Regs[x86.EAX]&0xffff)
	}
	// AAD recombines.
	st = exec(t, x86.Inst{Op: x86.AAD, Args: []x86.Operand{imm(10)}}, 2, func(s *machine.State) {
		s.Regs[x86.EAX] = 0x0407 // AH=4 AL=7
	})
	if st.Regs[x86.EAX]&0xffff != 47 {
		t.Errorf("aad = %d", st.Regs[x86.EAX]&0xffff)
	}
}

func TestSegmentOverridePicksSegment(t *testing.T) {
	fs := x86.FS
	st := machine.New()
	st.SegBase[x86.FS] = 0x5000
	st.Mem.Store(0x5010, 0x77)
	inst := x86.Inst{Op: x86.MOV, W: false, Prefix: x86.Prefix{Seg: &fs},
		Args: []x86.Operand{reg(x86.EAX), x86.MemOp{Addr: x86.Addr{Disp: 0x10}}}}
	prog, err := semantics.Translate(inst, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := rtl.Exec(prog, rtl.NewState(st, nil)); err != nil {
		t.Fatal(err)
	}
	if st.Regs[x86.EAX]&0xff != 0x77 {
		t.Fatalf("fs override ignored: al=%#x", st.Regs[x86.EAX]&0xff)
	}
}

func TestEBPDefaultsToStackSegment(t *testing.T) {
	ebp := x86.EBP
	st := machine.New()
	st.SegBase[x86.SS] = 0x9000
	st.Regs[x86.EBP] = 0x10
	st.Mem.Store(0x9010, 0x55)
	inst := x86.Inst{Op: x86.MOV, W: false,
		Args: []x86.Operand{reg(x86.EAX), x86.MemOp{Addr: x86.Addr{Base: &ebp}}}}
	prog, err := semantics.Translate(inst, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := rtl.Exec(prog, rtl.NewState(st, nil)); err != nil {
		t.Fatal(err)
	}
	if st.Regs[x86.EAX]&0xff != 0x55 {
		t.Fatal("EBP-based access must default to SS")
	}
}

func TestUnsupportedInstructionsTrap(t *testing.T) {
	for _, op := range []x86.Op{x86.HLT, x86.INT3, x86.IN, x86.OUT, x86.IRET} {
		inst := x86.Inst{Op: op, W: true}
		if op == x86.IN || op == x86.OUT {
			inst.Args = []x86.Operand{reg(x86.EAX), reg(x86.EDX)}
		}
		prog, err := semantics.Translate(inst, 0, 1)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if err := rtl.Exec(prog, rtl.NewState(machine.New(), nil)); err == nil {
			t.Errorf("%v must trap", op)
		}
	}
}

func TestPushEsp(t *testing.T) {
	// PUSH ESP pushes the pre-decrement value.
	st := exec(t, x86.Inst{Op: x86.PUSH, W: true, Args: []x86.Operand{reg(x86.ESP)}}, 1,
		func(s *machine.State) { s.Regs[x86.ESP] = 0x100 })
	if st.Regs[x86.ESP] != 0xfc {
		t.Fatalf("esp after push = %#x", st.Regs[x86.ESP])
	}
	got := uint32(st.Mem.Load(0xfc)) | uint32(st.Mem.Load(0xfd))<<8 |
		uint32(st.Mem.Load(0xfe))<<16 | uint32(st.Mem.Load(0xff))<<24
	if got != 0x100 {
		t.Fatalf("pushed value = %#x, want pre-decrement 0x100", got)
	}
}

func TestRTLOpCountPerInstruction(t *testing.T) {
	// The design-note metric: translations are small RTL terms.
	prog, err := semantics.Translate(
		x86.Inst{Op: x86.ADD, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX)}}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) == 0 || len(prog) > 120 {
		t.Fatalf("conv_ADD emits %d RTL ops; expected a small term", len(prog))
	}
}

func TestEnter(t *testing.T) {
	st := exec(t, x86.Inst{Op: x86.ENTER, W: true,
		Args: []x86.Operand{imm(0x20), imm(0)}}, 4,
		func(s *machine.State) {
			s.Regs[x86.ESP] = 0x1000
			s.Regs[x86.EBP] = 0xaabbccdd
		})
	if st.Regs[x86.EBP] != 0xffc {
		t.Fatalf("ebp = %#x, want 0xffc", st.Regs[x86.EBP])
	}
	if st.Regs[x86.ESP] != 0xffc-0x20 {
		t.Fatalf("esp = %#x", st.Regs[x86.ESP])
	}
	// The old EBP was pushed.
	got := st.Mem.ReadBytes(0xffc, 4)
	if got[0] != 0xdd || got[3] != 0xaa {
		t.Fatalf("saved ebp = % x", got)
	}
	// Nesting levels trap.
	prog, err := semantics.Translate(x86.Inst{Op: x86.ENTER, W: true,
		Args: []x86.Operand{imm(0), imm(1)}}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := rtl.Exec(prog, rtl.NewState(machine.New(), nil)); err == nil {
		t.Fatal("enter with nesting must trap")
	}
}

func TestCmpxchg8b(t *testing.T) {
	// Equal case: memory gets ECX:EBX and ZF is set.
	st := exec(t, x86.Inst{Op: x86.CMPXCHG8B, W: true,
		Args: []x86.Operand{x86.MemOp{Addr: x86.Addr{Disp: 0x100}}}}, 3,
		func(s *machine.State) {
			s.Regs[x86.EAX] = 0x11111111
			s.Regs[x86.EDX] = 0x22222222
			s.Regs[x86.EBX] = 0xdeadbeef
			s.Regs[x86.ECX] = 0xcafebabe
			s.Mem.WriteBytes(0x100, []byte{0x11, 0x11, 0x11, 0x11, 0x22, 0x22, 0x22, 0x22})
		})
	if !st.Flags[x86.ZF] {
		t.Fatal("equal cmpxchg8b must set ZF")
	}
	got := st.Mem.ReadBytes(0x100, 8)
	if got[0] != 0xef || got[4] != 0xbe {
		t.Fatalf("memory after equal cmpxchg8b: % x", got)
	}
	// Unequal case: EDX:EAX loads the memory value.
	st = exec(t, x86.Inst{Op: x86.CMPXCHG8B, W: true,
		Args: []x86.Operand{x86.MemOp{Addr: x86.Addr{Disp: 0x100}}}}, 3,
		func(s *machine.State) {
			s.Regs[x86.EAX] = 1
			s.Mem.WriteBytes(0x100, []byte{8, 7, 6, 5, 4, 3, 2, 1})
		})
	if st.Flags[x86.ZF] {
		t.Fatal("unequal cmpxchg8b must clear ZF")
	}
	if st.Regs[x86.EAX] != 0x05060708 || st.Regs[x86.EDX] != 0x01020304 {
		t.Fatalf("edx:eax = %#x:%#x", st.Regs[x86.EDX], st.Regs[x86.EAX])
	}
}

func TestRdtscCpuidZeroOracle(t *testing.T) {
	st := exec(t, x86.Inst{Op: x86.RDTSC, W: true}, 2, func(s *machine.State) {
		s.Regs[x86.EAX] = 99
		s.Regs[x86.EDX] = 99
	})
	if st.Regs[x86.EAX] != 0 || st.Regs[x86.EDX] != 0 {
		t.Fatal("rdtsc under the zero oracle yields zero")
	}
	if st.PC != 0x1002 {
		t.Fatal("rdtsc must fall through")
	}
	st = exec(t, x86.Inst{Op: x86.CPUID, W: true}, 2, func(s *machine.State) {
		s.Regs[x86.EBX] = 7
	})
	if st.Regs[x86.EBX] != 0 {
		t.Fatal("cpuid overwrites EBX")
	}
}

func TestUd2Traps(t *testing.T) {
	prog, err := semantics.Translate(x86.Inst{Op: x86.UD2}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rtl.Exec(prog, rtl.NewState(machine.New(), nil)); err == nil {
		t.Fatal("ud2 must trap")
	}
}

func TestAddr16Wraparound(t *testing.T) {
	// a16 mov al, [bx+si] with BX+SI exceeding 0xffff must wrap at 64K.
	ebx, esi := x86.EBX, x86.ESI
	inst := x86.Inst{Op: x86.MOV, W: false, Prefix: x86.Prefix{AddrSize: true},
		Args: []x86.Operand{reg(x86.EAX),
			x86.MemOp{Addr: x86.Addr{Base: &ebx, Index: &esi, Scale: 1}}}}
	st := exec(t, inst, 3, func(s *machine.State) {
		s.Regs[x86.EBX] = 0xc000
		s.Regs[x86.ESI] = 0x5000 // c000+5000 = 0x11000 -> wraps to 0x1000
		s.Mem.Store(0x1000, 0x5a)
		s.Mem.Store(0x11000, 0xff) // must NOT be read
	})
	if got := st.Regs[x86.EAX] & 0xff; got != 0x5a {
		t.Fatalf("a16 EA did not wrap: al = %#x", got)
	}
	// High 16 bits of registers are ignored too.
	st = exec(t, inst, 3, func(s *machine.State) {
		s.Regs[x86.EBX] = 0xdead0100
		s.Regs[x86.ESI] = 0x00000010
		s.Mem.Store(0x110, 0x77)
	})
	if got := st.Regs[x86.EAX] & 0xff; got != 0x77 {
		t.Fatalf("a16 EA used high register bits: al = %#x", got)
	}
}

// TestOracleSensitivity: the choose operation really is the only source
// of non-determinism — defined results are oracle-independent, while
// documented-undefined results (RDTSC, BSF of zero) vary with the oracle.
func TestOracleSensitivity(t *testing.T) {
	run := func(inst x86.Inst, length int, mut func(*machine.State), oracle rtl.Oracle) *machine.State {
		st := machine.New()
		if mut != nil {
			mut(st)
		}
		prog, err := semantics.Translate(inst, 0x1000, length)
		if err != nil {
			t.Fatal(err)
		}
		if err := rtl.Exec(prog, rtl.NewState(st, oracle)); err != nil {
			t.Fatal(err)
		}
		return st
	}
	ones := &rtl.StreamOracle{Bits: []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}}

	// Defined: ADD result and all its flags are oracle-independent.
	add := x86.Inst{Op: x86.ADD, W: true, Args: []x86.Operand{reg(x86.EAX), imm(5)}}
	a := run(add, 3, nil, rtl.ZeroOracle{})
	b := run(add, 3, nil, ones)
	if !a.EqualRegs(b) {
		t.Fatalf("ADD must be deterministic: %s", a.Diff(b))
	}

	// Undefined: RDTSC's value comes from the oracle.
	rdtsc := x86.Inst{Op: x86.RDTSC, W: true}
	a = run(rdtsc, 2, nil, rtl.ZeroOracle{})
	b = run(rdtsc, 2, nil, ones)
	if a.Regs[x86.EAX] == b.Regs[x86.EAX] {
		t.Fatal("RDTSC must depend on the oracle")
	}

	// Undefined: BSF of zero leaves the destination to the oracle, but
	// ZF (defined) must agree.
	bsf := x86.Inst{Op: x86.BSF, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX)}}
	a = run(bsf, 3, nil, rtl.ZeroOracle{})
	b = run(bsf, 3, nil, ones)
	if a.Flags[x86.ZF] != b.Flags[x86.ZF] || !a.Flags[x86.ZF] {
		t.Fatal("BSF(0) must set ZF under every oracle")
	}
	if a.Regs[x86.EAX] == b.Regs[x86.EAX] {
		t.Fatal("BSF(0) destination must be oracle-chosen")
	}

	// MUL's SF/ZF/AF/PF are documented-undefined and oracle-chosen, while
	// the product is defined.
	mul := x86.Inst{Op: x86.MUL, W: true, Args: []x86.Operand{reg(x86.EBX)}}
	setup := func(s *machine.State) { s.Regs[x86.EAX], s.Regs[x86.EBX] = 6, 7 }
	a = run(mul, 2, setup, rtl.ZeroOracle{})
	b = run(mul, 2, setup, ones)
	if a.Regs[x86.EAX] != 42 || b.Regs[x86.EAX] != 42 {
		t.Fatal("product must be oracle-independent")
	}
	if a.Flags[x86.SF] == b.Flags[x86.SF] {
		t.Fatal("MUL's SF is undefined and must track the oracle")
	}
}

package semantics

import (
	"fmt"

	"rocksalt/internal/bits"
	"rocksalt/internal/rtl"
	"rocksalt/internal/x86"
)

// convBinArith translates the two-operand ALU family. The ADD case is the
// paper's Figure 4: load both operands, perform the bit-vector operation,
// store the result through set_op, then compute each flag.
func (t *tr) convBinArith() error {
	i := t.inst
	dst, src := i.Args[0], i.Args[1]
	a := t.loadOp(dst)
	bv := t.loadOp(src)
	b := t.b
	switch i.Op {
	case x86.ADD:
		r := b.Arith(rtl.Add, a, bv)
		t.storeOp(dst, r)
		t.setAddFlags(a, bv, b.Bool(false), r)
		t.setSZP(r)
	case x86.ADC:
		c := t.flag(x86.CF)
		r := b.Arith(rtl.Add, b.Arith(rtl.Add, a, bv), b.CastU(t.size, c))
		t.storeOp(dst, r)
		t.setAddFlags(a, bv, c, r)
		t.setSZP(r)
	case x86.SUB, x86.CMP:
		r := b.Arith(rtl.Sub, a, bv)
		if i.Op == x86.SUB {
			t.storeOp(dst, r)
		}
		t.setSubFlags(a, bv, b.Bool(false), r)
		t.setSZP(r)
	case x86.SBB:
		c := t.flag(x86.CF)
		r := b.Arith(rtl.Sub, b.Arith(rtl.Sub, a, bv), b.CastU(t.size, c))
		t.storeOp(dst, r)
		t.setSubFlags(a, bv, c, r)
		t.setSZP(r)
	case x86.AND, x86.OR, x86.XOR, x86.TEST:
		op := map[x86.Op]rtl.ArithOp{
			x86.AND: rtl.And, x86.TEST: rtl.And, x86.OR: rtl.Or, x86.XOR: rtl.Xor,
		}[i.Op]
		r := b.Arith(op, a, bv)
		if i.Op != x86.TEST {
			t.storeOp(dst, r)
		}
		t.setLogicFlags(r)
	}
	t.fallThrough()
	return nil
}

// convIncDec translates INC/DEC: like ADD/SUB by one, but CF is preserved.
func (t *tr) convIncDec() error {
	dst := t.inst.Args[0]
	a := t.loadOp(dst)
	one := t.b.ImmU(t.size, 1)
	savedCF := t.flag(x86.CF)
	var r rtl.Var
	if t.inst.Op == x86.INC {
		r = t.b.Arith(rtl.Add, a, one)
		t.setAddFlags(a, one, t.b.Bool(false), r)
	} else {
		r = t.b.Arith(rtl.Sub, a, one)
		t.setSubFlags(a, one, t.b.Bool(false), r)
	}
	t.storeOp(dst, r)
	t.setSZP(r)
	t.setFlag(x86.CF, savedCF) // INC/DEC leave CF untouched
	t.fallThrough()
	return nil
}

// convNeg translates two's complement negation: CF = (operand != 0).
func (t *tr) convNeg() error {
	dst := t.inst.Args[0]
	a := t.loadOp(dst)
	zero := t.b.ImmU(t.size, 0)
	r := t.b.Arith(rtl.Sub, zero, a)
	t.storeOp(dst, r)
	t.setSubFlags(zero, a, t.b.Bool(false), r)
	t.setSZP(r)
	t.fallThrough()
	return nil
}

// convNot translates bitwise complement; NOT affects no flags.
func (t *tr) convNot() error {
	dst := t.inst.Args[0]
	a := t.loadOp(dst)
	r := t.b.Arith(rtl.Xor, a, t.b.Imm(bits.AllOnes(t.size)))
	t.storeOp(dst, r)
	t.fallThrough()
	return nil
}

// convMul translates the widening multiplies. One-operand forms write the
// double-width product to (E)DX:(E)AX (or AX for byte operands); the two
// and three operand IMUL forms truncate.
func (t *tr) convMul() error {
	i := t.inst
	b := t.b
	signed := i.Op == x86.IMUL
	hiOp := rtl.MulHiU
	if signed {
		hiOp = rtl.MulHiS
	}
	switch len(i.Args) {
	case 1:
		src := t.loadOp(i.Args[0])
		acc := t.loadReg(x86.EAX, t.size)
		lo := b.Arith(rtl.Mul, acc, src)
		hi := b.Arith(hiOp, acc, src)
		if t.size == 8 {
			// AX = AL * r/m8: write AH:AL.
			t.storeReg(x86.EAX, lo)    // AL
			t.storeReg(x86.Reg(4), hi) // AH (code 4 at size 8)
		} else {
			t.storeReg(x86.EAX, lo)
			t.storeReg(x86.EDX, hi)
		}
		// CF=OF=1 iff the high half is significant: nonzero for MUL,
		// not the sign-fill of the low half for IMUL.
		var overflow rtl.Var
		if signed {
			fill := b.Arith(rtl.ShrS, lo, b.ImmU(t.size, uint64(t.size-1)))
			overflow = b.Not1(b.Test(rtl.Eq, hi, fill))
		} else {
			overflow = b.Not1(t.b.IsZero(hi))
		}
		t.setFlag(x86.CF, overflow)
		t.setFlag(x86.OF, overflow)
		t.chooseFlag(x86.SF)
		t.chooseFlag(x86.ZF)
		t.chooseFlag(x86.AF)
		t.chooseFlag(x86.PF)
	case 2, 3:
		a := t.loadOp(i.Args[1])
		var bv rtl.Var
		if len(i.Args) == 3 {
			bv = t.loadOp(i.Args[2])
		} else {
			bv = t.loadOp(i.Args[0])
		}
		lo := b.Arith(rtl.Mul, a, bv)
		hi := b.Arith(rtl.MulHiS, a, bv)
		t.storeOp(i.Args[0], lo)
		fill := b.Arith(rtl.ShrS, lo, b.ImmU(t.size, uint64(t.size-1)))
		overflow := b.Not1(b.Test(rtl.Eq, hi, fill))
		t.setFlag(x86.CF, overflow)
		t.setFlag(x86.OF, overflow)
		t.chooseFlag(x86.SF)
		t.chooseFlag(x86.ZF)
		t.chooseFlag(x86.AF)
		t.chooseFlag(x86.PF)
	default:
		return fmt.Errorf("semantics: bad mul arity")
	}
	t.fallThrough()
	return nil
}

// convDiv translates the unsigned and signed divides of the double-width
// accumulator, trapping (#DE) on zero divisors and quotient overflow.
func (t *tr) convDiv() error {
	i := t.inst
	b := t.b
	src := t.loadOp(i.Args[0])
	size := t.size
	wide := size * 2
	var dividend rtl.Var
	if size == 8 {
		dividend = t.b.CastU(16, t.loadReg(x86.EAX, 16))
	} else {
		hi := t.loadReg(x86.EDX, size)
		lo := t.loadReg(x86.EAX, size)
		dividend = b.Arith(rtl.Or,
			b.Arith(rtl.Shl, b.CastU(wide, hi), b.ImmU(wide, uint64(size))),
			b.CastU(wide, lo))
	}
	zero := b.IsZero(src)
	t.b.TrapIf(zero, "#DE divide by zero")
	signed := i.Op == x86.IDIV
	var q, r rtl.Var
	if signed {
		ws := t.b.CastS(wide, src)
		q = b.Arith(rtl.DivS, dividend, ws)
		r = b.Arith(rtl.RemS, dividend, ws)
		// Quotient must fit in `size` signed bits.
		qt := b.CastS(size, q)
		back := b.CastS(wide, qt)
		t.b.TrapIf(b.Not1(b.Test(rtl.Eq, back, q)), "#DE quotient overflow")
	} else {
		ws := t.b.CastU(wide, src)
		q = b.Arith(rtl.DivU, dividend, ws)
		r = b.Arith(rtl.RemU, dividend, ws)
		qt := b.CastU(size, q)
		back := b.CastU(wide, qt)
		t.b.TrapIf(b.Not1(b.Test(rtl.Eq, back, q)), "#DE quotient overflow")
	}
	if size == 8 {
		t.storeReg(x86.EAX, b.CastU(8, q))    // AL
		t.storeReg(x86.Reg(4), b.CastU(8, r)) // AH
	} else {
		t.storeReg(x86.EAX, b.CastU(size, q))
		t.storeReg(x86.EDX, b.CastU(size, r))
	}
	for _, f := range []x86.Flag{x86.CF, x86.OF, x86.SF, x86.ZF, x86.AF, x86.PF} {
		t.chooseFlag(f)
	}
	t.fallThrough()
	return nil
}

// convCwde translates CBW/CWDE: sign-extend AL into AX, or AX into EAX.
func (t *tr) convCwde() error {
	if t.size == 16 {
		al := t.loadReg(x86.EAX, 8)
		t.storeReg(x86.EAX, t.b.CastS(16, al))
	} else {
		ax := t.loadReg(x86.EAX, 16)
		t.storeReg(x86.EAX, t.b.CastS(32, ax))
	}
	t.fallThrough()
	return nil
}

// convCdq translates CWD/CDQ: sign-fill (E)DX from (E)AX.
func (t *tr) convCdq() error {
	acc := t.loadReg(x86.EAX, t.size)
	fill := t.b.Arith(rtl.ShrS, acc, t.b.ImmU(t.size, uint64(t.size-1)))
	t.storeReg(x86.EDX, fill)
	t.fallThrough()
	return nil
}

// convFlagOp translates the single-flag instructions.
func (t *tr) convFlagOp() error {
	switch t.inst.Op {
	case x86.CLC:
		t.setFlag(x86.CF, t.b.Bool(false))
	case x86.STC:
		t.setFlag(x86.CF, t.b.Bool(true))
	case x86.CMC:
		t.setFlag(x86.CF, t.b.Not1(t.flag(x86.CF)))
	case x86.CLD:
		t.setFlag(x86.DF, t.b.Bool(false))
	case x86.STD:
		t.setFlag(x86.DF, t.b.Bool(true))
	}
	t.fallThrough()
	return nil
}

// convDecimal translates the BCD adjustment instructions, which operate on
// AL/AH with data-dependent corrections (a dense exercise in Mux).
func (t *tr) convDecimal() error {
	b := t.b
	al := t.loadReg(x86.EAX, 8)
	switch t.inst.Op {
	case x86.AAM:
		base := t.loadOpSized(t.inst.Args[0], 8)
		t.b.TrapIf(b.IsZero(base), "#DE aam base zero")
		q := b.Arith(rtl.DivU, al, base)
		r := b.Arith(rtl.RemU, al, base)
		t.storeReg(x86.Reg(4), q) // AH
		t.storeReg(x86.EAX, r)    // AL
		t.setSZP(r)
		t.chooseFlag(x86.CF)
		t.chooseFlag(x86.OF)
		t.chooseFlag(x86.AF)
	case x86.AAD:
		base := t.loadOpSized(t.inst.Args[0], 8)
		ah := t.loadReg(x86.Reg(4), 8)
		r := b.Arith(rtl.Add, al, b.Arith(rtl.Mul, ah, base))
		t.storeReg(x86.EAX, r)
		t.storeReg(x86.Reg(4), b.ImmU(8, 0))
		t.setSZP(r)
		t.chooseFlag(x86.CF)
		t.chooseFlag(x86.OF)
		t.chooseFlag(x86.AF)
	case x86.AAA, x86.AAS:
		// Adjust when (AL & 0xF) > 9 or AF.
		low := b.Arith(rtl.And, al, b.ImmU(8, 0x0f))
		needs := b.Arith(rtl.Or,
			b.Test(rtl.LtU, b.ImmU(8, 9), low),
			t.flag(x86.AF))
		delta := b.ImmU(8, 6)
		var adjAL rtl.Var
		if t.inst.Op == x86.AAA {
			adjAL = b.Arith(rtl.Add, al, delta)
		} else {
			adjAL = b.Arith(rtl.Sub, al, delta)
		}
		adjAL = b.Arith(rtl.And, adjAL, b.ImmU(8, 0x0f))
		plainAL := b.Arith(rtl.And, al, b.ImmU(8, 0x0f))
		t.storeReg(x86.EAX, b.Mux(needs, adjAL, plainAL))
		ah := t.loadReg(x86.Reg(4), 8)
		var adjAH rtl.Var
		if t.inst.Op == x86.AAA {
			adjAH = b.Arith(rtl.Add, ah, b.ImmU(8, 1))
		} else {
			adjAH = b.Arith(rtl.Sub, ah, b.ImmU(8, 1))
		}
		t.storeReg(x86.Reg(4), b.Mux(needs, adjAH, ah))
		t.setFlag(x86.AF, needs)
		t.setFlag(x86.CF, needs)
		t.chooseFlag(x86.OF)
		t.chooseFlag(x86.SF)
		t.chooseFlag(x86.ZF)
		t.chooseFlag(x86.PF)
	case x86.DAA, x86.DAS:
		low := b.Arith(rtl.And, al, b.ImmU(8, 0x0f))
		cond1 := b.Arith(rtl.Or,
			b.Test(rtl.LtU, b.ImmU(8, 9), low),
			t.flag(x86.AF))
		cond2 := b.Arith(rtl.Or,
			b.Test(rtl.LtU, b.ImmU(8, 0x99), al),
			t.flag(x86.CF))
		d1 := b.ImmU(8, 0x06)
		d2 := b.ImmU(8, 0x60)
		zero8 := b.ImmU(8, 0)
		step1 := b.Mux(cond1, d1, zero8)
		step2 := b.Mux(cond2, d2, zero8)
		var r rtl.Var
		if t.inst.Op == x86.DAA {
			r = b.Arith(rtl.Add, b.Arith(rtl.Add, al, step1), step2)
		} else {
			r = b.Arith(rtl.Sub, b.Arith(rtl.Sub, al, step1), step2)
		}
		t.storeReg(x86.EAX, r)
		t.setFlag(x86.AF, cond1)
		t.setFlag(x86.CF, cond2)
		t.setSZP(r)
		t.chooseFlag(x86.OF)
	}
	t.fallThrough()
	return nil
}

package semantics

import (
	"fmt"

	"rocksalt/internal/rtl"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/machine"
)

// branchTarget resolves the target of a JMP/CALL: an absolute value from a
// register/memory operand, or pc+len+disp for the relative immediate
// forms.
func (t *tr) branchTarget() (rtl.Var, error) {
	i := t.inst
	if i.Rel {
		imm := i.Args[0].(x86.Imm)
		return t.b.ImmU(32, uint64(t.nextPC()+imm.Val)), nil
	}
	switch i.Args[0].(type) {
	case x86.RegOp, x86.MemOp:
		return t.b.CastU(32, t.loadOpSized(i.Args[0], 32)), nil
	case x86.Imm:
		// Far absolute ptr16:32.
		return t.b.ImmU(32, uint64(i.Args[0].(x86.Imm).Val)), nil
	}
	return 0, fmt.Errorf("semantics: bad branch operand %v", i.Args[0])
}

// convJmpCall translates near and far JMP/CALL. Far forms additionally
// load the CS selector — a sandbox-violating effect the checker rejects.
func (t *tr) convJmpCall() error {
	i := t.inst
	if i.Far && len(i.Args) > 0 {
		if _, isMem := i.Args[0].(x86.MemOp); isMem {
			// Far indirect through m16:32: offset then selector.
			mem := i.Args[0].(x86.MemOp)
			seg := t.defaultSeg(mem.Addr)
			ea := t.effAddr(mem.Addr)
			off := t.loadMem(seg, ea, 32)
			selEA := t.b.Arith(rtl.Add, ea, t.b.ImmU(32, 4))
			sel := t.loadMem(seg, selEA, 16)
			if i.Op == x86.CALL {
				t.pushVar(t.b.CastU(32, t.b.Get(machine.SegSelLoc(x86.CS))))
				t.pushVar(t.b.ImmU(32, uint64(t.nextPC())))
			}
			t.b.Set(machine.SegSelLoc(x86.CS), sel)
			t.setPC(off)
			return nil
		}
		// Far immediate ptr16:32.
		if i.Op == x86.CALL {
			t.pushVar(t.b.CastU(32, t.b.Get(machine.SegSelLoc(x86.CS))))
			t.pushVar(t.b.ImmU(32, uint64(t.nextPC())))
		}
		t.b.Set(machine.SegSelLoc(x86.CS), t.b.ImmU(16, uint64(i.Sel)))
		t.setPC(t.b.ImmU(32, uint64(i.Args[0].(x86.Imm).Val)))
		return nil
	}
	target, err := t.branchTarget()
	if err != nil {
		return err
	}
	if i.Op == x86.CALL {
		t.pushVar(t.b.ImmU(32, uint64(t.nextPC())))
	}
	t.setPC(target)
	return nil
}

// convJcc translates the conditional jumps: PC := cond ? target : next.
func (t *tr) convJcc() error {
	target, err := t.branchTarget()
	if err != nil {
		return err
	}
	c := t.cond(t.inst.Cond)
	next := t.b.ImmU(32, uint64(t.nextPC()))
	t.setPC(t.b.Mux(c, target, next))
	return nil
}

// convJcxz jumps when ECX is zero.
func (t *tr) convJcxz() error {
	target, err := t.branchTarget()
	if err != nil {
		return err
	}
	ecx := t.b.Get(machineLoc(x86.ECX))
	c := t.b.IsZero(ecx)
	next := t.b.ImmU(32, uint64(t.nextPC()))
	t.setPC(t.b.Mux(c, target, next))
	return nil
}

// convLoop decrements ECX and branches while it is non-zero (LOOPZ/LOOPNZ
// additionally test ZF).
func (t *tr) convLoop() error {
	b := t.b
	target, err := t.branchTarget()
	if err != nil {
		return err
	}
	ecx := b.Get(machineLoc(x86.ECX))
	dec := b.Arith(rtl.Sub, ecx, b.ImmU(32, 1))
	b.Set(machineLoc(x86.ECX), dec)
	cont := b.Not1(b.IsZero(dec))
	switch t.inst.Op {
	case x86.LOOPZ:
		cont = b.Arith(rtl.And, cont, t.flag(x86.ZF))
	case x86.LOOPNZ:
		cont = b.Arith(rtl.And, cont, b.Not1(t.flag(x86.ZF)))
	}
	next := b.ImmU(32, uint64(t.nextPC()))
	t.setPC(b.Mux(cont, target, next))
	return nil
}

// convRet pops the return address (far forms also pop CS) and optionally
// releases stack arguments.
func (t *tr) convRet() error {
	addr := t.popVar(32)
	if t.inst.Far {
		sel := t.popVar(32)
		t.b.Set(machine.SegSelLoc(x86.CS), t.b.CastU(16, sel))
	}
	if len(t.inst.Args) == 1 {
		n := t.inst.Args[0].(x86.Imm).Val
		esp := t.b.Get(machineESP())
		t.b.Set(machineESP(), t.b.Arith(rtl.Add, esp, t.b.ImmU(32, uint64(n))))
	}
	t.setPC(addr)
	return nil
}

package x86

import "testing"

func TestRegisterNames(t *testing.T) {
	if EAX.String() != "eax" || EDI.String() != "edi" {
		t.Fatal("register names wrong")
	}
	if EAX.Name(16) != "ax" || EAX.Name(8) != "al" || Reg(4).Name(8) != "ah" {
		t.Fatal("sized register names wrong")
	}
	if ESP.Name(32) != "esp" {
		t.Fatal("esp name wrong")
	}
}

func TestSegFlagCondNames(t *testing.T) {
	if CS.String() != "cs" || GS.String() != "gs" {
		t.Fatal("segment names wrong")
	}
	if CF.String() != "CF" || DF.String() != "DF" {
		t.Fatal("flag names wrong")
	}
	if CondE.String() != "e" || CondNLE.String() != "nle" {
		t.Fatal("condition names wrong")
	}
}

func TestOperandSize(t *testing.T) {
	cases := []struct {
		i    Inst
		want int
	}{
		{Inst{W: false}, 8},
		{Inst{W: true}, 32},
		{Inst{W: true, Prefix: Prefix{OpSize: true}}, 16},
		{Inst{W: false, Prefix: Prefix{OpSize: true}}, 8},
	}
	for _, c := range cases {
		if got := c.i.OperandSize(); got != c.want {
			t.Errorf("OperandSize(%+v) = %d, want %d", c.i, got, c.want)
		}
	}
}

func TestIsControlFlow(t *testing.T) {
	for _, op := range []Op{CALL, JMP, Jcc, JCXZ, RET, LOOP, LOOPZ, LOOPNZ, INT, INT3, INTO, IRET} {
		if !(Inst{Op: op}).IsControlFlow() {
			t.Errorf("%v must be control flow", op)
		}
	}
	for _, op := range []Op{ADD, MOV, NOP, PUSH, SETcc, CMOVcc, MOVS} {
		if (Inst{Op: op}).IsControlFlow() {
			t.Errorf("%v must not be control flow", op)
		}
	}
}

func TestAddrString(t *testing.T) {
	ebx, esi := EBX, ESI
	cases := []struct {
		a    Addr
		want string
	}{
		{Addr{Disp: 0x10}, "[0x10]"},
		{Addr{Base: &ebx}, "[ebx]"},
		{Addr{Base: &ebx, Index: &esi, Scale: 4, Disp: 8}, "[ebx+esi*4+0x8]"},
		{Addr{}, "[0x0]"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("Addr %+v = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestInstString(t *testing.T) {
	i := Inst{Op: ADD, W: true, Args: []Operand{RegOp{EAX}, Imm{0x10}}}
	if got := i.String(); got != "add eax, 0x10" {
		t.Errorf("String = %q", got)
	}
	i = Inst{Op: Jcc, Cond: CondNE, W: true, Rel: true, Args: []Operand{Imm{4}}}
	if got := i.String(); got != "jne 0x4" {
		t.Errorf("String = %q", got)
	}
	i = Inst{Op: MOV, W: false, Args: []Operand{RegOp{Reg(4)}, Imm{1}}}
	if got := i.String(); got != "mov ah, 0x1" {
		t.Errorf("String = %q", got)
	}
	lock := Inst{Op: XCHG, W: true, Prefix: Prefix{Lock: true},
		Args: []Operand{RegOp{EAX}, RegOp{EBX}}}
	if got := lock.String(); got != "lock xchg eax, ebx" {
		t.Errorf("String = %q", got)
	}
}

func TestOperandStrings(t *testing.T) {
	if (Imm{0xff}).String() != "0xff" ||
		(RegOp{ECX}).String() != "ecx" ||
		(OffOp{0x20}).String() != "[0x20]" ||
		(SegOp{DS}).String() != "ds" {
		t.Fatal("operand rendering wrong")
	}
}

func TestPrefixString(t *testing.T) {
	fs := FS
	p := Prefix{Lock: true, Seg: &fs, OpSize: true}
	if got := p.String(); got != "lock fs: o16" {
		t.Errorf("Prefix = %q", got)
	}
	if (Prefix{}).String() != "" {
		t.Error("empty prefix renders empty")
	}
}

package encode_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"rocksalt/internal/grammar"
	"rocksalt/internal/x86"
	"rocksalt/internal/x86/decode"
	"rocksalt/internal/x86/encode"
)

func reg(r x86.Reg) x86.Operand  { return x86.RegOp{Reg: r} }
func imm(v uint32) x86.Operand   { return x86.Imm{Val: v} }
func mem(a x86.Addr) x86.Operand { return x86.MemOp{Addr: a} }

func TestEncodeKnownBytes(t *testing.T) {
	cases := []struct {
		inst x86.Inst
		want []byte
	}{
		{x86.Inst{Op: x86.NOP, W: true}, []byte{0x90}},
		{x86.Inst{Op: x86.RET, W: true}, []byte{0xc3}},
		{x86.Inst{Op: x86.ADD, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX)}},
			[]byte{0x01, 0xd8}},
		{x86.Inst{Op: x86.AND, W: true, Args: []x86.Operand{reg(x86.EAX), imm(0xffffffe0)}},
			[]byte{0x83, 0xe0, 0xe0}},
		{x86.Inst{Op: x86.MOV, W: true, Args: []x86.Operand{reg(x86.EAX), imm(0x12345678)}},
			[]byte{0xb8, 0x78, 0x56, 0x34, 0x12}},
		{x86.Inst{Op: x86.PUSH, W: true, Args: []x86.Operand{reg(x86.EBP)}}, []byte{0x55}},
		{x86.Inst{Op: x86.JMP, W: true, Rel: true, Args: []x86.Operand{imm(0x10)}},
			[]byte{0xeb, 0x10}},
		{x86.Inst{Op: x86.CALL, W: true, Rel: true, Args: []x86.Operand{imm(0x10)}},
			[]byte{0xe8, 0x10, 0x00, 0x00, 0x00}},
		{x86.Inst{Op: x86.INT3}, []byte{0xcc}},
	}
	for _, c := range cases {
		got, err := encode.Encode(c.inst)
		if err != nil {
			t.Errorf("%v: %v", c.inst, err)
			continue
		}
		if !bytes.Equal(got, c.want) {
			t.Errorf("%v: got % x, want % x", c.inst, got, c.want)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	espIdx := x86.ESP
	bad := []x86.Inst{
		{Op: x86.MOV, W: true, Args: []x86.Operand{
			mem(x86.Addr{Index: &espIdx, Scale: 2}), reg(x86.EAX)}},
		{Op: x86.SHL, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX)}}, // count must be CL
		{Op: x86.POP, W: true, Args: []x86.Operand{x86.SegOp{Seg: x86.CS}}},
		{Op: x86.MOVZX, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX)}}, // no SrcSize
	}
	for _, i := range bad {
		if got, err := encode.Encode(i); err == nil {
			t.Errorf("%v: expected error, encoded % x", i, got)
		}
	}
}

// TestEncodeDecodeRoundTrip: decoding an encoding yields the same
// abstract syntax (the encoder is a right inverse of the decoder up to
// canonical encoding choice).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	dec := decode.NewDecoder()
	ebp, esi := x86.EBP, x86.ESI
	insts := []x86.Inst{
		{Op: x86.ADD, W: true, Args: []x86.Operand{reg(x86.ECX), imm(0x1000)}},
		{Op: x86.SUB, W: false, Args: []x86.Operand{reg(x86.Reg(4)), imm(3)}}, // AH
		{Op: x86.MOV, W: true, Args: []x86.Operand{
			mem(x86.Addr{Base: &ebp, Disp: 0xfffffff8}), reg(x86.EDX)}},
		{Op: x86.MOV, W: true, Args: []x86.Operand{
			reg(x86.EAX), mem(x86.Addr{Base: &ebp, Index: &esi, Scale: 4, Disp: 0x20})}},
		{Op: x86.LEA, W: true, Args: []x86.Operand{
			reg(x86.EDI), mem(x86.Addr{Index: &esi, Scale: 8, Disp: 0x10})}},
		{Op: x86.IMUL, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX), imm(100)}},
		{Op: x86.SHL, W: true, Args: []x86.Operand{reg(x86.EDX), imm(5)}},
		{Op: x86.SAR, W: true, Args: []x86.Operand{reg(x86.EDX), reg(x86.ECX)}},
		{Op: x86.MOVZX, W: true, SrcSize: 8, Args: []x86.Operand{reg(x86.EAX), reg(x86.ECX)}},
		{Op: x86.MOVSX, W: true, SrcSize: 16, Args: []x86.Operand{reg(x86.EAX), reg(x86.ECX)}},
		{Op: x86.SETcc, Cond: x86.CondNE, Args: []x86.Operand{reg(x86.EAX)}},
		{Op: x86.CMOVcc, W: true, Cond: x86.CondL, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX)}},
		{Op: x86.TEST, W: true, Args: []x86.Operand{reg(x86.EAX), imm(0xff)}},
		{Op: x86.PUSH, W: true, Args: []x86.Operand{imm(0x1234567)}},
		{Op: x86.BT, W: true, Args: []x86.Operand{reg(x86.EAX), imm(3)}},
		{Op: x86.BTS, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.ECX)}},
		{Op: x86.BSWAP, W: true, Args: []x86.Operand{reg(x86.EDX)}},
		{Op: x86.XADD, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.ECX)}},
		{Op: x86.CMPXCHG, W: false, Args: []x86.Operand{reg(x86.EBX), reg(x86.ECX)}},
		{Op: x86.SHLD, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX), imm(4)}},
		{Op: x86.SHRD, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EBX), reg(x86.ECX)}},
		{Op: x86.MOVS, W: true, Prefix: x86.Prefix{Rep: true}},
		{Op: x86.RET, W: true, Args: []x86.Operand{imm(8)}},
		{Op: x86.INT, Args: []x86.Operand{imm(0x80)}},
		{Op: x86.XCHG, W: true, Args: []x86.Operand{reg(x86.EAX), reg(x86.EDI)}},
		{Op: x86.NEG, W: true, Args: []x86.Operand{reg(x86.EAX)}},
		{Op: x86.DIV, W: true, Args: []x86.Operand{reg(x86.ECX)}},
		{Op: x86.INC, W: true, Args: []x86.Operand{mem(x86.Addr{Base: &esi})}},
		{Op: x86.LODS, W: false},
		{Op: x86.AAM, Args: []x86.Operand{imm(10)}},
	}
	for _, want := range insts {
		code, err := encode.Encode(want)
		if err != nil {
			t.Errorf("encode %v: %v", want, err)
			continue
		}
		got, n, err := dec.Decode(code)
		if err != nil {
			t.Errorf("decode % x (%v): %v", code, want, err)
			continue
		}
		if n != len(code) {
			t.Errorf("decode % x: consumed %d of %d", code, n, len(code))
		}
		// Normalize: the decoder fills Args with an empty slice vs nil.
		if want.Args == nil {
			want.Args = got.Args
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip % x:\n got %#v\nwant %#v", code, got, want)
		}
	}
}

// TestDecodeEncodeDecode is the property-based direction: sample random
// encodings from the grammar, decode, re-encode, re-decode, and require
// the two abstract instructions to be identical.
func TestDecodeEncodeDecode(t *testing.T) {
	s := grammar.NewSampler(rand.New(rand.NewSource(55)))
	top := decode.TopGrammar()
	dec := decode.NewDecoder()
	trials := 3000
	if testing.Short() {
		trials = 300
	}
	encoded, skipped := 0, 0
	for i := 0; i < trials; i++ {
		bs, v, ok := s.SampleBytes(top, 4)
		if !ok {
			t.Fatal("sample failed")
		}
		first := v.(x86.Inst)
		code, err := encode.Encode(first)
		if err != nil {
			skipped++ // encoder covers a subset (e.g. no far forms)
			continue
		}
		second, n, err := dec.Decode(code)
		if err != nil {
			t.Fatalf("re-decode of % x (from %v, originally % x) failed: %v", code, first, bs, err)
		}
		if n != len(code) {
			t.Fatalf("re-decode of % x consumed %d bytes", code, n)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("decode∘encode not identity:\nbytes % x -> %#v\nre-encoded % x -> %#v",
				bs, first, code, second)
		}
		encoded++
	}
	t.Logf("round-tripped %d sampled instructions (%d outside encoder subset)", encoded, skipped)
	// Half the sampled variants carry the 0x67 prefix, which the encoder
	// deliberately does not produce; a third is a conservative floor.
	if encoded < trials/3 {
		t.Errorf("encoder coverage too low: %d/%d", encoded, trials)
	}
}

func TestNopPad(t *testing.T) {
	dec := decode.NewDecoder()
	for n := 1; n <= 40; n++ {
		pad := encode.NopPad(n)
		if len(pad) != n {
			t.Fatalf("NopPad(%d) has length %d", n, len(pad))
		}
		// Every padding sequence must decode entirely into NOPs.
		for pos := 0; pos < len(pad); {
			inst, k, err := dec.Decode(pad[pos:])
			if err != nil {
				t.Fatalf("NopPad(%d) at %d: %v", n, pos, err)
			}
			if inst.Op != x86.NOP {
				t.Fatalf("NopPad(%d) contains %v", n, inst)
			}
			pos += k
		}
	}
}

// Package encode is an assembler for the modeled x86 subset. It is the
// round-trip partner of the decoder grammar (decode(encode(i)) == i, a
// property test), and the backend of the NaCl code generator, which needs
// to emit masked jumps, bundle padding and ordinary computation.
package encode

import (
	"fmt"

	"rocksalt/internal/x86"
)

// Encode assembles one instruction. The encoder picks a canonical encoding
// (shortest displacement, group form for immediates); the decoder accepts
// every encoding, so round-tripping compares abstract syntax, not bytes.
func Encode(i x86.Inst) ([]byte, error) {
	e := &enc{}
	if err := e.prefixes(i.Prefix); err != nil {
		return nil, err
	}
	if err := e.inst(i); err != nil {
		return nil, err
	}
	return e.out, nil
}

type enc struct {
	out []byte
}

func (e *enc) b(bs ...byte) { e.out = append(e.out, bs...) }

func (e *enc) imm8(v uint32)  { e.b(byte(v)) }
func (e *enc) imm16(v uint32) { e.b(byte(v), byte(v>>8)) }
func (e *enc) imm32(v uint32) { e.b(byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }

// immZ emits a "z" immediate: 16 bits under an operand-size override.
func (e *enc) immZ(p x86.Prefix, v uint32) {
	if p.OpSize {
		e.imm16(v)
	} else {
		e.imm32(v)
	}
}

func (e *enc) prefixes(p x86.Prefix) error {
	if p.AddrSize {
		return fmt.Errorf("encode: 16-bit addressing is not modeled")
	}
	n := 0
	if p.Lock {
		e.b(0xf0)
		n++
	}
	if p.Rep {
		e.b(0xf3)
		n++
	}
	if p.RepN {
		e.b(0xf2)
		n++
	}
	if n > 1 {
		return fmt.Errorf("encode: conflicting lock/rep prefixes")
	}
	if p.Seg != nil {
		segByte := map[x86.SegReg]byte{
			x86.ES: 0x26, x86.CS: 0x2e, x86.SS: 0x36,
			x86.DS: 0x3e, x86.FS: 0x64, x86.GS: 0x65,
		}
		e.b(segByte[*p.Seg])
	}
	if p.OpSize {
		e.b(0x66)
	}
	return nil
}

func fitsInt8(v uint32) bool {
	return int32(v) >= -128 && int32(v) <= 127
}

// modrm emits the ModRM byte (and SIB/displacement) for reg field `reg`
// and r/m operand `rm`.
func (e *enc) modrm(reg byte, rm x86.Operand) error {
	switch o := rm.(type) {
	case x86.RegOp:
		e.b(0xc0 | reg<<3 | byte(o.Reg))
		return nil
	case x86.MemOp:
		return e.mem(reg, o.Addr)
	default:
		return fmt.Errorf("encode: operand %v cannot be an r/m", rm)
	}
}

func (e *enc) mem(reg byte, a x86.Addr) error {
	if a.Index != nil && *a.Index == x86.ESP {
		return fmt.Errorf("encode: ESP cannot be an index register")
	}
	scaleBits := map[x86.Scale]byte{1: 0, 2: 1, 4: 2, 8: 3}
	sb, okScale := scaleBits[a.Scale]
	if a.Index != nil && !okScale {
		return fmt.Errorf("encode: bad scale %d", a.Scale)
	}
	needSIB := a.Index != nil || (a.Base != nil && *a.Base == x86.ESP)

	// No base: absolute (optionally indexed) forms.
	if a.Base == nil {
		if a.Index == nil {
			e.b(reg<<3 | 0x05) // mod=00 rm=101: disp32
			e.imm32(a.Disp)
			return nil
		}
		// mod=00 rm=100, SIB base=101: disp32 + index.
		e.b(reg<<3|0x04, sb<<6|byte(*a.Index)<<3|0x05)
		e.imm32(a.Disp)
		return nil
	}

	base := *a.Base
	// Pick the mod field: EBP as base cannot use mod=00.
	var mod byte
	switch {
	case a.Disp == 0 && base != x86.EBP:
		mod = 0
	case fitsInt8(a.Disp):
		mod = 1
	default:
		mod = 2
	}
	rmBits := byte(base)
	if needSIB {
		rmBits = 0x04
	}
	e.b(mod<<6 | reg<<3 | rmBits)
	if needSIB {
		idx := byte(0x04) // none
		if a.Index != nil {
			idx = byte(*a.Index)
		}
		e.b(sb<<6 | idx<<3 | byte(base))
	}
	switch mod {
	case 1:
		e.imm8(a.Disp)
	case 2:
		e.imm32(a.Disp)
	}
	return nil
}

// arithInfo gives the family number for the classic ALU group.
var arithNNN = map[x86.Op]byte{
	x86.ADD: 0, x86.OR: 1, x86.ADC: 2, x86.SBB: 3,
	x86.AND: 4, x86.SUB: 5, x86.XOR: 6, x86.CMP: 7,
}

var shiftExtN = map[x86.Op]byte{
	x86.ROL: 0, x86.ROR: 1, x86.RCL: 2, x86.RCR: 3,
	x86.SHL: 4, x86.SHR: 5, x86.SAR: 7,
}

func wbit(w bool) byte {
	if w {
		return 1
	}
	return 0
}

func (e *enc) inst(i x86.Inst) error {
	switch i.Op {
	case x86.NOP:
		if len(i.Args) == 0 {
			e.b(0x90)
			return nil
		}
		e.b(0x0f, 0x1f)
		return e.modrm(0, i.Args[0])
	case x86.ADD, x86.OR, x86.ADC, x86.SBB, x86.AND, x86.SUB, x86.XOR, x86.CMP:
		return e.arith(i)
	case x86.MOV:
		return e.mov(i)
	case x86.LEA:
		e.b(0x8d)
		return e.modrm(byte(i.Args[0].(x86.RegOp).Reg), i.Args[1])
	case x86.PUSH:
		return e.push(i)
	case x86.POP:
		return e.pop(i)
	case x86.INC, x86.DEC:
		ext := byte(0)
		if i.Op == x86.DEC {
			ext = 1
		}
		if r, ok := i.Args[0].(x86.RegOp); ok && i.W {
			e.b(0x40 | ext<<3 | byte(r.Reg))
			return nil
		}
		e.b(0xfe | wbit(i.W))
		return e.modrm(ext, i.Args[0])
	case x86.NOT, x86.NEG, x86.MUL, x86.DIV, x86.IDIV:
		ext := map[x86.Op]byte{x86.NOT: 2, x86.NEG: 3, x86.MUL: 4, x86.DIV: 6, x86.IDIV: 7}[i.Op]
		e.b(0xf6 | wbit(i.W))
		return e.modrm(ext, i.Args[0])
	case x86.IMUL:
		return e.imul(i)
	case x86.TEST:
		return e.test(i)
	case x86.XCHG:
		if len(i.Args) == 2 {
			if a, ok := i.Args[0].(x86.RegOp); ok && a.Reg == x86.EAX && i.W {
				if b, ok := i.Args[1].(x86.RegOp); ok && b.Reg != x86.EAX {
					e.b(0x90 | byte(b.Reg))
					return nil
				}
			}
			e.b(0x86 | wbit(i.W))
			reg, ok := i.Args[1].(x86.RegOp)
			if !ok {
				return fmt.Errorf("encode: xchg second operand must be a register")
			}
			return e.modrm(byte(reg.Reg), i.Args[0])
		}
		return fmt.Errorf("encode: bad xchg arity")
	case x86.ROL, x86.ROR, x86.RCL, x86.RCR, x86.SHL, x86.SHR, x86.SAR:
		return e.shift(i)
	case x86.SHLD, x86.SHRD:
		return e.shiftD(i)
	case x86.MOVZX, x86.MOVSX:
		second := map[struct {
			op x86.Op
			w  uint8
		}]byte{
			{x86.MOVZX, 8}: 0xb6, {x86.MOVZX, 16}: 0xb7,
			{x86.MOVSX, 8}: 0xbe, {x86.MOVSX, 16}: 0xbf,
		}[struct {
			op x86.Op
			w  uint8
		}{i.Op, i.SrcSize}]
		if second == 0 {
			return fmt.Errorf("encode: movzx/movsx needs SrcSize 8 or 16")
		}
		e.b(0x0f, second)
		return e.modrm(byte(i.Args[0].(x86.RegOp).Reg), i.Args[1])
	case x86.SETcc:
		e.b(0x0f, 0x90|byte(i.Cond))
		return e.modrm(0, i.Args[0])
	case x86.CMOVcc:
		e.b(0x0f, 0x40|byte(i.Cond))
		return e.modrm(byte(i.Args[0].(x86.RegOp).Reg), i.Args[1])
	case x86.BT, x86.BTS, x86.BTR, x86.BTC:
		if imm, ok := i.Args[1].(x86.Imm); ok {
			ext := map[x86.Op]byte{x86.BT: 4, x86.BTS: 5, x86.BTR: 6, x86.BTC: 7}[i.Op]
			e.b(0x0f, 0xba)
			if err := e.modrm(ext, i.Args[0]); err != nil {
				return err
			}
			e.imm8(imm.Val)
			return nil
		}
		second := map[x86.Op]byte{x86.BT: 0xa3, x86.BTS: 0xab, x86.BTR: 0xb3, x86.BTC: 0xbb}[i.Op]
		e.b(0x0f, second)
		return e.modrm(byte(i.Args[1].(x86.RegOp).Reg), i.Args[0])
	case x86.BSF, x86.BSR:
		second := byte(0xbc)
		if i.Op == x86.BSR {
			second = 0xbd
		}
		e.b(0x0f, second)
		return e.modrm(byte(i.Args[0].(x86.RegOp).Reg), i.Args[1])
	case x86.BSWAP:
		e.b(0x0f, 0xc8|byte(i.Args[0].(x86.RegOp).Reg))
		return nil
	case x86.CMPXCHG, x86.XADD:
		base := byte(0xb0)
		if i.Op == x86.XADD {
			base = 0xc0
		}
		e.b(0x0f, base|wbit(i.W))
		return e.modrm(byte(i.Args[1].(x86.RegOp).Reg), i.Args[0])
	case x86.CALL:
		return e.call(i)
	case x86.JMP:
		return e.jmp(i)
	case x86.Jcc:
		imm := i.Args[0].(x86.Imm).Val
		if fitsInt8(imm) {
			e.b(0x70 | byte(i.Cond))
			e.imm8(imm)
			return nil
		}
		e.b(0x0f, 0x80|byte(i.Cond))
		e.immZ(i.Prefix, imm)
		return nil
	case x86.JCXZ, x86.LOOP, x86.LOOPZ, x86.LOOPNZ:
		b := map[x86.Op]byte{x86.LOOPNZ: 0xe0, x86.LOOPZ: 0xe1, x86.LOOP: 0xe2, x86.JCXZ: 0xe3}[i.Op]
		e.b(b)
		e.imm8(i.Args[0].(x86.Imm).Val)
		return nil
	case x86.RET:
		op := byte(0xc3)
		if i.Far {
			op = 0xcb
		}
		if len(i.Args) == 1 {
			op-- // c2 / ca
			e.b(op)
			e.imm16(i.Args[0].(x86.Imm).Val)
			return nil
		}
		e.b(op)
		return nil
	case x86.INT3:
		e.b(0xcc)
		return nil
	case x86.INT:
		e.b(0xcd)
		e.imm8(i.Args[0].(x86.Imm).Val)
		return nil
	case x86.INTO:
		e.b(0xce)
		return nil
	case x86.IRET:
		e.b(0xcf)
		return nil
	case x86.HLT:
		e.b(0xf4)
		return nil
	case x86.CMC:
		e.b(0xf5)
		return nil
	case x86.CLC:
		e.b(0xf8)
		return nil
	case x86.STC:
		e.b(0xf9)
		return nil
	case x86.CLD:
		e.b(0xfc)
		return nil
	case x86.STD:
		e.b(0xfd)
		return nil
	case x86.SAHF:
		e.b(0x9e)
		return nil
	case x86.LAHF:
		e.b(0x9f)
		return nil
	case x86.CWDE:
		e.b(0x98)
		return nil
	case x86.CDQ:
		e.b(0x99)
		return nil
	case x86.LEAVE:
		e.b(0xc9)
		return nil
	case x86.PUSHA:
		e.b(0x60)
		return nil
	case x86.POPA:
		e.b(0x61)
		return nil
	case x86.PUSHF:
		e.b(0x9c)
		return nil
	case x86.POPF:
		e.b(0x9d)
		return nil
	case x86.XLAT:
		e.b(0xd7)
		return nil
	case x86.MOVS, x86.CMPS, x86.STOS, x86.LODS, x86.SCAS, x86.INS, x86.OUTS:
		b := map[x86.Op]byte{
			x86.MOVS: 0xa4, x86.CMPS: 0xa6, x86.STOS: 0xaa,
			x86.LODS: 0xac, x86.SCAS: 0xae, x86.INS: 0x6c, x86.OUTS: 0x6e,
		}[i.Op]
		e.b(b | wbit(i.W))
		return nil
	case x86.AAA:
		e.b(0x37)
		return nil
	case x86.AAS:
		e.b(0x3f)
		return nil
	case x86.DAA:
		e.b(0x27)
		return nil
	case x86.DAS:
		e.b(0x2f)
		return nil
	case x86.AAM:
		e.b(0xd4)
		e.imm8(i.Args[0].(x86.Imm).Val)
		return nil
	case x86.AAD:
		e.b(0xd5)
		e.imm8(i.Args[0].(x86.Imm).Val)
		return nil
	case x86.ENTER:
		e.b(0xc8)
		e.imm16(i.Args[0].(x86.Imm).Val)
		e.imm8(i.Args[1].(x86.Imm).Val)
		return nil
	case x86.CMPXCHG8B:
		e.b(0x0f, 0xc7)
		return e.modrm(1, i.Args[0])
	case x86.RDTSC:
		e.b(0x0f, 0x31)
		return nil
	case x86.CPUID:
		e.b(0x0f, 0xa2)
		return nil
	case x86.UD2:
		e.b(0x0f, 0x0b)
		return nil
	default:
		return fmt.Errorf("encode: unsupported op %v", i.Op)
	}
}

func (e *enc) arith(i x86.Inst) error {
	nnn := arithNNN[i.Op]
	dst, src := i.Args[0], i.Args[1]
	if imm, ok := src.(x86.Imm); ok {
		switch {
		case !i.W:
			e.b(0x80)
			if err := e.modrm(nnn, dst); err != nil {
				return err
			}
			e.imm8(imm.Val)
		case fitsInt8(imm.Val):
			e.b(0x83)
			if err := e.modrm(nnn, dst); err != nil {
				return err
			}
			e.imm8(imm.Val)
		default:
			e.b(0x81)
			if err := e.modrm(nnn, dst); err != nil {
				return err
			}
			e.immZ(i.Prefix, imm.Val)
		}
		return nil
	}
	if r, ok := src.(x86.RegOp); ok {
		e.b(nnn<<3 | wbit(i.W)) // 00+8n /r: op r/m, r
		return e.modrm(byte(r.Reg), dst)
	}
	if r, ok := dst.(x86.RegOp); ok {
		e.b(nnn<<3 | 2 | wbit(i.W)) // 02+8n /r: op r, r/m
		return e.modrm(byte(r.Reg), src)
	}
	return fmt.Errorf("encode: bad arith operands %v", i)
}

func (e *enc) mov(i x86.Inst) error {
	dst, src := i.Args[0], i.Args[1]
	if s, ok := src.(x86.SegOp); ok {
		e.b(0x8c)
		return e.modrm(byte(s.Seg), dst)
	}
	if d, ok := dst.(x86.SegOp); ok {
		e.b(0x8e)
		return e.modrm(byte(d.Seg), src)
	}
	if off, ok := src.(x86.OffOp); ok {
		if i.W {
			e.b(0xa1)
		} else {
			e.b(0xa0)
		}
		e.imm32(off.Off)
		return nil
	}
	if off, ok := dst.(x86.OffOp); ok {
		if i.W {
			e.b(0xa3)
		} else {
			e.b(0xa2)
		}
		e.imm32(off.Off)
		return nil
	}
	if imm, ok := src.(x86.Imm); ok {
		if r, ok := dst.(x86.RegOp); ok {
			if i.W {
				e.b(0xb8 | byte(r.Reg))
				e.immZ(i.Prefix, imm.Val)
			} else {
				e.b(0xb0 | byte(r.Reg))
				e.imm8(imm.Val)
			}
			return nil
		}
		if i.W {
			e.b(0xc7)
		} else {
			e.b(0xc6)
		}
		if err := e.modrm(0, dst); err != nil {
			return err
		}
		if i.W {
			e.immZ(i.Prefix, imm.Val)
		} else {
			e.imm8(imm.Val)
		}
		return nil
	}
	if r, ok := src.(x86.RegOp); ok {
		e.b(0x88 | wbit(i.W))
		return e.modrm(byte(r.Reg), dst)
	}
	if r, ok := dst.(x86.RegOp); ok {
		e.b(0x8a | wbit(i.W))
		return e.modrm(byte(r.Reg), src)
	}
	return fmt.Errorf("encode: bad mov operands %v", i)
}

func (e *enc) push(i x86.Inst) error {
	switch o := i.Args[0].(type) {
	case x86.RegOp:
		e.b(0x50 | byte(o.Reg))
		return nil
	case x86.Imm:
		if fitsInt8(o.Val) {
			e.b(0x6a)
			e.imm8(o.Val)
		} else {
			e.b(0x68)
			e.immZ(i.Prefix, o.Val)
		}
		return nil
	case x86.MemOp:
		e.b(0xff)
		return e.modrm(6, o)
	case x86.SegOp:
		switch o.Seg {
		case x86.ES:
			e.b(0x06)
		case x86.CS:
			e.b(0x0e)
		case x86.SS:
			e.b(0x16)
		case x86.DS:
			e.b(0x1e)
		case x86.FS:
			e.b(0x0f, 0xa0)
		case x86.GS:
			e.b(0x0f, 0xa8)
		}
		return nil
	}
	return fmt.Errorf("encode: bad push operand")
}

func (e *enc) pop(i x86.Inst) error {
	switch o := i.Args[0].(type) {
	case x86.RegOp:
		e.b(0x58 | byte(o.Reg))
		return nil
	case x86.MemOp:
		e.b(0x8f)
		return e.modrm(0, o)
	case x86.SegOp:
		switch o.Seg {
		case x86.ES:
			e.b(0x07)
		case x86.SS:
			e.b(0x17)
		case x86.DS:
			e.b(0x1f)
		case x86.FS:
			e.b(0x0f, 0xa1)
		case x86.GS:
			e.b(0x0f, 0xa9)
		default:
			return fmt.Errorf("encode: pop cs is illegal")
		}
		return nil
	}
	return fmt.Errorf("encode: bad pop operand")
}

func (e *enc) imul(i x86.Inst) error {
	switch len(i.Args) {
	case 1:
		e.b(0xf6 | wbit(i.W))
		return e.modrm(5, i.Args[0])
	case 2:
		e.b(0x0f, 0xaf)
		return e.modrm(byte(i.Args[0].(x86.RegOp).Reg), i.Args[1])
	case 3:
		imm := i.Args[2].(x86.Imm).Val
		if fitsInt8(imm) {
			e.b(0x6b)
			if err := e.modrm(byte(i.Args[0].(x86.RegOp).Reg), i.Args[1]); err != nil {
				return err
			}
			e.imm8(imm)
			return nil
		}
		e.b(0x69)
		if err := e.modrm(byte(i.Args[0].(x86.RegOp).Reg), i.Args[1]); err != nil {
			return err
		}
		e.immZ(i.Prefix, imm)
		return nil
	}
	return fmt.Errorf("encode: bad imul arity")
}

func (e *enc) test(i x86.Inst) error {
	dst, src := i.Args[0], i.Args[1]
	if imm, ok := src.(x86.Imm); ok {
		e.b(0xf6 | wbit(i.W))
		if err := e.modrm(0, dst); err != nil {
			return err
		}
		if i.W {
			e.immZ(i.Prefix, imm.Val)
		} else {
			e.imm8(imm.Val)
		}
		return nil
	}
	r, ok := src.(x86.RegOp)
	if !ok {
		return fmt.Errorf("encode: bad test operands")
	}
	e.b(0x84 | wbit(i.W))
	return e.modrm(byte(r.Reg), dst)
}

func (e *enc) shift(i x86.Inst) error {
	ext := shiftExtN[i.Op]
	switch by := i.Args[1].(type) {
	case x86.Imm:
		if by.Val == 1 {
			e.b(0xd0 | wbit(i.W))
			return e.modrm(ext, i.Args[0])
		}
		e.b(0xc0 | wbit(i.W))
		if err := e.modrm(ext, i.Args[0]); err != nil {
			return err
		}
		e.imm8(by.Val)
		return nil
	case x86.RegOp:
		if by.Reg != x86.ECX {
			return fmt.Errorf("encode: shift count must be CL or immediate")
		}
		e.b(0xd2 | wbit(i.W))
		return e.modrm(ext, i.Args[0])
	}
	return fmt.Errorf("encode: bad shift count operand")
}

func (e *enc) shiftD(i x86.Inst) error {
	base := byte(0xa4)
	if i.Op == x86.SHRD {
		base = 0xac
	}
	reg := byte(i.Args[1].(x86.RegOp).Reg)
	switch by := i.Args[2].(type) {
	case x86.Imm:
		e.b(0x0f, base)
		if err := e.modrm(reg, i.Args[0]); err != nil {
			return err
		}
		e.imm8(by.Val)
		return nil
	case x86.RegOp:
		if by.Reg != x86.ECX {
			return fmt.Errorf("encode: shld/shrd count must be CL or immediate")
		}
		e.b(0x0f, base+1)
		return e.modrm(reg, i.Args[0])
	}
	return fmt.Errorf("encode: bad shld/shrd count")
}

func (e *enc) call(i x86.Inst) error {
	if i.Rel {
		e.b(0xe8)
		e.immZ(i.Prefix, i.Args[0].(x86.Imm).Val)
		return nil
	}
	if i.Far {
		if imm, ok := i.Args[0].(x86.Imm); ok {
			e.b(0x9a)
			e.imm32(imm.Val)
			e.imm16(uint32(i.Sel))
			return nil
		}
		e.b(0xff)
		return e.modrm(3, i.Args[0])
	}
	e.b(0xff)
	return e.modrm(2, i.Args[0])
}

func (e *enc) jmp(i x86.Inst) error {
	if i.Rel {
		imm := i.Args[0].(x86.Imm).Val
		if fitsInt8(imm) {
			e.b(0xeb)
			e.imm8(imm)
			return nil
		}
		e.b(0xe9)
		e.immZ(i.Prefix, imm)
		return nil
	}
	if i.Far {
		if imm, ok := i.Args[0].(x86.Imm); ok {
			e.b(0xea)
			e.imm32(imm.Val)
			e.imm16(uint32(i.Sel))
			return nil
		}
		e.b(0xff)
		return e.modrm(5, i.Args[0])
	}
	e.b(0xff)
	return e.modrm(4, i.Args[0])
}

// nopPatterns are the recommended multi-byte NOP encodings, indexed by
// length (1..9 bytes).
var nopPatterns = [][]byte{
	1: {0x90},
	2: {0x66, 0x90},
	3: {0x0f, 0x1f, 0x00},
	4: {0x0f, 0x1f, 0x40, 0x00},
	5: {0x0f, 0x1f, 0x44, 0x00, 0x00},
	6: {0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00},
	7: {0x0f, 0x1f, 0x80, 0x00, 0x00, 0x00, 0x00},
	8: {0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
	9: {0x66, 0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
}

// NopPad returns a sequence of NOP instructions totaling exactly n bytes,
// used by the NaCl generator to pad bundles.
func NopPad(n int) []byte {
	var out []byte
	for n > 0 {
		k := n
		if k > 9 {
			k = 9
		}
		out = append(out, nopPatterns[k]...)
		n -= k
	}
	return out
}

package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rocksalt/internal/bits"
	"rocksalt/internal/x86"
)

func TestMemoryDefaultZero(t *testing.T) {
	m := NewMemory()
	if m.Load(0) != 0 || m.Load(0xffffffff) != 0 {
		t.Fatal("fresh memory must read zero")
	}
}

func TestMemoryStoreLoad(t *testing.T) {
	f := func(addr uint32, b byte) bool {
		m := NewMemory()
		m.Store(addr, b)
		return m.Load(addr) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryPageBoundary(t *testing.T) {
	m := NewMemory()
	m.WriteBytes(0xfff, []byte{1, 2, 3})
	got := m.ReadBytes(0xfff, 3)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("cross-page write lost: %v", got)
	}
}

func TestMemoryWrapAround(t *testing.T) {
	m := NewMemory()
	m.WriteBytes(0xffffffff, []byte{9, 8})
	if m.Load(0xffffffff) != 9 || m.Load(0) != 8 {
		t.Fatal("address arithmetic must wrap at 2^32")
	}
}

func TestMemoryCloneIsDeep(t *testing.T) {
	m := NewMemory()
	m.Store(100, 42)
	c := m.Clone()
	c.Store(100, 7)
	if m.Load(100) != 42 {
		t.Fatal("clone aliases the original")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("clone must be equal")
	}
}

func TestMemoryEqualIgnoresZeroPages(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	a.Store(0x5000, 0) // allocates a page of zeros
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("all-zero page must compare equal to absent page")
	}
	a.Store(0x5000, 1)
	if a.Equal(b) {
		t.Fatal("differing byte must be detected")
	}
}

func TestStateLocations(t *testing.T) {
	s := New()
	// Round-trip through the rtl.Machine interface.
	s.Set(RegLoc(x86.EAX), bits.New(32, 0xdeadbeef))
	if s.Regs[x86.EAX] != 0xdeadbeef {
		t.Fatal("RegLoc set failed")
	}
	if s.Get(RegLoc(x86.EAX)).Uint64() != 0xdeadbeef {
		t.Fatal("RegLoc get failed")
	}
	s.Set(FlagLoc(x86.ZF), bits.Bool(true))
	if !s.Flags[x86.ZF] || !s.Get(FlagLoc(x86.ZF)).IsTrue() {
		t.Fatal("FlagLoc failed")
	}
	s.Set(PCLoc{}, bits.New(32, 0x42))
	if s.PC != 0x42 {
		t.Fatal("PCLoc failed")
	}
	s.Set(SegSelLoc(x86.GS), bits.New(16, 0x63))
	s.Set(SegBaseLoc(x86.GS), bits.New(32, 0x1000))
	s.Set(SegLimitLoc(x86.GS), bits.New(32, 0xfff))
	if s.SegSel[x86.GS] != 0x63 || s.SegBase[x86.GS] != 0x1000 || s.SegLimit[x86.GS] != 0xfff {
		t.Fatal("segment locations failed")
	}
}

func TestLocWidthsAndNames(t *testing.T) {
	if RegLoc(x86.EAX).Width() != 32 || FlagLoc(x86.CF).Width() != 1 ||
		(PCLoc{}).Width() != 32 || SegSelLoc(x86.CS).Width() != 16 ||
		SegBaseLoc(x86.CS).Width() != 32 || SegLimitLoc(x86.CS).Width() != 32 {
		t.Fatal("widths wrong")
	}
	if RegLoc(x86.EAX).String() != "eax" || SegBaseLoc(x86.CS).String() != "cs.base" {
		t.Fatal("names wrong")
	}
}

func TestStateCloneAndDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New()
	for i := range s.Regs {
		s.Regs[i] = rng.Uint32()
	}
	s.Mem.Store(123, 45)
	c := s.Clone()
	if !s.EqualRegs(c) || s.Diff(c) != "" {
		t.Fatal("clone must equal original")
	}
	c.Regs[x86.EBX] ^= 1
	if s.EqualRegs(c) || s.Diff(c) == "" {
		t.Fatal("register diff must be detected")
	}
	c2 := s.Clone()
	c2.Mem.Store(9999, 1)
	if s.Diff(c2) == "" {
		t.Fatal("memory diff must be detected")
	}
}

func TestNewStateHasFlatSegments(t *testing.T) {
	s := New()
	for i := range s.SegLimit {
		if s.SegLimit[i] != 0xffffffff || s.SegBase[i] != 0 {
			t.Fatal("fresh state must have flat segments")
		}
	}
	if s.String() == "" {
		t.Fatal("String must render")
	}
}

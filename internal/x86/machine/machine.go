// Package machine defines the concrete x86 machine state the RTL language
// is instantiated at: general purpose registers, tracked EFLAGS bits, the
// program counter, segment registers with base and limit (the mechanism
// 32-bit NaCl leans on), and a paged byte-addressed memory.
package machine

import (
	"fmt"

	"rocksalt/internal/bits"
	"rocksalt/internal/rtl"
	"rocksalt/internal/x86"
)

// RegLoc addresses a 32-bit general purpose register.
type RegLoc x86.Reg

// FlagLoc addresses one EFLAGS bit.
type FlagLoc x86.Flag

// PCLoc addresses the program counter (EIP).
type PCLoc struct{}

// SegSelLoc addresses a segment register's 16-bit selector.
type SegSelLoc x86.SegReg

// SegBaseLoc addresses the linear base of a segment (part of the hidden
// descriptor cache on real hardware; architectural state in the model).
type SegBaseLoc x86.SegReg

// SegLimitLoc addresses the limit (size in bytes, exclusive) of a segment.
type SegLimitLoc x86.SegReg

// Width implements rtl.Loc.
func (RegLoc) Width() int      { return 32 }
func (FlagLoc) Width() int     { return 1 }
func (PCLoc) Width() int       { return 32 }
func (SegSelLoc) Width() int   { return 16 }
func (SegBaseLoc) Width() int  { return 32 }
func (SegLimitLoc) Width() int { return 32 }

func (l RegLoc) String() string      { return x86.Reg(l).String() }
func (l FlagLoc) String() string     { return x86.Flag(l).String() }
func (PCLoc) String() string         { return "pc" }
func (l SegSelLoc) String() string   { return x86.SegReg(l).String() }
func (l SegBaseLoc) String() string  { return x86.SegReg(l).String() + ".base" }
func (l SegLimitLoc) String() string { return x86.SegReg(l).String() + ".limit" }

const pageBits = 12

// Memory is a sparse, paged, byte-addressed 32-bit memory.
type Memory struct {
	pages map[uint32]*[1 << pageBits]byte
}

// NewMemory returns an empty memory (all bytes zero).
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[1 << pageBits]byte)}
}

// Load reads one byte.
func (m *Memory) Load(addr uint32) byte {
	p := m.pages[addr>>pageBits]
	if p == nil {
		return 0
	}
	return p[addr&(1<<pageBits-1)]
}

// Store writes one byte.
func (m *Memory) Store(addr uint32, b byte) {
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil {
		p = new([1 << pageBits]byte)
		m.pages[key] = p
	}
	p[addr&(1<<pageBits-1)] = b
}

// WriteBytes copies a byte slice into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, bs []byte) {
	for i, b := range bs {
		m.Store(addr+uint32(i), b)
	}
}

// ReadBytes copies n bytes out of memory starting at addr.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Load(addr + uint32(i))
	}
	return out
}

// Nonzero calls f for every nonzero byte of memory, in no particular
// order, stopping early if f returns false. It lets a sandbox-escape
// check assert exact write confinement — every nonzero byte must be
// accounted for — instead of sampling guard zones around the segments.
func (m *Memory) Nonzero(f func(addr uint32, b byte) bool) {
	for k, p := range m.pages {
		for i, v := range p {
			if v != 0 && !f(k<<pageBits|uint32(i), v) {
				return
			}
		}
	}
}

// Clone deep-copies the memory.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for k, p := range m.pages {
		cp := *p
		c.pages[k] = &cp
	}
	return c
}

// Equal reports whether two memories hold the same bytes everywhere.
func (m *Memory) Equal(o *Memory) bool {
	check := func(a, b *Memory) bool {
		for k, p := range a.pages {
			q := b.pages[k]
			if q == nil {
				for _, v := range p {
					if v != 0 {
						return false
					}
				}
				continue
			}
			if *p != *q {
				return false
			}
		}
		return true
	}
	return check(m, o) && check(o, m)
}

// State is the full x86 machine state.
type State struct {
	Regs     [8]uint32
	Flags    [x86.NumFlags]bool
	PC       uint32
	SegSel   [6]uint16
	SegBase  [6]uint32
	SegLimit [6]uint32
	Mem      *Memory
}

// New returns a zeroed machine state with fresh memory and maximal
// (flat 4 GiB) segments.
func New() *State {
	s := &State{Mem: NewMemory()}
	for i := range s.SegLimit {
		s.SegLimit[i] = 0xffffffff
	}
	return s
}

var _ rtl.Machine = (*State)(nil)

// Get implements rtl.Machine.
func (s *State) Get(loc rtl.Loc) bits.Vec {
	switch l := loc.(type) {
	case RegLoc:
		return bits.New(32, uint64(s.Regs[l&7]))
	case FlagLoc:
		return bits.Bool(s.Flags[l])
	case PCLoc:
		return bits.New(32, uint64(s.PC))
	case SegSelLoc:
		return bits.New(16, uint64(s.SegSel[l%6]))
	case SegBaseLoc:
		return bits.New(32, uint64(s.SegBase[l%6]))
	case SegLimitLoc:
		return bits.New(32, uint64(s.SegLimit[l%6]))
	default:
		panic(fmt.Sprintf("machine: unknown location %v", loc))
	}
}

// Set implements rtl.Machine.
func (s *State) Set(loc rtl.Loc, v bits.Vec) {
	switch l := loc.(type) {
	case RegLoc:
		s.Regs[l&7] = uint32(v.Uint64())
	case FlagLoc:
		s.Flags[l] = v.IsTrue()
	case PCLoc:
		s.PC = uint32(v.Uint64())
	case SegSelLoc:
		s.SegSel[l%6] = uint16(v.Uint64())
	case SegBaseLoc:
		s.SegBase[l%6] = uint32(v.Uint64())
	case SegLimitLoc:
		s.SegLimit[l%6] = uint32(v.Uint64())
	default:
		panic(fmt.Sprintf("machine: unknown location %v", loc))
	}
}

// LoadByte implements rtl.Machine.
func (s *State) LoadByte(addr uint32) byte { return s.Mem.Load(addr) }

// StoreByte implements rtl.Machine.
func (s *State) StoreByte(addr uint32, b byte) { s.Mem.Store(addr, b) }

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := *s
	c.Mem = s.Mem.Clone()
	return &c
}

// EqualRegs reports whether the register files (including flags, PC and
// segments) of two states agree; memory is compared separately.
func (s *State) EqualRegs(o *State) bool {
	return s.Regs == o.Regs && s.Flags == o.Flags && s.PC == o.PC &&
		s.SegSel == o.SegSel && s.SegBase == o.SegBase && s.SegLimit == o.SegLimit
}

// Diff describes the first difference between two states, for test output.
func (s *State) Diff(o *State) string {
	for i := range s.Regs {
		if s.Regs[i] != o.Regs[i] {
			return fmt.Sprintf("%s: %#x vs %#x", x86.Reg(i), s.Regs[i], o.Regs[i])
		}
	}
	for i := range s.Flags {
		if s.Flags[i] != o.Flags[i] {
			return fmt.Sprintf("%s: %v vs %v", x86.Flag(i), s.Flags[i], o.Flags[i])
		}
	}
	if s.PC != o.PC {
		return fmt.Sprintf("pc: %#x vs %#x", s.PC, o.PC)
	}
	if s.SegSel != o.SegSel || s.SegBase != o.SegBase || s.SegLimit != o.SegLimit {
		return "segment state differs"
	}
	if !s.Mem.Equal(o.Mem) {
		return "memory differs"
	}
	return ""
}

// String renders the register file.
func (s *State) String() string {
	return fmt.Sprintf("eax=%08x ecx=%08x edx=%08x ebx=%08x esp=%08x ebp=%08x esi=%08x edi=%08x pc=%08x cf=%v zf=%v sf=%v of=%v",
		s.Regs[0], s.Regs[1], s.Regs[2], s.Regs[3], s.Regs[4], s.Regs[5], s.Regs[6], s.Regs[7],
		s.PC, s.Flags[x86.CF], s.Flags[x86.ZF], s.Flags[x86.SF], s.Flags[x86.OF])
}

// Package x86 defines the abstract syntax of the modeled 32-bit x86
// fragment: registers, flags, operands, prefixes, and the instruction
// type — the paper's Figure 1. The decoder (internal/x86/decode) produces
// these values and the RTL translation (internal/x86/semantics) consumes
// them; the abstract syntax is the interface between the two stages.
package x86

import (
	"fmt"
	"strings"
)

// Reg is a 32-bit general purpose register. The numeric values are the
// x86 encoding of the register fields.
type Reg uint8

// General purpose registers in encoding order.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
)

var regNames = [...]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}
var reg16Names = [...]string{"ax", "cx", "dx", "bx", "sp", "bp", "si", "di"}
var reg8Names = [...]string{"al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"}

func (r Reg) String() string { return regNames[r&7] }

// Name renders the register at a given operand size (8, 16 or 32 bits);
// at size 8 the encoding addresses AL..BH.
func (r Reg) Name(size int) string {
	switch size {
	case 8:
		return reg8Names[r&7]
	case 16:
		return reg16Names[r&7]
	default:
		return regNames[r&7]
	}
}

// SegReg is a segment register, in x86 encoding order.
type SegReg uint8

// Segment registers in encoding order.
const (
	ES SegReg = iota
	CS
	SS
	DS
	FS
	GS
)

var segNames = [...]string{"es", "cs", "ss", "ds", "fs", "gs"}

func (s SegReg) String() string { return segNames[s%6] }

// Flag identifies one bit of EFLAGS that the model tracks.
type Flag uint8

// Tracked EFLAGS bits.
const (
	CF Flag = iota // carry
	PF             // parity
	AF             // auxiliary carry
	ZF             // zero
	SF             // sign
	OF             // overflow
	DF             // direction
	NumFlags
)

var flagNames = [...]string{"CF", "PF", "AF", "ZF", "SF", "OF", "DF"}

func (f Flag) String() string { return flagNames[f%NumFlags] }

// Cond is a condition code, the tttn field of Jcc/SETcc/CMOVcc, in
// encoding order (0 = overflow, 1 = no overflow, ...).
type Cond uint8

// Condition codes in tttn encoding order.
const (
	CondO Cond = iota
	CondNO
	CondB
	CondNB
	CondE
	CondNE
	CondBE
	CondNBE
	CondS
	CondNS
	CondP
	CondNP
	CondL
	CondNL
	CondLE
	CondNLE
)

var condNames = [...]string{"o", "no", "b", "nb", "e", "ne", "be", "nbe", "s", "ns", "p", "np", "l", "nl", "le", "nle"}

func (c Cond) String() string { return condNames[c&15] }

// Scale is an SIB scale factor: 1, 2, 4 or 8.
type Scale uint8

// Addr is a memory effective address: Disp + Base + Index*Scale, any of
// base and index optional (the paper's int32 × option reg × option
// (scale × reg)).
type Addr struct {
	Disp  uint32
	Base  *Reg
	Index *Reg // never ESP
	Scale Scale
}

func (a Addr) String() string {
	var parts []string
	if a.Base != nil {
		parts = append(parts, a.Base.String())
	}
	if a.Index != nil {
		parts = append(parts, fmt.Sprintf("%s*%d", a.Index, a.Scale))
	}
	if a.Disp != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("0x%x", a.Disp))
	}
	return "[" + strings.Join(parts, "+") + "]"
}

// Operand is an instruction operand (Figure 1's op type).
type Operand interface {
	isOperand()
	String() string
}

// Imm is an immediate operand.
type Imm struct{ Val uint32 }

// RegOp is a register operand.
type RegOp struct{ Reg Reg }

// MemOp is a memory operand with an effective address.
type MemOp struct{ Addr Addr }

// OffOp is a direct memory offset (the moffs forms of MOV).
type OffOp struct{ Off uint32 }

// SegOp is a segment-register operand (MOV to/from Sreg, PUSH/POP Sreg).
type SegOp struct{ Seg SegReg }

func (Imm) isOperand()   {}
func (RegOp) isOperand() {}
func (MemOp) isOperand() {}
func (OffOp) isOperand() {}
func (SegOp) isOperand() {}

func (o Imm) String() string   { return fmt.Sprintf("0x%x", o.Val) }
func (o RegOp) String() string { return o.Reg.String() }
func (o MemOp) String() string { return o.Addr.String() }
func (o OffOp) String() string { return fmt.Sprintf("[0x%x]", o.Off) }
func (o SegOp) String() string { return o.Seg.String() }

// Prefix records the instruction prefixes, the paper's prefix record.
type Prefix struct {
	Lock     bool    // F0
	Rep      bool    // F3
	RepN     bool    // F2
	Seg      *SegReg // segment override, nil if none
	OpSize   bool    // 66: 16-bit operands
	AddrSize bool    // 67: 16-bit addressing (parsed, rejected by policy)
}

func (p Prefix) String() string {
	var parts []string
	if p.Lock {
		parts = append(parts, "lock")
	}
	if p.Rep {
		parts = append(parts, "rep")
	}
	if p.RepN {
		parts = append(parts, "repn")
	}
	if p.Seg != nil {
		parts = append(parts, p.Seg.String()+":")
	}
	if p.OpSize {
		parts = append(parts, "o16")
	}
	if p.AddrSize {
		parts = append(parts, "a16")
	}
	return strings.Join(parts, " ")
}

// Op is an instruction opcode (mnemonic).
type Op uint16

// Opcodes, alphabetical. Condition-code families (Jcc, SETcc, CMOVcc) are
// single opcodes with the condition stored in Inst.Cond, matching the
// paper's convention of counting e.g. all fourteen ADC encodings as one
// instruction.
const (
	BAD Op = iota
	AAA
	AAD
	AAM
	AAS
	ADC
	ADD
	AND
	BOUND
	BSF
	BSR
	BSWAP
	BT
	BTC
	BTR
	BTS
	CALL
	CDQ
	CLC
	CLD
	CMC
	CMOVcc
	CMP
	CMPS
	CMPXCHG
	CMPXCHG8B
	CPUID
	CWDE
	DAA
	DAS
	DEC
	DIV
	ENTER
	HLT
	IDIV
	IMUL
	IN
	INC
	INS
	INT
	INT3
	INTO
	IRET
	Jcc
	JCXZ
	JMP
	LAHF
	LDS
	LEA
	LEAVE
	LES
	LFS
	LGS
	LODS
	LOOP
	LOOPNZ
	LOOPZ
	LSS
	MOV
	MOVS
	MOVSX
	MOVZX
	MUL
	NEG
	NOP
	NOT
	OR
	OUT
	OUTS
	POP
	POPA
	POPF
	PUSH
	PUSHA
	PUSHF
	RCL
	RCR
	RDTSC
	RET
	ROL
	ROR
	SAHF
	SAR
	SBB
	SCAS
	SETcc
	SHL
	SHLD
	SHR
	SHRD
	STC
	STD
	STOS
	SUB
	TEST
	UD2
	XADD
	XCHG
	XLAT
	XOR
	NumOps
)

var opNames = [...]string{
	"bad", "aaa", "aad", "aam", "aas", "adc", "add", "and", "bound", "bsf",
	"bsr", "bswap", "bt", "btc", "btr", "bts", "call", "cdq", "clc", "cld",
	"cmc", "cmov", "cmp", "cmps", "cmpxchg", "cmpxchg8b", "cpuid", "cwde",
	"daa", "das", "dec", "div", "enter", "hlt", "idiv", "imul", "in",
	"inc", "ins", "int", "int3", "into", "iret", "j", "jcxz", "jmp",
	"lahf", "lds", "lea", "leave", "les", "lfs", "lgs", "lods", "loop",
	"loopnz", "loopz", "lss", "mov", "movs", "movsx", "movzx", "mul",
	"neg", "nop", "not", "or", "out", "outs", "pop", "popa", "popf",
	"push", "pusha", "pushf", "rcl", "rcr", "rdtsc", "ret", "rol", "ror",
	"sahf", "sar", "sbb", "scas", "set", "shl", "shld", "shr", "shrd",
	"stc", "std", "stos", "sub", "test", "ud2", "xadd", "xchg", "xlat",
	"xor",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint16(o))
}

// Inst is a decoded instruction. W is the paper's "boolean mode": true
// when the operand size is the default (32 bits, or 16 under an
// operand-size prefix), false when it is one byte.
type Inst struct {
	Prefix  Prefix
	Op      Op
	W       bool
	Cond    Cond      // for Jcc/SETcc/CMOVcc
	Args    []Operand // destination first
	Far     bool      // far forms of CALL/JMP/RET
	Sel     uint16    // far segment selector (CALL ptr16:32)
	Rel     bool      // Args[0] immediate is PC-relative (JMP/Jcc/CALL rel)
	SrcSize uint8     // source width in bits for MOVZX/MOVSX (8 or 16)
}

// OperandSize returns the instruction's operand size in bits under its
// prefixes: 8 when W is clear, else 16 under an operand-size override,
// else 32.
func (i Inst) OperandSize() int {
	if !i.W {
		return 8
	}
	if i.Prefix.OpSize {
		return 16
	}
	return 32
}

func (i Inst) String() string {
	var sb strings.Builder
	if p := i.Prefix.String(); p != "" {
		sb.WriteString(p)
		sb.WriteByte(' ')
	}
	sb.WriteString(i.Op.String())
	switch i.Op {
	case Jcc, SETcc, CMOVcc:
		sb.WriteString(i.Cond.String())
	}
	size := i.OperandSize()
	for n, a := range i.Args {
		if n == 0 {
			sb.WriteByte(' ')
		} else {
			sb.WriteString(", ")
		}
		if r, ok := a.(RegOp); ok {
			sb.WriteString(r.Reg.Name(size))
		} else {
			sb.WriteString(a.String())
		}
	}
	return sb.String()
}

// IsControlFlow reports whether the instruction can change the program
// counter non-sequentially.
func (i Inst) IsControlFlow() bool {
	switch i.Op {
	case CALL, JMP, Jcc, JCXZ, RET, LOOP, LOOPZ, LOOPNZ, INT, INT3, INTO, IRET:
		return true
	}
	return false
}

package decode

import (
	"rocksalt/internal/grammar"
	"rocksalt/internal/x86"
)

// This file transcribes the Intel manual's opcode tables into grammars,
// one definition per instruction, in the style of the paper's Figure 2.
// Bit patterns are written most-significant-bit first; `chain` sequences
// sub-grammars and `act` attaches the semantic action building the
// abstract syntax.
//
// Each builder is parameterized by opsize16: whether an operand-size
// override prefix (0x66) is in force, which changes the width of "z"
// immediates. The top-level grammar (decode.go) combines the two variants
// with the appropriate prefix grammars.

func lit(b byte) *g { return grammar.LitByte(b) }

func esc() *g { return lit(0x0f) } // two-byte opcode escape

func mk(op x86.Op, w bool, args ...x86.Operand) x86.Inst {
	return x86.Inst{Op: op, W: w, Args: args}
}

func regOp(r x86.Reg) x86.Operand { return x86.RegOp{Reg: r} }
func immOp(v uint32) x86.Operand  { return x86.Imm{Val: v} }

// instG wraps an action returning x86.Inst.
func instG(gr *g, f func([]val) x86.Inst) *g {
	return act(gr, func(vs []val) val { return f(vs) })
}

// ---------- The binary arithmetic family ----------

// arithFamily covers ADD/OR/ADC/SBB/AND/SUB/XOR/CMP, each with the six
// classic encodings: 00+8n /r (four d/w forms counted as one pattern),
// 04+8n AL/eAX-immediate, and the 80/81/83 group forms.
func arithFamily(c cfg) []*g {
	type fam struct {
		op  x86.Op
		nnn uint64
	}
	fams := []fam{
		{x86.ADD, 0}, {x86.OR, 1}, {x86.ADC, 2}, {x86.SBB, 3},
		{x86.AND, 4}, {x86.SUB, 5}, {x86.XOR, 6}, {x86.CMP, 7},
	}
	var out []*g
	for _, f := range fams {
		op := f.op
		// 00nnn0dw /r : reg/modrm forms.
		out = append(out, instG(
			chain(grammar.Bits("00"), grammar.BitsValue(3, f.nnn), grammar.Bits("0"),
				bit(), bit(), c.modrm()),
			func(vs []val) x86.Inst {
				d, w := vs[0].(bool), vs[1].(bool)
				m := vs[2].(modrmVal)
				rop := regOp(x86.Reg(m.reg))
				if d {
					return mk(op, w, rop, m.op)
				}
				return mk(op, w, m.op, rop)
			}))
		// 04+8n ib : op AL, imm8.
		out = append(out, instG(
			chain(grammar.Bits("00"), grammar.BitsValue(3, f.nnn), grammar.Bits("100"), imm8()),
			func(vs []val) x86.Inst {
				return mk(op, false, regOp(x86.EAX), immOp(vs[0].(uint32)))
			}))
		// 05+8n iz : op eAX, immZ.
		out = append(out, instG(
			chain(grammar.Bits("00"), grammar.BitsValue(3, f.nnn), grammar.Bits("101"), c.immZ()),
			func(vs []val) x86.Inst {
				return mk(op, true, regOp(x86.EAX), immOp(vs[0].(uint32)))
			}))
	}
	ext := func(n uint64) string {
		s := ""
		for i := 2; i >= 0; i-- {
			if n>>uint(i)&1 == 1 {
				s += "1"
			} else {
				s += "0"
			}
		}
		return s
	}
	for _, f := range fams {
		op := f.op
		// 80 /n ib : op r/m8, imm8.
		out = append(out, instG(chain(lit(0x80), c.extOpModrm(ext(f.nnn)), imm8()),
			func(vs []val) x86.Inst {
				return mk(op, false, vs[0].(x86.Operand), immOp(vs[1].(uint32)))
			}))
		// 81 /n iz : op r/m, immZ.
		out = append(out, instG(chain(lit(0x81), c.extOpModrm(ext(f.nnn)), c.immZ()),
			func(vs []val) x86.Inst {
				return mk(op, true, vs[0].(x86.Operand), immOp(vs[1].(uint32)))
			}))
		// 83 /n ib : op r/m, imm8 sign-extended.
		out = append(out, instG(chain(lit(0x83), c.extOpModrm(ext(f.nnn)), imm8s()),
			func(vs []val) x86.Inst {
				return mk(op, true, vs[0].(x86.Operand), immOp(vs[1].(uint32)))
			}))
	}
	return out
}

// ---------- Data movement ----------

func seg3() *g {
	var alts []*g
	for s := x86.ES; s <= x86.GS; s++ {
		ss := s
		alts = append(alts, grammar.Map(grammar.BitsValue(3, uint64(ss)),
			func(val) val { return ss }))
	}
	return grammar.Alt(alts...)
}

func movGrammars(c cfg) []*g {
	var out []*g
	// 88/89/8A/8B /r.
	out = append(out, instG(chain(grammar.Bits("100010"), bit(), bit(), c.modrm()),
		func(vs []val) x86.Inst {
			d, w := vs[0].(bool), vs[1].(bool)
			m := vs[2].(modrmVal)
			rop := regOp(x86.Reg(m.reg))
			if d {
				return mk(x86.MOV, w, rop, m.op)
			}
			return mk(x86.MOV, w, m.op, rop)
		}))
	// 8C /r : MOV r/m, Sreg (the encoding family of the paper's famous
	// flipped-bit bug).
	segModrm := c.modrmWithReg(grammar.Field(3), false)
	out = append(out, instG(chain(lit(0x8c), segModrm), func(vs []val) x86.Inst {
		m := vs[0].(modrmVal)
		return mk(x86.MOV, true, m.op, x86.SegOp{Seg: x86.SegReg(m.reg % 6)})
	}))
	// 8E /r : MOV Sreg, r/m.
	out = append(out, instG(chain(lit(0x8e), segModrm), func(vs []val) x86.Inst {
		m := vs[0].(modrmVal)
		return mk(x86.MOV, true, x86.SegOp{Seg: x86.SegReg(m.reg % 6)}, m.op)
	}))
	// A0-A3 : moffs forms.
	out = append(out,
		instG(chain(lit(0xa0), c.moffs()), func(vs []val) x86.Inst {
			return mk(x86.MOV, false, regOp(x86.EAX), x86.OffOp{Off: vs[0].(uint32)})
		}),
		instG(chain(lit(0xa1), c.moffs()), func(vs []val) x86.Inst {
			return mk(x86.MOV, true, regOp(x86.EAX), x86.OffOp{Off: vs[0].(uint32)})
		}),
		instG(chain(lit(0xa2), c.moffs()), func(vs []val) x86.Inst {
			return mk(x86.MOV, false, x86.OffOp{Off: vs[0].(uint32)}, regOp(x86.EAX))
		}),
		instG(chain(lit(0xa3), c.moffs()), func(vs []val) x86.Inst {
			return mk(x86.MOV, true, x86.OffOp{Off: vs[0].(uint32)}, regOp(x86.EAX))
		}))
	// B0+r ib / B8+r iz.
	out = append(out,
		instG(chain(grammar.Bits("10110"), reg3(), imm8()), func(vs []val) x86.Inst {
			return mk(x86.MOV, false, regOp(vs[0].(x86.Reg)), immOp(vs[1].(uint32)))
		}),
		instG(chain(grammar.Bits("10111"), reg3(), c.immZ()), func(vs []val) x86.Inst {
			return mk(x86.MOV, true, regOp(vs[0].(x86.Reg)), immOp(vs[1].(uint32)))
		}))
	// C6 /0 ib, C7 /0 iz.
	out = append(out,
		instG(chain(lit(0xc6), c.extOpModrm("000"), imm8()), func(vs []val) x86.Inst {
			return mk(x86.MOV, false, vs[0].(x86.Operand), immOp(vs[1].(uint32)))
		}),
		instG(chain(lit(0xc7), c.extOpModrm("000"), c.immZ()), func(vs []val) x86.Inst {
			return mk(x86.MOV, true, vs[0].(x86.Operand), immOp(vs[1].(uint32)))
		}))
	// MOVZX / MOVSX: 0F B6/B7/BE/BF /r.
	wide := func(op x86.Op, second byte, srcW bool) *g {
		return instG(chain(esc(), lit(second), c.modrm()), func(vs []val) x86.Inst {
			m := vs[0].(modrmVal)
			i := mk(op, true, regOp(x86.Reg(m.reg)), m.op)
			if srcW {
				i.SrcSize = 16
			} else {
				i.SrcSize = 8
			}
			return i
		})
	}
	out = append(out,
		wide(x86.MOVZX, 0xb6, false), wide(x86.MOVZX, 0xb7, true),
		wide(x86.MOVSX, 0xbe, false), wide(x86.MOVSX, 0xbf, true))
	// LEA 8D /r (memory only).
	out = append(out, instG(chain(lit(0x8d), c.modrmMemOnly()), func(vs []val) x86.Inst {
		m := vs[0].(modrmVal)
		return mk(x86.LEA, true, regOp(x86.Reg(m.reg)), m.op)
	}))
	// XCHG 86/87 /r; 90+r with eAX (r=0 is NOP, excluded here).
	out = append(out, instG(chain(grammar.Bits("1000011"), bit(), c.modrm()),
		func(vs []val) x86.Inst {
			m := vs[1].(modrmVal)
			return mk(x86.XCHG, vs[0].(bool), m.op, regOp(x86.Reg(m.reg)))
		}))
	out = append(out, instG(chain(grammar.Bits("10010"), reg3Except(x86.EAX)),
		func(vs []val) x86.Inst {
			return mk(x86.XCHG, true, regOp(x86.EAX), regOp(vs[0].(x86.Reg)))
		}))
	// XLAT D7.
	out = append(out, instG(chain(lit(0xd7)), func([]val) x86.Inst { return mk(x86.XLAT, false) }))
	// CMOVcc 0F 40+tttn /r.
	out = append(out, instG(chain(esc(), grammar.Bits("0100"), grammar.Field(4), c.modrm()),
		func(vs []val) x86.Inst {
			m := vs[1].(modrmVal)
			i := mk(x86.CMOVcc, true, regOp(x86.Reg(m.reg)), m.op)
			i.Cond = x86.Cond(vs[0].(uint64))
			return i
		}))
	// SETcc 0F 90+tttn /r (reg field ignored by hardware; we accept any).
	out = append(out, instG(chain(esc(), grammar.Bits("1001"), grammar.Field(4), c.modrm()),
		func(vs []val) x86.Inst {
			m := vs[1].(modrmVal)
			i := mk(x86.SETcc, false, m.op)
			i.Cond = x86.Cond(vs[0].(uint64))
			return i
		}))
	return out
}

// ---------- Stack operations ----------

func stackGrammars(c cfg) []*g {
	var out []*g
	out = append(out,
		instG(chain(grammar.Bits("01010"), reg3()), func(vs []val) x86.Inst {
			return mk(x86.PUSH, true, regOp(vs[0].(x86.Reg)))
		}),
		instG(chain(grammar.Bits("01011"), reg3()), func(vs []val) x86.Inst {
			return mk(x86.POP, true, regOp(vs[0].(x86.Reg)))
		}),
		instG(chain(lit(0xff), c.extOpModrm("110")), func(vs []val) x86.Inst {
			return mk(x86.PUSH, true, vs[0].(x86.Operand))
		}),
		instG(chain(lit(0x8f), c.extOpModrm("000")), func(vs []val) x86.Inst {
			return mk(x86.POP, true, vs[0].(x86.Operand))
		}),
		instG(chain(lit(0x68), c.immZ()), func(vs []val) x86.Inst {
			return mk(x86.PUSH, true, immOp(vs[0].(uint32)))
		}),
		instG(chain(lit(0x6a), imm8s()), func(vs []val) x86.Inst {
			return mk(x86.PUSH, true, immOp(vs[0].(uint32)))
		}),
		instG(chain(lit(0x60)), func([]val) x86.Inst { return mk(x86.PUSHA, true) }),
		instG(chain(lit(0x61)), func([]val) x86.Inst { return mk(x86.POPA, true) }),
		instG(chain(lit(0x9c)), func([]val) x86.Inst { return mk(x86.PUSHF, true) }),
		instG(chain(lit(0x9d)), func([]val) x86.Inst { return mk(x86.POPF, true) }),
		instG(chain(lit(0xc9)), func([]val) x86.Inst { return mk(x86.LEAVE, true) }),
	)
	// PUSH/POP Sreg.
	pushSeg := func(b byte, s x86.SegReg) *g {
		return instG(chain(lit(b)), func([]val) x86.Inst {
			return mk(x86.PUSH, true, x86.SegOp{Seg: s})
		})
	}
	popSeg := func(b byte, s x86.SegReg) *g {
		return instG(chain(lit(b)), func([]val) x86.Inst {
			return mk(x86.POP, true, x86.SegOp{Seg: s})
		})
	}
	out = append(out,
		pushSeg(0x06, x86.ES), pushSeg(0x0e, x86.CS), pushSeg(0x16, x86.SS), pushSeg(0x1e, x86.DS),
		popSeg(0x07, x86.ES), popSeg(0x17, x86.SS), popSeg(0x1f, x86.DS),
		instG(chain(esc(), lit(0xa0)), func([]val) x86.Inst {
			return mk(x86.PUSH, true, x86.SegOp{Seg: x86.FS})
		}),
		instG(chain(esc(), lit(0xa1)), func([]val) x86.Inst {
			return mk(x86.POP, true, x86.SegOp{Seg: x86.FS})
		}),
		instG(chain(esc(), lit(0xa8)), func([]val) x86.Inst {
			return mk(x86.PUSH, true, x86.SegOp{Seg: x86.GS})
		}),
		instG(chain(esc(), lit(0xa9)), func([]val) x86.Inst {
			return mk(x86.POP, true, x86.SegOp{Seg: x86.GS})
		}),
	)
	return out
}

// ---------- Unary groups, multiplies, shifts ----------

func unaryGrammars(c cfg) []*g {
	var out []*g
	// INC/DEC: 40+r / 48+r, FE//FF /0 /1.
	out = append(out,
		instG(chain(grammar.Bits("01000"), reg3()), func(vs []val) x86.Inst {
			return mk(x86.INC, true, regOp(vs[0].(x86.Reg)))
		}),
		instG(chain(grammar.Bits("01001"), reg3()), func(vs []val) x86.Inst {
			return mk(x86.DEC, true, regOp(vs[0].(x86.Reg)))
		}),
		instG(chain(grammar.Bits("1111111"), bit(), c.extOpModrm("000")), func(vs []val) x86.Inst {
			return mk(x86.INC, vs[0].(bool), vs[1].(x86.Operand))
		}),
		instG(chain(grammar.Bits("1111111"), bit(), c.extOpModrm("001")), func(vs []val) x86.Inst {
			return mk(x86.DEC, vs[0].(bool), vs[1].(x86.Operand))
		}),
	)
	// F6/F7 group: TEST /0, NOT /2, NEG /3, MUL /4, IMUL /5, DIV /6, IDIV /7.
	grp := func(ext string, op x86.Op) *g {
		return instG(chain(grammar.Bits("1111011"), bit(), c.extOpModrm(ext)), func(vs []val) x86.Inst {
			return mk(op, vs[0].(bool), vs[1].(x86.Operand))
		})
	}
	out = append(out, grp("010", x86.NOT), grp("011", x86.NEG),
		grp("100", x86.MUL), grp("101", x86.IMUL), grp("110", x86.DIV), grp("111", x86.IDIV))
	// TEST F6/F7 /0 carries an immediate.
	out = append(out,
		instG(chain(lit(0xf6), c.extOpModrm("000"), imm8()), func(vs []val) x86.Inst {
			return mk(x86.TEST, false, vs[0].(x86.Operand), immOp(vs[1].(uint32)))
		}),
		instG(chain(lit(0xf7), c.extOpModrm("000"), c.immZ()), func(vs []val) x86.Inst {
			return mk(x86.TEST, true, vs[0].(x86.Operand), immOp(vs[1].(uint32)))
		}),
		// TEST 84/85 /r, A8 ib, A9 iz.
		instG(chain(grammar.Bits("1000010"), bit(), c.modrm()), func(vs []val) x86.Inst {
			m := vs[1].(modrmVal)
			return mk(x86.TEST, vs[0].(bool), m.op, regOp(x86.Reg(m.reg)))
		}),
		instG(chain(lit(0xa8), imm8()), func(vs []val) x86.Inst {
			return mk(x86.TEST, false, regOp(x86.EAX), immOp(vs[0].(uint32)))
		}),
		instG(chain(lit(0xa9), c.immZ()), func(vs []val) x86.Inst {
			return mk(x86.TEST, true, regOp(x86.EAX), immOp(vs[0].(uint32)))
		}),
	)
	// IMUL two/three operand forms.
	out = append(out,
		instG(chain(esc(), lit(0xaf), c.modrm()), func(vs []val) x86.Inst {
			m := vs[0].(modrmVal)
			return mk(x86.IMUL, true, regOp(x86.Reg(m.reg)), m.op)
		}),
		instG(chain(lit(0x6b), c.modrm(), imm8s()), func(vs []val) x86.Inst {
			m := vs[0].(modrmVal)
			return mk(x86.IMUL, true, regOp(x86.Reg(m.reg)), m.op, immOp(vs[1].(uint32)))
		}),
		instG(chain(lit(0x69), c.modrm(), c.immZ()), func(vs []val) x86.Inst {
			m := vs[0].(modrmVal)
			return mk(x86.IMUL, true, regOp(x86.Reg(m.reg)), m.op, immOp(vs[1].(uint32)))
		}),
	)
	// Shift/rotate group: C0/C1 ib, D0/D1 by-1, D2/D3 by-CL.
	shiftExt := []struct {
		ext string
		op  x86.Op
	}{
		{"000", x86.ROL}, {"001", x86.ROR}, {"010", x86.RCL}, {"011", x86.RCR},
		{"100", x86.SHL}, {"101", x86.SHR}, {"111", x86.SAR},
	}
	for _, se := range shiftExt {
		op := se.op
		out = append(out,
			instG(chain(grammar.Bits("1100000"), bit(), c.extOpModrm(se.ext), imm8()),
				func(vs []val) x86.Inst {
					return mk(op, vs[0].(bool), vs[1].(x86.Operand), immOp(vs[2].(uint32)))
				}),
			instG(chain(grammar.Bits("1101000"), bit(), c.extOpModrm(se.ext)),
				func(vs []val) x86.Inst {
					return mk(op, vs[0].(bool), vs[1].(x86.Operand), immOp(1))
				}),
			instG(chain(grammar.Bits("1101001"), bit(), c.extOpModrm(se.ext)),
				func(vs []val) x86.Inst {
					return mk(op, vs[0].(bool), vs[1].(x86.Operand), regOp(x86.ECX))
				}),
		)
	}
	// SHLD/SHRD.
	dbl := func(second byte, op x86.Op, byCL bool) *g {
		if byCL {
			return instG(chain(esc(), lit(second), c.modrm()), func(vs []val) x86.Inst {
				m := vs[0].(modrmVal)
				return mk(op, true, m.op, regOp(x86.Reg(m.reg)), regOp(x86.ECX))
			})
		}
		return instG(chain(esc(), lit(second), c.modrm(), imm8()), func(vs []val) x86.Inst {
			m := vs[0].(modrmVal)
			return mk(op, true, m.op, regOp(x86.Reg(m.reg)), immOp(vs[1].(uint32)))
		})
	}
	out = append(out,
		dbl(0xa4, x86.SHLD, false), dbl(0xa5, x86.SHLD, true),
		dbl(0xac, x86.SHRD, false), dbl(0xad, x86.SHRD, true))
	return out
}

// ---------- Bit tests, scans, byte swap, atomic helpers ----------

func bitGrammars(c cfg) []*g {
	var out []*g
	btRM := func(second byte, op x86.Op) *g {
		return instG(chain(esc(), lit(second), c.modrm()), func(vs []val) x86.Inst {
			m := vs[0].(modrmVal)
			return mk(op, true, m.op, regOp(x86.Reg(m.reg)))
		})
	}
	out = append(out, btRM(0xa3, x86.BT), btRM(0xab, x86.BTS), btRM(0xb3, x86.BTR), btRM(0xbb, x86.BTC))
	btImm := func(ext string, op x86.Op) *g {
		return instG(chain(esc(), lit(0xba), c.extOpModrm(ext), imm8()), func(vs []val) x86.Inst {
			return mk(op, true, vs[0].(x86.Operand), immOp(vs[1].(uint32)))
		})
	}
	out = append(out, btImm("100", x86.BT), btImm("101", x86.BTS), btImm("110", x86.BTR), btImm("111", x86.BTC))
	scan := func(second byte, op x86.Op) *g {
		return instG(chain(esc(), lit(second), c.modrm()), func(vs []val) x86.Inst {
			m := vs[0].(modrmVal)
			return mk(op, true, regOp(x86.Reg(m.reg)), m.op)
		})
	}
	out = append(out, scan(0xbc, x86.BSF), scan(0xbd, x86.BSR))
	out = append(out, instG(chain(esc(), grammar.Bits("11001"), reg3()), func(vs []val) x86.Inst {
		return mk(x86.BSWAP, true, regOp(vs[0].(x86.Reg)))
	}))
	xaddCmp := func(second byte, op x86.Op, w bool) *g {
		return instG(chain(esc(), lit(second), c.modrm()), func(vs []val) x86.Inst {
			m := vs[0].(modrmVal)
			return mk(op, w, m.op, regOp(x86.Reg(m.reg)))
		})
	}
	out = append(out,
		xaddCmp(0xb0, x86.CMPXCHG, false), xaddCmp(0xb1, x86.CMPXCHG, true),
		xaddCmp(0xc0, x86.XADD, false), xaddCmp(0xc1, x86.XADD, true))
	return out
}

// ---------- Control flow ----------

func controlGrammars(c cfg) []*g {
	var out []*g
	// CALL: the paper's Figure 2, plus Intel's operand order for the far
	// immediate form (offset then selector).
	out = append(out,
		instG(chain(lit(0xe8), c.immZ()), func(vs []val) x86.Inst {
			i := mk(x86.CALL, true, immOp(vs[0].(uint32)))
			i.Rel = true
			return i
		}),
		instG(chain(lit(0xff), c.extOpModrm("010")), func(vs []val) x86.Inst {
			return mk(x86.CALL, true, vs[0].(x86.Operand))
		}),
		instG(chain(lit(0x9a), disp32(), imm16()), func(vs []val) x86.Inst {
			i := mk(x86.CALL, true, immOp(vs[0].(uint32)))
			i.Far = true
			i.Sel = uint16(vs[1].(uint32))
			return i
		}),
		instG(chain(lit(0xff), c.extOpModrmMem("011")), func(vs []val) x86.Inst {
			i := mk(x86.CALL, true, vs[0].(x86.Operand))
			i.Far = true
			return i
		}),
	)
	// JMP: EB rel8, E9 relZ, EA far, FF /4, FF /5 mem.
	out = append(out,
		instG(chain(lit(0xeb), imm8s()), func(vs []val) x86.Inst {
			i := mk(x86.JMP, true, immOp(vs[0].(uint32)))
			i.Rel = true
			return i
		}),
		instG(chain(lit(0xe9), c.immZ()), func(vs []val) x86.Inst {
			i := mk(x86.JMP, true, immOp(vs[0].(uint32)))
			i.Rel = true
			return i
		}),
		instG(chain(lit(0xea), disp32(), imm16()), func(vs []val) x86.Inst {
			i := mk(x86.JMP, true, immOp(vs[0].(uint32)))
			i.Far = true
			i.Sel = uint16(vs[1].(uint32))
			return i
		}),
		instG(chain(lit(0xff), c.extOpModrm("100")), func(vs []val) x86.Inst {
			return mk(x86.JMP, true, vs[0].(x86.Operand))
		}),
		instG(chain(lit(0xff), c.extOpModrmMem("101")), func(vs []val) x86.Inst {
			i := mk(x86.JMP, true, vs[0].(x86.Operand))
			i.Far = true
			return i
		}),
	)
	// Jcc rel8 and rel32.
	out = append(out,
		instG(chain(grammar.Bits("0111"), grammar.Field(4), imm8s()), func(vs []val) x86.Inst {
			i := mk(x86.Jcc, true, immOp(vs[1].(uint32)))
			i.Cond = x86.Cond(vs[0].(uint64))
			i.Rel = true
			return i
		}),
		instG(chain(esc(), grammar.Bits("1000"), grammar.Field(4), c.immZ()), func(vs []val) x86.Inst {
			i := mk(x86.Jcc, true, immOp(vs[1].(uint32)))
			i.Cond = x86.Cond(vs[0].(uint64))
			i.Rel = true
			return i
		}),
	)
	// LOOP family and JECXZ (all rel8).
	loopG := func(b byte, op x86.Op) *g {
		return instG(chain(lit(b), imm8s()), func(vs []val) x86.Inst {
			i := mk(op, true, immOp(vs[0].(uint32)))
			i.Rel = true
			return i
		})
	}
	out = append(out, loopG(0xe0, x86.LOOPNZ), loopG(0xe1, x86.LOOPZ), loopG(0xe2, x86.LOOP), loopG(0xe3, x86.JCXZ))
	// RET near/far, with and without the stack adjustment.
	out = append(out,
		instG(chain(lit(0xc3)), func([]val) x86.Inst { return mk(x86.RET, true) }),
		instG(chain(lit(0xc2), imm16()), func(vs []val) x86.Inst {
			return mk(x86.RET, true, immOp(vs[0].(uint32)))
		}),
		instG(chain(lit(0xcb)), func([]val) x86.Inst {
			i := mk(x86.RET, true)
			i.Far = true
			return i
		}),
		instG(chain(lit(0xca), imm16()), func(vs []val) x86.Inst {
			i := mk(x86.RET, true, immOp(vs[0].(uint32)))
			i.Far = true
			return i
		}),
	)
	// Software interrupts.
	out = append(out,
		instG(chain(lit(0xcc)), func([]val) x86.Inst { return mk(x86.INT3, false) }),
		instG(chain(lit(0xcd), imm8()), func(vs []val) x86.Inst {
			return mk(x86.INT, false, immOp(vs[0].(uint32)))
		}),
		instG(chain(lit(0xce)), func([]val) x86.Inst { return mk(x86.INTO, false) }),
		instG(chain(lit(0xcf)), func([]val) x86.Inst { return mk(x86.IRET, true) }),
	)
	return out
}

// ---------- Strings, I/O, flags, conversions, decimal, misc ----------

func miscGrammars(c cfg) []*g {
	var out []*g
	strOp := func(b byte, op x86.Op, w bool) *g {
		return instG(chain(lit(b)), func([]val) x86.Inst { return mk(op, w) })
	}
	out = append(out,
		strOp(0xa4, x86.MOVS, false), strOp(0xa5, x86.MOVS, true),
		strOp(0xa6, x86.CMPS, false), strOp(0xa7, x86.CMPS, true),
		strOp(0xaa, x86.STOS, false), strOp(0xab, x86.STOS, true),
		strOp(0xac, x86.LODS, false), strOp(0xad, x86.LODS, true),
		strOp(0xae, x86.SCAS, false), strOp(0xaf, x86.SCAS, true),
		strOp(0x6c, x86.INS, false), strOp(0x6d, x86.INS, true),
		strOp(0x6e, x86.OUTS, false), strOp(0x6f, x86.OUTS, true),
	)
	// IN/OUT with port immediate or DX.
	out = append(out,
		instG(chain(grammar.Bits("1110010"), bit(), imm8()), func(vs []val) x86.Inst {
			return mk(x86.IN, vs[0].(bool), regOp(x86.EAX), immOp(vs[1].(uint32)))
		}),
		instG(chain(grammar.Bits("1110011"), bit(), imm8()), func(vs []val) x86.Inst {
			return mk(x86.OUT, vs[0].(bool), immOp(vs[1].(uint32)), regOp(x86.EAX))
		}),
		instG(chain(grammar.Bits("1110110"), bit()), func(vs []val) x86.Inst {
			return mk(x86.IN, vs[0].(bool), regOp(x86.EAX), regOp(x86.EDX))
		}),
		instG(chain(grammar.Bits("1110111"), bit()), func(vs []val) x86.Inst {
			return mk(x86.OUT, vs[0].(bool), regOp(x86.EDX), regOp(x86.EAX))
		}),
	)
	single := func(b byte, op x86.Op, w bool) *g {
		return instG(chain(lit(b)), func([]val) x86.Inst { return mk(op, w) })
	}
	out = append(out,
		single(0x27, x86.DAA, false), single(0x2f, x86.DAS, false),
		single(0x37, x86.AAA, false), single(0x3f, x86.AAS, false),
		single(0x98, x86.CWDE, true), single(0x99, x86.CDQ, true),
		single(0x9e, x86.SAHF, false), single(0x9f, x86.LAHF, false),
		single(0xf4, x86.HLT, false), single(0xf5, x86.CMC, false),
		single(0xf8, x86.CLC, false), single(0xf9, x86.STC, false),
		single(0xfc, x86.CLD, false), single(0xfd, x86.STD, false),
		single(0x90, x86.NOP, true),
	)
	// AAM/AAD carry an explicit base immediate (0x0A in practice).
	out = append(out,
		instG(chain(lit(0xd4), imm8()), func(vs []val) x86.Inst {
			return mk(x86.AAM, false, immOp(vs[0].(uint32)))
		}),
		instG(chain(lit(0xd5), imm8()), func(vs []val) x86.Inst {
			return mk(x86.AAD, false, immOp(vs[0].(uint32)))
		}),
	)
	// Multi-byte NOP 0F 1F /0 (NaCl padding uses it).
	out = append(out, instG(chain(esc(), lit(0x1f), c.extOpModrm("000")), func(vs []val) x86.Inst {
		return mk(x86.NOP, true, vs[0].(x86.Operand))
	}))
	// ENTER size16, level8.
	out = append(out, instG(chain(lit(0xc8), imm16(), imm8()), func(vs []val) x86.Inst {
		return mk(x86.ENTER, true, immOp(vs[0].(uint32)), immOp(vs[1].(uint32)))
	}))
	// CMPXCHG8B 0F C7 /1 (memory only).
	out = append(out, instG(chain(esc(), lit(0xc7), c.extOpModrmMem("001")), func(vs []val) x86.Inst {
		return mk(x86.CMPXCHG8B, true, vs[0].(x86.Operand))
	}))
	// RDTSC, CPUID, UD2.
	out = append(out,
		instG(chain(esc(), lit(0x31)), func([]val) x86.Inst { return mk(x86.RDTSC, true) }),
		instG(chain(esc(), lit(0xa2)), func([]val) x86.Inst { return mk(x86.CPUID, true) }),
		instG(chain(esc(), lit(0x0b)), func([]val) x86.Inst { return mk(x86.UD2, false) }),
	)
	// BOUND 62 /r (memory only).
	out = append(out, instG(chain(lit(0x62), c.modrmMemOnly()), func(vs []val) x86.Inst {
		m := vs[0].(modrmVal)
		return mk(x86.BOUND, true, regOp(x86.Reg(m.reg)), m.op)
	}))
	// Far pointer loads.
	farLoad := func(mkG func() *g, op x86.Op) *g {
		return instG(chain(mkG(), c.modrmMemOnly()), func(vs []val) x86.Inst {
			m := vs[len(vs)-1].(modrmVal)
			return mk(op, true, regOp(x86.Reg(m.reg)), m.op)
		})
	}
	out = append(out,
		farLoad(func() *g { return lit(0xc4) }, x86.LES),
		farLoad(func() *g { return lit(0xc5) }, x86.LDS),
		farLoad(func() *g { return grammar.Then(esc(), lit(0xb2)) }, x86.LSS),
		farLoad(func() *g { return grammar.Then(esc(), lit(0xb4)) }, x86.LFS),
		farLoad(func() *g { return grammar.Then(esc(), lit(0xb5)) }, x86.LGS),
	)
	return out
}

// instructionGrammars returns one grammar per instruction encoding form.
func instructionGrammars(c cfg) []*g {
	var out []*g
	out = append(out, arithFamily(c)...)
	out = append(out, movGrammars(c)...)
	out = append(out, stackGrammars(c)...)
	out = append(out, unaryGrammars(c)...)
	out = append(out, bitGrammars(c)...)
	out = append(out, controlGrammars(c)...)
	out = append(out, miscGrammars(c)...)
	return out
}

// NumEncodingForms reports how many distinct encoding patterns the decoder
// grammar contains (for the README's "parser for over 130 instructions").
func NumEncodingForms() int { return len(instructionGrammars(cfg{})) }

// InstructionForms returns one grammar per instruction encoding form
// (without prefixes). Each form is homogeneous: every string it matches
// decodes to the same opcode and operand shape, which lets the policy
// layer (internal/core) classify forms by sampling. The slice is freshly
// built; grammars are immutable and safe to share.
func InstructionForms(opsize16 bool) []*grammar.Grammar {
	return instructionGrammars(cfg{opsize16: opsize16})
}

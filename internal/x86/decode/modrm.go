// Package decode implements the x86 instruction decoder as a grammar in
// the Decoder DSL (§2.1 of the paper): bit-level patterns transcribed from
// the Intel manual's opcode tables, with semantic actions building the
// abstract syntax of internal/x86. The same grammars serve four masters:
// the derivative parser (the model's decode stage), the generative fuzzer,
// the unambiguity reflection check, and — restricted to policy subsets —
// the checker DFAs in internal/core.
package decode

import (
	"rocksalt/internal/grammar"
	"rocksalt/internal/x86"
)

type g = grammar.Grammar

type val = grammar.Value

// chain concatenates grammars and collects their semantic values into a
// flat []val, dropping Unit values (literal bit patterns). It removes the
// nested-pair plumbing that Coq's notation hides.
func chain(gs ...*g) *g {
	acc := grammar.Map(gs[0], func(v val) val { return appendVal(nil, v) })
	for _, gi := range gs[1:] {
		acc = grammar.Map(grammar.Cat(acc, gi), func(v val) val {
			p := v.(grammar.Pair)
			return appendVal(p.Fst.([]val), p.Snd)
		})
	}
	return acc
}

func appendVal(vs []val, v val) []val {
	if _, isUnit := v.(grammar.Unit); isUnit {
		return vs
	}
	out := make([]val, len(vs), len(vs)+1)
	copy(out, vs)
	return append(out, v)
}

// act attaches a semantic action to a chain.
func act(gr *g, f func([]val) val) *g {
	return grammar.Map(gr, func(v val) val { return f(v.([]val)) })
}

// bit matches one arbitrary bit (a d or w flag).
func bit() *g { return grammar.Any() }

// reg3 matches a 3-bit register field and yields an x86.Reg.
func reg3() *g {
	return grammar.Map(grammar.Field(3), func(v val) val { return x86.Reg(v.(uint64)) })
}

// reg3Except matches a 3-bit register field excluding the given encodings.
// It is used where the Intel tables give certain codes a different meaning
// (rm=100 introduces a SIB byte, rm=101 a bare displacement, ...); the
// exclusions keep the grammar unambiguous.
func reg3Except(excl ...x86.Reg) *g {
	var alts []*g
	for code := x86.Reg(0); code < 8; code++ {
		skip := false
		for _, e := range excl {
			if code == e {
				skip = true
			}
		}
		if skip {
			continue
		}
		c := code
		alts = append(alts, grammar.Map(grammar.BitsValue(3, uint64(c)),
			func(val) val { return c }))
	}
	return grammar.Alt(alts...)
}

// disp8 matches a byte displacement sign-extended to 32 bits.
func disp8() *g {
	return grammar.Map(grammar.AnyByte(), func(v val) val {
		return uint32(int32(int8(v.(uint64))))
	})
}

// disp32 matches a little-endian 32-bit displacement.
func disp32() *g {
	return grammar.Map(grammar.Word(), func(v val) val { return uint32(v.(uint64)) })
}

// imm8 matches an 8-bit immediate, zero-extended into a uint32.
func imm8() *g {
	return grammar.Map(grammar.AnyByte(), func(v val) val { return uint32(v.(uint64)) })
}

// imm8s matches an 8-bit immediate sign-extended to 32 bits (the 0x83 and
// 0x6A forms).
func imm8s() *g { return disp8() }

// imm16 matches a 16-bit little-endian immediate.
func imm16() *g {
	return grammar.Map(grammar.Halfword(), func(v val) val { return uint32(v.(uint64)) })
}

// imm32 matches a 32-bit little-endian immediate.
func imm32() *g { return disp32() }

// immZ matches the "z" immediate: 16 bits under an operand-size override,
// 32 bits otherwise.
func immZ(opsize16 bool) *g {
	if opsize16 {
		return imm16()
	}
	return imm32()
}

// modrmVal is the semantic value of a ModRM sequence: the reg field plus
// the decoded r/m operand.
type modrmVal struct {
	reg uint64
	op  x86.Operand
}

func memOp(disp uint32, base, index *x86.Reg, scale x86.Scale) val {
	if index == nil {
		scale = 0 // canonical form: scale is meaningful only with an index
	}
	return x86.MemOp{Addr: x86.Addr{Disp: disp, Base: base, Index: index, Scale: scale}}
}

func regPtr(r x86.Reg) *x86.Reg { rr := r; return &rr }

// sibTail matches the SIB byte's scale/index prefix (scale(2) index(3)),
// yielding a partial address: index register (or nil) and scale.
type sibIdx struct {
	index *x86.Reg
	scale x86.Scale
}

func sibIndexPart() *g {
	withIndex := act(chain(grammar.Field(2), reg3Except(x86.ESP)), func(vs []val) val {
		return sibIdx{index: regPtr(vs[1].(x86.Reg)), scale: x86.Scale(1 << vs[0].(uint64))}
	})
	// index=100 means "no index"; the scale bits are ignored by hardware,
	// so all four values decode (to the same address).
	noIndex := act(chain(grammar.Field(2), grammar.Bits("100")), func(vs []val) val {
		return sibIdx{index: nil, scale: 0}
	})
	return grammar.Alt(withIndex, noIndex)
}

// sibAnyBase matches a full SIB byte where every base register is legal
// (the mod=01/10 cases); displacement is handled by the caller.
func sibAnyBase() *g {
	return act(chain(sibIndexPart(), reg3()), func(vs []val) val {
		si := vs[0].(sibIdx)
		return func(disp uint32) val {
			return memOp(disp, regPtr(vs[1].(x86.Reg)), si.index, si.scale)
		}
	})
}

// sibMod00 matches a SIB byte in the mod=00 case: base=101 means "no base,
// 32-bit displacement follows"; everything else is a plain base.
func sibMod00() *g {
	plain := act(chain(sibIndexPart(), reg3Except(x86.EBP)), func(vs []val) val {
		si := vs[0].(sibIdx)
		return memOp(0, regPtr(vs[1].(x86.Reg)), si.index, si.scale)
	})
	dispOnly := act(chain(sibIndexPart(), grammar.Bits("101"), disp32()), func(vs []val) val {
		si := vs[0].(sibIdx)
		return memOp(vs[1].(uint32), nil, si.index, si.scale)
	})
	return grammar.Alt(plain, dispOnly)
}

// rmMem00 matches the r/m part for mod=00 (no displacement except the
// rm=101 absolute form).
func rmMem00() *g {
	plain := grammar.Map(reg3Except(x86.ESP, x86.EBP), func(v val) val {
		return memOp(0, regPtr(v.(x86.Reg)), nil, 0)
	})
	sib := grammar.Then(grammar.Bits("100"), sibMod00())
	abs := act(chain(grammar.Bits("101"), disp32()), func(vs []val) val {
		return memOp(vs[0].(uint32), nil, nil, 0)
	})
	return grammar.Alt(plain, sib, abs)
}

// rmMemDisp matches the r/m part for mod=01/10, parameterized by the
// displacement grammar.
func rmMemDisp(disp *g) *g {
	plain := act(chain(reg3Except(x86.ESP), disp), func(vs []val) val {
		return memOp(vs[1].(uint32), regPtr(vs[0].(x86.Reg)), nil, 0)
	})
	sib := act(chain(grammar.Bits("100"), sibAnyBase(), disp), func(vs []val) val {
		return vs[0].(func(uint32) val)(vs[1].(uint32))
	})
	return grammar.Alt(plain, sib)
}

// modrmWithReg builds a full ModRM byte (plus SIB/displacement tail) whose
// reg field is matched by regG (either a live 3-bit field or a literal
// opcode extension). memOnly restricts to memory forms (LEA, BOUND, the
// far pointer loads); regOnly to the mod=11 forms (BSWAP-style).
func modrmWithReg(regG *g, memOnly, regOnly bool) *g {
	regVal := func(vs []val) uint64 {
		if len(vs) == 0 {
			return 0 // literal extension, value dropped as Unit
		}
		if r, ok := vs[0].(uint64); ok {
			return r
		}
		return 0
	}
	mk := func(vs []val, op x86.Operand) val {
		return modrmVal{reg: regVal(vs), op: op}
	}
	var alts []*g
	if !regOnly {
		mod00 := act(chain(grammar.Bits("00"), regG, rmMem00()), func(vs []val) val {
			return mk(vs[:len(vs)-1], vs[len(vs)-1].(x86.MemOp))
		})
		mod01 := act(chain(grammar.Bits("01"), regG, rmMemDisp(disp8())), func(vs []val) val {
			return mk(vs[:len(vs)-1], vs[len(vs)-1].(x86.MemOp))
		})
		mod10 := act(chain(grammar.Bits("10"), regG, rmMemDisp(disp32())), func(vs []val) val {
			return mk(vs[:len(vs)-1], vs[len(vs)-1].(x86.MemOp))
		})
		alts = append(alts, mod00, mod01, mod10)
	}
	if !memOnly {
		mod11 := act(chain(grammar.Bits("11"), regG, reg3()), func(vs []val) val {
			return mk(vs[:len(vs)-1], x86.RegOp{Reg: vs[len(vs)-1].(x86.Reg)})
		})
		alts = append(alts, mod11)
	}
	return grammar.Alt(alts...)
}

// cfg selects the decode variant: operand-size (0x66) changes "z"
// immediate widths; address-size (0x67) swaps in the 16-bit ModRM forms.
type cfg struct {
	opsize16 bool
	addr16   bool
}

// modrmCfg picks the 16- or 32-bit ModRM machinery.
func (c cfg) modrmWithReg(regG *g, memOnly bool) *g {
	if c.addr16 {
		return modrm16WithReg(regG, memOnly)
	}
	return modrmWithReg(regG, memOnly, false)
}

// modrm matches a general ModRM sequence, yielding modrmVal.
func (c cfg) modrm() *g { return c.modrmWithReg(grammar.Field(3), false) }

// modrmMemOnly matches a ModRM sequence whose r/m must be memory.
func (c cfg) modrmMemOnly() *g { return c.modrmWithReg(grammar.Field(3), true) }

// extOpModrm matches a ModRM sequence with a literal opcode extension in
// the reg field (the /digit notation; the paper's ext_op_modrm2). Both
// register and memory forms are allowed.
func (c cfg) extOpModrm(ext string) *g {
	gm := c.modrmWithReg(grammar.Bits(ext), false)
	return grammar.Map(gm, func(v val) val { return v.(modrmVal).op })
}

// extOpModrmMem is extOpModrm restricted to memory operands.
func (c cfg) extOpModrmMem(ext string) *g {
	gm := c.modrmWithReg(grammar.Bits(ext), true)
	return grammar.Map(gm, func(v val) val { return v.(modrmVal).op })
}

// immZ matches the operand-size-dependent immediate.
func (c cfg) immZ() *g { return immZ(c.opsize16) }

// moffs matches the direct-offset field of the A0-A3 MOV forms: 16 bits
// under an address-size override, 32 otherwise.
func (c cfg) moffs() *g {
	if c.addr16 {
		return disp16()
	}
	return disp32()
}

package decode

import (
	"reflect"
	"testing"

	"rocksalt/internal/grammar"

	"rocksalt/internal/x86"
	"rocksalt/internal/x86/encode"
	"rocksalt/internal/x86/semantics"
)

// FuzzDecode throws arbitrary bytes at the decoder: it must never panic,
// and whatever it accepts must re-encode (when the encoder covers the
// form) to bytes that decode to the identical instruction, and must
// translate to RTL without internal errors. Run with
//
//	go test -fuzz FuzzDecode ./internal/x86/decode
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x90})
	f.Add([]byte{0x83, 0xe0, 0xe0})
	f.Add([]byte{0x8b, 0x84, 0x8d, 0x00, 0x01, 0x00, 0x00})
	f.Add([]byte{0x66, 0xf3, 0x0f, 0xff, 0xc0})
	f.Add([]byte{0x0f, 0xc7, 0x0d, 1, 2, 3, 4})
	dec := NewDecoder()
	f.Fuzz(func(t *testing.T, code []byte) {
		inst, n, err := dec.Decode(code)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if n <= 0 || n > len(code) || n > MaxInstLen {
			t.Fatalf("bad length %d for % x", n, code)
		}
		// Accepted instructions must translate (or report a clean error).
		if _, terr := semantics.Translate(inst, 0x1000, n); terr != nil {
			// Only the documented gaps may fail.
			if inst.Prefix.AddrSize {
				return
			}
			t.Fatalf("decoded %v (% x) but translation failed: %v", inst, code[:n], terr)
		}
		// Round-trip through the encoder when it covers the form.
		re, eerr := encode.Encode(inst)
		if eerr != nil {
			return
		}
		second, m, derr := dec.Decode(re)
		if derr != nil {
			t.Fatalf("re-encoding % x of %v produced undecodable % x: %v", code[:n], inst, re, derr)
		}
		if m != len(re) || !reflect.DeepEqual(second, inst) {
			t.Fatalf("decode∘encode drift: %v -> % x -> %v", inst, re, second)
		}
	})
}

// FuzzDecodeMatchesRawParse cross-checks the trie-cached decoder against
// the uncached derivative parser on arbitrary inputs.
func FuzzDecodeMatchesRawParse(f *testing.F) {
	f.Add([]byte{0x01, 0xd8})
	f.Add([]byte{0xf0, 0x0f, 0xb1, 0x0b})
	dec := NewDecoder()
	top := TopGrammar()
	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) > 20 {
			code = code[:20]
		}
		i1, n1, e1 := dec.Decode(code)
		v, n2, e2 := rawParse(top, code)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("cached/raw accept disagreement on % x: %v vs %v", code, e1, e2)
		}
		if e1 == nil {
			if n1 != n2 || !reflect.DeepEqual(i1, v) {
				t.Fatalf("cached/raw value disagreement on % x", code)
			}
		}
	})
}

func rawParse(top *g, code []byte) (x86.Inst, int, error) {
	v, n, err := parseBytesRaw(top, code)
	if err != nil {
		return x86.Inst{}, 0, err
	}
	return v.(x86.Inst), n, nil
}

func parseBytesRaw(top *g, code []byte) (val, int, error) {
	limit := len(code)
	if limit > MaxInstLen {
		limit = MaxInstLen
	}
	return grammar.ParseBytes(top, code, limit)
}

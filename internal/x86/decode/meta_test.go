package decode

import (
	"errors"
	mrand "math/rand"
	"testing"

	"rocksalt/internal/grammar"
)

// This file holds the decoder's meta-theory (experiment E8): the
// reflection-style checks the paper uses in place of manual proofs.

// TestGrammarUnambiguous runs the paper's §4.1 reflection procedure over
// the full instruction grammar: descend into every Alt and check that the
// alternatives' languages are pairwise disjoint. "This helps provide some
// assurance that in transcribing the grammar from Intel's manual, we have
// not made a mistake."
func TestGrammarUnambiguous(t *testing.T) {
	ctx := grammar.NewCtx()
	if err := grammar.CheckUnambiguous(ctx, TopGrammar()); err != nil {
		t.Fatalf("instruction grammar is ambiguous: %v", err)
	}
}

// TestSeededAmbiguityDetected reproduces the paper's war story: "when we
// first tried to prove determinism, we failed because we had flipped a
// bit in an infrequently used encoding of the MOV instruction, causing it
// to overlap with another instruction." We seed exactly that bug — a MOV
// variant whose opcode byte has one bit flipped so that it collides with
// an existing encoding — and check the reflection procedure reports it.
func TestSeededAmbiguityDetected(t *testing.T) {
	// 0x8a is MOV r8, r/m8. Flipping bit 1 of 0x88 (MOV r/m8, r8) gives
	// 0x8a — the buggy duplicate overlaps the real one.
	buggy := grammar.Then(grammar.LitByte(0x8a), grammar.AnyByte())
	g := grammar.Alt(InstructionsGrammar(false), buggy)
	ctx := grammar.NewCtx()
	err := grammar.CheckUnambiguous(ctx, g)
	if err == nil {
		t.Fatal("seeded MOV overlap was not detected")
	}
	var amb *grammar.AmbiguityError
	if !errors.As(err, &amb) {
		t.Fatalf("unexpected error type: %v", err)
	}
}

// TestInstructionGrammarPrefixFree: no instruction encoding is a proper
// prefix of another — the property that makes the verifier's shortest-
// match loop compute real instruction lengths. Checked completely on the
// bit-level DFA of the whole grammar.
func TestInstructionGrammarPrefixFree(t *testing.T) {
	ctx := grammar.NewCtx()
	d, err := ctx.CompileBitDFA(ctx.Strip(TopGrammar()), 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full instruction grammar bit-DFA: %d states", d.NumStates())
	if !d.PrefixFree() {
		t.Fatal("an instruction encoding is a prefix of another")
	}
}

// TestParseUniqueness samples the grammar and checks the parser never
// produces more than one semantic value (the determinism theorem, tested
// on the value level rather than the language level).
func TestParseUniqueness(t *testing.T) {
	s := grammar.NewSampler(newRand(77))
	top := TopGrammar()
	trials := 1500
	if testing.Short() {
		trials = 150
	}
	for i := 0; i < trials; i++ {
		bits, _, ok := s.Sample(top)
		if !ok {
			t.Fatal("sample failed")
		}
		vs, err := grammar.ParseBits(top, bits)
		if err != nil {
			t.Fatalf("sampled string does not parse: %v", err)
		}
		if len(vs) != 1 {
			t.Fatalf("ambiguous parse: %d values", len(vs))
		}
	}
}

func newRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }

package decode

import (
	"fmt"
	"sync"

	"rocksalt/internal/grammar"
	"rocksalt/internal/x86"
)

// MaxInstLen is the architectural limit on instruction length.
const MaxInstLen = 15

// prefixEdit is the semantic value of one prefix alternative: a mutation
// applied to the Prefix record being assembled.
type prefixEdit func(*x86.Prefix)

func noEdit(*x86.Prefix) {}

func prefixLockRep() *g {
	alt := func(b byte, f prefixEdit) *g {
		return grammar.Map(lit(b), func(val) val { return f })
	}
	return grammar.Alt(
		alt(0xf0, func(p *x86.Prefix) { p.Lock = true }),
		alt(0xf3, func(p *x86.Prefix) { p.Rep = true }),
		alt(0xf2, func(p *x86.Prefix) { p.RepN = true }),
		grammar.Map(grammar.Eps(), func(val) val { return prefixEdit(noEdit) }),
	)
}

func prefixSeg() *g {
	segBytes := []struct {
		b byte
		s x86.SegReg
	}{
		{0x26, x86.ES}, {0x2e, x86.CS}, {0x36, x86.SS},
		{0x3e, x86.DS}, {0x64, x86.FS}, {0x65, x86.GS},
	}
	var alts []*g
	for _, sb := range segBytes {
		s := sb.s
		alts = append(alts, grammar.Map(lit(sb.b), func(val) val {
			return prefixEdit(func(p *x86.Prefix) { p.Seg = &s })
		}))
	}
	alts = append(alts, grammar.Map(grammar.Eps(), func(val) val { return prefixEdit(noEdit) }))
	return grammar.Alt(alts...)
}

// prefixGrammar matches the prefix bytes in canonical order — lock/rep,
// segment override, then the mandatory 0x66 and/or 0x67 overrides for
// this variant — and yields an x86.Prefix.
func prefixGrammar(c cfg) *g {
	parts := []*g{prefixLockRep(), prefixSeg()}
	if c.opsize16 {
		parts = append(parts, lit(0x66))
	}
	if c.addr16 {
		parts = append(parts, lit(0x67))
	}
	gp := chain(parts...)
	return act(gp, func(vs []val) val {
		p := x86.Prefix{OpSize: c.opsize16, AddrSize: c.addr16}
		for _, v := range vs {
			v.(prefixEdit)(&p)
		}
		return p
	})
}

// InstructionsGrammar is the alternation of every instruction encoding
// (without prefixes), parameterized by whether an operand-size override is
// in force (32-bit addressing).
func InstructionsGrammar(opsize16 bool) *g {
	return grammar.Alt(instructionGrammars(cfg{opsize16: opsize16})...)
}

// topVariant glues prefixes to the instruction body.
func topVariant(c cfg) *g {
	return grammar.Map(
		grammar.Cat(prefixGrammar(c), grammar.Alt(instructionGrammars(c)...)),
		func(v val) val {
			p := v.(grammar.Pair)
			i := p.Snd.(x86.Inst)
			i.Prefix = p.Fst.(x86.Prefix)
			return i
		})
}

var (
	topOnce sync.Once
	topG    *g
)

// TopGrammar returns the complete decode grammar — all prefixes and all
// instruction forms, the paper's x86grammar: the four combinations of
// operand-size and address-size overrides. It is built once and shared;
// grammars are immutable.
func TopGrammar() *g {
	topOnce.Do(func() {
		topG = grammar.Alt(
			topVariant(cfg{}),
			topVariant(cfg{opsize16: true}),
			topVariant(cfg{addr16: true}),
			topVariant(cfg{opsize16: true, addr16: true}),
		)
	})
	return topG
}

// Decoder decodes instructions with the derivative parser, memoizing
// derivative states in a byte-trie so that shared opcode prefixes are
// derived only once. This is the "lazy, on-line construction of a
// deterministic finite-state transducer" the paper describes at the end
// of §2.2.
type Decoder struct {
	root     *trieNode
	numNodes int
}

type trieNode struct {
	g        *grammar.Grammar
	kids     map[byte]*trieNode
	accepted bool
	inst     x86.Inst
}

const (
	trieDepth    = 4       // cache derivative states this many bytes deep
	trieMaxNodes = 1 << 15 // hard cap on cached states
)

// NewDecoder builds a decoder over the full instruction grammar.
func NewDecoder() *Decoder {
	return &Decoder{root: &trieNode{g: TopGrammar(), kids: make(map[byte]*trieNode)}, numNodes: 1}
}

// Decode decodes a single instruction from the head of code, returning the
// abstract syntax and the number of bytes consumed.
func (d *Decoder) Decode(code []byte) (x86.Inst, int, error) {
	limit := len(code)
	if limit > MaxInstLen {
		limit = MaxInstLen
	}
	node := d.root
	cur := d.root.g
	for n := 0; n < limit; n++ {
		b := code[n]
		if node != nil {
			next, ok := node.kids[b]
			if !ok && d.numNodes < trieMaxNodes && n < trieDepth {
				ng := grammar.DerivByte(node.g, b)
				next = &trieNode{g: ng, kids: make(map[byte]*trieNode)}
				if vs := grammar.Extract(ng); len(vs) == 1 {
					next.accepted = true
					next.inst = vs[0].(x86.Inst)
				}
				node.kids[b] = next
				d.numNodes++
				ok = true
			}
			if ok {
				node = next
				cur = next.g
				if next.g.IsVoid() {
					return x86.Inst{}, 0, fmt.Errorf("decode: illegal byte sequence at offset %d", n)
				}
				if next.accepted {
					return next.inst, n + 1, nil
				}
				continue
			}
			// Fall out of the cache.
			node = nil
		}
		cur = grammar.DerivByte(cur, b)
		if cur.IsVoid() {
			return x86.Inst{}, 0, fmt.Errorf("decode: illegal byte sequence at offset %d", n)
		}
		if vs := grammar.Extract(cur); len(vs) > 0 {
			if len(vs) > 1 {
				return x86.Inst{}, 0, fmt.Errorf("decode: ambiguous parse (grammar bug)")
			}
			return vs[0].(x86.Inst), n + 1, nil
		}
	}
	return x86.Inst{}, 0, fmt.Errorf("decode: truncated or overlong instruction")
}

// Disassembled is one entry of a linear disassembly: either a decoded
// instruction of length Len at offset Off, or a one-byte undecodable gap
// (Err non-nil, Len 1).
type Disassembled struct {
	Off  int
	Len  int
	Inst x86.Inst
	Err  error
}

// DecodeAll linearly disassembles the whole byte slice from offset 0,
// resynchronizing one byte at a time after undecodable input (the usual
// disassembler convention; note the paper's point that a linear
// disassembly is NOT a safety argument — only the checker's analysis of
// all reachable parses is).
func (d *Decoder) DecodeAll(code []byte) []Disassembled {
	var out []Disassembled
	for pos := 0; pos < len(code); {
		inst, n, err := d.Decode(code[pos:])
		if err != nil {
			out = append(out, Disassembled{Off: pos, Len: 1, Err: err})
			pos++
			continue
		}
		out = append(out, Disassembled{Off: pos, Len: n, Inst: inst})
		pos += n
	}
	return out
}
